module lazarus

go 1.22
