package lazarus

import (
	"testing"
	"time"

	"lazarus/internal/cluster"
)

func TestFacadeRiskEngine(t *testing.T) {
	ds, err := GenerateDataset(1)
	if err != nil {
		t.Fatal(err)
	}
	asof := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	corpus := ds.PublishedBefore(asof)
	engine, err := NewRiskEngine(corpus, DefaultScoreParams(), cluster.Config{K: 64, MaxVocabulary: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	replicas := StudyReplicas()
	if len(replicas) != 21 {
		t.Fatalf("StudyReplicas = %d", len(replicas))
	}
	cfg := Config{replicas[0], replicas[1], replicas[2], replicas[3]}
	if risk := engine.Risk(cfg, asof); risk <= 0 {
		t.Errorf("risk of arbitrary config = %v, want positive", risk)
	}
	// Same family pair must be riskier than the same pair replaced by a
	// cross-kernel OS… checked structurally in internal packages; here we
	// only assert the facade is wired.
	if engine.Intel() == nil {
		t.Error("facade engine lost its intel")
	}
}

func TestFacadeControllerValidation(t *testing.T) {
	if _, err := NewController(ControllerConfig{}); err == nil {
		t.Error("empty controller config accepted through facade")
	}
}
