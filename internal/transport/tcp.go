package transport

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"lazarus/internal/metrics"
)

// maxFrame bounds a single TCP frame (16 MiB), protecting receivers from
// hostile length prefixes.
const maxFrame = 16 << 20

// frameOverhead is the on-wire size of a frame beyond its payload:
// length prefix, routing header and MAC.
const frameOverhead = 4 + 16 + sha256.Size

// errAuthFail marks an inbound frame that failed HMAC authentication.
var errAuthFail = errors.New("transport: frame failed authentication")

// TCPConfig configures a TCP network.
type TCPConfig struct {
	// Addrs maps every node to its listen address. All nodes that will
	// ever communicate must be listed.
	Addrs map[NodeID]string
	// Secret keys the per-link HMAC authenticators; all nodes share it
	// (pairwise keys would be derived from it in a full deployment).
	Secret []byte
	// QueueDepth is the per-endpoint inbox capacity (default 4096).
	QueueDepth int
	// SendQueueDepth is the per-peer outbound queue capacity (default
	// 1024). When a peer's queue is full — it is slow, wedged or
	// unreachable — further frames to it are dropped and counted,
	// never blocking the sender.
	SendQueueDepth int
	// DialTimeout bounds a single connection attempt (default 3s).
	DialTimeout time.Duration
	// WriteTimeout bounds a single frame write (default 5s). A peer
	// that stops draining its socket trips the deadline and loses the
	// frame instead of wedging the writer.
	WriteTimeout time.Duration
	// RedialBackoff and RedialBackoffMax shape the capped exponential
	// backoff (plus up to 50% jitter) between dial attempts to an
	// unreachable peer (defaults 50ms and 2s).
	RedialBackoff, RedialBackoffMax time.Duration
	// Seed keys the per-peer backoff-jitter RNGs: each (endpoint, peer)
	// writer derives its own rand.Rand from it, so two networks built
	// with the same seed replay identical jitter sequences and seeded
	// harness runs stay reproducible. Zero is a valid seed.
	Seed int64
	// Metrics optionally registers the network's counters under
	// "transport.tcp.*"; nil keeps them Stats()-only.
	Metrics *metrics.Registry
}

// TCP is a Network over real sockets with length-prefixed, HMAC-
// authenticated frames. Frame layout:
//
//	uint32 length | int64 from | int64 to | payload | 32-byte HMAC
//
// Each destination is served by a dedicated per-peer writer: Send is a
// non-blocking enqueue onto that writer's bounded queue, and the writer
// alone dials (with timeout), writes (under a deadline) and re-dials
// (with capped exponential backoff). A slow, stalled or dead peer can
// therefore never block traffic to healthy peers — its queue simply
// fills and overflow frames are dropped, matching the lossy-network
// contract. Ordering across re-dials is not guaranteed, matching the
// asynchronous model the BFT layer assumes.
type TCP struct {
	cfg   TCPConfig
	stats counters

	mu        sync.Mutex
	endpoints map[NodeID]*tcpEndpoint
	closed    bool
}

// NewTCP validates the configuration and builds the network.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("transport: tcp network needs addresses")
	}
	if len(cfg.Secret) == 0 {
		return nil, fmt.Errorf("transport: tcp network needs a MAC secret")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.SendQueueDepth <= 0 {
		cfg.SendQueueDepth = 1024
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 50 * time.Millisecond
	}
	if cfg.RedialBackoffMax <= 0 {
		cfg.RedialBackoffMax = 2 * time.Second
	}
	t := &TCP{cfg: cfg, endpoints: make(map[NodeID]*tcpEndpoint)}
	t.stats.init(cfg.Metrics, "transport.tcp")
	return t, nil
}

var _ Network = (*TCP)(nil)

// Stats implements Network.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

type tcpEndpoint struct {
	id       NodeID
	net      *TCP
	listener net.Listener
	inbox    chan Envelope
	closed   chan struct{}
	once     sync.Once

	// dialCtx is cancelled on Close so in-flight dials abort promptly.
	dialCtx    context.Context
	dialCancel context.CancelFunc

	mu      sync.Mutex
	writers map[NodeID]*peerWriter
	inbound map[net.Conn]struct{}
	wg      sync.WaitGroup
}

// Endpoint implements Network: it binds the node's listener and starts
// accepting inbound frames.
func (t *TCP) Endpoint(id NodeID) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if ep, ok := t.endpoints[id]; ok {
		return ep, nil
	}
	addr, ok := t.cfg.Addrs[id]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep := &tcpEndpoint{
		id:         id,
		net:        t,
		listener:   ln,
		inbox:      make(chan Envelope, t.cfg.QueueDepth),
		closed:     make(chan struct{}),
		dialCtx:    ctx,
		dialCancel: cancel,
		writers:    make(map[NodeID]*peerWriter),
		inbound:    make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	t.endpoints[id] = ep
	return ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.endpoints))
	for _, ep := range t.endpoints {
		eps = append(eps, ep)
	}
	t.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		select {
		case <-ep.closed:
			ep.mu.Unlock()
			conn.Close()
			return
		default:
		}
		ep.inbound[conn] = struct{}{}
		// The Add must happen under ep.mu: Close marks the endpoint
		// closed under the same lock before waiting, so this Add is
		// ordered before Close's Wait.
		ep.wg.Add(1)
		ep.mu.Unlock()
		go func() {
			defer ep.wg.Done()
			defer func() {
				conn.Close()
				ep.mu.Lock()
				delete(ep.inbound, conn)
				ep.mu.Unlock()
			}()
			ep.readLoop(conn)
		}()
	}
}

func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	st := &ep.net.stats
	// One HMAC state per connection, reset per frame: hmac.New runs two
	// SHA-256 key schedules, pure waste to repeat per frame.
	mac := hmac.New(sha256.New, ep.net.cfg.Secret)
	for {
		env, err := readFrameMAC(conn, mac)
		if err != nil {
			if errors.Is(err, errAuthFail) {
				st.dropsAuthFail.Add(1)
			}
			return
		}
		st.framesRecv.Add(1)
		st.bytesRecv.Add(int64(frameOverhead + len(env.Payload)))
		if env.To != ep.id {
			st.dropsMisrouted.Add(1)
			continue // misrouted or spoofed; drop
		}
		select {
		case ep.inbox <- env:
		case <-ep.closed:
			return
		default: // inbox full: drop, lossy-network semantics
			st.dropsInboxFull.Add(1)
		}
	}
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() NodeID { return ep.id }

// Send implements Endpoint. It never touches the network itself: the
// envelope is enqueued onto the destination's writer — which encodes and
// MACs it into a reused per-writer buffer — and a full queue sheds it
// (counted) rather than blocking. Enqueueing the envelope instead of an
// encoded frame means a broadcast's shared payload is queued n-1 times
// by reference, not copied n-1 times up front.
func (ep *tcpEndpoint) Send(to NodeID, payload []byte) error {
	select {
	case <-ep.closed:
		return ErrClosed
	default:
	}
	if total := 16 + len(payload) + sha256.Size; total > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	pw, err := ep.writer(to)
	if err != nil {
		return err
	}
	select {
	case pw.queue <- Envelope{From: ep.id, To: to, Payload: payload}:
		pw.wake()
		return nil
	case <-ep.closed:
		return ErrClosed
	default:
		ep.net.stats.dropsQueueFull.Add(1)
		return nil // lossy-network contract: a wedged peer sheds load
	}
}

// writer returns the destination's peer writer, starting it on first
// use. Creation is cheap — no dialing happens under the lock.
func (ep *tcpEndpoint) writer(to NodeID) (*peerWriter, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	select {
	case <-ep.closed:
		return nil, ErrClosed
	default:
	}
	if pw, ok := ep.writers[to]; ok {
		return pw, nil
	}
	addr, ok := ep.net.cfg.Addrs[to]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", to)
	}
	pw := &peerWriter{
		to:    to,
		addr:  addr,
		ep:    ep,
		queue: make(chan Envelope, ep.net.cfg.SendQueueDepth),
		kick:  make(chan struct{}, 1),
		mac:   hmac.New(sha256.New, ep.net.cfg.Secret),
		// Jitter must come from a writer-local seeded source, not the
		// global math/rand: the chaos harness replays whole runs from one
		// seed, and a global draw would interleave with every other
		// goroutine's. The (endpoint, peer) mix keeps streams distinct.
		rng: rand.New(rand.NewSource(jitterSeed(ep.net.cfg.Seed, ep.id, to))),
	}
	ep.writers[to] = pw
	ep.wg.Add(1)
	go pw.run()
	return pw, nil
}

// peerWriter owns all outbound traffic to one destination: a bounded
// queue of envelopes drained by a single goroutine (singleflight — at
// most one dial per peer at any time) that encodes each frame into a
// reused scratch buffer with a reused HMAC state, connects with a
// timeout, writes under a per-frame deadline and re-dials with capped
// exponential backoff plus jitter.
type peerWriter struct {
	to    NodeID
	addr  string
	ep    *tcpEndpoint
	queue chan Envelope
	// kick (capacity 1) lets Send cut a redial backoff short: fresh
	// traffic toward a peer we are backing off from is the signal that
	// the link may have healed (see sleep).
	kick    chan struct{}
	mac     hash.Hash  // frame authenticator; used only by the run goroutine
	scratch []byte     // frame encode buffer; reused across frames by run
	rng     *rand.Rand // jitter source; used only by the run goroutine

	mu   sync.Mutex
	conn net.Conn // owned by run(); Close shuts it to unblock a write
}

func (pw *peerWriter) run() {
	ep := pw.ep
	defer ep.wg.Done()
	defer pw.closeConn()
	cfg := &ep.net.cfg
	st := &ep.net.stats
	backoff := cfg.RedialBackoff
	everConnected := false
	for {
		var env Envelope
		select {
		case <-ep.closed:
			return
		case env = <-pw.queue:
		}
		frame, err := appendFrame(pw.scratch[:0], pw.mac, env)
		if err != nil {
			st.dropsWriteFail.Add(1) // oversized despite the Send check
			continue
		}
		pw.scratch = frame[:0]
		// Deliver the frame, (re)connecting as needed. Dial failures
		// back off and retry while the frame stays pending; meanwhile
		// the queue absorbs — then sheds — new traffic.
		for {
			conn := pw.current()
			if conn == nil {
				c, err := pw.dial(everConnected)
				if err != nil {
					if !pw.sleep(backoff) {
						return
					}
					backoff *= 2
					if backoff > cfg.RedialBackoffMax {
						backoff = cfg.RedialBackoffMax
					}
					continue
				}
				if !pw.setConn(c) {
					return // closed while dialing
				}
				conn = c
				everConnected = true
				backoff = cfg.RedialBackoff
			}
			conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			if _, err := conn.Write(frame); err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					st.writeDeadlineTrips.Add(1)
				}
				// The frame may be partially written; resending it on a
				// fresh connection would corrupt the stream, so it is
				// lost — the BFT layer's retransmissions absorb this.
				st.dropsWriteFail.Add(1)
				pw.closeConn()
				break
			}
			st.framesSent.Add(1)
			st.bytesSent.Add(int64(len(frame)))
			break
		}
	}
}

func (pw *peerWriter) dial(redial bool) (net.Conn, error) {
	st := &pw.ep.net.stats
	st.dials.Add(1)
	if redial {
		st.redials.Add(1)
	}
	d := net.Dialer{Timeout: pw.ep.net.cfg.DialTimeout}
	c, err := d.DialContext(pw.ep.dialCtx, "tcp", pw.addr)
	if err != nil {
		st.dialFailures.Add(1)
		return nil, err
	}
	return c, nil
}

// jitterSeed derives the per-(endpoint, peer) backoff-jitter seed: fully
// determined by the network seed, distinct per directed pair so writers
// don't march in lockstep.
func jitterSeed(seed int64, self, to NodeID) int64 {
	return seed ^ int64(self)<<32 ^ int64(to)
}

// wake nudges a writer that may be sleeping out a redial backoff.
// Non-blocking: a pending nudge is as good as two.
func (pw *peerWriter) wake() {
	select {
	case pw.kick <- struct{}{}:
	default:
	}
}

// sleep waits out the redial backoff plus up to 50% jitter, returning
// false if the endpoint closes first. A fresh Send (wake) cuts the wait
// short once a minimum of RedialBackoff has elapsed: on a flapping link
// the traffic that resumes after the link heals should trigger an
// immediate redial instead of sleeping out the full capped backoff,
// while the floor keeps steady traffic toward a genuinely dead peer
// from turning the backoff into a dial storm (at most one dial per
// RedialBackoff either way).
func (pw *peerWriter) sleep(d time.Duration) bool {
	d += time.Duration(pw.rng.Int63n(int64(d)/2 + 1))
	// Drain a stale nudge: sends already queued when the dial failed are
	// not evidence the link healed since.
	select {
	case <-pw.kick:
	default:
	}
	floor := pw.ep.net.cfg.RedialBackoff
	if floor > d {
		floor = d
	}
	t := time.NewTimer(floor)
	select {
	case <-t.C:
	case <-pw.ep.closed:
		t.Stop()
		return false
	}
	if rest := d - floor; rest > 0 {
		t2 := time.NewTimer(rest)
		defer t2.Stop()
		select {
		case <-t2.C:
		case <-pw.kick: // fresh traffic: try the dial now
		case <-pw.ep.closed:
			return false
		}
	}
	return true
}

func (pw *peerWriter) current() net.Conn {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.conn
}

// setConn registers a freshly dialed connection; if the endpoint closed
// meanwhile, the connection is discarded and false is returned.
func (pw *peerWriter) setConn(c net.Conn) bool {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	select {
	case <-pw.ep.closed:
		c.Close()
		return false
	default:
	}
	pw.conn = c
	return true
}

func (pw *peerWriter) closeConn() {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if pw.conn != nil {
		pw.conn.Close()
		pw.conn = nil
	}
}

// Recv implements Endpoint.
func (ep *tcpEndpoint) Recv(ctx context.Context) (Envelope, error) {
	select {
	case env := <-ep.inbox:
		return env, nil
	case <-ep.closed:
		return Envelope{}, ErrClosed
	case <-ctx.Done():
		return Envelope{}, ctx.Err()
	}
}

// Close implements Endpoint. It is prompt even with dials in flight or
// writes wedged: the dial context is cancelled and every connection is
// closed, unblocking the writer and reader goroutines before Wait.
func (ep *tcpEndpoint) Close() error {
	ep.once.Do(func() {
		ep.mu.Lock()
		close(ep.closed)
		ep.dialCancel()
		ep.listener.Close()
		for _, pw := range ep.writers {
			pw.closeConn()
		}
		// Inbound connections must be closed too, or their read loops
		// would block forever and Close would deadlock on wg.Wait.
		for c := range ep.inbound {
			c.Close()
		}
		ep.mu.Unlock()
	})
	ep.wg.Wait()
	return nil
}

// appendFrame serializes and MACs one envelope, appending the frame to
// buf (reusing its capacity) and resetting mac for reuse.
func appendFrame(buf []byte, mac hash.Hash, env Envelope) ([]byte, error) {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(env.From))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(env.To))
	mac.Reset()
	mac.Write(hdr[:])
	mac.Write(env.Payload)

	total := len(hdr) + len(env.Payload) + mac.Size()
	if total > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(total))
	buf = append(buf, hdr[:]...)
	buf = append(buf, env.Payload...)
	return mac.Sum(buf), nil
}

// encodeFrame serializes and MACs one envelope with a one-shot HMAC
// state (hot paths hold a reusable state and call appendFrame directly).
func encodeFrame(secret []byte, env Envelope) ([]byte, error) {
	return appendFrame(nil, hmac.New(sha256.New, secret), env)
}

// writeFrame serializes, MACs and writes one envelope.
func writeFrame(w io.Writer, secret []byte, env Envelope) error {
	buf, err := encodeFrame(secret, env)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readFrame reads and authenticates one envelope with a one-shot HMAC
// state.
func readFrame(r io.Reader, secret []byte) (Envelope, error) {
	return readFrameMAC(r, hmac.New(sha256.New, secret))
}

// readFrameMAC reads and authenticates one envelope, resetting mac for
// reuse. The returned payload is freshly allocated — ownership passes to
// the consumer, so the read buffer cannot be recycled.
func readFrameMAC(r io.Reader, mac hash.Hash) (Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Envelope{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < 16+sha256.Size || total > maxFrame {
		return Envelope{}, fmt.Errorf("transport: bad frame length %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Envelope{}, err
	}
	payloadLen := int(total) - 16 - sha256.Size
	hdr, payload, sum := buf[:16], buf[16:16+payloadLen], buf[16+payloadLen:]

	mac.Reset()
	mac.Write(hdr)
	mac.Write(payload)
	if !hmac.Equal(mac.Sum(nil), sum) {
		return Envelope{}, errAuthFail
	}
	return Envelope{
		From:    NodeID(binary.BigEndian.Uint64(hdr[0:8])),
		To:      NodeID(binary.BigEndian.Uint64(hdr[8:16])),
		Payload: payload,
	}, nil
}
