package transport

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds a single TCP frame (16 MiB), protecting receivers from
// hostile length prefixes.
const maxFrame = 16 << 20

// TCPConfig configures a TCP network.
type TCPConfig struct {
	// Addrs maps every node to its listen address. All nodes that will
	// ever communicate must be listed.
	Addrs map[NodeID]string
	// Secret keys the per-link HMAC authenticators; all nodes share it
	// (pairwise keys would be derived from it in a full deployment).
	Secret []byte
	// QueueDepth is the per-endpoint inbox capacity (default 4096).
	QueueDepth int
}

// TCP is a Network over real sockets with length-prefixed, HMAC-
// authenticated frames. Frame layout:
//
//	uint32 length | int64 from | int64 to | payload | 32-byte HMAC
//
// Connections are dialed lazily per destination and re-dialed on failure;
// ordering across re-dials is not guaranteed, matching the asynchronous
// model the BFT layer assumes.
type TCP struct {
	cfg TCPConfig

	mu        sync.Mutex
	endpoints map[NodeID]*tcpEndpoint
	closed    bool
}

// NewTCP validates the configuration and builds the network.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("transport: tcp network needs addresses")
	}
	if len(cfg.Secret) == 0 {
		return nil, fmt.Errorf("transport: tcp network needs a MAC secret")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	return &TCP{cfg: cfg, endpoints: make(map[NodeID]*tcpEndpoint)}, nil
}

var _ Network = (*TCP)(nil)

type tcpEndpoint struct {
	id       NodeID
	net      *TCP
	listener net.Listener
	inbox    chan Envelope
	closed   chan struct{}
	once     sync.Once

	mu      sync.Mutex
	conns   map[NodeID]net.Conn
	inbound map[net.Conn]struct{}
	wg      sync.WaitGroup
}

// Endpoint implements Network: it binds the node's listener and starts
// accepting inbound frames.
func (t *TCP) Endpoint(id NodeID) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if ep, ok := t.endpoints[id]; ok {
		return ep, nil
	}
	addr, ok := t.cfg.Addrs[id]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addr, err)
	}
	ep := &tcpEndpoint{
		id:       id,
		net:      t,
		listener: ln,
		inbox:    make(chan Envelope, t.cfg.QueueDepth),
		closed:   make(chan struct{}),
		conns:    make(map[NodeID]net.Conn),
		inbound:  make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	t.endpoints[id] = ep
	return ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.endpoints))
	for _, ep := range t.endpoints {
		eps = append(eps, ep)
	}
	t.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		select {
		case <-ep.closed:
			ep.mu.Unlock()
			conn.Close()
			return
		default:
		}
		ep.inbound[conn] = struct{}{}
		ep.mu.Unlock()
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer func() {
				conn.Close()
				ep.mu.Lock()
				delete(ep.inbound, conn)
				ep.mu.Unlock()
			}()
			ep.readLoop(conn)
		}()
	}
}

func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	for {
		env, err := readFrame(conn, ep.net.cfg.Secret)
		if err != nil {
			return
		}
		if env.To != ep.id {
			continue // misrouted or spoofed; drop
		}
		select {
		case ep.inbox <- env:
		case <-ep.closed:
			return
		default: // inbox full: drop, lossy-network semantics
		}
	}
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() NodeID { return ep.id }

// Send implements Endpoint.
func (ep *tcpEndpoint) Send(to NodeID, payload []byte) error {
	select {
	case <-ep.closed:
		return ErrClosed
	default:
	}
	conn, err := ep.conn(to)
	if err != nil {
		return err
	}
	if err := writeFrame(conn, ep.net.cfg.Secret, Envelope{From: ep.id, To: to, Payload: payload}); err != nil {
		// Connection broke: forget it so the next send re-dials.
		ep.mu.Lock()
		if ep.conns[to] == conn {
			delete(ep.conns, to)
		}
		ep.mu.Unlock()
		conn.Close()
		return fmt.Errorf("transport: sending to %d: %w", to, err)
	}
	return nil
}

func (ep *tcpEndpoint) conn(to NodeID) (net.Conn, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if c, ok := ep.conns[to]; ok {
		return c, nil
	}
	addr, ok := ep.net.cfg.Addrs[to]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %d at %s: %w", to, addr, err)
	}
	ep.conns[to] = c
	return c, nil
}

// Recv implements Endpoint.
func (ep *tcpEndpoint) Recv(ctx context.Context) (Envelope, error) {
	select {
	case env := <-ep.inbox:
		return env, nil
	case <-ep.closed:
		return Envelope{}, ErrClosed
	case <-ctx.Done():
		return Envelope{}, ctx.Err()
	}
}

// Close implements Endpoint.
func (ep *tcpEndpoint) Close() error {
	ep.once.Do(func() {
		close(ep.closed)
		ep.listener.Close()
		ep.mu.Lock()
		for _, c := range ep.conns {
			c.Close()
		}
		ep.conns = make(map[NodeID]net.Conn)
		// Inbound connections must be closed too, or their read loops
		// would block forever and Close would deadlock on wg.Wait.
		for c := range ep.inbound {
			c.Close()
		}
		ep.mu.Unlock()
	})
	ep.wg.Wait()
	return nil
}

// writeFrame serializes and MACs one envelope.
func writeFrame(w io.Writer, secret []byte, env Envelope) error {
	mac := hmac.New(sha256.New, secret)
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(env.From))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(env.To))
	mac.Write(hdr[:])
	mac.Write(env.Payload)
	sum := mac.Sum(nil)

	total := len(hdr) + len(env.Payload) + len(sum)
	if total > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf[0:4], uint32(total))
	copy(buf[4:], hdr[:])
	copy(buf[4+16:], env.Payload)
	copy(buf[4+16+len(env.Payload):], sum)
	_, err := w.Write(buf)
	return err
}

// readFrame reads and authenticates one envelope.
func readFrame(r io.Reader, secret []byte) (Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Envelope{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < 16+sha256.Size || total > maxFrame {
		return Envelope{}, fmt.Errorf("transport: bad frame length %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Envelope{}, err
	}
	payloadLen := int(total) - 16 - sha256.Size
	hdr, payload, sum := buf[:16], buf[16:16+payloadLen], buf[16+payloadLen:]

	mac := hmac.New(sha256.New, secret)
	mac.Write(hdr)
	mac.Write(payload)
	if !hmac.Equal(mac.Sum(nil), sum) {
		return Envelope{}, fmt.Errorf("transport: frame failed authentication")
	}
	return Envelope{
		From:    NodeID(binary.BigEndian.Uint64(hdr[0:8])),
		To:      NodeID(binary.BigEndian.Uint64(hdr[8:16])),
		Payload: payload,
	}, nil
}
