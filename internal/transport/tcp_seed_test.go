package transport

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitterSeedDeterministic pins the redial-jitter contract: the
// per-writer RNG is fully determined by (network seed, endpoint, peer),
// so two networks built from the same seed replay identical backoff
// sequences — the property the seeded chaos harness depends on. The
// old implementation drew from the global math/rand, which interleaves
// with every other goroutine in the process and made runs unrepeatable.
func TestJitterSeedDeterministic(t *testing.T) {
	draw := func(seed int64, self, to NodeID) []int64 {
		rng := rand.New(rand.NewSource(jitterSeed(seed, self, to)))
		out := make([]int64, 8)
		for i := range out {
			out[i] = rng.Int63n(1000)
		}
		return out
	}
	a, b := draw(42, 1, 2), draw(42, 1, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, self, to) diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Distinct directed pairs must not march in lockstep.
	if c := draw(42, 2, 1); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("reverse direction (2,1) replays (1,2)'s jitter stream")
	}
	if d := draw(43, 1, 2); a[0] == d[0] && a[1] == d[1] && a[2] == d[2] {
		t.Error("different network seed replays the same jitter stream")
	}
}

// TestPeerWriterSleepJitterBounds drives sleep() directly: the waited
// duration includes up to 50% jitter, a wake() cuts the wait short but
// never below the RedialBackoff floor, and a closing endpoint aborts
// the wait immediately.
func TestPeerWriterSleepJitterBounds(t *testing.T) {
	ep := &tcpEndpoint{
		net:    &TCP{cfg: TCPConfig{RedialBackoff: 10 * time.Millisecond}},
		closed: make(chan struct{}),
	}
	pw := &peerWriter{
		ep:   ep,
		kick: make(chan struct{}, 1),
		rng:  rand.New(rand.NewSource(jitterSeed(1, 0, 1))),
	}

	start := time.Now()
	if !pw.sleep(10 * time.Millisecond) {
		t.Fatal("sleep returned false with the endpoint open")
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Errorf("slept %v, want at least the base backoff 10ms", waited)
	}

	// A wake cuts a long backoff short, but not below the floor — and a
	// nudge already pending when sleep starts is stale and gets drained
	// rather than trusted, so this one must wait out the floor too.
	pw.wake()
	pw.wake() // idempotent: a pending nudge is as good as two
	go func() {
		time.Sleep(20 * time.Millisecond)
		pw.wake()
	}()
	start = time.Now()
	if !pw.sleep(10 * time.Second) {
		t.Fatal("woken sleep returned false with the endpoint open")
	}
	waited := time.Since(start)
	if waited < 10*time.Millisecond {
		t.Errorf("woken sleep waited %v, want at least the 10ms floor", waited)
	}
	if waited > 5*time.Second {
		t.Errorf("woken sleep waited %v, want the wake to cut the 10s backoff short", waited)
	}

	close(ep.closed)
	start = time.Now()
	if pw.sleep(10 * time.Second) {
		t.Fatal("sleep returned true on a closed endpoint")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("closed-endpoint sleep took %v, want immediate return", waited)
	}
}
