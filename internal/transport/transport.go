// Package transport carries messages between BFT nodes. It offers an
// in-memory switchboard with programmable latency, loss and partitions
// (for deterministic protocol tests) and a TCP transport with
// authenticated, length-prefixed frames (for multi-process deployments).
// Both present the same interface to the BFT layer.
package transport

import (
	"context"
	"errors"
	"fmt"
)

// NodeID identifies a protocol participant. Replicas use small integers;
// clients use ids offset by ClientIDBase.
type NodeID int

// ClientIDBase offsets client identifiers from replica identifiers.
const ClientIDBase NodeID = 1000

// IsClient reports whether the id denotes a client.
func (id NodeID) IsClient() bool { return id >= ClientIDBase }

// Envelope is one routed message: an opaque payload plus routing metadata.
// The payload is the BFT layer's serialized message; the transport never
// inspects it.
type Envelope struct {
	// From and To route the message.
	From, To NodeID
	// Payload is the serialized protocol message.
	Payload []byte
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// SendInterceptor rewrites one node's outbound traffic: given the
// destination and the payload about to leave, it returns the payloads
// actually handed to the network — the original to pass through, none
// to censor the send, or several to equivocate or inject extras. It is
// the hook the Byzantine chaos harness uses to turn a correct replica's
// endpoint into an attacker's. Implementations must be safe for
// concurrent use and must not call back into the network.
type SendInterceptor func(to NodeID, payload []byte) [][]byte

// Endpoint is one node's connection to the network.
type Endpoint interface {
	// ID returns the node this endpoint belongs to.
	ID() NodeID
	// Send routes a message to one destination. Sends are best-effort
	// and non-blocking: the network may drop, delay or reorder.
	Send(to NodeID, payload []byte) error
	// Recv blocks until a message arrives or ctx is done.
	Recv(ctx context.Context) (Envelope, error)
	// Close releases the endpoint.
	Close() error
}

// Network hands out endpoints.
type Network interface {
	// Endpoint returns the endpoint of the given node, creating it if
	// needed.
	Endpoint(id NodeID) (Endpoint, error)
	// Stats returns a snapshot of the network's transport counters
	// (frames, bytes, dials and per-cause drops).
	Stats() Stats
	// Close shuts the network down.
	Close() error
}

// Broadcast sends the payload to every listed destination (skipping the
// sender itself); it keeps going on per-destination errors and returns the
// first one.
func Broadcast(ep Endpoint, to []NodeID, payload []byte) error {
	var first error
	for _, dst := range to {
		if dst == ep.ID() {
			continue
		}
		if err := ep.Send(dst, payload); err != nil && first == nil {
			first = fmt.Errorf("transport: broadcast to %d: %w", dst, err)
		}
	}
	return first
}
