package transport

import (
	"net"
	"testing"
	"time"
)

// eventuallyStats polls the network's counters until cond accepts them.
func eventuallyStats(t *testing.T, n Network, timeout time.Duration, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond(n.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: counters never satisfied condition: %+v", what, n.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// blackholeAddr returns a loopback address where nothing answers: the
// port was bound and released, so dialing it fails.
func blackholeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// newTwoNodeTCP builds a TCP net where node 1 is the sender, node 2 is a
// live endpoint, and node 3's address is the given (possibly hostile)
// addr. It returns the sender and receiver endpoints.
func newTwoNodeTCP(t *testing.T, cfg TCPConfig, addr3 string) (*TCP, Endpoint, Endpoint) {
	t.Helper()
	cfg.Addrs = map[NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0", 3: addr3}
	if len(cfg.Secret) == 0 {
		cfg.Secret = []byte("robustness-test")
	}
	tnet, err := NewTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tnet.Close() })
	b, err := tnet.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	// Resolve node 2's :0 port so node 1 can reach it.
	cfg.Addrs[2] = b.(*tcpEndpoint).listener.Addr().String()
	a, err := tnet.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	return tnet, a, b
}

// TestTCPUnreachablePeerDoesNotBlockHealthySends is the head-of-line
// regression test: with one peer configured at an address that never
// answers, sends to a healthy peer must complete well inside the
// configured dial timeout (the old design held the endpoint mutex across
// net.Dial, so one dead peer froze every concurrent Send).
func TestTCPUnreachablePeerDoesNotBlockHealthySends(t *testing.T) {
	cfg := TCPConfig{
		DialTimeout:      400 * time.Millisecond,
		WriteTimeout:     400 * time.Millisecond,
		RedialBackoff:    10 * time.Millisecond,
		RedialBackoffMax: 50 * time.Millisecond,
		// Deep enough that the burst below never overflows: every frame
		// to the healthy peer must arrive, not be shed as queue-full.
		SendQueueDepth: 128,
	}
	tnet, a, b := newTwoNodeTCP(t, cfg, blackholeAddr(t))

	const msgs = 50
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := a.Send(3, []byte("into the void")); err != nil {
			t.Fatalf("send to unreachable peer errored instead of queueing/dropping: %v", err)
		}
		if err := a.Send(2, []byte("to the living")); err != nil {
			t.Fatalf("send to healthy peer: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed >= cfg.DialTimeout {
		t.Fatalf("%d interleaved sends took %v, blocked behind the dead peer (dial timeout %v)",
			2*msgs, elapsed, cfg.DialTimeout)
	}
	for i := 0; i < msgs; i++ {
		if env := recvOne(t, b, 2*time.Second); string(env.Payload) != "to the living" {
			t.Fatalf("payload = %q", env.Payload)
		}
	}
	// The dead peer's dial attempts run (and fail) in the background.
	eventuallyStats(t, tnet, 2*time.Second, "dial failures", func(s Stats) bool {
		return s.DialFailures >= 1
	})
}

// TestTCPStalledPeerTripsWriteDeadline wedges a peer that accepts
// connections but never reads: once its socket buffers fill, the old
// writeFrame blocked forever. Now sends stay non-blocking (overflow is
// dropped and counted), the write deadline trips, and traffic to a
// healthy peer keeps flowing throughout.
func TestTCPStalledPeerTripsWriteDeadline(t *testing.T) {
	// A listener that accepts and holds connections without reading.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		// Hold every connection open without reading; release them all
		// once the listener is closed at test end.
		var held []net.Conn
		defer func() {
			for _, c := range held {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			held = append(held, c)
		}
	}()

	cfg := TCPConfig{
		DialTimeout:      500 * time.Millisecond,
		WriteTimeout:     150 * time.Millisecond,
		RedialBackoff:    10 * time.Millisecond,
		RedialBackoffMax: 50 * time.Millisecond,
		SendQueueDepth:   4,
	}
	tnet, a, b := newTwoNodeTCP(t, cfg, ln.Addr().String())

	// Frames bigger than any kernel socket buffer: a single write can
	// never complete against a peer that doesn't read, so the writer is
	// guaranteed to block and trip its deadline.
	big := make([]byte, 8<<20)
	start := time.Now()
	for i := 0; i < 8; i++ {
		if err := a.Send(3, big); err != nil {
			t.Fatalf("send to stalled peer: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("8 sends to a stalled peer took %v, the enqueue path blocked", elapsed)
	}
	// Healthy traffic keeps moving while the stalled writer is wedged.
	if err := a.Send(2, []byte("still moving")); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b, 2*time.Second); string(env.Payload) != "still moving" {
		t.Fatalf("payload = %q", env.Payload)
	}
	eventuallyStats(t, tnet, 5*time.Second, "write deadline trip", func(s Stats) bool {
		return s.WriteDeadlineTrips >= 1 && s.DropsQueueFull >= 1
	})
}

// TestTCPClosePromptWithDeadPeer proves Close does not deadlock (or wait
// out the dial timeout) while a writer is mid-dial/backoff against an
// unreachable peer.
func TestTCPClosePromptWithDeadPeer(t *testing.T) {
	cfg := TCPConfig{
		DialTimeout:      5 * time.Second, // far longer than the Close bound below
		RedialBackoff:    time.Second,
		RedialBackoffMax: 5 * time.Second,
	}
	tnet, a, _ := newTwoNodeTCP(t, cfg, blackholeAddr(t))
	if err := a.Send(3, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the writer enter its dial/backoff loop
	closed := make(chan struct{})
	go func() {
		tnet.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind an in-flight dial to a dead peer")
	}
}

// TestTCPStatsCounts checks the happy-path counters: frames and bytes on
// both sides and exactly one dial for a persistent connection.
func TestTCPStatsCounts(t *testing.T) {
	tnet, a, b := newTwoNodeTCP(t, TCPConfig{}, blackholeAddr(t))
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := a.Send(2, []byte("count me")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		recvOne(t, b, 2*time.Second)
	}
	s := tnet.Stats()
	if s.FramesSent != msgs || s.FramesRecv != msgs {
		t.Errorf("frames sent/recv = %d/%d, want %d/%d", s.FramesSent, s.FramesRecv, msgs, msgs)
	}
	wantBytes := int64(msgs * (frameOverhead + len("count me")))
	if s.BytesSent != wantBytes || s.BytesRecv != wantBytes {
		t.Errorf("bytes sent/recv = %d/%d, want %d", s.BytesSent, s.BytesRecv, wantBytes)
	}
	if s.Dials != 1 || s.Redials != 0 {
		t.Errorf("dials/redials = %d/%d, want 1/0", s.Dials, s.Redials)
	}
}

// TestTCPStatsAuthAndMisroute feeds the listener a frame MACed with the
// wrong secret and a well-MACed frame addressed to the wrong node; both
// must be rejected and counted.
func TestTCPStatsAuthAndMisroute(t *testing.T) {
	tnet, _, b := newTwoNodeTCP(t, TCPConfig{Secret: []byte("right")}, blackholeAddr(t))
	addr := b.(*tcpEndpoint).listener.Addr().String()

	rogue, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	if err := writeFrame(rogue, []byte("wrong"), Envelope{From: 9, To: 2, Payload: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	eventuallyStats(t, tnet, 2*time.Second, "auth-fail drop", func(s Stats) bool {
		return s.DropsAuthFail == 1
	})

	stray, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stray.Close()
	if err := writeFrame(stray, []byte("right"), Envelope{From: 9, To: 99, Payload: []byte("lost")}); err != nil {
		t.Fatal(err)
	}
	eventuallyStats(t, tnet, 2*time.Second, "misroute drop", func(s Stats) bool {
		return s.DropsMisrouted == 1
	})
}
