package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lazarus/internal/metrics"
)

// MemoryConfig shapes the simulated network.
type MemoryConfig struct {
	// QueueDepth is each endpoint's inbox capacity (default 4096).
	// Sends to a full inbox are dropped, as a real lossy network would.
	QueueDepth int
	// BaseDelay and Jitter shape per-message latency; zero means
	// immediate delivery.
	BaseDelay, Jitter time.Duration
	// DropRate is the probability in [0,1) that a message is lost.
	DropRate float64
	// Seed drives the loss/jitter randomness.
	Seed int64
	// Metrics optionally registers the network's counters under
	// "transport.memory.*"; nil keeps them Stats()-only.
	Metrics *metrics.Registry
}

// Memory is an in-process switchboard connecting endpoints by NodeID, with
// programmable latency, loss, per-link cuts and partitions. It is the
// deterministic substrate for protocol tests.
type Memory struct {
	cfg   MemoryConfig
	stats counters

	mu           sync.Mutex
	endpoints    map[NodeID]*memEndpoint
	cut          map[[2]NodeID]bool
	interceptors map[NodeID]SendInterceptor
	rng          *rand.Rand
	closed       bool
	wg           sync.WaitGroup
}

// NewMemory builds an in-memory network.
func NewMemory(cfg MemoryConfig) *Memory {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	m := &Memory{
		cfg:          cfg,
		endpoints:    make(map[NodeID]*memEndpoint),
		cut:          make(map[[2]NodeID]bool),
		interceptors: make(map[NodeID]SendInterceptor),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
	}
	m.stats.init(cfg.Metrics, "transport.memory")
	return m
}

var _ Network = (*Memory)(nil)

// Stats implements Network.
func (m *Memory) Stats() Stats { return m.stats.snapshot() }

type memEndpoint struct {
	id     NodeID
	net    *Memory
	inbox  chan Envelope
	closed chan struct{}
	once   sync.Once
}

// Endpoint implements Network.
func (m *Memory) Endpoint(id NodeID) (Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if ep, ok := m.endpoints[id]; ok {
		return ep, nil
	}
	ep := &memEndpoint{
		id:     id,
		net:    m,
		inbox:  make(chan Envelope, m.cfg.QueueDepth),
		closed: make(chan struct{}),
	}
	m.endpoints[id] = ep
	return ep, nil
}

// Cut severs the link between two nodes in both directions.
func (m *Memory) Cut(a, b NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cut[link(a, b)] = true
}

// Heal restores a previously cut link.
func (m *Memory) Heal(a, b NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cut, link(a, b))
}

// Isolate cuts every link of the node (a crash or a partition of one).
func (m *Memory) Isolate(id NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for other := range m.endpoints {
		if other != id {
			m.cut[link(id, other)] = true
		}
	}
}

// Rejoin heals every link of the node.
func (m *Memory) Rejoin(id NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for other := range m.endpoints {
		delete(m.cut, link(id, other))
	}
}

// Intercept installs fn as the per-sender payload interceptor for id:
// every Send from id first passes through fn, and whatever payloads it
// returns are delivered in the original's place. fn runs outside the
// network lock. A nil fn removes the hook.
func (m *Memory) Intercept(id NodeID, fn SendInterceptor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fn == nil {
		delete(m.interceptors, id)
		return
	}
	m.interceptors[id] = fn
}

func link(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Close implements Network; it waits for in-flight delayed deliveries.
func (m *Memory) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	eps := make([]*memEndpoint, 0, len(m.endpoints))
	for _, ep := range m.endpoints {
		eps = append(eps, ep)
	}
	m.mu.Unlock()
	for _, ep := range eps {
		ep.shut()
	}
	m.wg.Wait()
	return nil
}

// ID implements Endpoint.
func (ep *memEndpoint) ID() NodeID { return ep.id }

// Send implements Endpoint. If a SendInterceptor is installed for this
// sender, the payload is rewritten (outside the network lock) before
// normal cut/loss/delay handling applies to each resulting payload.
func (ep *memEndpoint) Send(to NodeID, payload []byte) error {
	m := ep.net
	m.mu.Lock()
	fn := m.interceptors[ep.id]
	m.mu.Unlock()
	if fn == nil {
		return ep.sendOne(to, payload)
	}
	var first error
	for _, p := range fn(to, payload) {
		if err := ep.sendOne(to, p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (ep *memEndpoint) sendOne(to NodeID, payload []byte) error {
	m := ep.net
	st := &m.stats
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	select {
	case <-ep.closed:
		m.mu.Unlock()
		return ErrClosed
	default:
	}
	if m.cut[link(ep.id, to)] {
		m.mu.Unlock()
		st.dropsLossy.Add(1)
		return nil // silently lost, like a partitioned network
	}
	dst, ok := m.endpoints[to]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("transport: unknown destination %d", to)
	}
	drop := m.cfg.DropRate > 0 && m.rng.Float64() < m.cfg.DropRate
	var delay time.Duration
	if m.cfg.BaseDelay > 0 || m.cfg.Jitter > 0 {
		delay = m.cfg.BaseDelay
		if m.cfg.Jitter > 0 {
			delay += time.Duration(m.rng.Int63n(int64(m.cfg.Jitter)))
		}
	}
	delayed := !drop && delay > 0
	if delayed {
		// The Add must happen under m.mu, while closed is known false:
		// Close marks the network closed under the same lock before
		// calling Wait, so this Add is ordered before the Wait and can
		// never race with it.
		m.wg.Add(1)
	}
	m.mu.Unlock()
	if drop {
		st.dropsLossy.Add(1)
		return nil
	}
	env := Envelope{From: ep.id, To: to, Payload: append([]byte(nil), payload...)}
	st.framesSent.Add(1)
	st.bytesSent.Add(int64(len(payload)))
	deliver := func() {
		select {
		case dst.inbox <- env:
			st.framesRecv.Add(1)
			st.bytesRecv.Add(int64(len(env.Payload)))
		case <-dst.closed:
		default: // inbox full: lossy network drops
			st.dropsInboxFull.Add(1)
		}
	}
	if !delayed {
		deliver()
		return nil
	}
	go func() {
		defer m.wg.Done()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
			deliver()
		case <-dst.closed:
		}
	}()
	return nil
}

// Recv implements Endpoint.
func (ep *memEndpoint) Recv(ctx context.Context) (Envelope, error) {
	select {
	case env := <-ep.inbox:
		return env, nil
	case <-ep.closed:
		// Drain anything already queued before reporting closure.
		select {
		case env := <-ep.inbox:
			return env, nil
		default:
			return Envelope{}, ErrClosed
		}
	case <-ctx.Done():
		return Envelope{}, ctx.Err()
	}
}

func (ep *memEndpoint) shut() {
	ep.once.Do(func() { close(ep.closed) })
}

// Close implements Endpoint.
func (ep *memEndpoint) Close() error {
	ep.shut()
	return nil
}
