package transport

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func recvOne(t *testing.T, ep Endpoint, timeout time.Duration) Envelope {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	env, err := ep.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv on %d: %v", ep.ID(), err)
	}
	return env
}

func TestMemoryBasicDelivery(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, time.Second)
	if env.From != 1 || env.To != 2 || string(env.Payload) != "hello" {
		t.Errorf("envelope = %+v", env)
	}
}

func TestMemorySendCopiesPayload(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a, _ := net.Endpoint(1)
	b, _ := net.Endpoint(2)
	buf := []byte("original")
	if err := a.Send(2, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	env := recvOne(t, b, time.Second)
	if string(env.Payload) != "original" {
		t.Errorf("payload aliased sender buffer: %q", env.Payload)
	}
}

func TestMemoryCutAndHeal(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a, _ := net.Endpoint(1)
	b, _ := net.Endpoint(2)
	net.Cut(1, 2)
	if err := a.Send(2, []byte("lost")); err != nil {
		t.Fatalf("send over cut link errored: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx); err == nil {
		t.Fatal("message crossed a cut link")
	}
	net.Heal(1, 2)
	if err := a.Send(2, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b, time.Second); string(env.Payload) != "back" {
		t.Errorf("payload = %q", env.Payload)
	}
}

func TestMemoryIsolateRejoin(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a, _ := net.Endpoint(1)
	b, _ := net.Endpoint(2)
	c, _ := net.Endpoint(3)
	net.Isolate(2)
	a.Send(2, []byte("x"))
	c.Send(2, []byte("y"))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx); err == nil {
		t.Fatal("isolated node received a message")
	}
	net.Rejoin(2)
	a.Send(2, []byte("z"))
	if env := recvOne(t, b, time.Second); string(env.Payload) != "z" {
		t.Errorf("payload = %q", env.Payload)
	}
}

func TestMemoryDelayDelivers(t *testing.T) {
	net := NewMemory(MemoryConfig{BaseDelay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 1})
	defer net.Close()
	a, _ := net.Endpoint(1)
	b, _ := net.Endpoint(2)
	start := time.Now()
	a.Send(2, []byte("slow"))
	env := recvOne(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("delivered in %v, want >= 10ms", elapsed)
	}
	if string(env.Payload) != "slow" {
		t.Errorf("payload = %q", env.Payload)
	}
}

func TestMemoryDropRate(t *testing.T) {
	net := NewMemory(MemoryConfig{DropRate: 0.5, Seed: 42})
	defer net.Close()
	a, _ := net.Endpoint(1)
	b, _ := net.Endpoint(2)
	const sends = 400
	for i := 0; i < sends; i++ {
		a.Send(2, []byte{byte(i)})
	}
	received := 0
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := b.Recv(ctx)
		cancel()
		if err != nil {
			break
		}
		received++
	}
	if received < sends/4 || received > sends*3/4 {
		t.Errorf("received %d of %d with 50%% drop", received, sends)
	}
}

func TestMemoryUnknownDestination(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a, _ := net.Endpoint(1)
	if err := a.Send(99, []byte("x")); err == nil {
		t.Error("send to unknown node succeeded")
	}
}

func TestMemoryClosedEndpoint(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a, _ := net.Endpoint(1)
	net.Endpoint(2)
	a.Close()
	if err := a.Send(2, []byte("x")); err == nil {
		t.Error("send on closed endpoint succeeded")
	}
	ctx := context.Background()
	if _, err := a.Recv(ctx); err == nil {
		t.Error("recv on closed empty endpoint succeeded")
	}
}

func TestMemoryConcurrentSenders(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	dst, _ := net.Endpoint(0)
	const senders, msgs = 8, 50
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		ep, _ := net.Endpoint(NodeID(s))
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				ep.Send(0, []byte(fmt.Sprintf("%d", i)))
			}
		}(ep)
	}
	wg.Wait()
	got := 0
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_, err := dst.Recv(ctx)
		cancel()
		if err != nil {
			break
		}
		got++
	}
	if got != senders*msgs {
		t.Errorf("received %d of %d concurrent messages", got, senders*msgs)
	}
}

func TestBroadcast(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a, _ := net.Endpoint(1)
	b, _ := net.Endpoint(2)
	c, _ := net.Endpoint(3)
	if err := Broadcast(a, []NodeID{1, 2, 3}, []byte("all")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []Endpoint{b, c} {
		if env := recvOne(t, ep, time.Second); string(env.Payload) != "all" {
			t.Errorf("node %d payload = %q", ep.ID(), env.Payload)
		}
	}
	// Sender must not deliver to itself.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); err == nil {
		t.Error("broadcast delivered to sender")
	}
}

func TestTCPBasicDelivery(t *testing.T) {
	cfg := TCPConfig{
		Addrs: map[NodeID]string{
			1: "127.0.0.1:0",
			2: "127.0.0.1:0",
		},
		Secret: []byte("test-secret"),
	}
	// Port 0 needs resolution: bind node 2 first, then rewrite its addr.
	tnet, err := NewTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tnet.Close()
	b, err := tnet.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addrs[2] = b.(*tcpEndpoint).listener.Addr().String()
	a, err := tnet.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, 2*time.Second)
	if env.From != 1 || string(env.Payload) != "over tcp" {
		t.Errorf("envelope = %+v", env)
	}
}

func TestTCPRejectsTamperedFrames(t *testing.T) {
	var buf bytes.Buffer
	secret := []byte("k")
	if err := writeFrame(&buf, secret, Envelope{From: 1, To: 2, Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[10] ^= 0xff // flip a header bit
	if _, err := readFrame(bytes.NewReader(raw), secret); err == nil {
		t.Error("tampered frame accepted")
	}
	// Wrong secret.
	buf.Reset()
	writeFrame(&buf, secret, Envelope{From: 1, To: 2, Payload: []byte("p")})
	if _, err := readFrame(&buf, []byte("other")); err == nil {
		t.Error("frame with wrong secret accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	secret := []byte("round-trip")
	want := Envelope{From: 7, To: 1003, Payload: bytes.Repeat([]byte{0xAB}, 1024)}
	if err := writeFrame(&buf, secret, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf, secret)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != want.From || got.To != want.To || !bytes.Equal(got.Payload, want.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestFrameLengthLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("k"), Envelope{Payload: make([]byte, maxFrame)}); err == nil {
		t.Error("oversized frame accepted")
	}
	// Hostile length prefix.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(hostile), []byte("k")); err == nil {
		t.Error("hostile length prefix accepted")
	}
}

func TestNewTCPValidation(t *testing.T) {
	if _, err := NewTCP(TCPConfig{Secret: []byte("x")}); err == nil {
		t.Error("no addresses accepted")
	}
	if _, err := NewTCP(TCPConfig{Addrs: map[NodeID]string{1: ":0"}}); err == nil {
		t.Error("no secret accepted")
	}
}

func TestClientIDBase(t *testing.T) {
	if NodeID(3).IsClient() {
		t.Error("replica id classified as client")
	}
	if !ClientIDBase.IsClient() || !(ClientIDBase + 5).IsClient() {
		t.Error("client id not classified as client")
	}
}
