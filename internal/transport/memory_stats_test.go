package transport

import (
	"sync"
	"testing"
	"time"
)

// TestMemoryCloseDuringDelayedSends hammers delayed Sends concurrently
// with Close. The old code called wg.Add for the delivery goroutine
// after releasing the network mutex, racing with Close's wg.Wait — a
// WaitGroup Add-after-Wait misuse that panics (and trips the race
// detector) under teardown.
func TestMemoryCloseDuringDelayedSends(t *testing.T) {
	for round := 0; round < 25; round++ {
		net := NewMemory(MemoryConfig{BaseDelay: time.Millisecond})
		a, err := net.Endpoint(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Endpoint(2); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := a.Send(2, []byte("x")); err != nil {
						return // network closed under us: expected
					}
				}
			}()
		}
		time.Sleep(time.Millisecond)
		net.Close()
		close(stop)
		wg.Wait()
	}
}

// TestMemoryStats exercises every memory-side counter: delivered frames,
// link-cut and injected-loss drops, and inbox-overflow drops.
func TestMemoryStats(t *testing.T) {
	net := NewMemory(MemoryConfig{QueueDepth: 2})
	defer net.Close()
	a, _ := net.Endpoint(1)
	b, _ := net.Endpoint(2)

	if err := a.Send(2, []byte("one")); err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.FramesSent != 1 || s.FramesRecv != 1 || s.BytesSent != 3 || s.BytesRecv != 3 {
		t.Errorf("after one delivery: %+v", s)
	}

	net.Cut(1, 2)
	a.Send(2, []byte("severed"))
	net.Heal(1, 2)
	if s = net.Stats(); s.DropsLossy != 1 {
		t.Errorf("cut-link drop not counted: %+v", s)
	}

	// Inbox capacity is 2 and one slot is taken: two more sends fit,
	// the third overflows.
	for i := 0; i < 3; i++ {
		a.Send(2, []byte("flood"))
	}
	if s = net.Stats(); s.DropsInboxFull != 2 {
		t.Errorf("inbox-overflow drops = %d, want 2: %+v", s.DropsInboxFull, s)
	}
	_ = b
}
