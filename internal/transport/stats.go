package transport

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a network's transport counters.
// Both networks tally every frame they move and, crucially, every frame
// they drop and why: the transports are deliberately lossy (Send never
// blocks on a slow peer), so the drop counters are the only way to tell
// "the network is quiet" apart from "the network is shedding load".
type Stats struct {
	// FramesSent and BytesSent count frames actually put on the wire
	// (TCP) or dispatched toward an inbox (memory). Frames shed before
	// that point appear under a drop counter instead.
	FramesSent, BytesSent int64
	// FramesRecv and BytesRecv count authenticated frames arriving at
	// an endpoint, before inbox admission.
	FramesRecv, BytesRecv int64

	// Dials counts connection attempts; DialFailures the ones that
	// failed; Redials the attempts made after a previously established
	// connection broke (TCP only).
	Dials, DialFailures, Redials int64
	// WriteDeadlineTrips counts frame writes aborted because the peer
	// stopped draining its socket within the write timeout (TCP only).
	WriteDeadlineTrips int64

	// DropsQueueFull counts frames shed because a peer's outbound
	// queue was full — the peer is slow, wedged or unreachable (TCP).
	DropsQueueFull int64
	// DropsInboxFull counts frames shed at the receiver because its
	// inbox was full.
	DropsInboxFull int64
	// DropsAuthFail counts inbound frames rejected by HMAC
	// authentication (TCP).
	DropsAuthFail int64
	// DropsMisrouted counts authenticated frames addressed to a
	// different node (TCP).
	DropsMisrouted int64
	// DropsWriteFail counts frames lost to a broken connection or a
	// tripped write deadline (TCP).
	DropsWriteFail int64
	// DropsLossy counts frames shed by injected loss or severed links
	// (memory).
	DropsLossy int64
}

// Drops totals every drop cause.
func (s Stats) Drops() int64 {
	return s.DropsQueueFull + s.DropsInboxFull + s.DropsAuthFail +
		s.DropsMisrouted + s.DropsWriteFail + s.DropsLossy
}

// String renders the nonzero counters on one line, for logs and the
// lazbench output.
func (s Stats) String() string {
	var b strings.Builder
	add := func(name string, v int64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	add("sent", s.FramesSent)
	add("sentB", s.BytesSent)
	add("recv", s.FramesRecv)
	add("recvB", s.BytesRecv)
	add("dials", s.Dials)
	add("dialFail", s.DialFailures)
	add("redials", s.Redials)
	add("wdeadline", s.WriteDeadlineTrips)
	add("dropQueue", s.DropsQueueFull)
	add("dropInbox", s.DropsInboxFull)
	add("dropAuth", s.DropsAuthFail)
	add("dropMisroute", s.DropsMisrouted)
	add("dropWrite", s.DropsWriteFail)
	add("dropLossy", s.DropsLossy)
	if b.Len() == 0 {
		return "idle"
	}
	return b.String()
}

// counters is the live, atomically updated form of Stats shared by every
// endpoint of one network.
type counters struct {
	framesSent, bytesSent        atomic.Int64
	framesRecv, bytesRecv        atomic.Int64
	dials, dialFailures, redials atomic.Int64
	writeDeadlineTrips           atomic.Int64
	dropsQueueFull               atomic.Int64
	dropsInboxFull               atomic.Int64
	dropsAuthFail                atomic.Int64
	dropsMisrouted               atomic.Int64
	dropsWriteFail               atomic.Int64
	dropsLossy                   atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		FramesSent:         c.framesSent.Load(),
		BytesSent:          c.bytesSent.Load(),
		FramesRecv:         c.framesRecv.Load(),
		BytesRecv:          c.bytesRecv.Load(),
		Dials:              c.dials.Load(),
		DialFailures:       c.dialFailures.Load(),
		Redials:            c.redials.Load(),
		WriteDeadlineTrips: c.writeDeadlineTrips.Load(),
		DropsQueueFull:     c.dropsQueueFull.Load(),
		DropsInboxFull:     c.dropsInboxFull.Load(),
		DropsAuthFail:      c.dropsAuthFail.Load(),
		DropsMisrouted:     c.dropsMisrouted.Load(),
		DropsWriteFail:     c.dropsWriteFail.Load(),
		DropsLossy:         c.dropsLossy.Load(),
	}
}
