package transport

import (
	"fmt"
	"strings"

	"lazarus/internal/metrics"
)

// Stats is a point-in-time snapshot of a network's transport counters.
// Both networks tally every frame they move and, crucially, every frame
// they drop and why: the transports are deliberately lossy (Send never
// blocks on a slow peer), so the drop counters are the only way to tell
// "the network is quiet" apart from "the network is shedding load".
type Stats struct {
	// FramesSent and BytesSent count frames actually put on the wire
	// (TCP) or dispatched toward an inbox (memory). Frames shed before
	// that point appear under a drop counter instead.
	FramesSent, BytesSent int64
	// FramesRecv and BytesRecv count authenticated frames arriving at
	// an endpoint, before inbox admission.
	FramesRecv, BytesRecv int64

	// Dials counts connection attempts; DialFailures the ones that
	// failed; Redials the attempts made after a previously established
	// connection broke (TCP only).
	Dials, DialFailures, Redials int64
	// WriteDeadlineTrips counts frame writes aborted because the peer
	// stopped draining its socket within the write timeout (TCP only).
	WriteDeadlineTrips int64

	// DropsQueueFull counts frames shed because a peer's outbound
	// queue was full — the peer is slow, wedged or unreachable (TCP).
	DropsQueueFull int64
	// DropsInboxFull counts frames shed at the receiver because its
	// inbox was full.
	DropsInboxFull int64
	// DropsAuthFail counts inbound frames rejected by HMAC
	// authentication (TCP).
	DropsAuthFail int64
	// DropsMisrouted counts authenticated frames addressed to a
	// different node (TCP).
	DropsMisrouted int64
	// DropsWriteFail counts frames lost to a broken connection or a
	// tripped write deadline (TCP).
	DropsWriteFail int64
	// DropsLossy counts frames shed by injected loss or severed links
	// (memory).
	DropsLossy int64
}

// Drops totals every drop cause.
func (s Stats) Drops() int64 {
	return s.DropsQueueFull + s.DropsInboxFull + s.DropsAuthFail +
		s.DropsMisrouted + s.DropsWriteFail + s.DropsLossy
}

// String renders the nonzero counters on one line, for logs and the
// lazbench output.
func (s Stats) String() string {
	var b strings.Builder
	add := func(name string, v int64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	add("sent", s.FramesSent)
	add("sentB", s.BytesSent)
	add("recv", s.FramesRecv)
	add("recvB", s.BytesRecv)
	add("dials", s.Dials)
	add("dialFail", s.DialFailures)
	add("redials", s.Redials)
	add("wdeadline", s.WriteDeadlineTrips)
	add("dropQueue", s.DropsQueueFull)
	add("dropInbox", s.DropsInboxFull)
	add("dropAuth", s.DropsAuthFail)
	add("dropMisroute", s.DropsMisrouted)
	add("dropWrite", s.DropsWriteFail)
	add("dropLossy", s.DropsLossy)
	if b.Len() == 0 {
		return "idle"
	}
	return b.String()
}

// counters is the live, atomically updated form of Stats shared by every
// endpoint of one network. Each field is a registry-backed instrument:
// wire a *metrics.Registry into the network's config and the same
// numbers that Stats() reports appear in the registry snapshot under
// "<prefix>.<name>". With no registry the instruments still work, they
// are just unregistered — Stats() is unchanged either way.
type counters struct {
	framesSent, bytesSent        *metrics.Counter
	framesRecv, bytesRecv        *metrics.Counter
	dials, dialFailures, redials *metrics.Counter
	writeDeadlineTrips           *metrics.Counter
	dropsQueueFull               *metrics.Counter
	dropsInboxFull               *metrics.Counter
	dropsAuthFail                *metrics.Counter
	dropsMisrouted               *metrics.Counter
	dropsWriteFail               *metrics.Counter
	dropsLossy                   *metrics.Counter
}

// init binds every counter to the registry under prefix. A nil registry
// hands out working unregistered counters, so init must still run.
func (c *counters) init(reg *metrics.Registry, prefix string) {
	c.framesSent = reg.Counter(prefix + ".frames_sent")
	c.bytesSent = reg.Counter(prefix + ".bytes_sent")
	c.framesRecv = reg.Counter(prefix + ".frames_recv")
	c.bytesRecv = reg.Counter(prefix + ".bytes_recv")
	c.dials = reg.Counter(prefix + ".dials")
	c.dialFailures = reg.Counter(prefix + ".dial_failures")
	c.redials = reg.Counter(prefix + ".redials")
	c.writeDeadlineTrips = reg.Counter(prefix + ".write_deadline_trips")
	c.dropsQueueFull = reg.Counter(prefix + ".drops_queue_full")
	c.dropsInboxFull = reg.Counter(prefix + ".drops_inbox_full")
	c.dropsAuthFail = reg.Counter(prefix + ".drops_auth_fail")
	c.dropsMisrouted = reg.Counter(prefix + ".drops_misrouted")
	c.dropsWriteFail = reg.Counter(prefix + ".drops_write_fail")
	c.dropsLossy = reg.Counter(prefix + ".drops_lossy")
}

func (c *counters) snapshot() Stats {
	return Stats{
		FramesSent:         c.framesSent.Value(),
		BytesSent:          c.bytesSent.Value(),
		FramesRecv:         c.framesRecv.Value(),
		BytesRecv:          c.bytesRecv.Value(),
		Dials:              c.dials.Value(),
		DialFailures:       c.dialFailures.Value(),
		Redials:            c.redials.Value(),
		WriteDeadlineTrips: c.writeDeadlineTrips.Value(),
		DropsQueueFull:     c.dropsQueueFull.Value(),
		DropsInboxFull:     c.dropsInboxFull.Value(),
		DropsAuthFail:      c.dropsAuthFail.Value(),
		DropsMisrouted:     c.dropsMisrouted.Value(),
		DropsWriteFail:     c.dropsWriteFail.Value(),
		DropsLossy:         c.dropsLossy.Value(),
	}
}
