package transport

import (
	"testing"

	"lazarus/internal/metrics"
)

// TestMemoryStatsMirroredInRegistry checks that a network built with a
// registry reports the same counts through Stats() and the registry.
func TestMemoryStatsMirroredInRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMemory(MemoryConfig{Metrics: reg})
	defer m.Close()
	a, err := m.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Endpoint(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Send(2, []byte("ping")); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.FramesSent != 5 {
		t.Fatalf("FramesSent = %d, want 5", st.FramesSent)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["transport.memory.frames_sent"]; got != st.FramesSent {
		t.Errorf("registry frames_sent = %d, Stats = %d", got, st.FramesSent)
	}
	if got := snap.Counters["transport.memory.bytes_sent"]; got != st.BytesSent {
		t.Errorf("registry bytes_sent = %d, Stats = %d", got, st.BytesSent)
	}
}
