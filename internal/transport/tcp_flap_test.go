package transport

import (
	"testing"
	"time"
)

// TestTCPRedialCutsBackoffOnSendAfterHeal scripts a link flap: the peer
// is down long enough for the writer's redial backoff to reach its cap,
// then comes back. A send issued after the heal must trigger a prompt
// reconnect — the old sleep waited out the full capped backoff (here 3s
// plus jitter) no matter what, so a healed link stayed unused for
// seconds while frames piled up behind a timer.
func TestTCPRedialCutsBackoffOnSendAfterHeal(t *testing.T) {
	cfg := TCPConfig{
		DialTimeout:      200 * time.Millisecond,
		RedialBackoff:    10 * time.Millisecond,
		RedialBackoffMax: 3 * time.Second,
	}
	// Node 3's port is reserved then released: down for now, but
	// re-bindable when the flap ends.
	tnet, a, _ := newTwoNodeTCP(t, cfg, blackholeAddr(t))

	// Flap phase 1: one frame toward the dead peer parks its writer in
	// the dial/backoff loop. Nine failures sleep 10+20+...+1280ms, after
	// which the backoff sits at the 3s cap.
	if err := a.Send(3, []byte("during-down")); err != nil {
		t.Fatal(err)
	}
	eventuallyStats(t, tnet, 20*time.Second, "backoff growth", func(s Stats) bool {
		return s.DialFailures >= 9
	})

	// Flap phase 2: the link heals — node 3's listener comes up — while
	// the writer is at most a poll interval into a >=3s sleep.
	c, err := tnet.Endpoint(3)
	if err != nil {
		t.Fatalf("endpoint 3: %v", err)
	}
	start := time.Now()
	if err := a.Send(3, []byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	for {
		env := recvOne(t, c, 5*time.Second)
		if string(env.Payload) == "after-heal" {
			break
		}
	}
	if elapsed := time.Since(start); elapsed >= 1500*time.Millisecond {
		t.Fatalf("post-heal send took %v to arrive; the writer slept out its capped backoff instead of redialing on the send", elapsed)
	}
}
