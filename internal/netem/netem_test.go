package netem

import (
	"context"
	"testing"
	"time"

	"lazarus/internal/transport"
)

func wrapMemory(t *testing.T, profile string, seed int64) *Network {
	t.Helper()
	p, err := ByName(profile)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	inner := transport.NewMemory(transport.MemoryConfig{})
	n := Wrap(inner, Config{Profile: p, Seed: seed})
	t.Cleanup(func() { n.Close() })
	return n
}

func recvOne(t *testing.T, ep transport.Endpoint, timeout time.Duration) (transport.Envelope, bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	env, err := ep.Recv(ctx)
	if err != nil {
		return transport.Envelope{}, false
	}
	return env, true
}

// TestDeterministicDecisions drives the same send sequence through two
// identically-seeded layers and requires identical drop / duplicate /
// reorder decisions — the invariant the chaos replay tests build on.
func TestDeterministicDecisions(t *testing.T) {
	run := func() Stats {
		n := wrapMemory(t, "flaky", 42)
		a, err := n.Endpoint(1)
		if err != nil {
			t.Fatalf("endpoint: %v", err)
		}
		if _, err := n.Endpoint(2); err != nil {
			t.Fatalf("endpoint: %v", err)
		}
		payload := []byte("frame")
		for i := 0; i < 2000; i++ {
			if err := a.Send(2, payload); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		return n.NetemStats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", s1, s2)
	}
	if s1.DropsLink == 0 || s1.Duplicates == 0 || s1.Reordered == 0 {
		t.Fatalf("flaky profile exercised no loss machinery: %+v", s1)
	}
	if s1.Frames != 2000 {
		t.Fatalf("frames = %d, want 2000", s1.Frames)
	}
}

// TestStreamsPerLink checks that traffic on one link does not perturb
// the decisions on another: the per-directed-link RNG streams are
// independent.
func TestStreamsPerLink(t *testing.T) {
	run := func(noise bool) Stats {
		n := wrapMemory(t, "flaky", 7)
		a, _ := n.Endpoint(1)
		b, _ := n.Endpoint(2)
		n.Endpoint(3)
		if noise {
			for i := 0; i < 500; i++ {
				b.Send(3, []byte("noise"))
			}
		}
		before := n.NetemStats()
		for i := 0; i < 1000; i++ {
			a.Send(2, []byte("frame"))
		}
		after := n.NetemStats()
		return Stats{
			DropsLink:  after.DropsLink - before.DropsLink,
			Duplicates: after.Duplicates - before.Duplicates,
			Reordered:  after.Reordered - before.Reordered,
		}
	}
	quiet, noisy := run(false), run(true)
	if quiet != noisy {
		t.Fatalf("link 1→2 decisions changed with unrelated traffic: %+v vs %+v", quiet, noisy)
	}
}

// TestAsymmetricBlock opens only the 1→2 edge: 1's frames vanish while
// 2's frames still arrive — A hears B, B doesn't hear A.
func TestAsymmetricBlock(t *testing.T) {
	n := wrapMemory(t, "lan", 1)
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	n.Block(1, 2)
	if err := a.Send(2, []byte("blocked")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := b.Send(1, []byte("heard")); err != nil {
		t.Fatalf("send: %v", err)
	}
	env, ok := recvOne(t, a, 2*time.Second)
	if !ok || string(env.Payload) != "heard" {
		t.Fatalf("reverse direction should deliver, got ok=%v payload=%q", ok, env.Payload)
	}
	if _, ok := recvOne(t, b, 100*time.Millisecond); ok {
		t.Fatal("blocked direction delivered a frame")
	}
	if s := n.NetemStats(); s.DropsPartition != 1 {
		t.Fatalf("DropsPartition = %d, want 1", s.DropsPartition)
	}
	n.Unblock(1, 2)
	if err := a.Send(2, []byte("healed")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if env, ok := recvOne(t, b, 2*time.Second); !ok || string(env.Payload) != "healed" {
		t.Fatalf("healed direction should deliver, got ok=%v payload=%q", ok, env.Payload)
	}
}

// TestPartitionShapes checks the three builders block exactly the edges
// they advertise.
func TestPartitionShapes(t *testing.T) {
	members := []transport.NodeID{0, 1, 2, 3}
	blocked := func(p *Partition, src, dst transport.NodeID) bool {
		for _, e := range p.Edges {
			if e[0] == src && e[1] == dst {
				return true
			}
		}
		return false
	}
	sym := SymmetricSplit(members, 2)
	if !blocked(sym, 0, 2) || !blocked(sym, 2, 0) || blocked(sym, 0, 1) || blocked(sym, 2, 3) {
		t.Fatalf("symmetric split edges wrong: %v", sym.Edges)
	}
	asym := AsymmetricMute(members, 1)
	if !blocked(asym, 1, 0) || blocked(asym, 0, 1) {
		t.Fatalf("asymmetric mute edges wrong: %v", asym.Edges)
	}
	iso := IsolateNode(members, 3)
	if !blocked(iso, 3, 0) || !blocked(iso, 0, 3) || blocked(iso, 0, 1) {
		t.Fatalf("isolation edges wrong: %v", iso.Edges)
	}
	// Apply/Revert round-trip leaves the layer clean.
	n := wrapMemory(t, "lan", 1)
	n.Apply(sym)
	n.Revert(sym)
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(2)
	_ = b
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := recvOne(t, b, 2*time.Second); !ok {
		t.Fatal("reverted partition still blocking")
	}
}

// TestLatencyApplied checks a wan-profile frame is actually held for the
// link's base delay.
func TestLatencyApplied(t *testing.T) {
	n := wrapMemory(t, "wan", 3)
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	start := time.Now()
	if err := a.Send(2, []byte("slow")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := recvOne(t, b, 5*time.Second); !ok {
		t.Fatal("frame never arrived")
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("wan frame arrived after %v, want >= ~15ms base delay", el)
	}
}

// TestBandwidthQueues checks frames queue behind a saturated pipe: at
// 8MB/s, forty 64KiB frames need ~300ms of serialization.
func TestBandwidthQueues(t *testing.T) {
	n := wrapMemory(t, "wan", 5)
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	payload := make([]byte, 64<<10)
	start := time.Now()
	for i := 0; i < 40; i++ {
		if err := a.Send(2, payload); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 30 && time.Now().Before(deadline) {
		if _, ok := recvOne(t, b, time.Second); ok {
			got++
		}
	}
	if got < 30 {
		t.Fatalf("only %d/40 frames arrived (wan drop rate cannot explain 10+ losses)", got)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("2.5MB crossed an 8MB/s link in %v; bandwidth cap not applied", el)
	}
}

// TestByNameRejectsUnknown pins the error path -wan flags rely on.
func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName("dialup"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Fatalf("registered profile %q rejected: %v", name, err)
		}
	}
}
