package netem

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"lazarus/internal/transport"
)

// LinkClass is the condition set of one directed link.
type LinkClass struct {
	// BaseDelay is the minimum one-way latency; Jitter adds a uniform
	// [0,Jitter) component per frame.
	BaseDelay, Jitter time.Duration
	// DropRate, DupRate and ReorderRate are per-frame probabilities.
	DropRate, DupRate, ReorderRate float64
	// ReorderDelay is the extra delay a reordered frame incurs (it
	// arrives behind frames sent after it).
	ReorderDelay time.Duration
	// BandwidthBPS caps the link's throughput in bytes/second (0 =
	// unlimited); frames queue behind the bytes already serializing.
	BandwidthBPS int64
}

// Profile names a set of link conditions plus how aggressively the chaos
// harness schedules partitions under it.
type Profile struct {
	// Name is the identifier used by -wan flags.
	Name string
	// Description is one line for docs and reports.
	Description string
	// Link returns the condition class of directed link src→dst.
	Link func(src, dst transport.NodeID) LinkClass
	// PartitionProb is the per-round probability that the chaos harness
	// opens a partition episode under this profile.
	PartitionProb float64
}

// uniform builds a Link function giving every directed link the same
// class.
func uniform(c LinkClass) func(src, dst transport.NodeID) LinkClass {
	return func(src, dst transport.NodeID) LinkClass { return c }
}

// region maps a node to one of three geographic regions, deterministic
// in the node id. Clients land in regions too (ClientIDBase keeps their
// ids disjoint from replicas, not their regions — a client is as remote
// as any replica).
func region(id transport.NodeID) int { return int(id) % 3 }

// Profiles is the named-profile registry.
var Profiles = map[string]*Profile{
	"lan": {
		Name:        "lan",
		Description: "one switch: 200µs±100µs, lossless",
		Link: uniform(LinkClass{
			BaseDelay: 200 * time.Microsecond,
			Jitter:    100 * time.Microsecond,
		}),
		PartitionProb: 0,
	},
	"wan": {
		Name:        "wan",
		Description: "continental WAN: 15ms±5ms, 0.5% loss, 0.1% dup, 2% reorder(+10ms), 8MB/s",
		Link: uniform(LinkClass{
			BaseDelay:    15 * time.Millisecond,
			Jitter:       5 * time.Millisecond,
			DropRate:     0.005,
			DupRate:      0.001,
			ReorderRate:  0.02,
			ReorderDelay: 10 * time.Millisecond,
			BandwidthBPS: 8 << 20,
		}),
		PartitionProb: 0.2,
	},
	"flaky": {
		Name:        "flaky",
		Description: "congested last mile: 5ms±10ms, 5% loss, 1% dup, 5% reorder(+20ms)",
		Link: uniform(LinkClass{
			BaseDelay:    5 * time.Millisecond,
			Jitter:       10 * time.Millisecond,
			DropRate:     0.05,
			DupRate:      0.01,
			ReorderRate:  0.05,
			ReorderDelay: 20 * time.Millisecond,
		}),
		PartitionProb: 0.35,
	},
	"geo3": {
		Name:        "geo3",
		Description: "three regions (node%3): intra 1ms±0.5ms clean, cross 8–26ms±3ms asymmetric, 1% loss",
		Link: func(src, dst transport.NodeID) LinkClass {
			rs, rd := region(src), region(dst)
			if rs == rd {
				return LinkClass{
					BaseDelay: time.Millisecond,
					Jitter:    500 * time.Microsecond,
				}
			}
			// Asymmetric on purpose: src→dst and dst→src get different
			// base delays, so even the fault-free geo3 world exercises
			// one-way-skewed timing.
			return LinkClass{
				BaseDelay:    time.Duration(5+3*rs+7*rd) * time.Millisecond,
				Jitter:       3 * time.Millisecond,
				DropRate:     0.01,
				ReorderRate:  0.01,
				ReorderDelay: 5 * time.Millisecond,
			}
		},
		PartitionProb: 0.3,
	},
}

// ByName resolves a profile name.
func ByName(name string) (*Profile, error) {
	if p, ok := Profiles[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("netem: unknown profile %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names lists the registered profiles, sorted.
func Names() []string {
	out := make([]string, 0, len(Profiles))
	for name := range Profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Partition is one scheduled episode, expressed as the directed edges it
// blocks. Building it as explicit edges keeps asymmetric cuts first
// class: an edge [a,b] silences a's frames toward b and nothing else.
type Partition struct {
	// Kind is "sym", "asym" or "iso" (for schedules and reports).
	Kind string
	// Desc renders the episode for deterministic schedule strings.
	Desc string
	// Edges are the directed [src,dst] pairs blocked while open.
	Edges [][2]transport.NodeID
}

// SymmetricSplit partitions members into members[:k] and members[k:],
// blocking both directions across the cut.
func SymmetricSplit(members []transport.NodeID, k int) *Partition {
	p := &Partition{Kind: "sym"}
	for _, a := range members[:k] {
		for _, b := range members[k:] {
			p.Edges = append(p.Edges, [2]transport.NodeID{a, b}, [2]transport.NodeID{b, a})
		}
	}
	p.Desc = fmt.Sprintf("sym[%v|%v]", members[:k], members[k:])
	return p
}

// AsymmetricMute blocks mute's outbound edges toward every other member:
// mute still hears the group, the group no longer hears mute — the "A
// hears B, B doesn't hear A" case.
func AsymmetricMute(members []transport.NodeID, mute transport.NodeID) *Partition {
	p := &Partition{Kind: "asym", Desc: fmt.Sprintf("mute[%d]", mute)}
	for _, b := range members {
		if b != mute {
			p.Edges = append(p.Edges, [2]transport.NodeID{mute, b})
		}
	}
	return p
}

// IsolateNode blocks both directions between node and every other
// member (primary-isolating when node is the current primary).
func IsolateNode(members []transport.NodeID, node transport.NodeID) *Partition {
	p := &Partition{Kind: "iso", Desc: fmt.Sprintf("iso[%d]", node)}
	for _, b := range members {
		if b != node {
			p.Edges = append(p.Edges, [2]transport.NodeID{node, b}, [2]transport.NodeID{b, node})
		}
	}
	return p
}

// DrawPartition deterministically picks the episode'th partition over
// members from rng: episodes cycle symmetric split → asymmetric mute →
// isolation, each over rng-chosen nodes. One rng draw per call keeps the
// stream position independent of the kind chosen.
func DrawPartition(rng *rand.Rand, members []transport.NodeID, episode int) *Partition {
	if len(members) < 2 {
		return &Partition{Kind: "none", Desc: "none"}
	}
	pick := rng.Intn(len(members))
	switch episode % 3 {
	case 0:
		k := len(members) / 2
		if k == 0 {
			k = 1
		}
		return SymmetricSplit(members, k)
	case 1:
		return AsymmetricMute(members, members[pick])
	default:
		return IsolateNode(members, members[pick])
	}
}
