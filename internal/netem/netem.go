// Package netem is a deterministic network-condition layer: it wraps any
// transport.Network (the in-memory switchboard or the TCP transport) and
// subjects every directed link to a configurable latency/jitter
// distribution, a bandwidth cap, drop/duplicate/reorder rates, and
// directed partitions (A can hear B while B cannot hear A). Every random
// decision on a link is drawn from that link's own seeded RNG stream, so
// two runs with the same seed and the same send sequence make identical
// drop/duplicate/reorder decisions — the property the chaos harness's
// replay tests depend on.
//
// The wrapper sits strictly on the send side: a delayed frame is held in
// a lifecycle-tied goroutine and handed to the inner network's Send when
// its delivery time arrives. The inner network keeps full ownership of
// queues, interceptors and fault injection — chaos reaches them through
// Inner().
package netem

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// Config configures the condition layer.
type Config struct {
	// Profile selects the per-link conditions (nil behaves like Profiles
	// lan: negligible delay, no loss).
	Profile *Profile
	// Seed roots the per-directed-link RNG streams. Link (src,dst) draws
	// from a stream derived as Seed^(src<<32)^dst, so the decisions on
	// one link do not depend on traffic order across links.
	Seed int64
	// Metrics optionally registers the layer's counters under "netem.*".
	Metrics *metrics.Registry
}

// Network wraps an inner transport with link conditioning. It implements
// transport.Network.
type Network struct {
	inner   transport.Network
	profile *Profile
	seed    int64
	ins     instruments

	mu      sync.Mutex
	links   map[[2]transport.NodeID]*linkState
	blocked map[[2]transport.NodeID]bool // directed: [src,dst]
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// linkState is the per-directed-link conditioning state.
type linkState struct {
	rng   *rand.Rand
	class LinkClass
	// nextFree is when the link's serialization pipe drains; a frame
	// sent before then queues behind the bytes already in flight
	// (bandwidth cap as a single-server queue).
	nextFree time.Time
}

// instruments are the layer's registry-backed counters; with a nil
// registry they still count, just unregistered.
type instruments struct {
	frames     *metrics.Counter
	delayed    *metrics.Counter
	dropsLink  *metrics.Counter
	dropsPart  *metrics.Counter
	duplicates *metrics.Counter
	reordered  *metrics.Counter
	delayUS    *metrics.Histogram
}

func (ins *instruments) init(reg *metrics.Registry) {
	ins.frames = reg.Counter("netem.frames")
	ins.delayed = reg.Counter("netem.delayed")
	ins.dropsLink = reg.Counter("netem.drops_link")
	ins.dropsPart = reg.Counter("netem.drops_partition")
	ins.duplicates = reg.Counter("netem.duplicates")
	ins.reordered = reg.Counter("netem.reordered")
	ins.delayUS = reg.Histogram("netem.delay_us")
}

// Stats is a snapshot of the layer's counters.
type Stats struct {
	Frames         int64 // frames entering the layer
	Delayed        int64 // frames held for a nonzero delay
	DropsLink      int64 // frames shed by the link's loss rate
	DropsPartition int64 // frames shed by an open partition
	Duplicates     int64 // extra copies injected
	Reordered      int64 // frames given an extra reorder delay
}

// Wrap builds the condition layer over inner. Closing the returned
// network closes inner too.
func Wrap(inner transport.Network, cfg Config) *Network {
	p := cfg.Profile
	if p == nil {
		p = Profiles["lan"]
	}
	n := &Network{
		inner:   inner,
		profile: p,
		seed:    cfg.Seed,
		links:   make(map[[2]transport.NodeID]*linkState),
		blocked: make(map[[2]transport.NodeID]bool),
		done:    make(chan struct{}),
	}
	n.ins.init(cfg.Metrics)
	return n
}

// Inner returns the wrapped network, for fault injection that must reach
// the underlying transport (interceptors, crash-style link cuts).
func (n *Network) Inner() transport.Network { return n.inner }

// Profile returns the active link-condition profile.
func (n *Network) Profile() *Profile { return n.profile }

// NetemStats snapshots the layer's own counters (distinct from the inner
// transport's Stats, which Stats() passes through).
func (n *Network) NetemStats() Stats {
	return Stats{
		Frames:         n.ins.frames.Value(),
		Delayed:        n.ins.delayed.Value(),
		DropsLink:      n.ins.dropsLink.Value(),
		DropsPartition: n.ins.dropsPart.Value(),
		Duplicates:     n.ins.duplicates.Value(),
		Reordered:      n.ins.reordered.Value(),
	}
}

// Stats implements transport.Network by delegating to the inner network.
func (n *Network) Stats() transport.Stats { return n.inner.Stats() }

// Endpoint wraps the inner endpoint of id.
func (n *Network) Endpoint(id transport.NodeID) (transport.Endpoint, error) {
	ep, err := n.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &endpoint{net: n, inner: ep, id: id}, nil
}

// Close drains the delay goroutines, then closes the inner network.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return n.inner.Close()
	}
	n.closed = true
	close(n.done)
	n.mu.Unlock()
	n.wg.Wait()
	return n.inner.Close()
}

// Block opens a directed partition: frames from src to dst are dropped
// until Unblock. The reverse direction is unaffected — an asymmetric
// partition is two nodes with only one of the two Blocks applied.
func (n *Network) Block(src, dst transport.NodeID) {
	n.mu.Lock()
	n.blocked[[2]transport.NodeID{src, dst}] = true
	n.mu.Unlock()
}

// Unblock heals one directed partition edge.
func (n *Network) Unblock(src, dst transport.NodeID) {
	n.mu.Lock()
	delete(n.blocked, [2]transport.NodeID{src, dst})
	n.mu.Unlock()
}

// Apply opens every directed edge of the partition.
func (n *Network) Apply(p *Partition) {
	n.mu.Lock()
	for _, e := range p.Edges {
		n.blocked[e] = true
	}
	n.mu.Unlock()
}

// Revert heals every directed edge of the partition.
func (n *Network) Revert(p *Partition) {
	n.mu.Lock()
	for _, e := range p.Edges {
		delete(n.blocked, e)
	}
	n.mu.Unlock()
}

// HealAll removes every partition edge.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.blocked = make(map[[2]transport.NodeID]bool)
	n.mu.Unlock()
}

// link returns (creating if needed) the state of directed link src→dst.
// Caller holds n.mu.
func (n *Network) link(src, dst transport.NodeID) *linkState {
	key := [2]transport.NodeID{src, dst}
	ls, ok := n.links[key]
	if !ok {
		ls = &linkState{
			rng:   rand.New(rand.NewSource(linkSeed(n.seed, src, dst))),
			class: n.profile.Link(src, dst),
		}
		n.links[key] = ls
	}
	return ls
}

// linkSeed derives the RNG stream of directed link src→dst from the
// layer seed. Mirrors the TCP transport's jitterSeed construction.
func linkSeed(seed int64, src, dst transport.NodeID) int64 {
	return seed ^ int64(src)<<32 ^ int64(dst)
}

// delivery is one planned frame arrival.
type delivery struct {
	delay     time.Duration
	duplicate bool
}

// plan decides, under the network lock, what happens to one frame on
// src→dst: every call consumes exactly four draws from the link's RNG
// stream (drop, duplicate, jitter, reorder) regardless of outcome, so
// the stream position depends only on how many frames the link carried —
// never on which way earlier decisions went.
func (n *Network) plan(src, dst transport.NodeID, size int) (dels []delivery, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, false
	}
	n.ins.frames.Inc()
	if n.blocked[[2]transport.NodeID{src, dst}] {
		n.ins.dropsPart.Inc()
		return nil, true
	}
	ls := n.link(src, dst)
	c := &ls.class
	pDrop := ls.rng.Float64()
	pDup := ls.rng.Float64()
	uJit := ls.rng.Float64()
	pReord := ls.rng.Float64()
	if c.DropRate > 0 && pDrop < c.DropRate {
		n.ins.dropsLink.Inc()
		return nil, true
	}
	delay := c.BaseDelay
	if c.Jitter > 0 {
		delay += time.Duration(uJit * float64(c.Jitter))
	}
	if c.BandwidthBPS > 0 {
		// Single-server queue: the frame starts transmitting when the
		// link's pipe drains, and occupies it for size/bandwidth.
		now := time.Now()
		start := now
		if ls.nextFree.After(now) {
			start = ls.nextFree
		}
		ser := time.Duration(size) * time.Second / time.Duration(c.BandwidthBPS)
		ls.nextFree = start.Add(ser)
		delay += start.Sub(now) + ser
	}
	if c.ReorderRate > 0 && pReord < c.ReorderRate {
		delay += c.ReorderDelay
		n.ins.reordered.Inc()
	}
	dels = append(dels, delivery{delay: delay})
	if c.DupRate > 0 && pDup < c.DupRate {
		// The duplicate trails the original by the link's base delay, the
		// usual shape of a retransmission-induced duplicate.
		dels = append(dels, delivery{delay: delay + c.BaseDelay, duplicate: true})
		n.ins.duplicates.Inc()
	}
	return dels, true
}

// endpoint conditions one node's outbound traffic.
type endpoint struct {
	net   *Network
	inner transport.Endpoint
	id    transport.NodeID
}

func (e *endpoint) ID() transport.NodeID { return e.id }

func (e *endpoint) Recv(ctx context.Context) (transport.Envelope, error) { return e.inner.Recv(ctx) }

func (e *endpoint) Close() error { return e.inner.Close() }

// Send plans the frame's fate under the link's conditions and forwards
// it to the inner transport, immediately or from a delay goroutine. The
// payload is forwarded by reference: senders never mutate a payload
// after Send (the BFT layer broadcasts one shared encoding), and the
// inner transport copies on delivery where it must.
func (e *endpoint) Send(to transport.NodeID, payload []byte) error {
	n := e.net
	dels, ok := n.plan(e.id, to, len(payload))
	if !ok {
		return transport.ErrClosed
	}
	for _, d := range dels {
		if d.delay <= 0 {
			e.forward(to, payload)
			continue
		}
		n.ins.delayed.Inc()
		n.ins.delayUS.Observe(d.delay.Microseconds())
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return transport.ErrClosed
		}
		// The Add must happen under n.mu while closed is known false:
		// Close marks the network closed under the same lock before it
		// calls Wait, so no Add can race the Wait.
		n.wg.Add(1)
		n.mu.Unlock()
		go e.deliverLater(to, payload, d.delay)
	}
	return nil
}

// deliverLater forwards the frame after its planned delay, or gives up
// when the layer closes.
func (e *endpoint) deliverLater(to transport.NodeID, payload []byte, delay time.Duration) {
	defer e.net.wg.Done()
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		e.forward(to, payload)
	case <-e.net.done:
	}
}

// forward hands the frame to the inner transport; inner-side errors are
// absorbed (Send is best-effort by contract, and the inner network's own
// drop counters record the loss).
func (e *endpoint) forward(to transport.NodeID, payload []byte) {
	_ = e.inner.Send(to, payload)
}
