// Package catalog enumerates the operating-system versions used throughout
// the Lazarus evaluation: the 21 OS versions considered in the risk
// experiments (paper §6) and the 17-version subset that the prototype can
// deploy as virtual machines (paper Table 2), together with the resource
// profile of each VM (cores, memory, and a calibrated speed factor).
//
// The speed factors are derived from Figure 7 of the paper: they encode the
// throughput each OS achieved relative to the homogeneous bare-metal
// baseline under the CPU-bound 0/0 microbenchmark. They drive the
// discrete-event performance model (internal/perfmodel) that regenerates
// the paper's performance figures.
package catalog

import (
	"fmt"
	"sort"
	"time"
)

// Family identifies an operating-system distribution family. Vulnerability
// sharing is far more common inside a family than across families, which is
// the structural fact the Lazarus risk metric exploits.
type Family int

// Families of the OS versions used in the paper.
const (
	FamilyUbuntu Family = iota + 1
	FamilyDebian
	FamilyFedora
	FamilyRedhat
	FamilyOpenSuse
	FamilyWindows
	FamilyFreeBSD
	FamilyOpenBSD
	FamilySolaris
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyUbuntu:
		return "Ubuntu"
	case FamilyDebian:
		return "Debian"
	case FamilyFedora:
		return "Fedora"
	case FamilyRedhat:
		return "Redhat"
	case FamilyOpenSuse:
		return "OpenSuse"
	case FamilyWindows:
		return "Windows"
	case FamilyFreeBSD:
		return "FreeBSD"
	case FamilyOpenBSD:
		return "OpenBSD"
	case FamilySolaris:
		return "Solaris"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Kernel groups families that share a kernel lineage. Cross-family
// vulnerability sharing is most likely between families with a common
// kernel (e.g. the Linux distributions), which the synthetic dataset
// generator uses to place shared CVEs realistically.
type Kernel int

// Kernel lineages.
const (
	KernelLinux Kernel = iota + 1
	KernelNT
	KernelFreeBSD
	KernelOpenBSD
	KernelSunOS
)

// String returns the kernel lineage name.
func (k Kernel) String() string {
	switch k {
	case KernelLinux:
		return "Linux"
	case KernelNT:
		return "NT"
	case KernelFreeBSD:
		return "FreeBSD"
	case KernelOpenBSD:
		return "OpenBSD"
	case KernelSunOS:
		return "SunOS"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Kernel returns the kernel lineage of the family.
func (f Family) Kernel() Kernel {
	switch f {
	case FamilyUbuntu, FamilyDebian, FamilyFedora, FamilyRedhat, FamilyOpenSuse:
		return KernelLinux
	case FamilyWindows:
		return KernelNT
	case FamilyFreeBSD:
		return KernelFreeBSD
	case FamilyOpenBSD:
		return KernelOpenBSD
	case FamilySolaris:
		return KernelSunOS
	default:
		return 0
	}
}

// VMProfile describes the virtual machine resources available to an OS in
// the prototype's VirtualBox-based execution plane (paper Table 2), plus a
// speed factor calibrated against the bare-metal baseline.
type VMProfile struct {
	// Cores is the number of virtual CPUs VirtualBox supports for this
	// guest (paper Table 2; Solaris and OpenBSD guests are limited to 1).
	Cores int
	// MemoryGB is the guest memory in gigabytes (paper Table 2).
	MemoryGB int
	// SpeedFactor is the per-core execution speed of the guest relative
	// to one bare-metal core (1.0 = bare-metal speed). Calibrated from
	// Figure 7's 1024/1024 (CPU/byte-bound) workload.
	SpeedFactor float64
	// MsgFactor scales the guest's sustainable small-message rate
	// relative to bare metal: VirtualBox NIC emulation and interrupt
	// handling cap packets-per-second long before bandwidth, which is
	// what separates Figure 7's three groups on the 0/0 workload (and
	// pins single-vCPU guests at ≈3000 ops/s regardless of payload).
	MsgFactor float64
	// NetFactor scales effective network bandwidth relative to bare
	// metal.
	NetFactor float64
	// BootTime is how long the guest takes to boot to a usable replica
	// (paper §7.3: Ubuntu 16.04 boots in ~40 s under Lazarus, while the
	// bare-metal Ubuntu 14.04 took over 2 minutes).
	BootTime time.Duration
}

// OS describes one operating-system version from the study.
type OS struct {
	// ID is the short identifier used in the paper (e.g. "UB16", "SO11").
	ID string
	// Name is the human-readable name (e.g. "Ubuntu 16.04").
	Name string
	// Family is the distribution family.
	Family Family
	// CPEProduct is the CPE 2.3 product string used to match NVD entries
	// (e.g. "canonical:ubuntu_linux:16.04").
	CPEProduct string
	// Released is the version release date; the dataset generator will
	// not assign vulnerabilities to an OS before its release.
	Released time.Time
	// VM is the virtual-machine profile; nil when the prototype's
	// provisioning stack cannot deploy this OS (the 4 versions in the
	// §6 study that Vagrant did not support).
	VM *VMProfile
}

// Deployable reports whether the prototype can run this OS as a replica VM
// (i.e. whether it is among the 17 versions of Table 2).
func (o OS) Deployable() bool { return o.VM != nil }

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func vm(cores, memGB int, speed, msgf, netf float64, boot time.Duration) *VMProfile {
	return &VMProfile{
		Cores:       cores,
		MemoryGB:    memGB,
		SpeedFactor: speed,
		MsgFactor:   msgf,
		NetFactor:   netf,
		BootTime:    boot,
	}
}

// all lists the 21 OS versions of the §6 study. The 17 with a non-nil VM
// profile form Table 2. Speed/net factors are calibrated so that the
// perfmodel reproduces the relative throughput ordering of Figure 7:
// Ubuntu/OpenSuse/Fedora ≈ 66% of bare metal on 0/0 and ≈ 75% on
// 1024/1024; Debian/Windows/FreeBSD much slower on 0/0 but close on
// 1024/1024; single-core Solaris/OpenBSD ≤ 3000 ops/s on both.
var all = []OS{
	{ID: "UB14", Name: "Ubuntu 14.04", Family: FamilyUbuntu, CPEProduct: "canonical:ubuntu_linux:14.04", Released: date(2014, 4, 17), VM: vm(4, 15, 0.65, 0.28, 0.88, 40*time.Second)},
	{ID: "UB16", Name: "Ubuntu 16.04", Family: FamilyUbuntu, CPEProduct: "canonical:ubuntu_linux:16.04", Released: date(2016, 4, 21), VM: vm(4, 15, 0.68, 0.3, 0.9, 40*time.Second)},
	{ID: "UB17", Name: "Ubuntu 17.04", Family: FamilyUbuntu, CPEProduct: "canonical:ubuntu_linux:17.04", Released: date(2017, 4, 13), VM: vm(4, 15, 0.7, 0.31, 0.9, 38*time.Second)},
	{ID: "OS42", Name: "OpenSuse 42.1", Family: FamilyOpenSuse, CPEProduct: "opensuse:leap:42.1", Released: date(2015, 11, 4), VM: vm(4, 15, 0.62, 0.28, 0.88, 45*time.Second)},
	{ID: "FE24", Name: "Fedora 24", Family: FamilyFedora, CPEProduct: "fedoraproject:fedora:24", Released: date(2016, 6, 21), VM: vm(4, 15, 0.66, 0.29, 0.89, 42*time.Second)},
	{ID: "FE25", Name: "Fedora 25", Family: FamilyFedora, CPEProduct: "fedoraproject:fedora:25", Released: date(2016, 11, 22), VM: vm(4, 15, 0.64, 0.28, 0.88, 42*time.Second)},
	{ID: "FE26", Name: "Fedora 26", Family: FamilyFedora, CPEProduct: "fedoraproject:fedora:26", Released: date(2017, 7, 11), VM: vm(4, 15, 0.62, 0.27, 0.88, 42*time.Second)},
	{ID: "DE7", Name: "Debian 7", Family: FamilyDebian, CPEProduct: "debian:debian_linux:7.0", Released: date(2013, 5, 4), VM: vm(4, 15, 0.52, 0.1, 0.8, 50*time.Second)},
	{ID: "DE8", Name: "Debian 8", Family: FamilyDebian, CPEProduct: "debian:debian_linux:8.0", Released: date(2015, 4, 25), VM: vm(4, 15, 0.55, 0.12, 0.82, 48*time.Second)},
	{ID: "W10", Name: "Windows 10", Family: FamilyWindows, CPEProduct: "microsoft:windows_10:-", Released: date(2015, 7, 29), VM: vm(4, 1, 0.5, 0.11, 0.78, 90*time.Second)},
	{ID: "WS12", Name: "Win. Server 2012", Family: FamilyWindows, CPEProduct: "microsoft:windows_server_2012:r2", Released: date(2013, 10, 18), VM: vm(4, 1, 0.48, 0.1, 0.76, 95*time.Second)},
	{ID: "FB10", Name: "FreeBSD 10", Family: FamilyFreeBSD, CPEProduct: "freebsd:freebsd:10.0", Released: date(2014, 1, 20), VM: vm(4, 1, 0.52, 0.11, 0.8, 55*time.Second)},
	{ID: "FB11", Name: "FreeBSD 11", Family: FamilyFreeBSD, CPEProduct: "freebsd:freebsd:11.0", Released: date(2016, 10, 10), VM: vm(4, 1, 0.55, 0.12, 0.82, 52*time.Second)},
	{ID: "SO10", Name: "Solaris 10", Family: FamilySolaris, CPEProduct: "oracle:solaris:10", Released: date(2005, 1, 31), VM: vm(1, 1, 0.55, 0.022, 0.55, 120*time.Second)},
	{ID: "SO11", Name: "Solaris 11", Family: FamilySolaris, CPEProduct: "oracle:solaris:11.3", Released: date(2015, 10, 26), VM: vm(1, 1, 0.6, 0.024, 0.58, 110*time.Second)},
	{ID: "OB60", Name: "OpenBSD 6.0", Family: FamilyOpenBSD, CPEProduct: "openbsd:openbsd:6.0", Released: date(2016, 9, 1), VM: vm(1, 1, 0.5, 0.021, 0.5, 60*time.Second)},
	{ID: "OB61", Name: "OpenBSD 6.1", Family: FamilyOpenBSD, CPEProduct: "openbsd:openbsd:6.1", Released: date(2017, 4, 11), VM: vm(1, 1, 0.52, 0.022, 0.52, 58*time.Second)},
	// The four §6-only versions that the Vagrant/VirtualBox provisioning
	// stack could not deploy (hence no VM profile).
	{ID: "RH6", Name: "Redhat EL 6", Family: FamilyRedhat, CPEProduct: "redhat:enterprise_linux:6.0", Released: date(2010, 11, 10)},
	{ID: "RH7", Name: "Redhat EL 7", Family: FamilyRedhat, CPEProduct: "redhat:enterprise_linux:7.0", Released: date(2014, 6, 10)},
	{ID: "FB9", Name: "FreeBSD 9", Family: FamilyFreeBSD, CPEProduct: "freebsd:freebsd:9.0", Released: date(2012, 1, 12)},
	{ID: "DE9", Name: "Debian 9", Family: FamilyDebian, CPEProduct: "debian:debian_linux:9.0", Released: date(2017, 6, 17)},
}

// BareMetal is the homogeneous bare-metal baseline environment used in the
// paper's performance evaluation (Ubuntu 14.04 on the physical machine,
// restricted to four cores for fairness).
var BareMetal = OS{
	ID:         "BM",
	Name:       "Bare metal (Ubuntu 14.04)",
	Family:     FamilyUbuntu,
	CPEProduct: "canonical:ubuntu_linux:14.04",
	Released:   date(2014, 4, 17),
	VM:         vm(4, 32, 1.0, 1.0, 1.0, 130*time.Second),
}

// All returns the 21 OS versions of the §6 study, in stable order.
func All() []OS {
	out := make([]OS, len(all))
	copy(out, all)
	return out
}

// Deployable returns the 17 OS versions of Table 2, in the paper's order.
func Deployable() []OS {
	out := make([]OS, 0, 17)
	for _, o := range all {
		if o.Deployable() {
			out = append(out, o)
		}
	}
	return out
}

// ByID returns the OS with the given short identifier.
func ByID(id string) (OS, error) {
	if id == BareMetal.ID {
		return BareMetal, nil
	}
	for _, o := range all {
		if o.ID == id {
			return o, nil
		}
	}
	return OS{}, fmt.Errorf("catalog: unknown OS id %q", id)
}

// ByFamily returns all catalog OS versions of the given family.
func ByFamily(f Family) []OS {
	var out []OS
	for _, o := range all {
		if o.Family == f {
			out = append(out, o)
		}
	}
	return out
}

// Families returns the distinct families present in the catalog, sorted by
// name for stable output.
func Families() []Family {
	seen := make(map[Family]bool)
	var out []Family
	for _, o := range all {
		if !seen[o.Family] {
			seen[o.Family] = true
			out = append(out, o.Family)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// IDs returns the identifiers of the given OS list, preserving order.
func IDs(oses []OS) []string {
	out := make([]string, len(oses))
	for i, o := range oses {
		out[i] = o.ID
	}
	return out
}
