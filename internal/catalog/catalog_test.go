package catalog

import (
	"testing"
	"time"
)

func TestAllCounts(t *testing.T) {
	if got := len(All()); got != 21 {
		t.Fatalf("All() = %d OS versions, want 21 (paper §6)", got)
	}
	if got := len(Deployable()); got != 17 {
		t.Fatalf("Deployable() = %d OS versions, want 17 (paper Table 2)", got)
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, o := range All() {
		if seen[o.ID] {
			t.Errorf("duplicate OS id %q", o.ID)
		}
		seen[o.ID] = true
	}
	if seen[BareMetal.ID] {
		t.Errorf("bare-metal id %q collides with a catalog OS", BareMetal.ID)
	}
}

func TestByID(t *testing.T) {
	for _, o := range All() {
		got, err := ByID(o.ID)
		if err != nil {
			t.Fatalf("ByID(%q): %v", o.ID, err)
		}
		if got.Name != o.Name {
			t.Errorf("ByID(%q).Name = %q, want %q", o.ID, got.Name, o.Name)
		}
	}
	if _, err := ByID("NOPE"); err == nil {
		t.Error("ByID(NOPE) succeeded, want error")
	}
	bm, err := ByID("BM")
	if err != nil || bm.VM == nil || bm.VM.SpeedFactor != 1.0 {
		t.Errorf("ByID(BM) = %+v, %v; want bare metal with speed 1.0", bm, err)
	}
}

func TestTable2Profiles(t *testing.T) {
	// Paper Table 2: per-OS VM cores and memory.
	wantCores := map[string]int{
		"UB14": 4, "UB16": 4, "UB17": 4, "OS42": 4, "FE24": 4, "FE25": 4,
		"FE26": 4, "DE7": 4, "DE8": 4, "W10": 4, "WS12": 4, "FB10": 4,
		"FB11": 4, "SO10": 1, "SO11": 1, "OB60": 1, "OB61": 1,
	}
	wantMem := map[string]int{
		"UB14": 15, "UB16": 15, "UB17": 15, "OS42": 15, "FE24": 15,
		"FE25": 15, "FE26": 15, "DE7": 15, "DE8": 15, "W10": 1, "WS12": 1,
		"FB10": 1, "FB11": 1, "SO10": 1, "SO11": 1, "OB60": 1, "OB61": 1,
	}
	for _, o := range Deployable() {
		if o.VM.Cores != wantCores[o.ID] {
			t.Errorf("%s cores = %d, want %d", o.ID, o.VM.Cores, wantCores[o.ID])
		}
		if o.VM.MemoryGB != wantMem[o.ID] {
			t.Errorf("%s memory = %dGB, want %dGB", o.ID, o.VM.MemoryGB, wantMem[o.ID])
		}
	}
}

func TestSpeedFactorsBounded(t *testing.T) {
	for _, o := range Deployable() {
		if o.VM.SpeedFactor <= 0 || o.VM.SpeedFactor > 1 {
			t.Errorf("%s speed factor %v out of (0,1]", o.ID, o.VM.SpeedFactor)
		}
		if o.VM.NetFactor <= 0 || o.VM.NetFactor > 1 {
			t.Errorf("%s net factor %v out of (0,1]", o.ID, o.VM.NetFactor)
		}
		if o.VM.BootTime <= 0 {
			t.Errorf("%s boot time %v not positive", o.ID, o.VM.BootTime)
		}
	}
}

func TestFamilyKernels(t *testing.T) {
	cases := map[Family]Kernel{
		FamilyUbuntu:   KernelLinux,
		FamilyDebian:   KernelLinux,
		FamilyFedora:   KernelLinux,
		FamilyRedhat:   KernelLinux,
		FamilyOpenSuse: KernelLinux,
		FamilyWindows:  KernelNT,
		FamilyFreeBSD:  KernelFreeBSD,
		FamilyOpenBSD:  KernelOpenBSD,
		FamilySolaris:  KernelSunOS,
	}
	for fam, want := range cases {
		if got := fam.Kernel(); got != want {
			t.Errorf("%v.Kernel() = %v, want %v", fam, got, want)
		}
	}
	if Family(0).Kernel() != 0 {
		t.Error("unknown family should map to zero kernel")
	}
}

func TestFamilies(t *testing.T) {
	fams := Families()
	if len(fams) != 9 {
		t.Fatalf("Families() = %d, want 9 (8 §6 families + separate Redhat entry counts within)", len(fams))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].String() >= fams[i].String() {
			t.Errorf("families not sorted: %v before %v", fams[i-1], fams[i])
		}
	}
}

func TestByFamily(t *testing.T) {
	ub := ByFamily(FamilyUbuntu)
	if len(ub) != 3 {
		t.Fatalf("ByFamily(Ubuntu) = %d versions, want 3", len(ub))
	}
	for _, o := range ub {
		if o.Family != FamilyUbuntu {
			t.Errorf("ByFamily(Ubuntu) returned %s of family %v", o.ID, o.Family)
		}
	}
}

func TestReleaseDatesSane(t *testing.T) {
	end := time.Date(2018, 9, 1, 0, 0, 0, 0, time.UTC)
	for _, o := range All() {
		if o.Released.IsZero() || o.Released.After(end) {
			t.Errorf("%s release date %v not in study window", o.ID, o.Released)
		}
	}
}

func TestIDs(t *testing.T) {
	ids := IDs(Deployable())
	if len(ids) != 17 || ids[0] != "UB14" {
		t.Fatalf("IDs(Deployable()) = %v", ids)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].ID = "MUTATED"
	if All()[0].ID == "MUTATED" {
		t.Error("All() exposes internal slice; mutations leak")
	}
}

func TestStringMethods(t *testing.T) {
	if FamilyWindows.String() != "Windows" {
		t.Errorf("FamilyWindows.String() = %q", FamilyWindows.String())
	}
	if Family(99).String() != "Family(99)" {
		t.Errorf("unknown family String() = %q", Family(99).String())
	}
	if KernelLinux.String() != "Linux" {
		t.Errorf("KernelLinux.String() = %q", KernelLinux.String())
	}
	if Kernel(99).String() != "Kernel(99)" {
		t.Errorf("unknown kernel String() = %q", Kernel(99).String())
	}
}
