package feeds

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lazarus/internal/catalog"
	"lazarus/internal/core"
	"lazarus/internal/osint"
)

// Dataset bundles a vulnerability corpus with the OS universe it covers
// and offers the windowed views the risk experiments need.
type Dataset struct {
	vulns []*osint.Vulnerability
}

// NewDataset wraps a corpus. The slice is not copied; callers hand over
// ownership.
func NewDataset(vulns []*osint.Vulnerability) *Dataset {
	return &Dataset{vulns: vulns}
}

// GenerateDataset produces the standard synthetic study corpus.
func GenerateDataset(cfg GenConfig) (*Dataset, error) {
	vulns, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	return NewDataset(vulns), nil
}

// All returns the full corpus, ordered by publication date.
func (d *Dataset) All() []*osint.Vulnerability { return d.vulns }

// Len returns the corpus size.
func (d *Dataset) Len() int { return len(d.vulns) }

// PublishedBefore returns the sub-corpus published strictly before t (the
// learning-phase view).
func (d *Dataset) PublishedBefore(t time.Time) []*osint.Vulnerability {
	var out []*osint.Vulnerability
	for _, v := range d.vulns {
		if v.Published.Before(t) {
			out = append(out, v)
		}
	}
	return out
}

// PublishedIn returns the sub-corpus published in [from, to).
func (d *Dataset) PublishedIn(from, to time.Time) []*osint.Vulnerability {
	var out []*osint.Vulnerability
	for _, v := range d.vulns {
		if !v.Published.Before(from) && v.Published.Before(to) {
			out = append(out, v)
		}
	}
	return out
}

// ByID returns the record with the given CVE id, or nil.
func (d *Dataset) ByID(id string) *osint.Vulnerability {
	for _, v := range d.vulns {
		if v.ID == id {
			return v
		}
	}
	return nil
}

// Replicas returns the study's replica universe: one core.Replica per
// catalog OS version (21 for the risk experiments).
func Replicas() []core.Replica {
	oses := catalog.All()
	out := make([]core.Replica, len(oses))
	for i, o := range oses {
		out[i] = core.NewReplica(o.ID, o.CPEProduct)
	}
	return out
}

// DeployableReplicas returns the Table 2 subset (17 versions) as replicas.
func DeployableReplicas() []core.Replica {
	oses := catalog.Deployable()
	out := make([]core.Replica, len(oses))
	for i, o := range oses {
		out[i] = core.NewReplica(o.ID, o.CPEProduct)
	}
	return out
}

// WriteFixtures materializes the dataset as OSINT source documents in dir:
// one NVD JSON feed per year plus an ExploitDB index and one advisory page
// per vendor family, exercising exactly the formats the crawler parses.
// It returns the list of files written.
func (d *Dataset) WriteFixtures(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feeds: creating %s: %w", dir, err)
	}
	var written []string

	// NVD feeds, one per year.
	byYear := make(map[int][]*osint.Vulnerability)
	for _, v := range d.vulns {
		byYear[v.Published.Year()] = append(byYear[v.Published.Year()], v)
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		path := filepath.Join(dir, fmt.Sprintf("nvdcve-1.1-%d.json", y))
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("feeds: creating %s: %w", path, err)
		}
		err = osint.WriteNVDFeed(f, byYear[y], day(y, 12, 31))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("feeds: writing %s: %w", path, err)
		}
		written = append(written, path)
	}

	// ExploitDB index.
	var exploits []osint.Enrichment
	for _, v := range d.vulns {
		if !v.ExploitAt.IsZero() {
			exploits = append(exploits, osint.Enrichment{CVE: v.ID, ExploitAt: v.ExploitAt})
		}
	}
	edbPath := filepath.Join(dir, "files_exploits.csv")
	f, err := os.Create(edbPath)
	if err != nil {
		return nil, fmt.Errorf("feeds: creating %s: %w", edbPath, err)
	}
	err = osint.WriteExploitDBIndex(f, exploits)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("feeds: writing %s: %w", edbPath, err)
	}
	written = append(written, edbPath)

	// CVE-details-style consolidated page (exploit observations).
	cdPath := filepath.Join(dir, "cvedetails.html")
	f, err = os.Create(cdPath)
	if err != nil {
		return nil, fmt.Errorf("feeds: creating %s: %w", cdPath, err)
	}
	err = osint.WriteCVEDetailsPage(f, exploits)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("feeds: writing %s: %w", cdPath, err)
	}
	written = append(written, cdPath)

	// Vendor advisory pages: patch dates per family.
	vendorOf := map[catalog.Family]string{
		catalog.FamilyUbuntu:   "ubuntu",
		catalog.FamilyDebian:   "debian",
		catalog.FamilyFedora:   "fedora",
		catalog.FamilyRedhat:   "redhat",
		catalog.FamilyOpenSuse: "opensuse",
		catalog.FamilyWindows:  "microsoft",
		catalog.FamilyFreeBSD:  "freebsd",
		catalog.FamilyOpenBSD:  "openbsd",
		catalog.FamilySolaris:  "solaris",
	}
	productFamily := make(map[string]catalog.Family)
	for _, o := range catalog.All() {
		productFamily[o.CPEProduct] = o.Family
	}
	byVendor := make(map[string][]osint.Enrichment)
	for _, v := range d.vulns {
		for _, p := range v.Products {
			fam, ok := productFamily[p]
			if !ok {
				continue
			}
			patched := v.PatchedAt
			if pd, ok := v.ProductPatches[p]; ok {
				patched = pd
			}
			if patched.IsZero() {
				continue
			}
			vendor := vendorOf[fam]
			byVendor[vendor] = append(byVendor[vendor], osint.Enrichment{
				CVE: v.ID, PatchedAt: patched, ExtraProducts: []string{p},
			})
		}
	}
	vendors := make([]string, 0, len(byVendor))
	for v := range byVendor {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	for _, vendor := range vendors {
		path := filepath.Join(dir, vendor+"-advisories.html")
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("feeds: creating %s: %w", path, err)
		}
		err = osint.WriteAdvisoryPage(f, vendor, byVendor[vendor])
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("feeds: writing %s: %w", path, err)
		}
		written = append(written, path)
	}
	return written, nil
}
