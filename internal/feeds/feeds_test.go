package feeds

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lazarus/internal/catalog"
	"lazarus/internal/cluster"
	"lazarus/internal/osint"
)

func TestAnchorsValid(t *testing.T) {
	for _, v := range Anchors() {
		if err := v.Validate(); err != nil {
			t.Errorf("anchor %s invalid: %v", v.ID, err)
		}
	}
}

func TestAnchorsContainPaperCVEs(t *testing.T) {
	want := []string{
		// Table 1
		"CVE-2014-0157", "CVE-2015-3988", "CVE-2016-4428",
		// Figure 3
		"CVE-2018-8303", "CVE-2018-8012", "CVE-2016-7180",
		// §6.1 May 2018
		"CVE-2018-8897", "CVE-2018-1125", "CVE-2018-8134", "CVE-2018-0959", "CVE-2018-1111",
		// Figure 6 attacks
		"CVE-2017-0144", "CVE-2017-1000364",
	}
	byID := make(map[string]*osint.Vulnerability)
	for _, v := range Anchors() {
		byID[v.ID] = v
	}
	for _, id := range want {
		if byID[id] == nil {
			t.Errorf("anchor %s missing", id)
		}
	}
	// The MOV SS vulnerability must span Ubuntu and Debian (the pairing
	// the paper blames for May 2018).
	mov := byID["CVE-2018-8897"]
	if mov == nil || !mov.Affects("canonical:ubuntu_linux:16.04") || !mov.Affects("debian:debian_linux:8.0") {
		t.Error("CVE-2018-8897 does not span Ubuntu+Debian")
	}
}

func TestAttackCVEsResolve(t *testing.T) {
	byID := make(map[string]bool)
	for _, v := range Anchors() {
		byID[v.ID] = true
	}
	for attack, cves := range AttackCVEs() {
		if len(cves) == 0 {
			t.Errorf("attack %s has no CVEs", attack)
		}
		for _, id := range cves {
			if !byID[id] {
				t.Errorf("attack %s references missing CVE %s", attack, id)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Published.Equal(b[i].Published) {
			t.Fatalf("record %d differs across equal seeds: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
	c, err := Generate(GenConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i].ID != c[i].ID {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	vulns, err := Generate(GenConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	months := 56.0 // 2014-01 .. 2018-08
	perMonth := float64(len(vulns)) / months
	if perMonth < 10 || perMonth > 50 {
		t.Errorf("generated %.1f vulns/month, want a plausible 10-50", perMonth)
	}
	// Publication dates sorted and within window.
	start, end := DefaultWindow()
	for i, v := range vulns {
		if v.Published.Before(start) && !strings.HasPrefix(v.ID, "CVE-201") {
			t.Errorf("%s published %v before window", v.ID, v.Published)
		}
		if i > 0 && vulns[i-1].Published.After(v.Published) {
			t.Fatalf("dataset not sorted by publication at %d", i)
		}
		_ = end
	}
	// Sharing structure: some but not most vulns are multi-product.
	multi, windowsHits, openbsdHits := 0, 0, 0
	for _, v := range vulns {
		if len(v.Products) > 1 {
			multi++
		}
		if v.Affects("microsoft:windows_10:-") {
			windowsHits++
		}
		if v.Affects("openbsd:openbsd:6.0") {
			openbsdHits++
		}
	}
	frac := float64(multi) / float64(len(vulns))
	if frac < 0.15 || frac > 0.75 {
		t.Errorf("multi-product fraction %.2f outside [0.15, 0.75]", frac)
	}
	if windowsHits <= openbsdHits {
		t.Errorf("expected Windows (%d) to draw more vulns than OpenBSD (%d)", windowsHits, openbsdHits)
	}
}

func TestGenerateCrossFamilySharingExists(t *testing.T) {
	vulns, err := Generate(GenConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fam := make(map[string]catalog.Family)
	for _, o := range catalog.All() {
		fam[o.CPEProduct] = o.Family
	}
	cross := 0
	for _, v := range vulns {
		fams := make(map[catalog.Family]bool)
		for _, p := range v.Products {
			if f, ok := fam[p]; ok {
				fams[f] = true
			}
		}
		if len(fams) > 1 {
			cross++
		}
	}
	if cross < 10 {
		t.Errorf("only %d cross-family vulns; campaigns not firing", cross)
	}
}

func TestGenerateHeraldsCluster(t *testing.T) {
	// Herald volleys (same series, individual products) must be
	// discoverable by the clustering stage: build clusters and verify at
	// least one cluster contains CVEs whose product sets are disjoint
	// single products.
	vulns, err := Generate(GenConfig{Seed: 3, SkipAnchors: true})
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := cluster.Build(vulns, cluster.Config{K: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]*osint.Vulnerability)
	for _, v := range vulns {
		byID[v.ID] = v
	}
	found := false
	for _, members := range clusters.Members {
		if len(members) < 2 {
			continue
		}
		for i := 0; i < len(members) && !found; i++ {
			for j := i + 1; j < len(members) && !found; j++ {
				a, b := byID[members[i]], byID[members[j]]
				if len(a.Products) == 1 && len(b.Products) == 1 && a.Products[0] != b.Products[0] {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no cluster links single-product vulns on different OSes; heralds not clusterable")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Start: day(2018, 1, 1), End: day(2017, 1, 1)}); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := Generate(GenConfig{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestDatasetViews(t *testing.T) {
	ds, err := GenerateDataset(GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cut := day(2017, 1, 1)
	before := ds.PublishedBefore(cut)
	for _, v := range before {
		if !v.Published.Before(cut) {
			t.Fatalf("%s published %v leaked into learning view", v.ID, v.Published)
		}
	}
	month := ds.PublishedIn(day(2018, 5, 1), day(2018, 6, 1))
	if len(month) == 0 {
		t.Fatal("no vulnerabilities in May 2018 (anchors alone should be there)")
	}
	for _, v := range month {
		if v.Published.Before(day(2018, 5, 1)) || !v.Published.Before(day(2018, 6, 1)) {
			t.Fatalf("%s outside May window: %v", v.ID, v.Published)
		}
	}
	if ds.ByID("CVE-2018-8897") == nil {
		t.Error("ByID missed anchor")
	}
	if ds.ByID("CVE-1900-1") != nil {
		t.Error("ByID invented record")
	}
}

func TestReplicasUniverse(t *testing.T) {
	rs := Replicas()
	if len(rs) != 21 {
		t.Fatalf("Replicas() = %d, want 21", len(rs))
	}
	ds := DeployableReplicas()
	if len(ds) != 17 {
		t.Fatalf("DeployableReplicas() = %d, want 17", len(ds))
	}
	for _, r := range rs {
		if len(r.Products) != 1 || r.Products[0] == "" {
			t.Errorf("replica %s has products %v", r.ID, r.Products)
		}
	}
}

func TestWriteFixturesRoundTrip(t *testing.T) {
	ds, err := GenerateDataset(GenConfig{Seed: 5, Start: day(2017, 1, 1), End: day(2017, 6, 30)})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := ds.WriteFixtures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("only %d fixture files written", len(files))
	}
	// Every NVD feed file must re-parse.
	total := 0
	for _, path := range files {
		if !strings.Contains(filepath.Base(path), "nvdcve") {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		vulns, skipped, err := osint.ParseNVDFeed(f)
		f.Close()
		if err != nil {
			t.Fatalf("re-parsing %s: %v", path, err)
		}
		if skipped != 0 {
			t.Errorf("%s: %d records skipped on re-parse", path, skipped)
		}
		total += len(vulns)
	}
	if total != ds.Len() {
		t.Errorf("feeds carry %d records, dataset has %d", total, ds.Len())
	}
	// ExploitDB index must re-parse.
	f, err := os.Open(filepath.Join(dir, "files_exploits.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := (osint.ExploitDBParser{}).Parse(f); err != nil {
		t.Errorf("exploitdb fixture unparseable: %v", err)
	}
}

func TestDaysInMonth(t *testing.T) {
	cases := map[time.Time]int{
		day(2018, 2, 10): 28,
		day(2016, 2, 1):  29,
		day(2018, 1, 1):  31,
		day(2018, 4, 30): 30,
	}
	for in, want := range cases {
		if got := daysInMonth(in); got != want {
			t.Errorf("daysInMonth(%v) = %d, want %d", in, got, want)
		}
	}
}

func TestGenerateScale(t *testing.T) {
	full, err := Generate(GenConfig{Seed: 9, SkipAnchors: true})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Generate(GenConfig{Seed: 9, Scale: 0.5, SkipAnchors: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(half)) / float64(len(full))
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("scale 0.5 produced %.0f%% of the full corpus", ratio*100)
	}
}
