package feeds

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"lazarus/internal/catalog"
	"lazarus/internal/osint"
)

// GenConfig parameterizes the synthetic dataset generator.
type GenConfig struct {
	// Seed drives every random choice; equal seeds yield identical
	// datasets.
	Seed int64
	// Start and End bound publication dates (paper: 2014-01-01 to
	// 2018-08-31). Zero values select the paper's window.
	Start, End time.Time
	// Scale multiplies the background vulnerability rates (default 1.0).
	Scale float64
	// IncludeAnchors controls whether the real anchor CVEs are embedded
	// (default true; disable for pure-synthetic property tests).
	SkipAnchors bool
}

// DefaultWindow returns the paper's study window.
func DefaultWindow() (time.Time, time.Time) {
	return day(2014, 1, 1), day(2018, 8, 31)
}

// familyRate is the expected number of background vulnerability events per
// month in which the family is the primary target. Skewed like the real
// NVD record for these distributions: Windows and Ubuntu draw the most
// reports, OpenBSD the fewest.
var familyRate = map[catalog.Family]float64{
	catalog.FamilyWindows:  4.5,
	catalog.FamilyUbuntu:   3.5,
	catalog.FamilyDebian:   2.4,
	catalog.FamilyFedora:   2.2,
	catalog.FamilyRedhat:   1.8,
	catalog.FamilyOpenSuse: 1.4,
	catalog.FamilyFreeBSD:  1.9,
	catalog.FamilySolaris:  1.7,
	catalog.FamilyOpenBSD:  1.3,
}

// coordinatedProb is the probability that a patch ships at disclosure
// (coordinated disclosure), per family. Vendors with formal security
// processes coordinate more often.
var coordinatedProb = map[catalog.Family]float64{
	catalog.FamilyWindows:  0.75,
	catalog.FamilyUbuntu:   0.65,
	catalog.FamilyDebian:   0.55,
	catalog.FamilyFedora:   0.60,
	catalog.FamilyRedhat:   0.65,
	catalog.FamilyOpenSuse: 0.55,
	catalog.FamilyFreeBSD:  0.50,
	catalog.FamilySolaris:  0.35,
	catalog.FamilyOpenBSD:  0.60,
}

// multiVersionProb is the probability a family-scoped vulnerability
// affects several releases of the family. Vendors that maintain few,
// overlapping releases (OpenBSD ships errata for both supported
// releases; Solaris updates cover 10 and 11) share almost everything;
// fast-moving distros with divergent codebases share less.
var multiVersionProb = map[catalog.Family]float64{
	catalog.FamilyWindows:  0.70,
	catalog.FamilyUbuntu:   0.60,
	catalog.FamilyDebian:   0.65,
	catalog.FamilyFedora:   0.55,
	catalog.FamilyRedhat:   0.65,
	catalog.FamilyOpenSuse: 0.60,
	catalog.FamilyFreeBSD:  0.80,
	catalog.FamilySolaris:  0.85,
	catalog.FamilyOpenBSD:  0.90,
}

// patchLagMeanDays is the mean patch lag (days after publication) for
// vulnerabilities that were not coordinated.
var patchLagMeanDays = map[catalog.Family]float64{
	catalog.FamilyWindows:  18,
	catalog.FamilyUbuntu:   7,
	catalog.FamilyDebian:   10,
	catalog.FamilyFedora:   8,
	catalog.FamilyRedhat:   9,
	catalog.FamilyOpenSuse: 12,
	catalog.FamilyFreeBSD:  20,
	catalog.FamilySolaris:  45,
	catalog.FamilyOpenBSD:  9,
}

// weaknessClass is a template family for description generation; same-class
// descriptions cluster together, which is the structure the Lazarus
// clustering stage detects.
type weaknessClass struct {
	name     string
	template string // fmt with %s = component, %s = vector detail
	cvssLow  float64
	cvssHigh float64
	// exploitProb is the chance a public exploit appears.
	exploitProb float64
}

var weaknessClasses = []weaknessClass{
	{"xss", "Cross-site scripting (XSS) vulnerability in the %s allows remote attackers to inject arbitrary web script or HTML via the %s.", 4.3, 6.1, 0.10},
	{"bufover", "Buffer overflow in the %s allows remote attackers to execute arbitrary code or cause a denial of service via a crafted %s.", 6.5, 9.8, 0.20},
	{"privesc", "The %s mishandles privilege checks, which allows local users to gain root privileges via a crafted %s.", 6.8, 8.4, 0.25},
	{"dos", "The %s allows remote attackers to cause a denial of service (crash or resource exhaustion) via a malformed %s.", 4.0, 7.5, 0.10},
	{"rce", "A remote code execution vulnerability exists in the %s when it fails to properly validate input contained in a %s.", 7.5, 9.8, 0.22},
	{"infoleak", "The %s allows local users to obtain sensitive information from uninitialized memory via a %s.", 3.3, 5.9, 0.07},
	{"cmdinj", "Command injection in the %s allows attackers to execute arbitrary commands with elevated privileges via shell metacharacters in a %s.", 7.3, 9.8, 0.25},
	{"uaf", "Use-after-free in the %s allows attackers to execute arbitrary code or crash the process via a crafted sequence of operations on a %s.", 6.5, 9.0, 0.18},
	{"race", "Race condition in the %s allows local users to cause a denial of service or gain privileges via concurrent access to a %s.", 4.7, 7.0, 0.09},
	{"traversal", "Directory traversal vulnerability in the %s allows remote attackers to read arbitrary files via a .. (dot dot) in a %s.", 5.3, 7.5, 0.12},
}

// kernelComponents are kernel-space components, named per lineage the way
// real NVD descriptions name them (win32k vs ext4 vs UFS). Disjoint
// vocabularies keep unrelated lineages from co-clustering, while bugs in
// the same lineage's component — e.g. an ext4 flaw reported separately
// against Ubuntu and Fedora — legitimately read alike and cluster
// together, exactly the shared-codebase signal Lazarus exploits.
var kernelComponents = map[catalog.Kernel][]string{
	catalog.KernelLinux: {
		"ext4 journaling layer", "netfilter connection tracker",
		"KVM virtualization module", "ALSA sound driver",
		"cgroup resource controller", "overlayfs union mount",
		"io_uring submission queue", "eBPF verifier",
		"futex subsystem", "n_tty line discipline",
	},
	catalog.KernelNT: {
		"win32k kernel-mode driver", "NTFS metadata parser",
		"SMB server driver srv2.sys", "Hyper-V virtual switch",
		"GDI graphics component", "LSASS authentication service",
		"RPC endpoint mapper", "Windows Search indexer",
		"CLFS log file system driver", "Print Spooler service",
	},
	catalog.KernelFreeBSD: {
		"UFS soft-updates code", "pf packet filter",
		"bhyve hypervisor device model", "GEOM disk framework",
		"kqueue event notification", "jail management subsystem",
		"CAM SCSI layer", "netgraph node framework",
		"linuxulator compatibility layer", "ZFS ARC cache",
	},
	catalog.KernelOpenBSD: {
		"pledge enforcement code", "unveil path resolver",
		"pf state table", "softraid crypto discipline",
		"vmm hypervisor", "mbuf cluster allocator",
		"relayd relay daemon", "iked IKEv2 daemon",
		"uvm virtual memory", "carp failover protocol",
	},
	catalog.KernelSunOS: {
		"ZFS dataset manager", "DTrace probe provider",
		"zones virtualization framework", "SMF service management facility",
		"Crossbow network virtualization", "UFS logging module",
		"doors IPC facility", "STREAMS message queue",
		"kstat statistics framework", "priocntl scheduling classes",
	},
}

// appComponents are portable software shipped by many distributions;
// vulnerabilities here can cross kernel lineages (the OpenStack/OpenSSL
// pattern of paper Table 1).
var appComponents = []string{
	"OpenStack management dashboard", "TLS certificate verification library",
	"DNS resolver daemon", "HTTP proxy cache server",
	"mail transfer agent", "database query planner",
	"printing spooler service", "NTP time synchronization daemon",
	"compression library", "scripting language interpreter",
	"DHCP client integration script", "X window rendering extension",
}

// vectorDetails complete the description templates.
var vectorDetails = []string{
	"description field of a template", "crafted network packet",
	"long command-line argument", "malformed configuration file",
	"specially crafted request header", "symbolic link in a temporary directory",
	"negative length parameter", "crafted image file",
	"unvalidated query parameter", "oversized protocol message",
}

// fillerQualifiers give background (non-campaign) vulnerabilities unique
// wording so that unrelated reports do not co-cluster: real NVD
// descriptions of independent bugs differ in exactly this incidental
// detail, and without it the clustering stage would hallucinate sharing
// between every pair of OSes.
var fillerQualifiers = []string{
	"quota accounting", "epoll notification", "pagecache writeback",
	"inode reclaim", "socket splice", "fragment reassembly",
	"signal trampoline", "capability inheritance", "namespace teardown",
	"journal replay", "checksum offload", "ring buffer wraparound",
	"hugepage migration", "slab poisoning", "watchdog heartbeat",
	"console ioctl", "audit backlog", "keyring garbage collection",
	"mmap alignment", "swap readahead", "unix datagram queue",
	"futex requeue", "timerfd expiry", "sysctl parsing",
	"cgroup hierarchy", "loop device teardown", "xattr truncation",
	"route cache invalidation", "bridge forwarding", "vlan tagging",
	"multicast subscription", "neighbor discovery", "tty line discipline",
	"ptrace attach", "seccomp filter", "entropy pool estimation",
	"module relocation", "firmware blob parsing", "ACPI table decoding",
	"hotplug notifier", "power management suspend", "clock skew handling",
}

// campaignSeries is a recurring attack-surface hotspot: a weakness class in
// a component that keeps producing related CVEs against the same group of
// OSes over the years. The recurrence is what makes history predictive —
// the empirical basis of the Lazarus approach [33, 34].
type campaignSeries struct {
	class     weaknessClass
	component string
	detail    string
	// targets are the CPE products the series hits (fixed per series).
	targets []string
	// perMonth is the probability the series fires in a given month.
	perMonth float64
	// crossList is the probability a firing emits a single CVE listing
	// several targets (directly visible sharing); otherwise it emits
	// near-identical "herald" CVEs listed against individual targets
	// (sharing visible only through clustering).
	crossList float64
}

// Generate builds the synthetic dataset: recurring campaign series over
// kernel and application components, plus per-family background noise,
// plus the real anchor CVEs.
func Generate(cfg GenConfig) ([]*osint.Vulnerability, error) {
	if cfg.Start.IsZero() && cfg.End.IsZero() {
		cfg.Start, cfg.End = DefaultWindow()
	}
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("feeds: window start %v not before end %v", cfg.Start, cfg.End)
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("feeds: negative scale %v", cfg.Scale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{rng: rng, cfg: cfg, seq: make(map[int]int)}
	g.makeSeries()

	var out []*osint.Vulnerability
	for month := startOfMonth(cfg.Start); month.Before(cfg.End); month = month.AddDate(0, 1, 0) {
		out = append(out, g.monthVulns(month)...)
	}
	if !cfg.SkipAnchors {
		out = append(out, Anchors()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Published.Equal(out[j].Published) {
			return out[i].Published.Before(out[j].Published)
		}
		return out[i].ID < out[j].ID
	})
	for _, v := range out {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("feeds: generated invalid record: %w", err)
		}
	}
	return out, nil
}

type generator struct {
	rng    *rand.Rand
	cfg    GenConfig
	series []campaignSeries
	seq    map[int]int // per-year CVE sequence counter
}

// nextID mints a synthetic CVE id; sequence numbers start at 90000 so they
// can never collide with the embedded real anchors.
func (g *generator) nextID(year int) string {
	g.seq[year]++
	return fmt.Sprintf("CVE-%d-%d", year, 90000+g.seq[year])
}

// makeSeries draws the recurring campaign series. Kernel-scoped series
// target versions within one lineage; app-scoped series cross lineages.
func (g *generator) makeSeries() {
	byKernel := make(map[catalog.Kernel][]string)
	for _, o := range catalog.All() {
		byKernel[o.Family.Kernel()] = append(byKernel[o.Family.Kernel()], o.CPEProduct)
	}
	kernels := []catalog.Kernel{catalog.KernelLinux, catalog.KernelNT,
		catalog.KernelFreeBSD, catalog.KernelOpenBSD, catalog.KernelSunOS}

	// Kernel series: two per lineage, over OS components.
	for _, k := range kernels {
		products := byKernel[k]
		comps := kernelComponents[k]
		for i := 0; i < 2; i++ {
			targets := g.sample(products, 2+g.rng.Intn(len(products)))
			g.series = append(g.series, campaignSeries{
				class:     weaknessClasses[g.rng.Intn(len(weaknessClasses))],
				component: comps[g.rng.Intn(len(comps))],
				detail:    vectorDetails[g.rng.Intn(len(vectorDetails))],
				targets:   targets,
				perMonth:  0.06 + g.rng.Float64()*0.08,
				crossList: 0.55,
			})
		}
	}
	// Application series: portable components whose vulnerabilities cross
	// kernel lineages. Four co-list openly in NVD; five are "stealth":
	// NVD almost always reports their CVEs against individual products
	// (the Table 1 imprecision), so the sharing is visible only through
	// description clustering — the structure that separates Lazarus from
	// the count-based Common baseline.
	allProducts := make([]string, 0, 21)
	for _, o := range catalog.All() {
		allProducts = append(allProducts, o.CPEProduct)
	}
	for i := 0; i < 4; i++ {
		targets := g.sample(allProducts, 3+g.rng.Intn(4))
		g.series = append(g.series, campaignSeries{
			class:     weaknessClasses[g.rng.Intn(len(weaknessClasses))],
			component: appComponents[g.rng.Intn(len(appComponents))],
			detail:    vectorDetails[g.rng.Intn(len(vectorDetails))],
			targets:   targets,
			perMonth:  0.05 + g.rng.Float64()*0.07,
			crossList: 0.45,
		})
	}
	for i := 0; i < 5; i++ {
		targets := g.sample(allProducts, 4+g.rng.Intn(4))
		g.series = append(g.series, campaignSeries{
			class:     weaknessClasses[g.rng.Intn(len(weaknessClasses))],
			component: appComponents[(i*3+g.rng.Intn(len(appComponents)))%len(appComponents)],
			detail:    vectorDetails[g.rng.Intn(len(vectorDetails))],
			targets:   targets,
			perMonth:  0.10 + g.rng.Float64()*0.08,
			crossList: 0.12,
		})
	}
}

func (g *generator) sample(items []string, n int) []string {
	if n > len(items) {
		n = len(items)
	}
	idx := g.rng.Perm(len(items))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = items[j]
	}
	sort.Strings(out)
	return out
}

// monthVulns emits all vulnerabilities published in the given month.
func (g *generator) monthVulns(month time.Time) []*osint.Vulnerability {
	var out []*osint.Vulnerability
	daysIn := daysInMonth(month)

	// Recurring campaign series.
	for si := range g.series {
		s := &g.series[si]
		if g.rng.Float64() > s.perMonth*g.cfg.Scale {
			continue
		}
		out = append(out, g.fireSeries(s, month, daysIn)...)
	}

	// Per-family background noise.
	for _, fam := range catalog.Families() {
		versions := catalog.ByFamily(fam)
		n := g.poisson(familyRate[fam] * g.cfg.Scale)
		for i := 0; i < n; i++ {
			out = append(out, g.backgroundVuln(fam, versions, month, daysIn))
		}
	}
	return out
}

// fireSeries emits one firing of a recurring series: either one CVE
// cross-listing several targets, or a herald volley of near-identical CVEs
// listed individually.
func (g *generator) fireSeries(s *campaignSeries, month time.Time, daysIn int) []*osint.Vulnerability {
	pub := month.AddDate(0, 0, g.rng.Intn(daysIn))
	targets := g.sample(s.targets, 2+g.rng.Intn(len(s.targets)-1))
	if g.rng.Float64() < s.crossList {
		v := g.mint(s.class, s.component, s.detail, "", pub, targets...)
		return []*osint.Vulnerability{v}
	}
	var out []*osint.Vulnerability
	for i, target := range targets {
		// Heralds spread over up to three weeks; clustering is the only
		// signal tying them together.
		hpub := pub.AddDate(0, 0, g.rng.Intn(21))
		if hpub.After(g.cfg.End) {
			hpub = g.cfg.End
		}
		v := g.mint(s.class, s.component, s.detail, "", hpub, target)
		if i > 0 {
			v.Description += fmt.Sprintf(" This is a distinct issue related to %s.", out[0].ID)
		}
		out = append(out, v)
	}
	return out
}

// backgroundVuln emits one family-scoped vulnerability: usually a single
// version, sometimes several releases of the family (shared codebase).
func (g *generator) backgroundVuln(fam catalog.Family, versions []catalog.OS, month time.Time, daysIn int) *osint.Vulnerability {
	pub := month.AddDate(0, 0, g.rng.Intn(daysIn))
	class := weaknessClasses[g.rng.Intn(len(weaknessClasses))]
	comps := kernelComponents[fam.Kernel()]
	component := comps[g.rng.Intn(len(comps))]
	detail := vectorDetails[g.rng.Intn(len(vectorDetails))]
	var products []string
	if g.rng.Float64() < multiVersionProb[fam] && len(versions) > 1 {
		for _, o := range g.sampleOS(versions, 2+g.rng.Intn(len(versions)-1)) {
			products = append(products, o.CPEProduct)
		}
	} else {
		products = []string{versions[g.rng.Intn(len(versions))].CPEProduct}
	}
	// Kernel-space bugs regularly co-list releases of sibling families
	// that ship the same kernel (a Linux kernel CVE names Ubuntu, Debian
	// and RHEL releases together in NVD).
	if g.rng.Float64() < 0.15 {
		var siblings []catalog.OS
		for _, o := range catalog.All() {
			if o.Family != fam && o.Family.Kernel() == fam.Kernel() {
				siblings = append(siblings, o)
			}
		}
		if len(siblings) > 0 {
			for _, o := range g.sampleOS(siblings, 1+g.rng.Intn(3)) {
				products = append(products, o.CPEProduct)
			}
		}
	}
	q1 := fillerQualifiers[g.rng.Intn(len(fillerQualifiers))]
	q2 := fillerQualifiers[g.rng.Intn(len(fillerQualifiers))]
	suffix := fmt.Sprintf(" The flaw is reached through the %s path during %s processing.", q1, q2)
	return g.mint(class, component, detail, suffix, pub, products...)
}

func (g *generator) sampleOS(items []catalog.OS, n int) []catalog.OS {
	if n > len(items) {
		n = len(items)
	}
	idx := g.rng.Perm(len(items))[:n]
	out := make([]catalog.OS, n)
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}

// mint creates one record with class-typical CVSS, patch, and exploit
// metadata. Patch behaviour follows the slowest-family member's process.
func (g *generator) mint(class weaknessClass, component, detail, suffix string, pub time.Time, products ...string) *osint.Vulnerability {
	if pub.Before(g.cfg.Start) {
		pub = g.cfg.Start
	}
	if pub.After(g.cfg.End) {
		pub = g.cfg.End
	}
	cvss := class.cvssLow + g.rng.Float64()*(class.cvssHigh-class.cvssLow)
	cvss = math.Round(cvss*10) / 10
	v := &osint.Vulnerability{
		ID:          g.nextID(pub.Year()),
		Description: fmt.Sprintf(class.template, component, detail) + suffix,
		Products:    products,
		Published:   pub,
		CVSS:        cvss,
	}
	// Per-product patch dates, by vendor process.
	v.ProductPatches = make(map[string]time.Time, len(products))
	earliestPatch := time.Time{}
	for _, p := range products {
		fam, ok := familyOfProduct(p)
		if !ok {
			continue
		}
		var patched time.Time
		if g.rng.Float64() < coordinatedProb[fam] {
			patched = pub // coordinated disclosure
		} else if g.rng.Float64() < 0.9 { // 10% never patched in-window
			lag := g.expDays(patchLagMeanDays[fam])
			patched = pub.AddDate(0, 0, lag)
		}
		if !patched.IsZero() {
			v.ProductPatches[p] = patched
			if earliestPatch.IsZero() || patched.Before(earliestPatch) {
				earliestPatch = patched
			}
		}
	}
	v.PatchedAt = earliestPatch
	if g.rng.Float64() < class.exploitProb {
		v.ExploitAt = pub.AddDate(0, 0, 1+g.expDays(20))
	}
	return v
}

// expDays draws an exponential lag with the given mean, capped at one
// year.
func (g *generator) expDays(mean float64) int {
	d := int(g.rng.ExpFloat64() * mean)
	if d > 365 {
		d = 365
	}
	return d
}

// poisson draws a Poisson variate by Knuth's method (fine for small
// lambda).
func (g *generator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func startOfMonth(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}

func daysInMonth(month time.Time) int {
	return startOfMonth(month).AddDate(0, 1, -1).Day()
}

// familyOfProduct maps a CPE product back to its catalog family.
func familyOfProduct(product string) (catalog.Family, bool) {
	for _, o := range catalog.All() {
		if o.CPEProduct == product {
			return o.Family, true
		}
	}
	return 0, false
}
