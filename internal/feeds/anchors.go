// Package feeds builds the historical vulnerability dataset that drives
// the Lazarus risk experiments (paper §6). The paper uses live NVD /
// ExploitDB / vendor data from 2014-01-01 to 2018-08-31 for 21 OS
// versions; this package substitutes a seeded synthetic corpus with the
// same record shape and sharing structure, anchored by the real CVEs the
// paper names (the Table 1 XSS trio, the May-2018 cluster that dominates
// Figure 5, the Figure 3 score-evolution examples, and the
// WannaCry/StackClash/Petya attack CVEs of Figure 6).
package feeds

import (
	"time"

	"lazarus/internal/osint"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// CPE products of the catalog OSes, spelled out here so the anchor records
// read like the NVD originals.
const (
	pUB14 = "canonical:ubuntu_linux:14.04"
	pUB16 = "canonical:ubuntu_linux:16.04"
	pUB17 = "canonical:ubuntu_linux:17.04"
	pOS42 = "opensuse:leap:42.1"
	pFE24 = "fedoraproject:fedora:24"
	pFE25 = "fedoraproject:fedora:25"
	pFE26 = "fedoraproject:fedora:26"
	pDE7  = "debian:debian_linux:7.0"
	pDE8  = "debian:debian_linux:8.0"
	pDE9  = "debian:debian_linux:9.0"
	pW10  = "microsoft:windows_10:-"
	pWS12 = "microsoft:windows_server_2012:r2"
	pFB9  = "freebsd:freebsd:9.0"
	pFB10 = "freebsd:freebsd:10.0"
	pFB11 = "freebsd:freebsd:11.0"
	pSO10 = "oracle:solaris:10"
	pSO11 = "oracle:solaris:11.3"
	pOB60 = "openbsd:openbsd:6.0"
	pOB61 = "openbsd:openbsd:6.1"
	pRH6  = "redhat:enterprise_linux:6.0"
	pRH7  = "redhat:enterprise_linux:7.0"
)

func anchor(id string, pub time.Time, cvss float64, desc string, products ...string) *osint.Vulnerability {
	return &osint.Vulnerability{
		ID: id, Description: desc, Products: products, Published: pub, CVSS: cvss,
	}
}

// Anchors returns the real CVEs the paper relies on, transcribed with
// their real publication dates, scores and platform sets (plus patch and
// exploit dates from the corresponding advisories).
func Anchors() []*osint.Vulnerability {
	var out []*osint.Vulnerability

	// --- Paper Table 1: the OpenStack Horizon XSS trio whose nearly
	// identical descriptions NVD lists against different OSes.
	t1a := anchor("CVE-2014-0157", day(2014, 4, 8), 4.3,
		"Cross-site scripting (XSS) vulnerability in the Horizon Orchestration "+
			"dashboard in OpenStack Dashboard (aka Horizon) 2013.2 before 2013.2.4 and "+
			"icehouse before icehouse-rc2 allows remote attackers to inject arbitrary "+
			"web script or HTML via the description field of a Heat template.", pOS42)
	t1a.PatchedAt = day(2014, 5, 2)
	t1b := anchor("CVE-2015-3988", day(2015, 7, 14), 5.4,
		"Multiple cross-site scripting (XSS) vulnerabilities in OpenStack Dashboard "+
			"(Horizon) 2015.1.0 allow remote authenticated users to inject arbitrary "+
			"web script or HTML via the metadata to a Glance image, Nova flavor or "+
			"Host Aggregate.", pSO11)
	t1b.PatchedAt = day(2015, 8, 1)
	t1c := anchor("CVE-2016-4428", day(2016, 7, 1), 5.4,
		"Cross-site scripting (XSS) vulnerability in OpenStack Dashboard (Horizon) "+
			"8.0.1 and earlier and 9.0.0 through 9.0.1 allows remote authenticated "+
			"users to inject arbitrary web script or HTML by injecting an AngularJS "+
			"template in a dashboard form.", pDE8, pSO11)
	t1c.PatchedAt = day(2016, 7, 20)
	out = append(out, t1a, t1b, t1c)

	// --- Paper Figure 3: three score-evolution examples.
	ne := anchor("CVE-2018-8303", day(2018, 9, 7), 8.1,
		"A remote code execution vulnerability exists in the way that a protocol "+
			"handler improperly validates input before loading dynamic libraries.", pW10)
	ne.ExploitAt = day(2018, 9, 24) // NE: exploit, never patched in window
	npe := anchor("CVE-2018-8012", day(2018, 5, 20), 7.5,
		"No authentication or authorization was enforced when a server attempts to "+
			"join a quorum in the replicated coordination service, allowing arbitrary "+
			"endpoints to join the cluster and propagate counterfeit changes to the "+
			"leader.", pUB16, pDE8)
	npe.ExploitAt = day(2018, 5, 27)
	npe.PatchedAt = day(2018, 5, 30)
	op := anchor("CVE-2016-7180", day(2016, 9, 8), 5.9,
		"A denial of service vulnerability in the logging subsystem allows local "+
			"users to crash the service via a long crafted path argument.", pSO10)
	op.PatchedAt = day(2016, 9, 19)
	out = append(out, ne, npe, op)

	// --- The May 2018 cluster the paper singles out as making that month
	// hard to survive (§6.1).
	movss := anchor("CVE-2018-8897", day(2018, 5, 8), 7.8,
		"A statement in the System Programming Guide of the Intel 64 and IA-32 "+
			"Architectures Software Developer Manual was mishandled in the development "+
			"of some or all operating-system kernels, resulting in unexpected behavior "+
			"for #DB exceptions that are deferred by MOV SS or POP SS: a local attacker "+
			"can use this kernel flaw for privilege escalation.",
		pUB14, pUB16, pUB17, pDE7, pDE8, pDE9, pFB10, pFB11)
	movss.ProductPatches = map[string]time.Time{
		pUB14: day(2018, 5, 9), pUB16: day(2018, 5, 9), pUB17: day(2018, 5, 9),
		pDE7: day(2018, 5, 10), pDE8: day(2018, 5, 10), pDE9: day(2018, 5, 10),
		pFB10: day(2018, 5, 12), pFB11: day(2018, 5, 12),
	}
	movss.PatchedAt = day(2018, 5, 9)
	movss.ExploitAt = day(2018, 5, 13)

	procps := anchor("CVE-2018-1125", day(2018, 5, 23), 7.5,
		"A stack buffer overflow was found in the pgrep utility of procps-ng before "+
			"version 3.3.15: a crafted argv handling allows denial of service or "+
			"possible code execution in the process-status toolset shipped by several "+
			"Linux distributions.",
		pUB16, pUB17, pDE8, pDE9)
	procps.PatchedAt = day(2018, 5, 28)

	win1 := anchor("CVE-2018-8134", day(2018, 5, 9), 7.0,
		"An elevation of privilege vulnerability exists in Windows when the kernel "+
			"fails to properly handle objects in memory, allowing an attacker to run "+
			"arbitrary code in kernel mode.", pW10, pWS12)
	win1.PatchedAt = day(2018, 5, 9)
	win2 := anchor("CVE-2018-0959", day(2018, 5, 9), 7.1,
		"A remote code execution vulnerability exists when Windows Hyper-V on a host "+
			"server fails to properly validate input from an authenticated user on a "+
			"guest operating system.", pW10, pWS12)
	win2.PatchedAt = day(2018, 5, 9)

	dhcp := anchor("CVE-2018-1111", day(2018, 5, 17), 7.5,
		"DHCP packages as shipped in Red Hat Enterprise Linux and Fedora are "+
			"vulnerable to a command injection flaw in the NetworkManager integration "+
			"script included in the DHCP client: a malicious DHCP server, or an "+
			"attacker on the local network able to spoof DHCP responses, could execute "+
			"arbitrary commands with root privileges.", pRH7, pFE26, pFE25)
	dhcp.PatchedAt = day(2018, 5, 18)
	dhcp.ExploitAt = day(2018, 5, 19)
	out = append(out, movss, procps, win1, win2, dhcp)

	// --- Figure 6 attacks (2017).
	// WannaCry: the SMBv1 EternalBlue family, Windows only.
	eb := anchor("CVE-2017-0144", day(2017, 3, 16), 8.1,
		"The SMBv1 server in Microsoft Windows allows remote attackers to execute "+
			"arbitrary code via crafted packets, aka Windows SMB Remote Code Execution "+
			"Vulnerability (EternalBlue).", pW10, pWS12)
	eb.PatchedAt = day(2017, 3, 16) // MS17-010
	eb.ExploitAt = day(2017, 5, 12) // WannaCry outbreak
	eb2 := anchor("CVE-2017-0145", day(2017, 3, 16), 8.1,
		"The SMBv1 server in Microsoft Windows allows remote attackers to execute "+
			"arbitrary code via crafted packets, aka Windows SMB Remote Code Execution "+
			"Vulnerability, a distinct issue from CVE-2017-0144.", pW10, pWS12)
	eb2.PatchedAt = day(2017, 3, 16)
	eb2.ExploitAt = day(2017, 5, 12)

	// Stack Clash: stack guard-page exhaustion across Linux, BSDs and
	// Solaris — the attack affecting the most OSes.
	sc1 := anchor("CVE-2017-1000364", day(2017, 6, 19), 7.4,
		"An issue was discovered in the size of the stack guard page on Linux: the "+
			"stack guard page is not sufficiently large and can be jumped over by an "+
			"attacker clashing the stack with another memory region, affecting kernel "+
			"memory management.",
		pUB14, pUB16, pUB17, pDE7, pDE8, pDE9, pFE24, pFE25, pFE26, pRH6, pRH7, pOS42)
	sc1.ProductPatches = map[string]time.Time{
		pUB14: day(2017, 6, 19), pUB16: day(2017, 6, 19), pUB17: day(2017, 6, 19),
		pDE7: day(2017, 6, 21), pDE8: day(2017, 6, 21), pDE9: day(2017, 6, 21),
		pFE24: day(2017, 6, 22), pFE25: day(2017, 6, 22), pFE26: day(2017, 6, 22),
		pRH6: day(2017, 6, 23), pRH7: day(2017, 6, 23), pOS42: day(2017, 6, 24),
	}
	sc1.PatchedAt = day(2017, 6, 19)
	sc1.ExploitAt = day(2017, 6, 28)
	sc2 := anchor("CVE-2017-1000367", day(2017, 6, 5), 7.8,
		"Todd Miller's sudo before 1.8.20p1 is vulnerable to an input validation "+
			"issue in the get_process_ttyname function that allows local users with "+
			"sudo privileges to overwrite any file on the filesystem and escalate to "+
			"root.", pUB14, pUB16, pDE8, pRH6, pRH7, pFE24)
	sc2.PatchedAt = day(2017, 6, 6)
	sc3 := anchor("CVE-2017-1085", day(2017, 6, 19), 7.4,
		"In FreeBSD, the stack guard page can be jumped over by applications making "+
			"large stack allocations, allowing a stack clash with other memory regions "+
			"and memory corruption.", pFB10, pFB11)
	sc3.PatchedAt = day(2017, 8, 10)
	sc4 := anchor("CVE-2017-3630", day(2017, 6, 19), 7.0,
		"Vulnerability in Oracle Solaris due to stack guard gap allows local users "+
			"to clash the process stack with adjacent mappings, with unauthorized "+
			"ability to cause a hang or code execution.", pSO10, pSO11)
	sc4.PatchedAt = day(2017, 7, 18)

	// Petya/NotPetya: EternalBlue plus the Office/WordPad HTA vector.
	petya := anchor("CVE-2017-0199", day(2017, 4, 12), 7.8,
		"Microsoft Office and WordPad allow remote attackers to execute arbitrary "+
			"code via a crafted document, aka Microsoft Office/WordPad Remote Code "+
			"Execution Vulnerability with Windows API abuse.", pW10, pWS12)
	petya.PatchedAt = day(2017, 4, 12)
	petya.ExploitAt = day(2017, 6, 27) // Petya outbreak
	out = append(out, eb, eb2, sc1, sc2, sc3, sc4, petya)

	return out
}

// AttackCVEs maps the Figure 6 attack names to the CVE ids that implement
// them in the corpus.
func AttackCVEs() map[string][]string {
	return map[string][]string{
		"WannaCry":   {"CVE-2017-0144", "CVE-2017-0145"},
		"StackClash": {"CVE-2017-1000364", "CVE-2017-1000367", "CVE-2017-1085", "CVE-2017-3630"},
		"Petya":      {"CVE-2017-0144", "CVE-2017-0199"},
	}
}
