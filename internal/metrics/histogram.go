package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: HDR-style base-2 buckets with subBucketBits
// bits of sub-bucket resolution. Values in [0, 2^subBucketBits) get an
// exact bucket each; above that, each power of two is split into
// 2^subBucketBits sub-buckets, giving a fixed relative error of at most
// 1/2^subBucketBits (25% with 2 bits — plenty for latency quantiles)
// while the whole int64 range fits in a fixed, bounded array. No
// allocation, no locking: every cell is an independent atomic.
const (
	subBucketBits = 2
	subBuckets    = 1 << subBucketBits
	numBuckets    = (62 + 1) * subBuckets // covers every positive int64
)

// Histogram records int64 observations (latencies in microseconds,
// sizes, lags) into bounded log-scaled buckets and reports count, sum,
// min, max and interpolated quantiles. Negative observations clamp to
// zero.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64
	max   atomic.Int64

	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBucketBits
	sub := int((v >> (uint(exp) - subBucketBits)) & (subBuckets - 1))
	return (exp+1-subBucketBits)*subBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i (the
// inverse of bucketIndex on bucket lower bounds).
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	block := i / subBuckets // >= 1
	sub := int64(i % subBuckets)
	exp := uint(block + subBucketBits - 1)
	return int64(1)<<exp | sub<<(exp-subBucketBits)
}

// HistogramSnapshot is the exported summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot summarizes the histogram. Quantiles are estimated from the
// bucket midpoints and clamped to the observed min/max, so they are
// exact for small values and within the bucket's relative error above.
func (h *Histogram) Snapshot() HistogramSnapshot {
	count := h.count.Load()
	if count == 0 {
		return HistogramSnapshot{}
	}
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	// A concurrent Observe may have bumped count before its bucket; use
	// what the buckets actually hold as the quantile population.
	if total == 0 {
		return HistogramSnapshot{}
	}
	min, max := h.min.Load(), h.max.Load()
	snap := HistogramSnapshot{
		Count: count,
		Sum:   h.sum.Load(),
		Min:   min,
		Max:   max,
	}
	snap.Mean = float64(snap.Sum) / float64(count)
	q := func(p float64) int64 {
		rank := int64(p * float64(total-1))
		var seen int64
		for i := range counts {
			if counts[i] == 0 {
				continue
			}
			seen += counts[i]
			if seen > rank {
				lo := bucketLow(i)
				hi := max
				if i+1 < numBuckets {
					hi = bucketLow(i + 1)
				}
				mid := lo + (hi-lo)/2
				if mid < min {
					mid = min
				}
				if mid > max {
					mid = max
				}
				return mid
			}
		}
		return max
	}
	snap.P50, snap.P95, snap.P99 = q(0.50), q(0.95), q(0.99)
	return snap
}
