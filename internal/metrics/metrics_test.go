package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Error("counter lookup not idempotent")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestNilRegistryHandsOutWorkingInstruments(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(2)
	r.Histogram("x").Observe(3)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	if r.Names() != nil {
		t.Error("nil registry has names")
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	last := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, last)
		}
		if i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if lo := bucketLow(i); lo > v {
			t.Fatalf("bucketLow(%d) = %d > value %d", i, lo, v)
		}
		last = i
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// Uniform 1..1000: p50 ~ 500, p95 ~ 950, p99 ~ 990 within the 25%
	// relative bucket error.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if s.Mean < 500 || s.Mean > 501 {
		t.Errorf("mean = %f, want ~500.5", s.Mean)
	}
	within := func(got, want int64, rel float64) bool {
		d := float64(got) - float64(want)
		if d < 0 {
			d = -d
		}
		return d <= rel*float64(want)
	}
	if !within(s.P50, 500, 0.30) {
		t.Errorf("p50 = %d, want ~500", s.P50)
	}
	if !within(s.P95, 950, 0.30) {
		t.Errorf("p95 = %d, want ~950", s.P95)
	}
	if !within(s.P99, 990, 0.30) {
		t.Errorf("p99 = %d, want ~990", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: %d %d %d", s.P50, s.P95, s.P99)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(2)
	}
	s := h.Snapshot()
	if s.P50 != 2 || s.P99 != 2 {
		t.Errorf("constant-2 histogram: p50=%d p99=%d", s.P50, s.P99)
	}
	if s.Min != 2 || s.Max != 2 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := newHistogram()
	h.Observe(-5)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Count != 1 {
		t.Errorf("negative observation: %+v", s)
	}
}

func TestHistogramZeroSampleSnapshot(t *testing.T) {
	h := newHistogram()
	snap := h.Snapshot()
	if snap != (HistogramSnapshot{}) {
		t.Errorf("empty histogram snapshot = %+v, want zero value", snap)
	}
	// In particular Min must read 0, not the internal MaxInt64 sentinel.
	if snap.Min != 0 {
		t.Errorf("empty histogram Min = %d, want 0", snap.Min)
	}
}

func TestHistogramSingleBucketSaturation(t *testing.T) {
	// Every observation identical: one bucket holds the entire
	// population and every quantile clamps exactly to that value, both
	// for an exact small-value bucket and a log bucket with sub-bucket
	// rounding.
	for _, v := range []int64{3, 1000} {
		h := newHistogram()
		const n = 10_000
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
		snap := h.Snapshot()
		if snap.Count != n || snap.Sum != n*v {
			t.Errorf("v=%d: count=%d sum=%d, want %d and %d", v, snap.Count, snap.Sum, n, int64(n*v))
		}
		if snap.Min != v || snap.Max != v {
			t.Errorf("v=%d: min=%d max=%d, want both %d", v, snap.Min, snap.Max, v)
		}
		for _, q := range []int64{snap.P50, snap.P95, snap.P99} {
			if q != v {
				t.Errorf("v=%d: quantile = %d, want exactly %d (midpoint must clamp to min/max)", v, q, v)
			}
		}
		var inBuckets, nonEmpty int64
		for i := range h.buckets {
			if c := h.buckets[i].Load(); c != 0 {
				inBuckets += c
				nonEmpty++
			}
		}
		if nonEmpty != 1 || inBuckets != n {
			t.Errorf("v=%d: %d non-empty buckets holding %d, want 1 bucket holding %d", v, nonEmpty, inBuckets, n)
		}
	}
}

func TestHistogramTopBucketAccounting(t *testing.T) {
	// Values at the top of the int64 range must land in the final
	// buckets without panicking or losing counts, and quantiles must
	// stay within [min, max].
	h := newHistogram()
	top := []int64{math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 / 2, 1 << 62, 1}
	for _, v := range top {
		h.Observe(v)
	}
	idx := bucketIndex(math.MaxInt64)
	if idx >= numBuckets {
		t.Fatalf("bucketIndex(MaxInt64) = %d, outside the %d-bucket array", idx, numBuckets)
	}
	var inBuckets int64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != int64(len(top)) {
		t.Errorf("buckets hold %d observations, want %d", inBuckets, len(top))
	}
	snap := h.Snapshot()
	if snap.Max != math.MaxInt64 || snap.Min != 1 {
		t.Errorf("min=%d max=%d, want 1 and MaxInt64", snap.Min, snap.Max)
	}
	for _, q := range []int64{snap.P50, snap.P95, snap.P99} {
		if q < snap.Min || q > snap.Max {
			t.Errorf("quantile %d outside [min=%d, max=%d]", q, snap.Min, snap.Max)
		}
	}
	if snap.P99 < math.MaxInt64/2 {
		t.Errorf("p99 = %d implausibly low for a MaxInt64-heavy population", snap.P99)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-1)
	r.Histogram("h").Observe(10)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -1 || back.Histograms["h"].Count != 1 {
		t.Errorf("round-tripped snapshot = %+v", back)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "c" {
		t.Errorf("names = %v", names)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(int64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestTracerRingAndJSONL(t *testing.T) {
	tr := NewTracer(4)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	i := 0
	tr.SetClock(func() time.Time { i++; return base.Add(time.Duration(i) * time.Second) })
	for n := 0; n < 6; n++ {
		tr.Emit(Event{Type: EvSwapStage, Seq: uint64(n)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Errorf("ring order wrong: first=%d last=%d", evs[0].Seq, evs[3].Seq)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl lines = %d, want 4", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil || e.Type != EvSwapStage {
		t.Errorf("jsonl line does not parse: %v %+v", err, e)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Type: "x"})
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer retained state")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}
