// Package metrics is the repository's dependency-free observability
// layer: atomic counters and gauges, bounded histograms with quantile
// snapshots, and a named registry that exports everything as JSON. The
// paper's evaluation (§6–§7) is built on measuring the system — swap
// latency breakdowns, risk-scan times, throughput under reconfiguration
// — and every hot path (BFT ordering, transport, swap engine, risk
// pipeline) reports into one of these instruments so `lazbench perf`
// and `lazbench metrics` can emit a machine-readable baseline.
//
// All instruments are safe for concurrent use and cost one or two
// atomic operations per update; none allocates on the hot path. A nil
// *Registry hands out working but unregistered instruments, so
// instrumented code never needs nil checks.
package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of instruments. Lookups are
// get-or-create, so concurrent components can share instruments by
// name; the snapshot is a consistent-enough point-in-time export (each
// instrument is read atomically, the set at one instant).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a working, unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a working, unregistered gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A
// nil registry returns a working, unregistered histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return newHistogram()
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every instrument. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// Names lists every registered instrument name, sorted (counters,
// gauges and histograms merged), mostly for tests and docs.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
