package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types emitted by the instrumented subsystems. The set is open —
// these constants just keep the spellings consistent across packages.
const (
	// EvConsensusExecuted closes one consensus instance lifecycle: the
	// batch at Seq committed and executed (DurUS = propose→execute).
	EvConsensusExecuted = "consensus.executed"
	// EvViewChange marks a replica volunteering into a view change.
	EvViewChange = "view.change"
	// EvViewAdopt marks a replica adopting a new view.
	EvViewAdopt = "view.adopt"
	// EvStateTransfer marks a state-transfer trigger (Detail = why).
	EvStateTransfer = "state.transfer"
	// EvStateRestore marks a state transfer completing at Seq.
	EvStateRestore = "state.restore"
	// EvCheckpointStable marks a checkpoint reaching quorum stability.
	EvCheckpointStable = "checkpoint.stable"
	// EvReconfig marks an ordered membership change executing.
	EvReconfig = "reconfig.apply"
	// EvSwapStage marks one swap-engine stage transition (Detail =
	// stage and verdict, DurUS = stage duration).
	EvSwapStage = "swap.stage"
	// EvSwapDone closes one swap (Detail = outcome).
	EvSwapDone = "swap.done"
)

// Event is one structured trace record. Fields are optional except T
// and Type; Node disambiguates emitters sharing a tracer.
type Event struct {
	T      time.Time `json:"t"`
	Type   string    `json:"type"`
	Node   int64     `json:"node,omitempty"`
	Seq    uint64    `json:"seq,omitempty"`
	Epoch  uint64    `json:"epoch,omitempty"`
	View   uint64    `json:"view,omitempty"`
	DurUS  int64     `json:"dur_us,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Tracer is a bounded in-memory ring of events. Writers never block and
// never allocate beyond the ring; when full, the oldest events are
// overwritten. A nil *Tracer discards everything, so callers can leave
// tracing unwired without nil checks.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	count int
	clock func() time.Time
	drops int64
}

// NewTracer builds a tracer holding at most capacity events (default
// 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Event, capacity), clock: time.Now}
}

// SetClock overrides the timestamp source (tests).
func (t *Tracer) SetClock(clock func() time.Time) {
	if t == nil || clock == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Emit records one event, stamping T if unset. Nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if e.T.IsZero() {
		e.T = t.clock()
	}
	if t.count == len(t.ring) {
		t.drops++ // overwriting the oldest
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first. Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dropped reports how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// WriteJSONL dumps the retained events as JSON lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
