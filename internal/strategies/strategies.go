// Package strategies implements the five replica-set selection strategies
// compared in the paper's risk evaluation (§6): Lazarus (Algorithm 1 over
// the Equation 5 risk metric), CVSSv3 (minimize the summed CVSS of shared
// vulnerabilities), Common (minimize the count of shared vulnerabilities,
// the straw man from the authors' earlier OS-diversity studies), Random
// (daily random replacement — proactive recovery with diversity but no
// criteria), and Equal (one OS everywhere — how most BFT systems are
// deployed).
package strategies

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"lazarus/internal/core"
)

// PairMetric scores a replica pair at a point in time; lower is better.
type PairMetric func(ri, rj core.Replica, now time.Time) float64

// Env is the environment a strategy operates in.
type Env struct {
	// Universe is the set of OSes a configuration draws from.
	Universe []core.Replica
	// N is the configuration size (the paper uses n = 4).
	N int
	// Evaluator answers the Lazarus risk queries (used by the Lazarus
	// strategy).
	Evaluator core.RiskEvaluator
	// SharedCount is |V(ri,rj)| counting only direct NVD co-listings
	// (used by Common).
	SharedCount PairMetric
	// SharedCVSS is the summed CVSS of direct co-listings (used by
	// CVSSv3).
	SharedCVSS PairMetric
	// Threshold is the Lazarus reconfiguration threshold (Equation 5
	// units). Zero or negative selects the adaptive rule: 1.05 × the
	// risk of the initial greedy minimum-risk configuration plus one
	// fresh HIGH-severity exploited weakness (the Equation 5 sum grows
	// with the length of the vulnerability history, so an absolute
	// constant cannot transfer across datasets).
	Threshold float64
}

func (e Env) validate() error {
	switch {
	case e.N <= 0:
		return fmt.Errorf("strategies: n = %d must be positive", e.N)
	case len(e.Universe) < e.N:
		return fmt.Errorf("strategies: universe %d smaller than n %d", len(e.Universe), e.N)
	}
	return nil
}

// Strategy selects and evolves a replica configuration. Implementations
// are single-run and not safe for concurrent use; create one per run.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Init picks the initial configuration using knowledge available at
	// time asof.
	Init(asof time.Time) (core.Config, error)
	// Step runs one daily round with knowledge available at time asof
	// and returns the (possibly reconfigured) running configuration.
	Step(asof time.Time) (core.Config, error)
}

// Factory builds a fresh strategy instance for one run.
type Factory func(env Env, rng *rand.Rand) (Strategy, error)

// Factories returns the five paper strategies in presentation order.
func Factories() map[string]Factory {
	return map[string]Factory{
		"Lazarus": NewLazarus,
		"CVSSv3":  NewCVSSv3,
		"Common":  NewCommon,
		"Random":  NewRandom,
		"Equal":   NewEqual,
	}
}

// StrategyNames is the paper's presentation order for figures.
var StrategyNames = []string{"Lazarus", "CVSSv3", "Common", "Random", "Equal"}

// ---------------------------------------------------------------------------
// Equal

type equal struct {
	env    Env
	rng    *rand.Rand
	config core.Config
}

// NewEqual builds the Equal strategy: all n replicas run one
// randomly-selected OS for the whole execution.
func NewEqual(env Env, rng *rand.Rand) (Strategy, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("strategies: nil rng")
	}
	return &equal{env: env, rng: rng}, nil
}

func (s *equal) Name() string { return "Equal" }

func (s *equal) Init(time.Time) (core.Config, error) {
	pick := s.env.Universe[s.rng.Intn(len(s.env.Universe))]
	cfg := make(core.Config, s.env.N)
	for i := range cfg {
		r := pick
		r.ID = fmt.Sprintf("%s#%d", pick.ID, i+1) // replicas are distinct nodes
		cfg[i] = r
	}
	s.config = cfg
	return cfg.Clone(), nil
}

func (s *equal) Step(time.Time) (core.Config, error) {
	return s.config.Clone(), nil
}

// ---------------------------------------------------------------------------
// Random

type random struct {
	env    Env
	rng    *rand.Rand
	config core.Config
}

// NewRandom builds the Random strategy: a random initial set of n distinct
// OSes, then every day one randomly chosen replica is replaced by a
// randomly chosen outside OS.
func NewRandom(env Env, rng *rand.Rand) (Strategy, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("strategies: nil rng")
	}
	return &random{env: env, rng: rng}, nil
}

func (s *random) Name() string { return "Random" }

func (s *random) Init(time.Time) (core.Config, error) {
	idx := s.rng.Perm(len(s.env.Universe))[:s.env.N]
	cfg := make(core.Config, s.env.N)
	for i, j := range idx {
		cfg[i] = s.env.Universe[j]
	}
	s.config = cfg
	return cfg.Clone(), nil
}

func (s *random) Step(time.Time) (core.Config, error) {
	outside := make([]core.Replica, 0, len(s.env.Universe)-s.env.N)
	for _, r := range s.env.Universe {
		if !s.config.Contains(r.ID) {
			outside = append(outside, r)
		}
	}
	if len(outside) > 0 {
		victim := s.rng.Intn(len(s.config))
		s.config[victim] = outside[s.rng.Intn(len(outside))]
	}
	return s.config.Clone(), nil
}

// ---------------------------------------------------------------------------
// Metric-greedy (Common and CVSSv3 share the machinery)

type greedy struct {
	name   string
	env    Env
	rng    *rand.Rand
	metric PairMetric
	config core.Config
}

// NewCommon builds the Common strategy: minimize the number of shared
// vulnerabilities across the set, as in the authors' prior vulnerability
// studies.
func NewCommon(env Env, rng *rand.Rand) (Strategy, error) {
	return newGreedy("Common", env, rng, env.SharedCount)
}

// NewCVSSv3 builds the CVSSv3 strategy: minimize the summed CVSS v3 base
// score of shared vulnerabilities.
func NewCVSSv3(env Env, rng *rand.Rand) (Strategy, error) {
	return newGreedy("CVSSv3", env, rng, env.SharedCVSS)
}

func newGreedy(name string, env Env, rng *rand.Rand, metric PairMetric) (Strategy, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("strategies: nil rng")
	}
	if metric == nil {
		return nil, fmt.Errorf("strategies: %s needs its pair metric", name)
	}
	return &greedy{name: name, env: env, rng: rng, metric: metric}, nil
}

func (s *greedy) Name() string { return s.name }

func (s *greedy) setMetric(cfg core.Config, asof time.Time) float64 {
	var total float64
	for i := 0; i < len(cfg); i++ {
		for j := i + 1; j < len(cfg); j++ {
			total += s.metric(cfg[i], cfg[j], asof)
		}
	}
	return total
}

// GreedyMinRiskConfig assembles a low-risk configuration by greedy
// construction over the Equation 5 pair metric, restarting several times
// and keeping the best. The control plane uses it to seed Algorithm 1.
func GreedyMinRiskConfig(universe []core.Replica, n int, eval core.RiskEvaluator, asof time.Time, rng *rand.Rand) (core.Config, float64, error) {
	if len(universe) < n || n <= 0 {
		return nil, 0, fmt.Errorf("strategies: universe %d, n %d", len(universe), n)
	}
	if eval == nil || rng == nil {
		return nil, 0, errors.New("strategies: nil evaluator or rng")
	}
	metric := func(ri, rj core.Replica, now time.Time) float64 {
		return eval.Risk(core.Config{ri, rj}, now)
	}
	best := greedyMinConfig(universe, n, metric, asof, rng)
	bestRisk := eval.Risk(best, asof)
	for restart := 0; restart < 7; restart++ {
		cand := greedyMinConfig(universe, n, metric, asof, rng)
		if r := eval.Risk(cand, asof); r < bestRisk {
			best, bestRisk = cand, r
		}
	}
	return best, bestRisk, nil
}

// greedyMinConfig assembles a minimal-metric configuration: start from a
// random replica, then repeatedly add the replica that minimizes the
// metric increase, breaking ties uniformly at random (ties are common for
// count metrics, which is where the run-to-run variance comes from).
func greedyMinConfig(universe []core.Replica, n int, metric PairMetric, asof time.Time, rng *rand.Rand) core.Config {
	remaining := append([]core.Replica(nil), universe...)
	first := rng.Intn(len(remaining))
	cfg := core.Config{remaining[first]}
	remaining = append(remaining[:first], remaining[first+1:]...)
	for len(cfg) < n {
		bestCost := 0.0
		var ties []int
		for i, cand := range remaining {
			var cost float64
			for _, r := range cfg {
				cost += metric(r, cand, asof)
			}
			switch {
			case len(ties) == 0 || cost < bestCost:
				bestCost, ties = cost, ties[:0]
				ties = append(ties, i)
			case cost == bestCost:
				ties = append(ties, i)
			}
		}
		pick := ties[rng.Intn(len(ties))]
		cfg = append(cfg, remaining[pick])
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return cfg
}

// Init greedily assembles a minimal-metric configuration.
func (s *greedy) Init(asof time.Time) (core.Config, error) {
	s.config = greedyMinConfig(s.env.Universe, s.env.N, s.metric, asof, s.rng)
	return s.config.Clone(), nil
}

// Step re-evaluates daily: if replacing one running replica by one outside
// OS lowers the set metric, apply the best such replacement (ties broken
// at random).
func (s *greedy) Step(asof time.Time) (core.Config, error) {
	current := s.setMetric(s.config, asof)
	type move struct{ victim, joiner int }
	bestCost := current
	var ties []move
	outside := make([]core.Replica, 0, len(s.env.Universe)-s.env.N)
	for _, r := range s.env.Universe {
		if !s.config.Contains(r.ID) {
			outside = append(outside, r)
		}
	}
	for vi := range s.config {
		for oi, cand := range outside {
			next := s.config.Clone()
			next[vi] = cand
			cost := s.setMetric(next, asof)
			switch {
			case cost < bestCost:
				bestCost, ties = cost, ties[:0]
				ties = append(ties, move{vi, oi})
			case cost == bestCost && cost < current:
				ties = append(ties, move{vi, oi})
			}
		}
	}
	if len(ties) > 0 {
		mv := ties[s.rng.Intn(len(ties))]
		s.config[mv.victim] = outside[mv.joiner]
	}
	return s.config.Clone(), nil
}

// ---------------------------------------------------------------------------
// Lazarus

type lazarus struct {
	env     Env
	rng     *rand.Rand
	monitor *core.Monitor
	// poolFloor: when POOL drops below this, the least-vulnerable
	// quarantined replica is released early (the paper's second
	// administrator remediation, automated).
	poolFloor int
}

// NewLazarus builds the Lazarus strategy: Algorithm 1 over the Equation 5
// risk metric with clustering-aware shared-vulnerability detection.
func NewLazarus(env Env, rng *rand.Rand) (Strategy, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("strategies: nil rng")
	}
	if env.Evaluator == nil {
		return nil, errors.New("strategies: Lazarus needs a risk evaluator")
	}
	return &lazarus{env: env, rng: rng, poolFloor: 2}, nil
}

func (s *lazarus) Name() string { return "Lazarus" }

// Init seeds Algorithm 1 with a greedy minimum-risk configuration (pair
// metric = the Equation 5 pair contribution) and derives the adaptive
// threshold from its risk when no absolute threshold was configured.
func (s *lazarus) Init(asof time.Time) (core.Config, error) {
	pairRisk := func(ri, rj core.Replica, now time.Time) float64 {
		return s.env.Evaluator.Risk(core.Config{ri, rj}, now)
	}
	// Multi-start greedy: the single-start result varies a lot with the
	// random first replica, and the threshold must anchor to the risk
	// level a good configuration can actually achieve.
	best := greedyMinConfig(s.env.Universe, s.env.N, pairRisk, asof, s.rng)
	bestRisk := s.env.Evaluator.Risk(best, asof)
	for restart := 0; restart < 7; restart++ {
		cand := greedyMinConfig(s.env.Universe, s.env.N, pairRisk, asof, s.rng)
		if r := s.env.Evaluator.Risk(cand, asof); r < bestRisk {
			best, bestRisk = cand, r
		}
	}
	threshold := s.env.Threshold
	if threshold <= 0 {
		// 5% headroom over the achievable baseline plus one fresh
		// HIGH-severity exploited shared weakness (7.0 x 1.25): anything
		// less would trigger on noise, anything more would sleep through
		// exactly the events Lazarus exists for.
		threshold = bestRisk*1.05 + 8.75
	}
	// Algorithm 1 picks uniformly at random among acceptable candidates so
	// that observing the pool does not reveal the next configuration; the
	// initial selection follows the same rule — sample configurations and
	// choose randomly among those below the threshold.
	const initSamples = 200
	candidates := []core.Config{best}
	for t := 0; t < initSamples; t++ {
		idx := s.rng.Perm(len(s.env.Universe))[:s.env.N]
		cand := make(core.Config, s.env.N)
		for i, j := range idx {
			cand[i] = s.env.Universe[j]
		}
		if s.env.Evaluator.Risk(cand, asof) <= threshold {
			candidates = append(candidates, cand)
		}
	}
	best = candidates[s.rng.Intn(len(candidates))]
	pool := make([]core.Replica, 0, len(s.env.Universe)-s.env.N)
	for _, r := range s.env.Universe {
		if !best.Contains(r.ID) {
			pool = append(pool, r)
		}
	}
	m, err := core.NewMonitor(s.env.Evaluator, best, pool, core.MonitorConfig{
		Threshold: threshold,
		Rand:      s.rng,
	})
	if err != nil {
		return nil, err
	}
	s.monitor = m
	return best.Clone(), nil
}

func (s *lazarus) Step(asof time.Time) (core.Config, error) {
	if s.monitor == nil {
		return nil, errors.New("strategies: Lazarus Step before Init")
	}
	_, err := s.monitor.Monitor(asof)
	switch {
	case errors.Is(err, core.ErrPoolExhausted):
		// Remediation: release the least-vulnerable quarantined replica
		// and retry once.
		if _, relErr := s.monitor.ReleaseLeastVulnerable(asof); relErr == nil {
			_, err = s.monitor.Monitor(asof)
		}
	case errors.Is(err, core.ErrNoCandidate):
		// The paper's first administrator remediation, automated: raise
		// the threshold (10%) so the next round can reconfigure.
		err = s.monitor.RaiseThreshold(s.monitor.Threshold() * 1.1)
	}
	if err != nil && !errors.Is(err, core.ErrNoCandidate) && !errors.Is(err, core.ErrPoolExhausted) {
		return nil, err
	}
	// Keep the spare pool healthy regardless of reconfiguration outcome.
	for len(s.monitor.Pool()) < s.poolFloor && len(s.monitor.Quarantine()) > 0 {
		if _, relErr := s.monitor.ReleaseLeastVulnerable(asof); relErr != nil {
			break
		}
	}
	return s.monitor.Config(), nil
}
