package strategies

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"lazarus/internal/cluster"
	"lazarus/internal/core"
	"lazarus/internal/osint"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

var universe = []core.Replica{
	core.NewReplica("UB16", "canonical:ubuntu_linux:16.04"),
	core.NewReplica("DE8", "debian:debian_linux:8.0"),
	core.NewReplica("FE26", "fedoraproject:fedora:26"),
	core.NewReplica("W10", "microsoft:windows_10:-"),
	core.NewReplica("SO11", "oracle:solaris:11.3"),
	core.NewReplica("OB61", "openbsd:openbsd:6.1"),
	core.NewReplica("FB11", "freebsd:freebsd:11.0"),
}

// testEnv: UB16+DE8 share two recent criticals; everything else is clean.
func testEnv(t *testing.T) Env {
	t.Helper()
	corpus := []*osint.Vulnerability{
		{ID: "CVE-2018-0001", Description: "kernel bug", Published: day(2018, 5, 1), CVSS: 9.0,
			Products: []string{"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"}},
		{ID: "CVE-2018-0002", Description: "other kernel bug", Published: day(2018, 5, 2), CVSS: 8.0,
			Products: []string{"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"}},
		{ID: "CVE-2018-0003", Description: "windows bug", Published: day(2018, 5, 3), CVSS: 5.0,
			Products: []string{"microsoft:windows_10:-"}},
	}
	intel, err := core.NewIntel(corpus, &cluster.Clusters{K: 1, ByCVE: map[string]int{}, Members: make([][]string, 1)})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewRiskEngine(intel, core.DefaultScoreParams())
	if err != nil {
		t.Fatal(err)
	}
	return Env{
		Universe:  universe,
		N:         4,
		Evaluator: engine,
		SharedCount: func(ri, rj core.Replica, now time.Time) float64 {
			return float64(len(intel.DirectShared(ri, rj, now)))
		},
		SharedCVSS: func(ri, rj core.Replica, now time.Time) float64 {
			var sum float64
			for _, v := range intel.DirectShared(ri, rj, now) {
				sum += v.CVSS
			}
			return sum
		},
		Threshold: 5,
	}
}

func TestEqualAllSameOS(t *testing.T) {
	s, err := NewEqual(testEnv(t), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Init(day(2018, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg) != 4 {
		t.Fatalf("config size %d", len(cfg))
	}
	product := cfg[0].Products[0]
	for _, r := range cfg {
		if r.Products[0] != product {
			t.Errorf("Equal mixed OSes: %v", cfg.IDs())
		}
	}
	// IDs must still be distinct (they are distinct nodes).
	seen := map[string]bool{}
	for _, r := range cfg {
		if seen[r.ID] {
			t.Errorf("duplicate node id %s", r.ID)
		}
		seen[r.ID] = true
	}
	// Step never changes anything.
	after, err := s.Step(day(2018, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		if after[i].ID != cfg[i].ID {
			t.Error("Equal reconfigured")
		}
	}
}

func TestRandomReplacesDaily(t *testing.T) {
	s, err := NewRandom(testEnv(t), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Init(day(2018, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, r := range cfg {
		distinct[r.ID] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("Random initial config has duplicates: %v", cfg.IDs())
	}
	changes := 0
	prev := cfg
	for i := 0; i < 10; i++ {
		next, err := s.Step(day(2018, 6, 2+i))
		if err != nil {
			t.Fatal(err)
		}
		if len(next) != 4 {
			t.Fatalf("config size %d", len(next))
		}
		diff := 0
		for j := range next {
			if next[j].ID != prev[j].ID {
				diff++
			}
		}
		if diff > 1 {
			t.Errorf("Random changed %d replicas in one day", diff)
		}
		changes += diff
		prev = next
	}
	if changes == 0 {
		t.Error("Random never replaced a replica in 10 days")
	}
}

func TestCommonAvoidsSharedPair(t *testing.T) {
	env := testEnv(t)
	for seed := int64(0); seed < 20; seed++ {
		s, err := NewCommon(env, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := s.Init(day(2018, 6, 1))
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Contains("UB16") && cfg.Contains("DE8") {
			t.Errorf("seed %d: Common picked the sharing pair: %v", seed, cfg.IDs())
		}
	}
}

func TestCVSSv3AvoidsSharedPair(t *testing.T) {
	env := testEnv(t)
	for seed := int64(0); seed < 20; seed++ {
		s, err := NewCVSSv3(env, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := s.Init(day(2018, 6, 1))
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Contains("UB16") && cfg.Contains("DE8") {
			t.Errorf("seed %d: CVSSv3 picked the sharing pair: %v", seed, cfg.IDs())
		}
	}
}

func TestGreedyStepMovesOffBadPair(t *testing.T) {
	env := testEnv(t)
	s, err := NewCommon(env, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(day(2018, 4, 1)); err != nil { // before the vulns exist
		t.Fatal(err)
	}
	// Force the bad pair in.
	g := s.(*greedy)
	g.config = core.Config{universe[0], universe[1], universe[2], universe[3]}
	cfg, err := s.Step(day(2018, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Contains("UB16") && cfg.Contains("DE8") {
		t.Errorf("greedy step kept the sharing pair: %v", cfg.IDs())
	}
}

func TestLazarusAvoidsSharedPairOverTime(t *testing.T) {
	env := testEnv(t)
	for seed := int64(0); seed < 10; seed++ {
		s, err := NewLazarus(env, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Init(day(2018, 6, 1)); err != nil {
			t.Fatal(err)
		}
		cfg, err := s.Step(day(2018, 6, 2))
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Contains("UB16") && cfg.Contains("DE8") {
			t.Errorf("seed %d: Lazarus kept the sharing pair after a step: %v", seed, cfg.IDs())
		}
		if len(cfg) != 4 {
			t.Fatalf("config size %d", len(cfg))
		}
	}
}

func TestLazarusStepBeforeInit(t *testing.T) {
	s, err := NewLazarus(testEnv(t), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(day(2018, 6, 1)); err == nil {
		t.Error("Step before Init accepted")
	}
}

func TestFactoriesComplete(t *testing.T) {
	fs := Factories()
	if len(fs) != 5 {
		t.Fatalf("%d factories, want 5", len(fs))
	}
	env := testEnv(t)
	for _, name := range StrategyNames {
		f, ok := fs[name]
		if !ok {
			t.Fatalf("factory %s missing", name)
		}
		s, err := f(env, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("factory %s built strategy named %s", name, s.Name())
		}
		cfg, err := s.Init(day(2018, 6, 1))
		if err != nil {
			t.Fatalf("%s Init: %v", name, err)
		}
		if len(cfg) != env.N {
			t.Errorf("%s produced config of size %d", name, len(cfg))
		}
	}
}

func TestValidation(t *testing.T) {
	env := testEnv(t)
	rng := rand.New(rand.NewSource(1))
	bad := env
	bad.N = 0
	if _, err := NewEqual(bad, rng); err == nil {
		t.Error("n=0 accepted")
	}
	bad = env
	bad.N = len(universe) + 1
	if _, err := NewRandom(bad, rng); err == nil {
		t.Error("n>universe accepted")
	}
	if _, err := NewEqual(env, nil); err == nil {
		t.Error("nil rng accepted")
	}
	noMetric := env
	noMetric.SharedCount = nil
	if _, err := NewCommon(noMetric, rng); err == nil {
		t.Error("Common without metric accepted")
	}
	noEval := env
	noEval.Evaluator = nil
	if _, err := NewLazarus(noEval, rng); err == nil {
		t.Error("Lazarus without evaluator accepted")
	}
}

func TestEqualNodeIDsMarked(t *testing.T) {
	s, _ := NewEqual(testEnv(t), rand.New(rand.NewSource(9)))
	cfg, _ := s.Init(day(2018, 6, 1))
	for _, r := range cfg {
		if !strings.Contains(r.ID, "#") {
			t.Errorf("Equal node id %q not marked", r.ID)
		}
	}
}
