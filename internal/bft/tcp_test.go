package bft

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"net"
	"testing"
	"time"

	"lazarus/internal/transport"
)

// freePorts grabs n distinct loopback addresses.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestOrderingOverTCP runs the full protocol over real sockets with
// authenticated frames (the deployment transport) instead of the
// in-memory switchboard.
func TestOrderingOverTCP(t *testing.T) {
	const n = 4
	clientID := transport.ClientIDBase
	ports := freePorts(t, n+1)
	addrs := make(map[transport.NodeID]string, n+1)
	ids := make([]transport.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = transport.NodeID(i)
		addrs[ids[i]] = ports[i]
	}
	addrs[clientID] = ports[n]
	tnet, err := transport.NewTCP(transport.TCPConfig{
		Addrs:  addrs,
		Secret: []byte("bft-over-tcp-test"),
		// Tight deadlines: a wedged replica must cost milliseconds, not
		// OS-default connect timeouts, even in this happy-path test.
		DialTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tnet.Close()

	pubs := make(map[transport.NodeID]ed25519.PublicKey, n)
	privs := make(map[transport.NodeID]ed25519.PrivateKey, n)
	for _, id := range ids {
		pubs[id], privs[id] = keypair(t)
	}
	clientPub, clientPriv := keypair(t)
	ctrlPub, _ := keypair(t)
	membership, err := NewMembership(ids, pubs)
	if err != nil {
		t.Fatal(err)
	}

	apps := make(map[transport.NodeID]*counterApp, n)
	var replicas []*Replica
	for _, id := range ids {
		app := &counterApp{}
		apps[id] = app
		r, err := NewReplica(ReplicaConfig{
			ID:                 id,
			Key:                privs[id],
			Membership:         membership,
			App:                app,
			Net:                tnet,
			ClientKeys:         map[transport.NodeID]ed25519.PublicKey{clientID: clientPub},
			ControllerKey:      ctrlPub,
			BatchDelay:         time.Millisecond,
			CheckpointInterval: 16,
			ViewChangeTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	client, err := NewClient(ClientConfig{
		ID:             clientID,
		Key:            clientPriv,
		Replicas:       ids,
		F:              membership.F(),
		Net:            tnet,
		RequestTimeout: time.Second,
		MaxAttempts:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var want int64
	for i := 1; i <= 8; i++ {
		want += int64(i)
		res, err := client.Invoke(ctx, []byte(fmt.Sprintf("add %d", i)))
		if err != nil {
			t.Fatalf("invoke %d over TCP: %v", i, err)
		}
		if decodeInt(res) != want {
			t.Fatalf("result %d, want %d", decodeInt(res), want)
		}
	}
	eventually(t, 10*time.Second, "TCP replica convergence", func() bool {
		for _, app := range apps {
			if app.Value() != want {
				return false
			}
		}
		return true
	})

	// A full protocol run must be visible in the transport counters.
	st := tnet.Stats()
	if st.FramesSent == 0 || st.FramesRecv == 0 || st.Dials == 0 {
		t.Errorf("transport counters silent after a BFT run: %+v", st)
	}
	if st.DropsAuthFail != 0 || st.DropsMisrouted != 0 {
		t.Errorf("unexpected hostile-frame drops on a clean run: %+v", st)
	}
}
