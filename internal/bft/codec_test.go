package bft

import (
	"reflect"
	"testing"

	"lazarus/internal/transport"
)

// codecMessages covers every fast-codec type (with empty and populated
// variants) plus a gob-path type, so Encode/Decode round-trips are
// checked across both formats.
func codecMessages() []*Message {
	req := Request{Client: transport.ClientIDBase + 3, Seq: 42, Op: []byte("put k v"), Sig: make([]byte, 64)}
	for i := range req.Sig {
		req.Sig[i] = byte(i)
	}
	empty := Request{Client: transport.ClientIDBase, Seq: 1}
	return []*Message{
		{Type: MsgRequest, From: transport.ClientIDBase + 3, Request: &req},
		{Type: MsgRequest, From: transport.ClientIDBase, Request: &empty},
		{Type: MsgPrePrepare, From: 0, View: 3, SeqNo: 17, Epoch: 2,
			Batch: &Batch{Requests: []Request{req, empty}}, BatchDigest: Digest{9, 9}, Sig: make([]byte, 64)},
		{Type: MsgPrePrepare, From: 1, View: 0, SeqNo: 1, Batch: &Batch{}},
		{Type: MsgPrepare, From: 2, View: 1, SeqNo: 5, Epoch: 1, BatchDigest: Digest{1, 2, 3}, Sig: []byte("prepsig")},
		{Type: MsgPrepare, From: 3, View: 1, SeqNo: 6, BatchDigest: Digest{1}},
		{Type: MsgCommit, From: 3, View: 1, SeqNo: 5, Epoch: 1, BatchDigest: Digest{4, 5, 6}},
		{Type: MsgReply, From: 2, View: 1, Epoch: 1, ReplySeq: 42, ReplyEpoch: 1,
			ReplyClient: transport.ClientIDBase + 3, Result: []byte("ok"), Sig: make([]byte, 64)},
		{Type: MsgReply, From: 0},
		// Gob path: a signed checkpoint vote.
		{Type: MsgCheckpoint, From: 1, SeqNo: 8, Epoch: 1, StateDigest: Digest{7}, Sig: []byte("sig")},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, want := range codecMessages() {
		payload, err := Encode(want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Type, err)
		}
		got, err := Decode(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Type, err)
		}
		// Normalize the representations the codec does not preserve
		// bit-for-bit: nil vs empty slices.
		if got.Type == MsgPrePrepare && len(got.Batch.Requests) == 0 {
			got.Batch.Requests = nil
		}
		normReq := func(r *Request) {
			if r == nil {
				return
			}
			if len(r.Op) == 0 {
				r.Op = nil
			}
			if len(r.Sig) == 0 {
				r.Sig = nil
			}
		}
		normReq(got.Request)
		if got.Batch != nil {
			for i := range got.Batch.Requests {
				normReq(&got.Batch.Requests[i])
			}
		}
		if len(got.Result) == 0 {
			got.Result = nil
		}
		if len(got.Sig) == 0 {
			got.Sig = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

// TestCodecDigestsSurviveRoundTrip: the digests protocol handlers
// compute from decoded messages must match the sender's, or quorums
// would never form.
func TestCodecDigestsSurviveRoundTrip(t *testing.T) {
	req := Request{Client: transport.ClientIDBase, Seq: 7, Op: []byte("add 1"), Sig: make([]byte, 64)}
	batch := &Batch{Requests: []Request{req}}
	m := &Message{Type: MsgPrePrepare, From: 0, SeqNo: 1, Batch: batch, BatchDigest: batch.Digest()}
	payload, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batch.Digest() != m.BatchDigest {
		t.Error("batch digest changed across the wire")
	}
	if got.Batch.Requests[0].Digest() != req.Digest() {
		t.Error("request digest changed across the wire")
	}
}

// TestCodecRejectsTruncatedPayloads: every truncation of a valid fast
// payload must fail cleanly, never panic or decode to garbage silently.
func TestCodecRejectsTruncatedPayloads(t *testing.T) {
	for _, msg := range codecMessages() {
		payload, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(payload); cut++ {
			if m, err := Decode(payload[:cut]); err == nil {
				// Gob tolerates some truncations structurally; fast-codec
				// payloads must not.
				if payload[0] == wireFast {
					t.Fatalf("%v truncated to %d bytes decoded to %+v", msg.Type, cut, m)
				}
			}
		}
	}
}

// TestCodecRejectsHostileLengths: a length prefix claiming more bytes
// than the payload holds must fail without huge allocations.
func TestCodecRejectsHostileLengths(t *testing.T) {
	m := &Message{Type: MsgRequest, From: transport.ClientIDBase,
		Request: &Request{Client: transport.ClientIDBase, Seq: 1, Op: []byte("x")}}
	payload, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// The Op length prefix sits after tag+type+4 header fields+client+seq.
	off := 2 + 8*4 + 16
	hostile := append([]byte(nil), payload...)
	hostile[off] = 0xff // claim ~4 GiB of Op bytes
	if _, err := Decode(hostile); err == nil {
		t.Fatal("hostile length prefix decoded successfully")
	}
	// Hostile pre-prepare batch count.
	pp := &Message{Type: MsgPrePrepare, From: 0, SeqNo: 1, Batch: &Batch{}}
	payload, err = Encode(pp)
	if err != nil {
		t.Fatal(err)
	}
	hostile = append([]byte(nil), payload...)
	hostile[len(hostile)-4] = 0xff // batch count is the trailing u32
	if _, err := Decode(hostile); err == nil {
		t.Fatal("hostile batch count decoded successfully")
	}
}

// coldMessages covers the gob-path message types: view change and new
// view (with nested prepared certificates), state transfer and
// checkpoint. Reconfiguration rides inside requests, so a request whose
// Op is an encoded ReconfigOp is included too.
func coldMessages(t *testing.T) []*Message {
	t.Helper()
	batch := &Batch{Requests: []Request{{Client: transport.ClientIDBase, Seq: 3, Op: []byte("put k v"), Sig: make([]byte, 64)}}}
	pp := Message{Type: MsgPrePrepare, From: 0, View: 2, SeqNo: 9,
		Batch: batch, BatchDigest: batch.Digest(), Sig: make([]byte, 64)}
	prep := Message{Type: MsgPrepare, From: 1, View: 2, SeqNo: 9,
		BatchDigest: batch.Digest(), Sig: make([]byte, 64)}
	proof := PreparedProof{View: 2, SeqNo: 9, BatchDigest: batch.Digest(), Batch: batch,
		PrePrepare: &pp, Prepares: []Message{prep}}
	vc := &Message{Type: MsgViewChange, From: 1, NewView: 3, Epoch: 1, LastStable: 8,
		Prepared: []PreparedProof{proof}, Sig: make([]byte, 64)}
	nv := &Message{Type: MsgNewView, From: 2, NewView: 3, Epoch: 1,
		NewViewMsgs: []Message{*vc}, PrePrepares: []Message{pp}, Sig: make([]byte, 64)}
	reconfigOp, err := EncodeReconfigOp(ReconfigOp{Add: true, Replica: 7, PubKey: make([]byte, 32)})
	if err != nil {
		t.Fatal(err)
	}
	return []*Message{
		vc,
		nv,
		// A catch-up response carries a single prepared certificate in
		// the same Prepared field view changes use; a checkpoint vote
		// additionally advertises the sender's stable point.
		{Type: MsgCatchUp, From: 2, SeqNo: 9, Epoch: 1, Prepared: []PreparedProof{proof}},
		{Type: MsgCheckpoint, From: 1, SeqNo: 16, Epoch: 1, StateDigest: Digest{5},
			LastStable: 8, Sig: make([]byte, 64)},
		{Type: MsgStateRequest, From: 3, SeqNo: 12, Epoch: 1, Sig: make([]byte, 64)},
		{Type: MsgStateReply, From: 3, SnapSeqNo: 16, SnapView: 3,
			Snapshot: []byte("snapshot-bytes"), Sig: make([]byte, 64)},
		{Type: MsgCheckpoint, From: 2, SeqNo: 16, Epoch: 1, StateDigest: Digest{5}, Sig: make([]byte, 64)},
		{Type: MsgRequest, From: transport.ClientIDBase,
			Request: &Request{Client: transport.ClientIDBase, Seq: 4, Op: reconfigOp, Sig: make([]byte, 64)}},
	}
}

// TestCodecColdTypesSurviveHostileInputs fuzzes the cold (gob-path)
// message types the Byzantine attackers replay and corrupt: every
// truncation and every single-byte corruption of a valid payload must
// decode to an error or a message — never panic — and a length field
// inflated to claim gigabytes must fail rather than allocate.
func TestCodecColdTypesSurviveHostileInputs(t *testing.T) {
	tryDecode := func(payload []byte) {
		t.Helper()
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("decode panicked on hostile payload: %v", rec)
			}
		}()
		_, _ = Decode(payload)
	}
	for _, msg := range coldMessages(t) {
		payload, err := Encode(msg)
		if err != nil {
			t.Fatalf("%v: encode: %v", msg.Type, err)
		}
		// Round trip sanity: the hostile cases below only mean something
		// if the pristine payload decodes.
		if _, err := Decode(payload); err != nil {
			t.Fatalf("%v: pristine payload does not decode: %v", msg.Type, err)
		}
		// Truncation at every offset.
		for cut := 0; cut < len(payload); cut++ {
			tryDecode(payload[:cut])
		}
		// Single-byte corruption at every offset (gob may still decode —
		// the protocol handlers authenticate content — but must not panic).
		for off := 1; off < len(payload); off++ {
			hostile := append([]byte(nil), payload...)
			hostile[off] ^= 0xff
			tryDecode(hostile)
		}
		// Oversized-field claim: append a gob slice header claiming ~1 GiB
		// of trailing bytes. Gob must reject it without allocating.
		hostile := append([]byte(nil), payload...)
		hostile = append(hostile, 0xfc, 0x40, 0x00, 0x00, 0x00)
		tryDecode(hostile)
	}
}

func BenchmarkCodecDecodePrepare(b *testing.B) {
	payload, err := Encode(&Message{Type: MsgPrepare, From: 1, View: 0, SeqNo: 9, BatchDigest: Digest{1, 2, 3}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodePrePrepare16(b *testing.B) {
	batch := &Batch{}
	for i := 0; i < 16; i++ {
		batch.Requests = append(batch.Requests, Request{
			Client: transport.ClientIDBase, Seq: uint64(i), Op: []byte("put k v"), Sig: make([]byte, 64)})
	}
	payload, err := Encode(&Message{Type: MsgPrePrepare, From: 0, SeqNo: 9, Batch: batch, BatchDigest: batch.Digest()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}
