package bft

import (
	"context"
	"crypto/sha256"
	"sync"
	"testing"
	"time"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// badDigest is a digest no honest proposal hashes to.
var badDigest = Digest(sha256.Sum256([]byte("equivocating-proposal")))

// signedReq builds a client-signed request.
func signedReq(c *cluster, client transport.NodeID, seq uint64, op string) Request {
	req := Request{Client: client, Seq: seq, Op: []byte(op)}
	req.Sign(c.clientPriv[client])
	return req
}

// signedMsg signs a hand-crafted replica message with its sender's key
// (pre-prepares and prepares are signature-checked before votes count).
func signedMsg(c *cluster, m *Message) *Message {
	m.Sign(c.keys[m.From])
	return m
}

// TestPrepareQuorumIgnoresMismatchedDigests is the digest-blind vote
// counting regression: prepare votes arriving before the pre-prepare
// used to be buffered without the digest they voted for, so votes for a
// *different* proposal counted toward this instance's quorum once the
// pre-prepare landed. Two Byzantine early votes plus the primary and
// self must NOT reach the 2f+1 quorum.
func TestPrepareQuorumIgnoresMismatchedDigests(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1] // backup of view 0; unstarted, driven directly

	batch := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, 1, "add 7")}}
	good := batch.Digest()

	// Byzantine peers 2 and 3 vote early — before the pre-prepare — for a
	// different digest.
	for _, from := range []transport.NodeID{2, 3} {
		r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: from, View: 0, SeqNo: 1, BatchDigest: badDigest}))
	}
	r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1,
		Batch: batch, BatchDigest: good}))

	in := r.log[1]
	if in == nil {
		t.Fatal("no instance registered for seq 1")
	}
	if in.prepared {
		t.Fatal("prepared: early votes for a different digest counted toward the quorum")
	}
	// Positive control: one matching vote completes the quorum (self +
	// primary + one peer = 2f+1 = 3), so the digest filter is not simply
	// rejecting everything.
	r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: 2, View: 0, SeqNo: 1, BatchDigest: good}))
	if !in.prepared {
		t.Fatal("matching prepare votes did not reach quorum")
	}
}

// TestCommitQuorumIgnoresMismatchedDigests is the commit-phase half of
// the digest-blind regression: early commit votes for a different digest
// must not commit (and execute) the instance.
func TestCommitQuorumIgnoresMismatchedDigests(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	batch := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, 1, "add 3")}}
	good := batch.Digest()

	for _, from := range []transport.NodeID{2, 3} {
		r.onCommit(&Message{Type: MsgCommit, From: from, View: 0, SeqNo: 1, BatchDigest: badDigest})
	}
	r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1,
		Batch: batch, BatchDigest: good}))
	for _, from := range []transport.NodeID{2, 3} {
		r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: from, View: 0, SeqNo: 1, BatchDigest: good}))
	}

	in := r.log[1]
	if in == nil || !in.prepared {
		t.Fatal("instance did not prepare on matching votes")
	}
	if in.committed {
		t.Fatal("committed: early commit votes for a different digest counted toward the quorum")
	}
	if got := c.apps[1].Value(); got != 0 {
		t.Fatalf("executed on a mismatched commit quorum (value %d)", got)
	}
	// Positive control: matching commits from the same peers commit and
	// execute.
	for _, from := range []transport.NodeID{2, 3} {
		r.onCommit(&Message{Type: MsgCommit, From: from, View: 0, SeqNo: 1, BatchDigest: good})
	}
	if !in.committed {
		t.Fatal("matching commit votes did not reach quorum")
	}
	if got := c.apps[1].Value(); got != 3 {
		t.Fatalf("value %d after commit, want 3", got)
	}
}

// TestReplyCacheRequiresAuthenticatedRetransmit: onRequest used to serve
// the cached reply before verifying the request signature, letting
// anyone who could name a client id trigger reply traffic toward it.
// The cache must only answer authenticated retransmissions.
func TestReplyCacheRequiresAuthenticatedRetransmit(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]
	cid := transport.ClientIDBase

	// Pretend request 5 executed and its reply is cached.
	cached := &Message{Type: MsgReply, From: 1, ReplySeq: 5, ReplyClient: cid, Result: []byte("cached")}
	r.clients[cid] = &clientRecord{lastSeq: 5, lastReply: cached}

	ep, err := c.net.Endpoint(cid)
	if err != nil {
		t.Fatal(err)
	}

	// Unauthenticated retransmission: correct client id, no signature.
	forged := Request{Client: cid, Seq: 5, Op: []byte("get")}
	r.onRequest(&Message{Type: MsgRequest, From: cid, Request: &forged})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	if env, err := ep.Recv(ctx); err == nil {
		cancel()
		t.Fatalf("unauthenticated retransmission was answered from the reply cache (%d bytes)", len(env.Payload))
	}
	cancel()

	// Authenticated retransmission gets the cached reply.
	genuine := signedReq(c, cid, 5, "get")
	r.onRequest(&Message{Type: MsgRequest, From: cid, Request: &genuine})
	ctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	env, err := ep.Recv(ctx)
	if err != nil {
		t.Fatal("authenticated retransmission got no cached reply")
	}
	reply, err := Decode(env.Payload)
	if err != nil || reply.Type != MsgReply || string(reply.Result) != "cached" {
		t.Fatalf("got %v / %v, want the cached reply", reply, err)
	}
}

// TestPipelinedCommitsExecuteInOrder drives three pipelined instances on
// a backup and commits them out of order: nothing may execute until the
// earliest instance commits, and then everything executes in sequence
// order.
func TestPipelinedCommitsExecuteInOrder(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]
	cid := transport.ClientIDBase

	digests := make(map[uint64]Digest)
	ops := map[uint64]string{1: "add 1", 2: "add 10", 3: "add 100"}
	for seq := uint64(1); seq <= 3; seq++ {
		batch := &Batch{Requests: []Request{signedReq(c, cid, seq, ops[seq])}}
		digests[seq] = batch.Digest()
		r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: seq,
			Batch: batch, BatchDigest: batch.Digest()}))
	}
	commit := func(seq uint64) {
		for _, from := range []transport.NodeID{2, 3} {
			r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: from, View: 0, SeqNo: seq, BatchDigest: digests[seq]}))
			r.onCommit(&Message{Type: MsgCommit, From: from, View: 0, SeqNo: seq, BatchDigest: digests[seq]})
		}
	}

	commit(3)
	commit(2)
	if r.lastExec != 0 || c.apps[1].Value() != 0 {
		t.Fatalf("executed ahead of sequence order (lastExec %d, value %d)", r.lastExec, c.apps[1].Value())
	}
	commit(1)
	if r.lastExec != 3 {
		t.Fatalf("lastExec %d after all commits, want 3", r.lastExec)
	}
	if got := c.apps[1].Value(); got != 111 {
		t.Fatalf("value %d, want 111", got)
	}
}

// TestFullBatchProposesWithoutTick: with the pipeline busy, a batch that
// fills must be proposed immediately, never waiting out the BatchDelay
// tick (which this test sets far beyond its own runtime).
func TestFullBatchProposesWithoutTick(t *testing.T) {
	c := newCluster(t, 4, 3, func(cfg *ReplicaConfig) {
		cfg.BatchSize = 2
		cfg.BatchDelay = time.Hour // a tick never fires
	})
	defer c.stop()
	r := c.replicas[0] // primary of view 0; unstarted, so no ticker runs

	sendReq := func(i int) {
		cid := transport.ClientIDBase + transport.NodeID(i)
		req := signedReq(c, cid, 1, "add 1")
		r.onRequest(&Message{Type: MsgRequest, From: cid, Request: &req})
	}
	sendReq(0)
	if r.seq != 1 {
		t.Fatalf("idle primary did not propose immediately (seq %d)", r.seq)
	}
	sendReq(1)
	if r.seq != 1 {
		t.Fatalf("partial batch proposed into a busy pipeline (seq %d)", r.seq)
	}
	sendReq(2)
	if r.seq != 2 {
		t.Fatalf("full batch waited for the BatchDelay tick (seq %d)", r.seq)
	}
	if len(r.pending) != 0 {
		t.Fatalf("%d requests left pending after full-batch proposal", len(r.pending))
	}
}

// TestEagerProposeCutsIdleLatency is the end-to-end latency regression:
// with a long BatchDelay, sequential requests must still commit in
// milliseconds because an idle primary proposes on arrival. The old
// tick-gated path added up to a full BatchDelay per operation.
func TestEagerProposeCutsIdleLatency(t *testing.T) {
	const delay = 200 * time.Millisecond
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		cfg.BatchDelay = delay
		cfg.ViewChangeTimeout = 2 * time.Second // latency assertions must not race the suspicion timer
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()

	invoke(t, cl, "add 1") // warm up connections and client records
	const ops = 5
	start := time.Now()
	for i := 0; i < ops; i++ {
		invoke(t, cl, "add 1")
	}
	elapsed := time.Since(start)
	// Tick-gated proposals average delay/2 per op (≈500ms for 5 ops);
	// eager proposals finish in a few ms each.
	if elapsed >= ops*delay/2 {
		t.Fatalf("%d ops took %v; proposals are waiting for the %v batch tick", ops, elapsed, delay)
	}
}

// TestVerifyPoolConvergesAndCachesVerdicts runs real load through the
// async verification pool and checks (a) determinism — every replica
// executes the same history and converges on the same state — and (b)
// amortization — the digest-keyed verdict cache absorbs re-verification
// when a request seen at submission reappears inside a batch.
func TestVerifyPoolConvergesAndCachesVerdicts(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newCluster(t, 4, 2, func(cfg *ReplicaConfig) {
		cfg.Metrics = reg
		cfg.VerifyWorkers = 4
		cfg.PipelineDepth = 8
	})
	c.start()
	defer c.stop()

	const perClient = 15
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := c.client(i)
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for j := 0; j < perClient; j++ {
				if _, err := cl.Invoke(ctx, []byte("add 1")); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	total := int64(2 * perClient)
	eventually(t, 5*time.Second, "replica convergence", func() bool {
		for _, app := range c.apps {
			if app.Value() != total {
				return false
			}
		}
		return true
	})
	if hits := reg.Counter("bft.verify_cache_hits").Value(); hits == 0 {
		t.Error("verdict cache never hit: batched requests are re-verified from scratch")
	}
	if off := reg.Counter("bft.verify_offloaded").Value(); off == 0 {
		t.Error("no message was ever offloaded to the verify pool")
	}
}
