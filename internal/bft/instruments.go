package bft

import (
	"strings"

	"lazarus/internal/metrics"
)

// replicaInstruments bundles the registry-backed instruments a replica
// updates on its hot paths. All replicas sharing a registry share these
// instruments, giving a cluster-level view; per-replica attribution goes
// through the event trace (Event.Node). Built from a nil registry the
// instruments still work, they are just unregistered.
type replicaInstruments struct {
	// commitLatencyUS measures propose→execute per consensus instance.
	commitLatencyUS *metrics.Histogram
	// batchOccupancy measures requests per proposed batch.
	batchOccupancy *metrics.Histogram
	// ckptStabilityLag measures how far execution ran past a checkpoint
	// by the time it stabilized (sequence numbers).
	ckptStabilityLag *metrics.Histogram
	// pipelineInflight samples, at each proposal, how many consensus
	// instances are in flight (proposed but not yet executed).
	pipelineInflight *metrics.Histogram

	executedBatches *metrics.Counter
	checkpoints     *metrics.Counter
	viewChanges     *metrics.Counter
	stateTransfers  *metrics.Counter
	reconfigs       *metrics.Counter

	// verifyOps counts ed25519 request verifications actually performed;
	// verifyCacheHits counts verifications skipped via the verdict cache;
	// verifyOffloaded counts messages handed to the verify pool rather
	// than verified inline on the event loop.
	verifyOps       *metrics.Counter
	verifyCacheHits *metrics.Counter
	verifyOffloaded *metrics.Counter

	// progressTimeouts counts unproductive progress-timer firings;
	// timeoutBackoffs counts the ones that raised the adaptive backoff
	// level; retransmitVotes counts stuck instances whose votes the
	// timeout re-broadcast; requestForwards counts pending requests
	// re-forwarded to the primary.
	progressTimeouts *metrics.Counter
	timeoutBackoffs  *metrics.Counter
	retransmitVotes  *metrics.Counter
	requestForwards  *metrics.Counter

	// msgIn counts inbound protocol messages per type, indexed by MsgType.
	msgIn [MsgCatchUp + 1]*metrics.Counter
}

func newReplicaInstruments(reg *metrics.Registry) replicaInstruments {
	ri := replicaInstruments{
		commitLatencyUS:  reg.Histogram("bft.commit_latency_us"),
		batchOccupancy:   reg.Histogram("bft.batch_occupancy"),
		ckptStabilityLag: reg.Histogram("bft.checkpoint_stability_lag"),
		pipelineInflight: reg.Histogram("bft.pipeline_inflight"),
		executedBatches:  reg.Counter("bft.executed_batches"),
		checkpoints:      reg.Counter("bft.checkpoints"),
		viewChanges:      reg.Counter("bft.view_changes"),
		stateTransfers:   reg.Counter("bft.state_transfers"),
		reconfigs:        reg.Counter("bft.reconfigs"),
		verifyOps:        reg.Counter("bft.verify_ops"),
		verifyCacheHits:  reg.Counter("bft.verify_cache_hits"),
		verifyOffloaded:  reg.Counter("bft.verify_offloaded"),
		progressTimeouts: reg.Counter("bft.progress_timeouts"),
		timeoutBackoffs:  reg.Counter("bft.timeout_backoffs"),
		retransmitVotes:  reg.Counter("bft.retransmit_votes"),
		requestForwards:  reg.Counter("bft.request_forwards"),
	}
	for t := MsgRequest; t <= MsgCatchUp; t++ {
		ri.msgIn[t] = reg.Counter("bft.msg_in." + strings.ToLower(t.String()))
	}
	return ri
}
