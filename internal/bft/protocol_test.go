package bft

import (
	"testing"
	"time"

	"lazarus/internal/transport"
)

// sendRaw injects a raw protocol message into the cluster from a spoofing
// endpoint.
func sendRaw(t *testing.T, c *cluster, from transport.NodeID, to transport.NodeID, msg *Message) {
	t.Helper()
	ep, err := c.net.Endpoint(from)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(to, payload); err != nil {
		t.Fatal(err)
	}
}

// TestRejectsPrePrepareFromNonPrimary: a backup replica forging proposals
// must not get anything executed.
func TestRejectsPrePrepareFromNonPrimary(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()

	// Replica 2 (not the view-0 primary) "proposes" a batch carrying a
	// forged request.
	forged := Request{Client: transport.ClientIDBase, Seq: 1, Op: []byte("add 999")}
	batch := &Batch{Requests: []Request{forged}}
	pp := &Message{
		Type:        MsgPrePrepare,
		View:        0,
		SeqNo:       1,
		Batch:       batch,
		BatchDigest: batch.Digest(),
	}
	for _, id := range []transport.NodeID{0, 1, 3} {
		sendRaw(t, c, 2, id, pp)
	}
	time.Sleep(300 * time.Millisecond)
	for id, app := range c.apps {
		if app.Value() != 0 {
			t.Errorf("replica %d executed a forged proposal", id)
		}
	}
}

// TestRejectsBatchWithUnsignedRequest: even the real primary cannot smuggle
// operations no client signed.
func TestRejectsBatchWithUnsignedRequest(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()

	forged := Request{Client: transport.ClientIDBase, Seq: 1, Op: []byte("add 999")}
	batch := &Batch{Requests: []Request{forged}} // no signature
	pp := &Message{
		Type:        MsgPrePrepare,
		View:        0,
		SeqNo:       1,
		Batch:       batch,
		BatchDigest: batch.Digest(),
	}
	// Spoof the primary's node id 0 at the transport level.
	for _, id := range []transport.NodeID{1, 2, 3} {
		sendRaw(t, c, 0, id, pp)
	}
	time.Sleep(300 * time.Millisecond)
	for id, app := range c.apps {
		if app.Value() != 0 {
			t.Errorf("replica %d executed an unsigned request", id)
		}
	}
}

// TestRejectsForgedNewView: a NEW-VIEW without a valid quorum of signed
// view changes must not install.
func TestRejectsForgedNewView(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()

	// Replica 1 is the legitimate primary of view 1 — but this NEW-VIEW
	// carries no view-change quorum.
	nv := &Message{
		Type:    MsgNewView,
		NewView: 1,
	}
	nv.Sign(c.keys[1])
	for _, id := range []transport.NodeID{0, 2, 3} {
		sendRaw(t, c, 1, id, nv)
	}
	time.Sleep(300 * time.Millisecond)
	for id, r := range c.replicas {
		if id == 1 {
			continue
		}
		if r.Stats().CurrentView != 0 {
			t.Errorf("replica %d installed a forged new view", id)
		}
	}
}

// TestRejectsCheckpointWithBadSignature: unsigned checkpoint votes must not
// count toward stability.
func TestRejectsCheckpointWithBadSignature(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()

	cp := &Message{
		Type:        MsgCheckpoint,
		SeqNo:       8,
		StateDigest: Digest{1, 2, 3},
		// no signature
	}
	for from := transport.NodeID(1); from <= 3; from++ {
		sendRaw(t, c, from, 0, cp)
	}
	time.Sleep(200 * time.Millisecond)
	// Replica 0 must not have advanced its stable checkpoint.
	if got := c.replicas[0].Stats().LastExecuted; got != 0 {
		t.Errorf("executed %d without any requests", got)
	}
}

// TestWindowBackpressure: the primary must not run more than WindowSize
// instances ahead of the last stable checkpoint, even under continuous
// load from a client that never reads replies.
func TestWindowBackpressure(t *testing.T) {
	// Checkpoints disabled from stabilizing by silencing two replicas:
	// with 2 of 4 silent there is no ordering quorum at all, so nothing
	// executes; the primary may propose at most WindowSize instances.
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		if cfg.ID >= 2 {
			cfg.Fault = FaultSilent
		}
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 8
	})
	c.start()
	defer c.stop()

	id := transport.ClientIDBase
	ep, err := c.net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		req := Request{Client: id, Seq: uint64(i), Op: []byte("add 1")}
		req.Sign(c.clientPriv[id])
		payload, _ := Encode(&Message{Type: MsgRequest, From: id, Request: &req})
		ep.Send(0, payload)
	}
	time.Sleep(500 * time.Millisecond)
	// No quorum -> nothing executes; the window bounds optimistic work.
	for id, app := range c.apps {
		if app.Value() != 0 {
			t.Errorf("replica %d executed without a quorum", id)
		}
	}
}

// TestStateOfReplicaStatsObservable: stats reflect protocol activity.
func TestReplicaStatsObservable(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	for i := 0; i < 10; i++ {
		invoke(t, cl, "add 1")
	}
	eventually(t, 5*time.Second, "stats", func() bool {
		st := c.replicas[0].Stats()
		return st.Executed >= 10 && st.LastExecuted >= 10 && st.MembershipSize == 4 && st.Checkpoints >= 1
	})
}

// TestLogBoundedByCheckpoints: sustained load must not grow the in-memory
// log without bound — stable checkpoints truncate it.
func TestLogBoundedByCheckpoints(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		cfg.CheckpointInterval = 8
		cfg.WindowSize = 16
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	for i := 0; i < 120; i++ {
		invoke(t, cl, "add 1")
	}
	eventually(t, 5*time.Second, "log truncation", func() bool {
		for _, r := range c.replicas {
			st := r.Stats()
			if st.LogInstances > 40 || st.CheckpointStates > 10 {
				return false
			}
		}
		return true
	})
}
