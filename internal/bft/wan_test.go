package bft

import (
	"context"
	"crypto/ed25519"
	"testing"
	"time"

	"lazarus/internal/netem"
	"lazarus/internal/transport"
)

// wanHarness is a 4-replica cluster over a netem-wrapped transport, for
// the partition-healing matrix.
type wanHarness struct {
	net     *netem.Network
	members []transport.NodeID
	reps    []*Replica
	apps    map[transport.NodeID]*counterApp
	cl      *Client
}

// newWANHarness builds and starts the cluster over the given inner
// transport kind ("memory" or "tcp"), wrapped in a lan-profile netem
// layer (fast links — the partition machinery is what is under test).
func newWANHarness(t *testing.T, kind string) *wanHarness {
	t.Helper()
	const n = 4
	clientID := transport.ClientIDBase
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}

	var inner transport.Network
	switch kind {
	case "memory":
		inner = transport.NewMemory(transport.MemoryConfig{Seed: 1})
	case "tcp":
		ports := freePorts(t, n+1)
		addrs := make(map[transport.NodeID]string, n+1)
		for i, id := range ids {
			addrs[id] = ports[i]
		}
		addrs[clientID] = ports[n]
		tnet, err := transport.NewTCP(transport.TCPConfig{
			Addrs:        addrs,
			Secret:       []byte("wan-partition-test"),
			DialTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
			Seed:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		inner = tnet
	default:
		t.Fatalf("unknown transport kind %q", kind)
	}
	lan, err := netem.ByName("lan")
	if err != nil {
		t.Fatal(err)
	}
	wnet := netem.Wrap(inner, netem.Config{Profile: lan, Seed: 1})

	pubs := make(map[transport.NodeID]ed25519.PublicKey, n)
	privs := make(map[transport.NodeID]ed25519.PrivateKey, n)
	for _, id := range ids {
		pubs[id], privs[id] = keypair(t)
	}
	clientPub, clientPriv := keypair(t)
	ctrlPub, _ := keypair(t)
	membership, err := NewMembership(ids, pubs)
	if err != nil {
		t.Fatal(err)
	}

	h := &wanHarness{net: wnet, members: ids, apps: make(map[transport.NodeID]*counterApp, n)}
	for _, id := range ids {
		app := &counterApp{}
		h.apps[id] = app
		r, err := NewReplica(ReplicaConfig{
			ID:                 id,
			Key:                privs[id],
			Membership:         membership,
			App:                app,
			Net:                wnet,
			ClientKeys:         map[transport.NodeID]ed25519.PublicKey{clientID: clientPub},
			ControllerKey:      ctrlPub,
			BatchDelay:         time.Millisecond,
			CheckpointInterval: 16,
			// Longer than the partition's open window: recovery below is
			// attributable to the heal, not to a view change that raced it.
			ViewChangeTimeout: 1200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		h.reps = append(h.reps, r)
	}
	t.Cleanup(func() {
		for _, r := range h.reps {
			r.Stop()
		}
		wnet.Close()
	})

	cl, err := NewClient(ClientConfig{
		ID:             clientID,
		Key:            clientPriv,
		Replicas:       ids,
		ReplicaKeys:    pubs,
		F:              membership.F(),
		Net:            wnet,
		RequestTimeout: 400 * time.Millisecond,
		MaxAttempts:    12,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	h.cl = cl
	return h
}

func (h *wanHarness) maxView() uint64 {
	var out uint64
	for _, r := range h.reps {
		if v := r.Stats().CurrentView; v > out {
			out = v
		}
	}
	return out
}

// TestPartitionHealingMatrix runs the three partition shapes over both
// transports: each must stall commit progress while open (the quorum,
// or the path to the primary, is broken and the progress timer has not
// yet fired) and recover within a bounded number of views after heal.
func TestPartitionHealingMatrix(t *testing.T) {
	kinds := []struct {
		name  string
		build func(members []transport.NodeID, primary transport.NodeID) *netem.Partition
	}{
		{"symmetric-split", func(m []transport.NodeID, _ transport.NodeID) *netem.Partition {
			return netem.SymmetricSplit(m, len(m)/2)
		}},
		{"asymmetric-primary-mute", func(m []transport.NodeID, p transport.NodeID) *netem.Partition {
			// The primary hears everyone; nobody hears the primary.
			return netem.AsymmetricMute(m, p)
		}},
		{"primary-isolated", func(m []transport.NodeID, p transport.NodeID) *netem.Partition {
			return netem.IsolateNode(m, p)
		}},
	}
	for _, tr := range []string{"memory", "tcp"} {
		for _, kind := range kinds {
			t.Run(tr+"/"+kind.name, func(t *testing.T) {
				h := newWANHarness(t, tr)

				// Warm-up: the cluster commits on the conditioned network.
				if got := decodeInt(invoke(t, h.cl, "add 1")); got != 1 {
					t.Fatalf("warm-up result %d, want 1", got)
				}

				view := h.reps[0].Stats().CurrentView
				primary := transport.NodeID(int(view) % len(h.members))
				p := kind.build(h.members, primary)
				h.net.Apply(p)

				// While open: no quorum can assemble (or the primary cannot
				// reach one), so a short-deadline invoke must fail. The
				// deadline is far below ViewChangeTimeout, so a view change
				// cannot be what breaks the stall.
				ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				_, err := h.cl.Invoke(ctx, []byte("add 2"))
				cancel()
				if err == nil {
					t.Fatalf("%s: commit went through with the partition open", p.Desc)
				}

				h.net.Revert(p)

				// After heal: commits recover...
				if res := invoke(t, h.cl, "add 3"); decodeInt(res) < 4 {
					t.Fatalf("post-heal result %d, want >= 4", decodeInt(res))
				}
				// ...every replica converges on the same state...
				eventually(t, 10*time.Second, "replica convergence after heal", func() bool {
					want := h.apps[h.members[0]].Value()
					for _, app := range h.apps {
						if app.Value() != want {
							return false
						}
					}
					return want >= 4
				})
				// ...and within a bounded number of views: the stall plus
				// recovery spans at most a few progress timeouts, so view
				// escalation must stay small instead of storming.
				if v := h.maxView(); v > 4 {
					t.Fatalf("view escalated to %d during a single partition episode", v)
				}
			})
		}
	}
}
