package bft

import (
	"bytes"
	"crypto/ed25519"
	"testing"

	"lazarus/internal/transport"
)

func attackerForTest(t *testing.T, kind AttackKind) (*Attacker, ed25519.PublicKey) {
	t.Helper()
	pub, priv := keypair(t)
	return NewAttacker(0, priv, kind, 99), pub
}

func mustEncode(t *testing.T, m *Message) []byte {
	t.Helper()
	p, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAttackerEquivocatesByDestination: the equivocating primary sends
// the genuine proposal to even peers and a validly signed conflicting
// one to odd peers — same (view, seq), different batch.
func TestAttackerEquivocatesByDestination(t *testing.T) {
	atk, pub := attackerForTest(t, AttackEquivocate)
	batch := &Batch{Requests: []Request{{Client: transport.ClientIDBase, Seq: 1, Op: []byte("add 1")}}}
	pp := &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 3, Batch: batch, BatchDigest: batch.Digest()}
	pp.Sign(atk.key)
	payload := mustEncode(t, pp)

	even := atk.Intercept(2, payload)
	if len(even) != 1 || !bytes.Equal(even[0], payload) {
		t.Fatal("even-numbered peer did not get the genuine proposal")
	}
	odd := atk.Intercept(1, payload)
	if len(odd) != 1 || bytes.Equal(odd[0], payload) {
		t.Fatal("odd-numbered peer did not get a conflicting proposal")
	}
	forged, err := Decode(odd[0])
	if err != nil {
		t.Fatal(err)
	}
	if forged.View != pp.View || forged.SeqNo != pp.SeqNo {
		t.Fatalf("forged proposal moved to (%d,%d), want same slot (%d,%d)",
			forged.View, forged.SeqNo, pp.View, pp.SeqNo)
	}
	if forged.BatchDigest == pp.BatchDigest {
		t.Fatal("forged proposal carries the same batch")
	}
	if !forged.VerifySig(pub) {
		t.Fatal("forged proposal is not validly signed — it would be trivially rejected")
	}
}

// TestAttackerReplayIsSeededDeterministic: identical seeds and inputs
// yield identical replay schedules, so chaos runs reproduce.
func TestAttackerReplayIsSeededDeterministic(t *testing.T) {
	_, priv := keypair(t)
	run := func() [][]byte {
		atk := NewAttacker(0, priv, AttackReplay, 7)
		var out [][]byte
		for seq := uint64(1); seq <= 20; seq++ {
			m := &Message{Type: MsgPrepare, From: 0, View: 0, SeqNo: seq, BatchDigest: Digest{byte(seq)}}
			m.Sign(priv)
			out = append(out, atk.Intercept(1, mustEncode(t, m))...)
		}
		if atk.Stats().Replayed == 0 {
			t.Fatal("20 intercepted prepares produced no replays")
		}
		return out
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("replay schedules diverged: %d vs %d payloads", len(first), len(second))
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("payload %d diverged between identically seeded attackers", i)
		}
	}
}

// TestAttackerCorruptsSnapshotsValidlySigned: the poisoned snapshot
// differs from the original but still verifies against the compromised
// replica's key — only f+1 matching-copy counting can keep it out.
func TestAttackerCorruptsSnapshotsValidlySigned(t *testing.T) {
	atk, pub := attackerForTest(t, AttackCorruptState)
	reply := &Message{Type: MsgStateReply, From: 0, SnapSeqNo: 16, Snapshot: bytes.Repeat([]byte("state"), 20)}
	reply.Sign(atk.key)

	out := atk.Intercept(1, mustEncode(t, reply))
	if len(out) != 1 {
		t.Fatalf("got %d payloads, want 1", len(out))
	}
	forged, err := Decode(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(forged.Snapshot, reply.Snapshot) {
		t.Fatal("snapshot was not corrupted")
	}
	if !forged.VerifySig(pub) {
		t.Fatal("corrupted snapshot is not validly signed")
	}
}

// TestAttackerCensorsPrimaryTraffic: pre-prepares and replies vanish,
// everything else passes — the stall that must cost the attacker its
// primaryship.
func TestAttackerCensorsPrimaryTraffic(t *testing.T) {
	atk, _ := attackerForTest(t, AttackCensor)
	pp := &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1, Batch: &Batch{}}
	pp.BatchDigest = pp.Batch.Digest()
	pp.Sign(atk.key)
	if out := atk.Intercept(1, mustEncode(t, pp)); len(out) != 0 {
		t.Fatalf("censored pre-prepare was delivered (%d payloads)", len(out))
	}
	vc := &Message{Type: MsgViewChange, From: 0, NewView: 1}
	vc.Sign(atk.key)
	if out := atk.Intercept(1, mustEncode(t, vc)); len(out) != 1 {
		t.Fatal("non-censored traffic did not pass through")
	}
	if atk.Stats().Censored != 1 {
		t.Fatalf("censored count %d, want 1", atk.Stats().Censored)
	}
}
