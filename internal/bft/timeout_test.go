package bft

import (
	"testing"
	"time"
)

// TestTimeoutCtlDisabledIsStatic pins the baseline: a disabled
// controller is the pre-adaptive replica, returning the configured
// constant no matter what it observes.
func TestTimeoutCtlDisabledIsStatic(t *testing.T) {
	tc := newTimeoutCtl(false, 300*time.Millisecond, 75*time.Millisecond, 2400*time.Millisecond)
	tc.observe(50 * time.Millisecond)
	tc.onTimeout()
	tc.onTimeout()
	if got := tc.timeout(); got != 300*time.Millisecond {
		t.Fatalf("disabled controller returned %v, want the 300ms constant", got)
	}
	tc.progress()
	if got := tc.timeout(); got != 300*time.Millisecond {
		t.Fatalf("disabled controller drifted to %v", got)
	}
}

func TestTimeoutCtlTracksRTT(t *testing.T) {
	tc := newTimeoutCtl(true, 300*time.Millisecond, 10*time.Millisecond, 5*time.Second)
	if got := tc.timeout(); got != 300*time.Millisecond {
		t.Fatalf("unsampled controller returned %v, want the base", got)
	}
	// A steady 2ms network should pull the timeout far below the 300ms
	// static base (fast fault detection on fast links)...
	for i := 0; i < 50; i++ {
		tc.observe(2 * time.Millisecond)
	}
	fast := tc.timeout()
	if fast >= 300*time.Millisecond {
		t.Fatalf("fast network timeout %v did not drop below the static base", fast)
	}
	if fast < 10*time.Millisecond {
		t.Fatalf("timeout %v violated the min clamp", fast)
	}
	// ...and a steady 100ms network should push it above it (no spurious
	// view changes on slow links).
	for i := 0; i < 50; i++ {
		tc.observe(100 * time.Millisecond)
	}
	slow := tc.timeout()
	if slow <= 300*time.Millisecond {
		t.Fatalf("slow network timeout %v did not rise above the static base", slow)
	}
	if slow > 5*time.Second {
		t.Fatalf("timeout %v violated the max clamp", slow)
	}
}

func TestTimeoutCtlBackoffAndDecay(t *testing.T) {
	tc := newTimeoutCtl(true, 300*time.Millisecond, 10*time.Millisecond, 60*time.Second)
	for i := 0; i < 20; i++ {
		tc.observe(10 * time.Millisecond)
	}
	base := tc.timeout()
	if !tc.onTimeout() {
		t.Fatal("first onTimeout did not raise the backoff")
	}
	if got := tc.timeout(); got != 2*base {
		t.Fatalf("one timeout: %v, want doubled %v", got, 2*base)
	}
	tc.onTimeout()
	if got := tc.timeout(); got != 4*base {
		t.Fatalf("two timeouts: %v, want quadrupled %v", got, 4*base)
	}
	tc.progress()
	if got := tc.timeout(); got != 2*base {
		t.Fatalf("after one progress decay: %v, want %v", got, 2*base)
	}
	tc.progress()
	tc.progress() // extra decay at level zero must not underflow
	if got := tc.timeout(); got != base {
		t.Fatalf("fully decayed: %v, want %v", got, base)
	}
}

func TestTimeoutCtlBackoffCapped(t *testing.T) {
	tc := newTimeoutCtl(true, 300*time.Millisecond, 10*time.Millisecond, 2*time.Second)
	for i := 0; i < 20; i++ {
		tc.observe(50 * time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		tc.onTimeout()
	}
	if got := tc.timeout(); got != 2*time.Second {
		t.Fatalf("runaway backoff returned %v, want the 2s max clamp", got)
	}
	if tc.backoff > timeoutBackoffCap {
		t.Fatalf("backoff level %d exceeded cap %d", tc.backoff, timeoutBackoffCap)
	}
}
