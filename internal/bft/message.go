// Package bft is a PBFT-style Byzantine fault-tolerant state machine
// replication library in the mold of BFT-SMaRt (paper §5.2): three-phase
// ordering (pre-prepare / prepare / commit) with request batching,
// checkpointing with log truncation, state transfer for new or lagging
// replicas, view change for primary failure, and the replica-set
// reconfiguration protocol Lazarus uses to add a fresh replica before
// removing a quarantined one. n = 3f+1 replicas tolerate f Byzantine
// faults; clients accept a result vouched by f+1 matching replies.
package bft

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"sync"

	"lazarus/internal/transport"
)

// MsgType discriminates protocol messages.
type MsgType int

// Protocol message types.
const (
	MsgRequest MsgType = iota + 1
	MsgPrePrepare
	MsgPrepare
	MsgCommit
	MsgReply
	MsgCheckpoint
	MsgViewChange
	MsgNewView
	MsgStateRequest
	MsgStateReply
	MsgCatchUp
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "REQUEST"
	case MsgPrePrepare:
		return "PRE-PREPARE"
	case MsgPrepare:
		return "PREPARE"
	case MsgCommit:
		return "COMMIT"
	case MsgReply:
		return "REPLY"
	case MsgCheckpoint:
		return "CHECKPOINT"
	case MsgViewChange:
		return "VIEW-CHANGE"
	case MsgNewView:
		return "NEW-VIEW"
	case MsgStateRequest:
		return "STATE-REQUEST"
	case MsgStateReply:
		return "STATE-REPLY"
	case MsgCatchUp:
		return "CATCH-UP"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Digest is a SHA-256 content hash.
type Digest [sha256.Size]byte

// IsZero reports whether the digest is unset.
func (d Digest) IsZero() bool { return d == Digest{} }

// String renders a short prefix for logs.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

// Request is a client operation to be ordered.
type Request struct {
	// Client identifies the submitting client.
	Client transport.NodeID
	// Seq is the client-local sequence number (monotone per client);
	// replicas use it to deduplicate retransmissions.
	Seq uint64
	// Op is the opaque service operation.
	Op []byte
	// Sig authenticates the request with the client's key.
	Sig []byte

	// digest caches Digest(). Unexported, so gob never ships it and a
	// decoded request recomputes on first use. Requests are immutable
	// once built, and each replica's copies live on its single event-loop
	// goroutine, so the cache needs no synchronization.
	digest    Digest
	digestSet bool
}

// digestInput returns the byte string covered by the client signature.
func (r *Request) digestInput() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "req|%d|%d|", r.Client, r.Seq)
	buf.Write(r.Op)
	return buf.Bytes()
}

// Digest hashes the request (excluding the signature). The hash is
// computed once and cached: execution and pending-queue compaction call
// this O(pending) times per commit.
func (r *Request) Digest() Digest {
	if !r.digestSet {
		r.digest = sha256.Sum256(r.digestInput())
		r.digestSet = true
	}
	return r.digest
}

// Sign signs the request with the client's private key.
func (r *Request) Sign(key ed25519.PrivateKey) {
	r.Sig = ed25519.Sign(key, r.digestInput())
}

// Verify checks the client signature.
func (r *Request) Verify(pub ed25519.PublicKey) bool {
	return len(r.Sig) == ed25519.SignatureSize && ed25519.Verify(pub, r.digestInput(), r.Sig)
}

// Batch is an ordered group of requests proposed in one consensus
// instance.
type Batch struct {
	Requests []Request

	// digest caches Digest() under the same single-goroutine, immutable-
	// once-built discipline as Request.digest.
	digest    Digest
	digestSet bool
}

// Digest hashes the batch contents. Cached: the agreement phases and
// view-change validation re-digest the same batch repeatedly.
func (b *Batch) Digest() Digest {
	if b.digestSet {
		return b.digest
	}
	h := sha256.New()
	for i := range b.Requests {
		d := b.Requests[i].Digest()
		h.Write(d[:])
	}
	h.Sum(b.digest[:0])
	b.digestSet = true
	return b.digest
}

// Message is the wire-level protocol message; exactly the fields for its
// Type are populated.
type Message struct {
	Type MsgType
	// From is the sender's node id (authenticated by the transport MAC
	// and, for signed messages, the signature).
	From transport.NodeID
	// View and SeqNo locate the consensus instance.
	View, SeqNo uint64
	// Epoch is the membership-configuration number the sender operates
	// in; messages from other epochs are handled by reconfiguration.
	Epoch uint64

	// Request carries MsgRequest.
	Request *Request
	// Batch carries the proposed batch in MsgPrePrepare and the
	// re-proposed batches in MsgNewView.
	Batch *Batch
	// BatchDigest is the agreed digest in the agreement phases.
	BatchDigest Digest

	// Reply fields.
	ReplySeq    uint64 // echoes Request.Seq
	Result      []byte
	ReplyEpoch  uint64
	ReplyClient transport.NodeID

	// Checkpoint fields.
	StateDigest Digest

	// ViewChange fields. Prepared also carries the single certificate of
	// a MsgCatchUp response (see onCatchUp).
	NewView    uint64
	LastStable uint64
	Prepared   []PreparedProof
	// NewViewMsgs carries the 2f+1 view-change messages justifying a
	// NEW-VIEW, and PrePrepares the re-proposals.
	NewViewMsgs []Message
	PrePrepares []Message

	// State transfer fields.
	Snapshot  []byte
	SnapSeqNo uint64
	SnapView  uint64

	// Sig authenticates signed message types (view change, new view,
	// checkpoint, state reply).
	Sig []byte

	// authDone/authOK carry request-authentication verdicts computed by
	// the verify pool (see verify.go): authOK[i] is the verdict for the
	// i'th request the message carries. Unexported so gob never ships
	// them — verdicts are local trust, not wire state.
	authDone bool
	authOK   []bool

	// repSigDone/repSigOK carry the replica-signature verdict for
	// pre-prepares and prepares, computed against repSigKey (captured on
	// the event loop, where membership is owned, before pool offload).
	// Unexported for the same reason as authDone.
	repSigDone bool
	repSigOK   bool
	repSigKey  ed25519.PublicKey
}

// PreparedProof records that a batch prepared at (view, seq) — carried in
// view changes so the new primary re-proposes it. The certificate fields
// (PrePrepare plus 2f matching Prepares, all signed) let any replica
// validate the claim without trusting the view-change sender: a Byzantine
// replica can otherwise fabricate a high-view proof and steer the new
// primary into re-proposing a batch that never prepared.
type PreparedProof struct {
	View, SeqNo uint64
	BatchDigest Digest
	Batch       *Batch
	// PrePrepare is the primary's signed proposal for (View, SeqNo).
	PrePrepare *Message
	// Prepares are signed prepare votes from distinct non-primary
	// replicas matching BatchDigest; 2f of them plus the pre-prepare
	// form the prepared certificate.
	Prepares []Message
}

// signedInput returns the byte string covered by replica signatures. It
// covers the semantic content of the signed message types.
func (m *Message) signedInput() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "msg|%d|%d|%d|%d|%d|", m.Type, m.From, m.View, m.SeqNo, m.Epoch)
	buf.Write(m.BatchDigest[:])
	buf.Write(m.StateDigest[:])
	fmt.Fprintf(&buf, "|%d|%d|", m.NewView, m.LastStable)
	for _, p := range m.Prepared {
		fmt.Fprintf(&buf, "p|%d|%d|", p.View, p.SeqNo)
		buf.Write(p.BatchDigest[:])
		// Bind the certificate messages too (their signatures cover their
		// own semantic content, and the batch is bound via BatchDigest), so
		// a relayer cannot strip or swap certificates without invalidating
		// the view-change signature.
		if p.PrePrepare != nil {
			fmt.Fprintf(&buf, "pp|%d|", p.PrePrepare.From)
			buf.Write(p.PrePrepare.Sig)
		}
		for i := range p.Prepares {
			fmt.Fprintf(&buf, "pr|%d|", p.Prepares[i].From)
			buf.Write(p.Prepares[i].Sig)
		}
	}
	fmt.Fprintf(&buf, "|%d|%d|", m.SnapSeqNo, m.SnapView)
	if len(m.Snapshot) > 0 {
		sum := sha256.Sum256(m.Snapshot)
		buf.Write(sum[:])
	}
	// Reply fields: without these, a signed MsgReply would not bind the
	// result, and any member could forge votes for arbitrary results.
	fmt.Fprintf(&buf, "|r|%d|%d|%d|", m.ReplySeq, m.ReplyEpoch, m.ReplyClient)
	buf.Write(m.Result)
	return buf.Bytes()
}

// Sign signs the message with the replica's key.
func (m *Message) Sign(key ed25519.PrivateKey) {
	m.Sig = ed25519.Sign(key, m.signedInput())
}

// VerifySig checks the replica signature.
func (m *Message) VerifySig(pub ed25519.PublicKey) bool {
	return len(m.Sig) == ed25519.SignatureSize && ed25519.Verify(pub, m.signedInput(), m.Sig)
}

// encodeBufs recycles the scratch buffers gob encoding grows; a steady
// workload otherwise re-grows a fresh multi-KB buffer per message.
var encodeBufs = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// Encode serializes the message for the transport: the binary fast
// codec for the ordering hot path, gob (behind a format tag) for the
// cold message types. See codec.go.
func Encode(m *Message) ([]byte, error) {
	if out, ok := encodeFast(nil, m); ok {
		return out, nil
	}
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteByte(wireGob)
	if err := gob.NewEncoder(buf).Encode(m); err != nil {
		encodeBufs.Put(buf)
		return nil, fmt.Errorf("bft: encoding %v: %w", m.Type, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encodeBufs.Put(buf)
	return out, nil
}

// Decode deserializes a message.
func Decode(payload []byte) (*Message, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("bft: decoding message: empty payload")
	}
	switch payload[0] {
	case wireFast:
		return decodeFast(payload[1:])
	case wireGob:
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&m); err != nil {
			return nil, fmt.Errorf("bft: decoding message: %w", err)
		}
		return &m, nil
	default:
		return nil, fmt.Errorf("bft: decoding message: unknown format tag %#x", payload[0])
	}
}
