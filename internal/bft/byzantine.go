package bft

// Byzantine attacker replicas for the chaos harness.
//
// An Attacker models a *compromised* replica: the adversary holds the
// replica's real signing key and controls its network layer, so every
// forged message it emits carries a valid signature from a current
// group member. Nothing here is detectable by signature checking alone —
// that is the point. Safety against these attacks must come from quorum
// intersection and per-message protocol validation (digest binding,
// view/epoch freshness, certificate checks, f+1 snapshot vouching), and
// the chaos harness asserts exactly that while attacks run.
//
// The attacker is installed as a transport.SendInterceptor on the
// compromised replica's endpoint: it sees every outgoing payload and may
// pass it through, suppress it, rewrite it (re-signing with the stolen
// key), or attach extra forged payloads. The replica's own state stays
// honest — compromise lives entirely in the send path, which keeps the
// attack surface composable with swaps (a cleaned replica is simply one
// whose interceptor was removed).
//
// Determinism: every random choice draws from the attacker's own seeded
// rng under its mutex, and nothing here reads the wall clock or spawns
// goroutines, so a seeded chaos schedule replays.

import (
	"crypto/ed25519"
	"crypto/sha256"
	mrand "math/rand"
	"sync"

	"lazarus/internal/transport"
)

// AttackKind selects the behavior of a compromised replica.
type AttackKind int

const (
	// AttackEquivocate: conflicting proposals and votes. As primary the
	// replica proposes different batches for the same (view, seq) to
	// different peers; as backup it splits its prepare/commit digests and
	// forges its client replies. Honest replicas must never execute
	// diverging commands, and honest clients must never accept the forged
	// replies.
	AttackEquivocate AttackKind = iota
	// AttackReplay: the replica records its own signed votes and re-sends
	// them later, when their views, sequence numbers and epochs are
	// stale. Freshness checks must keep the replays out of every tally.
	AttackReplay
	// AttackCorruptState: the replica vouches corrupted state — snapshot
	// bytes truncated or garbled (but validly signed), checkpoint digests
	// flipped. f+1 matching-copy counting and restore validation must
	// keep the poison out.
	AttackCorruptState
	// AttackCensor: the malicious-primary attack. The replica suppresses
	// its pre-prepares and client replies, stalling the view it leads.
	// The view-change protocol must demote it and resume progress.
	AttackCensor
)

func (k AttackKind) String() string {
	switch k {
	case AttackEquivocate:
		return "equivocate"
	case AttackReplay:
		return "replay"
	case AttackCorruptState:
		return "corrupt-state"
	case AttackCensor:
		return "censor"
	}
	return "unknown"
}

// AttackerStats counts what an attacker actually did, so chaos reports
// can prove an attack was exercised rather than idling.
type AttackerStats struct {
	Intercepted int // payloads seen
	Equivocated int // conflicting variants emitted
	Replayed    int // stale recordings re-sent
	Corrupted   int // state messages poisoned
	Censored    int // payloads suppressed
}

// attackerHistoryCap bounds the replay recording.
const attackerHistoryCap = 128

// Attacker turns one replica's outgoing traffic Byzantine. Install with
// Memory.Intercept(id, a.Intercept); remove by installing nil.
type Attacker struct {
	id   transport.NodeID
	key  ed25519.PrivateKey
	kind AttackKind

	mu      sync.Mutex
	rng     *mrand.Rand
	history [][]byte
	stats   AttackerStats
}

// NewAttacker arms an attacker with a compromised replica's identity and
// a seed for its (deterministic) behavior.
func NewAttacker(id transport.NodeID, key ed25519.PrivateKey, kind AttackKind, seed int64) *Attacker {
	return &Attacker{id: id, key: key, kind: kind, rng: mrand.New(mrand.NewSource(seed))}
}

// Kind returns the attack behavior.
func (a *Attacker) Kind() AttackKind { return a.kind }

// Stats snapshots the attack counters.
func (a *Attacker) Stats() AttackerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Intercept implements transport.SendInterceptor. Payloads that do not
// decode as protocol messages pass through untouched.
func (a *Attacker) Intercept(to transport.NodeID, payload []byte) [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Intercepted++
	msg, err := Decode(payload)
	if err != nil {
		return [][]byte{payload}
	}
	switch a.kind {
	case AttackEquivocate:
		return a.equivocate(to, msg, payload)
	case AttackReplay:
		return a.replay(msg, payload)
	case AttackCorruptState:
		return a.corruptState(msg, payload)
	case AttackCensor:
		return a.censor(msg, payload)
	}
	return [][]byte{payload}
}

// forge re-signs a mutated message with the compromised key and encodes
// it, falling back to the original payload if encoding fails.
func (a *Attacker) forge(m *Message, fallback []byte) [][]byte {
	m.From = a.id
	m.Sig = nil
	m.Sign(a.key)
	p, err := Encode(m)
	if err != nil {
		return [][]byte{fallback}
	}
	return [][]byte{p}
}

// equivDigest derives a deterministic conflicting digest.
func equivDigest(d Digest) Digest {
	return sha256.Sum256(d[:])
}

func (a *Attacker) equivocate(to transport.NodeID, msg *Message, payload []byte) [][]byte {
	switch msg.Type {
	case MsgPrePrepare:
		// Split-brain proposal: even-numbered peers get the real batch,
		// odd-numbered peers a validly signed empty batch for the same
		// (view, seq).
		if to%2 == 0 {
			return [][]byte{payload}
		}
		forged := *msg
		forged.Batch = &Batch{}
		forged.BatchDigest = forged.Batch.Digest()
		a.stats.Equivocated++
		return a.forge(&forged, payload)
	case MsgPrepare:
		if to%2 == 0 {
			return [][]byte{payload}
		}
		forged := *msg
		forged.BatchDigest = equivDigest(forged.BatchDigest)
		a.stats.Equivocated++
		return a.forge(&forged, payload)
	case MsgCommit:
		// Commits are deliberately unsigned (they never enter
		// certificates); a split digest here attacks the digest-keyed
		// commit tally directly.
		if to%2 == 0 {
			return [][]byte{payload}
		}
		forged := *msg
		forged.BatchDigest = equivDigest(forged.BatchDigest)
		if p, err := Encode(&forged); err == nil {
			a.stats.Equivocated++
			return [][]byte{p}
		}
	case MsgReply:
		// Forged execution result, validly signed: a client counting
		// f+1 matching replies must never accept it.
		forged := *msg
		forged.Result = append([]byte("forged:"), forged.Result...)
		a.stats.Equivocated++
		return a.forge(&forged, payload)
	}
	return [][]byte{payload}
}

func (a *Attacker) replay(msg *Message, payload []byte) [][]byte {
	out := [][]byte{payload}
	switch msg.Type {
	case MsgPrepare, MsgCommit, MsgCheckpoint, MsgViewChange:
		if len(a.history) < attackerHistoryCap {
			a.history = append(a.history, append([]byte(nil), payload...))
		}
	}
	// Re-send a recorded vote alongside roughly every third message. By
	// the time it lands its view, sequence number or epoch is stale, and
	// no tally may count it.
	if len(a.history) > 0 && a.rng.Intn(3) == 0 {
		a.stats.Replayed++
		out = append(out, a.history[a.rng.Intn(len(a.history))])
	}
	return out
}

func (a *Attacker) corruptState(msg *Message, payload []byte) [][]byte {
	switch msg.Type {
	case MsgStateReply:
		forged := *msg
		snap := append([]byte(nil), forged.Snapshot...)
		if len(snap) > 0 {
			if a.rng.Intn(2) == 0 {
				snap = snap[:len(snap)/2] // truncated snapshot
			} else {
				for i := 0; i < len(snap); i += 7 {
					snap[i] ^= 0x5a // garbled snapshot
				}
			}
		}
		forged.Snapshot = snap
		a.stats.Corrupted++
		return a.forge(&forged, payload)
	case MsgCheckpoint:
		forged := *msg
		forged.StateDigest = equivDigest(forged.StateDigest)
		a.stats.Corrupted++
		return a.forge(&forged, payload)
	}
	return [][]byte{payload}
}

func (a *Attacker) censor(msg *Message, payload []byte) [][]byte {
	switch msg.Type {
	case MsgPrePrepare, MsgReply:
		a.stats.Censored++
		return nil
	}
	return [][]byte{payload}
}
