package bft

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Membership-change errors, exposed as sentinels so callers (and the
// reconfiguration reply below) can classify outcomes without scraping
// error strings.
var (
	// ErrAlreadyMember: the ADD subject is already in the membership.
	ErrAlreadyMember = errors.New("bft: already a member")
	// ErrNotMember: the REMOVE subject is not in the membership.
	ErrNotMember = errors.New("bft: not a member")
	// ErrGroupTooSmall: the REMOVE would shrink the group below the
	// four-replica minimum (n = 3f+1 with f >= 1).
	ErrGroupTooSmall = errors.New("bft: group at minimum size")
)

// ReconfigStatus classifies how an ordered membership change ended.
type ReconfigStatus int

// Statuses.
const (
	// ReconfigApplied: the membership changed; Epoch carries the new epoch.
	ReconfigApplied ReconfigStatus = iota + 1
	// ReconfigAlreadyMember: an ADD of a current member (a retried ADD
	// whose earlier attempt landed).
	ReconfigAlreadyMember
	// ReconfigNotMember: a REMOVE of a non-member (a retried REMOVE whose
	// earlier attempt landed).
	ReconfigNotMember
	// ReconfigTooSmall: a REMOVE that would shrink the group below the
	// minimum of four replicas.
	ReconfigTooSmall
	// ReconfigInvalid: the operation was malformed (bad key, ...).
	ReconfigInvalid
)

// String names the status.
func (s ReconfigStatus) String() string {
	switch s {
	case ReconfigApplied:
		return "applied"
	case ReconfigAlreadyMember:
		return "already-member"
	case ReconfigNotMember:
		return "not-member"
	case ReconfigTooSmall:
		return "too-small"
	case ReconfigInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("ReconfigStatus(%d)", int(s))
	}
}

// ReconfigResult is the structured reply of an ordered reconfiguration.
// It replaces the free-form "reconfig ok: epoch %d" log string the swap
// engine used to scrape with fmt.Sscanf (and whose parse error it
// ignored): the result is now typed at the source, and DecodeReconfigResult
// rejects malformed replies instead of silently yielding epoch 0.
type ReconfigResult struct {
	// Status classifies the outcome.
	Status ReconfigStatus `json:"status"`
	// Epoch is the membership epoch after an applied change (zero
	// otherwise).
	Epoch uint64 `json:"epoch,omitempty"`
	// Detail carries the human-readable cause for non-applied outcomes.
	Detail string `json:"detail,omitempty"`
}

// reconfigResultPrefix tags reconfiguration replies so a truncated or
// foreign reply cannot be mistaken for one.
var reconfigResultPrefix = []byte("\x00BFT-RECONFIG-RESULT\x00")

// Encode serializes the result as the reply payload: a tagged,
// deterministic JSON document (identical on every correct replica, so
// reply vote counting matches).
func (r ReconfigResult) Encode() []byte {
	body, err := json.Marshal(r)
	if err != nil {
		// A flat struct of scalars cannot fail to marshal; keep the
		// deterministic fallback anyway.
		body = []byte(fmt.Sprintf(`{"status":%d}`, ReconfigInvalid))
	}
	return append(append([]byte(nil), reconfigResultPrefix...), body...)
}

// String renders the result for logs, preserving the old human-readable
// shape.
func (r ReconfigResult) String() string {
	if r.Status == ReconfigApplied {
		return fmt.Sprintf("reconfig ok: epoch %d", r.Epoch)
	}
	return fmt.Sprintf("reconfig %s: %s", r.Status, r.Detail)
}

// DecodeReconfigResult parses a reconfiguration reply. Unlike the old
// Sscanf scrape, a malformed reply is an error, never a zero-valued
// success.
func DecodeReconfigResult(reply []byte) (ReconfigResult, error) {
	if !bytes.HasPrefix(reply, reconfigResultPrefix) {
		return ReconfigResult{}, fmt.Errorf("bft: reply %q is not a reconfiguration result", reply)
	}
	var r ReconfigResult
	if err := json.Unmarshal(reply[len(reconfigResultPrefix):], &r); err != nil {
		return ReconfigResult{}, fmt.Errorf("bft: malformed reconfiguration result: %w", err)
	}
	switch r.Status {
	case ReconfigApplied, ReconfigAlreadyMember, ReconfigNotMember, ReconfigTooSmall, ReconfigInvalid:
	default:
		return ReconfigResult{}, fmt.Errorf("bft: reconfiguration result has unknown status %d", r.Status)
	}
	if r.Status == ReconfigApplied && r.Epoch == 0 {
		return ReconfigResult{}, fmt.Errorf("bft: applied reconfiguration result carries no epoch")
	}
	return r, nil
}

// classifyReconfigErr maps a membership-change error to its status.
func classifyReconfigErr(err error) ReconfigStatus {
	switch {
	case errors.Is(err, ErrAlreadyMember):
		return ReconfigAlreadyMember
	case errors.Is(err, ErrNotMember):
		return ReconfigNotMember
	case errors.Is(err, ErrGroupTooSmall):
		return ReconfigTooSmall
	default:
		return ReconfigInvalid
	}
}
