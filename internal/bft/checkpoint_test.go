package bft

import (
	"testing"

	"lazarus/internal/transport"
)

// TestCheckpointSpamBounded feeds a replica a flood of signed checkpoint
// votes from one faulty member at ever-growing future sequence numbers.
// Before the high-water bound, every distinct SeqNo allocated a tracking
// entry in r.ckpts, so a single member could grow it without limit; now
// beyond-window claims fold into the per-member ckptAhead map instead.
// The replica is never started: onCheckpoint is called directly on the
// (otherwise idle) event-loop state, which is the single-goroutine
// discipline the handler assumes.
func TestCheckpointSpamBounded(t *testing.T) {
	c := newCluster(t, 4, 0, nil)
	defer c.net.Close()
	r := c.replicas[0]

	vote := func(from transport.NodeID, seq uint64) {
		msg := &Message{
			Type:        MsgCheckpoint,
			From:        from,
			SeqNo:       seq,
			Epoch:       0,
			StateDigest: Digest{1},
		}
		msg.Sign(c.keys[from])
		r.onCheckpoint(msg)
	}

	interval := r.cfg.CheckpointInterval
	window := r.cfg.WindowSize
	for i := uint64(1); i <= 1000; i++ {
		vote(1, window+i*interval)
	}
	// The window holds at most WindowSize/CheckpointInterval checkpoint
	// points (plus reconfig checkpoints at odd offsets, none here).
	maxEntries := int(window/interval) + 1
	if got := len(r.ckpts); got > maxEntries {
		t.Errorf("ckpts grew to %d entries under spam, want <= %d", got, maxEntries)
	}
	if got := len(r.ckptAhead); got > 1 {
		t.Errorf("ckptAhead holds %d entries for one spamming member", got)
	}

	// Legitimate in-window votes are still tracked.
	vote(1, interval)
	if cs, ok := r.ckpts[interval]; !ok || len(cs.votes) != 1 {
		t.Error("in-window checkpoint vote was not recorded")
	}

	// A second member claiming beyond-window state makes f+1 distinct
	// claims: the replica concludes it fell behind and resets the claim
	// map (requesting a state transfer as recovery).
	vote(2, window+5*interval)
	if got := len(r.ckptAhead); got != 0 {
		t.Errorf("ckptAhead not reset after f+1 beyond-window claims (len %d)", got)
	}
}

// TestCheckStableTieBelowQuorum pins the tally hardening: two digests
// splitting the votes evenly below quorum must never stabilize the
// checkpoint, regardless of the order the tally map is iterated in.
// (n=4 needs 2f+1=3 matching votes; a 2/2 split has no winner.)
func TestCheckStableTieBelowQuorum(t *testing.T) {
	// A handful of iterations crosses several randomized map orders.
	for i := 0; i < 8; i++ {
		c := newCluster(t, 4, 0, nil)
		r := c.replicas[0]
		seq := r.cfg.CheckpointInterval

		cs := r.ckpt(seq)
		cs.votes[0] = Digest{1}
		cs.votes[1] = Digest{1}
		cs.votes[2] = Digest{2}
		cs.votes[3] = Digest{2}
		r.checkStable(seq)

		if cs.stable {
			t.Fatalf("iteration %d: checkpoint stabilized on a 2/2 digest split below quorum", i)
		}
		if r.lowWater != 0 {
			t.Fatalf("iteration %d: lowWater advanced to %d on an unstable checkpoint", i, r.lowWater)
		}
		c.net.Close()
	}
}

// TestCheckStableQuorumWithDissent checks that a quorum of matching
// votes stabilizes the checkpoint and advances the watermark even with
// a dissenting vote present, and that the dissenting digest never wins.
func TestCheckStableQuorumWithDissent(t *testing.T) {
	c := newCluster(t, 4, 0, nil)
	defer c.net.Close()
	r := c.replicas[0]
	seq := r.cfg.CheckpointInterval

	cs := r.ckpt(seq)
	cs.snapshot = []byte("snap")
	cs.digest = Digest{2}
	cs.votes[0] = Digest{2}
	cs.votes[1] = Digest{2}
	cs.votes[2] = Digest{2}
	cs.votes[3] = Digest{1}
	r.checkStable(seq)

	if !cs.stable {
		t.Fatal("checkpoint with 3/4 matching votes (quorum) did not stabilize")
	}
	if r.lowWater != seq {
		t.Fatalf("lowWater = %d, want %d after stabilizing", r.lowWater, seq)
	}
}

// TestAdvanceLowWaterGC checks that installing a stable checkpoint
// garbage-collects every checkpoint entry at or below it, including the
// stable entry itself (votes at or below lowWater are rejected on
// arrival, so the entry can never be consulted again).
func TestAdvanceLowWaterGC(t *testing.T) {
	c := newCluster(t, 4, 0, nil)
	defer c.net.Close()
	r := c.replicas[0]

	interval := r.cfg.CheckpointInterval
	for _, seq := range []uint64{interval, 2 * interval} {
		cs := r.ckpt(seq)
		cs.votes[0] = Digest{1}
	}
	r.ckptAhead[2] = 10 * interval
	r.advanceLowWater(2*interval, []byte("snap"))

	if len(r.ckpts) != 0 {
		t.Errorf("ckpts holds %d entries after advancing past them", len(r.ckpts))
	}
	if len(r.ckptAhead) != 0 {
		t.Error("ckptAhead survived a watermark advance")
	}
	if r.lowWater != 2*interval {
		t.Errorf("lowWater = %d, want %d", r.lowWater, 2*interval)
	}
}
