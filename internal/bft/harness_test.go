package bft

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"
	"time"

	"lazarus/internal/transport"
)

// counterApp is a deterministic test service: "add <n>" adds to a
// counter and returns the new value; "get" reads it; anything else
// echoes.
type counterApp struct {
	mu    sync.Mutex
	value int64
	ops   int
}

func (a *counterApp) Execute(op []byte) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ops++
	switch {
	case bytes.HasPrefix(op, []byte("add ")):
		var n int64
		fmt.Sscanf(string(op[4:]), "%d", &n)
		a.value += n
		return encodeInt(a.value)
	case bytes.Equal(op, []byte("get")):
		return encodeInt(a.value)
	default:
		return append([]byte("echo:"), op...)
	}
}

func (a *counterApp) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a.value); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (a *counterApp) Restore(snapshot []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&a.value)
}

func (a *counterApp) Value() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.value
}

func encodeInt(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decodeInt(b []byte) int64 {
	if len(b) != 8 {
		return -1
	}
	return int64(binary.BigEndian.Uint64(b))
}

// cluster is a complete in-memory BFT deployment for tests.
type cluster struct {
	t          *testing.T
	net        *transport.Memory
	membership *Membership
	replicas   map[transport.NodeID]*Replica
	apps       map[transport.NodeID]*counterApp
	keys       map[transport.NodeID]ed25519.PrivateKey
	pubs       map[transport.NodeID]ed25519.PublicKey
	clientKeys map[transport.NodeID]ed25519.PublicKey
	clientPriv map[transport.NodeID]ed25519.PrivateKey
	ctrlPriv   ed25519.PrivateKey
	ctrlPub    ed25519.PublicKey
	cfgTweak   func(*ReplicaConfig)
}

func keypair(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

// newCluster builds (but does not start) n replicas with ids 0..n-1 and
// nClients clients at ClientIDBase...
func newCluster(t *testing.T, n, nClients int, tweak func(*ReplicaConfig)) *cluster {
	t.Helper()
	c := &cluster{
		t:          t,
		net:        transport.NewMemory(transport.MemoryConfig{Seed: 1}),
		replicas:   make(map[transport.NodeID]*Replica),
		apps:       make(map[transport.NodeID]*counterApp),
		keys:       make(map[transport.NodeID]ed25519.PrivateKey),
		pubs:       make(map[transport.NodeID]ed25519.PublicKey),
		clientKeys: make(map[transport.NodeID]ed25519.PublicKey),
		clientPriv: make(map[transport.NodeID]ed25519.PrivateKey),
		cfgTweak:   tweak,
	}
	c.ctrlPub, c.ctrlPriv = keypair(t)
	ids := make([]transport.NodeID, n)
	for i := 0; i < n; i++ {
		id := transport.NodeID(i)
		ids[i] = id
		c.pubs[id], c.keys[id] = keypair(t)
	}
	mem, err := NewMembership(ids, c.pubs)
	if err != nil {
		t.Fatal(err)
	}
	c.membership = mem
	for i := 0; i < nClients; i++ {
		id := transport.ClientIDBase + transport.NodeID(i)
		c.clientKeys[id], c.clientPriv[id] = keypair(t)
	}
	for _, id := range ids {
		c.addReplica(id, false)
	}
	return c
}

// addReplica creates one replica (joining replicas are not members yet).
func (c *cluster) addReplica(id transport.NodeID, joining bool) *Replica {
	c.t.Helper()
	if _, ok := c.keys[id]; !ok {
		c.pubs[id], c.keys[id] = keypair(c.t)
	}
	app := &counterApp{}
	cfg := ReplicaConfig{
		ID:                 id,
		Key:                c.keys[id],
		Membership:         c.membership,
		App:                app,
		Net:                c.net,
		ClientKeys:         c.clientKeys,
		ControllerKey:      c.ctrlPub,
		BatchDelay:         time.Millisecond,
		CheckpointInterval: 8,
		ViewChangeTimeout:  150 * time.Millisecond,
		Joining:            joining,
	}
	if c.cfgTweak != nil {
		c.cfgTweak(&cfg)
	}
	r, err := NewReplica(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	c.replicas[id] = r
	c.apps[id] = app
	return r
}

func (c *cluster) start() {
	for _, r := range c.replicas {
		r.Start()
	}
}

func (c *cluster) stop() {
	for _, r := range c.replicas {
		r.Stop()
	}
	c.net.Close()
}

// client builds a client for the current membership.
func (c *cluster) client(i int) *Client {
	c.t.Helper()
	id := transport.ClientIDBase + transport.NodeID(i)
	cl, err := NewClient(ClientConfig{
		ID:             id,
		Key:            c.clientPriv[id],
		Replicas:       c.membership.Replicas,
		ReplicaKeys:    c.pubs,
		F:              c.membership.F(),
		Net:            c.net,
		RequestTimeout: 400 * time.Millisecond,
		MaxAttempts:    12,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return cl
}

// controller builds the trusted controller client that signs reconfig
// operations.
func (c *cluster) controller() *Client {
	c.t.Helper()
	id := transport.ClientIDBase + 999
	cl, err := NewClient(ClientConfig{
		ID:             id,
		Key:            c.ctrlPriv,
		Replicas:       c.membership.Replicas,
		ReplicaKeys:    c.pubs,
		F:              c.membership.F(),
		Net:            c.net,
		RequestTimeout: 500 * time.Millisecond,
		MaxAttempts:    12,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return cl
}

// invoke runs one op with a deadline.
func invoke(t *testing.T, cl *Client, op string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	result, err := cl.Invoke(ctx, []byte(op))
	if err != nil {
		t.Fatalf("Invoke(%q): %v", op, err)
	}
	return result
}

// eventually polls a predicate.
func eventually(t *testing.T, timeout time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
