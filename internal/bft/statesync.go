package bft

import (
	"crypto/sha256"
	"sort"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// requestStateTransfer asks the group for its latest stable state. Used
// by joining replicas (bootstrapping after a reconfiguration added them)
// and by replicas that fell behind a stable checkpoint.
func (r *Replica) requestStateTransfer() {
	r.trace.Emit(metrics.Event{
		Type: metrics.EvStateTransfer, Node: int64(r.cfg.ID),
		Seq: r.lastExec, Epoch: r.membership.Epoch,
	})
	r.stReplies = make(map[transport.NodeID]*Message)
	req := &Message{Type: MsgStateRequest, SeqNo: r.lastExec, Epoch: r.membership.Epoch}
	// Signed once and reused: servers authenticate requesters before
	// spending snapshot work on them. From must be set before Sign (send
	// re-stamps it with the same id).
	req.From = r.cfg.ID
	req.Sign(r.cfg.Key)
	for _, id := range r.cfg.Membership.Replicas {
		if id != r.cfg.ID {
			r.send(id, req)
		}
	}
	// Also ask the current membership, which may differ from the boot
	// configuration after reconfigurations.
	for _, id := range r.membership.Replicas {
		if id != r.cfg.ID && !r.cfg.Membership.Contains(id) {
			r.send(id, req)
		}
	}
	r.armProgressTimer() // retry if no usable replies arrive
}

// maybeEpochSync triggers a state transfer after an authenticated member
// advertised a higher epoch than ours — at most once per observed epoch
// value; the progress timer retries if it does not complete.
func (r *Replica) maybeEpochSync(epoch uint64) {
	if epoch <= r.epochProbe {
		return
	}
	r.epochProbe = epoch
	r.cfg.Logf("replica %d: behind epoch %d (at %d); requesting state",
		r.cfg.ID, epoch, r.membership.Epoch)
	r.requestStateTransfer()
}

// onStateRequest serves state to a lagging replica. Two cases:
//
//   - The requester is behind our stable checkpoint: serve the stable
//     snapshot (the classic PBFT path).
//   - The requester is at an older epoch but at (or past) our stable
//     checkpoint: the stable snapshot cannot help it across the
//     reconfiguration, so serve a fresh snapshot of current state. This
//     is safe — the requester still demands f+1 matching copies, so a
//     single faulty replica cannot feed it fabricated state — and it is
//     the only recovery path for a replica that missed a reconfiguration
//     whose quorum has since dissolved (e.g. the removed replica was
//     powered off before a new checkpoint stabilized).
func (r *Replica) onStateRequest(msg *Message) {
	// Authenticate the requester before spending any snapshot work:
	// encoding a fresh snapshot is expensive, and an unauthenticated
	// request would otherwise be a free amplification lever (tiny request
	// in, multi-KB snapshot out). Boot-or-current membership is the right
	// scope for *serving*: a removed replica legitimately asks for the
	// state that proves its removal. (Counting toward the restore quorum
	// is stricter — see verifyStateReply.)
	if !r.verifyStateRequest(msg) {
		return
	}
	if msg.Epoch < r.membership.Epoch && msg.SeqNo < r.lastExec {
		snap, err := r.encodeSnapshot()
		if err != nil {
			r.cfg.Logf("replica %d: snapshot for state request failed: %v", r.cfg.ID, err)
			return
		}
		reply := &Message{
			Type:      MsgStateReply,
			SnapSeqNo: r.lastExec,
			SnapView:  r.view,
			Snapshot:  snap,
		}
		reply.From = r.cfg.ID
		reply.Sign(r.cfg.Key)
		r.send(msg.From, reply)
		return
	}
	if r.lastSnap == nil || r.lowWater <= msg.SeqNo {
		return // nothing newer to offer
	}
	reply := &Message{
		Type:      MsgStateReply,
		SnapSeqNo: r.lowWater,
		SnapView:  r.view,
		Snapshot:  r.lastSnap,
	}
	reply.From = r.cfg.ID
	reply.Sign(r.cfg.Key)
	r.send(msg.From, reply)
}

// onStateReply collects snapshots; f+1 matching copies are proof enough
// that the state is correct (at least one comes from a correct replica).
func (r *Replica) onStateReply(msg *Message) {
	if msg.SnapSeqNo <= r.lastExec && !r.joining {
		return
	}
	if !r.verifyStateReply(msg) {
		return
	}
	r.stReplies[msg.From] = msg //lazlint:allow epoch-guard(state transfer is the cross-epoch recovery path: a replica fetching a snapshot is precisely the one whose local epoch is stale; freshness comes from f+1 matching snapshot digests, not epoch equality)
	// Count matching (seq, digest) pairs, scanning replies in sorted
	// sender order: if two snapshot groups ever tie at the same seq,
	// which one gets restored must not depend on map iteration order.
	type key struct {
		seq uint64
		d   Digest
	}
	ids := make([]transport.NodeID, 0, len(r.stReplies))
	for id := range r.stReplies {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	counts := make(map[key]int)
	var best *Message
	f := r.membership.F()
	for _, id := range ids {
		m := r.stReplies[id]
		k := key{m.SnapSeqNo, sha256.Sum256(m.Snapshot)}
		counts[k]++
		if counts[k] >= f+1 && (best == nil || m.SnapSeqNo > best.SnapSeqNo) {
			best = m
		}
	}
	if best == nil {
		return
	}
	if best.SnapSeqNo <= r.lastExec && !r.joining {
		return
	}
	if err := r.restoreSnapshot(best.Snapshot); err != nil {
		r.cfg.Logf("replica %d: state restore failed: %v", r.cfg.ID, err)
		// Every voucher of a snapshot that fails restore is lying — an
		// honest replica's snapshot always decodes — so evict the whole
		// poisoned group and retry: the progress timer re-issues the
		// state request, and the f+1 quorum re-forms from honest peers.
		bad := key{best.SnapSeqNo, sha256.Sum256(best.Snapshot)}
		for _, id := range ids {
			m, ok := r.stReplies[id]
			if ok && (key{m.SnapSeqNo, sha256.Sum256(m.Snapshot)}) == bad {
				delete(r.stReplies, id)
			}
		}
		r.armProgressTimer()
		return
	}
	r.stReplies = make(map[transport.NodeID]*Message)
	r.inViewChange = false
	wasJoining := r.joining
	r.joining = !r.membership.Contains(r.cfg.ID)
	r.updateStats(func(s *ReplicaStats) { s.StateTransfers++ })
	r.ins.stateTransfers.Inc()
	r.trace.Emit(metrics.Event{
		Type: metrics.EvStateRestore, Node: int64(r.cfg.ID),
		Seq: r.lastExec, Epoch: r.membership.Epoch,
	})
	r.cfg.Logf("replica %d: state transfer to seq %d (epoch %d, joining=%v->%v)",
		r.cfg.ID, r.lastExec, r.membership.Epoch, wasJoining, r.joining)
	if !r.joining {
		// Vote for the checkpoint at the restore point. A replica that
		// arrives here by transfer never executed this seq, so it would
		// otherwise never vote at it — yet it holds the f+1-vouched
		// snapshot, which is exactly what a vote attests to. Freshly
		// swapped-in members are the common case: without this vote, a
		// post-reconfig group of n=3f+1 can be left with only 2f honest
		// voters at the reconfig checkpoint (the removed member is powered
		// off, the joiner silent), and one vote-garbling attacker then
		// jams every straggler's window until it relents.
		vote := &Message{
			Type:        MsgCheckpoint,
			SeqNo:       r.lastExec,
			Epoch:       r.membership.Epoch,
			StateDigest: sha256.Sum256(best.Snapshot),
			LastStable:  r.lowWater,
		}
		vote.From = r.cfg.ID
		vote.Sign(r.cfg.Key)
		r.lastCkptVote = vote
		r.broadcast(vote)
	}
	if r.joining {
		// Still not a member: keep polling until the ADD executes.
		r.armProgressTimer()
	}
}

// verifyStateReply authenticates a snapshot voucher against the CURRENT
// membership only. Boot-configuration keys deliberately do NOT count:
// a replica is removed from the membership precisely because it is
// suspected compromised, and accepting its signature here would hand the
// adversary one of the f+1 vouchers it needs to feed us fabricated state
// (one removed-but-boot member plus one compromised current member beats
// f=1). A joining replica's current membership IS the boot configuration
// until its first restore, so bootstrap is unaffected.
func (r *Replica) verifyStateReply(msg *Message) bool {
	pub, ok := r.membership.Keys[msg.From]
	return ok && msg.VerifySig(pub)
}

// verifyStateRequest authenticates a state requester: boot or current
// membership, with a valid signature.
func (r *Replica) verifyStateRequest(msg *Message) bool {
	if pub, ok := r.membership.Keys[msg.From]; ok && msg.VerifySig(pub) {
		return true
	}
	if pub, ok := r.cfg.Membership.Keys[msg.From]; ok && msg.VerifySig(pub) {
		return true
	}
	return false
}
