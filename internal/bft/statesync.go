package bft

import (
	"crypto/sha256"

	"lazarus/internal/transport"
)

// requestStateTransfer asks the group for its latest stable state. Used
// by joining replicas (bootstrapping after a reconfiguration added them)
// and by replicas that fell behind a stable checkpoint.
func (r *Replica) requestStateTransfer() {
	r.stReplies = make(map[transport.NodeID]*Message)
	req := &Message{Type: MsgStateRequest, SeqNo: r.lastExec}
	for _, id := range r.cfg.Membership.Replicas {
		if id != r.cfg.ID {
			r.send(id, req)
		}
	}
	// Also ask the current membership, which may differ from the boot
	// configuration after reconfigurations.
	for _, id := range r.membership.Replicas {
		if id != r.cfg.ID && !r.cfg.Membership.Contains(id) {
			r.send(id, req)
		}
	}
	r.armProgressTimer() // retry if no usable replies arrive
}

// onStateRequest serves the latest stable snapshot to a lagging replica.
func (r *Replica) onStateRequest(msg *Message) {
	if r.lastSnap == nil || r.lowWater <= msg.SeqNo {
		return // nothing newer to offer
	}
	reply := &Message{
		Type:      MsgStateReply,
		SnapSeqNo: r.lowWater,
		SnapView:  r.view,
		Snapshot:  r.lastSnap,
	}
	reply.From = r.cfg.ID
	reply.Sign(r.cfg.Key)
	r.send(msg.From, reply)
}

// onStateReply collects snapshots; f+1 matching copies are proof enough
// that the state is correct (at least one comes from a correct replica).
func (r *Replica) onStateReply(msg *Message) {
	if msg.SnapSeqNo <= r.lastExec && !r.joining {
		return
	}
	if !r.verifyStateReply(msg) {
		return
	}
	r.stReplies[msg.From] = msg
	// Count matching (seq, digest) pairs.
	type key struct {
		seq uint64
		d   Digest
	}
	counts := make(map[key]int)
	var best *Message
	f := r.membership.F()
	for _, m := range r.stReplies {
		k := key{m.SnapSeqNo, sha256.Sum256(m.Snapshot)}
		counts[k]++
		if counts[k] >= f+1 && (best == nil || m.SnapSeqNo > best.SnapSeqNo) {
			best = m
		}
	}
	if best == nil {
		return
	}
	if best.SnapSeqNo <= r.lastExec && !r.joining {
		return
	}
	if err := r.restoreSnapshot(best.Snapshot); err != nil {
		r.cfg.Logf("replica %d: state restore failed: %v", r.cfg.ID, err)
		return
	}
	r.stReplies = make(map[transport.NodeID]*Message)
	r.inViewChange = false
	wasJoining := r.joining
	r.joining = !r.membership.Contains(r.cfg.ID)
	r.updateStats(func(s *ReplicaStats) { s.StateTransfers++ })
	r.cfg.Logf("replica %d: state transfer to seq %d (epoch %d, joining=%v->%v)",
		r.cfg.ID, r.lastExec, r.membership.Epoch, wasJoining, r.joining)
	if r.joining {
		// Still not a member: keep polling until the ADD executes.
		r.armProgressTimer()
	}
}

// verifyStateReply authenticates the snapshot sender: it must be a member
// of either the boot configuration or the restored current membership,
// with a valid signature.
func (r *Replica) verifyStateReply(msg *Message) bool {
	if pub, ok := r.membership.Keys[msg.From]; ok && msg.VerifySig(pub) {
		return true
	}
	if pub, ok := r.cfg.Membership.Keys[msg.From]; ok && msg.VerifySig(pub) {
		return true
	}
	return false
}
