package bft

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"fmt"
	"sync"
	"time"

	"lazarus/internal/transport"
)

// ClientConfig configures a BFT client.
type ClientConfig struct {
	// ID is the client's node id (>= transport.ClientIDBase).
	ID transport.NodeID
	// Key signs the client's requests.
	Key ed25519.PrivateKey
	// Replicas is the current replica set to talk to.
	Replicas []transport.NodeID
	// F is the fault threshold; f+1 matching replies accept a result.
	F int
	// Net provides the endpoint.
	Net transport.Network
	// RequestTimeout bounds one invocation attempt before retransmitting
	// (default 500ms).
	RequestTimeout time.Duration
	// MaxAttempts bounds retransmissions before giving up (default 8).
	MaxAttempts int
	// RetryBackoff is the pause before the second attempt, doubling per
	// attempt up to RetryBackoffMax (defaults RequestTimeout/8 and
	// RequestTimeout). Backing off keeps an open-loop surge of timed-out
	// clients from hammering a group that is merely slow — retransmitting
	// at full rate into a congested WAN is how load surges wedge it.
	RetryBackoff, RetryBackoffMax time.Duration
	// ReplicaKeys maps replicas to their public keys. When non-empty,
	// Invoke discards any reply whose signature does not verify against
	// the sender's key — membership filtering alone lets anything able to
	// spoof a member's transport id forge votes. Empty disables
	// verification (only for tests exercising the unauthenticated path).
	ReplicaKeys map[transport.NodeID]ed25519.PublicKey
}

// Client invokes operations on the replicated service and accepts a
// result once f+1 replicas vouch for it. Safe for sequential use; one
// outstanding invocation at a time (run several Clients for concurrency).
type Client struct {
	cfg ClientConfig
	ep  transport.Endpoint

	mu       sync.Mutex
	replicas []transport.NodeID
	keys     map[transport.NodeID]ed25519.PublicKey
	seq      uint64
}

// NewClient validates the configuration and connects the endpoint.
func NewClient(cfg ClientConfig) (*Client, error) {
	switch {
	case !cfg.ID.IsClient():
		return nil, fmt.Errorf("bft: client id %d below ClientIDBase", cfg.ID)
	case len(cfg.Key) != ed25519.PrivateKeySize:
		return nil, fmt.Errorf("bft: client %d: bad private key", cfg.ID)
	case len(cfg.Replicas) == 0:
		return nil, fmt.Errorf("bft: client %d: no replicas", cfg.ID)
	case cfg.Net == nil:
		return nil, fmt.Errorf("bft: client %d: nil network", cfg.ID)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 500 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = cfg.RequestTimeout / 8
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = cfg.RequestTimeout
	}
	ep, err := cfg.Net.Endpoint(cfg.ID)
	if err != nil {
		return nil, fmt.Errorf("bft: client %d endpoint: %w", cfg.ID, err)
	}
	return &Client{
		cfg:      cfg,
		ep:       ep,
		replicas: append([]transport.NodeID(nil), cfg.Replicas...),
		keys:     copyKeys(cfg.ReplicaKeys),
	}, nil
}

func copyKeys(keys map[transport.NodeID]ed25519.PublicKey) map[transport.NodeID]ed25519.PublicKey {
	out := make(map[transport.NodeID]ed25519.PublicKey, len(keys))
	for id, pub := range keys {
		out[id] = pub
	}
	return out
}

// UpdateReplicas installs a new replica set (after a Lazarus
// reconfiguration; in a full deployment clients learn this from reply
// epochs and a directory service).
func (c *Client) UpdateReplicas(replicas []transport.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas = append([]transport.NodeID(nil), replicas...)
}

// UpdateMembership installs a new replica set together with its public
// keys, keeping reply verification in step with reconfigurations. A nil
// keys map leaves the current keys in place.
func (c *Client) UpdateMembership(replicas []transport.NodeID, keys map[transport.NodeID]ed25519.PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas = append([]transport.NodeID(nil), replicas...)
	if keys != nil {
		c.keys = copyKeys(keys)
	}
}

// Replicas returns the client's current replica set.
func (c *Client) Replicas() []transport.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]transport.NodeID(nil), c.replicas...)
}

// Close releases the client's endpoint.
func (c *Client) Close() error { return c.ep.Close() }

// Invoke submits one operation and blocks until f+1 matching replies
// arrive or the context/attempt budget is exhausted.
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	c.mu.Lock()
	c.seq++
	seq := c.seq
	replicas := append([]transport.NodeID(nil), c.replicas...)
	keys := c.keys
	c.mu.Unlock()

	req := Request{Client: c.cfg.ID, Seq: seq, Op: op}
	req.Sign(c.cfg.Key)
	msg := &Message{Type: MsgRequest, From: c.cfg.ID, Request: &req}
	payload, err := Encode(msg)
	if err != nil {
		return nil, err
	}

	// Only replicas in this invocation's snapshot may vote: a retired
	// replica (removed by a Lazarus reconfiguration, possibly because it
	// was compromised) must not count toward the f+1 quorum.
	member := make(map[transport.NodeID]bool, len(replicas))
	for _, id := range replicas {
		member[id] = true
	}

	votes := make(map[transport.NodeID][]byte)
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			// Exponential backoff between attempts (see RetryBackoff).
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			backoff *= 2
			if backoff > c.cfg.RetryBackoffMax {
				backoff = c.cfg.RetryBackoffMax
			}
		}
		// Rotate which replica is contacted first on each attempt. The
		// request still reaches every replica, but ordering starts at the
		// first frame to arrive at the primary — and when the primary (or
		// the link to it) is the reason we are retrying, leading with a
		// different replica means some backup holds the request and its
		// progress timer, not just ours, drives the view change.
		for i := range replicas {
			id := replicas[(i+attempt)%len(replicas)]
			if err := c.ep.Send(id, payload); err != nil {
				// Dead replicas are expected during reconfiguration.
				continue
			}
		}
		deadline := time.Now().Add(c.cfg.RequestTimeout) //lazlint:allow wallclock(client-side request timeout; never enters replica state)
		for {
			remaining := time.Until(deadline) //lazlint:allow wallclock(client-side request timeout; never enters replica state)
			if remaining <= 0 {
				break
			}
			rctx, cancel := context.WithTimeout(ctx, remaining)
			env, err := c.ep.Recv(rctx)
			cancel()
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				break // attempt timed out; retransmit
			}
			reply, err := Decode(env.Payload)
			if err != nil || reply.Type != MsgReply || reply.ReplySeq != seq {
				continue // stale or foreign message
			}
			if !member[env.From] {
				continue // sender is outside the replica-set snapshot
			}
			if _, dup := votes[env.From]; dup {
				// Already hold this replica's verified vote; retransmitted
				// replies are identical, so skip the signature check.
				continue
			}
			if len(keys) > 0 {
				pub, ok := keys[env.From]
				if !ok || !reply.VerifySig(pub) {
					continue // forged or tampered: only signed votes count
				}
			}
			votes[env.From] = reply.Result
			if result, ok := tally(votes, c.cfg.F+1); ok {
				return result, nil
			}
		}
	}
	return nil, fmt.Errorf("bft: client %d: no quorum for request %d after %d attempts",
		c.cfg.ID, seq, c.cfg.MaxAttempts)
}

// tally looks for need matching results among the votes.
func tally(votes map[transport.NodeID][]byte, need int) ([]byte, bool) {
	for _, result := range votes {
		count := 0
		for _, other := range votes {
			if bytes.Equal(result, other) {
				count++
			}
		}
		if count >= need {
			return result, true
		}
	}
	return nil, false
}
