package bft

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"sort"

	"lazarus/internal/transport"
)

// Application is the replicated service: a deterministic state machine.
// Execute is called with totally-ordered operations on every correct
// replica; Snapshot/Restore support checkpointing and state transfer.
type Application interface {
	// Execute applies one ordered operation and returns its result. It
	// must be deterministic.
	Execute(op []byte) []byte
	// Snapshot serializes the full service state.
	Snapshot() ([]byte, error)
	// Restore replaces the service state with a snapshot.
	Restore(snapshot []byte) error
}

// Membership is one configuration epoch of the replica group: the ordered
// replica ids and their public keys.
type Membership struct {
	// Epoch numbers configurations; reconfigurations increment it.
	Epoch uint64
	// Replicas lists the member ids in canonical (sorted) order.
	Replicas []transport.NodeID
	// Keys holds each member's public key.
	Keys map[transport.NodeID]ed25519.PublicKey
}

// NewMembership builds an epoch-0 membership.
func NewMembership(replicas []transport.NodeID, keys map[transport.NodeID]ed25519.PublicKey) (*Membership, error) {
	if len(replicas) < 4 {
		return nil, fmt.Errorf("bft: %d replicas cannot tolerate any fault (need >= 4)", len(replicas))
	}
	m := &Membership{
		Replicas: append([]transport.NodeID(nil), replicas...),
		Keys:     make(map[transport.NodeID]ed25519.PublicKey, len(replicas)),
	}
	sort.Slice(m.Replicas, func(i, j int) bool { return m.Replicas[i] < m.Replicas[j] })
	for i := 1; i < len(m.Replicas); i++ {
		if m.Replicas[i] == m.Replicas[i-1] {
			return nil, fmt.Errorf("bft: duplicate replica %d", m.Replicas[i])
		}
	}
	for _, id := range m.Replicas {
		key, ok := keys[id]
		if !ok {
			return nil, fmt.Errorf("bft: no key for replica %d", id)
		}
		m.Keys[id] = key
	}
	return m, nil
}

// N returns the group size.
func (m *Membership) N() int { return len(m.Replicas) }

// F returns the fault threshold: the largest f with n >= 3f+1.
func (m *Membership) F() int { return (m.N() - 1) / 3 }

// Quorum returns the Byzantine quorum size: the smallest q where any
// two quorums intersect in at least f+1 replicas, q = ⌈(n+f+1)/2⌉. At
// the steady-state n=3f+1 this is the familiar 2f+1 — but the
// add-then-remove reconfiguration runs the group at n=3f+2 between the
// ADD and the REMOVE, where two 2f+1 quorums can intersect in a single,
// possibly Byzantine, replica. The chaos harness caught the fallout: a
// batch committed through one 3-of-5 quorum while a view change
// assembled from a disjoint-but-one 3-of-5 quorum saw no prepared
// certificate for it and nulled out an executed sequence number.
func (m *Membership) Quorum() int { return (m.N() + m.F() + 2) / 2 }

// Contains reports whether the id is a member.
func (m *Membership) Contains(id transport.NodeID) bool {
	for _, r := range m.Replicas {
		if r == id {
			return true
		}
	}
	return false
}

// Primary returns the primary of a view: the view-th member, round-robin.
func (m *Membership) Primary(view uint64) transport.NodeID {
	return m.Replicas[int(view%uint64(len(m.Replicas)))]
}

// Clone deep-copies the membership.
func (m *Membership) Clone() *Membership {
	out := &Membership{
		Epoch:    m.Epoch,
		Replicas: append([]transport.NodeID(nil), m.Replicas...),
		Keys:     make(map[transport.NodeID]ed25519.PublicKey, len(m.Keys)),
	}
	for id, k := range m.Keys {
		out.Keys[id] = k
	}
	return out
}

// WithAdded returns a new membership with the replica added and the epoch
// advanced.
func (m *Membership) WithAdded(id transport.NodeID, key ed25519.PublicKey) (*Membership, error) {
	if m.Contains(id) {
		return nil, fmt.Errorf("replica %d: %w", id, ErrAlreadyMember)
	}
	out := m.Clone()
	out.Epoch++
	out.Replicas = append(out.Replicas, id)
	sort.Slice(out.Replicas, func(i, j int) bool { return out.Replicas[i] < out.Replicas[j] })
	out.Keys[id] = key
	return out, nil
}

// WithRemoved returns a new membership with the replica removed and the
// epoch advanced.
func (m *Membership) WithRemoved(id transport.NodeID) (*Membership, error) {
	if !m.Contains(id) {
		return nil, fmt.Errorf("replica %d: %w", id, ErrNotMember)
	}
	if m.N() <= 4 {
		return nil, fmt.Errorf("removing replica %d would leave %d replicas: %w", id, m.N()-1, ErrGroupTooSmall)
	}
	out := m.Clone()
	out.Epoch++
	for i, r := range out.Replicas {
		if r == id {
			out.Replicas = append(out.Replicas[:i], out.Replicas[i+1:]...)
			break
		}
	}
	delete(out.Keys, id)
	return out, nil
}

// Digest hashes the membership (epoch, ids, keys) for state agreement.
func (m *Membership) Digest() Digest {
	h := sha256.New()
	fmt.Fprintf(h, "epoch|%d|", m.Epoch)
	for _, id := range m.Replicas {
		fmt.Fprintf(h, "%d|", id)
		h.Write(m.Keys[id])
	}
	var out Digest
	h.Sum(out[:0])
	return out
}
