package bft

import (
	"bytes"
	"crypto/ed25519"
	"encoding/gob"
	"fmt"
	"time"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// reconfigPrefix marks operations interpreted by the replication layer
// itself rather than the application: membership changes issued by the
// (trusted) Lazarus controller.
var reconfigPrefix = []byte("\x00BFT-RECONFIG\x00")

// maxPending bounds the unordered-request queue. Requests are
// authenticated before queueing, but authentication alone does not bound
// memory: any registered client can sign requests faster than a stalled
// primary orders them. Past the cap new requests are dropped and the
// client's retransmission recovers them once ordering catches up.
const maxPending = 4096

// ReconfigOp is a membership-change command ordered through consensus,
// BFT-SMaRt style (paper §5.2: "first add a new replica and then remove
// the old replica to be quarantined").
type ReconfigOp struct {
	// Add, when true, adds the replica; otherwise removes it.
	Add bool
	// Replica is the subject node.
	Replica transport.NodeID
	// PubKey is the subject's public key (required for Add).
	PubKey []byte
}

// EncodeReconfigOp serializes a reconfiguration for submission as a
// request payload. Only requests signed by the controller key execute.
func EncodeReconfigOp(op ReconfigOp) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(reconfigPrefix)
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		return nil, fmt.Errorf("bft: encoding reconfig op: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeReconfigOp(payload []byte) (ReconfigOp, bool) {
	if !bytes.HasPrefix(payload, reconfigPrefix) {
		return ReconfigOp{}, false
	}
	var op ReconfigOp
	if err := gob.NewDecoder(bytes.NewReader(payload[len(reconfigPrefix):])).Decode(&op); err != nil {
		return ReconfigOp{}, false
	}
	return op, true
}

// onRequest handles a client request: authenticate, deduplicate, queue
// (primary) and arm the progress timer (all replicas). Authentication
// comes first — serving the reply cache to unauthenticated senders would
// let anyone who can name a client id trigger reply traffic toward it
// (traffic amplification aimed at the client).
func (r *Replica) onRequest(msg *Message) {
	if msg.Request == nil {
		return
	}
	if !r.requestOK(msg, 0) {
		r.cfg.Logf("replica %d: rejecting unauthenticated request from %d", r.cfg.ID, msg.Request.Client)
		return
	}
	req := *msg.Request
	rec, ok := r.clients[req.Client]
	if ok && req.Seq <= rec.lastSeq {
		// Retransmission of an executed request: resend the cached
		// reply.
		if rec.lastReply != nil && req.Seq == rec.lastSeq {
			r.send(req.Client, rec.lastReply)
		}
		return
	}
	d := req.Digest()
	if !r.pendingSet[d] {
		// Cap the pending queue: every entry here was signed by a
		// registered client, but a Byzantine (or merely runaway) client
		// can sign requests faster than a stalled primary orders them,
		// and an unbounded queue turns that into memory exhaustion at
		// every replica. Dropping is safe — the client retransmits, and
		// a full queue already means ordering is the bottleneck.
		if len(r.pending) >= maxPending {
			r.cfg.Logf("replica %d: pending queue full (%d); dropping request from %d",
				r.cfg.ID, maxPending, req.Client)
			return
		}
		r.pendingSet[d] = true //lazlint:allow epoch-guard(client requests carry no epoch/view; freshness is per-client sequence numbers, and epoch enforcement happens when the batch is ordered)
		r.pending = append(r.pending, req)
	}
	// Any replica holding unordered requests arms its progress timer:
	// if the primary does not order them in time, a view change starts.
	r.armProgressTimer()
	r.updateStats(func(*ReplicaStats) {})
	// The primary proposes eagerly: a ready batch must not wait for the
	// next BatchDelay tick.
	r.maybePropose()
}

// verifyRequest authenticates a request against the client key registry
// or, for reconfigurations, the controller key.
func (r *Replica) verifyRequest(req *Request) bool {
	if _, isReconfig := decodeReconfigOp(req.Op); isReconfig {
		return len(r.cfg.ControllerKey) == ed25519.PublicKeySize && req.Verify(r.cfg.ControllerKey)
	}
	pub, ok := r.cfg.ClientKeys[req.Client]
	if !ok {
		return false
	}
	return req.Verify(pub)
}

// maybePropose is the eager proposal path: it proposes immediately when
// a batch is full, or when nothing is in flight (so a lone request never
// waits out a BatchDelay tick). While the pipeline is busy, partial
// batches keep accumulating until the tick sweeps them via proposeAll —
// proposing every request the instant it arrives would degenerate into
// singleton batches and forfeit amortization.
func (r *Replica) maybePropose() {
	r.propose(false)
}

// proposeAll is the BatchDelay tick path: it drains pending requests into
// proposals regardless of batch occupancy, bounded only by the window and
// the pipeline depth.
func (r *Replica) proposeAll() {
	r.propose(true)
}

// propose starts consensus on pending batches. It keeps proposing —
// pipelining multiple consensus instances — while requests are pending,
// the checkpoint window has room, and fewer than PipelineDepth instances
// are in flight (proposed but not yet executed). Unless force is set,
// partial batches are proposed only into an idle pipeline.
func (r *Replica) propose(force bool) {
	if r.joining || r.inViewChange || !r.primary() {
		return
	}
	if r.cfg.Fault == FaultSilent {
		return
	}
	// A replica that just became primary may have executed past its own
	// proposal counter (it executed instances the old primary proposed);
	// new sequence numbers must start above everything executed.
	if r.seq < r.lastExec {
		r.seq = r.lastExec
	}
	depth := uint64(r.cfg.PipelineDepth)
	for len(r.pending) > 0 &&
		// Respect the window: do not run ahead of checkpointing.
		r.seq < r.lowWater+r.cfg.WindowSize &&
		// Respect the pipeline depth: bound optimistic work in flight.
		r.seq-r.lastExec < depth &&
		// Eager calls propose partial batches only when nothing is in
		// flight; the tick sweeps the rest.
		(force || len(r.pending) >= r.cfg.BatchSize || r.seq == r.lastExec) {
		n := len(r.pending)
		if n > r.cfg.BatchSize {
			n = r.cfg.BatchSize
		}
		batch := &Batch{Requests: append([]Request(nil), r.pending[:n]...)}
		r.pending = r.pending[n:]
		for i := range batch.Requests {
			delete(r.pendingSet, batch.Requests[i].Digest())
		}
		r.ins.batchOccupancy.Observe(int64(n))
		r.seq++
		seq := r.seq
		r.ins.pipelineInflight.Observe(int64(seq - r.lastExec))

		if r.cfg.Fault == FaultEquivocate {
			r.proposeEquivocating(seq, batch)
			return
		}
		pp := &Message{
			Type:        MsgPrePrepare,
			From:        r.cfg.ID,
			View:        r.view,
			SeqNo:       seq,
			Epoch:       r.membership.Epoch,
			Batch:       batch,
			BatchDigest: batch.Digest(),
		}
		// Sign the proposal (From is already set; the signature covers it).
		// Backups verify before voting, and the signed pre-prepare anchors
		// the prepared certificates carried by view changes.
		pp.Sign(r.cfg.Key)
		r.broadcast(pp)
		r.acceptPrePrepare(pp) // the primary pre-prepares locally
	}
}

// proposeEquivocating is the Byzantine primary: it sends batch A to half
// the replicas and batch B to the other half. Correct replicas cannot
// gather prepare quorums for either, progress stalls, and the view change
// removes the primary — the behaviour the tests assert.
func (r *Replica) proposeEquivocating(seq uint64, batch *Batch) {
	alt := &Batch{} // conflicting empty proposal
	ppA := &Message{Type: MsgPrePrepare, From: r.cfg.ID, View: r.view, SeqNo: seq,
		Epoch: r.membership.Epoch, Batch: batch, BatchDigest: batch.Digest()}
	ppB := &Message{Type: MsgPrePrepare, From: r.cfg.ID, View: r.view, SeqNo: seq,
		Epoch: r.membership.Epoch, Batch: alt, BatchDigest: alt.Digest()}
	// Both variants are properly signed: equivocation is two *valid*
	// conflicting proposals, not two forgeries.
	ppA.Sign(r.cfg.Key)
	ppB.Sign(r.cfg.Key)
	for i, id := range r.membership.Replicas {
		if id == r.cfg.ID {
			continue
		}
		if i%2 == 0 {
			r.send(id, ppA)
		} else {
			r.send(id, ppB)
		}
	}
}

// acceptPrePrepare validates and registers a proposal, then sends
// PREPARE.
func (r *Replica) acceptPrePrepare(pp *Message) {
	in := r.inst(pp.SeqNo)
	// An executed instance's digest is immutable: nothing — not even a
	// new-view re-proposal — may rebind the sequence number to another
	// batch after execution. Without this guard a malicious new primary
	// could overwrite in.digest and desynchronize the catch-up responder.
	if in.executed && in.digest != pp.BatchDigest {
		r.cfg.Logf("replica %d: ignoring conflicting proposal for executed seq %d", r.cfg.ID, pp.SeqNo)
		return
	}
	in.prePrepare = pp
	in.batch = pp.Batch
	in.digest = pp.BatchDigest
	if in.startedAt.IsZero() {
		in.startedAt = time.Now() //lazlint:allow wallclock(commit-latency metric start; never hashed, voted on or executed)
	}
	in.prepares[r.cfg.ID] = pp.BatchDigest
	// The primary's pre-prepare stands in for its prepare (PBFT's
	// prepared predicate: pre-prepare + 2f prepares from distinct
	// replicas).
	in.prepares[pp.From] = pp.BatchDigest
	if !r.primary() {
		prep := &Message{
			Type:        MsgPrepare,
			From:        r.cfg.ID,
			View:        pp.View,
			SeqNo:       pp.SeqNo,
			Epoch:       r.membership.Epoch,
			BatchDigest: pp.BatchDigest,
		}
		// Signed so peers can count it toward certificate-grade quorums;
		// From must be set before Sign (the signature covers it).
		prep.Sign(r.cfg.Key)
		in.prepareMsgs[r.cfg.ID] = prep
		r.broadcast(prep)
	}
	r.checkPrepared(pp.SeqNo)
}

// onPrePrepare handles the primary's proposal.
func (r *Replica) onPrePrepare(msg *Message) {
	if r.joining || r.inViewChange || !r.fromMember(msg) {
		return
	}
	if msg.View != r.view || msg.From != r.membership.Primary(r.view) {
		return
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return
	}
	if msg.Batch == nil || msg.Batch.Digest() != msg.BatchDigest {
		r.cfg.Logf("replica %d: pre-prepare digest mismatch at seq %d", r.cfg.ID, msg.SeqNo)
		return
	}
	// The primary's signature must verify before the proposal fixes this
	// instance's digest: an unsigned proposal could commit a batch whose
	// prepared certificate can never validate in a later view change.
	if !r.replicaSigOK(msg) {
		r.cfg.Logf("replica %d: pre-prepare at seq %d fails signature check", r.cfg.ID, msg.SeqNo)
		return
	}
	in := r.inst(msg.SeqNo)
	if in.prePrepare != nil {
		if in.digest != msg.BatchDigest {
			// Conflicting proposal in the same view: Byzantine primary.
			r.cfg.Logf("replica %d: conflicting pre-prepare at seq %d; starting view change", r.cfg.ID, msg.SeqNo)
			r.startViewChange(r.view + 1)
		}
		return
	}
	// Authenticate every request in the batch: a Byzantine primary must
	// not inject operations no client signed. The verify pool normally
	// resolved these before dispatch (verdicts ride on the message); the
	// cached fallback covers direct calls and evicted verdicts.
	for i := range msg.Batch.Requests {
		if !r.requestOK(msg, i) {
			r.cfg.Logf("replica %d: batch at seq %d carries unauthenticated request", r.cfg.ID, msg.SeqNo)
			return
		}
	}
	r.acceptPrePrepare(msg)
	// Ordered requests need no separate progress tracking.
	r.armProgressTimer()
}

// onPrepare counts prepare votes. A vote arriving before the pre-prepare
// is buffered together with the digest it voted for: tallying buffered
// votes blindly would let a Byzantine peer's votes for a *different*
// batch count toward this instance's quorum once the pre-prepare lands.
func (r *Replica) onPrepare(msg *Message) {
	if r.joining || !r.fromMember(msg) {
		return
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return
	}
	// Verify the sender's signature before the vote touches any state —
	// including the catch-up responder below, which would otherwise be a
	// traffic amplifier for unauthenticated prepares. An unverified vote
	// counted toward a prepared quorum poisons the certificate: the
	// quorum looks satisfied locally, but the certificate carried into a
	// view change lacks 2f valid prepares and honest peers discard it,
	// re-proposing a null batch where this replica may already have
	// executed the real one.
	if !r.replicaSigOK(msg) {
		return
	}
	// Catch-up responder: a prepare for an instance we already executed
	// means the sender is rebuilding it — from a new-view re-proposal or
	// the stuck-instance retry in onProgressTimeout — and is missing
	// votes we counted long ago. Answer the sender directly with our
	// commit, our prepare at the current view, and the prepared
	// certificate itself: the certificate is self-authenticating, so a
	// straggler that can no longer assemble a same-view prepare quorum
	// (its pre-prepare is from a view the group has left behind) adopts
	// it wholesale instead of waiting for group progress that may itself
	// be blocked on the straggler. The commit goes first and the response
	// is suppressed once we hold the sender's commit vote FOR OUR DIGEST
	// (a buffered vote for a different digest means the sender still
	// disagrees), so two caught-up replicas cannot ping-pong responses.
	if in, ok := r.log[msg.SeqNo]; ok && in.executed {
		if d, seen := in.commits[msg.From]; !seen || d != in.digest {
			base := Message{
				SeqNo:       msg.SeqNo,
				View:        r.view,
				Epoch:       r.membership.Epoch,
				BatchDigest: in.digest,
			}
			cm := base
			cm.Type = MsgCommit
			r.send(msg.From, &cm)
			pm := base
			pm.Type = MsgPrepare
			pm.From = r.cfg.ID
			pm.Sign(r.cfg.Key)
			r.send(msg.From, &pm)
			if in.cert != nil {
				cu := base
				cu.Type = MsgCatchUp
				cu.Prepared = []PreparedProof{*in.cert}
				r.send(msg.From, &cu)
			}
		}
		return
	}
	if r.inViewChange || msg.View != r.view {
		return
	}
	in := r.inst(msg.SeqNo)
	if in.prePrepare != nil && msg.BatchDigest != in.digest {
		return // vote for a different proposal
	}
	in.prepares[msg.From] = msg.BatchDigest
	// Keep the signed message: it may become part of this instance's
	// prepared certificate (filtered by digest and view at cert build).
	in.prepareMsgs[msg.From] = msg
	r.checkPrepared(msg.SeqNo)
}

// countVotes tallies votes matching the instance's fixed digest. Only
// meaningful once the pre-prepare set in.digest.
func countVotes(votes map[transport.NodeID]Digest, digest Digest) int {
	n := 0
	for _, d := range votes {
		if d == digest {
			n++
		}
	}
	return n
}

// checkPrepared advances to the commit phase once 2f+1 replicas (self
// included) prepared the same digest — and the quorum is provable.
func (r *Replica) checkPrepared(seq uint64) {
	in := r.inst(seq)
	if in.prepared || in.prePrepare == nil {
		return
	}
	if countVotes(in.prepares, in.digest) < r.membership.Quorum() {
		return
	}
	// The digest tally alone is not proof. Votes retained across a view
	// change — including the old AND new primaries' implicit pre-prepare
	// votes, two tally entries backed by zero signed prepares — can reach
	// a quorum while too few prepares were signed in THIS pre-prepare's
	// view. Declaring prepared on such a tally is unsafe, not merely
	// unprovable: this replica's commit vote helps the batch execute
	// somewhere, yet the certificate it later carries into a view change
	// is discarded by validPreparedProof, the next primary re-proposes a
	// null batch at the sequence number, and replicas that had not yet
	// executed diverge from those that had. Wait for certificate-grade
	// evidence instead — after a view installs, every honest peer
	// re-broadcasts a fresh same-view prepare (acceptPrePrepare on the
	// re-proposals), so the provable quorum always re-forms.
	cert := r.preparedCert(seq, in)
	if cert == nil || len(cert.Prepares) < r.membership.Quorum()-1 {
		return
	}
	in.prepared = true
	in.cert = cert
	in.commits[r.cfg.ID] = in.digest
	cm := &Message{
		Type:        MsgCommit,
		View:        r.view,
		SeqNo:       seq,
		Epoch:       r.membership.Epoch,
		BatchDigest: in.digest,
	}
	r.broadcast(cm)
	r.checkCommitted(seq)
}

// onCommit counts commit votes, buffering early votes with their digest
// exactly like onPrepare. Votes are tallied even mid-view-change: commit
// semantics here are digest-based (a committed digest is stable across
// views, so a matching vote never goes stale), and a replica that
// volunteered for a view change is exactly the one that needs racing
// catch-up votes to land — installNewView keeps same-digest tallies, so
// nothing collected here is thrown away.
func (r *Replica) onCommit(msg *Message) {
	if r.joining || !r.fromMember(msg) {
		return
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return
	}
	in := r.inst(msg.SeqNo) //lazlint:allow auth-before-use(commit votes are deliberately unsigned — the HMAC transport envelope authenticates the sender, fromMember bounds who may vote, and tallies are digest-keyed so a forged digest is inert)
	// Record the vote even when it conflicts with our current proposal:
	// tallying is digest-filtered (countVotes), so a mismatched vote is
	// inert until proven right — and if a catch-up certificate later
	// shows OUR digest was the stale one (onCatchUp adopts it), the
	// buffered votes complete the commit quorum immediately instead of
	// waiting for peers to re-answer a retransmission round.
	in.commits[msg.From] = msg.BatchDigest
	r.checkCommitted(msg.SeqNo)
}

// checkCommitted executes once 2f+1 commits arrive for a prepared batch.
func (r *Replica) checkCommitted(seq uint64) {
	in := r.inst(seq)
	if in.committed || !in.prepared {
		return
	}
	if countVotes(in.commits, in.digest) < r.membership.Quorum() {
		return
	}
	in.committed = true
	r.executeReady()
}

// executeReady applies committed batches in sequence order.
func (r *Replica) executeReady() {
	for {
		next := r.lastExec + 1
		in, ok := r.log[next]
		if !ok || !in.committed || in.executed {
			break
		}
		in.executed = true
		r.lastExec = next
		r.recordExec(next, in.digest)
		for i := range in.batch.Requests {
			r.executeRequest(&in.batch.Requests[i])
			// Executed requests leave every replica's pending queue
			// (non-primaries hold them only to watch for progress).
			delete(r.pendingSet, in.batch.Requests[i].Digest())
		}
		r.compactPending()
		r.updateStats(func(s *ReplicaStats) { s.Executed++ })
		r.ins.executedBatches.Inc()
		if !in.startedAt.IsZero() {
			durUS := time.Since(in.startedAt).Microseconds() //lazlint:allow wallclock(commit-latency metric; observability only)
			r.ins.commitLatencyUS.Observe(durUS)
			// The same measurement feeds the adaptive progress timer:
			// propose→execute is the consensus round trip the timer
			// waits out. Inert when AdaptiveTimeout is off.
			r.toctl.observe(time.Duration(durUS) * time.Microsecond)
			r.trace.Emit(metrics.Event{
				Type: metrics.EvConsensusExecuted, Node: int64(r.cfg.ID),
				Seq: next, Epoch: r.membership.Epoch, View: r.view, DurUS: durUS,
			})
		}
		if r.ckptDue || r.lastExec%r.cfg.CheckpointInterval == 0 {
			// One canonical checkpoint per seq, taken only after the whole
			// batch executed (ckptDue marks a reconfiguration in the batch).
			r.ckptDue = false
			r.takeCheckpoint(r.lastExec)
		}
	}
	// Progress was made: disarm, and if work remains start a fresh
	// timeout (PBFT resets the progress timer whenever execution
	// advances; without the reset, sustained load turns the timer into
	// a spurious view-change generator). Execution also decays one
	// timeout-backoff level: the suspicion behind the last unproductive
	// timeout is being disproven.
	r.toctl.progress()
	r.disarmProgressTimer()
	if len(r.pending) > 0 {
		r.armProgressTimer()
	}
	// Execution freed pipeline slots (and possibly window room): refill.
	r.maybePropose()
}

// requeueInstance returns an abandoned (unexecuted) instance's requests
// to the pending queue so a later proposal can re-order them. Requests a
// client already got executed elsewhere are skipped, as are ones still
// queued.
func (r *Replica) requeueInstance(in *instance) {
	if in.batch == nil || in.executed {
		return
	}
	for i := range in.batch.Requests {
		req := &in.batch.Requests[i]
		if rec, ok := r.clients[req.Client]; ok && req.Seq <= rec.lastSeq {
			continue
		}
		if d := req.Digest(); !r.pendingSet[d] {
			r.pendingSet[d] = true
			r.pending = append(r.pending, *req)
		}
	}
}

// compactPending drops pending entries that executed (their digest left
// pendingSet) or were superseded by a later request from the same client.
func (r *Replica) compactPending() {
	kept := r.pending[:0]
	// Iterate by index: Digest() caches into the element, and a value
	// copy would throw the cache away every pass.
	for i := range r.pending {
		req := &r.pending[i]
		if !r.pendingSet[req.Digest()] {
			continue
		}
		if rec, ok := r.clients[req.Client]; ok && req.Seq <= rec.lastSeq {
			delete(r.pendingSet, req.Digest())
			continue
		}
		kept = append(kept, *req)
	}
	r.pending = kept
}

// executeRequest applies one operation and replies to its client. A
// request the replica already executed (retransmitted by the client and
// re-ordered, or re-proposed across a view change) is not applied twice.
func (r *Replica) executeRequest(req *Request) {
	if rec, ok := r.clients[req.Client]; ok && req.Seq <= rec.lastSeq {
		if rec.lastReply != nil && req.Seq == rec.lastSeq {
			r.send(req.Client, rec.lastReply)
		}
		return
	}
	var result []byte
	if op, isReconfig := decodeReconfigOp(req.Op); isReconfig {
		result = r.applyReconfig(op)
	} else {
		result = r.cfg.App.Execute(req.Op)
	}
	if r.cfg.Fault == FaultCorruptReply {
		result = append([]byte("CORRUPTED:"), result...)
	}
	reply := &Message{
		Type:        MsgReply,
		View:        r.view,
		Epoch:       r.membership.Epoch,
		ReplySeq:    req.Seq,
		ReplyClient: req.Client,
		Result:      result,
	}
	// Sign the reply so clients can tell a member's genuine vote from a
	// vote forged in its name. From must be set first: the signature
	// covers it, and send() would otherwise stamp it after signing.
	reply.From = r.cfg.ID
	reply.Sign(r.cfg.Key)
	rec, ok := r.clients[req.Client]
	if !ok {
		rec = &clientRecord{}
		r.clients[req.Client] = rec
	}
	rec.lastSeq = req.Seq
	rec.lastReply = reply
	r.send(req.Client, reply)
}

// applyReconfig executes an ordered membership change. The reply is an
// encoded ReconfigResult — a typed outcome, not a log string — so the
// control plane can classify it without scraping text.
func (r *Replica) applyReconfig(op ReconfigOp) []byte {
	var (
		next *Membership
		err  error
	)
	if op.Add {
		if len(op.PubKey) != ed25519.PublicKeySize {
			return ReconfigResult{Status: ReconfigInvalid, Detail: "bad public key"}.Encode()
		}
		next, err = r.membership.WithAdded(op.Replica, ed25519.PublicKey(op.PubKey))
	} else {
		next, err = r.membership.WithRemoved(op.Replica)
	}
	if err != nil {
		return ReconfigResult{Status: classifyReconfigErr(err), Detail: err.Error()}.Encode()
	}
	r.membership = next
	// Epoch fence: every consensus instance must be decided entirely
	// within one membership epoch. An instance pipelined past this
	// reconfiguration was proposed — and gathered its prepared
	// certificate — under the OLD epoch's membership, whose quorum
	// thresholds and view→primary mapping a view change in the new epoch
	// cannot validate against: the certificate would be discarded, a null
	// batch re-proposed over a sequence number some replica already
	// executed, and the group would split. So drop all in-flight work
	// above the reconfiguration point and requeue its requests; the
	// pipeline re-proposes them under the new epoch. No execution is
	// lost: executing any dropped instance would have required executing
	// this reconfiguration first, which triggers this same fence on every
	// honest replica.
	for seq, in := range r.log {
		if seq <= r.lastExec {
			continue
		}
		r.requeueInstance(in)
		delete(r.log, seq)
	}
	// Rewind the proposal counter past the dropped instances so the
	// primary reuses their sequence numbers; leaving a gap would stall
	// execution forever at the first unproposed number.
	r.seq = r.lastExec
	// A view change volunteered under the old epoch can never complete —
	// peers in the new epoch discard old-epoch VIEW-CHANGE messages — yet
	// inViewChange would keep this replica from voting, which the new
	// epoch's tighter quorums cannot afford. Executing the
	// reconfiguration IS progress, so the suspicion is withdrawn; if the
	// primary truly is faulty the progress timer re-raises it under the
	// new epoch.
	r.inViewChange = false
	r.updateStats(func(s *ReplicaStats) { s.Reconfigs++ })
	r.ins.reconfigs.Inc()
	r.trace.Emit(metrics.Event{
		Type: metrics.EvReconfig, Node: int64(r.cfg.ID),
		Epoch: next.Epoch, Detail: fmt.Sprintf("members=%v", next.Replicas),
	})
	r.cfg.Logf("replica %d: epoch %d membership %v", r.cfg.ID, next.Epoch, next.Replicas)

	// Checkpoint at this seq so peers that missed this instance can fetch
	// a state that already includes the new membership: the joiner needs
	// it after an ADD, and after a REMOVE it is the fastest signal to any
	// replica still at the old epoch (the vote carries the new epoch,
	// which triggers its state transfer). Deferred to executeReady rather
	// than taken here: this code runs mid-request, before executeRequest
	// records the reconfig's own reply, so a snapshot taken now and the
	// interval checkpoint taken after execution would broadcast two
	// DIFFERENT digests at the same seq — honest votes split between
	// them, and with an equivocating member in the group neither digest
	// reaches quorum, jamming the window (observed under the corrupt-state
	// chaos attack).
	r.ckptDue = true
	if !op.Add && op.Replica == r.cfg.ID {
		// This replica was removed: it stops participating (the control
		// plane will power it off). Entering joining mode silences it.
		r.joining = true
	}
	return ReconfigResult{Status: ReconfigApplied, Epoch: next.Epoch}.Encode()
}
