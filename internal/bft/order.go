package bft

import (
	"bytes"
	"crypto/ed25519"
	"encoding/gob"
	"fmt"
	"time"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// reconfigPrefix marks operations interpreted by the replication layer
// itself rather than the application: membership changes issued by the
// (trusted) Lazarus controller.
var reconfigPrefix = []byte("\x00BFT-RECONFIG\x00")

// ReconfigOp is a membership-change command ordered through consensus,
// BFT-SMaRt style (paper §5.2: "first add a new replica and then remove
// the old replica to be quarantined").
type ReconfigOp struct {
	// Add, when true, adds the replica; otherwise removes it.
	Add bool
	// Replica is the subject node.
	Replica transport.NodeID
	// PubKey is the subject's public key (required for Add).
	PubKey []byte
}

// EncodeReconfigOp serializes a reconfiguration for submission as a
// request payload. Only requests signed by the controller key execute.
func EncodeReconfigOp(op ReconfigOp) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(reconfigPrefix)
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		return nil, fmt.Errorf("bft: encoding reconfig op: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeReconfigOp(payload []byte) (ReconfigOp, bool) {
	if !bytes.HasPrefix(payload, reconfigPrefix) {
		return ReconfigOp{}, false
	}
	var op ReconfigOp
	if err := gob.NewDecoder(bytes.NewReader(payload[len(reconfigPrefix):])).Decode(&op); err != nil {
		return ReconfigOp{}, false
	}
	return op, true
}

// onRequest handles a client request: authenticate, deduplicate, queue
// (primary) and arm the progress timer (all replicas). Authentication
// comes first — serving the reply cache to unauthenticated senders would
// let anyone who can name a client id trigger reply traffic toward it
// (traffic amplification aimed at the client).
func (r *Replica) onRequest(msg *Message) {
	if msg.Request == nil {
		return
	}
	if !r.requestOK(msg, 0) {
		r.cfg.Logf("replica %d: rejecting unauthenticated request from %d", r.cfg.ID, msg.Request.Client)
		return
	}
	req := *msg.Request
	rec, ok := r.clients[req.Client]
	if ok && req.Seq <= rec.lastSeq {
		// Retransmission of an executed request: resend the cached
		// reply.
		if rec.lastReply != nil && req.Seq == rec.lastSeq {
			r.send(req.Client, rec.lastReply)
		}
		return
	}
	d := req.Digest()
	if !r.pendingSet[d] {
		r.pendingSet[d] = true
		r.pending = append(r.pending, req)
	}
	// Any replica holding unordered requests arms its progress timer:
	// if the primary does not order them in time, a view change starts.
	r.armProgressTimer()
	r.updateStats(func(*ReplicaStats) {})
	// The primary proposes eagerly: a ready batch must not wait for the
	// next BatchDelay tick.
	r.maybePropose()
}

// verifyRequest authenticates a request against the client key registry
// or, for reconfigurations, the controller key.
func (r *Replica) verifyRequest(req *Request) bool {
	if _, isReconfig := decodeReconfigOp(req.Op); isReconfig {
		return len(r.cfg.ControllerKey) == ed25519.PublicKeySize && req.Verify(r.cfg.ControllerKey)
	}
	pub, ok := r.cfg.ClientKeys[req.Client]
	if !ok {
		return false
	}
	return req.Verify(pub)
}

// maybePropose is the eager proposal path: it proposes immediately when
// a batch is full, or when nothing is in flight (so a lone request never
// waits out a BatchDelay tick). While the pipeline is busy, partial
// batches keep accumulating until the tick sweeps them via proposeAll —
// proposing every request the instant it arrives would degenerate into
// singleton batches and forfeit amortization.
func (r *Replica) maybePropose() {
	r.propose(false)
}

// proposeAll is the BatchDelay tick path: it drains pending requests into
// proposals regardless of batch occupancy, bounded only by the window and
// the pipeline depth.
func (r *Replica) proposeAll() {
	r.propose(true)
}

// propose starts consensus on pending batches. It keeps proposing —
// pipelining multiple consensus instances — while requests are pending,
// the checkpoint window has room, and fewer than PipelineDepth instances
// are in flight (proposed but not yet executed). Unless force is set,
// partial batches are proposed only into an idle pipeline.
func (r *Replica) propose(force bool) {
	if r.joining || r.inViewChange || !r.primary() {
		return
	}
	if r.cfg.Fault == FaultSilent {
		return
	}
	// A replica that just became primary may have executed past its own
	// proposal counter (it executed instances the old primary proposed);
	// new sequence numbers must start above everything executed.
	if r.seq < r.lastExec {
		r.seq = r.lastExec
	}
	depth := uint64(r.cfg.PipelineDepth)
	for len(r.pending) > 0 &&
		// Respect the window: do not run ahead of checkpointing.
		r.seq < r.lowWater+r.cfg.WindowSize &&
		// Respect the pipeline depth: bound optimistic work in flight.
		r.seq-r.lastExec < depth &&
		// Eager calls propose partial batches only when nothing is in
		// flight; the tick sweeps the rest.
		(force || len(r.pending) >= r.cfg.BatchSize || r.seq == r.lastExec) {
		n := len(r.pending)
		if n > r.cfg.BatchSize {
			n = r.cfg.BatchSize
		}
		batch := &Batch{Requests: append([]Request(nil), r.pending[:n]...)}
		r.pending = r.pending[n:]
		for i := range batch.Requests {
			delete(r.pendingSet, batch.Requests[i].Digest())
		}
		r.ins.batchOccupancy.Observe(int64(n))
		r.seq++
		seq := r.seq
		r.ins.pipelineInflight.Observe(int64(seq - r.lastExec))

		if r.cfg.Fault == FaultEquivocate {
			r.proposeEquivocating(seq, batch)
			return
		}
		pp := &Message{
			Type:        MsgPrePrepare,
			From:        r.cfg.ID,
			View:        r.view,
			SeqNo:       seq,
			Epoch:       r.membership.Epoch,
			Batch:       batch,
			BatchDigest: batch.Digest(),
		}
		r.broadcast(pp)
		r.acceptPrePrepare(pp) // the primary pre-prepares locally
	}
}

// proposeEquivocating is the Byzantine primary: it sends batch A to half
// the replicas and batch B to the other half. Correct replicas cannot
// gather prepare quorums for either, progress stalls, and the view change
// removes the primary — the behaviour the tests assert.
func (r *Replica) proposeEquivocating(seq uint64, batch *Batch) {
	alt := &Batch{} // conflicting empty proposal
	ppA := &Message{Type: MsgPrePrepare, View: r.view, SeqNo: seq,
		Epoch: r.membership.Epoch, Batch: batch, BatchDigest: batch.Digest()}
	ppB := &Message{Type: MsgPrePrepare, View: r.view, SeqNo: seq,
		Epoch: r.membership.Epoch, Batch: alt, BatchDigest: alt.Digest()}
	for i, id := range r.membership.Replicas {
		if id == r.cfg.ID {
			continue
		}
		if i%2 == 0 {
			r.send(id, ppA)
		} else {
			r.send(id, ppB)
		}
	}
}

// acceptPrePrepare validates and registers a proposal, then sends
// PREPARE.
func (r *Replica) acceptPrePrepare(pp *Message) {
	in := r.inst(pp.SeqNo)
	in.prePrepare = pp
	in.batch = pp.Batch
	in.digest = pp.BatchDigest
	if in.startedAt.IsZero() {
		in.startedAt = time.Now() //lazlint:allow wallclock(commit-latency metric start; never hashed, voted on or executed)
	}
	in.prepares[r.cfg.ID] = pp.BatchDigest
	// The primary's pre-prepare stands in for its prepare (PBFT's
	// prepared predicate: pre-prepare + 2f prepares from distinct
	// replicas).
	in.prepares[pp.From] = pp.BatchDigest
	if !r.primary() {
		prep := &Message{
			Type:        MsgPrepare,
			View:        pp.View,
			SeqNo:       pp.SeqNo,
			Epoch:       r.membership.Epoch,
			BatchDigest: pp.BatchDigest,
		}
		r.broadcast(prep)
	}
	r.checkPrepared(pp.SeqNo)
}

// onPrePrepare handles the primary's proposal.
func (r *Replica) onPrePrepare(msg *Message) {
	if r.joining || r.inViewChange || !r.fromMember(msg) {
		return
	}
	if msg.View != r.view || msg.From != r.membership.Primary(r.view) {
		return
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return
	}
	if msg.Batch == nil || msg.Batch.Digest() != msg.BatchDigest {
		r.cfg.Logf("replica %d: pre-prepare digest mismatch at seq %d", r.cfg.ID, msg.SeqNo)
		return
	}
	in := r.inst(msg.SeqNo)
	if in.prePrepare != nil {
		if in.digest != msg.BatchDigest {
			// Conflicting proposal in the same view: Byzantine primary.
			r.cfg.Logf("replica %d: conflicting pre-prepare at seq %d; starting view change", r.cfg.ID, msg.SeqNo)
			r.startViewChange(r.view + 1)
		}
		return
	}
	// Authenticate every request in the batch: a Byzantine primary must
	// not inject operations no client signed. The verify pool normally
	// resolved these before dispatch (verdicts ride on the message); the
	// cached fallback covers direct calls and evicted verdicts.
	for i := range msg.Batch.Requests {
		if !r.requestOK(msg, i) {
			r.cfg.Logf("replica %d: batch at seq %d carries unauthenticated request", r.cfg.ID, msg.SeqNo)
			return
		}
	}
	r.acceptPrePrepare(msg)
	// Ordered requests need no separate progress tracking.
	r.armProgressTimer()
}

// onPrepare counts prepare votes. A vote arriving before the pre-prepare
// is buffered together with the digest it voted for: tallying buffered
// votes blindly would let a Byzantine peer's votes for a *different*
// batch count toward this instance's quorum once the pre-prepare lands.
func (r *Replica) onPrepare(msg *Message) {
	if r.joining || !r.fromMember(msg) {
		return
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return
	}
	// Catch-up responder: a prepare for an instance we already executed
	// means the sender is rebuilding it — from a new-view re-proposal or
	// the stuck-instance retry in onProgressTimeout — and is missing
	// votes we counted long ago. Answer the sender directly with our
	// commit and prepare at the current view. The commit goes first and
	// the response is suppressed once we hold the sender's commit vote,
	// so two caught-up replicas cannot ping-pong responses at each other.
	if in, ok := r.log[msg.SeqNo]; ok && in.executed && in.digest == msg.BatchDigest {
		if _, seen := in.commits[msg.From]; !seen {
			base := Message{
				SeqNo:       msg.SeqNo,
				View:        r.view,
				Epoch:       r.membership.Epoch,
				BatchDigest: in.digest,
			}
			cm := base
			cm.Type = MsgCommit
			r.send(msg.From, &cm)
			pm := base
			pm.Type = MsgPrepare
			r.send(msg.From, &pm)
		}
		return
	}
	if r.inViewChange || msg.View != r.view {
		return
	}
	in := r.inst(msg.SeqNo)
	if in.prePrepare != nil && msg.BatchDigest != in.digest {
		return // vote for a different proposal
	}
	in.prepares[msg.From] = msg.BatchDigest
	r.checkPrepared(msg.SeqNo)
}

// countVotes tallies votes matching the instance's fixed digest. Only
// meaningful once the pre-prepare set in.digest.
func countVotes(votes map[transport.NodeID]Digest, digest Digest) int {
	n := 0
	for _, d := range votes {
		if d == digest {
			n++
		}
	}
	return n
}

// checkPrepared advances to the commit phase once 2f+1 replicas (self
// included) prepared the same digest.
func (r *Replica) checkPrepared(seq uint64) {
	in := r.inst(seq)
	if in.prepared || in.prePrepare == nil {
		return
	}
	if countVotes(in.prepares, in.digest) < r.membership.Quorum() {
		return
	}
	in.prepared = true
	in.commits[r.cfg.ID] = in.digest
	cm := &Message{
		Type:        MsgCommit,
		View:        r.view,
		SeqNo:       seq,
		Epoch:       r.membership.Epoch,
		BatchDigest: in.digest,
	}
	r.broadcast(cm)
	r.checkCommitted(seq)
}

// onCommit counts commit votes, buffering early votes with their digest
// exactly like onPrepare. Votes are tallied even mid-view-change: commit
// semantics here are digest-based (a committed digest is stable across
// views, so a matching vote never goes stale), and a replica that
// volunteered for a view change is exactly the one that needs racing
// catch-up votes to land — installNewView keeps same-digest tallies, so
// nothing collected here is thrown away.
func (r *Replica) onCommit(msg *Message) {
	if r.joining || !r.fromMember(msg) {
		return
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return
	}
	in := r.inst(msg.SeqNo)
	if in.prePrepare != nil && msg.BatchDigest != in.digest {
		return
	}
	in.commits[msg.From] = msg.BatchDigest
	r.checkCommitted(msg.SeqNo)
}

// checkCommitted executes once 2f+1 commits arrive for a prepared batch.
func (r *Replica) checkCommitted(seq uint64) {
	in := r.inst(seq)
	if in.committed || !in.prepared {
		return
	}
	if countVotes(in.commits, in.digest) < r.membership.Quorum() {
		return
	}
	in.committed = true
	r.executeReady()
}

// executeReady applies committed batches in sequence order.
func (r *Replica) executeReady() {
	for {
		next := r.lastExec + 1
		in, ok := r.log[next]
		if !ok || !in.committed || in.executed {
			break
		}
		in.executed = true
		r.lastExec = next
		for i := range in.batch.Requests {
			r.executeRequest(&in.batch.Requests[i])
			// Executed requests leave every replica's pending queue
			// (non-primaries hold them only to watch for progress).
			delete(r.pendingSet, in.batch.Requests[i].Digest())
		}
		r.compactPending()
		r.updateStats(func(s *ReplicaStats) { s.Executed++ })
		r.ins.executedBatches.Inc()
		if !in.startedAt.IsZero() {
			durUS := time.Since(in.startedAt).Microseconds() //lazlint:allow wallclock(commit-latency metric; observability only)
			r.ins.commitLatencyUS.Observe(durUS)
			r.trace.Emit(metrics.Event{
				Type: metrics.EvConsensusExecuted, Node: int64(r.cfg.ID),
				Seq: next, Epoch: r.membership.Epoch, View: r.view, DurUS: durUS,
			})
		}
		if r.lastExec%r.cfg.CheckpointInterval == 0 {
			r.takeCheckpoint(r.lastExec)
		}
	}
	// Progress was made: disarm, and if work remains start a fresh
	// timeout (PBFT resets the progress timer whenever execution
	// advances; without the reset, sustained load turns the timer into
	// a spurious view-change generator).
	r.disarmProgressTimer()
	if len(r.pending) > 0 {
		r.armProgressTimer()
	}
	// Execution freed pipeline slots (and possibly window room): refill.
	r.maybePropose()
}

// compactPending drops pending entries that executed (their digest left
// pendingSet) or were superseded by a later request from the same client.
func (r *Replica) compactPending() {
	kept := r.pending[:0]
	// Iterate by index: Digest() caches into the element, and a value
	// copy would throw the cache away every pass.
	for i := range r.pending {
		req := &r.pending[i]
		if !r.pendingSet[req.Digest()] {
			continue
		}
		if rec, ok := r.clients[req.Client]; ok && req.Seq <= rec.lastSeq {
			delete(r.pendingSet, req.Digest())
			continue
		}
		kept = append(kept, *req)
	}
	r.pending = kept
}

// executeRequest applies one operation and replies to its client. A
// request the replica already executed (retransmitted by the client and
// re-ordered, or re-proposed across a view change) is not applied twice.
func (r *Replica) executeRequest(req *Request) {
	if rec, ok := r.clients[req.Client]; ok && req.Seq <= rec.lastSeq {
		if rec.lastReply != nil && req.Seq == rec.lastSeq {
			r.send(req.Client, rec.lastReply)
		}
		return
	}
	var result []byte
	if op, isReconfig := decodeReconfigOp(req.Op); isReconfig {
		result = r.applyReconfig(op)
	} else {
		result = r.cfg.App.Execute(req.Op)
	}
	if r.cfg.Fault == FaultCorruptReply {
		result = append([]byte("CORRUPTED:"), result...)
	}
	reply := &Message{
		Type:        MsgReply,
		View:        r.view,
		Epoch:       r.membership.Epoch,
		ReplySeq:    req.Seq,
		ReplyClient: req.Client,
		Result:      result,
	}
	// Sign the reply so clients can tell a member's genuine vote from a
	// vote forged in its name. From must be set first: the signature
	// covers it, and send() would otherwise stamp it after signing.
	reply.From = r.cfg.ID
	reply.Sign(r.cfg.Key)
	rec, ok := r.clients[req.Client]
	if !ok {
		rec = &clientRecord{}
		r.clients[req.Client] = rec
	}
	rec.lastSeq = req.Seq
	rec.lastReply = reply
	r.send(req.Client, reply)
}

// applyReconfig executes an ordered membership change. The reply is an
// encoded ReconfigResult — a typed outcome, not a log string — so the
// control plane can classify it without scraping text.
func (r *Replica) applyReconfig(op ReconfigOp) []byte {
	var (
		next *Membership
		err  error
	)
	if op.Add {
		if len(op.PubKey) != ed25519.PublicKeySize {
			return ReconfigResult{Status: ReconfigInvalid, Detail: "bad public key"}.Encode()
		}
		next, err = r.membership.WithAdded(op.Replica, ed25519.PublicKey(op.PubKey))
	} else {
		next, err = r.membership.WithRemoved(op.Replica)
	}
	if err != nil {
		return ReconfigResult{Status: classifyReconfigErr(err), Detail: err.Error()}.Encode()
	}
	r.membership = next
	r.updateStats(func(s *ReplicaStats) { s.Reconfigs++ })
	r.ins.reconfigs.Inc()
	r.trace.Emit(metrics.Event{
		Type: metrics.EvReconfig, Node: int64(r.cfg.ID),
		Epoch: next.Epoch, Detail: fmt.Sprintf("members=%v", next.Replicas),
	})
	r.cfg.Logf("replica %d: epoch %d membership %v", r.cfg.ID, next.Epoch, next.Replicas)

	// Take an immediate checkpoint so peers that missed this instance can
	// fetch a state that already includes the new membership: the joiner
	// needs it after an ADD, and after a REMOVE it is the fastest signal
	// to any replica still at the old epoch (the vote carries the new
	// epoch, which triggers its state transfer).
	r.takeCheckpoint(r.lastExec)
	if !op.Add && op.Replica == r.cfg.ID {
		// This replica was removed: it stops participating (the control
		// plane will power it off). Entering joining mode silences it.
		r.joining = true
	}
	return ReconfigResult{Status: ReconfigApplied, Epoch: next.Epoch}.Encode()
}
