// Package bfttest provides a ready-made in-process BFT cluster for tests,
// examples and benchmarks: n replicas over an in-memory network, key
// management, clients, and a trusted controller for reconfigurations.
package bfttest

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// AppFactory builds one application instance per replica.
type AppFactory func(id transport.NodeID) bft.Application

// Options tune the cluster.
type Options struct {
	// N is the number of replicas (default 4).
	N int
	// Clients is the number of pre-registered client identities
	// (default 4).
	Clients int
	// CheckpointInterval overrides the replica default.
	CheckpointInterval uint64
	// BatchSize overrides the replica default.
	BatchSize int
	// BatchDelay overrides the replica default.
	BatchDelay time.Duration
	// PipelineDepth overrides the replica default (consensus instances
	// in flight).
	PipelineDepth int
	// VerifyWorkers overrides the replica default (signature-verification
	// pool size).
	VerifyWorkers int
	// ViewChangeTimeout overrides the replica default.
	ViewChangeTimeout time.Duration
	// NetConfig shapes the in-memory network.
	NetConfig transport.MemoryConfig
	// NetWrap, when set, wraps the in-memory network before replicas and
	// clients take endpoints from it — e.g. a netem layer imposing WAN
	// latency, loss and partitions. The wrapper owns shutdown of the
	// inner network.
	NetWrap func(*transport.Memory) transport.Network
	// AdaptiveTimeout switches replicas to RTT-tracking progress
	// timeouts (see bft.ReplicaConfig.AdaptiveTimeout).
	AdaptiveTimeout bool
	// Fault assigns Byzantine behaviour per replica (nil = all correct).
	Fault func(id transport.NodeID) bft.FaultMode
	// Metrics, when set, is shared by the network and every replica, so
	// one registry aggregates the whole cluster.
	Metrics *metrics.Registry
	// Trace, when set, receives every replica's protocol events.
	Trace *metrics.Tracer
}

// Cluster is a running in-process BFT deployment.
type Cluster struct {
	Net *transport.Memory
	// Wrapped is the network replicas and clients actually use: the
	// NetWrap result when set, otherwise Net itself.
	Wrapped    transport.Network
	Membership *bft.Membership
	Replicas   map[transport.NodeID]*bft.Replica
	Apps       map[transport.NodeID]bft.Application

	opts       Options
	appFactory AppFactory
	keys       map[transport.NodeID]ed25519.PrivateKey
	pubs       map[transport.NodeID]ed25519.PublicKey
	clientKeys map[transport.NodeID]ed25519.PublicKey
	clientPriv map[transport.NodeID]ed25519.PrivateKey
	ctrlPriv   ed25519.PrivateKey
	ctrlPub    ed25519.PublicKey
	started    bool
}

// Launch builds and starts a cluster running the given application.
func Launch(appFactory AppFactory, opts Options) (*Cluster, error) {
	if appFactory == nil {
		return nil, fmt.Errorf("bfttest: nil app factory")
	}
	if opts.N == 0 {
		opts.N = 4
	}
	if opts.Clients == 0 {
		opts.Clients = 4
	}
	if opts.NetConfig.Metrics == nil {
		opts.NetConfig.Metrics = opts.Metrics
	}
	c := &Cluster{
		Net:        transport.NewMemory(opts.NetConfig),
		Replicas:   make(map[transport.NodeID]*bft.Replica),
		Apps:       make(map[transport.NodeID]bft.Application),
		opts:       opts,
		appFactory: appFactory,
		keys:       make(map[transport.NodeID]ed25519.PrivateKey),
		pubs:       make(map[transport.NodeID]ed25519.PublicKey),
		clientKeys: make(map[transport.NodeID]ed25519.PublicKey),
		clientPriv: make(map[transport.NodeID]ed25519.PrivateKey),
	}
	c.Wrapped = c.Net
	if opts.NetWrap != nil {
		c.Wrapped = opts.NetWrap(c.Net)
	}
	var err error
	if c.ctrlPub, c.ctrlPriv, err = ed25519.GenerateKey(rand.Reader); err != nil {
		return nil, fmt.Errorf("bfttest: controller key: %w", err)
	}
	ids := make([]transport.NodeID, opts.N)
	for i := range ids {
		id := transport.NodeID(i)
		ids[i] = id
		if c.pubs[id], c.keys[id], err = ed25519.GenerateKey(rand.Reader); err != nil {
			return nil, fmt.Errorf("bfttest: replica key: %w", err)
		}
	}
	if c.Membership, err = bft.NewMembership(ids, c.pubs); err != nil {
		return nil, err
	}
	for i := 0; i < opts.Clients; i++ {
		id := transport.ClientIDBase + transport.NodeID(i)
		if c.clientKeys[id], c.clientPriv[id], err = ed25519.GenerateKey(rand.Reader); err != nil {
			return nil, fmt.Errorf("bfttest: client key: %w", err)
		}
	}
	for _, id := range ids {
		if _, err := c.AddReplica(id, false); err != nil {
			return nil, err
		}
	}
	for _, r := range c.Replicas {
		r.Start()
	}
	c.started = true
	return c, nil
}

// AddReplica creates (and if the cluster runs, starts) one replica;
// joining replicas bootstrap via state transfer after an ADD
// reconfiguration.
func (c *Cluster) AddReplica(id transport.NodeID, joining bool) (*bft.Replica, error) {
	if _, ok := c.keys[id]; !ok {
		pub, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("bfttest: key for %d: %w", id, err)
		}
		c.pubs[id], c.keys[id] = pub, priv
	}
	app := c.appFactory(id)
	var fault bft.FaultMode
	if c.opts.Fault != nil {
		fault = c.opts.Fault(id)
	}
	r, err := bft.NewReplica(bft.ReplicaConfig{
		ID:                 id,
		Key:                c.keys[id],
		Membership:         c.Membership,
		App:                app,
		Net:                c.Wrapped,
		ClientKeys:         c.clientKeys,
		ControllerKey:      c.ctrlPub,
		BatchSize:          c.opts.BatchSize,
		BatchDelay:         c.opts.BatchDelay,
		PipelineDepth:      c.opts.PipelineDepth,
		VerifyWorkers:      c.opts.VerifyWorkers,
		CheckpointInterval: c.opts.CheckpointInterval,
		ViewChangeTimeout:  c.opts.ViewChangeTimeout,
		AdaptiveTimeout:    c.opts.AdaptiveTimeout,
		Joining:            joining,
		Fault:              fault,
		Metrics:            c.opts.Metrics,
		Trace:              c.opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	c.Replicas[id] = r
	c.Apps[id] = app
	if c.started {
		r.Start()
	}
	return r, nil
}

// PublicKey returns a replica's public key (for ADD reconfigurations).
func (c *Cluster) PublicKey(id transport.NodeID) ed25519.PublicKey {
	return c.pubs[id]
}

// Client builds the i-th pre-registered client.
func (c *Cluster) Client(i int) (*bft.Client, error) {
	id := transport.ClientIDBase + transport.NodeID(i)
	priv, ok := c.clientPriv[id]
	if !ok {
		return nil, fmt.Errorf("bfttest: client %d not pre-registered", i)
	}
	return bft.NewClient(bft.ClientConfig{
		ID:             id,
		Key:            priv,
		Replicas:       c.Membership.Replicas,
		ReplicaKeys:    c.pubs,
		F:              c.Membership.F(),
		Net:            c.Wrapped,
		RequestTimeout: 500 * time.Millisecond,
		MaxAttempts:    12,
	})
}

// Controller builds the trusted controller client whose requests may
// carry reconfigurations.
func (c *Cluster) Controller() (*bft.Client, error) {
	return bft.NewClient(bft.ClientConfig{
		ID:             transport.ClientIDBase + 999,
		Key:            c.ctrlPriv,
		Replicas:       c.Membership.Replicas,
		ReplicaKeys:    c.pubs,
		F:              c.Membership.F(),
		Net:            c.Wrapped,
		RequestTimeout: 600 * time.Millisecond,
		MaxAttempts:    12,
	})
}

// NetStats returns the cluster network's transport counters (frames,
// bytes and per-cause drops) — useful for asserting that a scenario
// actually moved traffic, or for spotting silent drops in benchmarks.
func (c *Cluster) NetStats() transport.Stats { return c.Net.Stats() }

// Stop shuts every replica and the network down. Closing Wrapped
// closes the inner network too (wrappers own inner shutdown), and when
// no wrapper is installed Wrapped is the inner network itself.
func (c *Cluster) Stop() {
	for _, r := range c.Replicas {
		r.Stop()
	}
	c.Wrapped.Close()
}
