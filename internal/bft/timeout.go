package bft

import "time"

// timeoutBackoffCap bounds the exponential backoff shift: 2^6 over the
// adaptive base already exceeds any sane TimeoutMax, and an unbounded
// shift would overflow time.Duration.
const timeoutBackoffCap = 6

// retransmitInstanceCap and retransmitRequestCap bound what one progress
// timeout re-sends: the oldest stuck instances' votes and the oldest
// pending requests (forwarded to the primary). Oldest-first, because
// in-order execution means only the head of the line blocks progress.
const (
	retransmitInstanceCap = 8
	retransmitRequestCap  = 16
)

// timeoutCtl adapts the progress/view-change timer to the network the
// replica actually observes. Static timeouts lose both ways on a WAN:
// tuned for the LAN they fire spuriously on every latency spike (each
// spurious view change costs a full round of quorum assembly), tuned for
// the WAN they stretch fault detection on fast networks. The controller
// keeps Jacobson/Karn-style smoothed RTT estimates fed from commit
// latency (propose→execute is the consensus round trip — exactly what
// the progress timer waits on), sets the timeout to srtt + 4·rttvar
// (scaled; see timeout), doubles it on each consecutive unproductive
// timeout, and decays the backoff as execution makes progress again.
//
// Disabled (the default), every method is inert and timeout() returns
// the static base — byte-for-byte the pre-adaptive behaviour, which the
// perf harness uses as the comparison baseline.
type timeoutCtl struct {
	enabled        bool
	base, min, max time.Duration
	srtt, rttvar   time.Duration
	backoff        uint
}

func newTimeoutCtl(enabled bool, base, min, max time.Duration) timeoutCtl {
	return timeoutCtl{enabled: enabled, base: base, min: min, max: max}
}

// observe feeds one measured consensus round trip (RFC 6298 smoothing:
// srtt ← 7/8·srtt + 1/8·rtt, rttvar ← 3/4·rttvar + 1/4·|srtt−rtt|).
func (tc *timeoutCtl) observe(rtt time.Duration) {
	if !tc.enabled || rtt <= 0 {
		return
	}
	if tc.srtt == 0 {
		tc.srtt = rtt
		tc.rttvar = rtt / 2
		return
	}
	diff := tc.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	tc.rttvar = (3*tc.rttvar + diff) / 4
	tc.srtt = (7*tc.srtt + rtt) / 8
}

// progress decays one backoff level: execution advanced, so the last
// timeout's suspicion is (partially) withdrawn. Stepwise rather than a
// full reset — one lucky commit mid-partition must not collapse the
// timeout back to a value the network cannot meet.
func (tc *timeoutCtl) progress() {
	if tc.enabled && tc.backoff > 0 {
		tc.backoff--
	}
}

// onTimeout doubles the next timeout: either the network is slower than
// the estimate or a view change is in progress, and both want patience.
// Returns true when the backoff level actually rose (for counters).
func (tc *timeoutCtl) onTimeout() bool {
	if !tc.enabled || tc.backoff >= timeoutBackoffCap {
		return false
	}
	tc.backoff++
	return true
}

// timeout returns the current progress-timer duration. The adaptive base
// is 8·(srtt + 4·rttvar): srtt measures one whole consensus instance
// (propose→execute), and under pipelined load a request legitimately
// waits several instances deep before its batch even proposes, so the
// RTO-style srtt+4·rttvar alone would declare the primary faulty under
// every burst. The multiplier buys burst headroom while still tracking
// the measured network, and the clamp keeps pathological estimates
// inside [min, max].
func (tc *timeoutCtl) timeout() time.Duration {
	if !tc.enabled {
		return tc.base
	}
	d := tc.base
	if tc.srtt > 0 {
		d = 8 * (tc.srtt + 4*tc.rttvar)
		if d < tc.min {
			d = tc.min
		}
	}
	d <<= tc.backoff
	if d > tc.max {
		d = tc.max
	}
	if d < tc.min {
		d = tc.min
	}
	return d
}
