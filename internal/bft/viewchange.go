package bft

import (
	"sort"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// armProgressTimer (re)arms the request-progress timer. When it fires
// before pending work executes, the replica suspects the primary and
// starts a view change (PBFT's liveness mechanism).
func (r *Replica) armProgressTimer() {
	if r.vcArmed {
		return
	}
	r.vcTimer.Reset(r.cfg.ViewChangeTimeout)
	r.vcArmed = true
}

func (r *Replica) disarmProgressTimer() {
	if !r.vcArmed {
		return
	}
	if !r.vcTimer.Stop() {
		select {
		case <-r.vcTimer.C:
		default:
		}
	}
	r.vcArmed = false
}

// onProgressTimeout fires when ordered progress stalled.
func (r *Replica) onProgressTimeout() {
	if r.joining {
		// Joining replicas use the timer to retry state transfer.
		r.requestStateTransfer()
		return
	}
	if r.cfg.Fault == FaultSilent {
		return
	}
	if r.epochProbe > r.membership.Epoch {
		// A member advertised a higher epoch and our state transfer has
		// not completed: keep retrying it alongside the view change.
		r.requestStateTransfer()
	}
	// Re-drive catch-up before escalating: re-broadcast our votes for
	// instances we hold but cannot execute yet. Peers that executed them
	// answer a stale prepare directly with their own votes (the catch-up
	// responder in onPrepare), which gives a straggler a retransmission
	// path that does not depend on assembling f+1 view-change volunteers
	// it may never get — once the rest of the group drained its pending
	// queue, nobody else's timer is running.
	var stuck []uint64
	for seq, in := range r.log {
		if seq > r.lastExec && in.prePrepare != nil && !in.executed {
			stuck = append(stuck, seq)
		}
	}
	sort.Slice(stuck, func(i, j int) bool { return stuck[i] < stuck[j] })
	for _, seq := range stuck {
		in := r.log[seq]
		pm := &Message{
			Type:        MsgPrepare,
			View:        r.view,
			SeqNo:       seq,
			Epoch:       r.membership.Epoch,
			BatchDigest: in.digest,
		}
		r.broadcast(pm)
		if in.prepared {
			cm := *pm
			cm.Type = MsgCommit
			r.broadcast(&cm)
		}
	}
	// Escalate past an incomplete view change: if we already volunteered
	// for a higher view and it did not complete within the timeout, move
	// one further (PBFT's exponential regency escalation, linearized).
	next := r.view + 1
	if r.vcTarget >= next {
		next = r.vcTarget + 1
	}
	r.startViewChange(next)
}

// startViewChange suspects the current primary and volunteers for
// newView: it broadcasts a signed VIEW-CHANGE carrying the last stable
// checkpoint and every prepared batch above it, so the new primary can
// re-propose them. Executed instances are included too (PBFT carries
// everything above the stable checkpoint): a peer that missed the commit
// — e.g. it was mid-state-transfer when a reconfiguration batch executed
// — can only obtain it through the new view's re-proposals, and dropping
// executed proofs would instead re-propose a null batch at that sequence
// number, permanently splitting the group across epochs.
func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view || r.joining {
		return
	}
	r.inViewChange = true
	if newView > r.vcTarget {
		r.vcTarget = newView
	}
	var proofs []PreparedProof
	for seq, in := range r.log {
		if seq > r.lowWater && in.prepared && in.prePrepare != nil {
			proofs = append(proofs, PreparedProof{
				View:        in.prePrepare.View,
				SeqNo:       seq,
				BatchDigest: in.digest,
				Batch:       in.batch,
			})
		}
	}
	sort.Slice(proofs, func(i, j int) bool { return proofs[i].SeqNo < proofs[j].SeqNo })
	vc := &Message{
		Type:       MsgViewChange,
		Epoch:      r.membership.Epoch,
		NewView:    newView,
		LastStable: r.lowWater,
		Prepared:   proofs,
	}
	vc.From = r.cfg.ID
	vc.Sign(r.cfg.Key)
	r.recordViewChange(vc)
	r.broadcast(vc)
	r.updateStats(func(s *ReplicaStats) { s.ViewChanges++ })
	r.ins.viewChanges.Inc()
	r.trace.Emit(metrics.Event{
		Type: metrics.EvViewChange, Node: int64(r.cfg.ID),
		View: newView, Epoch: r.membership.Epoch, Seq: r.lowWater,
	})
	// If this view change does not complete, escalate to the next view.
	r.vcArmed = false
	r.armProgressTimer()
	r.maybeNewView(newView)
}

func (r *Replica) recordViewChange(vc *Message) {
	byFrom, ok := r.viewChanges[vc.NewView]
	if !ok {
		byFrom = make(map[transport.NodeID]*Message)
		r.viewChanges[vc.NewView] = byFrom
	}
	byFrom[vc.From] = vc
}

// onViewChange handles another replica's suspicion.
func (r *Replica) onViewChange(msg *Message) {
	if r.joining || !r.fromMember(msg) || !r.verifySigned(msg) {
		return
	}
	if msg.NewView <= r.view {
		return
	}
	r.recordViewChange(msg)
	// Liveness boost (PBFT §4.5.2): if f+1 replicas already moved to a
	// higher view, join the smallest of them even without a timeout.
	if !r.inViewChange {
		distinct := make(map[transport.NodeID]uint64)
		for nv, byFrom := range r.viewChanges {
			if nv <= r.view {
				continue
			}
			for from := range byFrom {
				if cur, ok := distinct[from]; !ok || nv < cur {
					distinct[from] = nv
				}
			}
		}
		if len(distinct) > r.membership.F() {
			smallest := uint64(0)
			for _, nv := range distinct {
				if smallest == 0 || nv < smallest {
					smallest = nv
				}
			}
			r.startViewChange(smallest)
			return
		}
	}
	r.maybeNewView(msg.NewView)
}

// maybeNewView lets the would-be primary of newView assemble NEW-VIEW
// once a quorum of view changes arrived.
func (r *Replica) maybeNewView(newView uint64) {
	if r.membership.Primary(newView) != r.cfg.ID || newView <= r.view {
		return
	}
	byFrom := r.viewChanges[newView]
	if len(byFrom) < r.membership.Quorum() {
		return
	}
	if r.cfg.Fault == FaultSilent {
		return
	}
	vcs := make([]Message, 0, len(byFrom))
	for _, vc := range byFrom {
		vcs = append(vcs, *vc)
	}
	sort.Slice(vcs, func(i, j int) bool { return vcs[i].From < vcs[j].From })
	prePrepares := buildNewViewProposals(newView, r.membership.Epoch, vcs)
	nv := &Message{
		Type:        MsgNewView,
		NewView:     newView,
		Epoch:       r.membership.Epoch,
		NewViewMsgs: vcs,
		PrePrepares: prePrepares,
	}
	nv.From = r.cfg.ID
	nv.Sign(r.cfg.Key)
	r.broadcast(nv)
	r.installNewView(newView, prePrepares, maxStable(vcs))
}

// buildNewViewProposals computes the deterministic set O of re-proposals
// from a quorum of view changes: for every sequence number above the
// maximum stable checkpoint for which some view change carries a prepared
// proof, re-propose the proof from the highest view; gaps up to the
// largest such sequence number are filled with null (empty) batches.
func buildNewViewProposals(newView, epoch uint64, vcs []Message) []Message {
	stable := maxStable(vcs)
	best := make(map[uint64]PreparedProof)
	maxSeq := stable
	for _, vc := range vcs {
		for _, p := range vc.Prepared {
			if p.SeqNo <= stable {
				continue
			}
			if cur, ok := best[p.SeqNo]; !ok || p.View > cur.View {
				best[p.SeqNo] = p
			}
			if p.SeqNo > maxSeq {
				maxSeq = p.SeqNo
			}
		}
	}
	var out []Message
	for seq := stable + 1; seq <= maxSeq; seq++ {
		var batch *Batch
		var digest Digest
		if p, ok := best[seq]; ok {
			batch = p.Batch
			digest = p.BatchDigest
		} else {
			batch = &Batch{}
			digest = batch.Digest()
		}
		out = append(out, Message{
			Type:        MsgPrePrepare,
			View:        newView,
			SeqNo:       seq,
			Epoch:       epoch,
			Batch:       batch,
			BatchDigest: digest,
		})
	}
	return out
}

func maxStable(vcs []Message) uint64 {
	var out uint64
	for _, vc := range vcs {
		if vc.LastStable > out {
			out = vc.LastStable
		}
	}
	return out
}

// onNewView validates the new primary's NEW-VIEW and installs the view.
func (r *Replica) onNewView(msg *Message) {
	if r.joining || msg.NewView <= r.view {
		return
	}
	if msg.From != r.membership.Primary(msg.NewView) || !r.verifySigned(msg) {
		return
	}
	// Verify the quorum of view changes it carries.
	if len(msg.NewViewMsgs) < r.membership.Quorum() {
		return
	}
	seen := make(map[transport.NodeID]bool)
	for i := range msg.NewViewMsgs {
		vc := &msg.NewViewMsgs[i]
		if vc.Type != MsgViewChange || vc.NewView != msg.NewView || seen[vc.From] {
			return
		}
		pub, ok := r.membership.Keys[vc.From]
		if !ok || !vc.VerifySig(pub) {
			return
		}
		seen[vc.From] = true
	}
	// Recompute O and require it to match what the primary proposed.
	want := buildNewViewProposals(msg.NewView, r.membership.Epoch, msg.NewViewMsgs)
	if len(want) != len(msg.PrePrepares) {
		return
	}
	for i := range want {
		got := msg.PrePrepares[i]
		if got.SeqNo != want[i].SeqNo || got.BatchDigest != want[i].BatchDigest ||
			got.View != msg.NewView || got.Batch == nil || got.Batch.Digest() != got.BatchDigest {
			return
		}
		// Authenticate the re-proposed requests. In the honest case every
		// request already verified under the old view and this collapses to
		// verdict-cache hits; it only costs signature checks when the view
		// change carries batches we never saw.
		if !r.verifyBatchCached(msg.PrePrepares[i].Batch) {
			return
		}
	}
	r.installNewView(msg.NewView, msg.PrePrepares, maxStable(msg.NewViewMsgs))
}

// installNewView enters the view and processes the re-proposals.
func (r *Replica) installNewView(newView uint64, prePrepares []Message, stable uint64) {
	r.view = newView
	r.inViewChange = false
	if r.vcTarget < newView {
		r.vcTarget = newView
	}
	for nv := range r.viewChanges {
		if nv <= newView {
			delete(r.viewChanges, nv)
		}
	}
	// Reconcile the log with O rather than dropping everything un-executed:
	// an in-flight instance whose digest matches its re-proposal keeps its
	// vote tallies (votes are digest-keyed, so votes that raced ahead of
	// our NEW-VIEW — peers install the view in no particular order — stay
	// valid), as do vote-only buffers with no pre-prepare yet. Only
	// proposals superseded by O (different digest, or not re-proposed at
	// all) are discarded. Wiping matching instances here is what used to
	// strand stragglers: a replica that missed a commit round lost the
	// buffered votes with every view change and could never assemble a
	// commit quorum again.
	proposed := make(map[uint64]Digest, len(prePrepares))
	for i := range prePrepares {
		proposed[prePrepares[i].SeqNo] = prePrepares[i].BatchDigest
	}
	for seq, in := range r.log {
		if seq <= r.lastExec || in.prePrepare == nil {
			continue
		}
		if d, ok := proposed[seq]; !ok || in.digest != d {
			delete(r.log, seq)
		}
	}
	maxSeq := stable
	for i := range prePrepares {
		pp := prePrepares[i]
		if pp.SeqNo > maxSeq {
			maxSeq = pp.SeqNo
		}
		// An instance we already prepared (usually: already executed) in an
		// earlier view needs its commit vote RE-ANNOUNCED under the new
		// view. acceptPrePrepare re-broadcasts our prepare, but
		// checkPrepared early-returns on in.prepared and never resends the
		// commit — and a peer that missed the original commit round can
		// only assemble a commit quorum from votes sent after this
		// re-proposal. Without the re-announcement the straggler re-prepares
		// but holds a single commit vote forever: it cannot execute, its
		// progress timer keeps firing, and the group livelocks in a
		// view-change storm.
		reannounce := false
		if in, ok := r.log[pp.SeqNo]; ok && in.prepared && in.digest == pp.BatchDigest {
			reannounce = true
		}
		ppCopy := pp
		// The new primary implicitly prepares its re-proposals.
		ppCopy.From = r.membership.Primary(newView)
		r.acceptPrePrepare(&ppCopy)
		if reannounce {
			cm := &Message{
				Type:        MsgCommit,
				View:        newView,
				SeqNo:       pp.SeqNo,
				Epoch:       r.membership.Epoch,
				BatchDigest: pp.BatchDigest,
			}
			r.broadcast(cm)
		}
		// Kept tallies (or votes buffered while we were mid-view-change)
		// may already complete the instance; checkPrepared's early return
		// skips this check for instances that were prepared coming in.
		r.checkCommitted(pp.SeqNo)
	}
	if r.seq < maxSeq {
		r.seq = maxSeq
	}
	if stable > r.lastExec {
		// The group's stable state is ahead of us.
		r.requestStateTransfer()
	}
	r.disarmProgressTimer()
	if len(r.pending) > 0 {
		r.armProgressTimer()
	}
	r.updateStats(func(*ReplicaStats) {})
	r.trace.Emit(metrics.Event{
		Type: metrics.EvViewAdopt, Node: int64(r.cfg.ID),
		View: newView, Epoch: r.membership.Epoch, Seq: r.lastExec,
	})
	r.cfg.Logf("replica %d: installed view %d (primary %d)", r.cfg.ID, newView, r.membership.Primary(newView))
	// If we are the new primary and requests queued up during the view
	// change, propose now rather than waiting for the batch tick.
	r.maybePropose()
}
