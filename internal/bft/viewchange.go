package bft

import (
	"sort"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// armProgressTimer (re)arms the request-progress timer. When it fires
// before pending work executes, the replica suspects the primary and
// starts a view change (PBFT's liveness mechanism).
func (r *Replica) armProgressTimer() {
	if r.vcArmed {
		return
	}
	r.vcTimer.Reset(r.toctl.timeout())
	r.vcArmed = true
}

func (r *Replica) disarmProgressTimer() {
	if !r.vcArmed {
		return
	}
	if !r.vcTimer.Stop() {
		select {
		case <-r.vcTimer.C:
		default:
		}
	}
	r.vcArmed = false
}

// onProgressTimeout fires when ordered progress stalled.
func (r *Replica) onProgressTimeout() {
	if r.joining {
		// Joining replicas use the timer to retry state transfer.
		r.requestStateTransfer()
		return
	}
	if r.cfg.Fault == FaultSilent {
		return
	}
	// The timer fired unproductively: back the next one off (adaptive
	// mode) so a network merely slower than the estimate gets a longer
	// second chance before the next escalation.
	r.ins.progressTimeouts.Inc()
	if r.toctl.onTimeout() {
		r.ins.timeoutBackoffs.Inc()
	}
	if r.epochProbe > r.membership.Epoch {
		// A member advertised a higher epoch and our state transfer has
		// not completed: keep retrying it alongside the view change.
		r.requestStateTransfer()
	}
	// A checkpoint of ours that never stabilized means our proposal
	// window may be jammed: re-advertise the vote. Peers whose stable
	// point is ahead answer with their own (onCheckpoint), re-supplying
	// the quorum votes we lost.
	if r.lastCkptVote != nil && r.lastCkptVote.SeqNo > r.lowWater {
		r.broadcast(r.lastCkptVote)
	}
	// Re-drive catch-up before escalating: re-broadcast our votes for
	// instances we hold but cannot execute yet. Peers that executed them
	// answer a stale prepare directly with their own votes (the catch-up
	// responder in onPrepare), which gives a straggler a retransmission
	// path that does not depend on assembling f+1 view-change volunteers
	// it may never get — once the rest of the group drained its pending
	// queue, nobody else's timer is running.
	var stuck []uint64
	for seq, in := range r.log {
		if seq > r.lastExec && in.prePrepare != nil && !in.executed {
			stuck = append(stuck, seq)
		}
	}
	sort.Slice(stuck, func(i, j int) bool { return stuck[i] < stuck[j] })
	// Bounded: each entry re-broadcast here costs up to two n-wide
	// fan-outs, and a deep pipeline stalled by a partition could hold
	// WindowSize instances. Retransmitting them all would flood the very
	// link that is struggling; the oldest few are the ones blocking
	// in-order execution, so they carry all the healing power anyway.
	if len(stuck) > retransmitInstanceCap {
		stuck = stuck[:retransmitInstanceCap]
	}
	for _, seq := range stuck {
		in := r.log[seq]
		r.ins.retransmitVotes.Inc()
		pm := &Message{
			Type:        MsgPrepare,
			From:        r.cfg.ID,
			View:        r.view,
			SeqNo:       seq,
			Epoch:       r.membership.Epoch,
			BatchDigest: in.digest,
		}
		pm.Sign(r.cfg.Key)
		r.broadcast(pm)
		if in.prepared {
			cm := *pm
			cm.Type = MsgCommit
			cm.Sig = nil // commit votes are unsigned
			r.broadcast(&cm)
		}
	}
	// Re-forward the oldest pending (never-ordered) requests to the
	// current primary. A request a backup holds can sit unordered for
	// benign reasons on a lossy network — the client's frame to the
	// primary was dropped while ours arrived — and without forwarding,
	// the only retransmission path is the client's own retry, which on a
	// WAN round trip costs far more than a replica-to-primary hop.
	// Requests self-authenticate (client-signed), so the primary treats a
	// forwarded copy exactly like a direct submission. Bounded like the
	// vote retransmission, and pointless when we are the primary.
	if primary := r.membership.Primary(r.view); primary != r.cfg.ID {
		n := len(r.pending)
		if n > retransmitRequestCap {
			n = retransmitRequestCap
		}
		for i := 0; i < n; i++ {
			req := r.pending[i]
			r.send(primary, &Message{Type: MsgRequest, Request: &req})
			r.ins.requestForwards.Inc()
		}
	}
	// Escalate past an incomplete view change: if we already volunteered
	// for a higher view and it did not complete within the timeout, move
	// one further (PBFT's exponential regency escalation, linearized).
	next := r.view + 1
	if r.vcTarget >= next {
		next = r.vcTarget + 1
	}
	r.startViewChange(next)
}

// startViewChange suspects the current primary and volunteers for
// newView: it broadcasts a signed VIEW-CHANGE carrying the last stable
// checkpoint and every prepared batch above it, so the new primary can
// re-propose them. Executed instances are included too (PBFT carries
// everything above the stable checkpoint): a peer that missed the commit
// — e.g. it was mid-state-transfer when a reconfiguration batch executed
// — can only obtain it through the new view's re-proposals, and dropping
// executed proofs would instead re-propose a null batch at that sequence
// number, permanently splitting the group across epochs.
func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view || r.joining {
		return
	}
	r.inViewChange = true
	if newView > r.vcTarget {
		r.vcTarget = newView
	}
	var proofs []PreparedProof
	for seq, in := range r.log {
		if seq > r.lowWater && in.prepared && in.prePrepare != nil {
			if in.cert != nil {
				proofs = append(proofs, *in.cert)
				continue
			}
			// No certificate on hand (the instance prepared through
			// catch-up votes from mixed views). Carried anyway: honest
			// validators will discard it, but if the batch committed
			// anywhere, some honest replica holds the full certificate.
			proofs = append(proofs, PreparedProof{
				View:        in.prePrepare.View,
				SeqNo:       seq,
				BatchDigest: in.digest,
				Batch:       in.batch,
			})
		}
	}
	sort.Slice(proofs, func(i, j int) bool { return proofs[i].SeqNo < proofs[j].SeqNo })
	vc := &Message{
		Type:       MsgViewChange,
		Epoch:      r.membership.Epoch,
		NewView:    newView,
		LastStable: r.lowWater,
		Prepared:   proofs,
	}
	vc.From = r.cfg.ID
	vc.Sign(r.cfg.Key)
	r.recordViewChange(vc)
	r.broadcast(vc)
	r.updateStats(func(s *ReplicaStats) { s.ViewChanges++ })
	r.ins.viewChanges.Inc()
	r.trace.Emit(metrics.Event{
		Type: metrics.EvViewChange, Node: int64(r.cfg.ID),
		View: newView, Epoch: r.membership.Epoch, Seq: r.lowWater,
	})
	// If this view change does not complete, escalate to the next view.
	r.vcArmed = false
	r.armProgressTimer()
	r.maybeNewView(newView)
}

// vcTrackCap bounds how many distinct future views accumulate vote
// tables at once. NewView is attacker-chosen: without a cap, one
// Byzantine member spraying view-change votes for ever-higher views
// allocates a map per view forever. Honest escalation concentrates on
// the few views just above the current one, so under pressure we keep
// the *lowest* tracked views — the ones that can actually be installed
// next — and shed the farthest-future ones.
const vcTrackCap = 32

func (r *Replica) recordViewChange(vc *Message) {
	byFrom, ok := r.viewChanges[vc.NewView]
	if !ok {
		if len(r.viewChanges) >= vcTrackCap {
			var maxNV uint64
			for nv := range r.viewChanges {
				if nv > maxNV {
					maxNV = nv
				}
			}
			// Our own vote must always land (dropping it would stall our
			// own escalation); anyone else's vote for the farthest view
			// yet is the one shed.
			if vc.NewView >= maxNV && vc.From != r.cfg.ID {
				return
			}
			delete(r.viewChanges, maxNV)
		}
		byFrom = make(map[transport.NodeID]*Message)
		r.viewChanges[vc.NewView] = byFrom
	}
	byFrom[vc.From] = vc
}

// onViewChange handles another replica's suspicion.
func (r *Replica) onViewChange(msg *Message) {
	if r.joining || !r.fromMember(msg) || !r.verifySigned(msg) {
		return
	}
	// Straggler rescue, second channel: VIEW-CHANGE advertises LastStable,
	// and during the stall a window-jammed replica causes, view changes
	// are the one message type guaranteed to keep flowing — every honest
	// replica's progress timer fires. Answering here (same rule as
	// onCheckpoint: only senders strictly behind our stable point) heals
	// the jam within one timeout round instead of waiting for checkpoint
	// re-advertisement to find an up-to-date peer.
	if msg.Epoch == r.membership.Epoch && msg.LastStable < r.lowWater && r.lastCkptVote != nil {
		r.send(msg.From, r.lastCkptVote)
	}
	if msg.NewView <= r.view {
		return
	}
	// Epoch freshness: a view change signed in an earlier membership
	// configuration must not count toward this epoch's quorum — replayed
	// stale view changes could otherwise assemble a NEW-VIEW whose
	// proofs predate a reconfiguration.
	if msg.Epoch != r.membership.Epoch {
		return
	}
	r.recordViewChange(msg)
	// Liveness boost (PBFT §4.5.2): if f+1 replicas already moved to a
	// higher view, join the smallest of them even without a timeout.
	if !r.inViewChange {
		distinct := make(map[transport.NodeID]uint64)
		for nv, byFrom := range r.viewChanges {
			if nv <= r.view {
				continue
			}
			for from := range byFrom {
				if cur, ok := distinct[from]; !ok || nv < cur {
					distinct[from] = nv
				}
			}
		}
		if len(distinct) > r.membership.F() {
			smallest := uint64(0)
			for _, nv := range distinct {
				if smallest == 0 || nv < smallest {
					smallest = nv
				}
			}
			r.startViewChange(smallest)
			return
		}
	}
	r.maybeNewView(msg.NewView)
}

// maybeNewView lets the would-be primary of newView assemble NEW-VIEW
// once a quorum of view changes arrived.
func (r *Replica) maybeNewView(newView uint64) {
	if r.membership.Primary(newView) != r.cfg.ID || newView <= r.view {
		return
	}
	byFrom := r.viewChanges[newView]
	if r.cfg.Fault == FaultSilent {
		return
	}
	// Only view changes from the current epoch count: stale recorded
	// ones (from before a reconfiguration executed) would make peers
	// reject the whole NEW-VIEW.
	vcs := make([]Message, 0, len(byFrom))
	for _, vc := range byFrom {
		if vc.Epoch == r.membership.Epoch {
			vcs = append(vcs, *vc)
		}
	}
	if len(vcs) < r.membership.Quorum() {
		return
	}
	sort.Slice(vcs, func(i, j int) bool { return vcs[i].From < vcs[j].From })
	prePrepares := buildNewViewProposals(newView, r.membership.Epoch, vcs, r.membership)
	// Sign each re-proposal: peers install these as the instances'
	// pre-prepares, and unsigned ones could never anchor the prepared
	// certificates of later view changes.
	for i := range prePrepares {
		prePrepares[i].From = r.cfg.ID
		prePrepares[i].Sign(r.cfg.Key)
	}
	nv := &Message{
		Type:        MsgNewView,
		NewView:     newView,
		Epoch:       r.membership.Epoch,
		NewViewMsgs: vcs,
		PrePrepares: prePrepares,
	}
	nv.From = r.cfg.ID
	nv.Sign(r.cfg.Key)
	r.broadcast(nv)
	r.installNewView(newView, prePrepares, maxStable(vcs))
}

// buildNewViewProposals computes the deterministic set O of re-proposals
// from a quorum of view changes: for every sequence number above the
// maximum stable checkpoint for which some view change carries a VALID
// prepared proof, re-propose the proof from the highest view; gaps up to
// the largest such sequence number are filled with null (empty) batches.
// Proof validity is certificate-grade (validPreparedProof): the proof's
// own word is worthless, since any single Byzantine member could
// otherwise fabricate a high-view proof binding an arbitrary batch —
// or a null one — to a sequence number honest replicas already executed
// differently.
func buildNewViewProposals(newView, epoch uint64, vcs []Message, mem *Membership) []Message {
	stable := maxStable(vcs)
	best := make(map[uint64]PreparedProof)
	maxSeq := stable
	for _, vc := range vcs {
		for i := range vc.Prepared {
			p := vc.Prepared[i]
			if p.SeqNo <= stable {
				continue
			}
			if !validPreparedProof(&p, mem) {
				continue
			}
			if cur, ok := best[p.SeqNo]; !ok || p.View > cur.View {
				best[p.SeqNo] = p
			}
			if p.SeqNo > maxSeq {
				maxSeq = p.SeqNo
			}
		}
	}
	var out []Message
	for seq := stable + 1; seq <= maxSeq; seq++ {
		var batch *Batch
		var digest Digest
		if p, ok := best[seq]; ok {
			batch = p.Batch
			digest = p.BatchDigest
		} else {
			batch = &Batch{}
			digest = batch.Digest()
		}
		out = append(out, Message{
			Type:        MsgPrePrepare,
			View:        newView,
			SeqNo:       seq,
			Epoch:       epoch,
			Batch:       batch,
			BatchDigest: digest,
		})
	}
	return out
}

// validPreparedProof checks a view change's prepared claim against its
// embedded certificate: the batch must match the claimed digest, the
// pre-prepare must be the claimed view's primary's signed proposal for
// exactly this (view, seq, digest), and quorum-1 distinct non-primary
// members (2f at n=3f+1; one more during the reconfiguration window's
// n=3f+2) must have signed matching prepares — the primary's pre-prepare
// is its own vote, so the certificate proves a full prepare quorum.
// Counting is lenient — unknown or invalid prepares are skipped, not
// fatal — so a Byzantine sender cannot poison an otherwise-sufficient
// certificate by appending garbage.
func validPreparedProof(p *PreparedProof, mem *Membership) bool {
	if p.Batch == nil || p.Batch.Digest() != p.BatchDigest {
		return false
	}
	pp := p.PrePrepare
	if pp == nil || pp.Type != MsgPrePrepare || pp.View != p.View ||
		pp.SeqNo != p.SeqNo || pp.BatchDigest != p.BatchDigest {
		return false
	}
	primary := mem.Primary(p.View)
	pub, ok := mem.Keys[primary]
	if !ok || pp.From != primary || !pp.VerifySig(pub) {
		return false
	}
	distinct := make(map[transport.NodeID]bool)
	for i := range p.Prepares {
		pm := &p.Prepares[i]
		if pm.Type != MsgPrepare || pm.View != p.View ||
			pm.SeqNo != p.SeqNo || pm.BatchDigest != p.BatchDigest {
			continue
		}
		if pm.From == primary || distinct[pm.From] {
			continue
		}
		key, isMember := mem.Keys[pm.From]
		if !isMember || !pm.VerifySig(key) {
			continue
		}
		distinct[pm.From] = true
	}
	return len(distinct) >= mem.Quorum()-1
}

// preparedCert snapshots the prepared certificate for an instance at the
// moment its prepared predicate fires: the signed pre-prepare plus every
// signed prepare from non-primary members matching the instance's view
// and digest, in deterministic (sender) order. A same-view prepare
// quorum always yields at least quorum-1 such prepares — every voter
// besides the primary contributed a signed message (the primary's vote
// is its pre-prepare, and our own prepare is recorded when cast).
func (r *Replica) preparedCert(seq uint64, in *instance) *PreparedProof {
	if in.prePrepare == nil {
		return nil
	}
	proof := &PreparedProof{
		View:        in.prePrepare.View,
		SeqNo:       seq,
		BatchDigest: in.digest,
		Batch:       in.batch,
		PrePrepare:  in.prePrepare,
	}
	primary := r.membership.Primary(in.prePrepare.View)
	froms := make([]transport.NodeID, 0, len(in.prepareMsgs))
	for from := range in.prepareMsgs {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, from := range froms {
		pm := in.prepareMsgs[from]
		if from == primary || pm.View != in.prePrepare.View || pm.BatchDigest != in.digest {
			continue
		}
		proof.Prepares = append(proof.Prepares, *pm)
	}
	return proof
}

// onCatchUp installs a prepared certificate received from a caught-up
// peer (the responder in onPrepare). The certificate is the same
// evidence a view change carries — a signed pre-prepare plus quorum-1
// signed same-view prepares — so it is validated with validPreparedProof
// and trusted on its own merits, not on the sender's word. This is the
// straggler's escape hatch: a replica whose pre-prepare is from a view
// the group has moved past can never re-assemble a same-view prepare
// quorum locally (prepares from other views are filtered), and during
// the reconfiguration window's n=3f+2 quorums the group cannot make the
// progress that would otherwise heal it via checkpoint state transfer —
// every honest replica is needed, including the straggler.
func (r *Replica) onCatchUp(msg *Message) {
	if r.joining || !r.fromMember(msg) {
		return
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return
	}
	if len(msg.Prepared) != 1 {
		return
	}
	p := msg.Prepared[0]
	if p.SeqNo != msg.SeqNo || p.PrePrepare == nil || p.PrePrepare.Epoch != r.membership.Epoch {
		return
	}
	// Read the instance WITHOUT creating it: the certificate has not
	// been validated yet, and r.inst would grow the log on the say-so of
	// any member — a garbage CATCH-UP per in-window sequence number
	// would allocate agreement state that no valid certificate backs
	// (the PR 7 reply-cache bug class, resurfaced in the log).
	in := r.log[msg.SeqNo]
	if in != nil {
		if in.executed {
			return
		}
		if in.prepared && in.digest == p.BatchDigest {
			return // already hold equivalent evidence
		}
		if in.prePrepare != nil && in.digest != p.BatchDigest {
			// A conflicting certificate supersedes our proposal only from a
			// strictly higher view — unless we never prepared ours, in which
			// case a same-view certificate proves the quorum went the other
			// way (an equivocating primary fed us the minority variant).
			if p.View < in.prePrepare.View {
				return
			}
			if p.View == in.prePrepare.View && in.prepared {
				return
			}
		}
	}
	if !validPreparedProof(&p, r.membership) {
		return
	}
	// Authenticate the re-learned requests; in the honest case this is
	// all verdict-cache hits.
	if !r.verifyBatchCached(p.Batch) {
		return
	}
	in = r.inst(msg.SeqNo)
	in.prePrepare = p.PrePrepare
	in.batch = p.Batch
	in.digest = p.BatchDigest
	in.prepared = true
	cert := p
	in.cert = &cert
	in.commits[r.cfg.ID] = in.digest
	cm := &Message{
		Type:        MsgCommit,
		View:        r.view,
		SeqNo:       msg.SeqNo,
		Epoch:       r.membership.Epoch,
		BatchDigest: in.digest,
	}
	r.broadcast(cm)
	r.checkCommitted(msg.SeqNo)
}

func maxStable(vcs []Message) uint64 {
	var out uint64
	for _, vc := range vcs {
		if vc.LastStable > out {
			out = vc.LastStable
		}
	}
	return out
}

// onNewView validates the new primary's NEW-VIEW and installs the view.
func (r *Replica) onNewView(msg *Message) {
	if r.joining || msg.NewView <= r.view {
		return
	}
	if msg.From != r.membership.Primary(msg.NewView) || !r.verifySigned(msg) {
		return
	}
	// Epoch freshness: a NEW-VIEW replayed from an earlier membership
	// configuration must not install a view whose re-proposals predate a
	// reconfiguration.
	if msg.Epoch != r.membership.Epoch {
		return
	}
	// Verify the quorum of view changes it carries.
	if len(msg.NewViewMsgs) < r.membership.Quorum() {
		return
	}
	seen := make(map[transport.NodeID]bool)
	for i := range msg.NewViewMsgs {
		vc := &msg.NewViewMsgs[i]
		if vc.Type != MsgViewChange || vc.NewView != msg.NewView || vc.Epoch != msg.Epoch || seen[vc.From] {
			return
		}
		pub, ok := r.membership.Keys[vc.From]
		if !ok || !vc.VerifySig(pub) {
			return
		}
		seen[vc.From] = true
	}
	ppub := r.membership.Keys[msg.From]
	// Recompute O and require it to match what the primary proposed.
	want := buildNewViewProposals(msg.NewView, r.membership.Epoch, msg.NewViewMsgs, r.membership)
	if len(want) != len(msg.PrePrepares) {
		return
	}
	for i := range want {
		got := msg.PrePrepares[i]
		if got.SeqNo != want[i].SeqNo || got.BatchDigest != want[i].BatchDigest ||
			got.View != msg.NewView || got.Batch == nil || got.Batch.Digest() != got.BatchDigest {
			return
		}
		// The re-proposals must carry the new primary's own signature:
		// they become the installed instances' pre-prepares, anchoring
		// the prepared certificates of any later view change. (The
		// NEW-VIEW signature does not cover this field, so a relayer
		// could otherwise strip or corrupt the signatures in transit.)
		if got.From != msg.From || !got.VerifySig(ppub) {
			return
		}
		// Authenticate the re-proposed requests. In the honest case every
		// request already verified under the old view and this collapses to
		// verdict-cache hits; it only costs signature checks when the view
		// change carries batches we never saw.
		if !r.verifyBatchCached(msg.PrePrepares[i].Batch) {
			return
		}
	}
	r.installNewView(msg.NewView, msg.PrePrepares, maxStable(msg.NewViewMsgs))
}

// installNewView enters the view and processes the re-proposals.
func (r *Replica) installNewView(newView uint64, prePrepares []Message, stable uint64) {
	r.view = newView
	r.inViewChange = false
	if r.vcTarget < newView {
		r.vcTarget = newView
	}
	for nv := range r.viewChanges {
		if nv <= newView {
			delete(r.viewChanges, nv)
		}
	}
	// Reconcile the log with O rather than dropping everything un-executed:
	// an in-flight instance whose digest matches its re-proposal keeps its
	// vote tallies (votes are digest-keyed, so votes that raced ahead of
	// our NEW-VIEW — peers install the view in no particular order — stay
	// valid), as do vote-only buffers with no pre-prepare yet. Only
	// proposals superseded by O (different digest, or not re-proposed at
	// all) are discarded. Wiping matching instances here is what used to
	// strand stragglers: a replica that missed a commit round lost the
	// buffered votes with every view change and could never assemble a
	// commit quorum again.
	proposed := make(map[uint64]Digest, len(prePrepares))
	for i := range prePrepares {
		proposed[prePrepares[i].SeqNo] = prePrepares[i].BatchDigest
	}
	for seq, in := range r.log {
		if seq <= r.lastExec || in.prePrepare == nil {
			continue
		}
		if d, ok := proposed[seq]; !ok || in.digest != d {
			// The superseded batch's requests go back to pending: the
			// clients still want them ordered, and if every replica that
			// held them discards them here, only client retransmission
			// would ever revive them.
			r.requeueInstance(in)
			delete(r.log, seq)
		}
	}
	maxSeq := stable
	for i := range prePrepares {
		pp := prePrepares[i]
		if pp.SeqNo > maxSeq {
			maxSeq = pp.SeqNo
		}
		// An instance we already prepared (usually: already executed) in an
		// earlier view needs its commit vote RE-ANNOUNCED under the new
		// view. acceptPrePrepare re-broadcasts our prepare, but
		// checkPrepared early-returns on in.prepared and never resends the
		// commit — and a peer that missed the original commit round can
		// only assemble a commit quorum from votes sent after this
		// re-proposal. Without the re-announcement the straggler re-prepares
		// but holds a single commit vote forever: it cannot execute, its
		// progress timer keeps firing, and the group livelocks in a
		// view-change storm.
		reannounce := false
		if in, ok := r.log[pp.SeqNo]; ok && in.prepared && in.digest == pp.BatchDigest {
			reannounce = true
		}
		ppCopy := pp
		// The new primary implicitly prepares its re-proposals.
		ppCopy.From = r.membership.Primary(newView)
		r.acceptPrePrepare(&ppCopy)
		if reannounce {
			cm := &Message{
				Type:        MsgCommit,
				View:        newView,
				SeqNo:       pp.SeqNo,
				Epoch:       r.membership.Epoch,
				BatchDigest: pp.BatchDigest,
			}
			r.broadcast(cm)
		}
		// Kept tallies (or votes buffered while we were mid-view-change)
		// may already complete the instance; checkPrepared's early return
		// skips this check for instances that were prepared coming in.
		r.checkCommitted(pp.SeqNo)
	}
	// Re-anchor the proposal counter to the reconciled log: above maxSeq
	// nothing with a pre-prepare survived the reconciliation (executed
	// instances are all at or below lastExec). Only ever raising the
	// counter leaves phantoms — if a previous view change had advanced it
	// over instances this one just deleted, the primary would count
	// nonexistent in-flight instances against PipelineDepth and, with the
	// pipeline "full" of ghosts, never propose again.
	r.seq = maxSeq
	if r.seq < r.lastExec {
		r.seq = r.lastExec
	}
	if stable > r.lastExec {
		// The group's stable state is ahead of us.
		r.requestStateTransfer()
	}
	r.disarmProgressTimer()
	if len(r.pending) > 0 {
		r.armProgressTimer()
	}
	r.updateStats(func(*ReplicaStats) {})
	r.trace.Emit(metrics.Event{
		Type: metrics.EvViewAdopt, Node: int64(r.cfg.ID),
		View: newView, Epoch: r.membership.Epoch, Seq: r.lastExec,
	})
	r.cfg.Logf("replica %d: installed view %d (primary %d)", r.cfg.ID, newView, r.membership.Primary(newView))
	// If we are the new primary and requests queued up during the view
	// change, propose now rather than waiting for the batch tick.
	r.maybePropose()
}
