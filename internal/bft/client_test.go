package bft

import (
	"context"
	"crypto/ed25519"
	"sync"
	"testing"
	"time"

	"lazarus/internal/transport"
)

func TestNewClientValidation(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	_, priv := keypair(t)
	base := ClientConfig{
		ID:       transport.ClientIDBase,
		Key:      priv,
		Replicas: []transport.NodeID{0, 1, 2, 3},
		F:        1,
		Net:      net,
	}
	if _, err := NewClient(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.ID = 3 // replica-range id
	if _, err := NewClient(bad); err == nil {
		t.Error("replica-range client id accepted")
	}
	bad = base
	bad.Key = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("missing key accepted")
	}
	bad = base
	bad.Replicas = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("empty replica set accepted")
	}
	bad = base
	bad.Net = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("nil network accepted")
	}
}

func TestClientGivesUpWithoutQuorum(t *testing.T) {
	// No replicas running at all: the client must return an error after
	// its attempt budget, not hang.
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	for i := 0; i < 4; i++ {
		if _, err := net.Endpoint(transport.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:             transport.ClientIDBase,
		Key:            priv,
		Replicas:       []transport.NodeID{0, 1, 2, 3},
		F:              1,
		Net:            net,
		RequestTimeout: 50 * time.Millisecond,
		MaxAttempts:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.Invoke(context.Background(), []byte("op"))
	if err == nil {
		t.Fatal("invoke without any replicas succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("gave up after %v, want prompt failure", elapsed)
	}
}

func TestClientHonorsContext(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	for i := 0; i < 4; i++ {
		if _, err := net.Endpoint(transport.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:       transport.ClientIDBase,
		Key:      priv,
		Replicas: []transport.NodeID{0, 1, 2, 3},
		F:        1,
		Net:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.Invoke(ctx, []byte("op")); err == nil {
		t.Fatal("invoke with dead service succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("context deadline ignored for %v", elapsed)
	}
}

func TestClientIgnoresForgedReplies(t *testing.T) {
	// f forged replies must not reach the f+1 quorum: with f=1, a single
	// lying node cannot convince the client.
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		if cfg.ID == 1 {
			cfg.Fault = FaultCorruptReply
		}
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	for i := 0; i < 5; i++ {
		res := invoke(t, cl, "add 1")
		if decodeInt(res) != int64(i+1) {
			t.Fatalf("result %d, want %d", decodeInt(res), i+1)
		}
	}
}

func TestClientIgnoresRetiredReplicaVotes(t *testing.T) {
	// Two nodes OUTSIDE the client's replica-set snapshot (e.g. replicas
	// retired by a Lazarus reconfiguration, possibly compromised) pump
	// f+1 matching bogus replies at the client. The old code tallied
	// votes from any sender, so the pair reached the quorum and the
	// client accepted their fabricated result.
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	for i := 0; i < 4; i++ {
		if _, err := net.Endpoint(transport.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	retiredA, err := net.Endpoint(50)
	if err != nil {
		t.Fatal(err)
	}
	retiredB, err := net.Endpoint(51)
	if err != nil {
		t.Fatal(err)
	}
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:             transport.ClientIDBase,
		Key:            priv,
		Replicas:       []transport.NodeID{0, 1, 2, 3},
		F:              1,
		Net:            net,
		RequestTimeout: 100 * time.Millisecond,
		MaxAttempts:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, from := range []transport.NodeID{50, 51} {
			payload, err := Encode(&Message{Type: MsgReply, From: from, ReplySeq: 1, Result: []byte("evil")})
			if err != nil {
				t.Error(err)
				return
			}
			src := retiredA
			if from == 51 {
				src = retiredB
			}
			wg.Add(1)
			go func(src transport.Endpoint, payload []byte) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					src.Send(transport.ClientIDBase, payload)
					time.Sleep(5 * time.Millisecond)
				}
			}(src, payload)
		}
	}()

	res, err := cl.Invoke(context.Background(), []byte("op"))
	close(stop)
	wg.Wait()
	if err == nil {
		t.Fatalf("invoke accepted result %q vouched only by retired replicas", res)
	}
}

func TestClientRejectsUnsignedInMemberReplies(t *testing.T) {
	// In-member spoofing: attackers holding the transport endpoints of
	// CURRENT members 1 and 2 pump f+1 matching unsigned replies at the
	// client. The membership filter alone cannot help — the senders are
	// members — so before reply signing, those two votes reached the f+1
	// quorum and the client accepted the fabricated result. With
	// ReplicaKeys set, only properly signed votes count, and the genuine
	// signed quorum (members 0 and 3) must win instead.
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	eps := make(map[transport.NodeID]transport.Endpoint)
	keys := make(map[transport.NodeID]ed25519.PublicKey)
	privs := make(map[transport.NodeID]ed25519.PrivateKey)
	for i := 0; i < 4; i++ {
		id := transport.NodeID(i)
		ep, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		eps[id] = ep
		keys[id], privs[id] = keypair(t)
	}
	_, cpriv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:             transport.ClientIDBase,
		Key:            cpriv,
		Replicas:       []transport.NodeID{0, 1, 2, 3},
		ReplicaKeys:    keys,
		F:              1,
		Net:            net,
		RequestTimeout: 200 * time.Millisecond,
		MaxAttempts:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	encodeReply := func(from transport.NodeID, result string, sign bool) []byte {
		msg := &Message{
			Type: MsgReply, From: from, ReplySeq: 1,
			ReplyClient: transport.ClientIDBase, Result: []byte(result),
		}
		if sign {
			msg.Sign(privs[from])
		}
		payload, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	send := func(from transport.NodeID, payload []byte, delay time.Duration) {
		defer wg.Done()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-stop:
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			eps[from].Send(transport.ClientIDBase, payload)
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Forged votes flow first and alone for a while: if they count, they
	// reach f+1 long before a genuine vote shows up.
	wg.Add(4)
	go send(1, encodeReply(1, "evil", false), 0)
	go send(2, encodeReply(2, "evil", false), 0)
	go send(0, encodeReply(0, "good", true), 100*time.Millisecond)
	go send(3, encodeReply(3, "good", true), 100*time.Millisecond)

	res, err := cl.Invoke(context.Background(), []byte("op"))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("invoke with a genuine signed quorum failed: %v", err)
	}
	if string(res) != "good" {
		t.Fatalf("invoke returned %q; unsigned in-member votes were counted", res)
	}
}

func TestUpdateReplicasVisible(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:       transport.ClientIDBase,
		Key:      priv,
		Replicas: []transport.NodeID{0, 1, 2, 3},
		F:        1,
		Net:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.UpdateReplicas([]transport.NodeID{1, 2, 3, 4})
	got := cl.Replicas()
	if len(got) != 4 || got[3] != 4 {
		t.Errorf("Replicas() = %v", got)
	}
}
