package bft

import (
	"context"
	"sync"
	"testing"
	"time"

	"lazarus/internal/transport"
)

func TestNewClientValidation(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	_, priv := keypair(t)
	base := ClientConfig{
		ID:       transport.ClientIDBase,
		Key:      priv,
		Replicas: []transport.NodeID{0, 1, 2, 3},
		F:        1,
		Net:      net,
	}
	if _, err := NewClient(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.ID = 3 // replica-range id
	if _, err := NewClient(bad); err == nil {
		t.Error("replica-range client id accepted")
	}
	bad = base
	bad.Key = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("missing key accepted")
	}
	bad = base
	bad.Replicas = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("empty replica set accepted")
	}
	bad = base
	bad.Net = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("nil network accepted")
	}
}

func TestClientGivesUpWithoutQuorum(t *testing.T) {
	// No replicas running at all: the client must return an error after
	// its attempt budget, not hang.
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	for i := 0; i < 4; i++ {
		if _, err := net.Endpoint(transport.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:             transport.ClientIDBase,
		Key:            priv,
		Replicas:       []transport.NodeID{0, 1, 2, 3},
		F:              1,
		Net:            net,
		RequestTimeout: 50 * time.Millisecond,
		MaxAttempts:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.Invoke(context.Background(), []byte("op"))
	if err == nil {
		t.Fatal("invoke without any replicas succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("gave up after %v, want prompt failure", elapsed)
	}
}

func TestClientHonorsContext(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	for i := 0; i < 4; i++ {
		if _, err := net.Endpoint(transport.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:       transport.ClientIDBase,
		Key:      priv,
		Replicas: []transport.NodeID{0, 1, 2, 3},
		F:        1,
		Net:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.Invoke(ctx, []byte("op")); err == nil {
		t.Fatal("invoke with dead service succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("context deadline ignored for %v", elapsed)
	}
}

func TestClientIgnoresForgedReplies(t *testing.T) {
	// f forged replies must not reach the f+1 quorum: with f=1, a single
	// lying node cannot convince the client.
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		if cfg.ID == 1 {
			cfg.Fault = FaultCorruptReply
		}
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	for i := 0; i < 5; i++ {
		res := invoke(t, cl, "add 1")
		if decodeInt(res) != int64(i+1) {
			t.Fatalf("result %d, want %d", decodeInt(res), i+1)
		}
	}
}

func TestClientIgnoresRetiredReplicaVotes(t *testing.T) {
	// Two nodes OUTSIDE the client's replica-set snapshot (e.g. replicas
	// retired by a Lazarus reconfiguration, possibly compromised) pump
	// f+1 matching bogus replies at the client. The old code tallied
	// votes from any sender, so the pair reached the quorum and the
	// client accepted their fabricated result.
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	for i := 0; i < 4; i++ {
		if _, err := net.Endpoint(transport.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	retiredA, err := net.Endpoint(50)
	if err != nil {
		t.Fatal(err)
	}
	retiredB, err := net.Endpoint(51)
	if err != nil {
		t.Fatal(err)
	}
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:             transport.ClientIDBase,
		Key:            priv,
		Replicas:       []transport.NodeID{0, 1, 2, 3},
		F:              1,
		Net:            net,
		RequestTimeout: 100 * time.Millisecond,
		MaxAttempts:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, from := range []transport.NodeID{50, 51} {
			payload, err := Encode(&Message{Type: MsgReply, From: from, ReplySeq: 1, Result: []byte("evil")})
			if err != nil {
				t.Error(err)
				return
			}
			src := retiredA
			if from == 51 {
				src = retiredB
			}
			wg.Add(1)
			go func(src transport.Endpoint, payload []byte) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					src.Send(transport.ClientIDBase, payload)
					time.Sleep(5 * time.Millisecond)
				}
			}(src, payload)
		}
	}()

	res, err := cl.Invoke(context.Background(), []byte("op"))
	close(stop)
	wg.Wait()
	if err == nil {
		t.Fatalf("invoke accepted result %q vouched only by retired replicas", res)
	}
}

func TestUpdateReplicasVisible(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	_, priv := keypair(t)
	cl, err := NewClient(ClientConfig{
		ID:       transport.ClientIDBase,
		Key:      priv,
		Replicas: []transport.NodeID{0, 1, 2, 3},
		F:        1,
		Net:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.UpdateReplicas([]transport.NodeID{1, 2, 3, 4})
	got := cl.Replicas()
	if len(got) != 4 || got[3] != 4 {
		t.Errorf("Replicas() = %v", got)
	}
}
