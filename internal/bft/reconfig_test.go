package bft

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"lazarus/internal/transport"
)

func TestReconfigResultRoundTrip(t *testing.T) {
	cases := []ReconfigResult{
		{Status: ReconfigApplied, Epoch: 7},
		{Status: ReconfigAlreadyMember, Detail: "replica 4: bft: already a member"},
		{Status: ReconfigNotMember, Detail: "replica 0: bft: not a member"},
		{Status: ReconfigTooSmall, Detail: "removing replica 1 would leave 3 replicas"},
		{Status: ReconfigInvalid, Detail: "bad public key"},
	}
	for _, want := range cases {
		got, err := DecodeReconfigResult(want.Encode())
		if err != nil {
			t.Fatalf("decode %v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestReconfigResultRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"legacy ok string": []byte("reconfig ok: epoch 3"),
		"legacy error":     []byte("reconfig error: bad public key"),
		"app reply":        []byte("\x05\x00\x00\x00\x00\x00\x00\x00"),
		"truncated json":   append(append([]byte(nil), reconfigResultPrefix...), []byte(`{"status":1,"ep`)...),
		"unknown status":   ReconfigResult{Status: ReconfigStatus(42)}.Encode(),
		"applied no epoch": ReconfigResult{Status: ReconfigApplied}.Encode(),
		"not json":         append(append([]byte(nil), reconfigResultPrefix...), []byte("epoch 3")...),
	}
	for name, reply := range cases {
		if rr, err := DecodeReconfigResult(reply); err == nil {
			t.Errorf("%s: decoded %+v from %q, want error", name, rr, reply)
		}
	}
}

func TestMembershipErrorsAreSentinels(t *testing.T) {
	ids := []transport.NodeID{0, 1, 2, 3}
	keys := make(map[transport.NodeID]ed25519.PublicKey, len(ids))
	for _, id := range ids {
		pub, _, err := ed25519.GenerateKey(nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = pub
	}
	m, err := NewMembership(ids, keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WithAdded(0, m.Keys[0]); !errors.Is(err, ErrAlreadyMember) {
		t.Errorf("WithAdded(existing) = %v, want ErrAlreadyMember", err)
	}
	if _, err := m.WithRemoved(99); !errors.Is(err, ErrNotMember) {
		t.Errorf("WithRemoved(stranger) = %v, want ErrNotMember", err)
	}
	if _, err := m.WithRemoved(0); !errors.Is(err, ErrGroupTooSmall) {
		t.Errorf("WithRemoved at minimum = %v, want ErrGroupTooSmall", err)
	}
}
