package bft

// This file implements the asynchronous request-authentication path: a
// bounded worker pool verifies ed25519 request signatures off the event
// loop, and a digest-keyed verdict cache amortizes verification across
// the places the same request is seen (client submission, the batched
// pre-prepare carrying it, re-proposals after view changes).
//
// Protocol state stays single-threaded: workers only compute signature
// verdicts on messages the loop has handed off (channel handoff orders
// the memory accesses), attach the verdicts to the message, and re-inject
// it into the inbox. The loop alone reads and writes the verdict cache.
//
// Deadlock freedom: the loop never blocks feeding the pool (enqueue is
// non-blocking, falling back to inline verification when the pool is
// saturated), and workers block only on the inbox, which the loop always
// drains.

// verdictCache remembers digests of requests that verified, bounded by a
// two-generation rotation: inserts go to the current generation, lookups
// consult both, and when the current generation fills it becomes the
// previous one (dropping the old previous wholesale). Eviction therefore
// never depends on map iteration order. Only positive verdicts are
// cached: a digest covers the request minus its signature, so caching a
// failure would let an attacker poison a digest by sending a garbage-
// signature copy ahead of the genuine one.
type verdictCache struct {
	cur, prev map[Digest]struct{}
	cap       int
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cur: make(map[Digest]struct{}, capacity),
		cap: capacity,
	}
}

func (c *verdictCache) has(d Digest) bool {
	if _, ok := c.cur[d]; ok {
		return true
	}
	_, ok := c.prev[d]
	return ok
}

func (c *verdictCache) add(d Digest) {
	if _, ok := c.cur[d]; ok {
		return
	}
	// Rotate the generations before inserting so the size bound
	// dominates every insert: cur never exceeds cap entries.
	if len(c.cur) >= c.cap {
		c.prev = c.cur
		c.cur = make(map[Digest]struct{}, c.cap)
	}
	c.cur[d] = struct{}{}
}

// numAuthReqs returns how many client requests the message carries that
// need authentication before its handler may run.
func numAuthReqs(msg *Message) int {
	switch msg.Type {
	case MsgRequest:
		if msg.Request != nil {
			return 1
		}
	case MsgPrePrepare:
		if msg.Batch != nil {
			return len(msg.Batch.Requests)
		}
	}
	return 0
}

// authReq returns request i of the message, aliasing the message's own
// storage so digest caching sticks.
func authReq(msg *Message, i int) *Request {
	if msg.Type == MsgRequest {
		return msg.Request
	}
	return &msg.Batch.Requests[i]
}

// ensureAuth resolves every request verdict a message needs before its
// handler runs. It returns true when the message is ready to dispatch;
// false means it was handed to the verify pool and will re-enter the
// inbox with verdicts attached. Runs on the event loop.
func (r *Replica) ensureAuth(msg *Message) bool {
	if msg.authDone {
		// The pool (or a previous pass) resolved this message; fold the
		// positive verdicts into the cache so future sightings of the
		// same requests skip verification entirely.
		r.adoptVerdicts(msg)
		return true
	}
	n := numAuthReqs(msg)
	needRepSig := msg.repSigKey != nil && !msg.repSigDone
	if n == 0 && !needRepSig {
		msg.authDone = true
		return true
	}
	// Fast path for request verdicts: when every carried request already
	// has a cached positive verdict, resolve them here on the loop —
	// authMessage then skips them, so a message offloaded only for its
	// replica signature (which is per-message and never cached) still
	// amortizes its request verification.
	allCached := true
	for i := 0; i < n; i++ {
		if !r.verified.has(authReq(msg, i).Digest()) {
			allCached = false
			break
		}
	}
	if allCached && n > 0 {
		msg.authOK = make([]bool, n)
		for i := range msg.authOK {
			msg.authOK[i] = true
		}
		r.ins.verifyCacheHits.Add(int64(n))
	}
	if allCached && !needRepSig {
		msg.authDone = true
		return true
	}
	// Slow path: hand the whole message to the pool. If the pool is
	// saturated (or not running), verify inline on the loop — correct,
	// just slower, and it bounds memory instead of queueing unboundedly.
	if r.verifyJobs != nil {
		select {
		case r.verifyJobs <- msg:
			r.ins.verifyOffloaded.Inc()
			return false
		default:
		}
	}
	r.authMessage(msg)
	r.adoptVerdicts(msg)
	return true
}

// authMessage computes the signature verdicts for every request the
// message carries and attaches them. Safe off the event loop: it touches
// only the message itself (owned by the caller during verification) and
// immutable replica configuration (client and controller keys).
func (r *Replica) authMessage(msg *Message) {
	n := numAuthReqs(msg)
	// The loop may have pre-resolved the request verdicts from its cache
	// (ensureAuth's fast path) and offloaded only for the replica
	// signature; do not re-verify what it already settled.
	if msg.authOK == nil {
		msg.authOK = make([]bool, n)
		for i := 0; i < n; i++ {
			req := authReq(msg, i)
			req.Digest() // warm the digest cache while off the hot loop
			msg.authOK[i] = r.verifyRequest(req)
			r.ins.verifyOps.Inc()
		}
	}
	// Replica signature (pre-prepares and prepares): the loop captured
	// the claimed sender's key in repSigKey before offloading, so this
	// touches no loop-owned state.
	if msg.repSigKey != nil && !msg.repSigDone {
		msg.repSigOK = msg.VerifySig(msg.repSigKey)
		msg.repSigDone = true
		r.ins.verifyOps.Inc()
	}
	msg.authDone = true
}

// replicaSigOK reports whether the message's replica signature verifies
// against the current membership key of its claimed sender. The dispatch
// path resolved the verdict through the verify pool; direct calls
// (white-box tests, locally re-injected messages) verify inline.
func (r *Replica) replicaSigOK(msg *Message) bool {
	if !msg.repSigDone {
		pub, ok := r.membership.Keys[msg.From]
		msg.repSigDone = true
		msg.repSigOK = ok && msg.VerifySig(pub)
	}
	return msg.repSigOK
}

// adoptVerdicts folds a resolved message's positive verdicts into the
// loop-owned cache. Runs on the event loop only.
func (r *Replica) adoptVerdicts(msg *Message) {
	if len(msg.authOK) == 0 {
		return
	}
	n := numAuthReqs(msg)
	for i := 0; i < n && i < len(msg.authOK); i++ {
		if msg.authOK[i] {
			r.verified.add(authReq(msg, i).Digest())
		}
	}
}

// requestOK reports whether request i of the message authenticated. The
// dispatch path resolved verdicts up front (pool or cache); direct calls
// — re-proposals installed by a new view, white-box tests — fall back to
// the cached synchronous check.
func (r *Replica) requestOK(msg *Message, i int) bool {
	if msg.authDone {
		return i < len(msg.authOK) && msg.authOK[i]
	}
	if i >= numAuthReqs(msg) {
		return false
	}
	return r.verifyRequestCached(authReq(msg, i))
}

// verifyRequestCached is the synchronous cached verification used off
// the dispatch path. Event loop only.
func (r *Replica) verifyRequestCached(req *Request) bool {
	if r.verified.has(req.Digest()) {
		r.ins.verifyCacheHits.Inc()
		return true
	}
	r.ins.verifyOps.Inc()
	if !r.verifyRequest(req) {
		return false
	}
	r.verified.add(req.Digest())
	return true
}

// verifyBatchCached authenticates every request of a batch through the
// verdict cache. Used for re-proposals carried by view changes, where the
// batch normally verified already under the old view and the whole scan
// collapses to cache hits.
func (r *Replica) verifyBatchCached(batch *Batch) bool {
	if batch == nil {
		return true
	}
	for i := range batch.Requests {
		if !r.verifyRequestCached(&batch.Requests[i]) {
			return false
		}
	}
	return true
}

// verifyWorker is one verification worker: it takes messages the loop
// offloaded, computes their verdicts, and re-injects them into the inbox.
func (r *Replica) verifyWorker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case msg := <-r.verifyJobs:
			r.authMessage(msg)
			select {
			case r.inbox <- msg:
			case <-r.ctx.Done():
				return
			}
		}
	}
}

// prePrepareAdmissible runs the cheap structural checks on a pre-prepare
// before any signature work is spent on it: only the current primary's
// proposal for the current view, epoch and window is worth verifying.
// onPrePrepare re-checks after verification — the view may have changed
// while the pool held the message.
func (r *Replica) prePrepareAdmissible(msg *Message) bool {
	if r.joining || r.inViewChange || !r.fromMember(msg) {
		return false
	}
	if msg.View != r.view || msg.From != r.membership.Primary(r.view) {
		return false
	}
	if msg.Epoch != r.membership.Epoch || !r.inWindow(msg.SeqNo) {
		return false
	}
	return true
}
