package bft

// Wire codec for the ordering hot path. Gob re-transmits and re-parses a
// full type description in every standalone message (~56µs and ~400
// allocations per Decode, regardless of message size), which dominated
// the event loop: one consensus instance makes a replica decode half a
// dozen protocol messages serially. The five message types on the
// ordering fast path — request, pre-prepare, prepare, commit, reply —
// therefore use a hand-rolled length-prefixed binary layout; the cold,
// deeply nested types (view change, new view, checkpoint, state
// transfer) stay on gob, where clarity beats the nanoseconds.
//
// Every payload starts with a one-byte format tag so the two codecs
// coexist on the same transport.

import (
	"encoding/binary"
	"fmt"

	"lazarus/internal/transport"
)

const (
	wireGob  = 0x00 // remainder of the payload is a gob stream
	wireFast = 0x01 // remainder is the binary layout below
)

// maxWireBytes bounds any single length prefix read from the wire,
// keeping a hostile payload from forcing a huge allocation before the
// bounds checks catch it (transport frames are capped at 16 MiB anyway).
const maxWireBytes = 16 << 20

func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendBlob(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendRequest(b []byte, req *Request) []byte {
	b = appendU64(b, uint64(req.Client))
	b = appendU64(b, req.Seq)
	b = appendBlob(b, req.Op)
	return appendBlob(b, req.Sig)
}

// encodeFast appends the binary encoding of m to buf, or reports false
// for message types the fast codec does not cover.
func encodeFast(buf []byte, m *Message) ([]byte, bool) {
	switch m.Type {
	case MsgRequest:
		if m.Request == nil {
			return nil, false
		}
	case MsgPrePrepare:
		if m.Batch == nil {
			return nil, false
		}
	case MsgPrepare, MsgCommit, MsgReply:
	default:
		return nil, false
	}
	buf = append(buf, wireFast, byte(m.Type))
	buf = appendU64(buf, uint64(m.From))
	buf = appendU64(buf, m.View)
	buf = appendU64(buf, m.SeqNo)
	buf = appendU64(buf, m.Epoch)
	switch m.Type {
	case MsgRequest:
		buf = appendRequest(buf, m.Request)
	case MsgPrePrepare:
		buf = append(buf, m.BatchDigest[:]...)
		buf = appendBlob(buf, m.Sig)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Batch.Requests)))
		for i := range m.Batch.Requests {
			buf = appendRequest(buf, &m.Batch.Requests[i])
		}
	case MsgPrepare:
		buf = append(buf, m.BatchDigest[:]...)
		buf = appendBlob(buf, m.Sig)
	case MsgCommit:
		buf = append(buf, m.BatchDigest[:]...)
	case MsgReply:
		buf = appendU64(buf, m.ReplySeq)
		buf = appendU64(buf, m.ReplyEpoch)
		buf = appendU64(buf, uint64(m.ReplyClient))
		buf = appendBlob(buf, m.Result)
		buf = appendBlob(buf, m.Sig)
	}
	return buf, true
}

// wireReader is a bounds-checked cursor over a fast-codec payload. After
// any failed read, ok is false and every further read returns zero
// values, so decode paths check ok once at the end.
type wireReader struct {
	buf []byte
	off int
	ok  bool
}

func (r *wireReader) u64() uint64 {
	if !r.ok || r.off+8 > len(r.buf) {
		r.ok = false
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) u32() uint32 {
	if !r.ok || r.off+4 > len(r.buf) {
		r.ok = false
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) digest() Digest {
	var d Digest
	if !r.ok || r.off+len(d) > len(r.buf) {
		r.ok = false
		return d
	}
	copy(d[:], r.buf[r.off:])
	r.off += len(d)
	return d
}

// blob reads a length-prefixed byte slice. The bytes are copied out: the
// payload buffer belongs to the transport and may be reused.
func (r *wireReader) blob() []byte {
	n := int(r.u32())
	if !r.ok || n > maxWireBytes || r.off+n > len(r.buf) {
		r.ok = false
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

func (r *wireReader) request(req *Request) {
	req.Client = transport.NodeID(r.u64())
	req.Seq = r.u64()
	req.Op = r.blob()
	req.Sig = r.blob()
}

// decodeFast parses a payload written by encodeFast (after the format
// tag).
func decodeFast(payload []byte) (*Message, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("bft: decoding message: empty fast payload")
	}
	m := &Message{Type: MsgType(payload[0])}
	r := &wireReader{buf: payload, off: 1, ok: true}
	m.From = transport.NodeID(r.u64())
	m.View = r.u64()
	m.SeqNo = r.u64()
	m.Epoch = r.u64()
	switch m.Type {
	case MsgRequest:
		req := &Request{}
		r.request(req)
		m.Request = req
	case MsgPrePrepare:
		m.BatchDigest = r.digest()
		m.Sig = r.blob()
		n := int(r.u32())
		// A request takes at least 24 bytes on the wire; cap the batch
		// allocation by what the payload could possibly hold.
		if max := (len(payload) - r.off) / 24; r.ok && n > max+1 {
			r.ok = false
		}
		if r.ok {
			batch := &Batch{Requests: make([]Request, n)}
			for i := 0; i < n && r.ok; i++ {
				r.request(&batch.Requests[i])
			}
			m.Batch = batch
		}
	case MsgPrepare:
		m.BatchDigest = r.digest()
		m.Sig = r.blob()
	case MsgCommit:
		m.BatchDigest = r.digest()
	case MsgReply:
		m.ReplySeq = r.u64()
		m.ReplyEpoch = r.u64()
		m.ReplyClient = transport.NodeID(r.u64())
		m.Result = r.blob()
		m.Sig = r.blob()
	default:
		return nil, fmt.Errorf("bft: decoding message: type %v is not a fast-codec type", m.Type)
	}
	if !r.ok || r.off != len(payload) {
		return nil, fmt.Errorf("bft: decoding %v: malformed fast payload", m.Type)
	}
	return m, nil
}
