package bft

// White-box regression tests for the protocol holes the Byzantine chaos
// attackers (byzantine.go, controlplane/chaos.go) flushed out. Each test
// fails on the pre-fix code; together they pin the validation gaps shut:
// forged prepared proofs in view changes, stale-epoch view-change and
// new-view replay, certificate stripping, executed-instance digest
// rebinding, epoch-probe pinning, lying state-transfer vouchers and
// unauthenticated state requests.

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/gob"
	"testing"
	"time"

	"lazarus/internal/transport"
)

// TestNewViewRequiresPreparedCertificates: a prepared proof carried by a
// view change used to be trusted on its word — any single Byzantine
// member could fabricate a high-view proof and steer the new primary
// into re-proposing a batch that never prepared, overriding the genuine
// prepared batch at the same sequence number. Proofs must now carry a
// certificate (signed pre-prepare + 2f signed matching prepares) to be
// considered at all.
func TestNewViewRequiresPreparedCertificates(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()

	batch := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, 1, "add 7")}}
	d := batch.Digest()
	// Genuine certificate: primary 0's signed pre-prepare for view 0 plus
	// 2f=2 signed prepares from non-primary members 1 and 2.
	pp := signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1, Batch: batch, BatchDigest: d})
	pr1 := signedMsg(c, &Message{Type: MsgPrepare, From: 1, View: 0, SeqNo: 1, BatchDigest: d})
	pr2 := signedMsg(c, &Message{Type: MsgPrepare, From: 2, View: 0, SeqNo: 1, BatchDigest: d})
	genuine := PreparedProof{View: 0, SeqNo: 1, BatchDigest: d, Batch: batch,
		PrePrepare: pp, Prepares: []Message{*pr1, *pr2}}

	// Forged proof from Byzantine member 3: a *higher* view (so the
	// highest-view-wins rule would pick it) binding a different batch to
	// the same sequence number, with no certificate at all.
	forgedBatch := &Batch{}
	forged := PreparedProof{View: 5, SeqNo: 1, BatchDigest: forgedBatch.Digest(), Batch: forgedBatch}

	vcs := []Message{
		{Type: MsgViewChange, From: 1, NewView: 6, Prepared: []PreparedProof{genuine}},
		{Type: MsgViewChange, From: 2, NewView: 6},
		{Type: MsgViewChange, From: 3, NewView: 6, Prepared: []PreparedProof{forged}},
	}
	out := buildNewViewProposals(6, 0, vcs, c.membership)
	if len(out) != 1 {
		t.Fatalf("got %d re-proposals, want 1", len(out))
	}
	if out[0].BatchDigest != d {
		t.Fatalf("forged certificate-free proof won the re-proposal (digest %v, want %v)", out[0].BatchDigest, d)
	}

	// A certificate padded with garbage prepares must not validate either:
	// lenient counting skips them, leaving fewer than 2f valid ones.
	padded := forged
	padded.PrePrepare = signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 5, SeqNo: 1,
		Batch: forgedBatch, BatchDigest: forgedBatch.Digest()})
	// View 5's primary is 1 (view % n), so a pre-prepare signed by 0 is
	// not even the right signer; add garbage prepares for good measure.
	padded.Prepares = []Message{
		{Type: MsgPrepare, From: 2, View: 5, SeqNo: 1, BatchDigest: forgedBatch.Digest(), Sig: make([]byte, 64)},
		{Type: MsgPrepare, From: 3, View: 5, SeqNo: 1, BatchDigest: forgedBatch.Digest(), Sig: make([]byte, 64)},
	}
	if validPreparedProof(&padded, c.membership) {
		t.Fatal("proof with wrong-primary pre-prepare and garbage prepares validated")
	}
	if !validPreparedProof(&genuine, c.membership) {
		t.Fatal("genuine certificate rejected")
	}
}

// TestViewChangeSignatureCoversCertificates: the view-change signature
// must bind the embedded certificates — otherwise a Byzantine new
// primary could strip the certificates out of honest view changes nested
// in its NEW-VIEW, turning valid prepared proofs into discardable ones
// (and the genuinely prepared batch into a null re-proposal).
func TestViewChangeSignatureCoversCertificates(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()

	batch := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, 1, "add 1")}}
	d := batch.Digest()
	pp := signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1, Batch: batch, BatchDigest: d})
	pr := signedMsg(c, &Message{Type: MsgPrepare, From: 2, View: 0, SeqNo: 1, BatchDigest: d})
	vc := &Message{Type: MsgViewChange, From: 1, NewView: 2, Prepared: []PreparedProof{{
		View: 0, SeqNo: 1, BatchDigest: d, Batch: batch, PrePrepare: pp, Prepares: []Message{*pr},
	}}}
	vc.Sign(c.keys[1])
	if !vc.VerifySig(c.pubs[1]) {
		t.Fatal("signed view change does not verify")
	}
	stripped := *vc
	stripped.Prepared = []PreparedProof{{View: 0, SeqNo: 1, BatchDigest: d, Batch: batch}}
	if stripped.VerifySig(c.pubs[1]) {
		t.Fatal("signature still verifies after the certificate was stripped")
	}
}

// TestViewChangeRejectsStaleEpoch: a view change signed under another
// membership configuration must not count toward this epoch's quorum —
// replayed pre-reconfiguration view changes could otherwise assemble a
// NEW-VIEW whose re-proposals predate the reconfiguration.
func TestViewChangeRejectsStaleEpoch(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	stale := &Message{Type: MsgViewChange, From: 2, NewView: 1, Epoch: 7}
	stale.Sign(c.keys[2])
	r.onViewChange(stale)
	if r.viewChanges[1][2] != nil {
		t.Fatal("view change from another epoch was recorded")
	}

	fresh := &Message{Type: MsgViewChange, From: 2, NewView: 1, Epoch: r.membership.Epoch}
	fresh.Sign(c.keys[2])
	r.onViewChange(fresh)
	if r.viewChanges[1][2] == nil {
		t.Fatal("current-epoch view change was not recorded")
	}
}

// TestNewViewRejectsStaleEpoch: a NEW-VIEW replayed from before a
// reconfiguration must not install a view.
func TestNewViewRejectsStaleEpoch(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[2]
	r.membership.Epoch = 1 // the replica moved on; epoch-0 traffic is stale

	var vcs []Message
	for _, from := range []transport.NodeID{0, 2, 3} {
		vc := Message{Type: MsgViewChange, From: from, NewView: 1, Epoch: 0}
		vc.Sign(c.keys[from])
		vcs = append(vcs, vc)
	}
	nv := &Message{Type: MsgNewView, From: 1, NewView: 1, Epoch: 0, NewViewMsgs: vcs}
	nv.Sign(c.keys[1])
	r.onNewView(nv)
	if r.view != 0 {
		t.Fatalf("stale-epoch NEW-VIEW installed view %d", r.view)
	}
}

// TestPrepareFromEarlierViewDoesNotCount documents the replay guard on
// the prepare path: a (correctly signed) prepare vote from an old view
// re-sent after a view change must not register in the new view.
func TestPrepareFromEarlierViewDoesNotCount(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[2]
	r.view = 1 // the replica installed view 1

	stale := signedMsg(c, &Message{Type: MsgPrepare, From: 3, View: 0, SeqNo: 1, BatchDigest: badDigest})
	r.onPrepare(stale)
	if in, ok := r.log[1]; ok && len(in.prepares) > 0 {
		t.Fatal("old-view prepare was counted in the new view")
	}

	fresh := signedMsg(c, &Message{Type: MsgPrepare, From: 3, View: 1, SeqNo: 1, BatchDigest: badDigest})
	r.onPrepare(fresh)
	if in, ok := r.log[1]; !ok || len(in.prepares) == 0 {
		t.Fatal("current-view prepare was not buffered")
	}
}

// TestExecutedInstanceDigestImmutable: once an instance executed, no
// later proposal — not even a new-view re-proposal — may rebind its
// sequence number to a different batch.
func TestExecutedInstanceDigestImmutable(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	batch := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, 1, "add 3")}}
	good := batch.Digest()
	r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1,
		Batch: batch, BatchDigest: good}))
	for _, from := range []transport.NodeID{2, 3} {
		r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: from, View: 0, SeqNo: 1, BatchDigest: good}))
		r.onCommit(&Message{Type: MsgCommit, From: from, View: 0, SeqNo: 1, BatchDigest: good})
	}
	if in := r.log[1]; in == nil || !in.executed {
		t.Fatal("instance did not execute")
	}

	evil := &Batch{}
	r.acceptPrePrepare(&Message{Type: MsgPrePrepare, From: 0, View: 3, SeqNo: 1,
		Batch: evil, BatchDigest: evil.Digest()})
	in := r.log[1]
	if in.digest != good {
		t.Fatal("executed instance's digest was rebound to a different batch")
	}
}

// TestEpochSyncRequiresQuorumOfClaimants: a single member claiming a
// (possibly absurd) higher epoch used to trigger a state transfer and pin
// epochProbe at the claimed value, keeping the replica in perpetual
// state-transfer noise. f+1 distinct claimants are required now.
func TestEpochSyncRequiresQuorumOfClaimants(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	r.dispatch(&Message{Type: MsgCommit, From: 2, View: 0, SeqNo: 1, Epoch: 1 << 40, BatchDigest: badDigest})
	if r.epochProbe != 0 {
		t.Fatalf("single claimant pinned epochProbe at %d", r.epochProbe)
	}
	// A second distinct claimant (f+1 = 2 at n=4) with a lower claim:
	// the sync triggers at the smallest claimed epoch, the value f+1
	// members actually back.
	r.dispatch(&Message{Type: MsgCommit, From: 3, View: 0, SeqNo: 1, Epoch: 3, BatchDigest: badDigest})
	if r.epochProbe != 3 {
		t.Fatalf("epochProbe %d after f+1 claimants, want the smallest claim 3", r.epochProbe)
	}
}

// evilSnapshot builds a decodable replica snapshot with attacker-chosen
// application state, claiming the given sequence number under the
// replica's current membership.
func evilSnapshot(t *testing.T, r *Replica, seq uint64, value int64) []byte {
	t.Helper()
	var app bytes.Buffer
	if err := gob.NewEncoder(&app).Encode(value); err != nil {
		t.Fatal(err)
	}
	snap := replicaSnapshot{AppState: app.Bytes(), LastExec: seq, Epoch: r.membership.Epoch}
	for _, id := range r.membership.Replicas {
		snap.Members = append(snap.Members, memberEntry{ID: id, Key: append([]byte(nil), r.membership.Keys[id]...)})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStateReplyRejectsRemovedVoucher is the lying-voucher regression:
// snapshot vouchers used to authenticate against boot OR current
// membership, so a replica removed from the group (removed precisely
// because it is suspected compromised) still counted toward the f+1
// restore quorum — one removed boot member plus one compromised current
// member beat f=1 and fed the replica fabricated state. Vouchers must be
// current members.
func TestStateReplyRejectsRemovedVoucher(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	// The group swapped boot member 0 out for 4 (r's view of it).
	pub4, _ := keypair(t)
	withAdd, err := r.membership.WithAdded(4, pub4)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := withAdd.WithRemoved(0)
	if err != nil {
		t.Fatal(err)
	}
	r.membership = cur // n=4, f=1: restore needs f+1 = 2 matching vouchers

	evil := evilSnapshot(t, r, 50, 666)
	for _, from := range []transport.NodeID{0, 2} { // removed ex-member + one compromised member
		reply := &Message{Type: MsgStateReply, From: from, SnapSeqNo: 50, Snapshot: evil}
		reply.Sign(c.keys[from])
		r.onStateReply(reply)
	}
	if r.lastExec != 0 || c.apps[1].Value() != 0 {
		t.Fatalf("removed boot member's voucher counted: restored to seq %d value %d",
			r.lastExec, c.apps[1].Value())
	}

	// Control: two current members vouching the same snapshot restore it
	// (the f+1 counting itself still works).
	for _, from := range []transport.NodeID{2, 3} {
		reply := &Message{Type: MsgStateReply, From: from, SnapSeqNo: 50, Snapshot: evil}
		reply.Sign(c.keys[from])
		r.onStateReply(reply)
	}
	if r.lastExec != 50 {
		t.Fatalf("current-member vouchers did not restore (lastExec %d)", r.lastExec)
	}
}

// TestStateRestoreFailureEvictsLyingGroup: when an f+1-vouched snapshot
// fails to restore (it cannot come from f+1 honest replicas — an honest
// snapshot always decodes), every voucher of that snapshot must be
// evicted so the retry re-forms the quorum from other peers; the lying
// replies used to linger in stReplies forever.
func TestStateRestoreFailureEvictsLyingGroup(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	garbage := []byte("not a gob snapshot")
	for _, from := range []transport.NodeID{2, 3} {
		reply := &Message{Type: MsgStateReply, From: from, SnapSeqNo: 40, Snapshot: garbage}
		reply.Sign(c.keys[from])
		r.onStateReply(reply)
	}
	if r.lastExec != 0 {
		t.Fatalf("undecodable snapshot restored (lastExec %d)", r.lastExec)
	}
	for _, from := range []transport.NodeID{2, 3} {
		if _, ok := r.stReplies[from]; ok {
			t.Fatalf("lying voucher %d still in stReplies after failed restore", from)
		}
	}

	// The honest quorum restores on retry.
	good := evilSnapshot(t, r, 50, 9)
	for _, from := range []transport.NodeID{0, 2} {
		reply := &Message{Type: MsgStateReply, From: from, SnapSeqNo: 50, Snapshot: good}
		reply.Sign(c.keys[from])
		r.onStateReply(reply)
	}
	if r.lastExec != 50 {
		t.Fatalf("honest snapshot did not restore after eviction (lastExec %d)", r.lastExec)
	}
}

// TestStateRequestRequiresAuthentication: serving snapshots to
// unauthenticated requesters made state requests a free amplification
// lever (tiny request in, multi-KB snapshot out) for anyone who could
// name a replica id.
func TestStateRequestRequiresAuthentication(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	snap, err := r.encodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	r.lastSnap = snap
	r.lowWater = 20

	ep, err := c.net.Endpoint(3) // replica 3 is unstarted; drain its inbox directly
	if err != nil {
		t.Fatal(err)
	}

	unsigned := &Message{Type: MsgStateRequest, From: 3, SeqNo: 0, Epoch: 0}
	r.onStateRequest(unsigned)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	if env, err := ep.Recv(ctx); err == nil {
		cancel()
		t.Fatalf("unauthenticated state request was served (%d bytes)", len(env.Payload))
	}
	cancel()

	signed := &Message{Type: MsgStateRequest, From: 3, SeqNo: 0, Epoch: 0}
	signed.Sign(c.keys[3])
	r.onStateRequest(signed)
	ctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	env, err := ep.Recv(ctx)
	if err != nil {
		t.Fatal("authenticated state request got no reply")
	}
	reply, err := Decode(env.Payload)
	if err != nil || reply.Type != MsgStateReply || reply.SnapSeqNo != 20 {
		t.Fatalf("got %v / %v, want the stable snapshot at seq 20", reply, err)
	}
}

// TestPreparedRequiresSameViewCertificate: the prepared predicate used
// to fire on the raw 2f+1 digest tally. Vote tallies are retained across
// a view change (that is what un-strands stragglers), so after a
// re-proposal the tally holds the OLD primary's implicit pre-prepare
// vote, the NEW primary's implicit vote and the replica's own — 2f+1
// with f=1 and zero signed prepares from the re-proposal's view. A
// replica that declared prepared on that tally voted commit while
// holding a certificate validPreparedProof discards, so the next view
// change could re-propose a null batch over a sequence number the group
// had already executed: the safety divergence the Byzantine chaos
// harness caught. Prepared must wait for 2f same-view signed prepares.
func TestPreparedRequiresSameViewCertificate(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[2]

	batch := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, 1, "add 3")}}
	d := batch.Digest()

	// View 0: replica 2 accepts primary 0's proposal. Tally: self + the
	// primary's implicit vote — two of three, not prepared.
	pp := signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1,
		Batch: batch, BatchDigest: d})
	r.onPrePrepare(pp)
	if in := r.log[1]; in == nil || in.prepared {
		t.Fatalf("setup: instance missing or already prepared after lone pre-prepare")
	}

	// View change to view 1 (primary 1), re-proposing the same batch: a
	// genuine certificate from view 0 rides in member 1's view change.
	cert := PreparedProof{View: 0, SeqNo: 1, BatchDigest: d, Batch: batch,
		PrePrepare: pp,
		Prepares: []Message{
			*signedMsg(c, &Message{Type: MsgPrepare, From: 1, View: 0, SeqNo: 1, BatchDigest: d}),
			*signedMsg(c, &Message{Type: MsgPrepare, From: 3, View: 0, SeqNo: 1, BatchDigest: d}),
		}}
	vcs := []Message{
		*signedMsg(c, &Message{Type: MsgViewChange, From: 0, NewView: 1}),
		*signedMsg(c, &Message{Type: MsgViewChange, From: 1, NewView: 1, Prepared: []PreparedProof{cert}}),
		*signedMsg(c, &Message{Type: MsgViewChange, From: 3, NewView: 1}),
	}
	reproposals := buildNewViewProposals(1, 0, vcs, c.membership)
	if len(reproposals) != 1 || reproposals[0].BatchDigest != d {
		t.Fatalf("setup: want one re-proposal of the genuine batch, got %v", reproposals)
	}
	for i := range reproposals {
		reproposals[i].From = 1
		reproposals[i].Sign(c.keys[1])
	}
	nv := signedMsg(c, &Message{Type: MsgNewView, From: 1, NewView: 1,
		NewViewMsgs: vcs, PrePrepares: reproposals})
	r.onNewView(nv)

	in := r.log[1]
	if in == nil {
		t.Fatal("instance dropped across the view change despite a matching re-proposal")
	}
	if r.view != 1 {
		t.Fatalf("view = %d, want 1", r.view)
	}
	// The tally now spans views: old primary 0, new primary 1, self. The
	// only signed prepare from view 1 is the replica's own — one short of
	// the 2f the certificate needs, so prepared must NOT fire yet.
	if in.prepared {
		t.Fatalf("prepared fired on a cross-view tally: certificate holds %d same-view prepares, need %d",
			len(in.cert.Prepares), 2*c.membership.F())
	}

	// A fresh same-view prepare from member 3 completes the certificate.
	r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: 3, View: 1, SeqNo: 1, BatchDigest: d}))
	in = r.log[1]
	if in == nil || !in.prepared {
		t.Fatal("prepared did not fire once 2f same-view signed prepares arrived")
	}
	if in.cert == nil || !validPreparedProof(in.cert, c.membership) {
		t.Fatal("prepared fired but the snapshotted certificate does not validate")
	}
}

// TestQuorumIntersectionHoldsForAllGroupSizes: Quorum() was hardcoded
// 2f+1, which is quorum-safe only at exactly n=3f+1. The add-then-remove
// reconfiguration runs the group at n=3f+2 between the ADD and the
// REMOVE, where two 2f+1 quorums of a 5-member group can intersect in a
// single — possibly Byzantine — replica: the chaos harness caught a
// batch committing through one 3-of-5 quorum while a view change built
// from a mostly-disjoint 3-of-5 quorum saw no certificate for it and
// nulled out the executed sequence number. Any two quorums must
// intersect in at least f+1 replicas at EVERY size the group passes
// through.
func TestQuorumIntersectionHoldsForAllGroupSizes(t *testing.T) {
	for n := 4; n <= 13; n++ {
		ids := make([]transport.NodeID, n)
		pubs := make(map[transport.NodeID]ed25519.PublicKey, n)
		for i := range ids {
			ids[i] = transport.NodeID(i)
			pubs[ids[i]], _ = keypair(t)
		}
		mem, err := NewMembership(ids, pubs)
		if err != nil {
			t.Fatal(err)
		}
		f, q := mem.F(), mem.Quorum()
		if q > n {
			t.Errorf("n=%d: quorum %d exceeds the group", n, q)
		}
		// Two quorums overlap in at least 2q-n members; safety needs an
		// honest replica in every overlap even with f compromised.
		if 2*q-n < f+1 {
			t.Errorf("n=%d f=%d: quorums of %d can intersect in %d members, need >= %d",
				n, f, q, 2*q-n, f+1)
		}
		if n == 3*f+1 && q != 2*f+1 {
			t.Errorf("n=%d (steady state 3f+1): quorum %d, want the classic %d", n, q, 2*f+1)
		}
	}
}

// TestReconfigFencesPipelinedInstances: an instance pipelined past a
// reconfiguration was proposed — and certified — under the OLD epoch's
// membership. A view change in the new epoch cannot validate that
// certificate (different quorum thresholds and view→primary mapping),
// so it would discard it and re-propose a null batch over a sequence
// number other replicas executed for real, splitting the group.
// Executing a reconfiguration must therefore fence the pipeline: drop
// every in-flight instance above it, requeue their requests, and rewind
// the proposal counter so the new epoch reuses those sequence numbers.
func TestReconfigFencesPipelinedInstances(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1] // backup of view 0; unstarted, driven directly

	// Seq 1: a controller-signed reconfiguration (ADD replica 9).
	newPub, _ := keypair(t)
	op, err := EncodeReconfigOp(ReconfigOp{Add: true, Replica: 9, PubKey: newPub})
	if err != nil {
		t.Fatal(err)
	}
	recReq := Request{Client: transport.ClientIDBase + 999, Seq: 1, Op: op}
	recReq.Sign(c.ctrlPriv)
	recBatch := &Batch{Requests: []Request{recReq}}

	// Seq 2: a normal request the primary pipelined past the reconfig.
	userReq := signedReq(c, transport.ClientIDBase, 1, "add 3")
	userBatch := &Batch{Requests: []Request{userReq}}

	for seq, b := range []*Batch{recBatch, userBatch} {
		r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0,
			SeqNo: uint64(seq + 1), Batch: b, BatchDigest: b.Digest()}))
	}

	// Drive ONLY seq 1 (the reconfiguration) to execution.
	rd := recBatch.Digest()
	for _, from := range []transport.NodeID{2, 3} {
		r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: from, View: 0, SeqNo: 1, BatchDigest: rd}))
	}
	for _, from := range []transport.NodeID{0, 2} {
		r.onCommit(&Message{Type: MsgCommit, From: from, View: 0, SeqNo: 1, BatchDigest: rd})
	}

	if r.lastExec != 1 {
		t.Fatalf("reconfiguration did not execute (lastExec %d)", r.lastExec)
	}
	if r.membership.Epoch != 1 {
		t.Fatalf("epoch %d after reconfiguration, want 1", r.membership.Epoch)
	}
	if in := r.log[2]; in != nil {
		t.Fatal("instance pipelined past the reconfiguration survived the epoch fence")
	}
	if r.seq != r.lastExec {
		t.Fatalf("proposal counter %d not rewound to lastExec %d: the dropped "+
			"sequence number would never be re-proposed and execution would stall", r.seq, r.lastExec)
	}
	if !r.pendingSet[userReq.Digest()] {
		t.Fatal("fenced instance's request was not requeued")
	}
}

// TestCatchUpCertificateHealsEquivocatedStraggler: a straggler fed the
// minority variant by an equivocating primary can never assemble a
// same-view prepare quorum for it, and commit votes for the majority
// digest used to be discarded as mismatched — wedging the replica
// forever. The fix is two-sided: mismatched commit votes are buffered
// (digest filtering happens at tally time), and a caught-up peer answers
// with a MsgCatchUp carrying the full prepared certificate, which the
// straggler validates on its own merits and adopts wholesale.
func TestCatchUpCertificateHealsEquivocatedStraggler(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[3] // the equivocation victim; unstarted, driven directly

	minority := &Batch{}
	majority := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, 1, "add 5")}}
	md := majority.Digest()

	// Equivocating primary 0 fed this replica the empty variant.
	r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1,
		Batch: minority, BatchDigest: minority.Digest()}))

	// The honest quorum's commit votes arrive carrying the majority
	// digest. They conflict with our instance's digest but MUST be
	// buffered: once the certificate below proves the quorum went the
	// other way, these are exactly the votes that complete commitment.
	for _, from := range []transport.NodeID{1, 2} {
		r.onCommit(&Message{Type: MsgCommit, From: from, View: 0, SeqNo: 1, BatchDigest: md})
	}
	if r.lastExec != 0 {
		t.Fatalf("executed prematurely (lastExec %d)", r.lastExec)
	}

	// A caught-up peer answers with the prepared certificate: the signed
	// pre-prepare plus quorum-1 signed same-view prepares.
	pp := signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0, SeqNo: 1, Batch: majority, BatchDigest: md})
	pr1 := signedMsg(c, &Message{Type: MsgPrepare, From: 1, View: 0, SeqNo: 1, BatchDigest: md})
	pr2 := signedMsg(c, &Message{Type: MsgPrepare, From: 2, View: 0, SeqNo: 1, BatchDigest: md})
	r.onCatchUp(&Message{Type: MsgCatchUp, From: 1, SeqNo: 1, Prepared: []PreparedProof{{
		View: 0, SeqNo: 1, BatchDigest: md, Batch: majority, PrePrepare: pp, Prepares: []Message{*pr1, *pr2},
	}}})

	if in := r.log[1]; in == nil || in.digest != md {
		t.Fatal("certificate was not adopted over the minority proposal")
	}
	if r.lastExec != 1 {
		t.Fatal("buffered majority commits + adopted certificate did not execute: straggler stays wedged")
	}
	if got := c.apps[3].Value(); got != 5 {
		t.Fatalf("executed the wrong batch: counter %d, want 5", got)
	}
}

// TestNewViewRewindsPhantomPipeline: installNewView discards in-flight
// instances not re-proposed in O, but it used to only ever RAISE the
// proposal counter. The counter then pointed past instances that no
// longer exist, so the primary counted r.seq-r.lastExec ghosts against
// PipelineDepth and — with the pipeline "full" of phantoms — never
// proposed again: a permanent, view-change-storm-shaped livelock. The
// counter must be re-anchored to the reconciled log.
func TestNewViewRewindsPhantomPipeline(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1] // primary of view 1; unstarted, driven directly

	// Four in-flight proposals from view 0; none prepared.
	batches := make([]*Batch, 5)
	for seq := uint64(1); seq <= 4; seq++ {
		b := &Batch{Requests: []Request{signedReq(c, transport.ClientIDBase, seq, "add 1")}}
		batches[seq] = b
		r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0,
			SeqNo: seq, Batch: b, BatchDigest: b.Digest()}))
	}
	r.seq = 4 // where a primary's counter stands with four in flight

	// The view change's O re-proposes only seq 1 (nothing else prepared).
	r.installNewView(1, []Message{{Type: MsgPrePrepare, View: 1, SeqNo: 1,
		Batch: batches[1], BatchDigest: batches[1].Digest()}}, 0)

	if r.seq != 1 {
		t.Fatalf("proposal counter %d after new view, want 1: the %d phantom instances "+
			"would permanently exhaust the pipeline", r.seq, r.seq-1)
	}
	for seq := uint64(2); seq <= 4; seq++ {
		if r.log[seq] != nil {
			t.Fatalf("discarded instance %d still in the log", seq)
		}
		if !r.pendingSet[batches[seq].Requests[0].Digest()] {
			t.Fatalf("request from discarded instance %d was not requeued", seq)
		}
	}
}

// drainInbox empties the transport inbox of an UNSTARTED replica,
// decoding each frame and stamping the transport-layer sender the way
// the replica's pump does. Delivery in the test Memory network is
// synchronous, so everything already sent is already queued.
func drainInbox(t *testing.T, c *cluster, id transport.NodeID) []*Message {
	t.Helper()
	ep, err := c.net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Message
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		env, err := ep.Recv(ctx)
		cancel()
		if err != nil {
			return out
		}
		m, err := Decode(env.Payload)
		if err != nil {
			continue
		}
		m.From = env.From
		out = append(out, m)
	}
}

// TestCheckpointStragglerRescue: checkpoint votes are broadcast exactly
// once, so a replica whose copies were lost (mid-state-transfer, or
// garbled by a Byzantine peer) could never stabilize its own checkpoint.
// Its window then jams against the stale low watermark
// (seq == lowWater+WindowSize), it stops accepting proposals, and during
// the reconfiguration window's n=3f+2 quorums that one silent replica
// wedges the whole group. The rescue protocol pinned here: every replica
// retains its newest signed vote past garbage collection, advertises its
// stable point on the vote (and on view changes), re-advertises the vote
// on progress timeouts while it is unstabilized, answers senders whose
// advertised stable point trails its own, and re-signs the retained
// vote's advertisement when the watermark advances.
func TestCheckpointStragglerRescue(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	straggler := c.replicas[1]
	helper := c.replicas[2]

	// Both executed through seq 8 and checkpointed — but every peer vote
	// the straggler should have received was lost in transit.
	straggler.lastExec, straggler.seq = 8, 8
	helper.lastExec, helper.seq = 8, 8
	straggler.takeCheckpoint(8)
	helper.takeCheckpoint(8)

	d := helper.ckpts[8].digest
	if straggler.ckpts[8].digest != d {
		t.Fatal("identical states hashed to different checkpoint digests")
	}
	if v := straggler.lastCkptVote; v == nil || v.SeqNo != 8 || v.LastStable != 0 {
		t.Fatalf("retained vote %+v, want seq 8 advertising stable point 0", v)
	}

	// The helper stabilizes checkpoint 8 with votes from 1 and 3.
	for _, from := range []transport.NodeID{1, 3} {
		helper.onCheckpoint(signedMsg(c, &Message{Type: MsgCheckpoint, From: from,
			SeqNo: 8, StateDigest: d}))
	}
	if helper.lowWater != 8 {
		t.Fatalf("helper low watermark %d, want 8", helper.lowWater)
	}
	// The retained vote's advertisement must track the new watermark AND
	// stay verifiable (the signature covers LastStable): a stale
	// advertisement would make two healthy replicas answer each other's
	// rescue votes forever.
	if helper.lastCkptVote.LastStable != 8 {
		t.Fatalf("retained vote advertises stable point %d after advance, want 8", helper.lastCkptVote.LastStable)
	}
	if !helper.lastCkptVote.VerifySig(c.pubs[2]) {
		t.Fatal("retained vote was not re-signed after its advertisement changed")
	}

	// The straggler's progress timer fires: it must re-advertise its
	// unstabilized vote (plus a view-change volunteer — both carry the
	// stale stable point and both channels must draw an answer).
	drainInbox(t, c, 2) // discard the original broadcasts
	straggler.onProgressTimeout()
	var readvert, volunteer *Message
	for _, m := range drainInbox(t, c, 2) {
		switch m.Type {
		case MsgCheckpoint:
			readvert = m
		case MsgViewChange:
			volunteer = m
		}
	}
	if readvert == nil || readvert.SeqNo != 8 || readvert.LastStable != 0 {
		t.Fatalf("progress timeout did not re-advertise the unstabilized vote (got %+v)", readvert)
	}
	if volunteer == nil || volunteer.LastStable != 0 {
		t.Fatalf("view-change volunteer does not advertise the stable point (got %+v)", volunteer)
	}

	// Each channel must draw the helper's retained vote as an answer.
	for name, deliver := range map[string]func(){
		"checkpoint": func() { helper.onCheckpoint(readvert) },
		"viewchange": func() { helper.onViewChange(volunteer) },
	} {
		drainInbox(t, c, 1)
		deliver()
		var answered bool
		for _, m := range drainInbox(t, c, 1) {
			if m.Type == MsgCheckpoint && m.From == 2 && m.SeqNo == 8 && m.LastStable == 8 {
				answered = true
			}
		}
		if !answered {
			t.Fatalf("%s channel: helper did not answer the straggler with its retained vote", name)
		}
	}

	// The answers re-supply the lost quorum: helper's vote plus one more
	// peer's unjams the straggler.
	straggler.onCheckpoint(helper.lastCkptVote)
	straggler.onCheckpoint(signedMsg(c, &Message{Type: MsgCheckpoint, From: 3,
		SeqNo: 8, StateDigest: d, LastStable: 8}))
	if straggler.lowWater != 8 {
		t.Fatalf("straggler low watermark %d after rescue, want 8: its window stays jammed", straggler.lowWater)
	}
}

// TestReconfigCheckpointMatchesExecutedState: applyReconfig used to take
// its checkpoint mid-request — before executeRequest recorded the
// reconfiguration's own reply, which is part of the snapshot — so the
// vote it broadcast carried a digest no peer's interval checkpoint at
// the same seq could match (and at interval-coinciding seqs the replica
// broadcast a SECOND, different digest moments later). Honest votes
// split between the two digests, and one vote-garbling attacker was
// then enough to keep either from reaching quorum. The checkpoint is
// now deferred to executeReady: one vote per seq, snapshotting the
// fully-executed state.
func TestReconfigCheckpointMatchesExecutedState(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1] // backup of view 0; unstarted, driven directly

	newPub, _ := keypair(t)
	op, err := EncodeReconfigOp(ReconfigOp{Add: true, Replica: 9, PubKey: newPub})
	if err != nil {
		t.Fatal(err)
	}
	recReq := Request{Client: transport.ClientIDBase + 999, Seq: 1, Op: op}
	recReq.Sign(c.ctrlPriv)
	b := &Batch{Requests: []Request{recReq}}
	bd := b.Digest()
	r.onPrePrepare(signedMsg(c, &Message{Type: MsgPrePrepare, From: 0, View: 0,
		SeqNo: 1, Batch: b, BatchDigest: bd}))
	for _, from := range []transport.NodeID{2, 3} {
		r.onPrepare(signedMsg(c, &Message{Type: MsgPrepare, From: from, View: 0, SeqNo: 1, BatchDigest: bd}))
	}
	for _, from := range []transport.NodeID{0, 2} {
		r.onCommit(&Message{Type: MsgCommit, From: from, View: 0, SeqNo: 1, BatchDigest: bd})
	}
	if r.lastExec != 1 {
		t.Fatalf("reconfiguration did not execute (lastExec %d)", r.lastExec)
	}
	if r.lastCkptVote == nil || r.lastCkptVote.SeqNo != 1 {
		t.Fatalf("no checkpoint vote at the reconfiguration seq (got %+v)", r.lastCkptVote)
	}
	snap, err := r.encodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if want := Digest(sha256.Sum256(snap)); r.lastCkptVote.StateDigest != want {
		t.Fatalf("checkpoint vote digest %x does not match the post-execution state %x: "+
			"the snapshot was taken mid-request, before the reconfig's reply record",
			r.lastCkptVote.StateDigest[:4], want[:4])
	}
	// Exactly one vote went out at this seq: a second (divergent) vote
	// would re-open the split-digest hole.
	votes := 0
	for _, m := range drainInbox(t, c, 2) {
		if m.Type == MsgCheckpoint && m.From == 1 && m.SeqNo == 1 {
			votes++
		}
	}
	if votes != 1 {
		t.Fatalf("%d checkpoint votes broadcast at the reconfiguration seq, want exactly 1", votes)
	}
}

// TestStateTransferredReplicaVotesAtRestorePoint: a replica that reaches
// seq S by state transfer never executed S, so it used to cast no
// checkpoint vote there — even though the f+1-vouched snapshot it holds
// is exactly what a vote attests to. Freshly swapped-in members are the
// common case; their silence left post-reconfiguration groups a vote
// short at the reconfig checkpoint, and one vote-garbling attacker then
// jammed every straggler's window until the attack relented.
func TestStateTransferredReplicaVotesAtRestorePoint(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	helper := c.replicas[1]
	straggler := c.replicas[3]

	// A peer that genuinely executed through seq 8 supplies the snapshot.
	helper.lastExec, helper.seq = 8, 8
	snap, err := helper.encodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := Digest(sha256.Sum256(snap))

	for _, from := range []transport.NodeID{1, 2} { // f+1 = 2 vouchers
		reply := &Message{Type: MsgStateReply, From: from, SnapSeqNo: 8, Snapshot: snap}
		reply.Sign(c.keys[from])
		straggler.onStateReply(reply)
	}
	if straggler.lastExec != 8 {
		t.Fatalf("state transfer did not restore (lastExec %d)", straggler.lastExec)
	}
	if straggler.lastCkptVote == nil || straggler.lastCkptVote.SeqNo != 8 ||
		straggler.lastCkptVote.StateDigest != want {
		t.Fatalf("restored replica retained no checkpoint vote at the restore point (got %+v)",
			straggler.lastCkptVote)
	}
	found := false
	for _, m := range drainInbox(t, c, 1) {
		if m.Type == MsgCheckpoint && m.From == 3 && m.SeqNo == 8 && m.StateDigest == want {
			found = true
		}
	}
	if !found {
		t.Fatal("restored replica did not broadcast its checkpoint vote: " +
			"peers counting toward stability at seq 8 stay one vote short")
	}
}
