package bft

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/gob"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// FaultMode injects Byzantine behaviour into a replica, for testing the
// protocol's fault tolerance.
type FaultMode int

// Fault modes.
const (
	// FaultNone is a correct replica.
	FaultNone FaultMode = iota
	// FaultSilent stops sending any protocol message (crash-like).
	FaultSilent
	// FaultEquivocate makes a Byzantine primary propose different
	// batches to different replicas.
	FaultEquivocate
	// FaultCorruptReply sends corrupted results to clients.
	FaultCorruptReply
)

// ReplicaConfig configures one replica.
type ReplicaConfig struct {
	// ID is this replica's node id (must be in the initial membership
	// unless Joining).
	ID transport.NodeID
	// Key is this replica's signing key.
	Key ed25519.PrivateKey
	// Membership is the initial configuration.
	Membership *Membership
	// App is the replicated service.
	App Application
	// Net provides the endpoint.
	Net transport.Network
	// ClientKeys authenticates client requests.
	ClientKeys map[transport.NodeID]ed25519.PublicKey
	// ControllerKey authenticates reconfiguration operations (the
	// Lazarus control plane's key).
	ControllerKey ed25519.PublicKey
	// BatchSize caps requests per consensus instance (default 16).
	BatchSize int
	// BatchDelay is the fallback proposal tick (default 2ms). The
	// primary proposes eagerly as requests arrive; the tick only sweeps
	// up requests left pending by a full pipeline or window.
	BatchDelay time.Duration
	// PipelineDepth caps consensus instances in flight — proposed but
	// not yet executed — letting agreement rounds for several batches
	// overlap instead of running serially (default 8; 1 restores
	// one-at-a-time ordering).
	PipelineDepth int
	// VerifyWorkers sizes the pool that verifies request signatures off
	// the event loop (default 4).
	VerifyWorkers int
	// CheckpointInterval is K, the period of checkpoints (default 128).
	CheckpointInterval uint64
	// WindowSize is L, the log window (default 2K).
	WindowSize uint64
	// ViewChangeTimeout is the request-progress timer (default 300ms).
	// With AdaptiveTimeout it is only the pre-sample base; afterwards the
	// timer tracks measured consensus round trips.
	ViewChangeTimeout time.Duration
	// AdaptiveTimeout switches the progress timer from the static
	// ViewChangeTimeout constant to a measured-RTT base with exponential
	// backoff on consecutive timeouts and decay on progress (see
	// timeoutCtl). Off by default: deterministic tests pin exact timer
	// behaviour, and the perf harness compares both modes.
	AdaptiveTimeout bool
	// TimeoutMin and TimeoutMax clamp the adaptive timer (defaults
	// ViewChangeTimeout/4 and 8×ViewChangeTimeout). Ignored when
	// AdaptiveTimeout is off.
	TimeoutMin, TimeoutMax time.Duration
	// Joining marks a replica that starts outside the group and must
	// state-transfer in after a reconfiguration adds it.
	Joining bool
	// Fault selects Byzantine behaviour (tests only).
	Fault FaultMode
	// Logf receives debug logging (nil = discard).
	Logf func(format string, args ...any)
	// Metrics optionally registers the replica's instruments (commit
	// latency, batch occupancy, per-phase message counts, ...) under
	// "bft.*". Replicas sharing a registry aggregate.
	Metrics *metrics.Registry
	// Trace optionally receives structured protocol events (consensus
	// lifecycle, view changes, state transfers, checkpoints).
	Trace *metrics.Tracer
}

func (c *ReplicaConfig) fill() error {
	switch {
	case c.Membership == nil:
		return fmt.Errorf("bft: replica %d: nil membership", c.ID)
	case c.App == nil:
		return fmt.Errorf("bft: replica %d: nil application", c.ID)
	case c.Net == nil:
		return fmt.Errorf("bft: replica %d: nil network", c.ID)
	case len(c.Key) != ed25519.PrivateKeySize:
		return fmt.Errorf("bft: replica %d: bad private key", c.ID)
	case !c.Joining && !c.Membership.Contains(c.ID):
		return fmt.Errorf("bft: replica %d not in initial membership", c.ID)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 8
	}
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = 4
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 128
	}
	if c.WindowSize == 0 {
		c.WindowSize = 2 * c.CheckpointInterval
	}
	if c.ViewChangeTimeout <= 0 {
		c.ViewChangeTimeout = 300 * time.Millisecond
	}
	if c.TimeoutMin <= 0 {
		c.TimeoutMin = c.ViewChangeTimeout / 4
	}
	if c.TimeoutMax <= 0 {
		c.TimeoutMax = 8 * c.ViewChangeTimeout
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// instance is the per-sequence-number agreement state. Prepare and
// commit votes record the digest each sender voted for: votes can arrive
// before the pre-prepare fixes the instance's digest, and tallying
// buffered votes without their digests would let votes for different
// proposals count toward one quorum.
type instance struct {
	prePrepare *Message
	batch      *Batch
	digest     Digest
	prepares   map[transport.NodeID]Digest
	commits    map[transport.NodeID]Digest
	// prepareMsgs keeps the signed prepare messages matching the
	// instance's digest: together with the signed pre-prepare they form
	// the prepared certificate carried in view changes.
	prepareMsgs map[transport.NodeID]*Message
	// cert is the prepared certificate snapshotted the moment the
	// prepared predicate fired (see preparedCert): a later new-view
	// re-proposal rebinds prePrepare to a newer view, but the signed
	// prepares on hand prove preparedness in the view they were cast.
	cert      *PreparedProof
	prepared  bool
	committed bool
	executed  bool
	// startedAt stamps pre-prepare acceptance; execution observes the
	// difference as this instance's commit latency.
	startedAt time.Time
}

// clientRecord deduplicates client requests and caches the last reply.
type clientRecord struct {
	lastSeq   uint64
	lastReply *Message
}

// checkpointState tracks checkpoint votes at one sequence number.
type checkpointState struct {
	votes    map[transport.NodeID]Digest
	snapshot []byte // set on the replica's own checkpoint
	digest   Digest
	stable   bool
}

// Replica is one BFT state machine replica. Create with NewReplica, start
// with Start, stop with Stop. All protocol state is confined to the event
// loop goroutine.
type Replica struct {
	cfg ReplicaConfig
	ep  transport.Endpoint

	// Event-loop state (no locking; single goroutine).
	membership *Membership
	view       uint64
	seq        uint64 // next sequence number to assign (primary)
	lowWater   uint64
	lastExec   uint64
	log        map[uint64]*instance
	clients    map[transport.NodeID]*clientRecord
	pending    []Request
	pendingSet map[Digest]bool
	ckpts      map[uint64]*checkpointState
	// ckptAhead records, per member, the latest beyond-window checkpoint
	// SeqNo it claimed. Bounded by membership size — unlike keying ckpts
	// on attacker-chosen SeqNos — and f+1 distinct claims prove the group
	// moved past our window (see onCheckpoint).
	ckptAhead map[transport.NodeID]uint64
	lastSnap  []byte // snapshot at lowWater, for state transfer
	// lastCkptVote is this replica's newest signed checkpoint vote. It
	// survives checkpoint garbage collection so a straggler whose quorum
	// votes were lost in transit can be answered long after the fact —
	// without it, a replica stuck one stability round behind can exhaust
	// its proposal window and wedge permanently (see onCheckpoint).
	lastCkptVote *Message
	// ckptDue defers a reconfiguration's checkpoint to the end of the
	// executing batch. applyReconfig runs mid-request: snapshotting there
	// would exclude the reconfig request's own reply record (written by
	// executeRequest after applyReconfig returns), producing a digest no
	// interval checkpoint at the same seq could ever match.
	ckptDue bool
	joining bool

	// View change state.
	viewChanges  map[uint64]map[transport.NodeID]*Message
	inViewChange bool
	vcTarget     uint64 // highest view this replica volunteered for
	vcTimer      *time.Timer
	vcArmed      bool
	// toctl drives the progress-timer duration (static or adaptive).
	toctl timeoutCtl

	// State transfer state.
	stReplies  map[transport.NodeID]*Message
	epochProbe uint64 // highest epoch a state transfer was triggered for
	// epochClaims records, per member, the highest future epoch it
	// claimed; f+1 distinct claimants are needed before state transfer
	// is triggered (see noteEpochClaim).
	epochClaims map[transport.NodeID]uint64

	// Request authentication (see verify.go). verified is loop-owned;
	// verifyJobs feeds the worker pool and is nil until Start.
	verified   *verdictCache
	verifyJobs chan *Message

	// Lifecycle.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	inbox  chan *Message

	// Observability (mutex-guarded; read from outside the loop).
	statMu    sync.Mutex
	stats     ReplicaStats
	execTrace []ExecRecord
	ins       replicaInstruments
	trace     *metrics.Tracer
}

// ExecRecord pairs an executed sequence number with the digest of the
// batch executed there, plus the epoch and view the replica held at
// execution time. The Byzantine chaos harness cross-checks the traces
// of honest replicas pairwise: two honest replicas must never execute
// different batches at the same sequence number — and when they do, the
// epoch/view context says which fork each side was on.
type ExecRecord struct {
	Seq    uint64
	Digest Digest
	Epoch  uint64
	View   uint64
}

// execTraceCap bounds the in-memory execution trace.
const execTraceCap = 8192

// ExecTrace returns a copy of the replica's bounded execution trace
// (most recent execTraceCap entries, oldest first).
func (r *Replica) ExecTrace() []ExecRecord {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return append([]ExecRecord(nil), r.execTrace...)
}

func (r *Replica) recordExec(seq uint64, digest Digest) {
	r.statMu.Lock()
	r.execTrace = append(r.execTrace, ExecRecord{
		Seq: seq, Digest: digest,
		Epoch: r.membership.Epoch, View: r.view,
	})
	if len(r.execTrace) > execTraceCap {
		r.execTrace = r.execTrace[len(r.execTrace)-execTraceCap:]
	}
	r.statMu.Unlock()
}

// ReplicaStats exposes coarse counters for tests and monitoring.
type ReplicaStats struct {
	Executed        uint64
	Checkpoints     uint64
	ViewChanges     uint64
	StateTransfers  uint64
	Reconfigs       uint64
	CurrentView     uint64
	CurrentEpoch    uint64
	LastExecuted    uint64
	MembershipSize  int
	PendingRequests int
	// LowWater and SeqHead bound the proposal window: proposals stop
	// when SeqHead reaches LowWater+WindowSize, so a stuck LowWater
	// (checkpoint that never stabilizes) is a liveness smoking gun.
	LowWater uint64
	SeqHead  uint64
	// LogInstances and CheckpointStates size the in-memory protocol
	// state; checkpoint garbage collection must keep both bounded.
	LogInstances     int
	CheckpointStates int
}

// NewReplica validates the configuration and builds a replica.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ep, err := cfg.Net.Endpoint(cfg.ID)
	if err != nil {
		return nil, fmt.Errorf("bft: replica %d endpoint: %w", cfg.ID, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		cfg:         cfg,
		ep:          ep,
		membership:  cfg.Membership.Clone(),
		log:         make(map[uint64]*instance),
		clients:     make(map[transport.NodeID]*clientRecord),
		pendingSet:  make(map[Digest]bool),
		ckpts:       make(map[uint64]*checkpointState),
		ckptAhead:   make(map[transport.NodeID]uint64),
		viewChanges: make(map[uint64]map[transport.NodeID]*Message),
		stReplies:   make(map[transport.NodeID]*Message),
		epochClaims: make(map[transport.NodeID]uint64),
		joining:     cfg.Joining,
		verified:    newVerdictCache(4096),
		ctx:         ctx,
		cancel:      cancel,
		inbox:       make(chan *Message, 1024),
		ins:         newReplicaInstruments(cfg.Metrics),
		trace:       cfg.Trace,
	}
	r.toctl = newTimeoutCtl(cfg.AdaptiveTimeout, cfg.ViewChangeTimeout, cfg.TimeoutMin, cfg.TimeoutMax)
	r.vcTimer = time.NewTimer(time.Hour)
	if !r.vcTimer.Stop() {
		<-r.vcTimer.C
	}
	return r, nil
}

// ID returns the replica's node id.
func (r *Replica) ID() transport.NodeID { return r.cfg.ID }

// Stats returns a snapshot of the replica's counters.
func (r *Replica) Stats() ReplicaStats {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return r.stats
}

func (r *Replica) updateStats(f func(*ReplicaStats)) {
	r.statMu.Lock()
	f(&r.stats)
	r.stats.CurrentView = r.view
	r.stats.CurrentEpoch = r.membership.Epoch
	r.stats.LastExecuted = r.lastExec
	r.stats.MembershipSize = r.membership.N()
	r.stats.PendingRequests = len(r.pending)
	r.stats.LogInstances = len(r.log)
	r.stats.CheckpointStates = len(r.ckpts)
	r.stats.LowWater = r.lowWater
	r.stats.SeqHead = r.seq
	r.statMu.Unlock()
}

// Start launches the receive pump, the verify pool and the event loop.
func (r *Replica) Start() {
	r.verifyJobs = make(chan *Message, 4*r.cfg.VerifyWorkers)
	r.wg.Add(r.cfg.VerifyWorkers)
	for i := 0; i < r.cfg.VerifyWorkers; i++ {
		go r.verifyWorker()
	}
	r.wg.Add(2)
	go r.pump()
	go r.loop()
	if r.joining {
		// A joining replica bootstraps by asking the group for state.
		r.requestStateTransfer()
	}
}

// Stop terminates the replica and waits for its goroutines.
func (r *Replica) Stop() {
	r.cancel()
	r.ep.Close()
	r.wg.Wait()
}

// pump moves envelopes from the transport into the event loop.
func (r *Replica) pump() {
	defer r.wg.Done()
	for {
		env, err := r.ep.Recv(r.ctx)
		if err != nil {
			return
		}
		msg, err := Decode(env.Payload)
		if err != nil {
			r.cfg.Logf("replica %d: dropping undecodable message from %d: %v", r.cfg.ID, env.From, err)
			continue
		}
		// The transport authenticates the envelope sender; the envelope
		// origin overrides whatever the payload claims.
		msg.From = env.From
		select {
		case r.inbox <- msg:
		case <-r.ctx.Done():
			return
		}
	}
}

// loop is the single-threaded protocol engine.
func (r *Replica) loop() {
	defer r.wg.Done()
	batchTicker := time.NewTicker(r.cfg.BatchDelay)
	defer batchTicker.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case msg := <-r.inbox:
			r.dispatch(msg)
		case <-batchTicker.C:
			r.proposeAll()
		case <-r.vcTimer.C:
			r.vcArmed = false
			r.onProgressTimeout()
		}
	}
}

func (r *Replica) dispatch(msg *Message) {
	if r.cfg.Fault == FaultSilent {
		// A silent replica still consumes messages but never responds;
		// execution state freezes.
		return
	}
	// Epoch-gap detection: the ordering handlers silently drop messages
	// from other epochs, so without this a replica that missed a
	// reconfiguration would never learn it is behind — the group splits
	// into epoch camps that cannot hear each other and, if neither camp
	// is a quorum, wedges forever. A member claiming a higher epoch
	// registers a claim; f+1 distinct claimants trigger state transfer
	// (see noteEpochClaim).
	if msg.Epoch > r.membership.Epoch && r.membership.Contains(msg.From) {
		r.noteEpochClaim(msg.From, msg.Epoch)
	}
	if msg.Type >= MsgRequest && msg.Type <= MsgCatchUp {
		r.ins.msgIn[msg.Type].Inc()
	}
	switch msg.Type {
	case MsgRequest:
		if !r.ensureAuth(msg) {
			return // offloaded; re-enters the inbox with verdicts
		}
		r.onRequest(msg)
	case MsgPrePrepare:
		// Cheap structural checks first, so signature work is never
		// spent on proposals that cannot be accepted anyway.
		if !r.prePrepareAdmissible(msg) {
			return
		}
		// Capture the claimed sender's key on the loop (membership is
		// loop-owned) so the pool can verify the replica signature too.
		msg.repSigKey = r.membership.Keys[msg.From]
		if !r.ensureAuth(msg) {
			return // offloaded; re-enters the inbox with verdicts
		}
		r.onPrePrepare(msg)
	case MsgPrepare:
		if pub, ok := r.membership.Keys[msg.From]; ok {
			msg.repSigKey = pub
		}
		if !r.ensureAuth(msg) {
			return // offloaded; re-enters the inbox with verdicts
		}
		r.onPrepare(msg)
	case MsgCommit:
		r.onCommit(msg)
	case MsgCheckpoint:
		r.onCheckpoint(msg)
	case MsgViewChange:
		r.onViewChange(msg)
	case MsgNewView:
		r.onNewView(msg)
	case MsgStateRequest:
		r.onStateRequest(msg)
	case MsgStateReply:
		r.onStateReply(msg)
	case MsgCatchUp:
		r.onCatchUp(msg)
	default:
		r.cfg.Logf("replica %d: unknown message type %v from %d", r.cfg.ID, msg.Type, msg.From)
	}
}

// send serializes and sends one message.
func (r *Replica) send(to transport.NodeID, msg *Message) {
	msg.From = r.cfg.ID
	payload, err := Encode(msg)
	if err != nil {
		r.cfg.Logf("replica %d: encode: %v", r.cfg.ID, err)
		return
	}
	if err := r.ep.Send(to, payload); err != nil {
		r.cfg.Logf("replica %d: send to %d: %v", r.cfg.ID, to, err)
	}
}

// broadcast sends to every current member (except self), encoding the
// message once: per-peer re-encoding was pure waste (the pre-prepare's
// batch alone could be kilobytes, gob-encoded n-1 times), and no peer
// mutates the shared payload.
func (r *Replica) broadcast(msg *Message) {
	msg.From = r.cfg.ID
	payload, err := Encode(msg)
	if err != nil {
		r.cfg.Logf("replica %d: encode: %v", r.cfg.ID, err)
		return
	}
	for _, id := range r.membership.Replicas {
		if id != r.cfg.ID {
			if err := r.ep.Send(id, payload); err != nil {
				r.cfg.Logf("replica %d: send to %d: %v", r.cfg.ID, id, err)
			}
		}
	}
}

// primary reports whether this replica leads the current view.
func (r *Replica) primary() bool {
	return r.membership.Primary(r.view) == r.cfg.ID
}

// inWindow checks the watermarks.
func (r *Replica) inWindow(seq uint64) bool {
	return seq > r.lowWater && seq <= r.lowWater+r.cfg.WindowSize
}

// inst returns (creating if needed) the agreement state for seq.
func (r *Replica) inst(seq uint64) *instance {
	in, ok := r.log[seq]
	if !ok {
		in = &instance{
			prepares:    make(map[transport.NodeID]Digest),
			commits:     make(map[transport.NodeID]Digest),
			prepareMsgs: make(map[transport.NodeID]*Message),
		}
		r.log[seq] = in //lazlint:allow unbounded-remote-map(every remote-derived path here is window-bounded: the message handlers gate on inWindow before calling inst, and acceptPrePrepare's other caller installNewView only replays a verified NEW-VIEW proposal set of at most one window)
	}
	return in
}

// noteEpochClaim records a member's claim of a higher epoch and triggers
// epoch state transfer once f+1 distinct members agree we are behind.
// A single claimant must never be believed: messages reaching dispatch
// are not yet signature-checked, and even an authenticated claim from one
// Byzantine member could otherwise pin epochProbe at a huge value and
// keep the replica in perpetual state-transfer noise. f+1 distinct
// claimants guarantee at least one honest replica really is ahead; the
// smallest claimed epoch is the conservatively proven target.
func (r *Replica) noteEpochClaim(from transport.NodeID, epoch uint64) {
	if prev := r.epochClaims[from]; epoch > prev {
		r.epochClaims[from] = epoch
	}
	count := 0
	var minClaim uint64
	for id, e := range r.epochClaims {
		if e > r.membership.Epoch && r.membership.Contains(id) {
			count++
			if minClaim == 0 || e < minClaim {
				minClaim = e
			}
		}
	}
	if count >= r.membership.F()+1 {
		r.maybeEpochSync(minClaim)
	}
}

// fromMember checks the sender is a current group member.
func (r *Replica) fromMember(msg *Message) bool {
	return r.membership.Contains(msg.From)
}

// verifySigned checks a signed message's replica signature.
func (r *Replica) verifySigned(msg *Message) bool {
	pub, ok := r.membership.Keys[msg.From]
	if !ok {
		return false
	}
	return msg.VerifySig(pub)
}

// replicaSnapshot is the full serialized replica state used by
// checkpoints and state transfer: the application state plus the
// protocol metadata a joiner needs. Maps are flattened into sorted slices
// because checkpoint agreement hashes these bytes — the encoding must be
// deterministic across replicas. The view is deliberately NOT part of the
// snapshot: it is protocol-local, replicas at the same sequence number
// legitimately disagree about it mid-view-change, and including it made
// same-state checkpoints hash differently (blocking stability) while
// restoring it dragged recovering replicas back to stale views. A
// restored replica keeps its own view and re-synchronizes through the
// view-change protocol.
type replicaSnapshot struct {
	AppState []byte
	LastExec uint64
	Epoch    uint64
	Members  []memberEntry
	Clients  []clientEntry
}

type memberEntry struct {
	ID  transport.NodeID
	Key []byte
}

type clientEntry struct {
	ID      transport.NodeID
	LastSeq uint64
}

func (r *Replica) encodeSnapshot() ([]byte, error) {
	appState, err := r.cfg.App.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("bft: replica %d app snapshot: %w", r.cfg.ID, err)
	}
	snap := replicaSnapshot{
		AppState: appState,
		LastExec: r.lastExec,
		Epoch:    r.membership.Epoch,
	}
	for _, id := range r.membership.Replicas { // already sorted
		snap.Members = append(snap.Members, memberEntry{
			ID:  id,
			Key: append([]byte(nil), r.membership.Keys[id]...),
		})
	}
	clientIDs := make([]transport.NodeID, 0, len(r.clients))
	for id := range r.clients {
		clientIDs = append(clientIDs, id)
	}
	sort.Slice(clientIDs, func(i, j int) bool { return clientIDs[i] < clientIDs[j] })
	for _, id := range clientIDs {
		snap.Clients = append(snap.Clients, clientEntry{ID: id, LastSeq: r.clients[id].lastSeq})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("bft: replica %d snapshot encode: %w", r.cfg.ID, err)
	}
	return buf.Bytes(), nil
}

func (r *Replica) restoreSnapshot(data []byte) error {
	var snap replicaSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("bft: replica %d snapshot decode: %w", r.cfg.ID, err)
	}
	// Validate everything before mutating anything: a corrupted snapshot
	// that decodes but carries a bogus membership must not leave the
	// replica with its application state overwritten and its protocol
	// state intact — restore is all-or-nothing.
	keys := make(map[transport.NodeID]ed25519.PublicKey, len(snap.Members))
	ids := make([]transport.NodeID, 0, len(snap.Members))
	for _, m := range snap.Members {
		keys[m.ID] = ed25519.PublicKey(m.Key)
		ids = append(ids, m.ID)
	}
	mem, err := NewMembership(ids, keys)
	if err != nil {
		return err
	}
	mem.Epoch = snap.Epoch
	if err := r.cfg.App.Restore(snap.AppState); err != nil {
		return fmt.Errorf("bft: replica %d app restore: %w", r.cfg.ID, err)
	}
	r.membership = mem
	r.lastExec = snap.LastExec
	r.seq = snap.LastExec
	r.lowWater = snap.LastExec
	r.log = make(map[uint64]*instance)
	r.ckpts = make(map[uint64]*checkpointState)
	r.ckptAhead = make(map[transport.NodeID]uint64)
	r.epochClaims = make(map[transport.NodeID]uint64)
	r.clients = make(map[transport.NodeID]*clientRecord)
	for _, ce := range snap.Clients {
		r.clients[ce.ID] = &clientRecord{lastSeq: ce.LastSeq}
	}
	r.lastSnap = data
	return nil
}

// logf is a helper for tests wanting verbose replicas.
func StdLogf(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+format, args...)
	}
}
