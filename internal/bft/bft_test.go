package bft

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"lazarus/internal/transport"
)

func TestBasicOrdering(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()

	var want int64
	for i := 1; i <= 10; i++ {
		want += int64(i)
		got := decodeInt(invoke(t, cl, fmt.Sprintf("add %d", i)))
		if got != want {
			t.Fatalf("add %d returned %d, want %d", i, got, want)
		}
	}
	// Every replica converges to the same state.
	eventually(t, 5*time.Second, "replica convergence", func() bool {
		for _, app := range c.apps {
			if app.Value() != want {
				return false
			}
		}
		return true
	})
}

func TestConcurrentClients(t *testing.T) {
	c := newCluster(t, 4, 8, nil)
	c.start()
	defer c.stop()

	const perClient = 15
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := c.client(i)
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for j := 0; j < perClient; j++ {
				if _, err := cl.Invoke(ctx, []byte("add 1")); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := int64(8 * perClient)
	eventually(t, 20*time.Second, "convergence", func() bool {
		for _, app := range c.apps {
			if app.Value() != want {
				return false
			}
		}
		return true
	})
}

func TestToleratesSilentBackup(t *testing.T) {
	// One silent (crashed) non-primary replica: the quorum of 3 keeps
	// the system live.
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		if cfg.ID == 3 { // not the view-0 primary (0)
			cfg.Fault = FaultSilent
		}
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	if got := decodeInt(invoke(t, cl, "add 5")); got != 5 {
		t.Fatalf("result = %d, want 5", got)
	}
	if got := decodeInt(invoke(t, cl, "add 2")); got != 7 {
		t.Fatalf("result = %d, want 7", got)
	}
}

func TestViewChangeOnSilentPrimary(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		if cfg.ID == 0 { // view-0 primary
			cfg.Fault = FaultSilent
		}
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	if got := decodeInt(invoke(t, cl, "add 9")); got != 9 {
		t.Fatalf("result = %d, want 9", got)
	}
	// A correct replica must have moved past view 0.
	eventually(t, 5*time.Second, "view change", func() bool {
		return c.replicas[1].Stats().CurrentView > 0
	})
}

func TestViewChangeOnEquivocatingPrimary(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		if cfg.ID == 0 {
			cfg.Fault = FaultEquivocate
		}
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	if got := decodeInt(invoke(t, cl, "add 3")); got != 3 {
		t.Fatalf("result = %d, want 3", got)
	}
	// Correct replicas must agree (no divergence despite equivocation).
	eventually(t, 5*time.Second, "correct replicas converge", func() bool {
		return c.apps[1].Value() == 3 && c.apps[2].Value() == 3 && c.apps[3].Value() == 3
	})
}

// TestViewChangeCatchesUpStraggler pins the commit re-announcement in
// installNewView. A replica that misses committed instances while
// partitioned (below the first checkpoint boundary, so state transfer
// cannot help) re-prepares them from the new view's re-proposals — but
// the peers that already executed them take checkPrepared's
// already-prepared early return and never resend their commit votes.
// Without the re-announcement the straggler holds one commit vote
// forever, cannot execute, and the group livelocks once its replies are
// needed for a client quorum.
func TestViewChangeCatchesUpStraggler(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()

	want := int64(1)
	if got := decodeInt(invoke(t, cl, "add 1")); got != want {
		t.Fatalf("baseline = %d, want %d", got, want)
	}

	// Partition replica 3 and commit ops it misses entirely. The op
	// count stays far below CheckpointInterval (128): catch-up can only
	// come through the new view's re-proposals, never a snapshot.
	c.net.Isolate(3)
	for i := 0; i < 5; i++ {
		want += 2
		if got := decodeInt(invoke(t, cl, "add 2")); got != want {
			t.Fatalf("partitioned-phase result = %d, want %d", got, want)
		}
	}
	c.net.Rejoin(3)

	// Silence the view-0 primary. Replicas 1 and 2 time out on the next
	// request, replica 3 joins the view change via the f+1 boost, and
	// the view-1 primary re-proposes everything replica 3 missed.
	c.net.Isolate(0)
	defer c.net.Rejoin(0)

	// With replica 0 down, ordering this request needs a quorum of 1, 2
	// and 3 — i.e. replica 3 must take part in the view change and the
	// new primary must re-propose everything it missed.
	want += 7
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := cl.Invoke(ctx, []byte("add 7"))
	if err != nil {
		t.Fatalf("post-view-change invoke (straggler must catch up): %v", err)
	}
	if got := decodeInt(res); got != want {
		t.Fatalf("post-view-change result = %d, want %d", got, want)
	}
	// The client returns on f+1 matching replies, so replica 3 may still
	// be applying the final instance; what must never stall is the gap.
	eventually(t, 5*time.Second, "straggler to execute all 7 instances", func() bool {
		return c.replicas[3].Stats().LastExecuted >= 7
	})
}

func TestClientSurvivesCorruptReplies(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *ReplicaConfig) {
		if cfg.ID == 2 {
			cfg.Fault = FaultCorruptReply
		}
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	got := invoke(t, cl, "add 4")
	if decodeInt(got) != 4 {
		t.Fatalf("client accepted wrong result %q", got)
	}
	if bytes.HasPrefix(got, []byte("CORRUPTED:")) {
		t.Fatal("client accepted a corrupted reply")
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	c := newCluster(t, 4, 1, nil) // CheckpointInterval = 8
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	for i := 0; i < 20; i++ {
		invoke(t, cl, "add 1")
	}
	eventually(t, 5*time.Second, "checkpoints", func() bool {
		for _, r := range c.replicas {
			if r.Stats().Checkpoints == 0 {
				return false
			}
		}
		return true
	})
}

func TestLaggingReplicaCatchesUpViaStateTransfer(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()

	// Partition replica 3, run past several checkpoints, heal.
	c.net.Isolate(3)
	for i := 0; i < 30; i++ {
		invoke(t, cl, "add 1")
	}
	c.net.Rejoin(3)
	// Nudge the group so new checkpoints reveal the gap.
	for i := 0; i < 10; i++ {
		invoke(t, cl, "add 1")
	}
	eventually(t, 10*time.Second, "replica 3 catch-up", func() bool {
		return c.apps[3].Value() == 40
	})
	if c.replicas[3].Stats().StateTransfers == 0 {
		t.Error("replica 3 caught up without a state transfer (log replay unexpected after truncation)")
	}
}

func TestRequestDeduplication(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()

	// Hand-roll a client so the same signed request can be retransmitted.
	id := transport.ClientIDBase + transport.NodeID(0)
	ep, err := c.net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Client: id, Seq: 1, Op: []byte("add 7")}
	req.Sign(c.clientPriv[id])
	payload, err := Encode(&Message{Type: MsgRequest, From: id, Request: &req})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for _, rid := range c.membership.Replicas {
			ep.Send(rid, payload)
		}
		time.Sleep(50 * time.Millisecond)
	}
	eventually(t, 5*time.Second, "execution", func() bool {
		return c.apps[0].Value() == 7
	})
	time.Sleep(300 * time.Millisecond) // let any duplicate executions land
	for rid, app := range c.apps {
		if v := app.Value(); v != 7 {
			t.Errorf("replica %d executed retransmissions: value %d, want 7", rid, v)
		}
	}
}

func TestRejectsUnauthenticatedRequests(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()

	id := transport.ClientIDBase + transport.NodeID(50) // unregistered client
	ep, err := c.net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	_, priv := keypair(t)
	req := Request{Client: id, Seq: 1, Op: []byte("add 100")}
	req.Sign(priv)
	payload, _ := Encode(&Message{Type: MsgRequest, From: id, Request: &req})
	for _, rid := range c.membership.Replicas {
		ep.Send(rid, payload)
	}
	time.Sleep(400 * time.Millisecond)
	for rid, app := range c.apps {
		if app.Value() != 0 {
			t.Errorf("replica %d executed an unauthenticated request", rid)
		}
	}
}

func TestReconfigurationAddThenRemove(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	ctrl := c.controller()
	defer ctrl.Close()

	for i := 0; i < 10; i++ {
		invoke(t, cl, "add 1")
	}

	// Boot replica 4 as a joiner, then order the ADD (BFT-SMaRt style:
	// add first, remove after).
	joiner := c.addReplica(4, true)
	joiner.Start()
	defer joiner.Stop()

	addOp, err := EncodeReconfigOp(ReconfigOp{Add: true, Replica: 4, PubKey: c.pubs[4]})
	if err != nil {
		t.Fatal(err)
	}
	if rr, err := DecodeReconfigResult(invoke(t, ctrl, string(addOp))); err != nil || rr.Status != ReconfigApplied || rr.Epoch != 1 {
		t.Fatalf("add reconfig result: %+v, err %v", rr, err)
	}
	// The joiner must state-transfer in and reach the group's state.
	eventually(t, 15*time.Second, "joiner catch-up", func() bool {
		return c.apps[4].Value() == 10 && joiner.Stats().CurrentEpoch == 1
	})

	// Service continues; all 5 replicas execute.
	if got := decodeInt(invoke(t, cl, "add 5")); got != 15 {
		t.Fatalf("post-add result = %d, want 15", got)
	}
	eventually(t, 10*time.Second, "5-replica convergence", func() bool {
		return c.apps[4].Value() == 15
	})

	// Remove replica 0 (quarantine it).
	rmOp, err := EncodeReconfigOp(ReconfigOp{Add: false, Replica: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rr, err := DecodeReconfigResult(invoke(t, ctrl, string(rmOp))); err != nil || rr.Status != ReconfigApplied || rr.Epoch != 2 {
		t.Fatalf("remove reconfig result: %+v, err %v", rr, err)
	}
	// The group (now 1,2,3,4) keeps serving. Removing the view-0 primary
	// forces a view change first.
	cl.UpdateReplicas([]transport.NodeID{1, 2, 3, 4})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	result, err := cl.Invoke(ctx, []byte("add 1"))
	if err != nil {
		t.Fatalf("post-remove invoke: %v", err)
	}
	if decodeInt(result) != 16 {
		t.Fatalf("post-remove result = %d, want 16", decodeInt(result))
	}
	eventually(t, 10*time.Second, "epoch 2 everywhere", func() bool {
		for _, id := range []transport.NodeID{1, 2, 3, 4} {
			if c.replicas[id].Stats().CurrentEpoch != 2 {
				return false
			}
		}
		return true
	})
}

func TestReconfigRejectedWithoutControllerKey(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	c.start()
	defer c.stop()
	cl := c.client(0) // ordinary client, not the controller
	defer cl.Close()

	op, err := EncodeReconfigOp(ReconfigOp{Add: false, Replica: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := cl.Invoke(ctx, op); err == nil {
		t.Fatal("reconfiguration signed by a non-controller client was executed")
	}
	for _, r := range c.replicas {
		if r.Stats().CurrentEpoch != 0 {
			t.Fatal("membership changed despite invalid signature")
		}
	}
}

func TestMembershipHelpers(t *testing.T) {
	c := newCluster(t, 7, 0, nil)
	defer c.stop()
	m := c.membership
	if m.N() != 7 || m.F() != 2 || m.Quorum() != 5 {
		t.Errorf("n=%d f=%d q=%d", m.N(), m.F(), m.Quorum())
	}
	if m.Primary(0) != 0 || m.Primary(8) != 1 {
		t.Errorf("primary rotation wrong: %d %d", m.Primary(0), m.Primary(8))
	}
	added, err := m.WithAdded(100, c.pubs[0])
	if err != nil || added.N() != 8 || added.Epoch != 1 {
		t.Errorf("WithAdded: %v %v", added, err)
	}
	if _, err := m.WithAdded(0, c.pubs[0]); err == nil {
		t.Error("duplicate add accepted")
	}
	removed, err := m.WithRemoved(6)
	if err != nil || removed.N() != 6 {
		t.Errorf("WithRemoved: %v %v", removed, err)
	}
	if _, err := m.WithRemoved(99); err == nil {
		t.Error("removing non-member accepted")
	}
	four, _ := NewMembership([]transport.NodeID{0, 1, 2, 3}, c.pubs)
	if _, err := four.WithRemoved(0); err == nil {
		t.Error("shrinking below 4 accepted")
	}
	if m.Digest() == added.Digest() {
		t.Error("digests collide across memberships")
	}
}

func TestMessageSignatures(t *testing.T) {
	pub, priv := keypair(t)
	pub2, _ := keypair(t)
	m := &Message{Type: MsgViewChange, From: 2, NewView: 3, LastStable: 8}
	m.Sign(priv)
	if !m.VerifySig(pub) {
		t.Error("valid signature rejected")
	}
	if m.VerifySig(pub2) {
		t.Error("wrong key accepted")
	}
	m.LastStable = 9
	if m.VerifySig(pub) {
		t.Error("tampered message accepted")
	}
}

func TestRequestSignature(t *testing.T) {
	pub, priv := keypair(t)
	r := Request{Client: transport.ClientIDBase, Seq: 4, Op: []byte("x")}
	r.Sign(priv)
	if !r.Verify(pub) {
		t.Error("valid request rejected")
	}
	r.Op = []byte("y")
	if r.Verify(pub) {
		t.Error("tampered request accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	batch := &Batch{Requests: []Request{{Client: 1001, Seq: 2, Op: []byte("op")}}}
	m := &Message{
		Type:        MsgPrePrepare,
		From:        1,
		View:        3,
		SeqNo:       17,
		Epoch:       2,
		Batch:       batch,
		BatchDigest: batch.Digest(),
	}
	payload, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.SeqNo != m.SeqNo || got.BatchDigest != m.BatchDigest {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestBatchDigestOrderSensitive(t *testing.T) {
	a := Request{Client: 1001, Seq: 1, Op: []byte("x")}
	b := Request{Client: 1001, Seq: 2, Op: []byte("y")}
	d1 := (&Batch{Requests: []Request{a, b}}).Digest()
	d2 := (&Batch{Requests: []Request{b, a}}).Digest()
	if d1 == d2 {
		t.Error("batch digest ignores order")
	}
	if (&Batch{}).Digest().IsZero() {
		t.Error("empty batch digest is zero")
	}
}

// TestSevenReplicasToleratesTwoFaults: n=7 tolerates f=2 — two silent
// replicas plus one corrupt replier still leave a correct quorum of 5 and
// an honest f+1 reply set.
func TestSevenReplicasToleratesTwoFaults(t *testing.T) {
	c := newCluster(t, 7, 1, func(cfg *ReplicaConfig) {
		switch cfg.ID {
		case 5, 6: // backups; view-0 primary is replica 0
			cfg.Fault = FaultSilent
		}
	})
	c.start()
	defer c.stop()
	if c.membership.F() != 2 || c.membership.Quorum() != 5 {
		t.Fatalf("n=7 f=%d quorum=%d", c.membership.F(), c.membership.Quorum())
	}
	cl := c.client(0)
	defer cl.Close()
	var want int64
	for i := 1; i <= 6; i++ {
		want += int64(i)
		if got := decodeInt(invoke(t, cl, fmt.Sprintf("add %d", i))); got != want {
			t.Fatalf("result %d, want %d", got, want)
		}
	}
	// The five correct replicas converge.
	eventually(t, 5*time.Second, "correct-replica convergence", func() bool {
		for id, app := range c.apps {
			if id >= 5 {
				continue
			}
			if app.Value() != want {
				return false
			}
		}
		return true
	})
}

// TestSevenReplicasViewChangeCascade: with the primaries of views 0 AND 1
// silent, liveness requires cascading view changes to view 2.
func TestSevenReplicasViewChangeCascade(t *testing.T) {
	c := newCluster(t, 7, 1, func(cfg *ReplicaConfig) {
		if cfg.ID == 0 || cfg.ID == 1 {
			cfg.Fault = FaultSilent
		}
	})
	c.start()
	defer c.stop()
	cl := c.client(0)
	defer cl.Close()
	if got := decodeInt(invoke(t, cl, "add 42")); got != 42 {
		t.Fatalf("result %d, want 42", got)
	}
	eventually(t, 5*time.Second, "cascade past view 1", func() bool {
		return c.replicas[2].Stats().CurrentView >= 2
	})
}

// TestBatchingAmortizesConsensus: under concurrent load the primary packs
// multiple requests per consensus instance, so instances executed stay
// well below operations executed.
func TestBatchingAmortizesConsensus(t *testing.T) {
	c := newCluster(t, 4, 8, func(cfg *ReplicaConfig) {
		cfg.BatchSize = 16
		cfg.BatchDelay = 5 * time.Millisecond // give batches time to fill
	})
	c.start()
	defer c.stop()

	const perClient = 10
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := c.client(i)
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for j := 0; j < perClient; j++ {
				if _, err := cl.Invoke(ctx, []byte("add 1")); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	total := int64(8 * perClient)
	eventually(t, 5*time.Second, "convergence", func() bool {
		return c.apps[0].Value() == total
	})
	instances := c.replicas[0].Stats().Executed
	if instances >= uint64(total) {
		t.Errorf("executed %d instances for %d ops; batching never amortized", instances, total)
	}
}
