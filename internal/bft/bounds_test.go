package bft

// White-box regression tests for the holes lazlint v2's interprocedural
// rules flushed out of this package (see DESIGN.md §"Invariants and
// lint rules"). Each test fails on the pre-fix code:
//
//   - onCatchUp allocated a log instance before validating the carried
//     certificate (auth-before-use): any member could spray garbage
//     CATCH-UPs across the window and grow agreement state no valid
//     certificate backs.
//   - recordViewChange allocated a vote table per attacker-chosen
//     NewView with no bound (unbounded-remote-map).
//   - onRequest queued signed requests with no cap on the pending
//     queue (unbounded-remote-map): a runaway client could sign
//     requests faster than a stalled primary orders them.

import (
	"fmt"
	"testing"

	"lazarus/internal/transport"
)

// TestCatchUpDoesNotAllocateBeforeValidation: a CATCH-UP whose prepared
// proof carries no certificate must leave no trace in the log. Pre-fix,
// onCatchUp called r.inst before validPreparedProof, so one garbage
// message per in-window sequence number allocated a full window of
// instances on the say-so of a single (possibly Byzantine) member.
func TestCatchUpDoesNotAllocateBeforeValidation(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1] // unstarted, driven directly

	for seq := uint64(1); seq <= r.cfg.WindowSize; seq++ {
		r.onCatchUp(&Message{
			Type: MsgCatchUp, From: 3, SeqNo: seq, Epoch: r.membership.Epoch,
			Prepared: []PreparedProof{{
				View: 0, SeqNo: seq, BatchDigest: badDigest, Batch: &Batch{},
				// Right shape, right epoch, no signatures anywhere: the
				// proof passes every cheap field check and fails only
				// certificate validation.
				PrePrepare: &Message{Type: MsgPrePrepare, From: 0, View: 0,
					SeqNo: seq, Epoch: r.membership.Epoch, BatchDigest: badDigest},
			}},
		})
	}
	if len(r.log) != 0 {
		t.Fatalf("certificate-free CATCH-UPs allocated %d log instances, want 0", len(r.log))
	}
}

// TestViewChangeTrackerBounded: NewView is attacker-chosen, so the vote
// tracker must stay bounded no matter how many distinct future views
// one member votes for. Eviction must shed the farthest-future views
// (the ones least likely to be installed next) and must never drop this
// replica's own escalation vote.
func TestViewChangeTrackerBounded(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1]

	for nv := uint64(1); nv <= 4*vcTrackCap; nv++ {
		r.onViewChange(signedMsg(c, &Message{
			Type: MsgViewChange, From: 3, NewView: nv, Epoch: r.membership.Epoch,
		}))
	}
	if len(r.viewChanges) > vcTrackCap {
		t.Fatalf("tracking %d view-change vote tables, want <= %d", len(r.viewChanges), vcTrackCap)
	}
	if _, ok := r.viewChanges[1]; !ok {
		t.Fatal("lowest tracked view was shed; eviction must drop the farthest-future view")
	}
	own := &Message{Type: MsgViewChange, From: r.cfg.ID, NewView: 1 << 20, Epoch: r.membership.Epoch}
	r.recordViewChange(own)
	if _, ok := r.viewChanges[1<<20]; !ok {
		t.Fatal("own view-change vote dropped at the tracking cap")
	}
}

// TestPendingQueueBounded: every pending entry is client-signed, but
// signatures bound who may enqueue, not how much. The queue must cap
// out (the client retransmits; a full queue means ordering is already
// the bottleneck), not grow with every fresh sequence number.
func TestPendingQueueBounded(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	defer c.stop()
	r := c.replicas[1] // backup: nothing drains the queue

	client := transport.ClientIDBase
	for seq := uint64(1); seq <= maxPending+8; seq++ {
		req := signedReq(c, client, seq, fmt.Sprintf("add %d", seq))
		r.onRequest(&Message{Type: MsgRequest, Request: &req})
	}
	if len(r.pending) != maxPending {
		t.Fatalf("pending queue grew to %d, want capped at %d", len(r.pending), maxPending)
	}
}
