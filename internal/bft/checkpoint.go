package bft

import (
	"bytes"
	"crypto/sha256"
	"sort"

	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// ckpt returns (creating if needed) the checkpoint state at seq.
func (r *Replica) ckpt(seq uint64) *checkpointState {
	cs, ok := r.ckpts[seq]
	if !ok {
		cs = &checkpointState{votes: make(map[transport.NodeID]Digest)}
		r.ckpts[seq] = cs
	}
	return cs
}

// takeCheckpoint snapshots the replica state at seq and broadcasts a
// signed CHECKPOINT vote. Replicas checkpoint every CheckpointInterval
// executions and immediately after a membership change.
func (r *Replica) takeCheckpoint(seq uint64) {
	snap, err := r.encodeSnapshot()
	if err != nil {
		r.cfg.Logf("replica %d: checkpoint at %d failed: %v", r.cfg.ID, seq, err)
		return
	}
	digest := Digest(sha256.Sum256(snap))
	cs := r.ckpt(seq)
	cs.snapshot = snap
	cs.digest = digest
	cs.votes[r.cfg.ID] = digest
	msg := &Message{
		Type:        MsgCheckpoint,
		SeqNo:       seq,
		Epoch:       r.membership.Epoch,
		StateDigest: digest,
		// LastStable advertises our stable point so peers can tell a
		// straggler's vote (see onCheckpoint) from routine traffic.
		LastStable: r.lowWater,
	}
	msg.From = r.cfg.ID
	msg.Sign(r.cfg.Key)
	r.lastCkptVote = msg
	r.broadcast(msg)
	r.updateStats(func(s *ReplicaStats) { s.Checkpoints++ })
	r.ins.checkpoints.Inc()
	r.checkStable(seq)
}

// onCheckpoint records a checkpoint vote. Votes are only tracked inside
// the high-water window: r.ckpts is keyed by the vote's SeqNo, so
// without the bound a single faulty member could spam arbitrary future
// SeqNos and grow it without limit. Beyond-window claims are instead
// folded into a per-member map (bounded by membership size); f+1
// distinct members claiming checkpoints past our window prove the group
// left us behind, and we state-transfer rather than tracking votes we
// could never stabilize locally.
func (r *Replica) onCheckpoint(msg *Message) {
	if !r.fromMember(msg) || !r.verifySigned(msg) {
		return
	}
	// Straggler rescue: the sender's stable point trails ours, so it may
	// be missing the quorum votes that stabilized our checkpoint — votes
	// are broadcast exactly once, and a member whose copies were garbled
	// by a faulty peer has no other way to re-collect them. Its window
	// then jams against the stale low watermark and it stops proposing;
	// during the reconfiguration window's n=3f+2 quorums that one silent
	// replica stalls the whole group. Answer with our newest signed vote.
	// No ping-pong: we only answer senders strictly behind our stable
	// point, and our answer carries a LastStable at least theirs.
	if msg.LastStable < r.lowWater && r.lastCkptVote != nil {
		r.cfg.Logf("replica %d: answering straggler %d (stable %d < %d) with checkpoint vote at %d",
			r.cfg.ID, msg.From, msg.LastStable, r.lowWater, r.lastCkptVote.SeqNo)
		r.send(msg.From, r.lastCkptVote)
	}
	if msg.SeqNo <= r.lowWater {
		return // already stable
	}
	if msg.SeqNo > r.lowWater+r.cfg.WindowSize {
		r.ckptAhead[msg.From] = msg.SeqNo        //lazlint:allow epoch-guard(checkpoint votes tally cross-epoch by design: they are how a replica stranded in an old epoch learns the group moved on and triggers state transfer)
		if len(r.ckptAhead) > r.membership.F() { //lazlint:allow digest-blind-tally(deliberately digest-blind: f+1 DISTINCT members claiming any checkpoint beyond our window proves at least one honest replica is ahead; which digest each claims is settled by the f+1-matching state transfer that follows)
			r.ckptAhead = make(map[transport.NodeID]uint64)
			r.cfg.Logf("replica %d: f+1 members checkpointed beyond window (low %d); requesting state",
				r.cfg.ID, r.lowWater)
			r.requestStateTransfer()
		}
		return
	}
	cs := r.ckpt(msg.SeqNo)
	cs.votes[msg.From] = msg.StateDigest
	r.checkStable(msg.SeqNo)
}

// checkStable declares a checkpoint stable on a quorum of matching votes,
// truncates the log below it, and detects that this replica fell behind.
func (r *Replica) checkStable(seq uint64) {
	cs := r.ckpt(seq)
	if cs.stable {
		return
	}
	counts := make(map[Digest]int)
	for _, d := range cs.votes {
		counts[d]++
	}
	// Collect every digest at quorum and take the byte-wise smallest.
	// With honest vote accounting two digests can never both reach 2f+1
	// votes, but the winner must not depend on map iteration order: all
	// replicas must agree on which state became stable even if vote
	// bookkeeping is ever wrong.
	var candidates []Digest
	for d, n := range counts {
		if n >= r.membership.Quorum() {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return
	}
	sort.Slice(candidates, func(i, j int) bool {
		return bytes.Compare(candidates[i][:], candidates[j][:]) < 0
	})
	winner := candidates[0]
	if winner.IsZero() {
		return
	}
	cs.stable = true
	lag := int64(r.lastExec) - int64(seq)
	r.ins.ckptStabilityLag.Observe(lag)
	r.trace.Emit(metrics.Event{
		Type: metrics.EvCheckpointStable, Node: int64(r.cfg.ID),
		Seq: seq, Epoch: r.membership.Epoch, DurUS: lag,
	})
	if cs.snapshot == nil || cs.digest != winner {
		// The group is provably at seq but this replica has no matching
		// state: it fell behind (or diverged) and must transfer state.
		r.cfg.Logf("replica %d: behind stable checkpoint %d; requesting state", r.cfg.ID, seq)
		r.requestStateTransfer()
		return
	}
	r.advanceLowWater(seq, cs.snapshot)
}

// advanceLowWater installs a new stable checkpoint and garbage-collects.
func (r *Replica) advanceLowWater(seq uint64, snapshot []byte) {
	if seq <= r.lowWater {
		return
	}
	r.lowWater = seq
	r.lastSnap = snapshot
	// Keep the retained vote's advertised stable point current (re-sign:
	// the signature covers LastStable). Two replicas answer each other's
	// votes only when each advertises a stable point strictly behind the
	// other's — impossible when advertisements are truthful — so a stale
	// advertisement here could turn straggler rescue into a message loop.
	if r.lastCkptVote != nil && r.lastCkptVote.LastStable != seq {
		r.lastCkptVote.LastStable = seq
		r.lastCkptVote.Sign(r.cfg.Key)
	}
	for s := range r.log {
		if s <= seq {
			delete(r.log, s)
		}
	}
	// The stable entry itself goes too: votes at or below lowWater are
	// rejected on arrival, so it can never be consulted again.
	for s := range r.ckpts {
		if s <= seq {
			delete(r.ckpts, s)
		}
	}
	// Beyond-window claims may now be in (or behind) the moved window;
	// members still ahead will say so again.
	r.ckptAhead = make(map[transport.NodeID]uint64)
	if r.seq < seq {
		r.seq = seq
	}
	// The window just slid forward: a primary that stalled against the
	// high watermark can propose again immediately.
	r.maybePropose()
}
