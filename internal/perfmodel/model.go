// Package perfmodel is the calibrated performance model that regenerates
// the paper's performance figures (§7, Figures 7–10) without the authors'
// VirtualBox testbed. It models the BFT-SMaRt request path as a pipeline
// of bottleneck stages — leader CPU, the Byzantine quorum (the 3rd-fastest
// replica for n=4/f=1, exactly the effect the paper observes in §7.2),
// per-guest small-message rate caps (VirtualBox NIC emulation), the
// network, and an optional host-side stage for work outside the managed
// VMs (SieveQ's filtering layers) — parameterized by the per-OS virtual
// machine profiles of the catalog. Absolute numbers are calibrated to the
// paper's bare-metal baseline; the model's value is the relative shape:
// which OSes are fast, where diverse configurations land, and what happens
// during a reconfiguration.
package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"lazarus/internal/catalog"
)

// Workload describes one benchmark load.
type Workload struct {
	// Name labels the workload in reports (e.g. "0/0", "1024/1024").
	Name string
	// ReqBytes and RespBytes are the request/response payload sizes.
	ReqBytes, RespBytes int
	// AppCPU is extra per-operation execution cost inside the replicated
	// state machine, in unit-seconds (0 for the empty microbenchmark
	// service).
	AppCPU float64
	// HostCPU is per-operation work performed OUTSIDE the managed VMs at
	// bare-metal speed — SieveQ's filtering layers and the Fabric block
	// receiver live here, which is why those services suffer a smaller
	// virtualization penalty (§7.4).
	HostCPU float64
}

// Microbench00 and Microbench1024 are the §7.1 microbenchmark loads.
var (
	Microbench00   = Workload{Name: "0/0"}
	Microbench1024 = Workload{Name: "1024/1024", ReqBytes: 1024, RespBytes: 1024}
)

// The §7.4 application workloads.
var (
	// KVS4k: YCSB 50/50 with 4 kB values; half the operations carry the
	// large payload in each direction.
	KVS4k = Workload{Name: "KVS-YCSB-4k", ReqBytes: 2100, RespBytes: 2100, AppCPU: 10e-6}
	// SieveQ1k: 1 kB messages; the layered filters run before
	// replication on unmanaged hosts, so most of the per-message cost
	// stays outside the quorum path.
	SieveQ1k = Workload{Name: "SieveQ-1k", ReqBytes: 1024, RespBytes: 64, AppCPU: 8e-6, HostCPU: 700e-6}
	// Fabric1k: 1 kB transactions in 10-transaction blocks; hashing and
	// signing blocks adds state-machine cost, and the single block
	// receiver adds host-side cost.
	Fabric1k = Workload{Name: "BFT-Fabric-1k", ReqBytes: 1024, RespBytes: 128, AppCPU: 60e-6, HostCPU: 560e-6}
)

// CostModel holds the calibrated constants of the pipeline model.
type CostModel struct {
	// ReqCPU is the per-request CPU cost (unit-seconds) of the quorum
	// path: MAC verification, batching bookkeeping, delivery.
	ReqCPU float64
	// LeaderOverhead multiplies the leader's per-request cost (client
	// signature verification, proposal construction, n-1 sends).
	LeaderOverhead float64
	// ByteCPU is the per-payload-byte marshaling/crypto cost.
	ByteCPU float64
	// BaseMsgRate is the bare-metal sustainable small-message rate; a
	// guest sustains BaseMsgRate × MsgFactor.
	BaseMsgRate float64
	// NetBytesPerSec is the bare-metal network bandwidth.
	NetBytesPerSec float64
	// NetPerReqBytes is the fixed protocol overhead per request in
	// bytes (headers, MACs, votes).
	NetPerReqBytes float64
	// HostCapacity is the processing capacity of the unmanaged host
	// machines (bare-metal units).
	HostCapacity float64
	// MaxCores caps exploitable parallelism per replica.
	MaxCores int
}

// DefaultCostModel returns constants calibrated so the bare-metal
// baseline reproduces Figure 7 (≈58k ops/s at 0/0, ≈14k at 1024/1024) and
// group-1 guests land at ≈66% of bare metal on 0/0.
func DefaultCostModel() CostModel {
	return CostModel{
		ReqCPU:         62e-6,
		LeaderOverhead: 1.12,
		ByteCPU:        105e-9,
		BaseMsgRate:    130e3,
		NetBytesPerSec: 125e6, // gigabit Ethernet
		NetPerReqBytes: 220,
		HostCapacity:   4.0,
		MaxCores:       4,
	}
}

// capacity returns a replica's CPU capacity in units (bare-metal core =
// 1.0/unit).
func (cm CostModel) capacity(os catalog.OS) (float64, error) {
	if os.VM == nil {
		return 0, fmt.Errorf("perfmodel: %s has no VM profile", os.ID)
	}
	cores := os.VM.Cores
	if cores > cm.MaxCores {
		cores = cm.MaxCores
	}
	return os.VM.SpeedFactor * float64(cores), nil
}

// replicaRate is one replica's standalone operation rate: the smaller of
// its CPU rate and its message-rate cap.
func (cm CostModel) replicaRate(os catalog.OS, perOpCPU float64) (float64, error) {
	cap, err := cm.capacity(os)
	if err != nil {
		return 0, err
	}
	cpuRate := cap / perOpCPU
	msgRate := cm.BaseMsgRate * os.VM.MsgFactor
	return math.Min(cpuRate, msgRate), nil
}

// Report is the model's output for one configuration and workload.
type Report struct {
	// Throughput is the sustained saturation throughput (ops/sec).
	Throughput float64
	// Bottleneck names the limiting stage ("leader", "quorum", "net",
	// "host").
	Bottleneck string
	// StageRates reports each stage's standalone rate.
	StageRates map[string]float64
}

// Throughput computes the saturation throughput of a replica
// configuration under a workload. The first replica of the configuration
// acts as the leader (BFT-SMaRt's initial view).
func Throughput(config []catalog.OS, w Workload, cm CostModel) (Report, error) {
	if len(config) < 4 {
		return Report{}, fmt.Errorf("perfmodel: configuration of %d replicas (need >= 4)", len(config))
	}
	f := (len(config) - 1) / 3
	quorum := 2*f + 1

	bytes := float64(w.ReqBytes + w.RespBytes)
	perOpCPU := cm.ReqCPU + bytes*cm.ByteCPU + w.AppCPU
	leaderCPU := (cm.ReqCPU+bytes*cm.ByteCPU)*cm.LeaderOverhead + w.AppCPU

	// Leader stage.
	leaderRate, err := cm.replicaRate(config[0], leaderCPU)
	if err != nil {
		return Report{}, err
	}
	// Quorum stage: ordering advances at the pace of the quorum-th
	// fastest replica.
	rates := make([]float64, 0, len(config))
	for _, os := range config {
		r, err := cm.replicaRate(os, perOpCPU)
		if err != nil {
			return Report{}, err
		}
		rates = append(rates, r)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	quorumRate := rates[quorum-1]

	// Network stage: the leader ships the batch to n-1 replicas and the
	// reply returns to the client; the slowest network factor among the
	// quorum bounds effective bandwidth.
	netFactor := 1.0
	sorted := append([]catalog.OS(nil), config...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].VM.NetFactor > sorted[j].VM.NetFactor
	})
	for i := 0; i < quorum; i++ {
		if nf := sorted[i].VM.NetFactor; nf < netFactor {
			netFactor = nf
		}
	}
	perReqNetBytes := float64(w.ReqBytes)*float64(len(config)-1) +
		float64(w.RespBytes) + cm.NetPerReqBytes*float64(len(config))
	netRate := cm.NetBytesPerSec * netFactor / perReqNetBytes

	// Host stage (work outside the managed VMs).
	hostRate := math.Inf(1)
	if w.HostCPU > 0 {
		hostRate = cm.HostCapacity / w.HostCPU
	}

	report := Report{StageRates: map[string]float64{
		"leader": leaderRate,
		"quorum": quorumRate,
		"net":    netRate,
		"host":   hostRate,
	}}
	report.Throughput = math.Min(math.Min(leaderRate, quorumRate), math.Min(netRate, hostRate))
	switch report.Throughput {
	case leaderRate:
		report.Bottleneck = "leader"
	case quorumRate:
		report.Bottleneck = "quorum"
	case netRate:
		report.Bottleneck = "net"
	default:
		report.Bottleneck = "host"
	}
	return report, nil
}

// HomogeneousThroughput evaluates a 4-replica configuration of one OS
// (Figure 7's per-OS bars).
func HomogeneousThroughput(os catalog.OS, w Workload, cm CostModel) (Report, error) {
	return Throughput([]catalog.OS{os, os, os, os}, w, cm)
}

// ConfigByIDs resolves catalog ids into a configuration.
func ConfigByIDs(ids ...string) ([]catalog.OS, error) {
	out := make([]catalog.OS, 0, len(ids))
	for _, id := range ids {
		os, err := catalog.ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, os)
	}
	return out, nil
}

// Figure 8's three diverse configurations.
var (
	// FastestSet is the paper's fastest diverse set.
	FastestSet = []string{"UB17", "UB16", "FE24", "OS42"}
	// MixedSet has one replica per OS family.
	MixedSet = []string{"UB16", "W10", "SO10", "OB61"}
	// SlowestSet is the paper's slowest set (single-core guests).
	SlowestSet = []string{"OB60", "OB61", "SO10", "SO11"}
)

// PlacementReport compares leader placements for one configuration.
type PlacementReport struct {
	// Default is the throughput with the configuration's given order
	// (BFT-SMaRt puts the initial leader on the first replica).
	Default Report
	// Best is the throughput with the leader moved to the most capable
	// replica, and BestLeader identifies it.
	Best       Report
	BestLeader string
	// Gain is Best/Default - 1.
	Gain float64
}

// BestLeaderPlacement evaluates the paper's §9 suggestion — "the leader
// could be allocated in the fastest replica" — by rotating every member of
// the configuration into the leader slot and reporting the best choice.
func BestLeaderPlacement(config []catalog.OS, w Workload, cm CostModel) (PlacementReport, error) {
	def, err := Throughput(config, w, cm)
	if err != nil {
		return PlacementReport{}, err
	}
	out := PlacementReport{Default: def, Best: def, BestLeader: config[0].ID}
	for i := 1; i < len(config); i++ {
		rotated := append([]catalog.OS(nil), config...)
		rotated[0], rotated[i] = rotated[i], rotated[0]
		r, err := Throughput(rotated, w, cm)
		if err != nil {
			return PlacementReport{}, err
		}
		if r.Throughput > out.Best.Throughput {
			out.Best = r
			out.BestLeader = rotated[0].ID
		}
	}
	out.Gain = out.Best.Throughput/out.Default.Throughput - 1
	return out, nil
}
