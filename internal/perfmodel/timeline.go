package perfmodel

import (
	"fmt"
	"time"

	"lazarus/internal/catalog"
)

// TimelineConfig shapes the Figure 9 reconfiguration experiment: a KVS
// under a fixed-rate YCSB 50/50 load while Lazarus adds a new replica and
// removes an old one.
type TimelineConfig struct {
	// Config is the running replica set; the replica at SwapIndex is
	// replaced by Joiner.
	Config []catalog.OS
	// Joiner is the incoming OS.
	Joiner catalog.OS
	// SwapIndex selects the outgoing replica.
	SwapIndex int
	// OfferedLoad is the client request rate (paper: ~4000 ops/s).
	OfferedLoad float64
	// StateBytes is the service state size (paper: 500 MB).
	StateBytes float64
	// CheckpointEvery is the interval between state checkpoints.
	CheckpointEvery time.Duration
	// CheckpointDuration is how long a checkpoint disturbs execution
	// (log trimming + snapshot serialization).
	CheckpointDuration time.Duration
	// ReconfigAt is when the controller starts the replacement.
	ReconfigAt time.Duration
	// Duration is the observation window (paper: 200 s).
	Duration time.Duration
	// Step is the sampling interval of the series.
	Step time.Duration
}

// DefaultTimeline returns the paper's §7.3 parameters for the given
// environment.
func DefaultTimeline(config []catalog.OS, joiner catalog.OS, swapIndex int) TimelineConfig {
	return TimelineConfig{
		Config:             config,
		Joiner:             joiner,
		SwapIndex:          swapIndex,
		OfferedLoad:        4000,
		StateBytes:         500e6,
		CheckpointEvery:    55 * time.Second,
		CheckpointDuration: 7 * time.Second,
		ReconfigAt:         60 * time.Second,
		Duration:           200 * time.Second,
		Step:               time.Second,
	}
}

// Point is one sample of the throughput series.
type Point struct {
	// T is the sample time offset.
	T time.Duration
	// Throughput is the served rate at T (ops/sec).
	Throughput float64
	// Phase labels what the system is doing ("steady", "checkpoint",
	// "boot", "state-transfer", "view-change").
	Phase string
}

// Event marks a protocol milestone in the series.
type Event struct {
	T    time.Duration
	Name string
}

// Timeline simulates the Figure 9 experiment and returns the throughput
// series plus the protocol milestones.
func Timeline(cfg TimelineConfig, cm CostModel) ([]Point, []Event, error) {
	if len(cfg.Config) < 4 {
		return nil, nil, fmt.Errorf("perfmodel: timeline needs >= 4 replicas")
	}
	if cfg.SwapIndex < 0 || cfg.SwapIndex >= len(cfg.Config) {
		return nil, nil, fmt.Errorf("perfmodel: swap index %d out of range", cfg.SwapIndex)
	}
	if cfg.Step <= 0 || cfg.Duration <= 0 {
		return nil, nil, fmt.Errorf("perfmodel: non-positive duration or step")
	}
	load := Workload{Name: "YCSB-1k", ReqBytes: 600, RespBytes: 600, AppCPU: 6e-6}

	before, err := Throughput(cfg.Config, load, cm)
	if err != nil {
		return nil, nil, err
	}
	afterConfig := append([]catalog.OS(nil), cfg.Config...)
	afterConfig[cfg.SwapIndex] = cfg.Joiner
	after, err := Throughput(afterConfig, load, cm)
	if err != nil {
		return nil, nil, err
	}
	capBefore := min2(before.Throughput, cfg.OfferedLoad)
	capAfter := min2(after.Throughput, cfg.OfferedLoad)

	// Reconfiguration milestones: the joiner boots (background, no
	// impact), the ADD is ordered, the joiner pulls the state from the
	// group (foreground: serving replicas ship StateBytes), replays the
	// log since the snapshot, then the old replica leaves.
	bootDone := cfg.ReconfigAt + cfg.Joiner.VM.BootTime
	transferSecs := cfg.StateBytes / (cm.NetBytesPerSec * 0.35 * cfg.Joiner.VM.NetFactor)
	transferDone := bootDone + time.Duration(transferSecs*float64(time.Second))
	removeAt := transferDone + 5*time.Second

	var events []Event
	events = append(events,
		Event{cfg.ReconfigAt, fmt.Sprintf("%s boot starts (background)", cfg.Joiner.ID)},
		Event{bootDone, fmt.Sprintf("%s added; state transfer starts", cfg.Joiner.ID)},
		Event{transferDone, "state transfer complete"},
		Event{removeAt, fmt.Sprintf("%s removed", cfg.Config[cfg.SwapIndex].ID)},
	)

	var series []Point
	for t := time.Duration(0); t < cfg.Duration; t += cfg.Step {
		p := Point{T: t, Phase: "steady"}
		cap := capBefore
		if t >= removeAt {
			cap = capAfter
		}
		switch {
		case t >= bootDone && t < transferDone:
			// Serving replicas ship the snapshot while executing: the
			// paper shows a deep throughput valley during transfer.
			p.Phase = "state-transfer"
			cap *= 0.30
		case t >= removeAt && t < removeAt+2*time.Second:
			// Removing the old replica re-forms quorums; brief dip.
			p.Phase = "view-change"
			cap *= 0.45
		case inCheckpoint(t, cfg):
			p.Phase = "checkpoint"
			cap *= 0.35
		case t >= cfg.ReconfigAt && t < bootDone:
			p.Phase = "boot"
		}
		p.Throughput = cap
		series = append(series, p)
	}
	return series, events, nil
}

// inCheckpoint reports whether a periodic checkpoint is in progress at t
// (the last CheckpointDuration of every CheckpointEvery interval, skipping
// the very first moments of the run).
func inCheckpoint(t time.Duration, cfg TimelineConfig) bool {
	if cfg.CheckpointEvery <= 0 || t < cfg.CheckpointEvery-cfg.CheckpointDuration {
		return false
	}
	offset := t % cfg.CheckpointEvery
	return offset >= cfg.CheckpointEvery-cfg.CheckpointDuration
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
