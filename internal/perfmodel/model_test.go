package perfmodel

import (
	"testing"
	"time"

	"lazarus/internal/catalog"
)

func bm4() []catalog.OS {
	return []catalog.OS{catalog.BareMetal, catalog.BareMetal, catalog.BareMetal, catalog.BareMetal}
}

func TestBareMetalCalibration(t *testing.T) {
	cm := DefaultCostModel()
	r00, err := Throughput(bm4(), Microbench00, cm)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 7: bare metal ≈ 55-60k ops/s at 0/0.
	if r00.Throughput < 50e3 || r00.Throughput > 65e3 {
		t.Errorf("BM 0/0 = %.0f ops/s, want ≈58k", r00.Throughput)
	}
	r1k, err := Throughput(bm4(), Microbench1024, cm)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: BM ≈ 14k at 1024/1024.
	if r1k.Throughput < 11e3 || r1k.Throughput > 17e3 {
		t.Errorf("BM 1024/1024 = %.0f ops/s, want ≈14k", r1k.Throughput)
	}
	if r1k.Throughput >= r00.Throughput {
		t.Error("larger payload did not reduce throughput")
	}
}

func TestFigure7Shape(t *testing.T) {
	cm := DefaultCostModel()
	rate := func(id string, w Workload) float64 {
		os, err := catalog.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		r, err := HomogeneousThroughput(os, w, cm)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	bm := rate("BM", Microbench00)

	// Group 1 (well-supported 4-core Linux guests): ≈2/3 of bare metal.
	for _, id := range []string{"UB16", "UB17", "FE24", "OS42"} {
		frac := rate(id, Microbench00) / bm
		if frac < 0.5 || frac > 0.85 {
			t.Errorf("%s 0/0 at %.0f%% of BM, want ≈66%%", id, frac*100)
		}
	}
	// Group 2 (Debian/Windows/FreeBSD): much worse at 0/0...
	for _, id := range []string{"DE8", "W10", "FB11"} {
		frac := rate(id, Microbench00) / bm
		if frac > 0.55 {
			t.Errorf("%s 0/0 at %.0f%% of BM, want well below the first group", id, frac*100)
		}
	}
	// ...but close to group 1 at 1024/1024 (paper §7.1).
	bm1k := rate("BM", Microbench1024)
	for _, id := range []string{"DE8", "FB11"} {
		frac := rate(id, Microbench1024) / bm1k
		if frac < 0.45 {
			t.Errorf("%s 1024/1024 at %.0f%% of BM; should recover on the IO-bound load", id, frac*100)
		}
	}
	// Group 3 (single-core guests): no more than ~3000 ops/s either way.
	for _, id := range []string{"SO10", "SO11", "OB60", "OB61"} {
		if r := rate(id, Microbench00); r > 4200 {
			t.Errorf("%s 0/0 = %.0f ops/s, paper caps single-core guests ≈3k", id, r)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	cm := DefaultCostModel()
	run := func(ids []string, w Workload) float64 {
		cfg, err := ConfigByIDs(ids...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Throughput(cfg, w, cm)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	bm00 := run([]string{"BM", "BM", "BM", "BM"}, Microbench00)
	fast := run(FastestSet, Microbench00)
	mixed := run(MixedSet, Microbench00)
	slow := run(SlowestSet, Microbench00)

	// Paper: fastest ≈ 39k (65% BM), slowest ≈ 6k (10% BM), mixed close
	// to slowest (quorum includes a single-core Solaris).
	if frac := fast / bm00; frac < 0.5 || frac > 0.8 {
		t.Errorf("fastest set at %.0f%% of BM, want ≈65%%", frac*100)
	}
	if frac := slow / bm00; frac > 0.2 {
		t.Errorf("slowest set at %.0f%% of BM, want ≈10%%", frac*100)
	}
	if !(fast > mixed && mixed >= slow) {
		t.Errorf("ordering violated: fast=%.0f mixed=%.0f slow=%.0f", fast, mixed, slow)
	}
	if mixed > 2.5*slow {
		t.Errorf("mixed set (%.0f) should sit close to slowest (%.0f): its quorum contains a single-core guest", mixed, slow)
	}
}

func TestQuorumBottleneckIsThirdFastest(t *testing.T) {
	cm := DefaultCostModel()
	cfg, err := ConfigByIDs("UB17", "UB16", "SO10", "OB61")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Throughput(cfg, Microbench00, cm)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bottleneck != "quorum" {
		t.Errorf("bottleneck = %s, want quorum (single-core guest in quorum)", r.Bottleneck)
	}
	// Replacing the slow third replica lifts throughput.
	cfg2, _ := ConfigByIDs("UB17", "UB16", "FE24", "OB61")
	r2, err := Throughput(cfg2, Microbench00, cm)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Throughput <= r.Throughput {
		t.Errorf("faster quorum did not raise throughput: %.0f vs %.0f", r2.Throughput, r.Throughput)
	}
}

func TestFigure10Shape(t *testing.T) {
	cm := DefaultCostModel()
	for _, tc := range []struct {
		w                Workload
		minFast, maxSlow float64 // fractions of BM
		slowFloor        float64
	}{
		{KVS4k, 0.70, 0.40, 0.08},    // paper: 86% fast, 18% slow
		{SieveQ1k, 0.85, 0.80, 0.30}, // paper: 94% fast, 53% slow
		{Fabric1k, 0.75, 0.60, 0.25}, // paper: 91% fast, 39% slow
	} {
		bmCfg := bm4()
		bm, err := Throughput(bmCfg, tc.w, cm)
		if err != nil {
			t.Fatal(err)
		}
		fastCfg, _ := ConfigByIDs(FastestSet...)
		fast, err := Throughput(fastCfg, tc.w, cm)
		if err != nil {
			t.Fatal(err)
		}
		slowCfg, _ := ConfigByIDs(SlowestSet...)
		slow, err := Throughput(slowCfg, tc.w, cm)
		if err != nil {
			t.Fatal(err)
		}
		fracFast := fast.Throughput / bm.Throughput
		fracSlow := slow.Throughput / bm.Throughput
		if fracFast < tc.minFast {
			t.Errorf("%s: fastest set at %.0f%% of BM, want >= %.0f%%", tc.w.Name, fracFast*100, tc.minFast*100)
		}
		if fracSlow > tc.maxSlow {
			t.Errorf("%s: slowest set at %.0f%% of BM, want <= %.0f%%", tc.w.Name, fracSlow*100, tc.maxSlow*100)
		}
		if fracSlow < tc.slowFloor {
			t.Errorf("%s: slowest set at %.1f%% of BM; collapsed below plausible floor %.0f%%", tc.w.Name, fracSlow*100, tc.slowFloor*100)
		}
	}
	// SieveQ's diverse-set penalty must be the smallest of the three apps
	// (its filtering happens before replication).
	penalty := func(w Workload) float64 {
		bm, _ := Throughput(bm4(), w, DefaultCostModel())
		slowCfg, _ := ConfigByIDs(SlowestSet...)
		slow, _ := Throughput(slowCfg, w, DefaultCostModel())
		return slow.Throughput / bm.Throughput
	}
	if !(penalty(SieveQ1k) > penalty(Fabric1k) && penalty(Fabric1k) > penalty(KVS4k)) {
		t.Errorf("app penalty ordering wrong: sieveq=%.2f fabric=%.2f kvs=%.2f",
			penalty(SieveQ1k), penalty(Fabric1k), penalty(KVS4k))
	}
}

func TestThroughputValidation(t *testing.T) {
	cm := DefaultCostModel()
	if _, err := Throughput(bm4()[:3], Microbench00, cm); err == nil {
		t.Error("3-replica config accepted")
	}
	undeployable, _ := catalog.ByID("RH7") // no VM profile
	cfg := bm4()
	cfg[2] = undeployable
	if _, err := Throughput(cfg, Microbench00, cm); err == nil {
		t.Error("undeployable OS accepted")
	}
}

func TestTimelineShape(t *testing.T) {
	cm := DefaultCostModel()
	cfg, err := ConfigByIDs("DE8", "OS42", "FE26", "SO11")
	if err != nil {
		t.Fatal(err)
	}
	joiner, _ := catalog.ByID("UB16")
	tl := DefaultTimeline(cfg, joiner, 1) // replace OS42 with UB16
	series, events, err := Timeline(tl, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 200 {
		t.Fatalf("series has %d points, want 200", len(series))
	}
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	phases := map[string]bool{}
	var steady, transfer float64
	var steadyN, transferN int
	for _, p := range series {
		phases[p.Phase] = true
		switch p.Phase {
		case "steady":
			steady += p.Throughput
			steadyN++
		case "state-transfer":
			transfer += p.Throughput
			transferN++
		}
		if p.Throughput < 0 || p.Throughput > tl.OfferedLoad {
			t.Fatalf("throughput %v out of range at %v", p.Throughput, p.T)
		}
	}
	for _, want := range []string{"steady", "checkpoint", "boot", "state-transfer", "view-change"} {
		if !phases[want] {
			t.Errorf("phase %q missing from series", want)
		}
	}
	if steadyN == 0 || transferN == 0 {
		t.Fatal("no steady or transfer samples")
	}
	if transfer/float64(transferN) >= 0.6*steady/float64(steadyN) {
		t.Error("state transfer should depress throughput markedly")
	}
	// The joiner boots faster under Lazarus' virtualization than the
	// paper's 2-minute bare-metal boot: check boot time is the profile's.
	wantBoot := tl.ReconfigAt + joiner.VM.BootTime
	if events[1].T != wantBoot {
		t.Errorf("add event at %v, want %v", events[1].T, wantBoot)
	}
}

func TestTimelineValidation(t *testing.T) {
	cm := DefaultCostModel()
	joiner, _ := catalog.ByID("UB16")
	cfg, _ := ConfigByIDs("DE8", "OS42", "FE26", "SO11")
	bad := DefaultTimeline(cfg, joiner, 9)
	if _, _, err := Timeline(bad, cm); err == nil {
		t.Error("bad swap index accepted")
	}
	bad2 := DefaultTimeline(cfg[:3], joiner, 0)
	if _, _, err := Timeline(bad2, cm); err == nil {
		t.Error("3-replica timeline accepted")
	}
	bad3 := DefaultTimeline(cfg, joiner, 0)
	bad3.Step = 0
	if _, _, err := Timeline(bad3, cm); err == nil {
		t.Error("zero step accepted")
	}
	_ = time.Second
}

func TestBestLeaderPlacement(t *testing.T) {
	cm := DefaultCostModel()
	// Slow leader but a capable quorum: moving the leader off the
	// single-core Solaris guest must help (with two single-core guests
	// the quorum itself pins throughput and placement cannot matter).
	cfg, err := ConfigByIDs("SO10", "UB16", "W10", "FE24")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BestLeaderPlacement(cfg, Microbench00, cm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestLeader == "SO10" {
		t.Error("single-core leader reported as best placement")
	}
	if rep.Gain < 0 {
		t.Errorf("negative gain %v", rep.Gain)
	}
	// With the leader already fastest, the gain is zero.
	fast, _ := ConfigByIDs("UB17", "UB16", "SO10", "OB61")
	rep2, err := BestLeaderPlacement(fast, Microbench00, cm)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Gain > 1e-9 {
		t.Errorf("gain %v with fastest leader already placed", rep2.Gain)
	}
}
