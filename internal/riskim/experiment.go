package riskim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"lazarus/internal/cluster"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/metrics"
	"lazarus/internal/osint"
	"lazarus/internal/strategies"
)

// clusterLinkSimilarity is the minimum description cosine similarity for
// two same-cluster vulnerabilities to count as a shared weakness.
const clusterLinkSimilarity = 0.45

// Experiment configures the §6 risk evaluation.
type Experiment struct {
	// Dataset is the historical vulnerability corpus.
	Dataset *feeds.Dataset
	// Universe is the replica universe (21 OS versions in the paper).
	Universe []core.Replica
	// N and F size the BFT system (paper: n = 4, f = 1).
	N, F int
	// Runs is the number of independent runs per strategy (paper: 1000).
	Runs int
	// Seed derives every run's random stream.
	Seed int64
	// Threshold is the Lazarus reconfiguration threshold.
	Threshold float64
	// ClusterK fixes the clustering k (0 = corpus-scaled default; fixed
	// k keeps the monthly re-clustering tractable).
	ClusterK int
	// ClusterVocab caps the TF-IDF vocabulary (0 = 600). The paper uses
	// 200 for real CVE text; the synthetic corpus is lexically much
	// narrower, so the cap scales up to keep component terms — the
	// similarity signal — inside the vocabulary.
	ClusterVocab int
	// Strategies restricts which strategies run (nil = all five).
	Strategies []string
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
	// Metrics, when set, receives experiment timings (clustering, table
	// precomputation, per-slot scan duration) and run counts.
	Metrics *metrics.Registry
}

// Validate checks the experiment configuration.
func (e *Experiment) Validate() error {
	switch {
	case e.Dataset == nil:
		return fmt.Errorf("riskim: nil dataset")
	case len(e.Universe) < e.N:
		return fmt.Errorf("riskim: universe %d < n %d", len(e.Universe), e.N)
	case e.N != 3*e.F+1:
		return fmt.Errorf("riskim: n = %d is not 3f+1 for f = %d", e.N, e.F)
	case e.Runs <= 0:
		return fmt.Errorf("riskim: runs = %d must be positive", e.Runs)
	case e.Threshold < 0:
		return fmt.Errorf("riskim: negative threshold")
	}
	return nil
}

// MonthResult reports one month slot of Figure 5.
type MonthResult struct {
	// Month is the first day of the execution slot.
	Month time.Time
	// Runs is the number of runs per strategy.
	Runs int
	// Compromised counts runs that ended compromised, per strategy.
	Compromised map[string]int
	// Culprits counts, per strategy, which CVE broke each compromised
	// run.
	Culprits map[string]map[string]int
	// Reconfigs accumulates replica replacements across all runs, per
	// strategy (divide by Runs for the per-run average).
	Reconfigs map[string]int
}

// AvgReconfigs returns the mean number of replica replacements per run.
func (m *MonthResult) AvgReconfigs(strategy string) float64 {
	return float64(m.Reconfigs[strategy]) / float64(m.Runs)
}

// Rate returns the compromised percentage for a strategy.
func (m *MonthResult) Rate(strategy string) float64 {
	return 100 * float64(m.Compromised[strategy]) / float64(m.Runs)
}

// prepared bundles the per-month immutable state shared by all runs.
type prepared struct {
	tables     *Tables
	checkVulns []*osint.Vulnerability // vulnerabilities the oracle tests
	start, end time.Time
	zeroDay    bool
}

// prepare builds the knowledge base as of learnEnd (clustering included),
// extends it with classifications of everything visible up to horizon, and
// precomputes the evaluator tables for [start-1, end].
func (e *Experiment) prepare(learnEnd, start, end time.Time, checkVulns []*osint.Vulnerability, zeroDay bool) (*prepared, error) {
	return e.prepareWith(learnEnd, start, end, checkVulns, zeroDay, core.DefaultScoreParams(), true)
}

// prepareWith is prepare with an explicit metric configuration (the
// ablation harness disables clustering or the recency factors).
func (e *Experiment) prepareWith(learnEnd, start, end time.Time, checkVulns []*osint.Vulnerability, zeroDay bool, params core.ScoreParams, useClusters bool) (*prepared, error) {
	learning := e.Dataset.PublishedBefore(learnEnd)
	if len(learning) == 0 {
		return nil, fmt.Errorf("riskim: no learning data before %v", learnEnd)
	}
	k := e.ClusterK
	if k == 0 {
		// Roughly one cluster per dozen records keeps clusters at
		// weakness-campaign granularity; far fewer would link unrelated
		// descriptions and flood Equation 5 with false sharing.
		k = len(learning) / 8
		if k < 24 {
			k = 24
		}
		if k > 192 {
			k = 192
		}
	}
	if k > len(learning) {
		k = len(learning)
	}
	vocab := e.ClusterVocab
	if vocab == 0 {
		vocab = 600
	}
	clusterStart := time.Now()
	model, err := cluster.BuildModel(learning, cluster.Config{K: k, MaxVocabulary: vocab, Seed: e.Seed})
	if err != nil {
		return nil, fmt.Errorf("riskim: clustering learning corpus: %w", err)
	}
	e.Metrics.Histogram("riskim.cluster_build_us").Observe(time.Since(clusterStart).Microseconds())
	visible := e.Dataset.PublishedBefore(end.AddDate(0, 0, 1))
	for _, v := range visible {
		model.Extend(v) // no-op for learning-corpus members
	}
	clusters := model.Clusters
	if !useClusters {
		clusters = nil
	}
	intel, err := core.NewIntel(visible, clusters)
	if err != nil {
		return nil, err
	}
	// Same-cluster links must also be textually close (K-means forces
	// every record into some cluster, so membership alone over-links).
	intel.SetSimilarityGate(func(a, b string) bool {
		return model.Cosine(a, b) >= clusterLinkSimilarity
	})
	engine, err := core.NewRiskEngine(intel, params)
	if err != nil {
		return nil, err
	}
	day0 := start.AddDate(0, 0, -1)
	days := int(end.Sub(day0).Hours()/24) + 2
	tablesStart := time.Now()
	tables, err := NewTables(engine, e.Universe, day0, days)
	if err != nil {
		return nil, err
	}
	e.Metrics.Histogram("riskim.tables_build_us").Observe(time.Since(tablesStart).Microseconds())
	return &prepared{
		tables:     tables,
		checkVulns: checkVulns,
		start:      start,
		end:        end,
		zeroDay:    zeroDay,
	}, nil
}

func (e *Experiment) strategyNames() []string {
	if len(e.Strategies) > 0 {
		return e.Strategies
	}
	return strategies.StrategyNames
}

// runOne executes a single run of one strategy over the execution window
// and reports the compromising CVE (if any) plus how many replica
// replacements the strategy performed.
func (e *Experiment) runOne(p *prepared, factory strategies.Factory, rng *rand.Rand) (string, bool, int, error) {
	env := strategies.Env{
		Universe:    e.Universe,
		N:           e.N,
		Evaluator:   p.tables,
		SharedCount: p.tables.SharedCount,
		SharedCVSS:  p.tables.SharedCVSS,
		Threshold:   e.Threshold,
	}
	strat, err := factory(env, rng)
	if err != nil {
		return "", false, 0, err
	}
	cfg, err := strat.Init(p.start.AddDate(0, 0, -1))
	if err != nil {
		return "", false, 0, err
	}
	check := CompromisedBy
	if p.zeroDay {
		check = CompromisedByZeroDay
	}
	reconfigs := 0
	for d := p.start; d.Before(p.end); d = d.AddDate(0, 0, 1) {
		if d.After(p.start) {
			next, err := strat.Step(d.AddDate(0, 0, -1))
			if err != nil {
				return "", false, reconfigs, err
			}
			reconfigs += diffCount(cfg, next)
			cfg = next
		}
		if cve, bad := check(cfg, p.checkVulns, d, e.F); bad {
			return cve, true, reconfigs, nil
		}
	}
	return "", false, reconfigs, nil
}

// diffCount counts replicas of next absent from prev (replacements).
func diffCount(prev, next core.Config) int {
	n := 0
	for _, r := range next {
		if !prev.Contains(r.ID) {
			n++
		}
	}
	return n
}

// runAll fans the Runs × strategies grid across workers.
func (e *Experiment) runAll(p *prepared, label string) (*MonthResult, error) {
	scanStart := time.Now()
	defer func() {
		e.Metrics.Histogram("riskim.scan_us").Observe(time.Since(scanStart).Microseconds())
	}()
	res := &MonthResult{
		Month:       p.start,
		Runs:        e.Runs,
		Compromised: make(map[string]int),
		Culprits:    make(map[string]map[string]int),
		Reconfigs:   make(map[string]int),
	}
	factories := strategies.Factories()
	type job struct {
		strategy string
		run      int
	}
	type outcome struct {
		strategy, cve string
		bad           bool
		reconfigs     int
		err           error
	}
	var jobs []job
	for _, name := range e.strategyNames() {
		if _, ok := factories[name]; !ok {
			return nil, fmt.Errorf("riskim: unknown strategy %q", name)
		}
		res.Culprits[name] = make(map[string]int)
		res.Compromised[name] = 0
		res.Reconfigs[name] = 0
		for r := 0; r < e.Runs; r++ {
			jobs = append(jobs, job{name, r})
		}
	}
	e.Metrics.Counter("riskim.runs").Add(int64(len(jobs)))
	workers := e.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobCh := make(chan job)
	outCh := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				rng := rand.New(rand.NewSource(runSeed(e.Seed, label, j.strategy, j.run)))
				cve, bad, reconfigs, err := e.runOne(p, factories[j.strategy], rng)
				outCh <- outcome{j.strategy, cve, bad, reconfigs, err}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()
	var firstErr error
	for o := range outCh {
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		res.Reconfigs[o.strategy] += o.reconfigs
		if o.bad {
			res.Compromised[o.strategy]++
			res.Culprits[o.strategy][o.cve]++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// runSeed derives a deterministic per-run seed.
func runSeed(base int64, label, strategy string, run int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%s/%d", base, label, strategy, run)
	return int64(h.Sum64())
}

// RunMonth executes one Figure 5 slot: learning = everything before the
// month, execution = the month's days, oracle = the month's
// vulnerabilities with patches honored.
func (e *Experiment) RunMonth(month time.Time) (*MonthResult, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	start := time.Date(month.Year(), month.Month(), 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 1, 0)
	checkVulns := e.Dataset.PublishedIn(start, end)
	p, err := e.prepare(start, start, end, checkVulns, false)
	if err != nil {
		return nil, err
	}
	return e.runAll(p, start.Format("2006-01"))
}

// Figure5 runs the eight monthly slots of the paper's Figure 5 (January to
// August 2018).
func (e *Experiment) Figure5() ([]*MonthResult, error) {
	var out []*MonthResult
	for m := time.January; m <= time.August; m++ {
		res, err := e.RunMonth(time.Date(2018, m, 1, 0, 0, 0, 0, time.UTC))
		if err != nil {
			return nil, fmt.Errorf("riskim: month %v: %w", m, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// AttackResult reports one bar group of Figure 6.
type AttackResult struct {
	// Attack is the attack name ("WannaCry", "StackClash", "Petya",
	// "All").
	Attack string
	// Runs and Compromised as in MonthResult.
	Runs        int
	Compromised map[string]int
}

// Rate returns the compromised percentage for a strategy.
func (a *AttackResult) Rate(strategy string) float64 {
	return 100 * float64(a.Compromised[strategy]) / float64(a.Runs)
}

// Figure6 runs the notable-attack evaluation: learning to 2017-12-31,
// execution January–August 2018, and for each attack the oracle tests only
// that attack's CVEs, ignoring patch state (the attack is assumed
// weaponized before disclosure).
func (e *Experiment) Figure6() ([]*AttackResult, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	attacks := feeds.AttackCVEs()
	names := make([]string, 0, len(attacks)+1)
	for name := range attacks {
		names = append(names, name)
	}
	sort.Strings(names)
	names = append(names, "All")

	start := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2018, 9, 1, 0, 0, 0, 0, time.UTC)

	var out []*AttackResult
	for _, name := range names {
		var cveIDs []string
		if name == "All" {
			seen := map[string]bool{}
			for _, ids := range attacks {
				for _, id := range ids {
					if !seen[id] {
						seen[id] = true
						cveIDs = append(cveIDs, id)
					}
				}
			}
		} else {
			cveIDs = attacks[name]
		}
		var checkVulns []*osint.Vulnerability
		for _, id := range cveIDs {
			if v := e.Dataset.ByID(id); v != nil {
				checkVulns = append(checkVulns, v)
			}
		}
		if len(checkVulns) == 0 {
			return nil, fmt.Errorf("riskim: attack %s has no CVEs in dataset", name)
		}
		p, err := e.prepare(start, start, end, checkVulns, true)
		if err != nil {
			return nil, err
		}
		res, err := e.runAll(p, "attack-"+name)
		if err != nil {
			return nil, err
		}
		out = append(out, &AttackResult{
			Attack:      name,
			Runs:        res.Runs,
			Compromised: res.Compromised,
		})
	}
	return out, nil
}
