package riskim

// Diagnostic harnesses for developing the risk experiments; they are
// skipped unless LAZARUS_DIAG=1 and print into the test log.

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/strategies"
)

func TestDiag(t *testing.T) {
	if os.Getenv("LAZARUS_DIAG") == "" {
		t.Skip("diagnostic harness")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{
		Dataset: ds, Universe: feeds.Replicas(),
		N: 4, F: 1, Runs: 50, Seed: 1,
	}
	for _, m := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		res, err := e.RunMonth(day(2018, 1, 1).AddDate(0, m-1, 0))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("month %d Lazarus=%.0f%% culprits=%v\n", m, res.Rate("Lazarus"), res.Culprits["Lazarus"])
		for cve := range res.Culprits["Lazarus"] {
			v := ds.ByID(cve)
			fmt.Printf("  %s pub=%s cvss=%.1f products=%v patch=%v\n", v.ID,
				v.Published.Format("2006-01-02"), v.CVSS, v.Products, v.PatchedAt.Format("2006-01-02"))
		}
	}
}

func TestDiagPairs(t *testing.T) {
	if os.Getenv("LAZARUS_DIAG") == "" {
		t.Skip("diagnostic harness")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{Dataset: ds, Universe: feeds.Replicas(), N: 4, F: 1, Runs: 1, Seed: 1}
	start := day(2018, 3, 1)
	p, err := e.prepare(start, start, start.AddDate(0, 1, 0), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	uni := feeds.Replicas()
	type pr struct {
		a, b string
		r    float64
	}
	var pairs []pr
	for i := 0; i < len(uni); i++ {
		for j := i + 1; j < len(uni); j++ {
			pairs = append(pairs, pr{uni[i].ID, uni[j].ID, p.tables.PairRisk(uni[i], uni[j], start)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].r < pairs[j].r })
	fmt.Println("cheapest 12 pairs at 2018-03-01:")
	for _, x := range pairs[:12] {
		fmt.Printf("  %-5s %-5s %7.1f\n", x.a, x.b, x.r)
	}
	for _, x := range pairs {
		if (x.a == "OB60" && x.b == "OB61") || (x.a == "OB61" && x.b == "OB60") {
			fmt.Printf("OB60-OB61: %.1f\n", x.r)
		}
		if (x.a == "SO10" && x.b == "SO11") || (x.a == "SO11" && x.b == "SO10") {
			fmt.Printf("SO10-SO11: %.1f\n", x.r)
		}
	}
	_ = core.Config{}
}

func TestDiagTrajectory(t *testing.T) {
	if os.Getenv("LAZARUS_DIAG") == "" {
		t.Skip("diagnostic harness")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{Dataset: ds, Universe: feeds.Replicas(), N: 4, F: 1, Runs: 1, Seed: 1}
	start := day(2018, 3, 1)
	end := start.AddDate(0, 1, 0)
	p, err := e.prepare(start, start, end, ds.PublishedIn(start, end), false)
	if err != nil {
		t.Fatal(err)
	}
	env := strategies.Env{
		Universe: feeds.Replicas(), N: 4, Evaluator: p.tables,
		SharedCount: p.tables.SharedCount, SharedCVSS: p.tables.SharedCVSS,
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, err := strategies.NewLazarus(env, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg, _ := s.Init(start.AddDate(0, 0, -1))
		fmt.Printf("seed %d init %v risk=%.1f", seed, cfg.IDs(), p.tables.Risk(cfg, start))
		for d := start; d.Before(day(2018, 3, 15)); d = d.AddDate(0, 0, 1) {
			if d.After(start) {
				cfg, _ = s.Step(d.AddDate(0, 0, -1))
			}
			if d.Equal(day(2018, 3, 10)) {
				fmt.Printf(" | Mar10 cfg %v", cfg.IDs())
			}
		}
		fmt.Println()
	}
}
