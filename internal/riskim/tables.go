// Package riskim is the risk-simulation harness for the paper's §6
// experiments: it emulates live executions of the managed BFT system over
// the historical dataset, with a learning phase that builds the knowledge
// base and an execution phase in which each strategy evolves the replica
// set daily while a compromise oracle checks whether a single
// vulnerability affects f+1 running, unpatched replicas (Figures 5 and 6).
package riskim

import (
	"fmt"
	"math"
	"time"

	"lazarus/internal/core"
	"lazarus/internal/osint"
)

// Tables is a day-granular precomputation of every risk query the
// strategies issue. Within one month-experiment the corpus and clustering
// are fixed and only time advances, so all pair metrics can be computed
// once and shared — read-only — across the 1000 runs of all strategies.
type Tables struct {
	replicas []core.Replica
	index    map[string]int
	day0     time.Time
	days     int

	pairRisk  [][]float64 // [day][pair] Equation 5 contribution (clustered)
	pairCount [][]float64 // [day][pair] |direct shared|
	pairCVSS  [][]float64 // [day][pair] summed CVSS of direct shared

	avgScore  [][]float64 // [day][replica]
	unpatched [][]int     // [day][replica]
	patched   [][]bool    // [day][replica]
}

// NewTables precomputes all metrics for the universe over [day0, day0 +
// days), using the engine's intelligence base.
func NewTables(engine *core.RiskEngine, universe []core.Replica, day0 time.Time, days int) (*Tables, error) {
	if days <= 0 {
		return nil, fmt.Errorf("riskim: days = %d must be positive", days)
	}
	n := len(universe)
	if n == 0 {
		return nil, fmt.Errorf("riskim: empty universe")
	}
	t := &Tables{
		replicas: append([]core.Replica(nil), universe...),
		index:    make(map[string]int, n),
		day0:     day0,
		days:     days,
	}
	for i, r := range universe {
		if _, dup := t.index[r.ID]; dup {
			return nil, fmt.Errorf("riskim: duplicate replica %s", r.ID)
		}
		t.index[r.ID] = i
	}
	pairs := n * n
	intel := engine.Intel()
	params := engine.Params()
	t.pairRisk = make([][]float64, days)
	t.pairCount = make([][]float64, days)
	t.pairCVSS = make([][]float64, days)
	t.avgScore = make([][]float64, days)
	t.unpatched = make([][]int, days)
	t.patched = make([][]bool, days)
	for d := 0; d < days; d++ {
		now := day0.AddDate(0, 0, d)
		t.pairRisk[d] = make([]float64, pairs)
		t.pairCount[d] = make([]float64, pairs)
		t.pairCVSS[d] = make([]float64, pairs)
		t.avgScore[d] = make([]float64, n)
		t.unpatched[d] = make([]int, n)
		t.patched[d] = make([]bool, n)
		for i := 0; i < n; i++ {
			t.avgScore[d][i] = engine.AverageScore(universe[i], now)
			t.unpatched[d][i] = engine.UnpatchedCount(universe[i], now)
			t.patched[d][i] = engine.FullyPatched(universe[i], now)
			for j := i + 1; j < n; j++ {
				var risk float64
				for _, v := range intel.Shared(universe[i], universe[j], now) {
					risk += params.Score(v, now)
				}
				var count, cvss float64
				for _, v := range intel.DirectShared(universe[i], universe[j], now) {
					count++
					cvss += v.CVSS
				}
				t.pairRisk[d][i*n+j], t.pairRisk[d][j*n+i] = risk, risk
				t.pairCount[d][i*n+j], t.pairCount[d][j*n+i] = count, count
				t.pairCVSS[d][i*n+j], t.pairCVSS[d][j*n+i] = cvss, cvss
			}
		}
	}
	return t, nil
}

// dayIndex clamps a time into the covered window.
func (t *Tables) dayIndex(now time.Time) int {
	d := int(now.Sub(t.day0).Hours() / 24)
	if d < 0 {
		return 0
	}
	if d >= t.days {
		return t.days - 1
	}
	return d
}

func (t *Tables) replicaIndex(id string) (int, bool) {
	i, ok := t.index[id]
	return i, ok
}

var _ core.RiskEvaluator = (*Tables)(nil)

// Risk implements core.RiskEvaluator via table lookups. Configurations
// containing replicas outside the universe evaluate to +Inf (never
// selectable).
func (t *Tables) Risk(cfg core.Config, now time.Time) float64 {
	d := t.dayIndex(now)
	n := len(t.replicas)
	var total float64
	for i := 0; i < len(cfg); i++ {
		a, ok := t.replicaIndex(cfg[i].ID)
		if !ok {
			return math.Inf(1)
		}
		for j := i + 1; j < len(cfg); j++ {
			b, ok := t.replicaIndex(cfg[j].ID)
			if !ok {
				return math.Inf(1)
			}
			total += t.pairRisk[d][a*n+b]
		}
	}
	return total
}

// AverageScore implements core.RiskEvaluator.
func (t *Tables) AverageScore(r core.Replica, now time.Time) float64 {
	i, ok := t.replicaIndex(r.ID)
	if !ok {
		return 0
	}
	return t.avgScore[t.dayIndex(now)][i]
}

// FullyPatched implements core.RiskEvaluator.
func (t *Tables) FullyPatched(r core.Replica, now time.Time) bool {
	i, ok := t.replicaIndex(r.ID)
	if !ok {
		return false
	}
	return t.patched[t.dayIndex(now)][i]
}

// UnpatchedCount implements core.RiskEvaluator.
func (t *Tables) UnpatchedCount(r core.Replica, now time.Time) int {
	i, ok := t.replicaIndex(r.ID)
	if !ok {
		return 0
	}
	return t.unpatched[t.dayIndex(now)][i]
}

// SharedCount is the Common strategy's pair metric.
func (t *Tables) SharedCount(ri, rj core.Replica, now time.Time) float64 {
	a, okA := t.replicaIndex(ri.ID)
	b, okB := t.replicaIndex(rj.ID)
	if !okA || !okB {
		return math.Inf(1)
	}
	return t.pairCount[t.dayIndex(now)][a*len(t.replicas)+b]
}

// SharedCVSS is the CVSSv3 strategy's pair metric.
func (t *Tables) SharedCVSS(ri, rj core.Replica, now time.Time) float64 {
	a, okA := t.replicaIndex(ri.ID)
	b, okB := t.replicaIndex(rj.ID)
	if !okA || !okB {
		return math.Inf(1)
	}
	return t.pairCVSS[t.dayIndex(now)][a*len(t.replicas)+b]
}

// PairRisk exposes the Lazarus pair metric for diagnostics and threshold
// calibration.
func (t *Tables) PairRisk(ri, rj core.Replica, now time.Time) float64 {
	a, okA := t.replicaIndex(ri.ID)
	b, okB := t.replicaIndex(rj.ID)
	if !okA || !okB {
		return math.Inf(1)
	}
	return t.pairRisk[t.dayIndex(now)][a*len(t.replicas)+b]
}

// CompromisedBy reports whether a single vulnerability in vulns, published
// by day d, affects at least f+1 replicas of the configuration whose
// product is still unpatched at d — the paper's pessimistic compromise
// oracle (§6). It returns the first compromising CVE id.
func CompromisedBy(cfg core.Config, vulns []*osint.Vulnerability, d time.Time, f int) (string, bool) {
	return compromisedBy(cfg, vulns, d, f, true)
}

// CompromisedByZeroDay is CompromisedBy under the Figure 6 assumption that
// the attack was weaponized before disclosure, so patch state offers no
// protection.
func CompromisedByZeroDay(cfg core.Config, vulns []*osint.Vulnerability, d time.Time, f int) (string, bool) {
	return compromisedBy(cfg, vulns, d, f, false)
}

func compromisedBy(cfg core.Config, vulns []*osint.Vulnerability, d time.Time, f int, honorPatches bool) (string, bool) {
	for _, v := range vulns {
		if v.Published.After(d) {
			continue
		}
		affected := 0
		for _, r := range cfg {
			for _, p := range r.Products {
				if !v.Affects(p) {
					continue
				}
				if honorPatches && v.ProductPatchedBy(p, d) {
					continue
				}
				affected++
				break
			}
		}
		if affected >= f+1 {
			return v.ID, true
		}
	}
	return "", false
}
