package riskim

import (
	"math"
	"testing"
	"time"

	"lazarus/internal/cluster"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/osint"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

var (
	rUB = core.NewReplica("UB16", "canonical:ubuntu_linux:16.04")
	rDE = core.NewReplica("DE8", "debian:debian_linux:8.0")
	rSO = core.NewReplica("SO11", "oracle:solaris:11.3")
	rW1 = core.NewReplica("W10", "microsoft:windows_10:-")
)

func smallEngine(t *testing.T) *core.RiskEngine {
	t.Helper()
	corpus := []*osint.Vulnerability{
		{ID: "CVE-2018-0001", Description: "a", Published: day(2018, 5, 10), CVSS: 8,
			Products: []string{"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"}},
		{ID: "CVE-2018-0002", Description: "b", Published: day(2018, 5, 20), CVSS: 4,
			Products: []string{"oracle:solaris:11.3"}},
	}
	intel, err := core.NewIntel(corpus, &cluster.Clusters{K: 1, ByCVE: map[string]int{}, Members: make([][]string, 1)})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewRiskEngine(intel, core.DefaultScoreParams())
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func TestTablesMatchEngine(t *testing.T) {
	engine := smallEngine(t)
	universe := []core.Replica{rUB, rDE, rSO, rW1}
	tables, err := NewTables(engine, universe, day(2018, 5, 1), 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{rUB, rDE, rSO}
	for off := 0; off < 40; off += 7 {
		now := day(2018, 5, 1).AddDate(0, 0, off)
		if got, want := tables.Risk(cfg, now), engine.Risk(cfg, now); math.Abs(got-want) > 1e-9 {
			t.Errorf("day %d: Risk = %v, engine = %v", off, got, want)
		}
		for _, r := range universe {
			if got, want := tables.AverageScore(r, now), engine.AverageScore(r, now); math.Abs(got-want) > 1e-9 {
				t.Errorf("day %d: AverageScore(%s) = %v, engine = %v", off, r.ID, got, want)
			}
			if got, want := tables.FullyPatched(r, now), engine.FullyPatched(r, now); got != want {
				t.Errorf("day %d: FullyPatched(%s) = %v, engine = %v", off, r.ID, got, want)
			}
			if got, want := tables.UnpatchedCount(r, now), engine.UnpatchedCount(r, now); got != want {
				t.Errorf("day %d: UnpatchedCount(%s) = %v, engine = %v", off, r.ID, got, want)
			}
		}
	}
}

func TestTablesClampAndUnknown(t *testing.T) {
	engine := smallEngine(t)
	universe := []core.Replica{rUB, rDE}
	tables, err := NewTables(engine, universe, day(2018, 5, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-window times clamp to the window edges.
	early := tables.Risk(core.Config{rUB, rDE}, day(2017, 1, 1))
	first := tables.Risk(core.Config{rUB, rDE}, day(2018, 5, 1))
	if early != first {
		t.Errorf("pre-window risk %v != first-day risk %v", early, first)
	}
	// Unknown replicas are never selectable.
	unknown := core.NewReplica("NOPE", "x:y:z")
	if r := tables.Risk(core.Config{rUB, unknown}, day(2018, 5, 5)); !math.IsInf(r, 1) {
		t.Errorf("risk with unknown replica = %v, want +Inf", r)
	}
	if c := tables.SharedCount(rUB, unknown, day(2018, 5, 5)); !math.IsInf(c, 1) {
		t.Errorf("SharedCount with unknown replica = %v, want +Inf", c)
	}
}

func TestNewTablesValidation(t *testing.T) {
	engine := smallEngine(t)
	if _, err := NewTables(engine, nil, day(2018, 5, 1), 5); err == nil {
		t.Error("empty universe accepted")
	}
	if _, err := NewTables(engine, []core.Replica{rUB}, day(2018, 5, 1), 0); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := NewTables(engine, []core.Replica{rUB, rUB}, day(2018, 5, 1), 5); err == nil {
		t.Error("duplicate replica accepted")
	}
}

func TestCompromisedBy(t *testing.T) {
	v := &osint.Vulnerability{
		ID: "CVE-2018-0001", Description: "x", Published: day(2018, 5, 10), CVSS: 8,
		Products: []string{"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"},
		ProductPatches: map[string]time.Time{
			"canonical:ubuntu_linux:16.04": day(2018, 5, 12),
		},
	}
	vulns := []*osint.Vulnerability{v}
	cfg := core.Config{rUB, rDE, rSO, rW1}

	// Before publication: safe.
	if _, bad := CompromisedBy(cfg, vulns, day(2018, 5, 9), 1); bad {
		t.Error("compromised before publication")
	}
	// Published, both unpatched: f+1 = 2 affected -> compromised.
	cve, bad := CompromisedBy(cfg, vulns, day(2018, 5, 10), 1)
	if !bad || cve != "CVE-2018-0001" {
		t.Errorf("want compromise on day of publication, got %v %v", cve, bad)
	}
	// Ubuntu patched on the 12th: only Debian unpatched -> f of the OSes
	// patched, not counted (paper rule).
	if _, bad := CompromisedBy(cfg, vulns, day(2018, 5, 12), 1); bad {
		t.Error("compromised although only one replica is unpatched")
	}
	// Zero-day oracle ignores patches.
	if _, bad := CompromisedByZeroDay(cfg, vulns, day(2018, 5, 12), 1); !bad {
		t.Error("zero-day oracle honored patches")
	}
	// Config without the pair is safe either way.
	safe := core.Config{rUB, rSO, rW1}
	if _, bad := CompromisedBy(safe, vulns, day(2018, 5, 10), 1); bad {
		t.Error("single affected replica counted as compromise")
	}
	// Higher f tolerates more.
	if _, bad := CompromisedBy(cfg, vulns, day(2018, 5, 10), 2); bad {
		t.Error("f=2 compromised by 2 affected replicas")
	}
}

func TestExperimentValidate(t *testing.T) {
	ds := feeds.NewDataset(nil)
	cases := []Experiment{
		{Dataset: nil, Universe: feeds.Replicas(), N: 4, F: 1, Runs: 1},
		{Dataset: ds, Universe: feeds.Replicas()[:3], N: 4, F: 1, Runs: 1},
		{Dataset: ds, Universe: feeds.Replicas(), N: 5, F: 1, Runs: 1},
		{Dataset: ds, Universe: feeds.Replicas(), N: 4, F: 1, Runs: 0},
		{Dataset: ds, Universe: feeds.Replicas(), N: 4, F: 1, Runs: 1, Threshold: -1},
	}
	for i, e := range cases {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestRunMonthSmoke runs a reduced month-slot end to end and checks the
// result invariants (not the exact rates, which EXPERIMENTS.md records).
func TestRunMonthSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end month simulation")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{
		Dataset:   ds,
		Universe:  feeds.Replicas(),
		N:         4,
		F:         1,
		Runs:      20,
		Seed:      7,
		Threshold: 12,
		ClusterK:  32,
	}
	res, err := e.RunMonth(day(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 20 {
		t.Errorf("runs = %d", res.Runs)
	}
	for name, n := range res.Compromised {
		if n < 0 || n > res.Runs {
			t.Errorf("%s compromised %d out of %d", name, n, res.Runs)
		}
	}
	for _, name := range []string{"Lazarus", "CVSSv3", "Common", "Random", "Equal"} {
		if _, ok := res.Compromised[name]; !ok {
			t.Errorf("strategy %s missing from result", name)
		}
	}
	// Determinism: same config, same outcome.
	res2, err := e.RunMonth(day(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	for name := range res.Compromised {
		if res.Compromised[name] != res2.Compromised[name] {
			t.Errorf("%s: %d vs %d across identical runs", name, res.Compromised[name], res2.Compromised[name])
		}
	}
}

// TestAblationMonthSmoke runs the metric ablation on a reduced
// configuration and checks result invariants.
func TestAblationMonthSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end ablation")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{
		Dataset:  ds,
		Universe: feeds.Replicas(),
		N:        4, F: 1,
		Runs: 10,
		Seed: 3,
	}
	res, err := e.AblationMonth(day(2018, 5, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range DefaultVariants() {
		n, ok := res.Compromised[v.Name]
		if !ok {
			t.Errorf("variant %s missing", v.Name)
		}
		if n < 0 || n > res.Runs {
			t.Errorf("variant %s compromised %d of %d", v.Name, n, res.Runs)
		}
	}
	// The experiment's own settings must be restored.
	if e.Threshold != 0 || e.Strategies != nil {
		t.Errorf("experiment mutated: threshold=%v strategies=%v", e.Threshold, e.Strategies)
	}
}

// TestHeadlineShape guards the paper's headline comparison at reduced
// scale: in the hardest month (May 2018, carrying the real anchor CVEs),
// the Lazarus strategy must compromise no more runs than each baseline,
// and the uninformed strategies must lose a substantial fraction.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end month simulation")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{
		Dataset:  ds,
		Universe: feeds.Replicas(),
		N:        4, F: 1,
		Runs: 40,
		Seed: 11,
	}
	res, err := e.RunMonth(day(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	lazarus := res.Rate("Lazarus")
	for _, name := range []string{"CVSSv3", "Common", "Random", "Equal"} {
		if lazarus > res.Rate(name) {
			t.Errorf("Lazarus (%.0f%%) compromised more than %s (%.0f%%)", lazarus, name, res.Rate(name))
		}
	}
	if res.Rate("Equal") < 30 {
		t.Errorf("Equal at %.0f%% — May should be hard for a homogeneous system", res.Rate("Equal"))
	}
	if res.Rate("Random") < 30 {
		t.Errorf("Random at %.0f%% — daily uninformed replacement should fail often in May", res.Rate("Random"))
	}
}

// TestSevenReplicaExperiment checks the harness generalizes beyond the
// paper's n=4/f=1: with n=7/f=2 a compromise needs three co-affected
// unpatched replicas, which should be rarer for every informed strategy.
func TestSevenReplicaExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end month simulation")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{
		Dataset:  ds,
		Universe: feeds.Replicas(),
		N:        7, F: 2,
		Runs: 15,
		Seed: 5,
	}
	res, err := e.RunMonth(day(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate("Lazarus") > res.Rate("Equal") {
		t.Errorf("n=7 Lazarus (%.0f%%) worse than Equal (%.0f%%)",
			res.Rate("Lazarus"), res.Rate("Equal"))
	}
	// f=2 requires three co-affected replicas; Equal still fails whenever
	// its single OS takes any unpatched hit (all seven share it).
	if res.Rate("Equal") == 0 {
		t.Log("Equal survived May at n=7 in this sample (possible, but rare)")
	}
}
