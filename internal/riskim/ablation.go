package riskim

import (
	"fmt"
	"time"

	"lazarus/internal/core"
)

// Variant is one risk-metric ablation: the Lazarus strategy run with part
// of the Equation 1/Equation 5 machinery disabled, quantifying what each
// ingredient contributes to the Figure 5 result.
type Variant struct {
	// Name labels the variant in reports.
	Name string
	// UseClusters keeps the description-cluster component of V(ri,rj).
	UseClusters bool
	// Params are the Equation 1 constants (zero value = paper defaults).
	Params core.ScoreParams
	// Threshold overrides the adaptive threshold (0 = adaptive).
	Threshold float64
}

// DefaultVariants returns the standard ablation set:
//
//   - full: the complete Lazarus metric;
//   - no-clusters: only direct NVD co-listings feed Equation 5 (the
//     clustering contribution);
//   - no-recency: CVSS taken at face value — no age decay, no patch
//     discount, no exploit boost (the Equation 2–4 contribution).
func DefaultVariants() []Variant {
	flat := core.DefaultScoreParams()
	flat.OldnessSlope = 0
	flat.OldnessFloor = 1
	flat.PatchedFactor = 1
	flat.ExploitedFactor = 1
	return []Variant{
		{Name: "full", UseClusters: true},
		{Name: "no-clusters", UseClusters: false},
		{Name: "no-recency", UseClusters: true, Params: flat},
	}
}

// AblationResult reports one month's ablation.
type AblationResult struct {
	Month time.Time
	Runs  int
	// Compromised counts per variant name.
	Compromised map[string]int
	// Reconfigs accumulates replica replacements per variant.
	Reconfigs map[string]int
}

// AvgReconfigs returns the mean replacements per run for a variant.
func (a *AblationResult) AvgReconfigs(variant string) float64 {
	return float64(a.Reconfigs[variant]) / float64(a.Runs)
}

// Rate returns the compromised percentage for a variant.
func (a *AblationResult) Rate(variant string) float64 {
	return 100 * float64(a.Compromised[variant]) / float64(a.Runs)
}

// AblationMonth runs the Lazarus strategy under each variant for one
// Figure 5 month slot.
func (e *Experiment) AblationMonth(month time.Time, variants []Variant) (*AblationResult, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if len(variants) == 0 {
		variants = DefaultVariants()
	}
	start := time.Date(month.Year(), month.Month(), 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 1, 0)
	checkVulns := e.Dataset.PublishedIn(start, end)

	out := &AblationResult{
		Month:       start,
		Runs:        e.Runs,
		Compromised: make(map[string]int),
		Reconfigs:   make(map[string]int),
	}
	for _, v := range variants {
		params := v.Params
		if params == (core.ScoreParams{}) {
			params = core.DefaultScoreParams()
		}
		p, err := e.prepareWith(start, start, end, checkVulns, false, params, v.UseClusters)
		if err != nil {
			return nil, fmt.Errorf("riskim: variant %s: %w", v.Name, err)
		}
		saveThreshold := e.Threshold
		saveStrategies := e.Strategies
		e.Threshold = v.Threshold
		e.Strategies = []string{"Lazarus"}
		res, err := e.runAll(p, "ablation-"+v.Name+"-"+start.Format("2006-01"))
		e.Threshold = saveThreshold
		e.Strategies = saveStrategies
		if err != nil {
			return nil, err
		}
		out.Compromised[v.Name] = res.Compromised["Lazarus"]
		out.Reconfigs[v.Name] = res.Reconfigs["Lazarus"]
	}
	return out, nil
}
