package riskim

import (
	"fmt"
	"os"
	"testing"

	"lazarus/internal/feeds"
)

// TestCalibrate is a manual calibration harness: LAZARUS_CALIBRATE=1 go test -run TestCalibrate
func TestCalibrate(t *testing.T) {
	if os.Getenv("LAZARUS_CALIBRATE") == "" {
		t.Skip("calibration harness; set LAZARUS_CALIBRATE=1")
	}
	ds, err := feeds.GenerateDataset(feeds.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &Experiment{
		Dataset: ds, Universe: feeds.Replicas(),
		N: 4, F: 1, Runs: 100, Seed: 7, Threshold: 0, ClusterK: 0,
	}
	results, err := e.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf(" month %s:", res.Month.Format("2006-01"))
		for _, name := range []string{"Lazarus", "CVSSv3", "Common", "Random", "Equal"} {
			fmt.Printf(" %s=%.0f%%", name, res.Rate(name))
		}
		fmt.Println()
	}
	attacks, err := e.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range attacks {
		fmt.Printf(" attack %s:", a.Attack)
		for _, name := range []string{"Lazarus", "CVSSv3", "Common", "Random", "Equal"} {
			fmt.Printf(" %s=%.0f%%", name, a.Rate(name))
		}
		fmt.Println()
	}
}
