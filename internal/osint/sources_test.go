package osint

import (
	"bytes"
	"strings"
	"testing"
)

func TestExploitDBParser(t *testing.T) {
	csvData := `id,file,description,date,author,type,platform,cve
44697,exploits/windows/remote/44697.py,"SMB exploit, remote",2018-05-21,anon,remote,windows,CVE-2017-0144
44698,exploits/linux/local/44698.c,local root,2018-05-23,anon,local,linux,
44699,exploits/linux/local/44699.c,mov ss,bad-date,anon,local,linux,CVE-2018-8897
44700,exploits/multiple/remote/44700.py,dhcp,2018-05-30,anon,remote,linux,CVE-2018-1111
`
	enr, err := ExploitDBParser{}.Parse(strings.NewReader(csvData))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(enr) != 2 {
		t.Fatalf("parsed %d enrichments, want 2 (no-CVE and bad-date rows skipped)", len(enr))
	}
	if enr[0].CVE != "CVE-2017-0144" || !enr[0].ExploitAt.Equal(day(2018, 5, 21)) {
		t.Errorf("first enrichment = %+v", enr[0])
	}
	if enr[1].CVE != "CVE-2018-1111" {
		t.Errorf("second enrichment = %+v", enr[1])
	}
}

func TestExploitDBParserErrors(t *testing.T) {
	if _, err := (ExploitDBParser{}).Parse(strings.NewReader("")); err == nil {
		t.Error("empty index accepted")
	}
	if _, err := (ExploitDBParser{}).Parse(strings.NewReader("id,file\n1,x\n")); err == nil {
		t.Error("index without cve column accepted")
	}
}

func TestVendorAdvisoryParser(t *testing.T) {
	page := `<html><body>
<h1>Ubuntu Security Notices</h1>
<table>
<tr><th>CVE</th><th>Patched</th><th>Affected</th></tr>
<tr><td>CVE-2018-8897</td><td>2018-05-09</td><td>canonical:ubuntu_linux:16.04, canonical:ubuntu_linux:17.04</td></tr>
<tr class="odd"><td>CVE-2018-1125</td><td></td><td>canonical:ubuntu_linux:16.04</td></tr>
<tr><td>not-a-cve</td><td>2018-01-01</td><td>x</td></tr>
</table></body></html>`
	enr, err := (VendorAdvisoryParser{Vendor: "ubuntu"}).Parse(strings.NewReader(page))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(enr) != 2 {
		t.Fatalf("parsed %d rows, want 2", len(enr))
	}
	if enr[0].CVE != "CVE-2018-8897" || !enr[0].PatchedAt.Equal(day(2018, 5, 9)) {
		t.Errorf("row 0 = %+v", enr[0])
	}
	if len(enr[0].ExtraProducts) != 2 || enr[0].ExtraProducts[1] != "canonical:ubuntu_linux:17.04" {
		t.Errorf("row 0 products = %v", enr[0].ExtraProducts)
	}
	if !enr[1].PatchedAt.IsZero() {
		t.Errorf("row 1 should have no patch date, got %v", enr[1].PatchedAt)
	}
}

func TestAdvisoryRoundTrip(t *testing.T) {
	rows := []Enrichment{
		{CVE: "CVE-2018-1111", PatchedAt: day(2018, 5, 17), ExtraProducts: []string{"fedoraproject:fedora:26", "redhat:enterprise_linux:7.0"}},
		{CVE: "CVE-2018-8012", ExtraProducts: []string{"debian:debian_linux:8.0"}},
	}
	var buf bytes.Buffer
	if err := WriteAdvisoryPage(&buf, "redhat", rows); err != nil {
		t.Fatalf("WriteAdvisoryPage: %v", err)
	}
	parsed, err := (VendorAdvisoryParser{Vendor: "redhat"}).Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(parsed) != 2 {
		t.Fatalf("round trip lost rows: %d", len(parsed))
	}
	if parsed[0].CVE != rows[0].CVE || !parsed[0].PatchedAt.Equal(rows[0].PatchedAt) {
		t.Errorf("row 0 mismatch: %+v", parsed[0])
	}
	if len(parsed[0].ExtraProducts) != 2 {
		t.Errorf("row 0 products = %v", parsed[0].ExtraProducts)
	}
}

func TestExploitDBRoundTrip(t *testing.T) {
	rows := []Enrichment{
		{CVE: "CVE-2018-8303", ExploitAt: day(2018, 9, 24)},
		{CVE: "CVE-2018-0000", ExploitAt: day(2018, 1, 1)},
		{CVE: "CVE-2018-9999"}, // zero exploit date: not emitted
	}
	var buf bytes.Buffer
	if err := WriteExploitDBIndex(&buf, rows); err != nil {
		t.Fatalf("WriteExploitDBIndex: %v", err)
	}
	parsed, err := (ExploitDBParser{}).Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(parsed) != 2 {
		t.Fatalf("round trip rows = %d, want 2", len(parsed))
	}
	if parsed[0].CVE != "CVE-2018-8303" || !parsed[0].ExploitAt.Equal(day(2018, 9, 24)) {
		t.Errorf("row 0 = %+v", parsed[0])
	}
}

func TestCVEDetailsParser(t *testing.T) {
	page := `<html><body><h1>Security Vulnerabilities</h1>
<div class="cve"><h3>CVE-2018-8897</h3>
  <span class="cvss">7.8</span>
  <span class="exploit-date">2018-05-13</span>
  <p class="summary">MOV SS mishandling.</p>
</div>
<div class="cve"><h3>CVE-2018-1125</h3>
  <span class="cvss">7.5</span>
  <p class="summary">procps-ng stack overflow.</p>
</div>
</body></html>`
	enr, err := (CVEDetailsParser{}).Parse(strings.NewReader(page))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(enr) != 2 {
		t.Fatalf("parsed %d rows, want 2", len(enr))
	}
	if enr[0].CVE != "CVE-2018-8897" || !enr[0].ExploitAt.Equal(day(2018, 5, 13)) {
		t.Errorf("row 0 = %+v", enr[0])
	}
	if enr[1].CVE != "CVE-2018-1125" || !enr[1].ExploitAt.IsZero() {
		t.Errorf("row 1 = %+v", enr[1])
	}
}

func TestCVEDetailsParserErrors(t *testing.T) {
	bad := `<div class="cve"><h3>CVE-2018-1</h3><span class="exploit-date">not-a-date</span></div>`
	if enr, err := (CVEDetailsParser{}).Parse(strings.NewReader(bad)); err != nil || len(enr) != 1 {
		// Unmatched date formats are simply not captured by the row regex.
		t.Logf("lenient parse: %v rows, err=%v", len(enr), err)
	}
	badDate := `<h3>CVE-2018-1</h3>
<span class="exploit-date">2018-13-99</span>`
	if _, err := (CVEDetailsParser{}).Parse(strings.NewReader(badDate)); err == nil {
		t.Error("impossible date accepted")
	}
	badCVSS := `<h3>CVE-2018-1</h3>
<span class="cvss">55.1</span>`
	if _, err := (CVEDetailsParser{}).Parse(strings.NewReader(badCVSS)); err == nil {
		t.Error("out-of-range cvss accepted")
	}
}

func TestCVEDetailsRoundTrip(t *testing.T) {
	rows := []Enrichment{
		{CVE: "CVE-2017-0144", ExploitAt: day(2017, 5, 12)},
		{CVE: "CVE-2017-0199"},
	}
	var buf bytes.Buffer
	if err := WriteCVEDetailsPage(&buf, rows); err != nil {
		t.Fatal(err)
	}
	parsed, err := (CVEDetailsParser{}).Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || parsed[0].CVE != rows[0].CVE || !parsed[0].ExploitAt.Equal(rows[0].ExploitAt) {
		t.Errorf("round trip = %+v", parsed)
	}
}
