package osint

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// CVEDetailsParser scrapes a CVE-details-style vulnerability listing
// (paper §5.1 lists cvedetails.com among the prototype's eight auxiliary
// sources). The page enumerates vulnerabilities as definition rows:
//
//	<div class="cve"><h3>CVE-2018-8897</h3>
//	  <span class="cvss">7.8</span>
//	  <span class="date">2018-05-08</span>
//	  <span class="exploit-date">2018-05-13</span>   (optional)
//	  <p class="summary">...</p>
//	</div>
//
// CVE-details consolidates data that is sometimes missing from the NVD
// feed — notably exploit observations — so the parser emits enrichments
// rather than full records.
type CVEDetailsParser struct{}

// Name implements SourceParser.
func (CVEDetailsParser) Name() string { return "cvedetails" }

var (
	cveDetailsIDRE      = regexp.MustCompile(`<h3[^>]*>\s*(CVE-\d{4}-\d+)\s*</h3>`)
	cveDetailsCVSSRE    = regexp.MustCompile(`<span class="cvss"[^>]*>\s*([0-9.]+)\s*</span>`)
	cveDetailsExploitRE = regexp.MustCompile(`<span class="exploit-date"[^>]*>\s*(\d{4}-\d{2}-\d{2})\s*</span>`)
)

// Parse implements SourceParser.
func (CVEDetailsParser) Parse(r io.Reader) ([]Enrichment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Enrichment
	var current *Enrichment
	flush := func() {
		if current != nil {
			out = append(out, *current)
			current = nil
		}
	}
	for sc.Scan() {
		line := sc.Text()
		if m := cveDetailsIDRE.FindStringSubmatch(line); m != nil {
			flush()
			current = &Enrichment{CVE: m[1]}
			continue
		}
		if current == nil {
			continue
		}
		if m := cveDetailsExploitRE.FindStringSubmatch(line); m != nil {
			t, err := time.Parse("2006-01-02", m[1])
			if err != nil {
				return nil, fmt.Errorf("osint: cvedetails %s: bad exploit date %q", current.CVE, m[1])
			}
			current.ExploitAt = t
		}
		// CVSS is validated but not merged (NVD stays authoritative for
		// scores, per the paper's source ranking).
		if m := cveDetailsCVSSRE.FindStringSubmatch(line); m != nil {
			if v, err := strconv.ParseFloat(m[1], 64); err != nil || v < 0 || v > 10 {
				return nil, fmt.Errorf("osint: cvedetails %s: bad cvss %q", current.CVE, m[1])
			}
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("osint: scanning cvedetails page: %w", err)
	}
	return out, nil
}

// WriteCVEDetailsPage renders enrichments in the format CVEDetailsParser
// accepts (fixture factory).
func WriteCVEDetailsPage(w io.Writer, rows []Enrichment) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "<html><body><h1>Security Vulnerabilities</h1>")
	for _, e := range rows {
		fmt.Fprintf(bw, "<div class=\"cve\"><h3>%s</h3>\n", e.CVE)
		if !e.ExploitAt.IsZero() {
			fmt.Fprintf(bw, "  <span class=\"exploit-date\">%s</span>\n", e.ExploitAt.Format("2006-01-02"))
		}
		fmt.Fprintf(bw, "  <p class=\"summary\">%s</p>\n</div>\n", strings.Repeat("-", 3))
	}
	fmt.Fprintln(bw, "</body></html>")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("osint: writing cvedetails page: %w", err)
	}
	return nil
}
