package osint

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lazarus/internal/metrics"
)

// FeedSpec points the crawler at one auxiliary OSINT source.
type FeedSpec struct {
	// URL is where the source document is served.
	URL string
	// Parser converts the document into enrichments.
	Parser SourceParser
}

// CrawlerConfig configures a Crawler.
type CrawlerConfig struct {
	// NVDFeedURLs are the NVD JSON feed documents to ingest (one per
	// year, like NVD's nvdcve-1.1-<year>.json files).
	NVDFeedURLs []string
	// Sources are the auxiliary OSINT sources to consult.
	Sources []FeedSpec
	// Products restricts ingestion to vulnerabilities affecting at least
	// one of these CPE products (the administrator-selected software list
	// of paper §5.1). Empty means ingest everything.
	Products []string
	// Workers is the number of concurrent fetch workers (default 4).
	Workers int
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Metrics, when set, receives feed-parse throughput instruments
	// (records, enrichments, per-source errors, crawl duration).
	Metrics *metrics.Registry
}

// Crawler fetches vulnerability intelligence from an NVD feed and a set of
// auxiliary sources, and assembles consolidated Vulnerability records. It
// is the transport half of the paper's Data manager: "several threads
// cooperatively assembling as much data as possible about each
// vulnerability".
type Crawler struct {
	cfg    CrawlerConfig
	client *http.Client

	crawlUS     *metrics.Histogram
	records     *metrics.Counter
	enrichments *metrics.Counter
	sourceErrs  *metrics.Counter
}

// NewCrawler validates the configuration and returns a Crawler.
func NewCrawler(cfg CrawlerConfig) (*Crawler, error) {
	if len(cfg.NVDFeedURLs) == 0 {
		return nil, fmt.Errorf("osint: crawler needs at least one NVD feed URL")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Crawler{
		cfg:         cfg,
		client:      client,
		crawlUS:     cfg.Metrics.Histogram("osint.crawl_us"),
		records:     cfg.Metrics.Counter("osint.feed_records"),
		enrichments: cfg.Metrics.Counter("osint.feed_enrichments"),
		sourceErrs:  cfg.Metrics.Counter("osint.feed_errors"),
	}, nil
}

// fetchResult carries one source's parse output to the merge stage.
type fetchResult struct {
	source      string
	vulns       []*Vulnerability // from NVD feeds
	enrichments []Enrichment     // from auxiliary sources
	err         error
}

// Crawl fetches every configured document concurrently, merges enrichments
// into the NVD baseline, filters by the configured product list, and
// returns the consolidated records keyed by CVE id. Per-source failures
// are returned in errs; the crawl is usable as long as the NVD baseline
// was ingested (a dead auxiliary site must not take down monitoring).
func (c *Crawler) Crawl(ctx context.Context) (map[string]*Vulnerability, []error) {
	crawlStart := time.Now()
	defer func() { c.crawlUS.Observe(time.Since(crawlStart).Microseconds()) }()
	jobs := make(chan func() fetchResult)
	results := make(chan fetchResult)

	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				results <- job()
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, url := range c.cfg.NVDFeedURLs {
			url := url
			select {
			case jobs <- func() fetchResult { return c.fetchNVD(ctx, url) }:
			case <-ctx.Done():
				return
			}
		}
		for _, src := range c.cfg.Sources {
			src := src
			select {
			case jobs <- func() fetchResult { return c.fetchSource(ctx, src) }:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	byID := make(map[string]*Vulnerability)
	var pending []Enrichment
	var errs []error
	for res := range results {
		switch {
		case res.err != nil:
			c.sourceErrs.Inc()
			errs = append(errs, fmt.Errorf("osint: source %s: %w", res.source, res.err))
		case res.vulns != nil:
			c.records.Add(int64(len(res.vulns)))
			for _, v := range res.vulns {
				if existing, ok := byID[v.ID]; ok {
					if err := existing.Merge(v); err != nil {
						errs = append(errs, err)
					}
				} else {
					byID[v.ID] = v
				}
			}
		default:
			c.enrichments.Add(int64(len(res.enrichments)))
			pending = append(pending, res.enrichments...)
		}
	}
	// Enrichments may arrive before their NVD record; apply them after all
	// sources have completed.
	for _, e := range pending {
		v, ok := byID[e.CVE]
		if !ok {
			continue // enrichment for a CVE outside the monitored window
		}
		v.PatchedAt = earliest(v.PatchedAt, e.PatchedAt)
		v.ExploitAt = earliest(v.ExploitAt, e.ExploitAt)
		for _, p := range e.ExtraProducts {
			v.AddProduct(p)
		}
	}
	if len(c.cfg.Products) > 0 {
		for id, v := range byID {
			if !affectsAny(v, c.cfg.Products) {
				delete(byID, id)
			}
		}
	}
	return byID, errs
}

func affectsAny(v *Vulnerability, products []string) bool {
	for _, p := range products {
		if v.Affects(p) {
			return true
		}
	}
	return false
}

func (c *Crawler) fetchNVD(ctx context.Context, url string) fetchResult {
	body, err := c.get(ctx, url)
	if err != nil {
		return fetchResult{source: url, err: err}
	}
	defer body.Close()
	vulns, _, err := ParseNVDFeed(body)
	if err != nil {
		return fetchResult{source: url, err: err}
	}
	return fetchResult{source: url, vulns: vulns}
}

func (c *Crawler) fetchSource(ctx context.Context, src FeedSpec) fetchResult {
	body, err := c.get(ctx, src.URL)
	if err != nil {
		return fetchResult{source: src.Parser.Name(), err: err}
	}
	defer body.Close()
	enr, err := src.Parser.Parse(body)
	if err != nil {
		return fetchResult{source: src.Parser.Name(), err: err}
	}
	return fetchResult{source: src.Parser.Name(), enrichments: enr}
}

type readCloser interface {
	Read(p []byte) (int, error)
	Close() error
}

func (c *Crawler) get(ctx context.Context, url string) (readCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("building request for %s: %w", url, err)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetching %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("fetching %s: status %s", url, resp.Status)
	}
	return resp.Body, nil
}
