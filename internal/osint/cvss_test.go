package osint

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestBaseScoreKnownVectors checks the CVSS v3.1 implementation against
// scores published by NVD for well-known CVEs.
func TestBaseScoreKnownVectors(t *testing.T) {
	cases := []struct {
		name   string
		vector string
		want   float64
	}{
		// CVE-2017-0144 (EternalBlue / WannaCry).
		{"EternalBlue", "CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.1},
		// CVE-2018-8897 (MOV SS).
		{"MovSS", "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8},
		// CVE-2017-1000364 (Stack Clash).
		{"StackClash", "CVSS:3.1/AV:L/AC:H/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.0},
		// CVE-2018-1111 (DHCP script injection, Red Hat).
		{"DHCP", "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.8},
		// A scope-changed critical (e.g. CVE-2019-0708 style).
		{"ScopeChanged", "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0},
		// No impact at all.
		{"NoImpact", "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
		// Low everything.
		{"LowLocal", "CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6},
	}
	for _, c := range cases {
		m, err := ParseCVSSv3(c.vector)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		got, err := m.BaseScore()
		if err != nil {
			t.Fatalf("%s: score: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: BaseScore() = %.1f, want %.1f", c.name, got, c.want)
		}
	}
}

func TestParseCVSSv3Errors(t *testing.T) {
	bad := []string{
		"",
		"AV:N/AC:L",
		"CVSS:2.0/AV:N",
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H", // missing A
		"CVSS:3.1/AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
		"CVSS:3.1/AV/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
	}
	for _, v := range bad {
		if _, err := ParseCVSSv3(v); err == nil {
			t.Errorf("ParseCVSSv3(%q) succeeded, want error", v)
		}
	}
}

func TestParseIgnoresTemporalMetrics(t *testing.T) {
	m, err := ParseCVSSv3("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:P/RL:O")
	if err != nil {
		t.Fatalf("parse with temporal metrics: %v", err)
	}
	if got, _ := m.BaseScore(); got != 9.8 {
		t.Errorf("score = %v, want 9.8", got)
	}
}

// TestBaseScoreBounds is a property test: every valid metric combination
// yields a score in [0, 10] with one decimal digit.
func TestBaseScoreBounds(t *testing.T) {
	avs, acs, prs, uis, ss, cias := "NALP", "LH", "NLH", "NR", "UC", "HLN"
	pick := func(r *rand.Rand, s string) string { return string(s[r.Intn(len(s))]) }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := CVSSv3{
			AttackVector:       pick(r, avs),
			AttackComplexity:   pick(r, acs),
			PrivilegesRequired: pick(r, prs),
			UserInteraction:    pick(r, uis),
			Scope:              pick(r, ss),
			Confidentiality:    pick(r, cias),
			Integrity:          pick(r, cias),
			Availability:       pick(r, cias),
		}
		score, err := m.BaseScore()
		if err != nil {
			return false
		}
		if score < 0 || score > 10 {
			return false
		}
		// One decimal digit.
		scaled := score * 10
		return scaled == float64(int(scaled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestBaseScoreMonotoneImpact: upgrading any impact metric never lowers the
// score (a sanity property of the CVSS formula for unchanged scope).
func TestBaseScoreMonotoneImpact(t *testing.T) {
	base := "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:%s/I:L/A:L"
	var prev float64 = -1
	for _, c := range []string{"N", "L", "H"} {
		m, err := ParseCVSSv3(strings.Replace(base, "%s", c, 1))
		if err != nil {
			t.Fatal(err)
		}
		score, err := m.BaseScore()
		if err != nil {
			t.Fatal(err)
		}
		if score < prev {
			t.Errorf("score decreased when C upgraded to %s: %v < %v", c, score, prev)
		}
		prev = score
	}
}

func TestRoundUp1(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{4.02, 4.1}, {4.0, 4.0}, {4.00001, 4.1}, {0, 0}, {9.89, 9.9}, {9.91, 10.0},
	}
	for _, c := range cases {
		if got := roundUp1(c.in); got != c.want {
			t.Errorf("roundUp1(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
