// Package osint implements the vulnerability-intelligence data layer of
// Lazarus: the CVE/CPE/CVSS data model, a CVSS v3.1 vector parser and base
// score calculator, parsers for the NVD JSON-1.1 feed format and for
// auxiliary sources (ExploitDB, vendor security advisories), and a
// concurrent crawler that assembles per-vulnerability records from several
// sources (paper §5.1, "Data manager").
package osint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Severity is the CVSS v3 qualitative severity rating (paper §4.2).
type Severity int

// Qualitative severity ratings, as defined by the CVSS v3 specification.
const (
	SeverityNone Severity = iota + 1
	SeverityLow
	SeverityMedium
	SeverityHigh
	SeverityCritical
)

// String returns the rating name as used by NVD.
func (s Severity) String() string {
	switch s {
	case SeverityNone:
		return "NONE"
	case SeverityLow:
		return "LOW"
	case SeverityMedium:
		return "MEDIUM"
	case SeverityHigh:
		return "HIGH"
	case SeverityCritical:
		return "CRITICAL"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// SeverityOf maps a CVSS v3 base score to its qualitative rating.
func SeverityOf(score float64) Severity {
	switch {
	case score <= 0:
		return SeverityNone
	case score < 4.0:
		return SeverityLow
	case score < 7.0:
		return SeverityMedium
	case score < 9.0:
		return SeverityHigh
	default:
		return SeverityCritical
	}
}

// ScoreHigh is the lower bound of the HIGH severity band; Algorithm 1 uses
// it as the initial maxScore when looking for a replica to rotate out.
const ScoreHigh = 7.0

// Vulnerability is one consolidated vulnerability record, assembled from
// NVD plus auxiliary OSINT sources. It is the unit the Lazarus risk engine
// works with.
type Vulnerability struct {
	// ID is the CVE identifier, e.g. "CVE-2018-8897".
	ID string `json:"id"`
	// Description is the CVE free-text description; the clustering engine
	// groups vulnerabilities by the similarity of this text.
	Description string `json:"description"`
	// Products lists the affected platforms as CPE product strings
	// (vendor:product:version), as reported by NVD's CPE configuration
	// plus any additional platforms learned from vendor advisories.
	Products []string `json:"products"`
	// Published is the NVD publication date.
	Published time.Time `json:"published"`
	// CVSS is the CVSS v3 base score (0.0–10.0).
	CVSS float64 `json:"cvss"`
	// Vector is the CVSS v3.1 vector string when known.
	Vector string `json:"vector,omitempty"`
	// PatchedAt is the earliest date a patch was available, zero if none
	// is known. Sources: vendor advisories.
	PatchedAt time.Time `json:"patched_at,omitempty"`
	// ExploitAt is the earliest date a public exploit was observed, zero
	// if none is known. Source: ExploitDB.
	ExploitAt time.Time `json:"exploit_at,omitempty"`
	// ProductPatches optionally records per-product patch availability
	// (vendors ship fixes at different times). When a product has no
	// entry, PatchedAt is its patch date.
	ProductPatches map[string]time.Time `json:"product_patches,omitempty"`
}

// PatchedBy reports whether a patch for the vulnerability was available at
// time t.
func (v *Vulnerability) PatchedBy(t time.Time) bool {
	return !v.PatchedAt.IsZero() && !v.PatchedAt.After(t)
}

// ExploitedBy reports whether a public exploit existed at time t.
func (v *Vulnerability) ExploitedBy(t time.Time) bool {
	return !v.ExploitAt.IsZero() && !v.ExploitAt.After(t)
}

// ProductPatchedBy reports whether the given product had a patch for the
// vulnerability at time t, using the per-product date when recorded and
// the global PatchedAt otherwise.
func (v *Vulnerability) ProductPatchedBy(product string, t time.Time) bool {
	if pd, ok := v.ProductPatches[product]; ok {
		return !pd.IsZero() && !pd.After(t)
	}
	return v.PatchedBy(t)
}

// Affects reports whether the vulnerability lists the given CPE product.
func (v *Vulnerability) Affects(cpeProduct string) bool {
	for _, p := range v.Products {
		if p == cpeProduct {
			return true
		}
	}
	return false
}

// AddProduct records an additional affected product (typically learned from
// a vendor advisory; cf. the paper's CVE-2016-4428/Solaris example). It is
// a no-op if the product is already listed.
func (v *Vulnerability) AddProduct(cpeProduct string) {
	if !v.Affects(cpeProduct) {
		v.Products = append(v.Products, cpeProduct)
	}
}

// Merge folds data from another record for the same CVE into v: union of
// products, earliest patch and exploit dates, and any missing fields. It
// returns an error if the identifiers differ.
func (v *Vulnerability) Merge(other *Vulnerability) error {
	if v.ID != other.ID {
		return fmt.Errorf("osint: cannot merge %s into %s", other.ID, v.ID)
	}
	for _, p := range other.Products {
		v.AddProduct(p)
	}
	if v.Description == "" {
		v.Description = other.Description
	}
	if v.Published.IsZero() {
		v.Published = other.Published
	}
	if v.CVSS == 0 {
		v.CVSS = other.CVSS
	}
	if v.Vector == "" {
		v.Vector = other.Vector
	}
	v.PatchedAt = earliest(v.PatchedAt, other.PatchedAt)
	v.ExploitAt = earliest(v.ExploitAt, other.ExploitAt)
	if len(other.ProductPatches) > 0 && v.ProductPatches == nil {
		v.ProductPatches = make(map[string]time.Time, len(other.ProductPatches))
	}
	for p, t := range other.ProductPatches {
		if cur, ok := v.ProductPatches[p]; ok {
			v.ProductPatches[p] = earliest(cur, t)
		} else {
			v.ProductPatches[p] = t
		}
	}
	return nil
}

// earliest returns the earlier of two times, treating zero as "unknown".
func earliest(a, b time.Time) time.Time {
	switch {
	case a.IsZero():
		return b
	case b.IsZero():
		return a
	case b.Before(a):
		return b
	default:
		return a
	}
}

// Validate checks that the record carries the fields the risk engine needs.
func (v *Vulnerability) Validate() error {
	switch {
	case !strings.HasPrefix(v.ID, "CVE-"):
		return fmt.Errorf("osint: %q is not a CVE identifier", v.ID)
	case v.Published.IsZero():
		return fmt.Errorf("osint: %s has no publication date", v.ID)
	case v.CVSS < 0 || v.CVSS > 10:
		return fmt.Errorf("osint: %s has CVSS %.2f outside [0,10]", v.ID, v.CVSS)
	case len(v.Products) == 0:
		return fmt.Errorf("osint: %s lists no affected products", v.ID)
	}
	if !v.PatchedAt.IsZero() && v.PatchedAt.Before(v.Published) {
		return fmt.Errorf("osint: %s patched (%s) before published (%s)",
			v.ID, v.PatchedAt.Format(time.DateOnly), v.Published.Format(time.DateOnly))
	}
	return nil
}

// Clone returns a deep copy of the record.
func (v *Vulnerability) Clone() *Vulnerability {
	out := *v
	out.Products = append([]string(nil), v.Products...)
	if v.ProductPatches != nil {
		out.ProductPatches = make(map[string]time.Time, len(v.ProductPatches))
		for p, t := range v.ProductPatches {
			out.ProductPatches[p] = t
		}
	}
	return &out
}

// SortByID orders a slice of vulnerabilities by CVE identifier, using the
// numeric year/sequence ordering rather than plain string order (so that
// CVE-2018-999 < CVE-2018-1000 is not reported).
func SortByID(vs []*Vulnerability) {
	sort.Slice(vs, func(i, j int) bool { return lessCVE(vs[i].ID, vs[j].ID) })
}

// lessCVE compares two CVE ids numerically by year then sequence number.
func lessCVE(a, b string) bool {
	ay, as := splitCVE(a)
	by, bs := splitCVE(b)
	if ay != by {
		return ay < by
	}
	if as != bs {
		return as < bs
	}
	return a < b
}

func splitCVE(id string) (year, seq int) {
	rest, ok := strings.CutPrefix(id, "CVE-")
	if !ok {
		return 0, 0
	}
	dash := strings.IndexByte(rest, '-')
	if dash < 0 {
		return 0, 0
	}
	year, _ = strconv.Atoi(rest[:dash])
	seq, _ = strconv.Atoi(rest[dash+1:])
	return year, seq
}
