package osint

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// testUniverse builds an httptest server exposing one NVD feed, one
// ExploitDB index and one vendor advisory page, and returns the crawler
// config pointing at it.
func testUniverse(t *testing.T) CrawlerConfig {
	t.Helper()

	vulns := []*Vulnerability{
		{
			ID:          "CVE-2018-8897",
			Description: "MOV SS debug exception mishandling allows local privilege escalation.",
			Products:    []string{"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"},
			Published:   day(2018, 5, 8),
			CVSS:        7.8,
		},
		{
			ID:          "CVE-2018-1111",
			Description: "DHCP client script command injection.",
			Products:    []string{"redhat:enterprise_linux:7.0"},
			Published:   day(2018, 5, 17),
			CVSS:        7.5,
		},
		{
			ID:          "CVE-2018-9990",
			Description: "Unrelated product vulnerability.",
			Products:    []string{"someco:widget:1.0"},
			Published:   day(2018, 5, 2),
			CVSS:        5.0,
		},
	}
	var nvdBuf bytes.Buffer
	if err := WriteNVDFeed(&nvdBuf, vulns, day(2018, 6, 1)); err != nil {
		t.Fatal(err)
	}
	var edbBuf bytes.Buffer
	err := WriteExploitDBIndex(&edbBuf, []Enrichment{
		{CVE: "CVE-2018-1111", ExploitAt: day(2018, 5, 30)},
		{CVE: "CVE-2099-1", ExploitAt: day(2018, 6, 1)}, // unknown CVE: ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	var advBuf bytes.Buffer
	err = WriteAdvisoryPage(&advBuf, "ubuntu", []Enrichment{
		{CVE: "CVE-2018-8897", PatchedAt: day(2018, 5, 9),
			ExtraProducts: []string{"canonical:ubuntu_linux:17.04"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	serve := func(path string, body []byte) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Write(body)
		})
	}
	serve("/nvd.json", nvdBuf.Bytes())
	serve("/exploitdb.csv", edbBuf.Bytes())
	serve("/ubuntu.html", advBuf.Bytes())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	return CrawlerConfig{
		NVDFeedURLs: []string{srv.URL + "/nvd.json"},
		Sources: []FeedSpec{
			{URL: srv.URL + "/exploitdb.csv", Parser: ExploitDBParser{}},
			{URL: srv.URL + "/ubuntu.html", Parser: VendorAdvisoryParser{Vendor: "ubuntu"}},
		},
		Products: []string{
			"canonical:ubuntu_linux:16.04",
			"canonical:ubuntu_linux:17.04",
			"debian:debian_linux:8.0",
			"redhat:enterprise_linux:7.0",
		},
	}
}

func TestCrawlAssemblesRecords(t *testing.T) {
	c, err := NewCrawler(testUniverse(t))
	if err != nil {
		t.Fatal(err)
	}
	got, errs := c.Crawl(context.Background())
	if len(errs) != 0 {
		t.Fatalf("crawl errors: %v", errs)
	}
	if len(got) != 2 {
		t.Fatalf("crawled %d records, want 2 (filtered by product list)", len(got))
	}
	mov := got["CVE-2018-8897"]
	if mov == nil {
		t.Fatal("CVE-2018-8897 missing")
	}
	if !mov.PatchedBy(day(2018, 5, 9)) {
		t.Error("patch date from advisory not merged")
	}
	if !mov.Affects("canonical:ubuntu_linux:17.04") {
		t.Error("extra product from advisory not merged")
	}
	dhcp := got["CVE-2018-1111"]
	if dhcp == nil || !dhcp.ExploitedBy(day(2018, 5, 30)) {
		t.Errorf("exploit date from exploitdb not merged: %+v", dhcp)
	}
}

func TestCrawlSurvivesDeadAuxSource(t *testing.T) {
	cfg := testUniverse(t)
	cfg.Sources = append(cfg.Sources, FeedSpec{
		URL:    "http://127.0.0.1:1/dead",
		Parser: VendorAdvisoryParser{Vendor: "dead"},
	})
	c, err := NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, errs := c.Crawl(context.Background())
	if len(errs) != 1 {
		t.Fatalf("want exactly 1 error for the dead source, got %v", errs)
	}
	if len(got) != 2 {
		t.Errorf("baseline records lost when aux source died: %d", len(got))
	}
}

func TestCrawlHTTPErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusGone)
	}))
	defer srv.Close()
	c, err := NewCrawler(CrawlerConfig{NVDFeedURLs: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	got, errs := c.Crawl(context.Background())
	if len(errs) != 1 || len(got) != 0 {
		t.Errorf("got %d records, %v errors; want 0 records, 1 error", len(got), errs)
	}
}

func TestNewCrawlerValidation(t *testing.T) {
	if _, err := NewCrawler(CrawlerConfig{}); err == nil {
		t.Error("NewCrawler with no NVD feed accepted")
	}
}

func TestCrawlContextCancelled(t *testing.T) {
	cfg := testUniverse(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := NewCrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, errs := c.Crawl(ctx)
	// All fetches should fail fast with context errors; none may hang.
	if len(errs) == 0 {
		t.Log("crawl completed before cancellation took effect (acceptable)")
	}
}
