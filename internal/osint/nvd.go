package osint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// The types below mirror the subset of the NVD JSON-1.1 data-feed schema
// that Lazarus consumes (paper §4.1/§5.1). Field names match the feed
// format so that real NVD feed files parse unmodified.

// NVDFeed is the top-level document of an NVD JSON data feed.
type NVDFeed struct {
	DataType    string    `json:"CVE_data_type"`
	DataFormat  string    `json:"CVE_data_format"`
	DataVersion string    `json:"CVE_data_version"`
	NumberCVEs  string    `json:"CVE_data_numberOfCVEs"`
	Timestamp   string    `json:"CVE_data_timestamp"`
	Items       []NVDItem `json:"CVE_Items"`
}

// NVDItem is one CVE entry in a feed.
type NVDItem struct {
	CVE            NVDCVE            `json:"cve"`
	Configurations NVDConfigurations `json:"configurations"`
	Impact         NVDImpact         `json:"impact"`
	PublishedDate  string            `json:"publishedDate"`
	LastModified   string            `json:"lastModifiedDate,omitempty"`
}

// NVDCVE carries the MITRE CVE record embedded in an item.
type NVDCVE struct {
	Meta        NVDMeta        `json:"CVE_data_meta"`
	Description NVDDescription `json:"description"`
}

// NVDMeta identifies the CVE.
type NVDMeta struct {
	ID       string `json:"ID"`
	Assigner string `json:"ASSIGNER,omitempty"`
}

// NVDDescription holds the language-tagged description texts.
type NVDDescription struct {
	Data []NVDLangString `json:"description_data"`
}

// NVDLangString is a language-tagged string.
type NVDLangString struct {
	Lang  string `json:"lang"`
	Value string `json:"value"`
}

// NVDConfigurations lists the CPE applicability statements.
type NVDConfigurations struct {
	DataVersion string    `json:"CVE_data_version,omitempty"`
	Nodes       []NVDNode `json:"nodes"`
}

// NVDNode is one (possibly nested) CPE match node.
type NVDNode struct {
	Operator string        `json:"operator,omitempty"`
	Children []NVDNode     `json:"children,omitempty"`
	Matches  []NVDCPEMatch `json:"cpe_match,omitempty"`
}

// NVDCPEMatch is one CPE 2.3 URI match entry.
type NVDCPEMatch struct {
	Vulnerable bool   `json:"vulnerable"`
	CPE23URI   string `json:"cpe23Uri"`
}

// NVDImpact carries the CVSS metrics of an item.
type NVDImpact struct {
	BaseMetricV3 *NVDBaseMetricV3 `json:"baseMetricV3,omitempty"`
}

// NVDBaseMetricV3 wraps the CVSS v3 scoring data.
type NVDBaseMetricV3 struct {
	CVSSV3              NVDCVSSV3 `json:"cvssV3"`
	ExploitabilityScore float64   `json:"exploitabilityScore,omitempty"`
	ImpactScore         float64   `json:"impactScore,omitempty"`
}

// NVDCVSSV3 is the CVSS v3 block of an NVD item.
type NVDCVSSV3 struct {
	Version      string  `json:"version"`
	VectorString string  `json:"vectorString"`
	BaseScore    float64 `json:"baseScore"`
	BaseSeverity string  `json:"baseSeverity"`
}

// nvdTimeLayouts are the timestamp formats observed in NVD feeds.
var nvdTimeLayouts = []string{"2006-01-02T15:04Z", time.RFC3339, "2006-01-02"}

func parseNVDTime(s string) (time.Time, error) {
	for _, layout := range nvdTimeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("osint: unrecognized NVD timestamp %q", s)
}

// CPEProduct extracts the "vendor:product:version" triple from a CPE 2.3
// URI such as "cpe:2.3:o:canonical:ubuntu_linux:16.04:*:*:*:*:*:*:*".
func CPEProduct(cpe23URI string) (string, error) {
	parts := strings.Split(cpe23URI, ":")
	if len(parts) < 6 || parts[0] != "cpe" || parts[1] != "2.3" {
		return "", fmt.Errorf("osint: %q is not a CPE 2.3 URI", cpe23URI)
	}
	return parts[3] + ":" + parts[4] + ":" + parts[5], nil
}

// FormatCPE23 builds a CPE 2.3 URI for an OS product triple.
func FormatCPE23(product string) (string, error) {
	parts := strings.Split(product, ":")
	if len(parts) != 3 {
		return "", fmt.Errorf("osint: product %q is not vendor:product:version", product)
	}
	return fmt.Sprintf("cpe:2.3:o:%s:%s:%s:*:*:*:*:*:*:*", parts[0], parts[1], parts[2]), nil
}

// ParseNVDFeed decodes an NVD JSON-1.1 feed and converts each item into a
// consolidated Vulnerability record. Items without an English description,
// without a publication date, or without any vulnerable CPE are skipped and
// reported in the returned skip count (NVD feeds routinely contain
// REJECTED entries of this shape).
func ParseNVDFeed(r io.Reader) (vulns []*Vulnerability, skipped int, err error) {
	var feed NVDFeed
	dec := json.NewDecoder(r)
	if err := dec.Decode(&feed); err != nil {
		return nil, 0, fmt.Errorf("osint: decoding NVD feed: %w", err)
	}
	if feed.DataType != "CVE" {
		return nil, 0, fmt.Errorf("osint: feed data type %q, want CVE", feed.DataType)
	}
	vulns = make([]*Vulnerability, 0, len(feed.Items))
	for i := range feed.Items {
		v, err := feed.Items[i].ToVulnerability()
		if err != nil {
			skipped++
			continue
		}
		vulns = append(vulns, v)
	}
	return vulns, skipped, nil
}

// ToVulnerability converts a feed item into a consolidated record.
func (it *NVDItem) ToVulnerability() (*Vulnerability, error) {
	id := it.CVE.Meta.ID
	if id == "" {
		return nil, fmt.Errorf("osint: feed item without CVE id")
	}
	var desc string
	for _, d := range it.CVE.Description.Data {
		if d.Lang == "en" {
			desc = d.Value
			break
		}
	}
	if desc == "" || strings.HasPrefix(desc, "** REJECT **") {
		return nil, fmt.Errorf("osint: %s has no usable description", id)
	}
	pub, err := parseNVDTime(it.PublishedDate)
	if err != nil {
		return nil, fmt.Errorf("osint: %s: %w", id, err)
	}
	products := collectProducts(it.Configurations.Nodes, nil)
	if len(products) == 0 {
		return nil, fmt.Errorf("osint: %s lists no vulnerable products", id)
	}
	v := &Vulnerability{
		ID:          id,
		Description: desc,
		Products:    products,
		Published:   pub,
	}
	if it.Impact.BaseMetricV3 != nil {
		v.CVSS = it.Impact.BaseMetricV3.CVSSV3.BaseScore
		v.Vector = it.Impact.BaseMetricV3.CVSSV3.VectorString
	}
	return v, nil
}

func collectProducts(nodes []NVDNode, acc []string) []string {
	for _, n := range nodes {
		for _, m := range n.Matches {
			if !m.Vulnerable {
				continue
			}
			p, err := CPEProduct(m.CPE23URI)
			if err != nil {
				continue
			}
			if !containsStr(acc, p) {
				acc = append(acc, p)
			}
		}
		acc = collectProducts(n.Children, acc)
	}
	return acc
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// BuildNVDFeed converts consolidated records back into NVD feed form; the
// synthetic dataset generator uses it to emit fixture feeds that exercise
// the same parsing path as real NVD data.
func BuildNVDFeed(vulns []*Vulnerability, timestamp time.Time) (*NVDFeed, error) {
	feed := &NVDFeed{
		DataType:    "CVE",
		DataFormat:  "MITRE",
		DataVersion: "4.0",
		NumberCVEs:  fmt.Sprintf("%d", len(vulns)),
		Timestamp:   timestamp.Format("2006-01-02T15:04Z"),
		Items:       make([]NVDItem, 0, len(vulns)),
	}
	for _, v := range vulns {
		item, err := buildNVDItem(v)
		if err != nil {
			return nil, err
		}
		feed.Items = append(feed.Items, item)
	}
	return feed, nil
}

func buildNVDItem(v *Vulnerability) (NVDItem, error) {
	matches := make([]NVDCPEMatch, 0, len(v.Products))
	for _, p := range v.Products {
		uri, err := FormatCPE23(p)
		if err != nil {
			return NVDItem{}, fmt.Errorf("osint: %s: %w", v.ID, err)
		}
		matches = append(matches, NVDCPEMatch{Vulnerable: true, CPE23URI: uri})
	}
	item := NVDItem{
		CVE: NVDCVE{
			Meta: NVDMeta{ID: v.ID, Assigner: "cve@mitre.org"},
			Description: NVDDescription{Data: []NVDLangString{
				{Lang: "en", Value: v.Description},
			}},
		},
		Configurations: NVDConfigurations{
			DataVersion: "4.0",
			Nodes:       []NVDNode{{Operator: "OR", Matches: matches}},
		},
		PublishedDate: v.Published.Format("2006-01-02T15:04Z"),
	}
	if v.CVSS > 0 {
		item.Impact.BaseMetricV3 = &NVDBaseMetricV3{CVSSV3: NVDCVSSV3{
			Version:      "3.1",
			VectorString: v.Vector,
			BaseScore:    v.CVSS,
			BaseSeverity: SeverityOf(v.CVSS).String(),
		}}
	}
	return item, nil
}

// WriteNVDFeed serializes records as an NVD JSON-1.1 feed document.
func WriteNVDFeed(w io.Writer, vulns []*Vulnerability, timestamp time.Time) error {
	feed, err := BuildNVDFeed(vulns, timestamp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(feed); err != nil {
		return fmt.Errorf("osint: encoding NVD feed: %w", err)
	}
	return nil
}
