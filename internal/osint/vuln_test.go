package osint

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func sample() *Vulnerability {
	return &Vulnerability{
		ID:          "CVE-2018-8897",
		Description: "The MOV SS instruction mishandling allows local privilege escalation.",
		Products:    []string{"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"},
		Published:   day(2018, 5, 8),
		CVSS:        7.8,
		PatchedAt:   day(2018, 5, 9),
	}
}

func TestSeverityOf(t *testing.T) {
	cases := []struct {
		score float64
		want  Severity
	}{
		{0, SeverityNone}, {0.1, SeverityLow}, {3.9, SeverityLow},
		{4.0, SeverityMedium}, {6.9, SeverityMedium},
		{7.0, SeverityHigh}, {8.9, SeverityHigh},
		{9.0, SeverityCritical}, {10, SeverityCritical},
	}
	for _, c := range cases {
		if got := SeverityOf(c.score); got != c.want {
			t.Errorf("SeverityOf(%v) = %v, want %v", c.score, got, c.want)
		}
	}
}

func TestPatchedExploitedBy(t *testing.T) {
	v := sample()
	if v.PatchedBy(day(2018, 5, 8)) {
		t.Error("patched before patch date")
	}
	if !v.PatchedBy(day(2018, 5, 9)) {
		t.Error("not patched on patch date")
	}
	if v.ExploitedBy(day(2020, 1, 1)) {
		t.Error("exploited with zero exploit date")
	}
	v.ExploitAt = day(2018, 5, 11)
	if !v.ExploitedBy(day(2018, 5, 11)) || v.ExploitedBy(day(2018, 5, 10)) {
		t.Error("ExploitedBy boundary wrong")
	}
}

func TestAffectsAndAddProduct(t *testing.T) {
	v := sample()
	if !v.Affects("debian:debian_linux:8.0") {
		t.Error("Affects missed listed product")
	}
	if v.Affects("oracle:solaris:11.3") {
		t.Error("Affects matched unlisted product")
	}
	v.AddProduct("oracle:solaris:11.3")
	v.AddProduct("oracle:solaris:11.3") // idempotent
	if got := len(v.Products); got != 3 {
		t.Errorf("after AddProduct twice, %d products, want 3", got)
	}
}

func TestMerge(t *testing.T) {
	v := sample()
	v.PatchedAt = time.Time{}
	other := &Vulnerability{
		ID:        v.ID,
		Products:  []string{"oracle:solaris:11.3"},
		PatchedAt: day(2018, 5, 10),
		ExploitAt: day(2018, 5, 12),
	}
	if err := v.Merge(other); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !v.Affects("oracle:solaris:11.3") {
		t.Error("Merge did not union products")
	}
	if !v.PatchedAt.Equal(day(2018, 5, 10)) || !v.ExploitAt.Equal(day(2018, 5, 12)) {
		t.Errorf("Merge dates wrong: %v %v", v.PatchedAt, v.ExploitAt)
	}
	// Earliest date wins.
	if err := v.Merge(&Vulnerability{ID: v.ID, PatchedAt: day(2018, 5, 9)}); err != nil {
		t.Fatal(err)
	}
	if !v.PatchedAt.Equal(day(2018, 5, 9)) {
		t.Errorf("Merge should keep earliest patch date, got %v", v.PatchedAt)
	}
	if err := v.Merge(&Vulnerability{ID: "CVE-2000-1"}); err == nil {
		t.Error("Merge of mismatched ids succeeded")
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := []*Vulnerability{
		{ID: "GHSA-xxxx", Published: day(2018, 1, 1), CVSS: 5, Products: []string{"a:b:c"}},
		{ID: "CVE-2018-1", CVSS: 5, Products: []string{"a:b:c"}},
		{ID: "CVE-2018-1", Published: day(2018, 1, 1), CVSS: 11, Products: []string{"a:b:c"}},
		{ID: "CVE-2018-1", Published: day(2018, 1, 1), CVSS: 5},
		{ID: "CVE-2018-1", Published: day(2018, 1, 1), CVSS: 5, Products: []string{"a:b:c"}, PatchedAt: day(2017, 1, 1)},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := sample()
	c := v.Clone()
	c.Products[0] = "mutated"
	c.AddProduct("x:y:z")
	if v.Products[0] == "mutated" || len(v.Products) != 2 {
		t.Error("Clone shares product slice with original")
	}
}

func TestSortByIDNumeric(t *testing.T) {
	vs := []*Vulnerability{
		{ID: "CVE-2018-1000"}, {ID: "CVE-2018-999"}, {ID: "CVE-2014-3"}, {ID: "CVE-2018-999"},
	}
	SortByID(vs)
	want := []string{"CVE-2014-3", "CVE-2018-999", "CVE-2018-999", "CVE-2018-1000"}
	for i, w := range want {
		if vs[i].ID != w {
			t.Fatalf("SortByID order %v, want %v at %d", vs[i].ID, w, i)
		}
	}
}

func TestEarliestProperty(t *testing.T) {
	base := day(2015, 1, 1)
	f := func(aOff, bOff uint16, aZero, bZero bool) bool {
		var a, b time.Time
		if !aZero {
			a = base.AddDate(0, 0, int(aOff%3650))
		}
		if !bZero {
			b = base.AddDate(0, 0, int(bOff%3650))
		}
		got := earliest(a, b)
		switch {
		case aZero && bZero:
			return got.IsZero()
		case aZero:
			return got.Equal(b)
		case bZero:
			return got.Equal(a)
		default:
			return !got.After(a) && !got.After(b) && (got.Equal(a) || got.Equal(b))
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestMergeCommutesOnDates(t *testing.T) {
	// Property: merging A into B and B into A yields the same patch and
	// exploit dates and the same product set.
	f := func(pa, pb uint16, aHasPatch, bHasPatch bool) bool {
		a := sample()
		b := sample()
		a.PatchedAt, b.PatchedAt = time.Time{}, time.Time{}
		if aHasPatch {
			a.PatchedAt = day(2018, 5, 8).AddDate(0, 0, int(pa%100))
		}
		if bHasPatch {
			b.PatchedAt = day(2018, 5, 8).AddDate(0, 0, int(pb%100))
		}
		a2, b2 := a.Clone(), b.Clone()
		if err := a.Merge(b2); err != nil {
			return false
		}
		if err := b.Merge(a2); err != nil {
			return false
		}
		return a.PatchedAt.Equal(b.PatchedAt) && reflect.DeepEqual(a.Products, b.Products)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
