package osint

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"regexp"
	"strings"
	"time"
)

// Enrichment is a fragment of vulnerability intelligence obtained from an
// auxiliary OSINT source (paper §5.1 lists ExploitDB, CVE-details, and the
// Ubuntu/Debian/Redhat/Solaris/FreeBSD/Microsoft advisory sites). The data
// manager merges enrichments into the NVD baseline records.
type Enrichment struct {
	// CVE is the vulnerability the fragment refers to.
	CVE string
	// ExploitAt is a public-exploit observation date (zero if none).
	ExploitAt time.Time
	// PatchedAt is a vendor patch availability date (zero if none).
	PatchedAt time.Time
	// ExtraProducts lists additional affected products the vendor
	// disclosed that NVD's CPE list is missing (cf. the paper's
	// CVE-2016-4428 Solaris example).
	ExtraProducts []string
}

// SourceParser converts one auxiliary source document into enrichments.
// Each OSINT site has its own format, so each gets its own parser (the
// paper: "we had to develop specialized HTML parsers for them").
type SourceParser interface {
	// Name identifies the source (e.g. "exploitdb", "ubuntu").
	Name() string
	// Parse extracts enrichments from the source document.
	Parse(r io.Reader) ([]Enrichment, error)
}

// ---------------------------------------------------------------------------
// ExploitDB

// ExploitDBParser parses the ExploitDB files_exploits.csv index. Expected
// header: id,file,description,date,author,type,platform,cve.
type ExploitDBParser struct{}

// Name implements SourceParser.
func (ExploitDBParser) Name() string { return "exploitdb" }

// Parse implements SourceParser.
func (ExploitDBParser) Parse(r io.Reader) ([]Enrichment, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("osint: reading exploitdb header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.ToLower(strings.TrimSpace(h))] = i
	}
	for _, required := range []string{"date", "cve"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("osint: exploitdb index missing %q column", required)
		}
	}
	var out []Enrichment
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("osint: reading exploitdb row: %w", err)
		}
		cve := strings.TrimSpace(rec[col["cve"]])
		if !strings.HasPrefix(cve, "CVE-") {
			continue // exploits with no CVE mapping
		}
		date, err := time.Parse("2006-01-02", strings.TrimSpace(rec[col["date"]]))
		if err != nil {
			continue // malformed rows are skipped, not fatal
		}
		out = append(out, Enrichment{CVE: cve, ExploitAt: date})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Vendor security advisories

// VendorAdvisoryParser extracts patch dates and affected products from a
// vendor security-advisory HTML page. The pages of the eight supported
// vendors share a row structure once boiler-plate is stripped:
//
//	<tr><td>CVE-2018-8897</td><td>2018-05-09</td><td>canonical:ubuntu_linux:16.04, ...</td></tr>
//
// which this parser matches leniently (attributes and surrounding markup
// are ignored, matching how the prototype's specialized parsers scrape the
// real pages).
type VendorAdvisoryParser struct {
	// Vendor is the source name, e.g. "ubuntu", "debian", "redhat",
	// "solaris", "freebsd", "microsoft".
	Vendor string
}

// Name implements SourceParser.
func (p VendorAdvisoryParser) Name() string { return p.Vendor }

var advisoryRowRE = regexp.MustCompile(
	`(?i)<tr[^>]*>\s*<td[^>]*>\s*(CVE-\d{4}-\d+)\s*</td>\s*<td[^>]*>\s*(\d{4}-\d{2}-\d{2})?\s*</td>\s*<td[^>]*>([^<]*)</td>`)

// Parse implements SourceParser.
func (p VendorAdvisoryParser) Parse(r io.Reader) ([]Enrichment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Enrichment
	for sc.Scan() {
		m := advisoryRowRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := Enrichment{CVE: m[1]}
		if m[2] != "" {
			t, err := time.Parse("2006-01-02", m[2])
			if err != nil {
				return nil, fmt.Errorf("osint: %s advisory for %s: bad date %q", p.Vendor, m[1], m[2])
			}
			e.PatchedAt = t
		}
		for _, prod := range strings.Split(m[3], ",") {
			prod = strings.TrimSpace(prod)
			if prod != "" {
				e.ExtraProducts = append(e.ExtraProducts, prod)
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("osint: scanning %s advisory page: %w", p.Vendor, err)
	}
	return out, nil
}

// WriteAdvisoryPage renders enrichments as a vendor advisory HTML page in
// the format VendorAdvisoryParser accepts; the feed generator uses it to
// produce fixtures.
func WriteAdvisoryPage(w io.Writer, vendor string, rows []Enrichment) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "<html><head><title>%s security advisories</title></head><body>\n", vendor)
	fmt.Fprintln(bw, "<table class=\"advisories\">")
	fmt.Fprintln(bw, "<tr><th>CVE</th><th>Patched</th><th>Affected</th></tr>")
	for _, e := range rows {
		patched := ""
		if !e.PatchedAt.IsZero() {
			patched = e.PatchedAt.Format("2006-01-02")
		}
		fmt.Fprintf(bw, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			e.CVE, patched, strings.Join(e.ExtraProducts, ", "))
	}
	fmt.Fprintln(bw, "</table></body></html>")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("osint: writing %s advisory page: %w", vendor, err)
	}
	return nil
}

// WriteExploitDBIndex renders enrichments as an ExploitDB CSV index in the
// format ExploitDBParser accepts.
func WriteExploitDBIndex(w io.Writer, rows []Enrichment) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "file", "description", "date", "author", "type", "platform", "cve"}); err != nil {
		return fmt.Errorf("osint: writing exploitdb header: %w", err)
	}
	for i, e := range rows {
		if e.ExploitAt.IsZero() {
			continue
		}
		rec := []string{
			fmt.Sprintf("%d", 40000+i),
			fmt.Sprintf("exploits/multiple/remote/%d.py", 40000+i),
			fmt.Sprintf("Exploit for %s", e.CVE),
			e.ExploitAt.Format("2006-01-02"),
			"anon",
			"remote",
			"multiple",
			e.CVE,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("osint: writing exploitdb row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("osint: flushing exploitdb index: %w", err)
	}
	return nil
}
