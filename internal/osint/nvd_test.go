package osint

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const miniFeed = `{
  "CVE_data_type": "CVE",
  "CVE_data_format": "MITRE",
  "CVE_data_version": "4.0",
  "CVE_data_numberOfCVEs": "3",
  "CVE_data_timestamp": "2018-06-01T07:00Z",
  "CVE_Items": [
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2018-8897", "ASSIGNER": "cve@mitre.org"},
        "description": {"description_data": [
          {"lang": "en", "value": "A statement in the System Programming Guide was mishandled: MOV SS debug exceptions allow local privilege escalation."}
        ]}
      },
      "configurations": {"CVE_data_version": "4.0", "nodes": [
        {"operator": "OR", "cpe_match": [
          {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:canonical:ubuntu_linux:16.04:*:*:*:*:*:*:*"},
          {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:debian:debian_linux:8.0:*:*:*:*:*:*:*"},
          {"vulnerable": false, "cpe23Uri": "cpe:2.3:o:openbsd:openbsd:6.1:*:*:*:*:*:*:*"}
        ]},
        {"operator": "AND", "children": [
          {"operator": "OR", "cpe_match": [
            {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:redhat:enterprise_linux:7.0:*:*:*:*:*:*:*"}
          ]}
        ]}
      ]},
      "impact": {"baseMetricV3": {"cvssV3": {
        "version": "3.1",
        "vectorString": "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
        "baseScore": 7.8,
        "baseSeverity": "HIGH"
      }}},
      "publishedDate": "2018-05-08T17:29Z",
      "lastModifiedDate": "2018-06-01T01:29Z"
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2018-0001"},
        "description": {"description_data": [
          {"lang": "en", "value": "** REJECT ** DO NOT USE THIS CANDIDATE NUMBER."}
        ]}
      },
      "configurations": {"nodes": []},
      "impact": {},
      "publishedDate": "2018-01-01T00:00Z"
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2018-0002"},
        "description": {"description_data": [{"lang": "en", "value": "No products listed."}]}
      },
      "configurations": {"nodes": []},
      "impact": {},
      "publishedDate": "2018-01-02T00:00Z"
    }
  ]
}`

func TestParseNVDFeed(t *testing.T) {
	vulns, skipped, err := ParseNVDFeed(strings.NewReader(miniFeed))
	if err != nil {
		t.Fatalf("ParseNVDFeed: %v", err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2 (rejected + productless)", skipped)
	}
	if len(vulns) != 1 {
		t.Fatalf("parsed %d vulns, want 1", len(vulns))
	}
	v := vulns[0]
	if v.ID != "CVE-2018-8897" {
		t.Errorf("ID = %q", v.ID)
	}
	wantProducts := []string{
		"canonical:ubuntu_linux:16.04",
		"debian:debian_linux:8.0",
		"redhat:enterprise_linux:7.0",
	}
	if len(v.Products) != len(wantProducts) {
		t.Fatalf("products = %v, want %v", v.Products, wantProducts)
	}
	for i, p := range wantProducts {
		if v.Products[i] != p {
			t.Errorf("product[%d] = %q, want %q", i, v.Products[i], p)
		}
	}
	if v.CVSS != 7.8 {
		t.Errorf("CVSS = %v, want 7.8", v.CVSS)
	}
	if !v.Published.Equal(time.Date(2018, 5, 8, 17, 29, 0, 0, time.UTC)) {
		t.Errorf("Published = %v", v.Published)
	}
	// Vector should agree with the declared base score.
	m, err := ParseCVSSv3(v.Vector)
	if err != nil {
		t.Fatalf("vector parse: %v", err)
	}
	if s, _ := m.BaseScore(); s != v.CVSS {
		t.Errorf("vector recomputes to %v, feed says %v", s, v.CVSS)
	}
}

func TestParseNVDFeedErrors(t *testing.T) {
	if _, _, err := ParseNVDFeed(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, _, err := ParseNVDFeed(strings.NewReader(`{"CVE_data_type":"OTHER","CVE_Items":[]}`)); err == nil {
		t.Error("wrong data type accepted")
	}
}

func TestCPEProduct(t *testing.T) {
	p, err := CPEProduct("cpe:2.3:o:oracle:solaris:11.3:*:*:*:*:*:*:*")
	if err != nil || p != "oracle:solaris:11.3" {
		t.Errorf("CPEProduct = %q, %v", p, err)
	}
	if _, err := CPEProduct("cpe:/o:oracle:solaris"); err == nil {
		t.Error("CPE 2.2 URI accepted as 2.3")
	}
}

func TestFeedRoundTrip(t *testing.T) {
	orig := []*Vulnerability{
		{
			ID:          "CVE-2017-0144",
			Description: "SMBv1 server allows remote code execution via crafted packets (EternalBlue).",
			Products:    []string{"microsoft:windows_10:-", "microsoft:windows_server_2012:r2"},
			Published:   day(2017, 3, 16),
			CVSS:        8.1,
			Vector:      "CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
		},
		{
			ID:          "CVE-2016-7180",
			Description: "Old vulnerability with a patch available.",
			Products:    []string{"oracle:solaris:11.3"},
			Published:   day(2016, 9, 8),
			CVSS:        2.9,
		},
	}
	var buf bytes.Buffer
	if err := WriteNVDFeed(&buf, orig, day(2018, 1, 1)); err != nil {
		t.Fatalf("WriteNVDFeed: %v", err)
	}
	parsed, skipped, err := ParseNVDFeed(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if skipped != 0 || len(parsed) != 2 {
		t.Fatalf("round trip lost records: %d parsed, %d skipped", len(parsed), skipped)
	}
	for i, v := range parsed {
		if v.ID != orig[i].ID || v.Description != orig[i].Description ||
			v.CVSS != orig[i].CVSS || !v.Published.Equal(orig[i].Published) {
			t.Errorf("record %d mismatch after round trip: %+v vs %+v", i, v, orig[i])
		}
		if len(v.Products) != len(orig[i].Products) {
			t.Errorf("record %d products %v vs %v", i, v.Products, orig[i].Products)
		}
	}
}

func TestBuildNVDFeedBadProduct(t *testing.T) {
	_, err := BuildNVDFeed([]*Vulnerability{{
		ID: "CVE-2018-1", Description: "x", Published: day(2018, 1, 1),
		Products: []string{"not-a-triple"},
	}}, day(2018, 1, 1))
	if err == nil {
		t.Error("BuildNVDFeed accepted malformed product")
	}
}

// TestFeedRoundTripProperty: arbitrary valid records survive the
// NVD-feed encode/parse cycle.
func TestFeedRoundTripProperty(t *testing.T) {
	products := []string{
		"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0",
		"oracle:solaris:11.3", "microsoft:windows_10:-",
	}
	base := day(2015, 1, 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		orig := make([]*Vulnerability, 0, n)
		for i := 0; i < n; i++ {
			nP := 1 + r.Intn(len(products))
			perm := r.Perm(len(products))[:nP]
			ps := make([]string, nP)
			for k, idx := range perm {
				ps[k] = products[idx]
			}
			orig = append(orig, &Vulnerability{
				ID:          fmt.Sprintf("CVE-2015-%d", 1000+i),
				Description: fmt.Sprintf("weakness %d with detail %d", i, r.Intn(1000)),
				Products:    ps,
				Published:   base.AddDate(0, 0, r.Intn(1000)),
				CVSS:        float64(r.Intn(101)) / 10,
			})
		}
		var buf bytes.Buffer
		if err := WriteNVDFeed(&buf, orig, base); err != nil {
			return false
		}
		parsed, skipped, err := ParseNVDFeed(&buf)
		if err != nil || skipped != 0 || len(parsed) != len(orig) {
			return false
		}
		for i := range parsed {
			if parsed[i].ID != orig[i].ID ||
				parsed[i].Description != orig[i].Description ||
				len(parsed[i].Products) != len(orig[i].Products) ||
				!parsed[i].Published.Equal(orig[i].Published) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Error(err)
	}
}
