package osint

import (
	"fmt"
	"math"
	"strings"
)

// CVSSv3 holds the eight base metrics of a CVSS v3.1 vector (paper §4.2).
// Zero values indicate an unparsed/absent metric.
type CVSSv3 struct {
	AttackVector       string // N(etwork), A(djacent), L(ocal), P(hysical)
	AttackComplexity   string // L(ow), H(igh)
	PrivilegesRequired string // N(one), L(ow), H(igh)
	UserInteraction    string // N(one), R(equired)
	Scope              string // U(nchanged), C(hanged)
	Confidentiality    string // H(igh), L(ow), N(one)
	Integrity          string // H, L, N
	Availability       string // H, L, N
}

// ParseCVSSv3 parses a CVSS v3.x vector string such as
// "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".
func ParseCVSSv3(vector string) (CVSSv3, error) {
	var m CVSSv3
	parts := strings.Split(vector, "/")
	if len(parts) == 0 || !strings.HasPrefix(parts[0], "CVSS:3") {
		return m, fmt.Errorf("osint: %q is not a CVSS v3 vector", vector)
	}
	for _, p := range parts[1:] {
		kv := strings.SplitN(p, ":", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("osint: malformed vector component %q", p)
		}
		switch kv[0] {
		case "AV":
			m.AttackVector = kv[1]
		case "AC":
			m.AttackComplexity = kv[1]
		case "PR":
			m.PrivilegesRequired = kv[1]
		case "UI":
			m.UserInteraction = kv[1]
		case "S":
			m.Scope = kv[1]
		case "C":
			m.Confidentiality = kv[1]
		case "I":
			m.Integrity = kv[1]
		case "A":
			m.Availability = kv[1]
		default:
			// Temporal/environmental metrics are ignored; the Lazarus
			// score models exploit/patch state from OSINT dates instead.
		}
	}
	if err := m.validate(); err != nil {
		return m, err
	}
	return m, nil
}

func (m CVSSv3) validate() error {
	checks := []struct {
		name, val, allowed string
	}{
		{"AV", m.AttackVector, "NALP"},
		{"AC", m.AttackComplexity, "LH"},
		{"PR", m.PrivilegesRequired, "NLH"},
		{"UI", m.UserInteraction, "NR"},
		{"S", m.Scope, "UC"},
		{"C", m.Confidentiality, "HLN"},
		{"I", m.Integrity, "HLN"},
		{"A", m.Availability, "HLN"},
	}
	for _, c := range checks {
		if c.val == "" {
			return fmt.Errorf("osint: vector missing metric %s", c.name)
		}
		if len(c.val) != 1 || !strings.Contains(c.allowed, c.val) {
			return fmt.Errorf("osint: metric %s has invalid value %q", c.name, c.val)
		}
	}
	return nil
}

// BaseScore computes the CVSS v3.1 base score from the metrics, per the
// FIRST specification (the same formula NVD applies).
func (m CVSSv3) BaseScore() (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	iss := 1 - (1-cia(m.Confidentiality))*(1-cia(m.Integrity))*(1-cia(m.Availability))
	var impact float64
	if m.Scope == "C" {
		impact = 7.52*(iss-0.029) - 3.25*math.Pow(iss-0.02, 15)
	} else {
		impact = 6.42 * iss
	}
	exploitability := 8.22 * av(m.AttackVector) * ac(m.AttackComplexity) *
		pr(m.PrivilegesRequired, m.Scope) * ui(m.UserInteraction)
	if impact <= 0 {
		return 0, nil
	}
	var score float64
	if m.Scope == "C" {
		score = math.Min(1.08*(impact+exploitability), 10)
	} else {
		score = math.Min(impact+exploitability, 10)
	}
	return roundUp1(score), nil
}

// roundUp1 is the CVSS "Roundup" function: smallest number with one decimal
// place that is >= the input (with a small epsilon guard, per spec).
func roundUp1(x float64) float64 {
	i := int(math.Round(x * 100000))
	if i%10000 == 0 {
		return float64(i) / 100000
	}
	return (math.Floor(float64(i)/10000) + 1) / 10
}

func cia(v string) float64 {
	switch v {
	case "H":
		return 0.56
	case "L":
		return 0.22
	default:
		return 0
	}
}

func av(v string) float64 {
	switch v {
	case "N":
		return 0.85
	case "A":
		return 0.62
	case "L":
		return 0.55
	default: // P
		return 0.2
	}
}

func ac(v string) float64 {
	if v == "L" {
		return 0.77
	}
	return 0.44
}

func pr(v, scope string) float64 {
	changed := scope == "C"
	switch v {
	case "N":
		return 0.85
	case "L":
		if changed {
			return 0.68
		}
		return 0.62
	default: // H
		if changed {
			return 0.5
		}
		return 0.27
	}
}

func ui(v string) float64 {
	if v == "N" {
		return 0.85
	}
	return 0.62
}
