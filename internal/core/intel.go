package core

import (
	"fmt"
	"sort"
	"time"

	"lazarus/internal/cluster"
	"lazarus/internal/osint"
)

// Replica identifies one replica's software stack for risk purposes. In
// the paper's evaluation a replica is characterized by its OS, so Products
// typically holds a single CPE product; a fuller stack (OS + JVM + DB) is
// supported by listing every component.
type Replica struct {
	// ID is a stable identifier, e.g. the catalog OS id ("UB16").
	ID string
	// Products are the CPE products of the replica's software stack.
	Products []string
}

// NewReplica builds a replica from an id and its stack products.
func NewReplica(id string, products ...string) Replica {
	return Replica{ID: id, Products: products}
}

// Config is an ordered set of n replicas (the paper's CONFIG).
type Config []Replica

// IDs returns the replica identifiers in order.
func (c Config) IDs() []string {
	out := make([]string, len(c))
	for i, r := range c {
		out[i] = r.ID
	}
	return out
}

// Contains reports whether the configuration includes the replica id.
func (c Config) Contains(id string) bool {
	for _, r := range c {
		if r.ID == id {
			return true
		}
	}
	return false
}

// Clone returns a copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Intel is the assembled threat intelligence the risk engine consults: the
// vulnerability corpus (from the Data manager) plus the description
// clusters (from the Risk manager's clustering stage). It precomputes a
// product → vulnerabilities index and answers the shared-weakness queries
// of paper §4.1.
type Intel struct {
	byProduct map[string][]*osint.Vulnerability
	byID      map[string]*osint.Vulnerability
	clusters  *cluster.Clusters
	// similar optionally gates cluster links: two same-cluster
	// vulnerabilities are treated as a shared weakness only when the
	// gate confirms their descriptions are genuinely close (K-means
	// partitions force every record into some cluster, so co-membership
	// alone over-links).
	similar func(cveA, cveB string) bool
}

// SetSimilarityGate installs a cluster-link gate (nil removes it).
func (in *Intel) SetSimilarityGate(gate func(cveA, cveB string) bool) {
	in.similar = gate
}

// NewIntel indexes a corpus. clusters may be nil, in which case only
// direct (CPE-overlap) sharing is visible — the configuration used by the
// "Common" baseline and the no-clustering ablation.
func NewIntel(corpus []*osint.Vulnerability, clusters *cluster.Clusters) (*Intel, error) {
	in := &Intel{
		byProduct: make(map[string][]*osint.Vulnerability),
		byID:      make(map[string]*osint.Vulnerability, len(corpus)),
		clusters:  clusters,
	}
	for _, v := range corpus {
		if v == nil {
			return nil, fmt.Errorf("core: nil vulnerability in corpus")
		}
		if _, dup := in.byID[v.ID]; dup {
			return nil, fmt.Errorf("core: duplicate corpus entry %s", v.ID)
		}
		in.byID[v.ID] = v
		for _, p := range v.Products {
			in.byProduct[p] = append(in.byProduct[p], v)
		}
	}
	for _, vs := range in.byProduct {
		osint.SortByID(vs)
	}
	return in, nil
}

// Clusters returns the clustering in use (nil when disabled).
func (in *Intel) Clusters() *cluster.Clusters { return in.clusters }

// VulnsAffecting returns the vulnerabilities known at time now (i.e.
// published by then) that affect any product of the replica's stack,
// without duplicates, ordered by CVE id.
func (in *Intel) VulnsAffecting(r Replica, now time.Time) []*osint.Vulnerability {
	seen := make(map[string]bool)
	var out []*osint.Vulnerability
	for _, p := range r.Products {
		for _, v := range in.byProduct[p] {
			if v.Published.After(now) || seen[v.ID] {
				continue
			}
			seen[v.ID] = true
			out = append(out, v)
		}
	}
	osint.SortByID(out)
	return out
}

// Shared computes V(ri, rj) of paper §4.3: the vulnerabilities that would
// let one attack compromise both replicas. It is the union of
//
//  1. vulnerabilities listed (by NVD + enrichments) against products of
//     both stacks, and
//  2. vulnerabilities that affect one replica and share a description
//     cluster with a vulnerability affecting the other (both cluster
//     members are included, since a variation of the same exploit may
//     activate either).
//
// Only vulnerabilities published by time now are visible.
func (in *Intel) Shared(ri, rj Replica, now time.Time) []*osint.Vulnerability {
	return in.shared(ri, rj, now, true)
}

func (in *Intel) shared(ri, rj Replica, now time.Time, useClusters bool) []*osint.Vulnerability {
	vi := in.VulnsAffecting(ri, now)
	vj := in.VulnsAffecting(rj, now)
	shared := make(map[string]*osint.Vulnerability)
	jSet := make(map[string]*osint.Vulnerability, len(vj))
	for _, v := range vj {
		jSet[v.ID] = v
	}
	// (i) direct CPE overlap.
	for _, v := range vi {
		if _, ok := jSet[v.ID]; ok {
			shared[v.ID] = v
		}
	}
	// (ii) same-cluster cross pairs: a cluster whose members touch both
	// replicas indicates that (variations of) one exploit may compromise
	// the pair. Each such cluster contributes one representative per
	// side — the most severe member affecting ri and the most severe
	// affecting rj — so that a populous cluster counts as one potential
	// common weakness rather than as its full cross product (otherwise
	// the noise of large clusters would scale with corpus size and drown
	// the direct-sharing signal).
	if useClusters && in.clusters != nil {
		type members struct{ i, j []*osint.Vulnerability }
		byCluster := make(map[int]*members)
		for _, v := range vi {
			if c, ok := in.clusters.ClusterOf(v.ID); ok {
				m := byCluster[c]
				if m == nil {
					m = &members{}
					byCluster[c] = m
				}
				m.i = append(m.i, v)
			}
		}
		for _, v := range vj {
			if c, ok := in.clusters.ClusterOf(v.ID); ok {
				m := byCluster[c]
				if m == nil {
					continue // cluster touches rj only
				}
				m.j = append(m.j, v)
			}
		}
		for _, m := range byCluster {
			// The best cross pair (optionally similarity-gated) stands
			// in for the whole cluster, so a populous cluster counts as
			// one potential common weakness rather than as its full
			// cross product.
			var bestI, bestJ *osint.Vulnerability
			bestSum := -1.0
			for _, v := range m.i {
				for _, w := range m.j {
					if v.ID == w.ID {
						continue
					}
					if in.similar != nil && !in.similar(v.ID, w.ID) {
						continue
					}
					if sum := v.CVSS + w.CVSS; sum > bestSum {
						bestI, bestJ, bestSum = v, w, sum
					}
				}
			}
			if bestI != nil {
				shared[bestI.ID] = bestI
				shared[bestJ.ID] = bestJ
			}
		}
	}
	out := make([]*osint.Vulnerability, 0, len(shared))
	for _, v := range shared {
		out = append(out, v)
	}
	osint.SortByID(out)
	return out
}

// SharedCount returns |V(ri, rj)| — the quantity the "Common" baseline
// strategy minimizes.
func (in *Intel) SharedCount(ri, rj Replica, now time.Time) int {
	return len(in.Shared(ri, rj, now))
}

// DirectShared returns only component (i) of V(ri, rj): vulnerabilities
// NVD lists against both stacks. Exposed for the clustering ablation.
func (in *Intel) DirectShared(ri, rj Replica, now time.Time) []*osint.Vulnerability {
	return in.shared(ri, rj, now, false)
}

// ProductsKnown returns the distinct products present in the corpus,
// sorted; useful for validating replica definitions against the feed.
func (in *Intel) ProductsKnown() []string {
	out := make([]string, 0, len(in.byProduct))
	for p := range in.byProduct {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
