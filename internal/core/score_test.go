package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lazarus/internal/osint"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-3 }

// TestFigure2Modifiers checks the eight qualitative states of the paper's
// Figure 2: the aggregate modifier must be exactly the tabulated value.
func TestFigure2Modifiers(t *testing.T) {
	p := DefaultScoreParams()
	pub := day(2018, 1, 1)
	newNow := pub.Add(24 * time.Hour) // fresh: oldness ≈ 1
	oldNow := pub.AddDate(3, 0, 0)    // far past threshold: oldness = 0.75
	patch, exploit := pub, pub        // available immediately when set
	mk := func(patched, exploited bool) *osint.Vulnerability {
		v := &osint.Vulnerability{ID: "CVE-2018-1", Published: pub, CVSS: 8}
		if patched {
			v.PatchedAt = patch
		}
		if exploited {
			v.ExploitAt = exploit
		}
		return v
	}
	cases := []struct {
		state     string
		patched   bool
		exploited bool
		old       bool
		want      float64
	}{
		{"N", false, false, false, 1.0},
		{"NE", false, true, false, 1.25},
		{"NP", true, false, false, 0.5},
		{"NPE", true, true, false, 0.625},
		{"O", false, false, true, 0.75},
		{"OE", false, true, true, 0.9375},
		{"OP", true, false, true, 0.375},
		{"OPE", true, true, true, 0.46875},
	}
	for _, c := range cases {
		now := newNow
		if c.old {
			now = oldNow
		}
		v := mk(c.patched, c.exploited)
		got := p.Modifier(v, now)
		// Fresh states include one day of decay: tolerate it.
		tol := 0.001
		if !c.old {
			tol = 0.002
		}
		if math.Abs(got-c.want) > tol {
			t.Errorf("state %s: modifier = %v, want %v", c.state, got, c.want)
		}
		st := p.StateOf(v, now)
		if st.String() != c.state {
			t.Errorf("StateOf = %s, want %s", st, c.state)
		}
	}
}

func TestOldnessDecay(t *testing.T) {
	p := DefaultScoreParams()
	v := &osint.Vulnerability{ID: "CVE-2018-1", Published: day(2018, 1, 1), CVSS: 10}
	if got := p.Oldness(v, day(2018, 1, 1)); got != 1.0 {
		t.Errorf("oldness at publication = %v, want 1", got)
	}
	// Half a threshold: 1 - 0.25*0.5 = 0.875.
	half := v.Published.Add(p.OldnessThreshold / 2)
	if got := p.Oldness(v, half); !approx(got, 0.875) {
		t.Errorf("oldness at half threshold = %v, want 0.875", got)
	}
	// Exactly one threshold: the floor.
	if got := p.Oldness(v, v.Published.Add(p.OldnessThreshold)); !approx(got, 0.75) {
		t.Errorf("oldness at threshold = %v, want 0.75", got)
	}
	// Far future: still the floor (never reaches zero).
	if got := p.Oldness(v, v.Published.AddDate(20, 0, 0)); got != 0.75 {
		t.Errorf("oldness after 20y = %v, want 0.75", got)
	}
	// Before publication: no decay.
	if got := p.Oldness(v, v.Published.AddDate(0, 0, -10)); got != 1.0 {
		t.Errorf("oldness before publication = %v, want 1", got)
	}
}

// TestFigure3Shapes verifies the three score-evolution shapes of Figure 3.
func TestFigure3Shapes(t *testing.T) {
	p := DefaultScoreParams()

	t.Run("NE_jump_on_exploit", func(t *testing.T) {
		// CVE-2018-8303-like: published 2018-09-07, exploit 2018-09-24.
		v := &osint.Vulnerability{ID: "CVE-2018-8303", Published: day(2018, 9, 7),
			CVSS: 8.1, ExploitAt: day(2018, 9, 24)}
		before := p.Score(v, day(2018, 9, 23))
		after := p.Score(v, day(2018, 9, 24))
		if after <= before {
			t.Errorf("no jump on exploit: %v -> %v", before, after)
		}
		if after <= v.CVSS {
			t.Errorf("exploited fresh score %v should exceed CVSS %v", after, v.CVSS)
		}
		// Decaying slowly before the exploit.
		d1, d2 := p.Score(v, day(2018, 9, 8)), p.Score(v, day(2018, 9, 20))
		if d2 >= d1 {
			t.Errorf("score not decaying before exploit: %v then %v", d1, d2)
		}
	})

	t.Run("NPE_exploit_then_patch", func(t *testing.T) {
		// CVE-2018-8012-like: published 2018-05-20, exploit 05-27, patch 05-30.
		v := &osint.Vulnerability{ID: "CVE-2018-8012", Published: day(2018, 5, 20),
			CVSS: 7.5, ExploitAt: day(2018, 5, 27), PatchedAt: day(2018, 5, 30)}
		base := p.Score(v, day(2018, 5, 26))
		raised := p.Score(v, day(2018, 5, 27))
		patched := p.Score(v, day(2018, 5, 30))
		if raised <= base {
			t.Errorf("exploit did not raise score: %v -> %v", base, raised)
		}
		if patched >= raised/1.8 {
			t.Errorf("patch did not halve score: %v -> %v", raised, patched)
		}
		later := p.Score(v, day(2019, 5, 30))
		if later >= patched {
			t.Errorf("score not decaying after patch: %v then %v", patched, later)
		}
	})

	t.Run("OP_decay", func(t *testing.T) {
		// CVE-2016-7180-like: published 2016-09-08, patch 09-19, examined a year on.
		v := &osint.Vulnerability{ID: "CVE-2016-7180", Published: day(2016, 9, 8),
			CVSS: 2.9, PatchedAt: day(2016, 9, 19)}
		atPatch := p.Score(v, day(2016, 9, 19))
		yearOn := p.Score(v, day(2017, 9, 19))
		if atPatch >= v.CVSS {
			t.Errorf("patched score %v should be below CVSS %v", atPatch, v.CVSS)
		}
		if yearOn >= atPatch {
			t.Errorf("no decay over the year: %v then %v", atPatch, yearOn)
		}
		want := v.CVSS * 0.75 * 0.5 // old + patched floor
		if !approx(yearOn, want) {
			t.Errorf("year-on score = %v, want %v", yearOn, want)
		}
	})
}

func TestScoreParamsValidate(t *testing.T) {
	if err := DefaultScoreParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []func(*ScoreParams){
		func(p *ScoreParams) { p.OldnessThreshold = 0 },
		func(p *ScoreParams) { p.OldnessSlope = -1 },
		func(p *ScoreParams) { p.OldnessFloor = 0 },
		func(p *ScoreParams) { p.OldnessFloor = 1.5 },
		func(p *ScoreParams) { p.PatchedFactor = 0 },
		func(p *ScoreParams) { p.PatchedFactor = 2 },
		func(p *ScoreParams) { p.ExploitedFactor = 0.5 },
	}
	for i, mutate := range bad {
		p := DefaultScoreParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestScoreBoundsProperty: for any vulnerability and time, the score stays
// within [0, CVSS * exploitedFactor] and equals CVSS times the modifier.
func TestScoreBoundsProperty(t *testing.T) {
	p := DefaultScoreParams()
	base := day(2014, 1, 1)
	f := func(cvssRaw uint8, pubOff, nowOff uint16, patched, exploited bool) bool {
		cvss := float64(cvssRaw%101) / 10
		v := &osint.Vulnerability{
			ID:        "CVE-2018-1",
			Published: base.AddDate(0, 0, int(pubOff%2000)),
			CVSS:      cvss,
		}
		if patched {
			v.PatchedAt = v.Published.AddDate(0, 0, 10)
		}
		if exploited {
			v.ExploitAt = v.Published.AddDate(0, 0, 5)
		}
		now := base.AddDate(0, 0, int(nowOff%4000))
		s := p.Score(v, now)
		if s < -eps || s > cvss*p.ExploitedFactor+eps {
			return false
		}
		return math.Abs(s-cvss*p.Modifier(v, now)) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// TestScoreMonotoneInTimeWhenStateFixed: with no patch/exploit events, the
// score never increases as time passes.
func TestScoreMonotoneInTimeWhenStateFixed(t *testing.T) {
	p := DefaultScoreParams()
	v := &osint.Vulnerability{ID: "CVE-2018-1", Published: day(2018, 1, 1), CVSS: 9.8}
	prev := math.Inf(1)
	for off := 0; off < 800; off += 20 {
		s := p.Score(v, v.Published.AddDate(0, 0, off))
		if s > prev+eps {
			t.Fatalf("score increased over time at day %d: %v > %v", off, s, prev)
		}
		prev = s
	}
}
