package core

import (
	"testing"
	"time"

	"lazarus/internal/cluster"
	"lazarus/internal/osint"
)

const (
	ub = "canonical:ubuntu_linux:16.04"
	de = "debian:debian_linux:8.0"
	so = "oracle:solaris:11.3"
	w1 = "microsoft:windows_10:-"
)

var (
	rUB = NewReplica("UB16", ub)
	rDE = NewReplica("DE8", de)
	rSO = NewReplica("SO11", so)
	rW1 = NewReplica("W10", w1)
)

func mkVuln(id string, pub time.Time, cvss float64, desc string, products ...string) *osint.Vulnerability {
	return &osint.Vulnerability{
		ID: id, Description: desc, Products: products, Published: pub, CVSS: cvss,
	}
}

// testCorpus: one direct shared vuln (ubuntu+debian), two cluster-linked
// XSS vulns (ubuntu / solaris), and independent singletons.
func testCorpus() []*osint.Vulnerability {
	return []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 1), 7.8,
			"kernel privilege escalation via debug exception", ub, de),
		mkVuln("CVE-2018-0002", day(2018, 4, 1), 6.1,
			"cross-site scripting in horizon dashboard allows script injection", ub),
		mkVuln("CVE-2018-0003", day(2018, 4, 15), 6.1,
			"cross-site scripting in horizon dashboard allows html injection", so),
		mkVuln("CVE-2018-0004", day(2018, 3, 1), 9.8,
			"smb remote code execution via crafted packet", w1),
		mkVuln("CVE-2018-0005", day(2018, 6, 1), 5.0,
			"local denial of service in scheduler", de),
	}
}

// fixedClusters builds a Clusters object with a forced assignment.
func fixedClusters(assign map[string]int, k int) *cluster.Clusters {
	c := &cluster.Clusters{K: k, ByCVE: assign, Members: make([][]string, k)}
	for cve, cl := range assign {
		c.Members[cl] = append(c.Members[cl], cve)
	}
	return c
}

func testIntel(t *testing.T) *Intel {
	t.Helper()
	clusters := fixedClusters(map[string]int{
		"CVE-2018-0001": 0,
		"CVE-2018-0002": 1,
		"CVE-2018-0003": 1, // same XSS cluster as 0002
		"CVE-2018-0004": 2,
		"CVE-2018-0005": 3,
	}, 4)
	in, err := NewIntel(testCorpus(), clusters)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestVulnsAffecting(t *testing.T) {
	in := testIntel(t)
	now := day(2018, 12, 1)
	got := in.VulnsAffecting(rUB, now)
	if len(got) != 2 || got[0].ID != "CVE-2018-0001" || got[1].ID != "CVE-2018-0002" {
		t.Errorf("VulnsAffecting(UB16) = %v", ids(got))
	}
	// Knowledge horizon: nothing published after now is visible.
	early := in.VulnsAffecting(rDE, day(2018, 5, 15))
	if len(early) != 1 || early[0].ID != "CVE-2018-0001" {
		t.Errorf("VulnsAffecting(DE8)@May = %v", ids(early))
	}
}

func TestSharedDirect(t *testing.T) {
	in := testIntel(t)
	now := day(2018, 12, 1)
	got := in.Shared(rUB, rDE, now)
	if len(got) != 1 || got[0].ID != "CVE-2018-0001" {
		t.Errorf("Shared(UB,DE) = %v", ids(got))
	}
	if n := in.SharedCount(rUB, rDE, now); n != 1 {
		t.Errorf("SharedCount = %d", n)
	}
}

func TestSharedViaCluster(t *testing.T) {
	in := testIntel(t)
	now := day(2018, 12, 1)
	got := in.Shared(rUB, rSO, now)
	// No direct CPE overlap, but 0002 (ubuntu) and 0003 (solaris) share a
	// cluster: both must appear.
	if len(got) != 2 || got[0].ID != "CVE-2018-0002" || got[1].ID != "CVE-2018-0003" {
		t.Errorf("Shared(UB,SO) = %v", ids(got))
	}
	// DirectShared sees nothing.
	if d := in.DirectShared(rUB, rSO, now); len(d) != 0 {
		t.Errorf("DirectShared(UB,SO) = %v", ids(d))
	}
	// Before the second cluster member is published there is no link.
	if early := in.Shared(rUB, rSO, day(2018, 4, 10)); len(early) != 0 {
		t.Errorf("Shared(UB,SO)@Apr10 = %v", ids(early))
	}
}

func TestSharedNoLink(t *testing.T) {
	in := testIntel(t)
	if got := in.Shared(rDE, rW1, day(2018, 12, 1)); len(got) != 0 {
		t.Errorf("Shared(DE,W10) = %v", ids(got))
	}
}

func TestSharedSymmetric(t *testing.T) {
	in := testIntel(t)
	now := day(2018, 12, 1)
	pairs := [][2]Replica{{rUB, rDE}, {rUB, rSO}, {rDE, rSO}, {rW1, rUB}}
	for _, pr := range pairs {
		a := ids(in.Shared(pr[0], pr[1], now))
		b := ids(in.Shared(pr[1], pr[0], now))
		if len(a) != len(b) {
			t.Fatalf("Shared not symmetric for %s/%s: %v vs %v", pr[0].ID, pr[1].ID, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Shared not symmetric for %s/%s: %v vs %v", pr[0].ID, pr[1].ID, a, b)
			}
		}
	}
}

func TestNewIntelValidation(t *testing.T) {
	if _, err := NewIntel([]*osint.Vulnerability{nil}, nil); err == nil {
		t.Error("nil vulnerability accepted")
	}
	v := mkVuln("CVE-2018-1", day(2018, 1, 1), 5, "x", ub)
	if _, err := NewIntel([]*osint.Vulnerability{v, v}, nil); err == nil {
		t.Error("duplicate corpus entry accepted")
	}
}

func TestNilClustersMeansDirectOnly(t *testing.T) {
	in, err := NewIntel(testCorpus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Shared(rUB, rSO, day(2018, 12, 1)); len(got) != 0 {
		t.Errorf("nil-cluster Shared(UB,SO) = %v", ids(got))
	}
	if got := in.Shared(rUB, rDE, day(2018, 12, 1)); len(got) != 1 {
		t.Errorf("nil-cluster Shared(UB,DE) = %v", ids(got))
	}
}

func TestProductsKnown(t *testing.T) {
	in := testIntel(t)
	ps := in.ProductsKnown()
	if len(ps) != 4 {
		t.Errorf("ProductsKnown = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1] >= ps[i] {
			t.Errorf("products not sorted: %v", ps)
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{rUB, rDE}
	if !cfg.Contains("UB16") || cfg.Contains("SO11") {
		t.Error("Contains wrong")
	}
	clone := cfg.Clone()
	clone[0] = rSO
	if cfg[0].ID != "UB16" {
		t.Error("Clone aliases underlying array")
	}
	idsGot := cfg.IDs()
	if idsGot[0] != "UB16" || idsGot[1] != "DE8" {
		t.Errorf("IDs = %v", idsGot)
	}
}

func ids(vs []*osint.Vulnerability) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.ID
	}
	return out
}
