// Package core implements the primary contribution of the Lazarus paper:
// the vulnerability-scoring extension of CVSS (paper §4.2, Equations 1–4),
// the configuration risk metric over shared weaknesses (paper §4.3,
// Equation 5), and the diversity-aware replica-set reconfiguration
// procedure (paper §4.4, Algorithm 1) with its POOL / QUARANTINE replica
// lifecycle.
package core

import (
	"fmt"
	"time"

	"lazarus/internal/osint"
)

// ScoreParams are the constants of the scoring metric (Equations 2–4). The
// defaults reproduce the paper's Figure 2 modifier table.
type ScoreParams struct {
	// OldnessThreshold harmonizes the age decay (paper: 365 days).
	OldnessThreshold time.Duration
	// OldnessSlope is the linear decay rate per threshold elapsed
	// (paper: 0.25).
	OldnessSlope float64
	// OldnessFloor bounds the decay from below so old vulnerabilities
	// are never ignored entirely (paper: 0.75).
	OldnessFloor float64
	// PatchedFactor halves severity when a patch exists (paper: 0.5).
	PatchedFactor float64
	// ExploitedFactor raises severity by a quarter when an exploit
	// circulates (paper: 1.25).
	ExploitedFactor float64
}

// DefaultScoreParams returns the constants used in the paper's experiments.
func DefaultScoreParams() ScoreParams {
	return ScoreParams{
		OldnessThreshold: 365 * 24 * time.Hour,
		OldnessSlope:     0.25,
		OldnessFloor:     0.75,
		PatchedFactor:    0.5,
		ExploitedFactor:  1.25,
	}
}

// Validate checks the parameters are usable.
func (p ScoreParams) Validate() error {
	switch {
	case p.OldnessThreshold <= 0:
		return fmt.Errorf("core: oldness threshold must be positive")
	case p.OldnessSlope < 0:
		return fmt.Errorf("core: oldness slope must be non-negative")
	case p.OldnessFloor <= 0 || p.OldnessFloor > 1:
		return fmt.Errorf("core: oldness floor must be in (0,1]")
	case p.PatchedFactor <= 0 || p.PatchedFactor > 1:
		return fmt.Errorf("core: patched factor must be in (0,1]")
	case p.ExploitedFactor < 1:
		return fmt.Errorf("core: exploited factor must be >= 1")
	}
	return nil
}

// Oldness computes the age-decay factor of Equation 2:
//
//	max(1 - slope * age/threshold, floor)
//
// A vulnerability published today scores 1.0; criticality decays linearly
// and bottoms out at the floor (0.75 with defaults), so an old
// vulnerability is discounted but never disappears.
func (p ScoreParams) Oldness(v *osint.Vulnerability, now time.Time) float64 {
	age := now.Sub(v.Published)
	if age < 0 {
		age = 0 // not yet published: no decay
	}
	f := 1 - p.OldnessSlope*(age.Hours()/p.OldnessThreshold.Hours())
	if f < p.OldnessFloor {
		return p.OldnessFloor
	}
	return f
}

// Patched computes the factor of Equation 3: patchedFactor^patched.
func (p ScoreParams) Patched(v *osint.Vulnerability, now time.Time) float64 {
	if v.PatchedBy(now) {
		return p.PatchedFactor
	}
	return 1
}

// Exploited computes the factor of Equation 4: exploitedFactor^exploited.
func (p ScoreParams) Exploited(v *osint.Vulnerability, now time.Time) float64 {
	if v.ExploitedBy(now) {
		return p.ExploitedFactor
	}
	return 1
}

// Score computes the Lazarus severity score of Equation 1:
//
//	CVSS(v) × oldness(v) × patched(v) × exploited(v)
//
// ranking vulnerabilities by their potential exploitability at time now.
func (p ScoreParams) Score(v *osint.Vulnerability, now time.Time) float64 {
	return v.CVSS * p.Oldness(v, now) * p.Patched(v, now) * p.Exploited(v, now)
}

// Modifier computes the aggregate adjustment applied on top of the CVSS
// core score at time now (the quantity tabulated in the paper's Figure 2).
func (p ScoreParams) Modifier(v *osint.Vulnerability, now time.Time) float64 {
	return p.Oldness(v, now) * p.Patched(v, now) * p.Exploited(v, now)
}

// VulnState is the qualitative state a vulnerability is in at a point in
// time, per the paper's N/O × P × E nomenclature (Figure 2): New or Old,
// optionally Patched, optionally Exploited.
type VulnState struct {
	Old       bool
	Patched   bool
	Exploited bool
}

// StateOf classifies a vulnerability at time now. "Old" means the age
// decay has reached its floor.
func (p ScoreParams) StateOf(v *osint.Vulnerability, now time.Time) VulnState {
	return VulnState{
		Old:       p.Oldness(v, now) <= p.OldnessFloor,
		Patched:   v.PatchedBy(now),
		Exploited: v.ExploitedBy(now),
	}
}

// String renders the state in the paper's shorthand (e.g. "NE", "OP",
// "NPE").
func (s VulnState) String() string {
	out := "N"
	if s.Old {
		out = "O"
	}
	if s.Patched {
		out += "P"
	}
	if s.Exploited {
		out += "E"
	}
	return out
}
