package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lazarus/internal/osint"
)

// randomCorpus builds a seeded corpus over a small product universe.
func randomCorpus(r *rand.Rand, n int) []*osint.Vulnerability {
	products := []string{
		"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0",
		"oracle:solaris:11.3", "microsoft:windows_10:-",
		"openbsd:openbsd:6.1", "freebsd:freebsd:11.0",
	}
	out := make([]*osint.Vulnerability, 0, n)
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		nProducts := 1 + r.Intn(3)
		perm := r.Perm(len(products))[:nProducts]
		ps := make([]string, nProducts)
		for k, idx := range perm {
			ps[k] = products[idx]
		}
		v := &osint.Vulnerability{
			ID:          fmt.Sprintf("CVE-2016-%d", 1000+i),
			Description: fmt.Sprintf("synthetic weakness %d", i),
			Products:    ps,
			Published:   base.AddDate(0, 0, r.Intn(700)),
			CVSS:        1 + r.Float64()*9,
		}
		if r.Intn(2) == 0 {
			v.PatchedAt = v.Published.AddDate(0, 0, r.Intn(60))
		}
		if r.Intn(4) == 0 {
			v.ExploitAt = v.Published.AddDate(0, 0, r.Intn(90))
		}
		out = append(out, v)
	}
	return out
}

// TestRiskMonotoneInCorpus: adding one more shared vulnerability never
// decreases any configuration's risk (without clustering).
func TestRiskMonotoneInCorpus(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		corpus := randomCorpus(r, 30)
		in1, err := NewIntel(corpus, nil)
		if err != nil {
			return false
		}
		e1, err := NewRiskEngine(in1, DefaultScoreParams())
		if err != nil {
			return false
		}
		extra := &osint.Vulnerability{
			ID:          "CVE-2016-9999",
			Description: "added",
			Products:    []string{"canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"},
			Published:   time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
			CVSS:        5 + r.Float64()*5,
		}
		in2, err := NewIntel(append(append([]*osint.Vulnerability{}, corpus...), extra), nil)
		if err != nil {
			return false
		}
		e2, err := NewRiskEngine(in2, DefaultScoreParams())
		if err != nil {
			return false
		}
		cfg := Config{
			NewReplica("UB16", "canonical:ubuntu_linux:16.04"),
			NewReplica("DE8", "debian:debian_linux:8.0"),
			NewReplica("SO11", "oracle:solaris:11.3"),
			NewReplica("W10", "microsoft:windows_10:-"),
		}
		now := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
		return e2.Risk(cfg, now) >= e1.Risk(cfg, now)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}

// TestRiskNonNegativeAndSymmetric: risk is non-negative and invariant
// under configuration reordering.
func TestRiskNonNegativeAndSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		corpus := randomCorpus(r, 40)
		in, err := NewIntel(corpus, nil)
		if err != nil {
			return false
		}
		e, err := NewRiskEngine(in, DefaultScoreParams())
		if err != nil {
			return false
		}
		cfg := Config{
			NewReplica("UB16", "canonical:ubuntu_linux:16.04"),
			NewReplica("DE8", "debian:debian_linux:8.0"),
			NewReplica("OB61", "openbsd:openbsd:6.1"),
			NewReplica("FB11", "freebsd:freebsd:11.0"),
		}
		now := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
		risk := e.Risk(cfg, now)
		if risk < 0 {
			return false
		}
		// Shuffle.
		perm := r.Perm(len(cfg))
		shuffled := make(Config, len(cfg))
		for i, j := range perm {
			shuffled[i] = cfg[j]
		}
		riskShuffled := e.Risk(shuffled, now)
		// Summation order may differ; allow float round-off.
		diff := risk - riskShuffled
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Error(err)
	}
}

// TestRiskGrowsWithOverlap: a configuration with a duplicated product
// always has at least the risk of the fully diverse one (more pair
// overlap cannot reduce Equation 5).
func TestRiskGrowsWithOverlap(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	corpus := randomCorpus(r, 60)
	in, err := NewIntel(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewRiskEngine(in, DefaultScoreParams())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	diverse := Config{
		NewReplica("UB16", "canonical:ubuntu_linux:16.04"),
		NewReplica("DE8", "debian:debian_linux:8.0"),
		NewReplica("SO11", "oracle:solaris:11.3"),
		NewReplica("W10", "microsoft:windows_10:-"),
	}
	duplicated := Config{
		NewReplica("UB16a", "canonical:ubuntu_linux:16.04"),
		NewReplica("UB16b", "canonical:ubuntu_linux:16.04"),
		NewReplica("SO11", "oracle:solaris:11.3"),
		NewReplica("W10", "microsoft:windows_10:-"),
	}
	// The duplicated pair shares every ubuntu vulnerability; the diverse
	// pair shares only the cross-listed subset.
	if e.Risk(duplicated, now) < e.Risk(diverse, now)-1e-9 {
		t.Errorf("duplicated-product config risk %.2f below diverse %.2f",
			e.Risk(duplicated, now), e.Risk(diverse, now))
	}
}

// TestMonitorNeverPicksAboveThreshold: across random corpora and seeds,
// a successful reconfiguration always lands at or below the threshold.
func TestMonitorNeverPicksAboveThreshold(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		corpus := randomCorpus(r, 50)
		in, err := NewIntel(corpus, nil)
		if err != nil {
			return false
		}
		e, err := NewRiskEngine(in, DefaultScoreParams())
		if err != nil {
			return false
		}
		universe := []Replica{
			NewReplica("UB16", "canonical:ubuntu_linux:16.04"),
			NewReplica("DE8", "debian:debian_linux:8.0"),
			NewReplica("SO11", "oracle:solaris:11.3"),
			NewReplica("W10", "microsoft:windows_10:-"),
			NewReplica("OB61", "openbsd:openbsd:6.1"),
			NewReplica("FB11", "freebsd:freebsd:11.0"),
		}
		m, err := NewMonitor(e, Config(universe[:4]), universe[4:], MonitorConfig{
			Threshold: 20 + r.Float64()*40,
			Rand:      r,
		})
		if err != nil {
			return false
		}
		now := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
		for step := 0; step < 5; step++ {
			d, err := m.Monitor(now.AddDate(0, 0, step))
			if err != nil {
				continue // corner cases acceptable
			}
			if d.Reconfigured && d.RiskAfter > m.Threshold()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Error(err)
	}
}
