package core

import (
	"time"

	"lazarus/internal/osint"
)

// RiskEvaluator answers the risk queries Algorithm 1 needs. RiskEngine is
// the reference implementation; the experiment harness substitutes a
// day-granular precomputed evaluator for speed.
type RiskEvaluator interface {
	// Risk computes Equation 5 for a configuration at time now.
	Risk(cfg Config, now time.Time) float64
	// AverageScore computes Algorithm 1's scoreAVG for a replica.
	AverageScore(r Replica, now time.Time) float64
	// FullyPatched reports Algorithm 1's isPatched for a replica.
	FullyPatched(r Replica, now time.Time) bool
	// UnpatchedCount counts a replica's unpatched vulnerabilities,
	// ranking quarantined replicas for early release.
	UnpatchedCount(r Replica, now time.Time) int
}

// RiskEngine evaluates configuration risk (paper §4.3, Equation 5) against
// assembled threat intelligence.
type RiskEngine struct {
	intel  *Intel
	params ScoreParams
}

var _ RiskEvaluator = (*RiskEngine)(nil)

// NewRiskEngine builds an engine; params are validated.
func NewRiskEngine(intel *Intel, params ScoreParams) (*RiskEngine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &RiskEngine{intel: intel, params: params}, nil
}

// Intel returns the engine's intelligence base.
func (e *RiskEngine) Intel() *Intel { return e.intel }

// Params returns the engine's score parameters.
func (e *RiskEngine) Params() ScoreParams { return e.params }

// Score computes Equation 1 for a single vulnerability at time now.
func (e *RiskEngine) Score(v *osint.Vulnerability, now time.Time) float64 {
	return e.params.Score(v, now)
}

// Risk computes Equation 5: the sum over all unordered replica pairs of
// the configuration of the scores of their shared vulnerabilities V(ri,
// rj). Configurations whose replica pairs share many, severe, currently
// exploitable weaknesses are penalized.
func (e *RiskEngine) Risk(cfg Config, now time.Time) float64 {
	var total float64
	for i := 0; i < len(cfg); i++ {
		for j := i + 1; j < len(cfg); j++ {
			for _, v := range e.intel.Shared(cfg[i], cfg[j], now) {
				total += e.params.Score(v, now)
			}
		}
	}
	return total
}

// PairRisk returns the Equation 5 contribution of a single replica pair.
func (e *RiskEngine) PairRisk(ri, rj Replica, now time.Time) float64 {
	var total float64
	for _, v := range e.intel.Shared(ri, rj, now) {
		total += e.params.Score(v, now)
	}
	return total
}

// AverageScore computes the mean Equation 1 score over the vulnerabilities
// affecting a replica at time now (Algorithm 1's scoreAVG). Replicas with
// no known vulnerabilities average zero.
func (e *RiskEngine) AverageScore(r Replica, now time.Time) float64 {
	vulns := e.intel.VulnsAffecting(r, now)
	if len(vulns) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vulns {
		sum += e.params.Score(v, now)
	}
	return sum / float64(len(vulns))
}

// FullyPatched reports whether every vulnerability affecting the replica
// that is known at time now has a patch available by then (Algorithm 1's
// isPatched, which gates a quarantined replica's return to the pool).
func (e *RiskEngine) FullyPatched(r Replica, now time.Time) bool {
	for _, v := range e.intel.VulnsAffecting(r, now) {
		if !v.PatchedBy(now) {
			return false
		}
	}
	return true
}

// UnpatchedCount returns how many vulnerabilities affecting the replica
// are unpatched at time now — the quantity the administrator remediation
// "move the elements with fewer unpatched vulnerabilities from QUARANTINE
// to POOL" ranks by.
func (e *RiskEngine) UnpatchedCount(r Replica, now time.Time) int {
	n := 0
	for _, v := range e.intel.VulnsAffecting(r, now) {
		if !v.PatchedBy(now) {
			n++
		}
	}
	return n
}
