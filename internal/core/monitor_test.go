package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"lazarus/internal/osint"
)

func engine(t *testing.T, corpus []*osint.Vulnerability) *RiskEngine {
	t.Helper()
	in, err := NewIntel(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewRiskEngine(in, DefaultScoreParams())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRiskEquation5(t *testing.T) {
	now := day(2018, 6, 1)
	// Two shared vulns across the UB/DE pair, one across UB/SO.
	corpus := []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 30), 8.0, "a", ub, de),
		mkVuln("CVE-2018-0002", day(2018, 5, 30), 4.0, "b", ub, de),
		mkVuln("CVE-2018-0003", day(2018, 5, 30), 6.0, "c", ub, so),
	}
	e := engine(t, corpus)
	cfg := Config{rUB, rDE, rSO}
	p := DefaultScoreParams()
	want := p.Score(corpus[0], now) + p.Score(corpus[1], now) + p.Score(corpus[2], now)
	if got := e.Risk(cfg, now); math.Abs(got-want) > 1e-9 {
		t.Errorf("Risk = %v, want %v", got, want)
	}
	// Pair risk decomposition.
	pairSum := e.PairRisk(rUB, rDE, now) + e.PairRisk(rUB, rSO, now) + e.PairRisk(rDE, rSO, now)
	if math.Abs(pairSum-want) > 1e-9 {
		t.Errorf("pair decomposition = %v, want %v", pairSum, want)
	}
	// Diverse pair contributes nothing.
	if r := e.PairRisk(rDE, rSO, now); r != 0 {
		t.Errorf("PairRisk(DE,SO) = %v, want 0", r)
	}
}

func TestAverageScoreAndFullyPatched(t *testing.T) {
	now := day(2018, 6, 1)
	v1 := mkVuln("CVE-2018-0001", day(2018, 5, 1), 8.0, "a", ub)
	v2 := mkVuln("CVE-2018-0002", day(2018, 5, 1), 4.0, "b", ub)
	v1.PatchedAt = day(2018, 5, 10)
	e := engine(t, []*osint.Vulnerability{v1, v2})
	p := DefaultScoreParams()
	want := (p.Score(v1, now) + p.Score(v2, now)) / 2
	if got := e.AverageScore(rUB, now); math.Abs(got-want) > 1e-9 {
		t.Errorf("AverageScore = %v, want %v", got, want)
	}
	if e.AverageScore(rSO, now) != 0 {
		t.Error("AverageScore for clean replica should be 0")
	}
	if e.FullyPatched(rUB, now) {
		t.Error("FullyPatched true with unpatched vuln")
	}
	v2.PatchedAt = day(2018, 5, 20)
	if !e.FullyPatched(rUB, now) {
		t.Error("FullyPatched false with all patched")
	}
	if !e.FullyPatched(rSO, now) {
		t.Error("clean replica should count as fully patched")
	}
	if got := e.UnpatchedCount(rUB, day(2018, 5, 15)); got != 1 {
		t.Errorf("UnpatchedCount = %d, want 1", got)
	}
}

// monitorFixture: UB+DE share a critical unpatched vuln; FE and W10 are
// clean spares.
func monitorFixture(t *testing.T) (*Monitor, *RiskEngine) {
	t.Helper()
	corpus := []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 1), 9.8, "shared critical", ub, de),
		mkVuln("CVE-2018-0002", day(2018, 4, 1), 3.0, "minor solaris", so),
	}
	e := engine(t, corpus)
	rFE := NewReplica("FE26", "fedoraproject:fedora:26")
	m, err := NewMonitor(e, Config{rUB, rDE, rSO}, []Replica{rFE, rW1},
		MonitorConfig{Threshold: 5, Rand: rand.New(rand.NewSource(42))})
	if err != nil {
		t.Fatal(err)
	}
	return m, e
}

func TestMonitorTriggersOnRisk(t *testing.T) {
	m, e := monitorFixture(t)
	now := day(2018, 6, 1)
	if r := e.Risk(m.Config(), now); r < 5 {
		t.Fatalf("fixture risk %v below threshold; test broken", r)
	}
	d, err := m.Monitor(now)
	if err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if !d.Reconfigured || d.Trigger != TriggerRisk {
		t.Fatalf("decision = %+v", d)
	}
	// One of UB/DE must have left (they carry the shared weakness).
	if d.Removed.ID != "UB16" && d.Removed.ID != "DE8" {
		t.Errorf("removed %s, want UB16 or DE8", d.Removed.ID)
	}
	if d.RiskAfter > m.Threshold() {
		t.Errorf("post-reconfiguration risk %v above threshold", d.RiskAfter)
	}
	// Sets bookkeeping: removed replica quarantined, joiner out of pool.
	if got := m.Quarantine(); len(got) != 1 || got[0].ID != d.Removed.ID {
		t.Errorf("quarantine = %v", got)
	}
	if m.Config().Contains(d.Removed.ID) {
		t.Error("removed replica still in config")
	}
	if !m.Config().Contains(d.Added.ID) {
		t.Error("added replica not in config")
	}
	for _, p := range m.Pool() {
		if p.ID == d.Added.ID {
			t.Error("added replica still in pool")
		}
	}
	if len(m.Config()) != 3 {
		t.Errorf("config size changed: %v", m.Config().IDs())
	}
}

func TestMonitorNoTriggerBelowThreshold(t *testing.T) {
	// Low-severity shared vuln: risk below threshold AND no replica
	// averages HIGH, so nothing should move.
	corpus := []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 1), 3.0, "minor shared", ub, de),
	}
	e := engine(t, corpus)
	m, err := NewMonitor(e, Config{rUB, rDE, rSO}, []Replica{rW1},
		MonitorConfig{Threshold: 50, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Monitor(day(2018, 6, 1))
	if err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if d.Reconfigured {
		t.Errorf("reconfigured below threshold: %+v", d)
	}
	if d.Trigger != TriggerNone {
		t.Errorf("trigger = %v, want none", d.Trigger)
	}
}

func TestMonitorHighAveragePath(t *testing.T) {
	// Risk is low (no shared vulns) but one replica has a critical
	// unpatched vulnerability: lines 17–33 must rotate exactly it out.
	corpus := []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 25), 9.8, "critical ubuntu-only", ub),
	}
	e := engine(t, corpus)
	rFE := NewReplica("FE26", "fedoraproject:fedora:26")
	m, err := NewMonitor(e, Config{rUB, rDE, rSO}, []Replica{rFE},
		MonitorConfig{Threshold: 50, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Monitor(day(2018, 6, 1))
	if err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if !d.Reconfigured || d.Trigger != TriggerHighAverage {
		t.Fatalf("decision = %+v", d)
	}
	if d.Removed.ID != "UB16" || d.Added.ID != "FE26" {
		t.Errorf("swap = %s -> %s, want UB16 -> FE26", d.Removed.ID, d.Added.ID)
	}
}

func TestMonitorHighAverageNotTriggeredByMediumVulns(t *testing.T) {
	corpus := []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 25), 5.0, "medium", ub),
	}
	e := engine(t, corpus)
	m, err := NewMonitor(e, Config{rUB, rDE}, []Replica{rW1},
		MonitorConfig{Threshold: 50, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Monitor(day(2018, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reconfigured {
		t.Errorf("medium-score replica rotated out: %+v", d)
	}
}

func TestMonitorPoolExhausted(t *testing.T) {
	corpus := []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 1), 9.8, "shared", ub, de),
	}
	e := engine(t, corpus)
	m, err := NewMonitor(e, Config{rUB, rDE}, nil,
		MonitorConfig{Threshold: 1, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Monitor(day(2018, 6, 1))
	if !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestMonitorNoCandidate(t *testing.T) {
	// Every possible replacement still shares the weakness: threshold
	// unreachable.
	corpus := []*osint.Vulnerability{
		mkVuln("CVE-2018-0001", day(2018, 5, 1), 9.8, "everywhere", ub, de, so, w1),
	}
	e := engine(t, corpus)
	m, err := NewMonitor(e, Config{rUB, rDE}, []Replica{rSO, rW1},
		MonitorConfig{Threshold: 1, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Monitor(day(2018, 6, 1))
	if !errors.Is(err, ErrNoCandidate) {
		t.Errorf("err = %v, want ErrNoCandidate", err)
	}
	// Remediation 1: raising the threshold unblocks the system.
	if err := m.RaiseThreshold(100); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Monitor(day(2018, 6, 1)); err != nil {
		t.Errorf("after raising threshold: %v", err)
	}
}

func TestQuarantineLifecycle(t *testing.T) {
	// CVSS 6.0 keeps every replica's average below HIGH so only the risk
	// path fires, exactly once.
	v := mkVuln("CVE-2018-0001", day(2018, 5, 1), 6.0, "shared medium", ub, de)
	corpus := []*osint.Vulnerability{v}
	e := engine(t, corpus)
	rFE := NewReplica("FE26", "fedoraproject:fedora:26")
	m, err := NewMonitor(e, Config{rUB, rDE, rSO}, []Replica{rFE, rW1},
		MonitorConfig{Threshold: 5, Rand: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Monitor(day(2018, 6, 1))
	if err != nil || !d.Reconfigured {
		t.Fatalf("first round: %+v, %v", d, err)
	}
	removed := d.Removed.ID
	if q := m.Quarantine(); len(q) != 1 || q[0].ID != removed {
		t.Fatalf("quarantine = %v", q)
	}
	// Still unpatched: stays quarantined.
	d2, err := m.Monitor(day(2018, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Requeued) != 0 || len(m.Quarantine()) != 1 {
		t.Fatalf("unpatched replica requeued: %+v", d2)
	}
	// Patch arrives: next round returns it to the pool.
	v.PatchedAt = day(2018, 6, 3)
	d3, err := m.Monitor(day(2018, 6, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(d3.Requeued) != 1 || d3.Requeued[0].ID != removed {
		t.Fatalf("requeued = %v", d3.Requeued)
	}
	if len(m.Quarantine()) != 0 {
		t.Error("quarantine not emptied")
	}
	found := false
	for _, p := range m.Pool() {
		if p.ID == removed {
			found = true
		}
	}
	if !found {
		t.Error("patched replica not back in pool")
	}
}

func TestReleaseLeastVulnerable(t *testing.T) {
	v1 := mkVuln("CVE-2018-0001", day(2018, 5, 1), 9.8, "ub 2 unpatched a", ub)
	v2 := mkVuln("CVE-2018-0002", day(2018, 5, 1), 9.0, "ub 2 unpatched b", ub)
	v3 := mkVuln("CVE-2018-0003", day(2018, 5, 1), 9.8, "de 1 unpatched", de)
	e := engine(t, []*osint.Vulnerability{v1, v2, v3})
	m, err := NewMonitor(e, Config{rSO}, nil,
		MonitorConfig{Threshold: 5, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReleaseLeastVulnerable(day(2018, 6, 1)); err == nil {
		t.Error("release from empty quarantine succeeded")
	}
	m.quarantine = []Replica{rUB, rDE}
	r, err := m.ReleaseLeastVulnerable(day(2018, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "DE8" {
		t.Errorf("released %s, want DE8 (fewest unpatched)", r.ID)
	}
	if len(m.Quarantine()) != 1 || len(m.Pool()) != 1 {
		t.Errorf("sets after release: q=%v pool=%v", m.Quarantine(), m.Pool())
	}
}

func TestMonitorDeterministicForSeed(t *testing.T) {
	run := func(seed int64) string {
		corpus := []*osint.Vulnerability{
			mkVuln("CVE-2018-0001", day(2018, 5, 1), 9.8, "shared", ub, de),
		}
		e := engine(t, corpus)
		rFE := NewReplica("FE26", "fedoraproject:fedora:26")
		rOB := NewReplica("OB61", "openbsd:openbsd:6.1")
		m, err := NewMonitor(e, Config{rUB, rDE, rSO}, []Replica{rFE, rW1, rOB},
			MonitorConfig{Threshold: 5, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Monitor(day(2018, 6, 1))
		if err != nil {
			t.Fatal(err)
		}
		return d.Removed.ID + "->" + d.Added.ID
	}
	if run(3) != run(3) {
		t.Error("equal seeds produced different decisions")
	}
	// Different seeds should eventually differ (randomized choice).
	distinct := map[string]bool{}
	for s := int64(0); s < 10; s++ {
		distinct[run(s)] = true
	}
	if len(distinct) < 2 {
		t.Error("random candidate selection appears deterministic across seeds")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	e := engine(t, testCorpus())
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMonitor(nil, Config{rUB}, nil, MonitorConfig{Rand: rng}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewMonitor(e, nil, nil, MonitorConfig{Rand: rng}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewMonitor(e, Config{rUB}, nil, MonitorConfig{}); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := NewMonitor(e, Config{rUB}, []Replica{rUB}, MonitorConfig{Rand: rng}); err == nil {
		t.Error("duplicate replica accepted")
	}
	if _, err := NewMonitor(e, Config{rUB}, nil, MonitorConfig{Threshold: -1, Rand: rng}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestRaiseThresholdRejectsLowering(t *testing.T) {
	m, _ := monitorFixture(t)
	if err := m.RaiseThreshold(m.Threshold() - 1); err == nil {
		t.Error("threshold lowering accepted")
	}
}

// TestMonitorInvariantSetsDisjoint is a property test across random
// monitoring sequences: CONFIG, POOL and QUARANTINE always partition the
// replica universe.
func TestMonitorInvariantSetsDisjoint(t *testing.T) {
	v := mkVuln("CVE-2018-0001", day(2018, 5, 1), 9.8, "shared", ub, de)
	for seed := int64(0); seed < 20; seed++ {
		e := engine(t, []*osint.Vulnerability{v})
		rFE := NewReplica("FE26", "fedoraproject:fedora:26")
		rOB := NewReplica("OB61", "openbsd:openbsd:6.1")
		universe := 5
		m, err := NewMonitor(e, Config{rUB, rDE, rSO}, []Replica{rFE, rOB},
			MonitorConfig{Threshold: 5, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		now := day(2018, 6, 1)
		for step := 0; step < 10; step++ {
			_, _ = m.Monitor(now.AddDate(0, 0, step)) // corner-case errors fine
			seen := map[string]int{}
			for _, r := range m.Config() {
				seen[r.ID]++
			}
			for _, r := range m.Pool() {
				seen[r.ID]++
			}
			for _, r := range m.Quarantine() {
				seen[r.ID]++
			}
			if len(seen) != universe {
				t.Fatalf("seed %d step %d: universe size %d, want %d", seed, step, len(seen), universe)
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("seed %d step %d: replica %s appears %d times", seed, step, id, n)
				}
			}
			if len(m.Config()) != 3 {
				t.Fatalf("seed %d step %d: config size %d", seed, step, len(m.Config()))
			}
		}
	}
}

func TestTriggerString(t *testing.T) {
	if TriggerRisk.String() != "risk-threshold" || Trigger(9).String() != "Trigger(9)" {
		t.Error("Trigger.String wrong")
	}
}

var _ = time.Now // keep time import if fixtures change

func TestRevertSwapRestoresSets(t *testing.T) {
	m, _ := monitorFixture(t)
	now := day(2018, 6, 1)
	before := struct {
		config, pool, quarantine []string
	}{m.Config().IDs(), replicaIDs(m.Pool()), replicaIDs(m.Quarantine())}

	d, err := m.Monitor(now)
	if err != nil || !d.Reconfigured {
		t.Fatalf("Monitor: %+v, %v", d, err)
	}
	if err := m.RevertSwap(d.Removed, d.Added); err != nil {
		t.Fatalf("RevertSwap: %v", err)
	}
	// Exactly the pre-swap lifecycle state, so the next round is free to
	// pick a different candidate.
	if got := m.Config().IDs(); !sameSet(got, before.config) {
		t.Errorf("config after revert = %v, want %v", got, before.config)
	}
	if got := replicaIDs(m.Pool()); !sameSet(got, before.pool) {
		t.Errorf("pool after revert = %v, want %v", got, before.pool)
	}
	if got := replicaIDs(m.Quarantine()); !sameSet(got, before.quarantine) {
		t.Errorf("quarantine after revert = %v, want %v", got, before.quarantine)
	}
	// The monitor remains functional: the same risk trigger fires again.
	d2, err := m.Monitor(now)
	if err != nil || !d2.Reconfigured {
		t.Fatalf("Monitor after revert: %+v, %v", d2, err)
	}
}

func TestRevertSwapValidates(t *testing.T) {
	m, _ := monitorFixture(t)
	now := day(2018, 6, 1)
	d, err := m.Monitor(now)
	if err != nil || !d.Reconfigured {
		t.Fatalf("Monitor: %+v, %v", d, err)
	}
	// Added must be in config, removed must not.
	if err := m.RevertSwap(d.Removed, d.Removed); err == nil {
		t.Error("revert with non-member joiner accepted")
	}
	if err := m.RevertSwap(d.Added, d.Added); err == nil {
		t.Error("revert of a current member accepted")
	}
	// A valid revert still works after the failed attempts.
	if err := m.RevertSwap(d.Removed, d.Added); err != nil {
		t.Errorf("RevertSwap: %v", err)
	}
	// Reverting twice must fail: the state was already restored.
	if err := m.RevertSwap(d.Removed, d.Added); err == nil {
		t.Error("double revert accepted")
	}
}

func replicaIDs(rs []Replica) []string {
	out := make([]string, 0, len(rs))
	for _, r := range rs {
		out = append(out, r.ID)
	}
	return out
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
