package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"lazarus/internal/osint"
)

// Corner-case conditions of Algorithm 1 that require administrator action
// (paper §4.4): reconfiguration cannot proceed automatically.
var (
	// ErrPoolExhausted: POOL has no replicas left to try.
	ErrPoolExhausted = errors.New("core: replica pool exhausted")
	// ErrNoCandidate: no candidate configuration keeps risk below the
	// threshold.
	ErrNoCandidate = errors.New("core: no candidate configuration below threshold")
)

// Decision describes the outcome of one monitoring round.
type Decision struct {
	// Reconfigured reports whether the replica set changed.
	Reconfigured bool
	// Trigger explains why a replacement was attempted.
	Trigger Trigger
	// Removed and Added are set when Reconfigured is true.
	Removed, Added Replica
	// RiskBefore and RiskAfter are Equation 5 evaluations of the old and
	// new configurations.
	RiskBefore, RiskAfter float64
	// Requeued lists quarantined replicas that were returned to the pool
	// this round (fully patched).
	Requeued []Replica
	// Candidates is how many candidate configurations were below the
	// threshold when the random pick was made.
	Candidates int
}

// Trigger enumerates why Algorithm 1 attempted a replacement.
type Trigger int

// Triggers.
const (
	// TriggerNone: risk below threshold and no replica averaged HIGH.
	TriggerNone Trigger = iota + 1
	// TriggerRisk: risk(CONFIG) >= threshold (Algorithm 1 line 6).
	TriggerRisk
	// TriggerHighAverage: some replica's average vulnerability score
	// reached HIGH (Algorithm 1 lines 17–24).
	TriggerHighAverage
)

// String names the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerNone:
		return "none"
	case TriggerRisk:
		return "risk-threshold"
	case TriggerHighAverage:
		return "high-average-score"
	default:
		return fmt.Sprintf("Trigger(%d)", int(t))
	}
}

// MonitorConfig parameterizes a Monitor.
type MonitorConfig struct {
	// Threshold is the Equation 5 risk level at which the running
	// configuration must be replaced.
	Threshold float64
	// HighScore is the average-score level that rotates a single replica
	// out even when the configuration risk is acceptable (Algorithm 1
	// line 19 initializes maxScore to the CVSS HIGH rating, 7.0).
	HighScore float64
	// Rand drives the uniformly random pick among acceptable candidate
	// configurations (so inspecting POOL does not reveal the next
	// CONFIG).
	Rand *rand.Rand
}

// Monitor owns the replica-set lifecycle state of Algorithm 1: the running
// CONFIG, the POOL of available spares, and the QUARANTINE of recently
// replaced replicas awaiting patches.
type Monitor struct {
	engine     RiskEvaluator
	cfg        MonitorConfig
	config     Config
	pool       []Replica
	quarantine []Replica
}

// NewMonitor builds a Monitor over an initial configuration and spare
// pool.
func NewMonitor(engine RiskEvaluator, initial Config, pool []Replica, cfg MonitorConfig) (*Monitor, error) {
	if engine == nil {
		return nil, fmt.Errorf("core: nil risk engine")
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("core: empty initial configuration")
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("core: negative risk threshold")
	}
	if cfg.HighScore <= 0 {
		cfg.HighScore = osint.ScoreHigh
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("core: monitor requires a random source")
	}
	seen := make(map[string]bool)
	for _, r := range append(initial.Clone(), pool...) {
		if seen[r.ID] {
			return nil, fmt.Errorf("core: replica %s appears twice", r.ID)
		}
		seen[r.ID] = true
	}
	return &Monitor{
		engine: engine,
		cfg:    cfg,
		config: initial.Clone(),
		pool:   append([]Replica(nil), pool...),
	}, nil
}

// RestoreMonitor rebuilds a Monitor from persisted lifecycle sets — a
// recovering control plane re-adopting state written by a predecessor.
// Unlike NewMonitor it accepts a non-empty quarantine; the no-duplicate
// validation spans all three sets.
func RestoreMonitor(engine RiskEvaluator, config Config, pool, quarantine []Replica, cfg MonitorConfig) (*Monitor, error) {
	m, err := NewMonitor(engine, config, pool, cfg)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, r := range append(config.Clone(), pool...) {
		seen[r.ID] = true
	}
	for _, r := range quarantine {
		if seen[r.ID] {
			return nil, fmt.Errorf("core: replica %s appears twice", r.ID)
		}
		seen[r.ID] = true
	}
	m.quarantine = append([]Replica(nil), quarantine...)
	return m, nil
}

// Config returns the running configuration.
func (m *Monitor) Config() Config { return m.config.Clone() }

// Pool returns the available spare replicas.
func (m *Monitor) Pool() []Replica { return append([]Replica(nil), m.pool...) }

// Quarantine returns the quarantined replicas.
func (m *Monitor) Quarantine() []Replica { return append([]Replica(nil), m.quarantine...) }

// Threshold returns the current risk threshold.
func (m *Monitor) Threshold() float64 { return m.cfg.Threshold }

// RaiseThreshold applies the paper's first administrator remediation for
// Algorithm 1's corner cases: increase the acceptable risk level.
func (m *Monitor) RaiseThreshold(to float64) error {
	if to < m.cfg.Threshold {
		return fmt.Errorf("core: new threshold %.2f below current %.2f", to, m.cfg.Threshold)
	}
	m.cfg.Threshold = to
	return nil
}

// ReleaseLeastVulnerable applies the paper's second administrator
// remediation: move the quarantined replica with the fewest unpatched
// vulnerabilities back to POOL even though it is not fully patched. It
// returns the released replica.
func (m *Monitor) ReleaseLeastVulnerable(now time.Time) (Replica, error) {
	if len(m.quarantine) == 0 {
		return Replica{}, fmt.Errorf("core: quarantine is empty")
	}
	best, bestCount := 0, int(^uint(0)>>1)
	for i, r := range m.quarantine {
		if c := m.engine.UnpatchedCount(r, now); c < bestCount {
			best, bestCount = i, c
		}
	}
	r := m.quarantine[best]
	m.quarantine = append(m.quarantine[:best], m.quarantine[best+1:]...)
	m.pool = append(m.pool, r)
	return r, nil
}

// RevertSwap undoes the set mutations of a reconfiguration decision whose
// execution failed on the execution plane: the removed replica rejoins
// CONFIG in place of the failed joiner, the joiner returns to POOL, and
// the removed replica leaves QUARANTINE (or POOL, if it was already
// requeued as fully patched in the same round). The next Monitor round
// then sees exactly the pre-swap lifecycle state and is free to pick a
// different candidate.
func (m *Monitor) RevertSwap(removed, added Replica) error {
	if !m.config.Contains(added.ID) {
		return fmt.Errorf("core: revert: %s is not in the running configuration", added.ID)
	}
	if m.config.Contains(removed.ID) {
		return fmt.Errorf("core: revert: %s is already in the running configuration", removed.ID)
	}
	dropFrom := func(set *[]Replica, id string) bool {
		for i, r := range *set {
			if r.ID == id {
				*set = append((*set)[:i], (*set)[i+1:]...)
				return true
			}
		}
		return false
	}
	if !dropFrom(&m.quarantine, removed.ID) && !dropFrom(&m.pool, removed.ID) {
		return fmt.Errorf("core: revert: %s is in neither quarantine nor pool", removed.ID)
	}
	for i, r := range m.config {
		if r.ID == added.ID {
			m.config[i] = removed
			break
		}
	}
	m.pool = append(m.pool, added)
	return nil
}

// Monitor runs one round of Algorithm 1 at time now. It returns the
// decision taken; ErrPoolExhausted / ErrNoCandidate signal the corner
// cases in which reconfiguration could not proceed (the quarantine
// check still runs before those errors are returned, matching the
// algorithm's fall-through to lines 34–37).
func (m *Monitor) Monitor(now time.Time) (Decision, error) {
	d := Decision{Trigger: TriggerNone}
	d.RiskBefore = m.engine.Risk(m.config, now)

	var reconfigErr error
	if d.RiskBefore >= m.cfg.Threshold {
		// Lines 6–16: risk too high; try every replacement of any one
		// replica by any pool element.
		d.Trigger = TriggerRisk
		reconfigErr = m.replaceAny(now, &d)
	} else {
		// Lines 17–33: rotate out the replica with the worst average
		// vulnerability score, if that average reaches HIGH.
		toRemove, found := m.worstReplica(now)
		if found {
			d.Trigger = TriggerHighAverage
			reconfigErr = m.replaceOne(now, toRemove, &d)
		}
	}

	// Lines 34–37: fully patched quarantined replicas re-join the pool.
	d.Requeued = m.requeuePatched(now)
	if d.Reconfigured {
		d.RiskAfter = m.engine.Risk(m.config, now)
	} else {
		d.RiskAfter = d.RiskBefore
	}
	return d, reconfigErr
}

// replaceAny implements lines 7–16: every COMB of n-1 running replicas
// combined with every pool element is evaluated; an acceptable candidate
// is picked uniformly at random.
func (m *Monitor) replaceAny(now time.Time, d *Decision) error {
	if len(m.pool) == 0 {
		return ErrPoolExhausted
	}
	type candidate struct {
		config Config
		risk   float64
	}
	var candidates []candidate
	combs := m.combinations()
	for _, r := range m.pool {
		for _, comb := range combs {
			next := append(comb.Clone(), r)
			risk := m.engine.Risk(next, now)
			if risk <= m.cfg.Threshold {
				candidates = append(candidates, candidate{next, risk})
			}
		}
	}
	if len(candidates) == 0 {
		return ErrNoCandidate
	}
	d.Candidates = len(candidates)
	pick := candidates[m.cfg.Rand.Intn(len(candidates))]
	m.updateSets(pick.config, d)
	return nil
}

// replaceOne implements lines 25–33: only toRemove leaves; every pool
// element is tried in its place.
func (m *Monitor) replaceOne(now time.Time, toRemove Replica, d *Decision) error {
	if len(m.pool) == 0 {
		return ErrPoolExhausted
	}
	type candidate struct {
		config Config
		risk   float64
	}
	var candidates []candidate
	base := make(Config, 0, len(m.config)-1)
	for _, r := range m.config {
		if r.ID != toRemove.ID {
			base = append(base, r)
		}
	}
	for _, r := range m.pool {
		next := append(base.Clone(), r)
		risk := m.engine.Risk(next, now)
		if risk <= m.cfg.Threshold {
			candidates = append(candidates, candidate{next, risk})
		}
	}
	if len(candidates) == 0 {
		return ErrNoCandidate
	}
	d.Candidates = len(candidates)
	pick := candidates[m.cfg.Rand.Intn(len(candidates))]
	m.updateSets(pick.config, d)
	return nil
}

// worstReplica implements lines 18–24: the running replica with the
// highest average vulnerability score, if that average is >= HIGH.
func (m *Monitor) worstReplica(now time.Time) (Replica, bool) {
	var worst Replica
	maxScore := m.cfg.HighScore
	found := false
	for _, r := range m.config {
		if avg := m.engine.AverageScore(r, now); avg >= maxScore {
			worst, maxScore, found = r, avg, true
		}
	}
	return worst, found
}

// combinations returns all (n choose n-1) subsets of the running
// configuration (Algorithm 1 line 8).
func (m *Monitor) combinations() []Config {
	n := len(m.config)
	out := make([]Config, 0, n)
	for skip := 0; skip < n; skip++ {
		comb := make(Config, 0, n-1)
		for i, r := range m.config {
			if i != skip {
				comb = append(comb, r)
			}
		}
		out = append(out, comb)
	}
	return out
}

// updateSets implements lines 38–42: quarantine the replaced replica,
// install the new configuration, and remove the joiner from the pool.
func (m *Monitor) updateSets(next Config, d *Decision) {
	for _, r := range m.config {
		if !next.Contains(r.ID) {
			d.Removed = r
			m.quarantine = append(m.quarantine, r)
		}
	}
	for _, r := range next {
		if !m.config.Contains(r.ID) {
			d.Added = r
			for i, p := range m.pool {
				if p.ID == r.ID {
					m.pool = append(m.pool[:i], m.pool[i+1:]...)
					break
				}
			}
		}
	}
	m.config = next.Clone()
	d.Reconfigured = true
}

// requeuePatched implements lines 34–37.
func (m *Monitor) requeuePatched(now time.Time) []Replica {
	var requeued []Replica
	var remaining []Replica
	for _, r := range m.quarantine {
		if m.engine.FullyPatched(r, now) {
			requeued = append(requeued, r)
			m.pool = append(m.pool, r)
		} else {
			remaining = append(remaining, r)
		}
	}
	m.quarantine = remaining
	sort.Slice(requeued, func(i, j int) bool { return requeued[i].ID < requeued[j].ID })
	return requeued
}
