// Package ltu implements the Local Trusted Unit of the Lazarus
// architecture (paper §3, §5.1): a small trusted component on each
// execution-plane node that accepts only authenticated power on/off
// commands from the controller and drives the node's replica lifecycle.
// The LTU is the root of trust for proactive recovery — a compromised
// replica cannot forge the commands that would keep itself alive.
package ltu

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// Action is a command verb.
type Action int

// Actions.
const (
	// ActionPowerOn provisions and starts a replica with the given OS
	// image.
	ActionPowerOn Action = iota + 1
	// ActionPowerOff stops and wipes the node's replica.
	ActionPowerOff
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionPowerOn:
		return "power-on"
	case ActionPowerOff:
		return "power-off"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Command is one controller order to an LTU.
type Command struct {
	// Seq is a strictly increasing counter (replay protection).
	Seq uint64
	// Action is the verb.
	Action Action
	// OSID selects the OS image for ActionPowerOn.
	OSID string
	// Joining marks a power-on that must bootstrap via state transfer.
	Joining bool
}

// Errors returned by Execute.
var (
	// ErrBadMAC: the command authenticator did not verify.
	ErrBadMAC = errors.New("ltu: command failed authentication")
	// ErrReplay: the command sequence number was not fresh.
	ErrReplay = errors.New("ltu: replayed or stale command")
)

// Driver is the node-local actuator the LTU controls (the deploy
// manager's node in this codebase; a hypervisor or Razor-style bare-metal
// provisioner in a full deployment).
type Driver interface {
	// PowerOn provisions and starts a replica running the OS image.
	PowerOn(osID string, joining bool) error
	// PowerOff stops the replica and releases the node.
	PowerOff() error
}

// Seal authenticates a command with the controller secret, producing the
// wire form the LTU accepts.
func Seal(secret []byte, cmd Command) ([]byte, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("ltu: empty secret")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cmd); err != nil {
		return nil, fmt.Errorf("ltu: encoding command: %w", err)
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(buf.Bytes())
	return append(buf.Bytes(), mac.Sum(nil)...), nil
}

// open verifies and decodes a sealed command.
func open(secret, sealed []byte) (Command, error) {
	if len(sealed) <= sha256.Size {
		return Command{}, ErrBadMAC
	}
	body, sum := sealed[:len(sealed)-sha256.Size], sealed[len(sealed)-sha256.Size:]
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), sum) {
		return Command{}, ErrBadMAC
	}
	var cmd Command
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&cmd); err != nil {
		return Command{}, fmt.Errorf("ltu: decoding command: %w", err)
	}
	return cmd, nil
}

// DefaultHistoryCap bounds the accepted-command history. A long-running
// controller issues an unbounded stream of power commands; the LTU keeps
// only the most recent window (a ring), enough for audit and debugging.
const DefaultHistoryCap = 64

// Injector is a fault hook consulted after a command authenticates but
// before it reaches the driver. It may stall (sleep) to simulate a slow
// control channel, and a non-nil error aborts the command — the sequence
// number is still consumed, exactly like a real LTU that acknowledged an
// order and then failed to carry it out.
type Injector func(Command) error

// LTU is one node's trusted unit.
type LTU struct {
	secret []byte
	driver Driver

	mu       sync.Mutex
	lastSeq  uint64
	history  []Command // ring of the last histCap accepted commands
	histNext int       // next write position in history
	histLen  int       // filled entries (<= histCap)
	histCap  int
	injector Injector
	accepted uint64
}

// New builds an LTU bound to its node driver.
func New(secret []byte, driver Driver) (*LTU, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("ltu: empty secret")
	}
	if driver == nil {
		return nil, fmt.Errorf("ltu: nil driver")
	}
	return &LTU{secret: secret, driver: driver, histCap: DefaultHistoryCap}, nil
}

// SetHistoryCap resizes the command-history ring (minimum 1); existing
// entries are discarded.
func (l *LTU) SetHistoryCap(k int) {
	if k < 1 {
		k = 1
	}
	l.mu.Lock()
	l.history, l.histNext, l.histLen, l.histCap = nil, 0, 0, k
	l.mu.Unlock()
}

// SetInjector installs (or, with nil, clears) the fault hook.
func (l *LTU) SetInjector(f Injector) {
	l.mu.Lock()
	l.injector = f
	l.mu.Unlock()
}

// Execute verifies a sealed command and applies it to the node. Commands
// must arrive with strictly increasing sequence numbers.
func (l *LTU) Execute(sealed []byte) error {
	cmd, err := open(l.secret, sealed)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if cmd.Seq <= l.lastSeq {
		l.mu.Unlock()
		return fmt.Errorf("%w: seq %d <= %d", ErrReplay, cmd.Seq, l.lastSeq)
	}
	l.lastSeq = cmd.Seq
	l.recordLocked(cmd)
	inject := l.injector
	l.mu.Unlock()

	if inject != nil {
		if err := inject(cmd); err != nil {
			return fmt.Errorf("ltu: %v: %w", cmd.Action, err)
		}
	}
	switch cmd.Action {
	case ActionPowerOn:
		if err := l.driver.PowerOn(cmd.OSID, cmd.Joining); err != nil {
			return fmt.Errorf("ltu: power-on %s: %w", cmd.OSID, err)
		}
		return nil
	case ActionPowerOff:
		if err := l.driver.PowerOff(); err != nil {
			return fmt.Errorf("ltu: power-off: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("ltu: unknown action %v", cmd.Action)
	}
}

// recordLocked appends to the history ring, overwriting the oldest entry
// once the ring is full.
func (l *LTU) recordLocked(cmd Command) {
	l.accepted++
	if l.history == nil {
		l.history = make([]Command, l.histCap)
	}
	l.history[l.histNext] = cmd
	l.histNext = (l.histNext + 1) % l.histCap
	if l.histLen < l.histCap {
		l.histLen++
	}
}

// LastSeq returns the highest command sequence number the LTU has
// accepted. A recovering controller probes this to resume its command
// counter above anything its predecessor issued (the LTU rejects
// non-increasing sequence numbers as replays).
func (l *LTU) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Accepted returns how many commands the LTU has accepted in total
// (including any that have aged out of the bounded history).
func (l *LTU) Accepted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// History returns the most recently accepted commands, oldest first. At
// most the configured history cap (DefaultHistoryCap unless resized) is
// retained.
func (l *LTU) History() []Command {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Command, 0, l.histLen)
	start := l.histNext - l.histLen
	if start < 0 {
		start += l.histCap
	}
	for i := 0; i < l.histLen; i++ {
		out = append(out, l.history[(start+i)%l.histCap])
	}
	return out
}
