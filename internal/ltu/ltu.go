// Package ltu implements the Local Trusted Unit of the Lazarus
// architecture (paper §3, §5.1): a small trusted component on each
// execution-plane node that accepts only authenticated power on/off
// commands from the controller and drives the node's replica lifecycle.
// The LTU is the root of trust for proactive recovery — a compromised
// replica cannot forge the commands that would keep itself alive.
package ltu

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// Action is a command verb.
type Action int

// Actions.
const (
	// ActionPowerOn provisions and starts a replica with the given OS
	// image.
	ActionPowerOn Action = iota + 1
	// ActionPowerOff stops and wipes the node's replica.
	ActionPowerOff
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionPowerOn:
		return "power-on"
	case ActionPowerOff:
		return "power-off"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Command is one controller order to an LTU.
type Command struct {
	// Seq is a strictly increasing counter (replay protection).
	Seq uint64
	// Action is the verb.
	Action Action
	// OSID selects the OS image for ActionPowerOn.
	OSID string
	// Joining marks a power-on that must bootstrap via state transfer.
	Joining bool
}

// Errors returned by Execute.
var (
	// ErrBadMAC: the command authenticator did not verify.
	ErrBadMAC = errors.New("ltu: command failed authentication")
	// ErrReplay: the command sequence number was not fresh.
	ErrReplay = errors.New("ltu: replayed or stale command")
)

// Driver is the node-local actuator the LTU controls (the deploy
// manager's node in this codebase; a hypervisor or Razor-style bare-metal
// provisioner in a full deployment).
type Driver interface {
	// PowerOn provisions and starts a replica running the OS image.
	PowerOn(osID string, joining bool) error
	// PowerOff stops the replica and releases the node.
	PowerOff() error
}

// Seal authenticates a command with the controller secret, producing the
// wire form the LTU accepts.
func Seal(secret []byte, cmd Command) ([]byte, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("ltu: empty secret")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cmd); err != nil {
		return nil, fmt.Errorf("ltu: encoding command: %w", err)
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(buf.Bytes())
	return append(buf.Bytes(), mac.Sum(nil)...), nil
}

// open verifies and decodes a sealed command.
func open(secret, sealed []byte) (Command, error) {
	if len(sealed) <= sha256.Size {
		return Command{}, ErrBadMAC
	}
	body, sum := sealed[:len(sealed)-sha256.Size], sealed[len(sealed)-sha256.Size:]
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), sum) {
		return Command{}, ErrBadMAC
	}
	var cmd Command
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&cmd); err != nil {
		return Command{}, fmt.Errorf("ltu: decoding command: %w", err)
	}
	return cmd, nil
}

// LTU is one node's trusted unit.
type LTU struct {
	secret []byte
	driver Driver

	mu      sync.Mutex
	lastSeq uint64
	history []Command
}

// New builds an LTU bound to its node driver.
func New(secret []byte, driver Driver) (*LTU, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("ltu: empty secret")
	}
	if driver == nil {
		return nil, fmt.Errorf("ltu: nil driver")
	}
	return &LTU{secret: secret, driver: driver}, nil
}

// Execute verifies a sealed command and applies it to the node. Commands
// must arrive with strictly increasing sequence numbers.
func (l *LTU) Execute(sealed []byte) error {
	cmd, err := open(l.secret, sealed)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if cmd.Seq <= l.lastSeq {
		l.mu.Unlock()
		return fmt.Errorf("%w: seq %d <= %d", ErrReplay, cmd.Seq, l.lastSeq)
	}
	l.lastSeq = cmd.Seq
	l.history = append(l.history, cmd)
	l.mu.Unlock()

	switch cmd.Action {
	case ActionPowerOn:
		if err := l.driver.PowerOn(cmd.OSID, cmd.Joining); err != nil {
			return fmt.Errorf("ltu: power-on %s: %w", cmd.OSID, err)
		}
		return nil
	case ActionPowerOff:
		if err := l.driver.PowerOff(); err != nil {
			return fmt.Errorf("ltu: power-off: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("ltu: unknown action %v", cmd.Action)
	}
}

// History returns the accepted commands, oldest first.
func (l *LTU) History() []Command {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Command(nil), l.history...)
}
