package ltu

import (
	"errors"
	"testing"
)

// fakeDriver records LTU actions.
type fakeDriver struct {
	onCalls  []string
	offCalls int
	failOn   bool
}

func (d *fakeDriver) PowerOn(osID string, joining bool) error {
	if d.failOn {
		return errors.New("boot failure")
	}
	d.onCalls = append(d.onCalls, osID)
	return nil
}

func (d *fakeDriver) PowerOff() error {
	d.offCalls++
	return nil
}

func seal(t *testing.T, secret []byte, cmd Command) []byte {
	t.Helper()
	sealed, err := Seal(secret, cmd)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

func TestExecutePowerCycle(t *testing.T) {
	secret := []byte("ctrl-secret")
	d := &fakeDriver{}
	l, err := New(secret, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Execute(seal(t, secret, Command{Seq: 1, Action: ActionPowerOn, OSID: "UB16"})); err != nil {
		t.Fatal(err)
	}
	if err := l.Execute(seal(t, secret, Command{Seq: 2, Action: ActionPowerOff})); err != nil {
		t.Fatal(err)
	}
	if len(d.onCalls) != 1 || d.onCalls[0] != "UB16" || d.offCalls != 1 {
		t.Errorf("driver calls: on=%v off=%d", d.onCalls, d.offCalls)
	}
	hist := l.History()
	if len(hist) != 2 || hist[0].Action != ActionPowerOn || hist[1].Action != ActionPowerOff {
		t.Errorf("history = %+v", hist)
	}
}

func TestRejectsWrongSecret(t *testing.T) {
	d := &fakeDriver{}
	l, _ := New([]byte("right"), d)
	sealed := seal(t, []byte("wrong"), Command{Seq: 1, Action: ActionPowerOn, OSID: "UB16"})
	if err := l.Execute(sealed); !errors.Is(err, ErrBadMAC) {
		t.Errorf("err = %v, want ErrBadMAC", err)
	}
	if len(d.onCalls) != 0 {
		t.Error("driver acted on unauthenticated command")
	}
}

func TestRejectsTamperedCommand(t *testing.T) {
	secret := []byte("s")
	d := &fakeDriver{}
	l, _ := New(secret, d)
	sealed := seal(t, secret, Command{Seq: 1, Action: ActionPowerOff})
	sealed[2] ^= 0xFF
	if err := l.Execute(sealed); !errors.Is(err, ErrBadMAC) {
		t.Errorf("err = %v, want ErrBadMAC", err)
	}
	if err := l.Execute([]byte("short")); !errors.Is(err, ErrBadMAC) {
		t.Errorf("short input err = %v", err)
	}
}

func TestRejectsReplay(t *testing.T) {
	secret := []byte("s")
	d := &fakeDriver{}
	l, _ := New(secret, d)
	sealed := seal(t, secret, Command{Seq: 5, Action: ActionPowerOn, OSID: "DE8"})
	if err := l.Execute(sealed); err != nil {
		t.Fatal(err)
	}
	// Exact replay.
	if err := l.Execute(sealed); !errors.Is(err, ErrReplay) {
		t.Errorf("replay err = %v", err)
	}
	// Stale (lower) sequence number.
	stale := seal(t, secret, Command{Seq: 3, Action: ActionPowerOff})
	if err := l.Execute(stale); !errors.Is(err, ErrReplay) {
		t.Errorf("stale err = %v", err)
	}
	if len(d.onCalls) != 1 || d.offCalls != 0 {
		t.Errorf("driver state after replays: on=%v off=%d", d.onCalls, d.offCalls)
	}
}

func TestDriverErrorsPropagate(t *testing.T) {
	secret := []byte("s")
	l, _ := New(secret, &fakeDriver{failOn: true})
	err := l.Execute(seal(t, secret, Command{Seq: 1, Action: ActionPowerOn, OSID: "UB16"}))
	if err == nil {
		t.Error("driver failure swallowed")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, &fakeDriver{}); err == nil {
		t.Error("empty secret accepted")
	}
	if _, err := New([]byte("s"), nil); err == nil {
		t.Error("nil driver accepted")
	}
	if _, err := Seal(nil, Command{}); err == nil {
		t.Error("Seal with empty secret accepted")
	}
}

func TestActionString(t *testing.T) {
	if ActionPowerOn.String() != "power-on" || ActionPowerOff.String() != "power-off" {
		t.Error("action names wrong")
	}
	if Action(9).String() != "Action(9)" {
		t.Error("unknown action name wrong")
	}
}

func TestHistoryRingBounded(t *testing.T) {
	secret := []byte("s")
	l, _ := New(secret, &fakeDriver{})
	l.SetHistoryCap(5)
	for seq := uint64(1); seq <= 12; seq++ {
		if err := l.Execute(seal(t, secret, Command{Seq: seq, Action: ActionPowerOn, OSID: "UB16"})); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Accepted(); got != 12 {
		t.Errorf("accepted = %d, want 12", got)
	}
	hist := l.History()
	if len(hist) != 5 {
		t.Fatalf("history holds %d entries, want 5", len(hist))
	}
	// Oldest-first window of the most recent commands: seqs 8..12.
	for i, cmd := range hist {
		if want := uint64(8 + i); cmd.Seq != want {
			t.Errorf("history[%d].Seq = %d, want %d", i, cmd.Seq, want)
		}
	}
}

func TestDefaultHistoryCap(t *testing.T) {
	secret := []byte("s")
	l, _ := New(secret, &fakeDriver{})
	for seq := uint64(1); seq <= DefaultHistoryCap+10; seq++ {
		if err := l.Execute(seal(t, secret, Command{Seq: seq, Action: ActionPowerOff})); err != nil {
			t.Fatal(err)
		}
	}
	if hist := l.History(); len(hist) != DefaultHistoryCap {
		t.Errorf("history holds %d entries, want %d", len(hist), DefaultHistoryCap)
	}
	if got := l.Accepted(); got != DefaultHistoryCap+10 {
		t.Errorf("accepted = %d", got)
	}
}

func TestInjectorAbortsAfterSeqConsumed(t *testing.T) {
	secret := []byte("s")
	d := &fakeDriver{}
	l, _ := New(secret, d)
	boom := errors.New("control channel down")
	l.SetInjector(func(Command) error { return boom })

	sealed := seal(t, secret, Command{Seq: 1, Action: ActionPowerOn, OSID: "UB16"})
	if err := l.Execute(sealed); !errors.Is(err, boom) {
		t.Errorf("err = %v, want injected fault", err)
	}
	if len(d.onCalls) != 0 {
		t.Error("driver acted despite injected fault")
	}
	// The sequence number was consumed — like a real LTU that acknowledged
	// the order and then failed to carry it out — so a retry of the same
	// sealed command is a replay.
	if err := l.Execute(sealed); !errors.Is(err, ErrReplay) {
		t.Errorf("retry err = %v, want ErrReplay", err)
	}
	// Clearing the injector restores service at the next sequence number.
	l.SetInjector(nil)
	if err := l.Execute(seal(t, secret, Command{Seq: 2, Action: ActionPowerOn, OSID: "UB16"})); err != nil {
		t.Fatal(err)
	}
	if len(d.onCalls) != 1 {
		t.Errorf("driver calls after recovery: %v", d.onCalls)
	}
}
