package vulndb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lazarus/internal/osint"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func rec(id string, pub time.Time, cvss float64, products ...string) *osint.Vulnerability {
	return &osint.Vulnerability{
		ID:          id,
		Description: "description of " + id,
		Products:    products,
		Published:   pub,
		CVSS:        cvss,
	}
}

func seeded(t *testing.T) *Store {
	t.Helper()
	s := New()
	err := s.UpsertAll([]*osint.Vulnerability{
		rec("CVE-2018-8897", day(2018, 5, 8), 7.8, "canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0"),
		rec("CVE-2018-1111", day(2018, 5, 17), 7.5, "redhat:enterprise_linux:7.0", "fedoraproject:fedora:26"),
		rec("CVE-2017-0144", day(2017, 3, 16), 8.1, "microsoft:windows_10:-"),
		rec("CVE-2016-7180", day(2016, 9, 8), 2.9, "oracle:solaris:11.3"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUpsertMerges(t *testing.T) {
	s := seeded(t)
	v := rec("CVE-2018-8897", day(2018, 5, 8), 7.8, "oracle:solaris:11.3")
	v.PatchedAt = day(2018, 5, 9)
	if err := s.Upsert(v); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("CVE-2018-8897")
	if !ok {
		t.Fatal("record lost")
	}
	if len(got.Products) != 3 || !got.PatchedBy(day(2018, 5, 9)) {
		t.Errorf("merge failed: %+v", got)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestUpsertRejectsInvalid(t *testing.T) {
	s := New()
	if err := s.Upsert(&osint.Vulnerability{ID: "nope"}); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := seeded(t)
	got, _ := s.Get("CVE-2017-0144")
	got.Products[0] = "mutated"
	again, _ := s.Get("CVE-2017-0144")
	if again.Products[0] == "mutated" {
		t.Error("Get exposes internal record")
	}
	if _, ok := s.Get("CVE-1999-1"); ok {
		t.Error("Get found nonexistent record")
	}
}

func TestSelect(t *testing.T) {
	s := seeded(t)
	cases := []struct {
		name string
		q    Query
		want []string
	}{
		{"all", Query{}, []string{"CVE-2016-7180", "CVE-2017-0144", "CVE-2018-1111", "CVE-2018-8897"}},
		{"byProduct", Query{Product: "debian:debian_linux:8.0"}, []string{"CVE-2018-8897"}},
		{"byProducts", Query{Products: []string{"microsoft:windows_10:-", "oracle:solaris:11.3"}},
			[]string{"CVE-2016-7180", "CVE-2017-0144"}},
		{"byWindow", Query{PublishedFrom: day(2018, 1, 1), PublishedTo: day(2018, 5, 17)},
			[]string{"CVE-2018-8897"}},
		{"byCVSS", Query{MinCVSS: 8.0}, []string{"CVE-2017-0144"}},
		{"combined", Query{Products: []string{"canonical:ubuntu_linux:16.04"}, MinCVSS: 9}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := s.Select(c.q)
			if len(got) != len(c.want) {
				t.Fatalf("Select = %d records, want %d", len(got), len(c.want))
			}
			for i, w := range c.want {
				if got[i].ID != w {
					t.Errorf("Select[%d] = %s, want %s", i, got[i].ID, w)
				}
			}
		})
	}
}

func TestSharedBetween(t *testing.T) {
	s := seeded(t)
	shared := s.SharedBetween("canonical:ubuntu_linux:16.04", "debian:debian_linux:8.0")
	if len(shared) != 1 || shared[0].ID != "CVE-2018-8897" {
		t.Errorf("SharedBetween = %v", shared)
	}
	if got := s.SharedBetween("canonical:ubuntu_linux:16.04", "oracle:solaris:11.3"); len(got) != 0 {
		t.Errorf("unexpected shared vulns: %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := seeded(t)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), s.Len())
	}
	a, b := s.All(), loaded.All()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].CVSS != b[i].CVSS {
			t.Errorf("record %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestZeroValueStoreUsable(t *testing.T) {
	var s Store
	if err := s.Upsert(rec("CVE-2018-1", day(2018, 1, 1), 5, "a:b:c")); err != nil {
		t.Fatalf("zero-value store Upsert: %v", err)
	}
	if s.Len() != 1 {
		t.Error("zero-value store lost record")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("CVE-2018-%d", r.Intn(500)+1)
				switch r.Intn(3) {
				case 0:
					_ = s.Upsert(rec(id, day(2018, 1, 1), 5, "a:b:c"))
				case 1:
					s.Get(id)
				default:
					s.Select(Query{Product: "a:b:c", MinCVSS: 1})
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("no records after concurrent writes")
	}
}

// TestAllSorted is a property test: All() is always ordered by CVE id.
func TestAllSorted(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("CVE-%d-%d", 2014+r.Intn(5), r.Intn(100000)+1)
		_ = s.Upsert(rec(id, day(2018, 1, 1), 5, "a:b:c"))
	}
	all := s.All()
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1].ID, all[i].ID
		if prev == cur {
			t.Fatalf("duplicate id %s in All()", cur)
		}
	}
}
