// Package vulndb is the embedded vulnerability store backing the Lazarus
// Data manager. The paper's prototype keeps collected OSINT data in a
// MySQL database (paper §5.1); this store offers the same queries (by CVE
// id, by affected product, by publication window) behind a mutex-guarded
// in-memory index with optional JSON persistence, so no external daemon is
// required.
package vulndb

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"lazarus/internal/osint"
)

// Store is a concurrency-safe vulnerability database.
//
// The zero value is ready to use.
type Store struct {
	mu   sync.RWMutex
	byID map[string]*osint.Vulnerability
}

// New returns an empty store.
func New() *Store {
	return &Store{byID: make(map[string]*osint.Vulnerability)}
}

// Upsert inserts a record or merges it into the existing record with the
// same CVE id (union of products, earliest dates). The store keeps its own
// copy; callers may mutate their record afterwards.
func (s *Store) Upsert(v *osint.Vulnerability) error {
	if err := v.Validate(); err != nil {
		return fmt.Errorf("vulndb: rejecting record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byID == nil {
		s.byID = make(map[string]*osint.Vulnerability)
	}
	if existing, ok := s.byID[v.ID]; ok {
		return existing.Merge(v)
	}
	s.byID[v.ID] = v.Clone()
	return nil
}

// UpsertAll inserts every record, stopping at the first error.
func (s *Store) UpsertAll(vs []*osint.Vulnerability) error {
	for _, v := range vs {
		if err := s.Upsert(v); err != nil {
			return err
		}
	}
	return nil
}

// Get returns a copy of the record with the given CVE id.
func (s *Store) Get(id string) (*osint.Vulnerability, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return v.Clone(), true
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// All returns copies of every record, ordered by CVE id.
func (s *Store) All() []*osint.Vulnerability {
	s.mu.RLock()
	out := make([]*osint.Vulnerability, 0, len(s.byID))
	for _, v := range s.byID {
		out = append(out, v.Clone())
	}
	s.mu.RUnlock()
	osint.SortByID(out)
	return out
}

// Query describes a store lookup; zero fields are unconstrained.
type Query struct {
	// Product restricts results to vulnerabilities affecting this CPE
	// product.
	Product string
	// Products restricts results to vulnerabilities affecting at least
	// one of these products (ignored when Product is set).
	Products []string
	// PublishedFrom/PublishedTo bound the publication date (inclusive
	// from, exclusive to).
	PublishedFrom, PublishedTo time.Time
	// MinCVSS keeps only records with a CVSS base score >= this value.
	MinCVSS float64
}

// Select returns copies of the records matching the query, ordered by CVE
// id.
func (s *Store) Select(q Query) []*osint.Vulnerability {
	s.mu.RLock()
	var out []*osint.Vulnerability
	for _, v := range s.byID {
		if q.matches(v) {
			out = append(out, v.Clone())
		}
	}
	s.mu.RUnlock()
	osint.SortByID(out)
	return out
}

func (q Query) matches(v *osint.Vulnerability) bool {
	if q.Product != "" && !v.Affects(q.Product) {
		return false
	}
	if q.Product == "" && len(q.Products) > 0 {
		found := false
		for _, p := range q.Products {
			if v.Affects(p) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if !q.PublishedFrom.IsZero() && v.Published.Before(q.PublishedFrom) {
		return false
	}
	if !q.PublishedTo.IsZero() && !v.Published.Before(q.PublishedTo) {
		return false
	}
	if q.MinCVSS > 0 && v.CVSS < q.MinCVSS {
		return false
	}
	return true
}

// SharedBetween returns the vulnerabilities that NVD reports as affecting
// both products — the direct (non-clustered) component of the paper's
// V(ri, rj) set (§4.3).
func (s *Store) SharedBetween(productA, productB string) []*osint.Vulnerability {
	s.mu.RLock()
	var out []*osint.Vulnerability
	for _, v := range s.byID {
		if v.Affects(productA) && v.Affects(productB) {
			out = append(out, v.Clone())
		}
	}
	s.mu.RUnlock()
	osint.SortByID(out)
	return out
}

// persistedStore is the JSON document written by Save.
type persistedStore struct {
	SavedAt time.Time              `json:"saved_at"`
	Records []*osint.Vulnerability `json:"records"`
}

// Save writes the store contents to path as JSON.
func (s *Store) Save(path string) error {
	doc := persistedStore{SavedAt: time.Now().UTC(), Records: s.All()}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("vulndb: marshaling store: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("vulndb: writing %s: %w", path, err)
	}
	return nil
}

// Load reads a store previously written by Save.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("vulndb: reading %s: %w", path, err)
	}
	var doc persistedStore
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("vulndb: parsing %s: %w", path, err)
	}
	s := New()
	if err := s.UpsertAll(doc.Records); err != nil {
		return nil, err
	}
	return s, nil
}
