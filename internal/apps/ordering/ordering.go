// Package ordering reimplements the BFT ordering service for a
// Hyperledger-Fabric-style permissioned blockchain (paper §7.4, citing
// Sousa et al., DSN 2018): clients submit transactions, the BFT-replicated
// state machine orders and groups them into blocks of a configured size,
// and each block is chained to its predecessor by hash, forming the
// ledger. Block receivers fetch signed blocks and verify the chain.
package ordering

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"sync"

	"lazarus/internal/bft"
)

// Transaction is one opaque client transaction.
type Transaction struct {
	// Payload is the serialized transaction content.
	Payload []byte
}

// Block is one ledger entry: an ordered group of transactions chained to
// the previous block.
type Block struct {
	// Number is the block height, starting at 1.
	Number uint64
	// PrevHash chains to the previous block (zero for block 1).
	PrevHash [sha256.Size]byte
	// Transactions are the block contents, in ordered sequence.
	Transactions []Transaction
}

// Hash computes the block's chaining hash.
func (b *Block) Hash() [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "block|%d|", b.Number)
	h.Write(b.PrevHash[:])
	for _, tx := range b.Transactions {
		sum := sha256.Sum256(tx.Payload)
		h.Write(sum[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// VerifyChain checks that blocks form a correctly chained ledger segment.
func VerifyChain(blocks []*Block) error {
	for i, b := range blocks {
		if i == 0 {
			continue
		}
		prev := blocks[i-1]
		if b.Number != prev.Number+1 {
			return fmt.Errorf("ordering: block %d follows block %d", b.Number, prev.Number)
		}
		if b.PrevHash != prev.Hash() {
			return fmt.Errorf("ordering: block %d prev-hash mismatch", b.Number)
		}
	}
	return nil
}

type opKind byte

const (
	opSubmit opKind = iota + 1
	opFetch
	opHeight
)

type orderOp struct {
	Kind opKind
	Tx   Transaction
	From uint64 // opFetch: first block number wanted
}

func encodeOp(op orderOp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		return nil, fmt.Errorf("ordering: encoding op: %w", err)
	}
	return buf.Bytes(), nil
}

// SubmitOp serializes a transaction submission.
func SubmitOp(tx Transaction) ([]byte, error) {
	return encodeOp(orderOp{Kind: opSubmit, Tx: tx})
}

// FetchOp serializes a block fetch from the given height.
func FetchOp(from uint64) ([]byte, error) {
	return encodeOp(orderOp{Kind: opFetch, From: from})
}

// HeightOp serializes a chain-height query.
func HeightOp() ([]byte, error) {
	return encodeOp(orderOp{Kind: opHeight})
}

// Service is the replicated ordering state machine. It implements
// bft.Application.
type Service struct {
	blockSize int

	mu      sync.Mutex
	pending []Transaction
	chain   []*Block
}

// NewService builds an ordering service cutting blocks of blockSize
// transactions (the paper's evaluation uses 10).
func NewService(blockSize int) (*Service, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("ordering: block size %d must be positive", blockSize)
	}
	return &Service{blockSize: blockSize}, nil
}

var _ bft.Application = (*Service)(nil)

// Execute implements bft.Application.
func (s *Service) Execute(payload []byte) []byte {
	var op orderOp
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
		return []byte("ERR " + err.Error())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op.Kind {
	case opSubmit:
		s.pending = append(s.pending, op.Tx)
		var cut uint64
		if len(s.pending) >= s.blockSize {
			cut = s.cutBlockLocked()
		}
		return []byte(fmt.Sprintf("ACK pending=%d cut=%d", len(s.pending), cut))
	case opFetch:
		return s.fetchLocked(op.From)
	case opHeight:
		return []byte(fmt.Sprintf("HEIGHT %d", len(s.chain)))
	default:
		return []byte(fmt.Sprintf("ERR unknown op %d", op.Kind))
	}
}

// cutBlockLocked forms the next block from pending transactions.
func (s *Service) cutBlockLocked() uint64 {
	b := &Block{
		Number:       uint64(len(s.chain)) + 1,
		Transactions: s.pending[:s.blockSize:s.blockSize],
	}
	s.pending = append([]Transaction(nil), s.pending[s.blockSize:]...)
	if len(s.chain) > 0 {
		b.PrevHash = s.chain[len(s.chain)-1].Hash()
	}
	s.chain = append(s.chain, b)
	return b.Number
}

func (s *Service) fetchLocked(from uint64) []byte {
	if from == 0 {
		from = 1
	}
	if from > uint64(len(s.chain)) {
		return []byte("NONE")
	}
	blocks := s.chain[from-1:]
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blocks); err != nil {
		return []byte("ERR " + err.Error())
	}
	return append([]byte("BLKS"), buf.Bytes()...)
}

// DecodeBlocks parses a fetch result.
func DecodeBlocks(result []byte) ([]*Block, error) {
	if bytes.Equal(result, []byte("NONE")) {
		return nil, nil
	}
	if !bytes.HasPrefix(result, []byte("BLKS")) {
		return nil, fmt.Errorf("ordering: result %q carries no blocks", result)
	}
	var blocks []*Block
	if err := gob.NewDecoder(bytes.NewReader(result[4:])).Decode(&blocks); err != nil {
		return nil, fmt.Errorf("ordering: decoding blocks: %w", err)
	}
	return blocks, nil
}

// ledgerSnapshot serializes the whole service state.
type ledgerSnapshot struct {
	BlockSize int
	Pending   []Transaction
	Chain     []*Block
}

// Snapshot implements bft.Application.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ledgerSnapshot{
		BlockSize: s.blockSize,
		Pending:   s.pending,
		Chain:     s.chain,
	})
	if err != nil {
		return nil, fmt.Errorf("ordering: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements bft.Application.
func (s *Service) Restore(snapshot []byte) error {
	var snap ledgerSnapshot
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&snap); err != nil {
		return fmt.Errorf("ordering: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blockSize = snap.BlockSize
	s.pending = snap.Pending
	s.chain = snap.Chain
	return nil
}

// Height reports the local chain height.
func (s *Service) Height() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chain)
}

// Chain returns a copy of the local chain.
func (s *Service) Chain() []*Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Block(nil), s.chain...)
}
