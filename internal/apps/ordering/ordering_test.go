package ordering

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/transport"
)

func submit(t *testing.T, s *Service, payload string) string {
	t.Helper()
	op, err := SubmitOp(Transaction{Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	return string(s.Execute(op))
}

func TestBlockCutting(t *testing.T) {
	s, err := NewService(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res := submit(t, s, fmt.Sprintf("tx%d", i))
		if !strings.Contains(res, "cut=0") {
			t.Errorf("tx%d cut a block early: %q", i, res)
		}
	}
	res := submit(t, s, "tx2")
	if !strings.Contains(res, "cut=1") {
		t.Errorf("third tx should cut block 1: %q", res)
	}
	if s.Height() != 1 {
		t.Errorf("height = %d, want 1", s.Height())
	}
	for i := 3; i < 6; i++ {
		submit(t, s, fmt.Sprintf("tx%d", i))
	}
	if s.Height() != 2 {
		t.Errorf("height = %d, want 2", s.Height())
	}
}

func TestChainVerification(t *testing.T) {
	s, _ := NewService(2)
	for i := 0; i < 8; i++ {
		submit(t, s, fmt.Sprintf("tx%d", i))
	}
	chain := s.Chain()
	if len(chain) != 4 {
		t.Fatalf("chain length %d, want 4", len(chain))
	}
	if err := VerifyChain(chain); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Tamper with a middle block.
	tampered := append([]*Block(nil), chain...)
	bad := *tampered[1]
	bad.Transactions = append([]Transaction(nil), bad.Transactions...)
	bad.Transactions[0].Payload = []byte("forged")
	tampered[1] = &bad
	if err := VerifyChain(tampered); err == nil {
		t.Error("tampered chain verified")
	}
	// Break numbering.
	gap := []*Block{chain[0], chain[2]}
	if err := VerifyChain(gap); err == nil {
		t.Error("chain with gap verified")
	}
}

func TestFetchAndHeight(t *testing.T) {
	s, _ := NewService(2)
	for i := 0; i < 6; i++ {
		submit(t, s, fmt.Sprintf("tx%d", i))
	}
	heightOp, _ := HeightOp()
	if got := string(s.Execute(heightOp)); got != "HEIGHT 3" {
		t.Errorf("height = %q", got)
	}
	fetchOp, _ := FetchOp(2)
	blocks, err := DecodeBlocks(s.Execute(fetchOp))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || blocks[0].Number != 2 {
		t.Errorf("fetched %d blocks from %d", len(blocks), blocks[0].Number)
	}
	if err := VerifyChain(blocks); err != nil {
		t.Errorf("fetched segment invalid: %v", err)
	}
	farOp, _ := FetchOp(100)
	if blocks, err := DecodeBlocks(s.Execute(farOp)); err != nil || blocks != nil {
		t.Errorf("fetch past end = %v, %v", blocks, err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s, _ := NewService(3)
	for i := 0; i < 7; i++ { // 2 blocks + 1 pending
		submit(t, s, fmt.Sprintf("tx%d", i))
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewService(99) // restore overrides block size
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.Height() != 2 {
		t.Fatalf("restored height %d, want 2", s2.Height())
	}
	// Two more txs cut the next block (1 pending + 2 = 3).
	submit(t, s2, "tx7")
	res := submit(t, s2, "tx8")
	if !strings.Contains(res, "cut=3") {
		t.Errorf("restored service block size wrong: %q", res)
	}
	if err := VerifyChain(s2.Chain()); err != nil {
		t.Errorf("restored chain invalid: %v", err)
	}
	if err := s2.Restore([]byte("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(0); err == nil {
		t.Error("block size 0 accepted")
	}
}

func TestReplicatedOrdering(t *testing.T) {
	cluster, err := bfttest.Launch(
		func(transport.NodeID) bft.Application {
			s, _ := NewService(5)
			return s
		},
		bfttest.Options{},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cl, err := cluster.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		op, _ := SubmitOp(Transaction{Payload: []byte(fmt.Sprintf("tx-%03d", i))})
		if _, err := cl.Invoke(ctx, op); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	fetchOp, _ := FetchOp(1)
	res, err := cl.Invoke(ctx, fetchOp)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := DecodeBlocks(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("replicated chain has %d blocks, want 4", len(blocks))
	}
	if err := VerifyChain(blocks); err != nil {
		t.Fatalf("replicated chain invalid: %v", err)
	}
	// Transactions appear in submission order inside the ledger.
	if !bytes.Equal(blocks[0].Transactions[0].Payload, []byte("tx-000")) {
		t.Errorf("first ledger tx = %q", blocks[0].Transactions[0].Payload)
	}
}
