package kvs

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/transport"
)

func TestExecuteSemantics(t *testing.T) {
	s := New()
	put := func(k, v string) []byte {
		op, _ := EncodeOp(Op{Kind: OpPut, Key: k, Value: []byte(v)})
		return s.Execute(op)
	}
	get := func(k string) []byte {
		op, _ := EncodeOp(Op{Kind: OpGet, Key: k})
		return s.Execute(op)
	}
	if got := put("a", "1"); string(got) != "OK" {
		t.Errorf("put = %q", got)
	}
	if got := get("a"); string(got) != "VAL1" {
		t.Errorf("get = %q", got)
	}
	if got := get("missing"); string(got) != "NIL" {
		t.Errorf("get missing = %q", got)
	}
	del, _ := EncodeOp(Op{Kind: OpDelete, Key: "a"})
	if got := s.Execute(del); string(got) != "OK" {
		t.Errorf("delete = %q", got)
	}
	if got := s.Execute(del); string(got) != "NIL" {
		t.Errorf("re-delete = %q", got)
	}
	size, _ := EncodeOp(Op{Kind: OpSize})
	if got := s.Execute(size); string(got) != "SIZE 0" {
		t.Errorf("size = %q", got)
	}
	if got := s.Execute([]byte("junk")); !bytes.HasPrefix(got, []byte("ERR")) {
		t.Errorf("junk op = %q", got)
	}
	bad, _ := EncodeOp(Op{Kind: 99})
	if got := s.Execute(bad); !bytes.HasPrefix(got, []byte("ERR")) {
		t.Errorf("unknown op = %q", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		op, _ := EncodeOp(Op{Kind: OpPut, Key: fmt.Sprintf("k%d", i), Value: []byte{byte(i)}})
		s.Execute(op)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 50 {
		t.Fatalf("restored %d keys, want 50", restored.Len())
	}
	v, ok := restored.Get("k7")
	if !ok || !bytes.Equal(v, []byte{7}) {
		t.Errorf("restored k7 = %v %v", v, ok)
	}
	if err := restored.Restore([]byte("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	// Two stores with the same contents inserted in different orders must
	// snapshot to identical bytes (checkpoint agreement hashes them).
	a, b := New(), New()
	keys := []string{"zebra", "alpha", "mid", "q"}
	for _, k := range keys {
		op, _ := EncodeOp(Op{Kind: OpPut, Key: k, Value: []byte(k)})
		a.Execute(op)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		op, _ := EncodeOp(Op{Kind: OpPut, Key: keys[i], Value: []byte(keys[i])})
		b.Execute(op)
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Error("snapshot bytes depend on insertion order")
	}
}

// TestOpCodecProperty round-trips random ops.
func TestOpCodecProperty(t *testing.T) {
	f := func(kind uint8, key string, value []byte) bool {
		op := Op{Kind: OpKind(kind%4 + 1), Key: key, Value: value}
		payload, err := EncodeOp(op)
		if err != nil {
			return false
		}
		got, err := DecodeOp(payload)
		if err != nil {
			return false
		}
		return got.Kind == op.Kind && got.Key == op.Key && bytes.Equal(got.Value, op.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestReplicatedKVS runs the store over a real 4-replica BFT cluster.
func TestReplicatedKVS(t *testing.T) {
	cluster, err := bfttest.Launch(
		func(transport.NodeID) bft.Application { return New() },
		bfttest.Options{CheckpointInterval: 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cl, err := cluster.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		op, _ := EncodeOp(Op{Kind: OpPut, Key: fmt.Sprintf("key%d", i), Value: []byte(fmt.Sprintf("val%d", i))})
		res, err := cl.Invoke(ctx, op)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if string(res) != "OK" {
			t.Fatalf("put %d = %q", i, res)
		}
	}
	op, _ := EncodeOp(Op{Kind: OpGet, Key: "key7"})
	res, err := cl.Invoke(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "VALval7" {
		t.Fatalf("replicated get = %q", res)
	}
	// All replicas converge.
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, app := range cluster.Apps {
			if app.(*Store).Len() != 10 {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
