// Package kvs is the in-memory BFT key-value store used throughout the
// paper's performance evaluation (§7.3–7.4): a consistent non-relational
// database in the style of a coordination service, replicated with the
// BFT library. Operations are serialized commands (PUT/GET/DELETE/SIZE)
// executed deterministically on every replica.
package kvs

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"lazarus/internal/bft"
)

// OpKind enumerates store operations.
type OpKind byte

// Operations.
const (
	OpPut OpKind = iota + 1
	OpGet
	OpDelete
	OpSize
)

// Op is one key-value command.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
}

// EncodeOp serializes a command for Client.Invoke.
func EncodeOp(op Op) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		return nil, fmt.Errorf("kvs: encoding op: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeOp parses a command.
func DecodeOp(payload []byte) (Op, error) {
	var op Op
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
		return Op{}, fmt.Errorf("kvs: decoding op: %w", err)
	}
	return op, nil
}

// Store is the replicated state machine. It implements bft.Application.
type Store struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

var _ bft.Application = (*Store)(nil)

// Execute implements bft.Application.
func (s *Store) Execute(payload []byte) []byte {
	op, err := DecodeOp(payload)
	if err != nil {
		return []byte("ERR " + err.Error())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op.Kind {
	case OpPut:
		s.data[op.Key] = append([]byte(nil), op.Value...)
		return []byte("OK")
	case OpGet:
		v, ok := s.data[op.Key]
		if !ok {
			return []byte("NIL")
		}
		return append([]byte("VAL"), v...)
	case OpDelete:
		if _, ok := s.data[op.Key]; !ok {
			return []byte("NIL")
		}
		delete(s.data, op.Key)
		return []byte("OK")
	case OpSize:
		return []byte(fmt.Sprintf("SIZE %d", len(s.data)))
	default:
		return []byte(fmt.Sprintf("ERR unknown op %d", op.Kind))
	}
}

// kvEntry flattens the map for deterministic snapshots.
type kvEntry struct {
	Key   string
	Value []byte
}

// Snapshot implements bft.Application with a deterministic encoding.
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := make([]kvEntry, 0, len(s.data))
	for k, v := range s.data {
		entries = append(entries, kvEntry{k, v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("kvs: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements bft.Application.
func (s *Store) Restore(snapshot []byte) error {
	var entries []kvEntry
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&entries); err != nil {
		return fmt.Errorf("kvs: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]byte, len(entries))
	for _, e := range entries {
		s.data[e.Key] = e.Value
	}
	return nil
}

// Len returns the number of keys (local inspection, not replicated).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Get reads a key locally (not replicated; tests and monitoring).
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}
