// Package sieveq reimplements the SieveQ service of the paper's
// evaluation (§7.4, citing Garcia et al., TDSC 2018): a BFT message queue
// that doubles as an application-level firewall. Its layered architecture
// filters invalid messages *before* they reach the BFT-replicated state
// machine, so the (expensive) ordering protocol only sees traffic that
// passed sender authorization, well-formedness, size and rate checks —
// which is why the paper observes a smaller virtualization penalty for
// SieveQ than for the raw KVS.
package sieveq

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"lazarus/internal/bft"
)

// Message is one queued message.
type Message struct {
	// Sender identifies the producing principal.
	Sender string
	// Topic routes the message.
	Topic string
	// Body is the payload.
	Body []byte
}

// Filter is one sieve layer: it accepts or rejects a message before the
// replication layer sees it. Filters must be deterministic only if run
// inside the state machine; the pre-replication layers may be stateful
// per-node (e.g. rate limiting).
type Filter interface {
	// Name identifies the layer in rejection errors.
	Name() string
	// Check returns nil to pass the message to the next layer.
	Check(m *Message) error
}

// WellFormedFilter rejects structurally invalid messages.
type WellFormedFilter struct{}

// Name implements Filter.
func (WellFormedFilter) Name() string { return "well-formed" }

// Check implements Filter.
func (WellFormedFilter) Check(m *Message) error {
	switch {
	case m.Sender == "":
		return fmt.Errorf("sieveq/well-formed: empty sender")
	case m.Topic == "":
		return fmt.Errorf("sieveq/well-formed: empty topic")
	case len(m.Body) == 0:
		return fmt.Errorf("sieveq/well-formed: empty body")
	}
	return nil
}

// SizeFilter rejects oversized messages.
type SizeFilter struct {
	// MaxBytes caps the body size.
	MaxBytes int
}

// Name implements Filter.
func (SizeFilter) Name() string { return "size" }

// Check implements Filter.
func (f SizeFilter) Check(m *Message) error {
	if len(m.Body) > f.MaxBytes {
		return fmt.Errorf("sieveq/size: body of %d bytes exceeds %d", len(m.Body), f.MaxBytes)
	}
	return nil
}

// ACLFilter rejects senders outside the authorized set.
type ACLFilter struct {
	// Allowed lists authorized senders.
	Allowed map[string]bool
}

// Name implements Filter.
func (ACLFilter) Name() string { return "acl" }

// Check implements Filter.
func (f ACLFilter) Check(m *Message) error {
	if !f.Allowed[m.Sender] {
		return fmt.Errorf("sieveq/acl: sender %q not authorized", m.Sender)
	}
	return nil
}

// RateFilter enforces a per-sender token bucket (stateful, per node).
type RateFilter struct {
	// PerSecond is the sustained rate; Burst the bucket depth.
	PerSecond float64
	Burst     float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateFilter builds a rate limiter; now is injectable for tests (nil =
// time.Now).
func NewRateFilter(perSecond, burst float64, now func() time.Time) *RateFilter {
	if now == nil {
		now = time.Now
	}
	return &RateFilter{
		PerSecond: perSecond,
		Burst:     burst,
		buckets:   make(map[string]*bucket),
		now:       now,
	}
}

// Name implements Filter.
func (*RateFilter) Name() string { return "rate" }

// Check implements Filter.
func (f *RateFilter) Check(m *Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.buckets[m.Sender]
	nowT := f.now()
	if !ok {
		b = &bucket{tokens: f.Burst, last: nowT}
		f.buckets[m.Sender] = b
	}
	b.tokens += nowT.Sub(b.last).Seconds() * f.PerSecond
	if b.tokens > f.Burst {
		b.tokens = f.Burst
	}
	b.last = nowT
	if b.tokens < 1 {
		return fmt.Errorf("sieveq/rate: sender %q exceeded %v msg/s", m.Sender, f.PerSecond)
	}
	b.tokens--
	return nil
}

// Sieve is the filtering front end: messages pass every layer in order
// before being serialized for replication.
type Sieve struct {
	filters []Filter

	mu       sync.Mutex
	rejected map[string]int // per-layer rejection counters
}

// NewSieve stacks the layers in evaluation order.
func NewSieve(filters ...Filter) *Sieve {
	return &Sieve{filters: filters, rejected: make(map[string]int)}
}

// DefaultSieve builds the paper-like four-layer stack.
func DefaultSieve(allowed []string, maxBytes int, perSecond float64) *Sieve {
	acl := make(map[string]bool, len(allowed))
	for _, s := range allowed {
		acl[s] = true
	}
	return NewSieve(
		WellFormedFilter{},
		SizeFilter{MaxBytes: maxBytes},
		ACLFilter{Allowed: acl},
		NewRateFilter(perSecond, perSecond*2, nil),
	)
}

// Admit runs the message through every layer and returns the serialized
// enqueue operation when it passes.
func (s *Sieve) Admit(m *Message) ([]byte, error) {
	for _, f := range s.filters {
		if err := f.Check(m); err != nil {
			s.mu.Lock()
			s.rejected[f.Name()]++
			s.mu.Unlock()
			return nil, err
		}
	}
	return encodeQueueOp(queueOp{Kind: opEnqueue, Msg: *m})
}

// Rejections reports per-layer rejection counts.
func (s *Sieve) Rejections() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.rejected))
	for k, v := range s.rejected {
		out[k] = v
	}
	return out
}

// DequeueOp returns the serialized dequeue operation for a topic.
func DequeueOp(topic string) ([]byte, error) {
	return encodeQueueOp(queueOp{Kind: opDequeue, Msg: Message{Topic: topic}})
}

// LenOp returns the serialized length query for a topic.
func LenOp(topic string) ([]byte, error) {
	return encodeQueueOp(queueOp{Kind: opLen, Msg: Message{Topic: topic}})
}

type opKind byte

const (
	opEnqueue opKind = iota + 1
	opDequeue
	opLen
)

type queueOp struct {
	Kind opKind
	Msg  Message
}

func encodeQueueOp(op queueOp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		return nil, fmt.Errorf("sieveq: encoding op: %w", err)
	}
	return buf.Bytes(), nil
}

// Queue is the replicated message queue behind the sieve. It implements
// bft.Application.
type Queue struct {
	mu     sync.Mutex
	topics map[string][]Message
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{topics: make(map[string][]Message)}
}

var _ bft.Application = (*Queue)(nil)

// Execute implements bft.Application.
func (q *Queue) Execute(payload []byte) []byte {
	var op queueOp
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
		return []byte("ERR " + err.Error())
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	switch op.Kind {
	case opEnqueue:
		q.topics[op.Msg.Topic] = append(q.topics[op.Msg.Topic], op.Msg)
		return []byte(fmt.Sprintf("OK %d", len(q.topics[op.Msg.Topic])))
	case opDequeue:
		queue := q.topics[op.Msg.Topic]
		if len(queue) == 0 {
			return []byte("EMPTY")
		}
		head := queue[0]
		q.topics[op.Msg.Topic] = queue[1:]
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(head); err != nil {
			return []byte("ERR " + err.Error())
		}
		return append([]byte("MSG"), buf.Bytes()...)
	case opLen:
		return []byte(fmt.Sprintf("LEN %d", len(q.topics[op.Msg.Topic])))
	default:
		return []byte(fmt.Sprintf("ERR unknown op %d", op.Kind))
	}
}

// DecodeDequeued parses a dequeue result.
func DecodeDequeued(result []byte) (Message, error) {
	if !bytes.HasPrefix(result, []byte("MSG")) {
		return Message{}, fmt.Errorf("sieveq: result %q carries no message", result)
	}
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(result[3:])).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("sieveq: decoding message: %w", err)
	}
	return m, nil
}

type topicEntry struct {
	Topic    string
	Messages []Message
}

// Snapshot implements bft.Application deterministically.
func (q *Queue) Snapshot() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	entries := make([]topicEntry, 0, len(q.topics))
	for t, msgs := range q.topics {
		entries = append(entries, topicEntry{t, msgs})
	}
	sortTopicEntries(entries)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("sieveq: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func sortTopicEntries(entries []topicEntry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].Topic < entries[j-1].Topic; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

// Restore implements bft.Application.
func (q *Queue) Restore(snapshot []byte) error {
	var entries []topicEntry
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&entries); err != nil {
		return fmt.Errorf("sieveq: restore: %w", err)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.topics = make(map[string][]Message, len(entries))
	for _, e := range entries {
		q.topics[e.Topic] = e.Messages
	}
	return nil
}

// Len reports the local depth of a topic.
func (q *Queue) Len(topic string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.topics[topic])
}
