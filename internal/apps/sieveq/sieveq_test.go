package sieveq

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/transport"
)

func msg(sender, topic, body string) *Message {
	return &Message{Sender: sender, Topic: topic, Body: []byte(body)}
}

func TestWellFormedFilter(t *testing.T) {
	f := WellFormedFilter{}
	if err := f.Check(msg("a", "t", "x")); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	for _, bad := range []*Message{
		msg("", "t", "x"), msg("a", "", "x"), msg("a", "t", ""),
	} {
		if err := f.Check(bad); err == nil {
			t.Errorf("malformed message %+v accepted", bad)
		}
	}
}

func TestSizeFilter(t *testing.T) {
	f := SizeFilter{MaxBytes: 4}
	if err := f.Check(msg("a", "t", "1234")); err != nil {
		t.Errorf("at-limit message rejected: %v", err)
	}
	if err := f.Check(msg("a", "t", "12345")); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestACLFilter(t *testing.T) {
	f := ACLFilter{Allowed: map[string]bool{"alice": true}}
	if err := f.Check(msg("alice", "t", "x")); err != nil {
		t.Errorf("authorized sender rejected: %v", err)
	}
	if err := f.Check(msg("mallory", "t", "x")); err == nil {
		t.Error("unauthorized sender accepted")
	}
}

func TestRateFilter(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	f := NewRateFilter(2, 2, clock)
	if err := f.Check(msg("a", "t", "x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Check(msg("a", "t", "x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Check(msg("a", "t", "x")); err == nil {
		t.Error("burst exceeded but message accepted")
	}
	// Another sender has its own bucket.
	if err := f.Check(msg("b", "t", "x")); err != nil {
		t.Errorf("independent sender throttled: %v", err)
	}
	// Time refills tokens.
	now = now.Add(time.Second)
	if err := f.Check(msg("a", "t", "x")); err != nil {
		t.Errorf("refilled sender throttled: %v", err)
	}
}

func TestSieveLayersAndCounters(t *testing.T) {
	s := DefaultSieve([]string{"alice"}, 8, 1000)
	if _, err := s.Admit(msg("alice", "t", "ok")); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	if _, err := s.Admit(msg("mallory", "t", "x")); err == nil {
		t.Error("acl breach admitted")
	}
	if _, err := s.Admit(msg("alice", "t", strings.Repeat("x", 9))); err == nil {
		t.Error("oversized admitted")
	}
	if _, err := s.Admit(msg("", "t", "x")); err == nil {
		t.Error("malformed admitted")
	}
	rej := s.Rejections()
	if rej["acl"] != 1 || rej["size"] != 1 || rej["well-formed"] != 1 {
		t.Errorf("rejection counters = %v", rej)
	}
}

func TestQueueSemantics(t *testing.T) {
	q := NewQueue()
	enq := func(topic, body string) []byte {
		op, err := (&Sieve{}).Admit(msg("a", topic, body))
		if err != nil {
			t.Fatal(err)
		}
		return q.Execute(op)
	}
	if got := enq("t1", "first"); string(got) != "OK 1" {
		t.Errorf("enqueue = %q", got)
	}
	enq("t1", "second")
	enq("t2", "other")

	lenOp, _ := LenOp("t1")
	if got := q.Execute(lenOp); string(got) != "LEN 2" {
		t.Errorf("len = %q", got)
	}
	deq, _ := DequeueOp("t1")
	got := q.Execute(deq)
	m, err := DecodeDequeued(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Body) != "first" {
		t.Errorf("dequeued %q, want FIFO head", m.Body)
	}
	q.Execute(deq)
	if got := q.Execute(deq); string(got) != "EMPTY" {
		t.Errorf("dequeue from empty = %q", got)
	}
	if _, err := DecodeDequeued([]byte("EMPTY")); err == nil {
		t.Error("DecodeDequeued accepted EMPTY")
	}
}

func TestQueueSnapshotRoundTrip(t *testing.T) {
	q := NewQueue()
	s := &Sieve{}
	for i := 0; i < 10; i++ {
		op, _ := s.Admit(msg("a", fmt.Sprintf("topic%d", i%3), fmt.Sprintf("m%d", i)))
		q.Execute(op)
	}
	snap, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q2 := NewQueue()
	if err := q2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, topic := range []string{"topic0", "topic1", "topic2"} {
		if q2.Len(topic) != q.Len(topic) {
			t.Errorf("topic %s depth %d vs %d", topic, q2.Len(topic), q.Len(topic))
		}
	}
	// Determinism across insertion orders is guaranteed per-topic by the
	// sorted topic entries.
	snap2, err := q2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Error("snapshot not stable across restore")
	}
}

func TestReplicatedQueue(t *testing.T) {
	cluster, err := bfttest.Launch(
		func(transport.NodeID) bft.Application { return NewQueue() },
		bfttest.Options{},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cl, err := cluster.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sieve := DefaultSieve([]string{"alice"}, 1024, 10000)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		op, err := sieve.Admit(msg("alice", "orders", fmt.Sprintf("order-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Invoke(ctx, op); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	deq, _ := DequeueOp("orders")
	res, err := cl.Invoke(ctx, deq)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeDequeued(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Body) != "order-0" {
		t.Errorf("replicated dequeue = %q, want order-0", m.Body)
	}
}
