//go:build !race

package controlplane

const raceEnabled = false
