package controlplane

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/osint"
	"lazarus/internal/transport"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// testController builds a controller over a small corpus and an in-memory
// execution plane running the KVS.
func testController(t *testing.T, vulns []*osint.Vulnerability, clock func() time.Time) (*Controller, *transport.Memory, ed25519.PrivateKey) {
	t.Helper()
	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	clientPub, clientPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	clientID := transport.ClientIDBase + transport.NodeID(1)
	ctrl, err := New(Config{
		N:            4,
		Seed:         7,
		Clock:        clock,
		InitialVulns: vulns,
		Net:          net,
		App:          func() bft.Application { return kvs.New() },
		ClientKeys:   map[transport.NodeID]ed25519.PublicKey{clientID: clientPub},
		LTUSecret:    []byte("test-ltu-secret"),
		ReplicaTuning: func(cfg *bft.ReplicaConfig) {
			cfg.CheckpointInterval = 8
			cfg.ViewChangeTimeout = 200 * time.Millisecond
			cfg.BatchDelay = time.Millisecond
		},
		CatchUpTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctrl.Stop()
		net.Close()
	})
	return ctrl, net, clientPriv
}

// smallCorpus: enough history for clustering, plus a pair of shared vulns
// that can be published "later" to force a reconfiguration.
func smallCorpus(t *testing.T) []*osint.Vulnerability {
	t.Helper()
	ds, err := feeds.GenerateDataset(feeds.GenConfig{
		Seed:  3,
		Start: day(2017, 1, 1),
		End:   day(2018, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.All()
}

func TestBootstrapRunsService(t *testing.T) {
	now := day(2018, 1, 15)
	ctrl, _, clientPriv := testController(t, smallCorpus(t), func() time.Time { return now })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := ctrl.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	st := ctrl.Status()
	if len(st.Config) != 4 {
		t.Fatalf("config = %v", st.Config)
	}
	if len(st.Pool) != 13 {
		t.Fatalf("pool = %d OSes, want 13 (17 deployable - 4 running)", len(st.Pool))
	}
	// The service works end to end through the provisioned replicas.
	cl, err := ctrl.ServiceClient(transport.ClientIDBase+1, clientPriv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: "hello", Value: []byte("world")})
	res, err := cl.Invoke(ctx, op)
	if err != nil {
		t.Fatalf("service invoke: %v", err)
	}
	if string(res) != "OK" {
		t.Fatalf("put = %q", res)
	}
}

func TestMonitorRoundNoTriggerLeavesConfig(t *testing.T) {
	now := day(2018, 1, 15)
	ctrl, _, _ := testController(t, smallCorpus(t), func() time.Time { return now })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := ctrl.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	before := ctrl.Status().Config
	d, err := ctrl.MonitorRound(ctx)
	if err != nil {
		t.Fatalf("MonitorRound: %v", err)
	}
	if d.Reconfigured {
		t.Fatalf("reconfigured with unchanged intel: %+v", d)
	}
	after := ctrl.Status().Config
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("config changed without a decision")
		}
	}
}

// TestCriticalCVETriggersLiveReplacement is the flagship integration test:
// a fresh critical vulnerability shared by two running OSes arrives in the
// feed; the next monitoring round must replace a replica through the LTUs
// and the BFT reconfiguration protocol without losing service state.
func TestCriticalCVETriggersLiveReplacement(t *testing.T) {
	now := day(2018, 1, 15)
	clock := func() time.Time { return now }
	ctrl, _, clientPriv := testController(t, smallCorpus(t), clock)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := ctrl.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	cl, err := ctrl.ServiceClient(transport.ClientIDBase+1, clientPriv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("k%d", i), Value: []byte{byte(i)}})
		if _, err := cl.Invoke(ctx, op); err != nil {
			t.Fatalf("preload %d: %v", i, err)
		}
	}

	// A critical exploited vulnerability shared by the two first running
	// OSes is published today.
	st := ctrl.Status()
	osA, err := catalog.ByID(st.Config[0])
	if err != nil {
		t.Fatal(err)
	}
	osB, err := catalog.ByID(st.Config[1])
	if err != nil {
		t.Fatal(err)
	}
	osC, err := catalog.ByID(st.Config[2])
	if err != nil {
		t.Fatal(err)
	}
	// Three affected replicas -> three risky pairs, comfortably above the
	// adaptive threshold margin.
	bomb := &osint.Vulnerability{
		ID:          "CVE-2018-99001",
		Description: "Remote code execution in the shared virtio network driver allows full host compromise via crafted descriptors.",
		Products:    []string{osA.CPEProduct, osB.CPEProduct, osC.CPEProduct},
		Published:   now.AddDate(0, 0, -1),
		CVSS:        9.8,
		ExploitAt:   now.AddDate(0, 0, -1),
	}
	if err := ctrl.RefreshIntel(ctx, bomb); err != nil {
		t.Fatal(err)
	}
	now = now.AddDate(0, 0, 1)

	d, err := ctrl.MonitorRound(ctx)
	if err != nil {
		t.Fatalf("MonitorRound: %v", err)
	}
	if !d.Reconfigured {
		t.Fatalf("critical shared CVE did not trigger reconfiguration (risk %.1f, threshold %.1f)",
			d.RiskBefore, ctrl.Status().Threshold)
	}
	if d.Removed.ID != osA.ID && d.Removed.ID != osB.ID && d.Removed.ID != osC.ID {
		t.Errorf("removed %s, want one of the affected trio %s/%s/%s", d.Removed.ID, osA.ID, osB.ID, osC.ID)
	}

	after := ctrl.Status()
	if len(after.Config) != 4 {
		t.Fatalf("post-swap config = %v", after.Config)
	}
	if len(after.Quarantine) != 1 || after.Quarantine[0] != d.Removed.ID {
		t.Errorf("quarantine = %v, want [%s]", after.Quarantine, d.Removed.ID)
	}
	if after.Epoch != 2 {
		t.Errorf("membership epoch = %d, want 2 (one add + one remove)", after.Epoch)
	}

	// Service state survived the live replacement, and writes still work
	// against the new membership. The same client continues (client
	// sequence numbers must not reset) with an updated replica set.
	var newReplicas []transport.NodeID
	for _, nodeID := range after.Nodes {
		newReplicas = append(newReplicas, nodeID)
	}
	cl.UpdateReplicas(newReplicas)
	getOp, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpGet, Key: "k3"})
	res, err := cl.Invoke(ctx, getOp)
	if err != nil {
		t.Fatalf("post-swap read: %v", err)
	}
	if string(res) != "VAL\x03" {
		t.Fatalf("post-swap read = %q, state lost", res)
	}
	putOp, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: "post", Value: []byte("swap")})
	if _, err := cl.Invoke(ctx, putOp); err != nil {
		t.Fatalf("post-swap write: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	base := Config{
		Net:       net,
		App:       func() bft.Application { return kvs.New() },
		LTUSecret: []byte("s"),
	}
	bad := base
	bad.N = 99
	if _, err := New(bad); err == nil {
		t.Error("n > universe accepted")
	}
	noApp := base
	noApp.App = nil
	if _, err := New(noApp); err == nil {
		t.Error("nil app accepted")
	}
	noSecret := base
	noSecret.LTUSecret = nil
	if _, err := New(noSecret); err == nil {
		t.Error("empty LTU secret accepted")
	}
}

func TestMonitorRoundBeforeBootstrap(t *testing.T) {
	ctrl, _, _ := testController(t, smallCorpus(t), func() time.Time { return day(2018, 1, 15) })
	if _, err := ctrl.MonitorRound(context.Background()); err == nil {
		t.Error("MonitorRound before Bootstrap accepted")
	}
}

func TestRefreshIntelRequiresData(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	ctrl, err := New(Config{
		Net:       net,
		App:       func() bft.Application { return kvs.New() },
		LTUSecret: []byte("s"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RefreshIntel(context.Background()); err == nil {
		t.Error("refresh with no data accepted")
	}
}

func TestRunLoopTicksAndStops(t *testing.T) {
	now := day(2018, 1, 15)
	ctrl, _, _ := testController(t, smallCorpus(t), func() time.Time { return now })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := ctrl.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RunLoop(ctx, 0, nil); err == nil {
		t.Error("non-positive interval accepted")
	}
	rounds := 0
	loopCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		done <- ctrl.RunLoop(loopCtx, 20*time.Millisecond, func(core.Decision) {
			rounds++
			if rounds >= 3 {
				stop()
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil || loopCtx.Err() == nil {
			t.Fatalf("loop ended unexpectedly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("loop did not stop")
	}
	if rounds < 3 {
		t.Errorf("only %d rounds ran", rounds)
	}
}

// TestRefreshIntelViaCrawler exercises the full data plane: the dataset is
// materialized as NVD/ExploitDB/advisory fixtures, served over HTTP,
// crawled, and assembled into the controller's knowledge base.
func TestRefreshIntelViaCrawler(t *testing.T) {
	ds, err := feeds.GenerateDataset(feeds.GenConfig{
		Seed:  5,
		Start: day(2017, 1, 1),
		End:   day(2017, 12, 31),
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ds.WriteFixtures(dir); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()

	crawler, err := osint.NewCrawler(osint.CrawlerConfig{
		NVDFeedURLs: []string{srv.URL + "/nvdcve-1.1-2017.json"},
		Sources: []osint.FeedSpec{
			{URL: srv.URL + "/files_exploits.csv", Parser: osint.ExploitDBParser{}},
			{URL: srv.URL + "/cvedetails.html", Parser: osint.CVEDetailsParser{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	defer net.Close()
	ctrl, err := New(Config{
		Net:       net,
		App:       func() bft.Application { return kvs.New() },
		LTUSecret: []byte("s"),
		Crawler:   crawler,
		Clock:     func() time.Time { return day(2018, 1, 15) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	if err := ctrl.RefreshIntel(context.Background()); err != nil {
		t.Fatalf("crawl-backed refresh: %v", err)
	}
	// The crawled knowledge base must support bootstrapping.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := ctrl.Bootstrap(ctx); err != nil {
		t.Fatalf("bootstrap on crawled intel: %v", err)
	}
	if len(ctrl.Status().Config) != 4 {
		t.Fatalf("config = %v", ctrl.Status().Config)
	}
}
