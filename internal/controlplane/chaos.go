// Control-plane chaos harness: runs the full Lazarus loop — intel
// refresh, Algorithm 1 rounds, staged swaps — under client load while
// randomly injecting boot failures, LTU faults, silent replicas and
// transport loss, then verifies that the service invariant held (n=3f+1
// live correct replicas, membership exactly mirroring the OS→node map)
// and that every failed swap was compensated. `lazbench chaos` drives it
// interactively; a deterministic seeded version runs in the test suite.
package controlplane

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/deploy"
	"lazarus/internal/feeds"
	"lazarus/internal/ltu"
	"lazarus/internal/metrics"
	"lazarus/internal/netem"
	"lazarus/internal/osint"
	"lazarus/internal/transport"
)

// ChaosConfig parameterizes a chaos run. The zero value gets sensible
// defaults from fill.
type ChaosConfig struct {
	// Rounds is how many monitor rounds to run (default 25).
	Rounds int
	// Seed drives every random choice: the synthetic dataset, the
	// controller, and the fault schedule.
	Seed int64
	// N is the replica-set size (default 4).
	N int
	// ClientWorkers is how many closed-loop KVS clients run throughout
	// (default 2; 0 disables load).
	ClientWorkers int

	// Per-round fault probabilities.
	BootFailProb  float64 // power-on failures for every image (default 0.2)
	BootStallProb float64 // boots stall past the stage timeout (default 0.1)
	LTUFailProb   float64 // LTU commands error out (default 0.15)
	SilentProb    float64 // one member isolated for the round (default 0.2)
	LinkLossProb  float64 // one replica pair cut for the round (default 0.2)
	// BombProb is the chance a fresh critical shared CVE is published
	// before a round (default 0.6) — the trigger that makes swaps happen.
	BombProb float64

	// ByzFaults enables Byzantine attacker replicas: rounds randomly turn
	// f current members Byzantine by intercepting their outgoing traffic
	// with their own signing keys (bft.Attacker) — equivocating
	// proposals, stale-vote replay, corrupted state snapshots, or a
	// censoring primary, cycling through the four kinds. Byzantine rounds
	// suppress the silent-replica and link-loss faults so the total
	// faulty count stays within the f the protocol tolerates; while the
	// attack runs the harness probes liveness (a censoring primary must
	// be demoted by view change) and reply integrity, and afterwards it
	// cross-checks every replica's execution trace for safety.
	ByzFaults bool
	// ByzProb is the per-round probability of a Byzantine round when
	// ByzFaults is on (default 0.5). The Byzantine dice use their own rng
	// stream, so enabling attacks does not perturb the dataset, fault, or
	// swap-decision schedule of the same seed.
	ByzProb float64
	// ForceByzRounds lists rounds (0-based) that deterministically get an
	// attack, so short runs exercise every attack kind regardless of the
	// dice.
	ForceByzRounds []int
	// ForceBootFailRounds lists rounds (0-based) that deterministically
	// get both a CVE bomb and an all-images boot-failure policy, so runs
	// exercise the rollback path regardless of the dice.
	ForceBootFailRounds []int

	// ControllerFaults enables controller kill/restart chaos: rounds
	// randomly arm a crash plan that kills the controller a few WAL
	// appends into the round — usually mid-swap, between an intent record
	// and its outcome. The harness then probes the service while the
	// control plane is down and Recovers a successor from the WAL, which
	// must resolve the interrupted swap (resume, roll back, or roll
	// forward) without leaking nodes or unbalancing the ledger.
	ControllerFaults bool
	// ControllerKillProb is the per-round probability of arming a kill
	// when ControllerFaults is on (default 0.35). The kill dice use
	// their own rng stream, so enabling controller faults does not
	// perturb the dataset, fault, or swap-decision schedule of the
	// same seed.
	ControllerKillProb float64
	// WALPath, when set, backs the control plane with a file WAL at this
	// path, so crash-restart cycles also exercise on-disk replay (torn
	// tails, checksums). Empty keeps the WAL in memory.
	WALPath string

	// WANProfile, when non-empty, wraps the execution-plane network in
	// the named netem profile (see netem.Names): per-link latency, loss,
	// reordering and bandwidth caps, plus scheduled partition episodes —
	// symmetric splits, asymmetric mutes and node isolations cycling per
	// the profile's PartitionProb. Partition dice roll on their own rng
	// stream ("wan\0"), so enabling WAN conditions does not perturb the
	// fault or swap-decision schedule of the same seed. WAN runs switch
	// the replicas to adaptive progress timeouts; every partitioned round
	// must reach a post-heal commit or it is a Violation.
	WANProfile string

	// CatchUpTimeout and SwapStageTimeout override the controller's
	// defaults (chaos wants short ones; defaults 2.5s and 2s).
	CatchUpTimeout, SwapStageTimeout time.Duration
	// Metrics, when set, aggregates the whole run: transport, every
	// replica, and the controller all report into it.
	Metrics *metrics.Registry
	// Trace, when set, receives the run's structured protocol and swap
	// events.
	Trace *metrics.Tracer
	// Logf receives progress logging (nil = discard).
	Logf func(format string, args ...any)
}

func (c *ChaosConfig) fill() {
	if c.Rounds <= 0 {
		c.Rounds = 25
	}
	if c.N <= 0 {
		c.N = 4
	}
	if c.ClientWorkers < 0 {
		c.ClientWorkers = 0
	}
	def := func(p *float64, v float64) {
		if *p == 0 {
			*p = v
		} else if *p < 0 {
			*p = 0
		}
	}
	def(&c.BootFailProb, 0.2)
	def(&c.BootStallProb, 0.1)
	def(&c.LTUFailProb, 0.15)
	def(&c.SilentProb, 0.2)
	def(&c.LinkLossProb, 0.2)
	def(&c.BombProb, 0.6)
	def(&c.ControllerKillProb, 0.35)
	def(&c.ByzProb, 0.5)
	// Swap stages drive consensus operations whose latency scales with
	// the network: the LAN-tuned 2s stage deadline aborts healthy swaps
	// under continental RTTs (and a timing-dependent abort makes the swap
	// history diverge between identically-seeded runs), so WAN runs get
	// defaults with real headroom. The margin is deliberately generous —
	// a swap landing right after a censoring-primary round waits out the
	// backed-off view-change demotion before its reconfig can commit, and
	// a shared CI box stretches every one of those latencies further.
	if c.CatchUpTimeout <= 0 {
		c.CatchUpTimeout = 2500 * time.Millisecond
		if c.WANProfile != "" {
			c.CatchUpTimeout = 20 * time.Second
		}
	}
	if c.SwapStageTimeout <= 0 {
		c.SwapStageTimeout = 2 * time.Second
		if c.WANProfile != "" {
			c.SwapStageTimeout = 15 * time.Second
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// ChaosReport summarizes a chaos run.
type ChaosReport struct {
	// Rounds actually executed.
	Rounds int
	// Reconfigs is how many rounds decided a replacement.
	Reconfigs int
	// RoundErrors is how many rounds returned an error (failed swaps,
	// exhausted pools under fault pressure, ...).
	RoundErrors int
	// Bombs is how many critical shared CVEs were published.
	Bombs int
	// FaultRounds counts rounds that had at least one fault active.
	FaultRounds int
	// Stats is the controller's final swap-engine telemetry.
	Stats SwapStats
	// History is the structured swap record.
	History []SwapRecord
	// Net is the transport's frame/drop counters.
	Net transport.Stats
	// Final is the controller's closing status.
	Final Status
	// Census is the closing execution-plane census.
	Census Census
	// ClientOps and ClientErrs tally the load clients' invokes.
	ClientOps, ClientErrs uint64
	// ControllerKills and Recoveries count crash-restart cycles
	// (ControllerFaults runs; every kill must be matched by a recovery).
	ControllerKills, Recoveries int
	// DownProbes and DownProbeErrs tally the service probes issued while
	// the controller was dead. Individual probes may fail under
	// concurrent network faults; a kill round where none succeed is a
	// Violation (the execution plane must not depend on the control
	// plane for liveness).
	DownProbes, DownProbeErrs int
	// ByzRounds counts rounds that ran with attacker replicas installed.
	ByzRounds int
	// ByzSchedule records one "r<round>:<kind>@<nodes>" entry per
	// Byzantine round; identically-seeded runs must produce identical
	// schedules.
	ByzSchedule []string
	// ByzStats aggregates what the attackers actually did across the run
	// (a schedule full of idle attackers proves nothing).
	ByzStats bft.AttackerStats
	// ByzProbes and ByzProbeErrs tally the liveness/integrity probes
	// issued while attacks were live. A probe that cannot complete — or
	// that reads back a forged value — is a Violation.
	ByzProbes, ByzProbeErrs int
	// WANRounds counts rounds that opened a partition episode;
	// WANSchedule records one "r<round>:<desc>" entry per episode —
	// identically-seeded runs must produce identical schedules.
	WANRounds   int
	WANSchedule []string
	// WANProbes and WANProbeErrs tally the post-heal liveness probes. A
	// partitioned round whose heal is not followed by a commit is a
	// Violation.
	WANProbes, WANProbeErrs int
	// Netem is the condition layer's frame/drop/delay telemetry
	// (zero unless WANProfile was set).
	Netem netem.Stats
	// Generation is the final controller's recovery generation
	// (0 = the bootstrap controller survived the whole run).
	Generation int
	// WALRecords is the closing length of the control-plane WAL.
	WALRecords int
	// Violations lists every invariant violation observed (empty on a
	// healthy run).
	Violations []string
}

// ltuFaultMode is the per-round LTU fault switch.
type ltuFaultMode int32

const (
	ltuHealthy  ltuFaultMode = iota
	ltuFailing               // every command errors after authentication
	ltuStalling              // every command stalls past the stage timeout
)

// RunChaos builds a controller over an in-memory execution plane and runs
// the chaos loop. It returns an error only when the harness itself cannot
// run (bootstrap failure); protocol-level trouble shows up in the
// report's Violations instead.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	cfg.fill()
	rng := mrand.New(mrand.NewSource(cfg.Seed))
	// The kill dice live on their own stream so controller faults never
	// shift the main schedule (dataset, faults, swap decisions) of a
	// given seed — runs with and without kills stay comparable.
	killRng := mrand.New(mrand.NewSource(cfg.Seed ^ 0x6b696c6c))
	// The Byzantine dice likewise get their own stream ("byza"), keeping
	// the main schedule comparable with and without attacks.
	byzRng := mrand.New(mrand.NewSource(cfg.Seed ^ 0x62797a61))
	// The WAN partition dice get their own stream ("wan\0") for the same
	// reason: a run with -wan keeps the fault/swap schedule of the plain
	// run with that seed.
	wanRng := mrand.New(mrand.NewSource(cfg.Seed ^ 0x77616e00))

	var wanProf *netem.Profile
	if cfg.WANProfile != "" {
		var err error
		if wanProf, err = netem.ByName(cfg.WANProfile); err != nil {
			return nil, err
		}
	}

	ds, err := feeds.GenerateDataset(feeds.GenConfig{
		Seed:  cfg.Seed,
		Start: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		return nil, err
	}

	// The memory network stays in `net` for the fault injectors
	// (Intercept/Isolate/Cut act on real queues); the controller and every
	// replica/client endpoint go through `cnet`, which is the netem
	// wrapper when a WAN profile is set. Closing the wrapper closes the
	// inner network too.
	net := transport.NewMemory(transport.MemoryConfig{Seed: cfg.Seed, Metrics: cfg.Metrics})
	var cnet transport.Network = net
	var wnet *netem.Network
	if wanProf != nil {
		wnet = netem.Wrap(net, netem.Config{Profile: wanProf, Seed: cfg.Seed, Metrics: cfg.Metrics})
		cnet = wnet
	}
	defer cnet.Close()

	// Hybrid clock: simulated days advance when intel is published, real
	// time keeps flowing so catch-up deadlines expire on the wall clock.
	base := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	start := time.Now()
	var simDays atomic.Int64
	clock := func() time.Time {
		return base.Add(time.Duration(simDays.Load())*24*time.Hour + time.Since(start))
	}

	// Register the load workers plus the probe identities as clients. The
	// probe ids are fixed offsets past the workers: +1 controller-down,
	// +2 Byzantine, +3 post-heal WAN, +4 final liveness — registered
	// unconditionally so enabling a fault class never renumbers the rest.
	probes := cfg.ClientWorkers + 4
	clientKeys := make(map[transport.NodeID]ed25519.PublicKey, probes)
	clientPrivs := make(map[transport.NodeID]ed25519.PrivateKey, probes)
	for i := 0; i < probes; i++ {
		pub, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		id := transport.ClientIDBase + transport.NodeID(1+i)
		clientKeys[id] = pub
		clientPrivs[id] = priv
	}

	// One WAL outlives every controller incarnation: the bootstrap
	// controller writes it, each recovered successor replays and extends
	// it.
	var wal WAL
	if cfg.WALPath != "" {
		fw, err := OpenFileWAL(cfg.WALPath)
		if err != nil {
			return nil, err
		}
		defer fw.Close()
		wal = fw
	} else {
		wal = NewMemWAL()
	}

	// published accumulates everything the OSINT layer has seen — the
	// synthetic corpus plus every bomb — because a recovering controller
	// rebuilds its risk state from the feeds, not the WAL.
	published := append([]*osint.Vulnerability(nil), ds.All()...)

	var ltuMode atomic.Int32
	mkConfig := func(vulns []*osint.Vulnerability) Config {
		return Config{
			N:            cfg.N,
			Seed:         cfg.Seed,
			Clock:        clock,
			InitialVulns: vulns,
			Net:          cnet,
			App:          func() bft.Application { return kvs.New() },
			ClientKeys:   clientKeys,
			LTUSecret:    []byte("chaos-ltu-secret"),
			ReplicaTuning: func(rc *bft.ReplicaConfig) {
				rc.CheckpointInterval = 8
				rc.ViewChangeTimeout = 200 * time.Millisecond
				rc.BatchDelay = time.Millisecond
				// Chaos runs exercise the pipelined fast path: swap-history
				// replay must stay deterministic with instances in flight.
				rc.PipelineDepth = 4
				// WAN conditions need RTT-tracking timeouts: the 200ms
				// static timer above is tuned for the in-memory fabric and
				// fires spuriously under continental latency.
				rc.AdaptiveTimeout = wanProf != nil
			},
			CatchUpTimeout:   cfg.CatchUpTimeout,
			SwapStageTimeout: cfg.SwapStageTimeout,
			SwapAttempts:     2,
			SwapBackoff:      25 * time.Millisecond,
			SwapBackoffMax:   200 * time.Millisecond,
			WAL:              wal,
			Metrics:          cfg.Metrics,
			Trace:            cfg.Trace,
			LTUInjector: func(node transport.NodeID, cmd ltu.Command) error {
				switch ltuFaultMode(ltuMode.Load()) {
				case ltuFailing:
					return fmt.Errorf("chaos: injected LTU fault on node %d", node)
				case ltuStalling:
					time.Sleep(cfg.SwapStageTimeout + 250*time.Millisecond)
					return fmt.Errorf("chaos: stalled LTU on node %d", node)
				default:
					return nil
				}
			},
			Logf: cfg.Logf,
		}
	}
	ctrl, err := New(mkConfig(published))
	if err != nil {
		return nil, err
	}
	// The live controller moves on crash-restart; everything long-lived
	// (load workers, invariant checks, the closing report) reads it
	// through this pointer. A killed predecessor is never Stop()ped — its
	// nodes belong to the successor now — only its control client dies.
	var ctrlP atomic.Pointer[Controller]
	ctrlP.Store(ctrl)
	defer func() { ctrlP.Load().Stop() }()

	if err := ctrl.Bootstrap(ctx); err != nil {
		return nil, fmt.Errorf("chaos bootstrap: %w", err)
	}

	// The controller-down probe client: used only while the control plane
	// is dead, to prove the execution plane keeps serving on its own.
	var downCl *bft.Client
	if cfg.ControllerFaults {
		downID := transport.ClientIDBase + transport.NodeID(cfg.ClientWorkers+1)
		downCl, err = ctrl.ServiceClient(downID, clientPrivs[downID])
		if err != nil {
			return nil, err
		}
		defer downCl.Close()
	}

	// The Byzantine probe client: proves liveness and reply integrity
	// while attacker replicas are live.
	var byzCl *bft.Client
	if cfg.ByzFaults {
		byzID := transport.ClientIDBase + transport.NodeID(cfg.ClientWorkers+2)
		byzCl, err = ctrl.ServiceClient(byzID, clientPrivs[byzID])
		if err != nil {
			return nil, err
		}
		defer byzCl.Close()
	}

	// The post-heal probe client: proves every partition episode ends in
	// recovered commit liveness.
	var wanCl *bft.Client
	if wanProf != nil {
		wanID := transport.ClientIDBase + transport.NodeID(cfg.ClientWorkers+3)
		wanCl, err = ctrl.ServiceClient(wanID, clientPrivs[wanID])
		if err != nil {
			return nil, err
		}
		defer wanCl.Close()
	}

	// Client load: closed-loop KVS writers/readers that track the
	// membership as it changes. Their errors are expected under faults
	// and only tallied.
	var ops, opErrs atomic.Uint64
	loadCtx, stopLoad := context.WithCancel(ctx)
	defer stopLoad()
	var wg sync.WaitGroup
	for w := 0; w < cfg.ClientWorkers; w++ {
		id := transport.ClientIDBase + transport.NodeID(1+w)
		cl, err := ctrl.ServiceClient(id, clientPrivs[id])
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(w int, cl *bft.Client) {
			defer wg.Done()
			defer cl.Close()
			for i := 0; loadCtx.Err() == nil; i++ {
				if i%8 == 0 {
					// Follow reconfigurations with keys so reply
					// verification tracks the current group (through the
					// pointer — the controller changes on crash-restart).
					if m := ctrlP.Load().Membership(); m != nil {
						cl.UpdateMembership(m.Replicas, m.Keys)
					}
				}
				op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("w%d-k%d", w, i%32), Value: []byte{byte(i)}})
				ictx, cancel := context.WithTimeout(loadCtx, 2*time.Second)
				_, err := cl.Invoke(ictx, op)
				cancel()
				if err != nil {
					opErrs.Add(1)
					// Back off instead of hammering a disrupted group.
					select {
					case <-loadCtx.Done():
					case <-time.After(50 * time.Millisecond):
					}
					continue
				}
				ops.Add(1)
			}
		}(w, cl)
	}

	report := &ChaosReport{}
	forced := make(map[int]bool, len(cfg.ForceBootFailRounds))
	for _, r := range cfg.ForceBootFailRounds {
		forced[r] = true
	}
	forcedByz := make(map[int]bool, len(cfg.ForceByzRounds))
	for _, r := range cfg.ForceByzRounds {
		forcedByz[r] = true
	}
	// Attackers armed for the current round; cleared (and their actions
	// folded into the report) by disarmByz on every exit path.
	type armedAttacker struct {
		id  transport.NodeID
		atk *bft.Attacker
	}
	var attackers []armedAttacker
	disarmByz := func() {
		for _, aa := range attackers {
			net.Intercept(aa.id, nil)
			st := aa.atk.Stats()
			report.ByzStats.Intercepted += st.Intercepted
			report.ByzStats.Equivocated += st.Equivocated
			report.ByzStats.Replayed += st.Replayed
			report.ByzStats.Corrupted += st.Corrupted
			report.ByzStats.Censored += st.Censored
		}
		attackers = nil
	}
	defer disarmByz()
	allImages := func() map[string]bool {
		m := make(map[string]bool)
		for _, os := range catalog.Deployable() {
			m[os.ID] = true
		}
		return m
	}()
	bombSeq := 0
	checkRound := func(tag string) {
		for _, v := range checkInvariants(ctrlP.Load(), cfg.N) {
			report.Violations = append(report.Violations, fmt.Sprintf("%s: %s", tag, v))
		}
	}

	for round := 0; round < cfg.Rounds; round++ {
		if ctx.Err() != nil {
			break
		}
		report.Rounds++
		cur := ctrlP.Load()

		// 1. Install this round's faults (last round's were cleared).
		faulty := false
		var isolated transport.NodeID = -1
		var cutA, cutB transport.NodeID = -1, -1
		bomb := rng.Float64() < cfg.BombProb
		switch {
		case forced[round]:
			bomb = true
			cur.SetFaultPolicy(&deploy.FaultPolicy{FailPowerOnOS: allImages})
			faulty = true
		case rng.Float64() < cfg.BootFailProb:
			cur.SetFaultPolicy(&deploy.FaultPolicy{FailPowerOnOS: allImages})
			faulty = true
		case rng.Float64() < cfg.BootStallProb:
			cur.SetFaultPolicy(&deploy.FaultPolicy{StallBoot: cfg.SwapStageTimeout + 300*time.Millisecond})
			faulty = true
		}
		if !faulty && rng.Float64() < cfg.LTUFailProb {
			if rng.Intn(2) == 0 {
				ltuMode.Store(int32(ltuFailing))
			} else {
				ltuMode.Store(int32(ltuStalling))
			}
			faulty = true
		}
		// 1b. Maybe turn f members Byzantine for the round. The kinds
		// cycle deterministically so every attack class gets exercised.
		// Byzantine replicas count against the same f budget as crash
		// faults, so a Byzantine round suppresses the silent-replica and
		// link-loss faults below: safety and liveness are only promised
		// for at most f simultaneous faulty members.
		byzKind := bft.AttackEquivocate
		if cfg.ByzFaults && (forcedByz[round] || byzRng.Float64() < cfg.ByzProb) {
			if mem := cur.Membership(); mem != nil && mem.F() > 0 {
				byzKind = bft.AttackKind(report.ByzRounds % 4)
				perm := byzRng.Perm(len(mem.Replicas))
				var ids []transport.NodeID
				for i := 0; i < mem.F(); i++ {
					id := mem.Replicas[perm[i]]
					key, kerr := cur.builder.PrivateKey(id)
					if kerr != nil {
						report.Violations = append(report.Violations,
							fmt.Sprintf("round %d: no key for attacker %d: %v", round, id, kerr))
						continue
					}
					atk := bft.NewAttacker(id, key, byzKind, byzRng.Int63())
					net.Intercept(id, atk.Intercept)
					attackers = append(attackers, armedAttacker{id, atk})
					ids = append(ids, id)
				}
				if len(attackers) > 0 {
					report.ByzRounds++
					report.ByzSchedule = append(report.ByzSchedule,
						fmt.Sprintf("r%d:%s@%v", round, byzKind, ids))
					faulty = true
				}
			}
		}
		members := cur.Status().Members
		if len(attackers) == 0 && len(members) > 0 && rng.Float64() < cfg.SilentProb {
			isolated = members[rng.Intn(len(members))]
			net.Isolate(isolated)
			faulty = true
		}
		if len(attackers) == 0 && len(members) > 1 && rng.Float64() < cfg.LinkLossProb {
			cutA = members[rng.Intn(len(members))]
			cutB = members[rng.Intn(len(members))]
			if cutA != cutB {
				net.Cut(cutA, cutB)
				faulty = true
			} else {
				cutA, cutB = -1, -1
			}
		}
		// 1c. Maybe open a WAN partition episode: apply the drawn shape,
		// hold it long enough for the progress timers to take the strain,
		// heal, and demand a post-heal commit before the round proceeds.
		// Byzantine rounds are exempt — a partition on top of f attackers
		// exceeds what the protocol promises to survive. The episode runs
		// before MonitorRound so a quorum-denying cut never overlaps a
		// staged swap (that failure mode is the swap engine's own timeout
		// path, already exercised by the boot/LTU faults).
		if wnet != nil && len(attackers) == 0 && len(members) > 1 &&
			wanRng.Float64() < wanProf.PartitionProb {
			ep := netem.DrawPartition(wanRng, members, report.WANRounds)
			wnet.Apply(ep)
			report.WANRounds++
			report.WANSchedule = append(report.WANSchedule, fmt.Sprintf("r%d:%s", round, ep.Desc))
			faulty = true
			hold := time.Duration(400+wanRng.Intn(400)) * time.Millisecond
			select {
			case <-ctx.Done():
			case <-time.After(hold):
			}
			wnet.Revert(ep)
			if wanCl != nil {
				if m := cur.Membership(); m != nil {
					wanCl.UpdateMembership(m.Replicas, m.Keys)
				}
				report.WANProbes++
				op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("wan-r%d", round), Value: []byte("healed")})
				ictx, cancel := context.WithTimeout(ctx, 10*time.Second)
				_, perr := wanCl.Invoke(ictx, op)
				cancel()
				if perr != nil {
					report.WANProbeErrs++
					report.Violations = append(report.Violations,
						fmt.Sprintf("round %d: no commit after healing %s: %v", round, ep.Desc, perr))
				}
			}
		}
		if faulty {
			report.FaultRounds++
		}
		cfg.Logf("chaos: round %d: bomb=%v fault=%+v ltu=%d isolated=%d cut=%d-%d",
			round, bomb, cur.builder.FaultPolicy(), ltuMode.Load(), isolated, cutA, cutB)

		// 2. Maybe publish a fresh critical CVE shared by running OSes.
		if bomb {
			simDays.Add(1)
			now := clock()
			cfgOSes := cur.Status().Config
			if len(cfgOSes) >= 3 {
				var products []string
				for _, id := range cfgOSes[:3] {
					if os, err := catalog.ByID(id); err == nil {
						products = append(products, os.CPEProduct)
					}
				}
				bombSeq++
				v := &osint.Vulnerability{
					ID:          fmt.Sprintf("CVE-2018-77%03d", bombSeq),
					Description: "Remote code execution in the shared hypervisor escape path allows full host compromise via crafted descriptors.",
					Products:    products,
					Published:   now.AddDate(0, 0, -1),
					CVSS:        9.8,
					ExploitAt:   now.AddDate(0, 0, -1),
				}
				published = append(published, v)
				if err := cur.RefreshIntel(ctx, v); err != nil {
					report.Violations = append(report.Violations, fmt.Sprintf("round %d: refresh: %v", round, err))
				}
				report.Bombs++
			}
		}

		// 2b. Maybe arm a controller kill: the crash plan fires a few WAL
		// appends into the round, which on a swap round lands between a
		// stage intent and its outcome — the worst window.
		if cfg.ControllerFaults && killRng.Float64() < cfg.ControllerKillProb {
			left := new(atomic.Int64)
			left.Store(int64(1 + killRng.Intn(12)))
			cur.ScheduleCrash(func(WALRecord) bool { return left.Add(-1) == 0 })
		}

		// 3. One Algorithm 1 round with whatever faults are active.
		d, err := cur.MonitorRound(ctx)
		cur.ScheduleCrash(nil)
		if cur.isCrashed() {
			report.ControllerKills++
			cfg.Logf("chaos: round %d: controller killed (generation %d)", round, cur.Generation())

			// The execution plane must not depend on the control plane:
			// order requests through the dead controller's last membership
			// view. Individual probes may lose to the round's network
			// faults; all of them failing is a violation.
			if downCl != nil {
				if m := cur.Membership(); m != nil {
					downCl.UpdateMembership(m.Replicas, m.Keys)
				}
				served := 0
				for p := 0; p < 2; p++ {
					report.DownProbes++
					op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: fmt.Sprintf("down-r%d-p%d", round, p), Value: []byte("ok")})
					ictx, cancel := context.WithTimeout(ctx, 3*time.Second)
					_, perr := downCl.Invoke(ictx, op)
					cancel()
					if perr != nil {
						report.DownProbeErrs++
					} else {
						served++
					}
				}
				if served == 0 {
					report.Violations = append(report.Violations,
						fmt.Sprintf("round %d: service unavailable while controller down", round))
				}
			}

			// Clear the injected faults before recovery, like a restart
			// that outlives the transient failure, then bring up the
			// successor from the shared WAL and the surviving plant.
			disarmByz()
			cur.SetFaultPolicy(nil)
			ltuMode.Store(int32(ltuHealthy))
			if isolated >= 0 {
				net.Rejoin(isolated)
				isolated = -1
			}
			if cutA >= 0 {
				net.Heal(cutA, cutB)
				cutA, cutB = -1, -1
			}
			next, rerr := Recover(ctx, mkConfig(append([]*osint.Vulnerability(nil), published...)), cur.Plant())
			if rerr != nil {
				report.Violations = append(report.Violations, fmt.Sprintf("round %d: recover: %v", round, rerr))
				break
			}
			report.Recoveries++
			if cur.client != nil {
				cur.client.Close()
			}
			ctrlP.Store(next)
			cur = next
		} else if err != nil {
			report.RoundErrors++
			cfg.Logf("chaos: round %d: %v", round, err)
		}
		if d.Reconfigured && err == nil {
			report.Reconfigs++
		}

		// 3b. While the attack is still live, prove liveness and reply
		// integrity: the group must order fresh commands with f members
		// Byzantine — a censoring primary in particular must have been
		// demoted by view change — and the probe client must read back
		// the true value, never a forged reply (it needs f+1 matching
		// replies, and only the f attackers lie).
		if len(attackers) > 0 && byzCl != nil {
			if m := cur.Membership(); m != nil {
				byzCl.UpdateMembership(m.Replicas, m.Keys)
			}
			report.ByzProbes++
			// Demoting a censoring primary takes several progress-timer
			// firings; under WAN conditions those timers run at RTT-scaled,
			// backed-off values, so the probe deadline scales with them.
			probeTimeout := 5 * time.Second
			if wanProf != nil {
				probeTimeout = 20 * time.Second
			}
			key := fmt.Sprintf("byz-r%d", round)
			val := []byte(fmt.Sprintf("v%d", round))
			want := append([]byte("VAL"), val...)
			putOp, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: key, Value: val})
			getOp, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpGet, Key: key})
			ictx, cancel := context.WithTimeout(ctx, probeTimeout)
			_, perr := byzCl.Invoke(ictx, putOp)
			cancel()
			var res []byte
			if perr == nil {
				ictx, cancel = context.WithTimeout(ctx, probeTimeout)
				res, perr = byzCl.Invoke(ictx, getOp)
				cancel()
			}
			switch {
			case perr != nil:
				report.ByzProbeErrs++
				report.Violations = append(report.Violations,
					fmt.Sprintf("round %d: no progress under %s attack: %v", round, byzKind, perr))
				// Forensics: a stalled probe means some replica is holding
				// the quorum hostage — dump where each one stands.
				for id, st := range replicaStats(cur) {
					cfg.Logf("chaos: round %d: replica %d: epoch %d view %d lastExec %d low %d head %d log %d ckpts %d pending %d vcs %d xfers %d",
						round, id, st.CurrentEpoch, st.CurrentView, st.LastExecuted,
						st.LowWater, st.SeqHead, st.LogInstances, st.CheckpointStates,
						st.PendingRequests, st.ViewChanges, st.StateTransfers)
				}
			case !bytes.Equal(res, want):
				report.ByzProbeErrs++
				report.Violations = append(report.Violations,
					fmt.Sprintf("round %d: %s attack forged a reply: got %q want %q", round, byzKind, res, want))
			}
		}

		// 4. Clear transient faults and verify the invariants held. After
		// a Byzantine round, also cross-check every replica's execution
		// trace: no two replicas may have executed different commands at
		// the same sequence number, no matter what the attackers sent.
		byzRound := len(attackers) > 0
		disarmByz()
		cur.SetFaultPolicy(nil)
		ltuMode.Store(int32(ltuHealthy))
		if isolated >= 0 {
			net.Rejoin(isolated)
		}
		if cutA >= 0 {
			net.Heal(cutA, cutB)
		}
		if byzRound {
			for _, v := range checkExecTraces(cur) {
				report.Violations = append(report.Violations, fmt.Sprintf("round %d: %s", round, v))
			}
		}
		checkRound(fmt.Sprintf("round %d", round))
	}

	// Settling rounds with no faults: quarantined images requeue, and any
	// pending replacement gets a clean shot.
	for i := 0; i < 2 && ctx.Err() == nil; i++ {
		if _, err := ctrlP.Load().MonitorRound(ctx); err != nil {
			cfg.Logf("chaos: settling round: %v", err)
		}
	}
	stopLoad()
	wg.Wait()
	checkRound("final")
	if cfg.ByzFaults {
		for _, v := range checkExecTraces(ctrlP.Load()) {
			report.Violations = append(report.Violations, fmt.Sprintf("final: %s", v))
		}
	}

	// Closing liveness probe: the service must still order requests
	// through the final membership.
	probeID := transport.ClientIDBase + transport.NodeID(probes)
	if cl, err := ctrlP.Load().ServiceClient(probeID, clientPrivs[probeID]); err == nil {
		pctx, cancel := context.WithTimeout(ctx, 15*time.Second)
		op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: "chaos-final", Value: []byte("ok")})
		if _, err := cl.Invoke(pctx, op); err != nil {
			report.Violations = append(report.Violations, fmt.Sprintf("final liveness probe: %v", err))
		}
		cancel()
		cl.Close()
	} else {
		report.Violations = append(report.Violations, fmt.Sprintf("final probe client: %v", err))
	}

	fin := ctrlP.Load()
	report.Stats = fin.SwapStats()
	report.History = fin.SwapHistory()
	report.Net = net.Stats()
	if wnet != nil {
		report.Netem = wnet.NetemStats()
	}
	report.Final = fin.Status()
	report.Census = fin.Census()
	report.ClientOps = ops.Load()
	report.ClientErrs = opErrs.Load()
	report.Generation = fin.Generation()
	switch w := wal.(type) {
	case *MemWAL:
		report.WALRecords = w.Len()
	default:
		n := 0
		if err := wal.Replay(func(WALRecord) error { n++; return nil }); err == nil {
			report.WALRecords = n
		}
	}
	return report, nil
}

// checkExecTraces is the Byzantine safety cross-check: it collects every
// running replica's recent execution trace and verifies that no two
// replicas executed different command batches at the same sequence
// number. The attackers only control compromised replicas' *sends*, so
// every replica's own trace is trustworthy evidence of what it executed.
// replicaStats snapshots every running replica's protocol position for
// liveness forensics.
func replicaStats(c *Controller) map[transport.NodeID]bft.ReplicaStats {
	c.mu.Lock()
	reps := make(map[transport.NodeID]*bft.Replica, len(c.nodes))
	for id, slot := range c.nodes {
		if slot == nil || slot.node == nil {
			continue
		}
		if r := slot.node.Replica(); r != nil {
			reps[id] = r
		}
	}
	c.mu.Unlock()
	out := make(map[transport.NodeID]bft.ReplicaStats, len(reps))
	for id, r := range reps {
		out[id] = r.Stats()
	}
	return out
}

func checkExecTraces(c *Controller) []string {
	c.mu.Lock()
	reps := make(map[transport.NodeID]*bft.Replica, len(c.nodes))
	for id, slot := range c.nodes {
		if slot == nil || slot.node == nil {
			continue
		}
		if r := slot.node.Replica(); r != nil {
			reps[id] = r
		}
	}
	c.mu.Unlock()

	ids := make([]transport.NodeID, 0, len(reps))
	for id := range reps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var v []string
	nullDigest := (&bft.Batch{}).Digest()
	kind := func(d bft.Digest) string {
		if d == nullDigest {
			return "null"
		}
		return fmt.Sprintf("%x", d[:4])
	}
	first := make(map[uint64]bft.ExecRecord)   // seq -> first record seen
	owner := make(map[uint64]transport.NodeID) // seq -> replica that set it
	for _, id := range ids {
		for _, rec := range reps[id].ExecTrace() {
			if prev, ok := first[rec.Seq]; ok {
				if prev.Digest != rec.Digest {
					v = append(v, fmt.Sprintf(
						"SAFETY: replicas %d and %d executed different batches at seq %d "+
							"(%d: batch %s at epoch %d view %d; %d: batch %s at epoch %d view %d)",
						owner[rec.Seq], id, rec.Seq,
						owner[rec.Seq], kind(prev.Digest), prev.Epoch, prev.View,
						id, kind(rec.Digest), rec.Epoch, rec.View))
				}
				continue
			}
			first[rec.Seq] = rec
			owner[rec.Seq] = id
		}
	}
	return v
}

// checkInvariants verifies the chaos safety conditions against the
// controller's current state:
//
//  1. the service runs exactly n=3f+1 replicas, all of them members;
//  2. the membership mirrors the OS→node map exactly (no half-applied
//     ADDs, no forgotten REMOVEs);
//  3. no node runs outside the membership (no leaked joiners);
//  4. the swap ledger balances: attempts = successes + rollbacks, with
//     no failed compensations.
func checkInvariants(c *Controller, n int) []string {
	var v []string
	st := c.Status()
	census := c.Census()

	if len(st.Config) != n {
		v = append(v, fmt.Sprintf("config has %d OSes, want %d (%v)", len(st.Config), n, st.Config))
	}
	if len(st.Members) != n {
		v = append(v, fmt.Sprintf("membership has %d replicas, want %d (%v)", len(st.Members), n, st.Members))
	}
	if len(st.Nodes) != n {
		v = append(v, fmt.Sprintf("os->node map has %d entries, want %d (%v)", len(st.Nodes), n, st.Nodes))
	}
	// Membership and osToNode must be exactly the same node set.
	nodeSet := make([]transport.NodeID, 0, len(st.Nodes))
	for _, id := range st.Nodes {
		nodeSet = append(nodeSet, id)
	}
	sort.Slice(nodeSet, func(i, j int) bool { return nodeSet[i] < nodeSet[j] })
	members := append([]transport.NodeID(nil), st.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if fmt.Sprint(nodeSet) != fmt.Sprint(members) {
		v = append(v, fmt.Sprintf("membership %v != os->node nodes %v", members, nodeSet))
	}
	// Every config OS maps to a node.
	for _, osID := range st.Config {
		if _, ok := st.Nodes[osID]; !ok {
			v = append(v, fmt.Sprintf("config OS %s has no node", osID))
		}
	}
	if len(census.Running) != n {
		v = append(v, fmt.Sprintf("%d replicas running, want %d", len(census.Running), n))
	}
	if len(census.Orphans) > 0 {
		v = append(v, fmt.Sprintf("leaked nodes running outside the membership: %v", census.Orphans))
	}
	stats := c.SwapStats()
	if stats.RollbackFailures > 0 {
		v = append(v, fmt.Sprintf("%d swap compensations failed", stats.RollbackFailures))
	}
	if stats.Attempts != stats.Successes+stats.Rollbacks+stats.RollbackFailures {
		v = append(v, fmt.Sprintf("swap ledger unbalanced: %d attempts vs %d successes + %d rollbacks + %d aborts",
			stats.Attempts, stats.Successes, stats.Rollbacks, stats.RollbackFailures))
	}
	return v
}
