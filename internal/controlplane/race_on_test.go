//go:build race

package controlplane

// raceEnabled reports whether the race detector is compiled in; slow
// replay-comparison tests skip under it to keep the package inside the
// CI time budget (they still run in the plain `go test` pass).
const raceEnabled = true
