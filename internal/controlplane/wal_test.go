package controlplane

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lazarus/internal/transport"
)

func walTestRecords() []WALRecord {
	return []WALRecord{
		{Kind: WALBootstrap, CtrlKey: []byte("not-a-real-key"), N: 4},
		{Kind: WALMembership, Epoch: 1, Members: []transport.NodeID{0, 1, 2, 3},
			MemberKeys: map[transport.NodeID][]byte{0: []byte("k0"), 3: []byte("k3")}},
		{Kind: WALCensus, Config: []string{"a", "b"}, Pool: []string{"c"},
			Quarantine: []string{"d"}, Threshold: 12.5,
			OSNodes:  map[string]transport.NodeID{"a": 0, "b": 1},
			NextNode: 4, LTUSeq: 9, RandDraws: 42,
			Stats: &SwapStats{Attempts: 3, Successes: 2, StageFailures: map[SwapStage]uint64{StageCatchUp: 1}}},
		{Kind: WALSwapBegin, SwapID: 1, RemovedOS: "a", AddedOS: "c", OldNode: 0, NewNode: 4},
		{Kind: WALStageIntent, SwapID: 1, Stage: StageAdd},
		{Kind: WALStageOutcome, SwapID: 1, Stage: StageAdd, OK: true},
		{Kind: WALStageIntent, SwapID: 1, Stage: StageRemove, Compensating: true},
		{Kind: WALStageOutcome, SwapID: 1, Stage: StageRemove, Compensating: true, OK: false, Err: "boom"},
		{Kind: WALSwapEnd, SwapID: 1, Swap: &SwapRecord{Removed: "a", Added: "c", Outcome: SwapRolledBack, FailedStage: StageCatchUp, Err: "x"}},
		{Kind: WALRecover, Generation: 1},
	}
}

func replayAll(t *testing.T, w WAL) []WALRecord {
	t.Helper()
	var got []WALRecord
	if err := w.Replay(func(rec WALRecord) error { got = append(got, rec); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestMemWALRoundTrip(t *testing.T) {
	w := NewMemWAL()
	want := walTestRecords()
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, w)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALRecord{Kind: WALRecover}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	// A closed MemWAL stays replayable (a recovering controller reads its
	// predecessor's log) and Reopen makes it appendable again.
	if n := len(replayAll(t, w)); n != len(want) {
		t.Fatalf("replay after close: %d records, want %d", n, len(want))
	}
	w.Reopen()
	if err := w.Append(WALRecord{Kind: WALRecover, Generation: 1}); err != nil {
		t.Fatalf("append after Reopen: %v", err)
	}
}

func TestFileWALRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := walTestRecords()
	for _, rec := range want[:6] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Replay of a live log sees everything appended so far.
	if got := replayAll(t, w); !reflect.DeepEqual(got, want[:6]) {
		t.Fatalf("live replay mismatch: %+v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and append the rest: the log concatenates across crashes.
	w2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for _, rec := range want[6:] {
		if err := w2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := replayAll(t, w2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestFileWALTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := walTestRecords()[:4]
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a half-written frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 11)
	binary.LittleEndian.PutUint32(torn, 4096) // length field promising more than exists
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("after torn tail: %d records, want %d intact", len(got), len(recs))
	}
	// The torn bytes are gone from disk and appends continue cleanly.
	if err := w2.Append(WALRecord{Kind: WALRecover, Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, w2); len(got) != len(recs)+1 || got[len(got)-1].Kind != WALRecover {
		t.Fatalf("append after truncation: %+v", got)
	}
}

func TestFileWALRejectsCorruptChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range walTestRecords()[:3] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the middle record: that record and
	// everything after it must be discarded (checksum, not just length,
	// guards integrity).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := int(binary.LittleEndian.Uint32(data))
	corruptAt := walHeaderSize + firstLen + walHeaderSize + 2 // inside record 2's payload
	data[corruptAt] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if len(got) != 1 || got[0].Kind != WALBootstrap {
		t.Fatalf("after corruption: %+v, want only the first record", got)
	}
}
