// Write-ahead control-plane store (ROADMAP "replicated, restartable
// control plane", first half): everything a recovering controller needs
// to re-adopt a running data plane lives in an append-only record log —
// the census (lifecycle sets, node map, rng position, LTU sequence), the
// membership epoch, the bounded swap history, and every swap stage
// transition. Stage records follow the intent/outcome protocol: the
// intent is appended (and synced) BEFORE the side effect runs, the
// outcome after, so a crash between any two lines of the swap engine
// leaves evidence that bounds what the cluster state can be. Recovery
// (recover.go) replays the log and probes the live cluster to resolve
// the one remaining ambiguity — intent logged, outcome unknown.
//
// The store is dependency-free by design: records are length-prefixed,
// CRC-checksummed JSON. MemWAL backs tests; FileWAL backs lazbench and
// tolerates a torn tail (a record half-written at crash time is
// discarded on open, never half-applied).
package controlplane

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"lazarus/internal/transport"
)

// WALKind discriminates record types in the control-plane log.
type WALKind string

// Record kinds, in rough lifecycle order.
const (
	// WALBootstrap is written once per log: the controller identity
	// (signing key) and static shape (N). Everything else can change;
	// this cannot.
	WALBootstrap WALKind = "bootstrap"
	// WALMembership records the replica group after a committed change:
	// epoch, member node IDs, and each member's public key.
	WALMembership WALKind = "membership"
	// WALCensus snapshots the control plane between swaps: monitor
	// lifecycle sets, threshold, OS→node map, next node ID, LTU command
	// sequence, and the rng draw count (for deterministic replay).
	WALCensus WALKind = "census"
	// WALSwapBegin opens a swap: which OS leaves, which joins, on which
	// nodes.
	WALSwapBegin WALKind = "swap-begin"
	// WALStageIntent is appended before a stage's side effect runs.
	WALStageIntent WALKind = "stage-intent"
	// WALStageOutcome is appended after the stage settles (ok or err).
	WALStageOutcome WALKind = "stage-outcome"
	// WALSwapEnd closes a swap with its full SwapRecord.
	WALSwapEnd WALKind = "swap-end"
	// WALRecover marks a controller generation change: a new process
	// adopted the log. Generation N's client identity derives from it.
	WALRecover WALKind = "recover"
)

// WALRecord is one entry of the control-plane log. It is a flat union:
// Kind says which fields are meaningful. Flat JSON keeps the codec
// trivial and the log greppable.
type WALRecord struct {
	Kind WALKind `json:"kind"`

	// bootstrap
	CtrlKey []byte `json:"ctrl_key,omitempty"` // ed25519 private key
	N       int    `json:"n,omitempty"`

	// recover
	Generation int `json:"generation,omitempty"`

	// membership
	Epoch      uint64                      `json:"epoch,omitempty"`
	Members    []transport.NodeID          `json:"members,omitempty"`
	MemberKeys map[transport.NodeID][]byte `json:"member_keys,omitempty"`

	// census
	Config     []string                    `json:"config,omitempty"`
	Pool       []string                    `json:"pool,omitempty"`
	Quarantine []string                    `json:"quarantine,omitempty"`
	Threshold  float64                     `json:"threshold,omitempty"`
	OSNodes    map[string]transport.NodeID `json:"os_nodes,omitempty"`
	NextNode   transport.NodeID            `json:"next_node,omitempty"`
	LTUSeq     uint64                      `json:"ltu_seq,omitempty"`
	RandDraws  uint64                      `json:"rand_draws,omitempty"`
	Stats      *SwapStats                  `json:"stats,omitempty"`

	// swap-begin / stage records
	SwapID    uint64           `json:"swap_id,omitempty"`
	RemovedOS string           `json:"removed_os,omitempty"`
	AddedOS   string           `json:"added_os,omitempty"`
	OldNode   transport.NodeID `json:"old_node,omitempty"`
	NewNode   transport.NodeID `json:"new_node,omitempty"`
	Stage     SwapStage        `json:"stage,omitempty"`
	// Compensating marks stage records issued by the compensation path
	// (its REMOVE targets the joiner, not the quarantined replica), so
	// resume can tell a forward REMOVE from a rollback REMOVE.
	Compensating bool   `json:"compensating,omitempty"`
	OK           bool   `json:"ok,omitempty"`
	Err          string `json:"err,omitempty"`

	// swap-end
	Swap *SwapRecord `json:"swap,omitempty"`
}

// WAL is the append-only control-plane store. Append must be atomic with
// respect to Replay: a record is either fully visible to a later replay
// or not at all (FileWAL discards a torn tail on open). Implementations
// must be safe for concurrent use.
type WAL interface {
	// Append adds a record to the log. Durability is implementation-
	// defined (MemWAL: immediate; FileWAL: written immediately, fsynced
	// asynchronously — call Sync for a hard barrier).
	Append(rec WALRecord) error
	// Replay streams every record, oldest first. Stops early if fn
	// returns an error.
	Replay(fn func(rec WALRecord) error) error
	// Sync blocks until all appended records are durable.
	Sync() error
	// Close releases resources. Append after Close errors.
	Close() error
}

// ---------------------------------------------------------------------
// MemWAL

// MemWAL is the in-memory WAL used by tests and by controllers that opt
// out of file durability: it preserves the record protocol (so recovery
// logic is exercised identically) without touching disk.
type MemWAL struct {
	mu     sync.Mutex
	recs   []WALRecord
	closed bool
}

// NewMemWAL returns an empty in-memory log.
func NewMemWAL() *MemWAL { return &MemWAL{} }

// Append implements WAL.
func (w *MemWAL) Append(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("controlplane: append to closed WAL")
	}
	// Deep-copy through the codec so a caller mutating maps/slices after
	// Append cannot retroactively edit history (file semantics).
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("controlplane: encoding WAL record: %w", err)
	}
	var cp WALRecord
	if err := json.Unmarshal(buf, &cp); err != nil {
		return fmt.Errorf("controlplane: re-decoding WAL record: %w", err)
	}
	w.recs = append(w.recs, cp)
	return nil
}

// Replay implements WAL.
func (w *MemWAL) Replay(fn func(rec WALRecord) error) error {
	w.mu.Lock()
	recs := append([]WALRecord(nil), w.recs...)
	w.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements WAL (memory is always "durable").
func (w *MemWAL) Sync() error { return nil }

// Close implements WAL. The records stay readable: a recovering
// controller replays the same MemWAL object its predecessor wrote.
func (w *MemWAL) Close() error {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	return nil
}

// Len reports the number of records (tests and chaos reports).
func (w *MemWAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}

// Reopen makes a closed MemWAL appendable again, modeling a recovering
// controller reopening its predecessor's log file.
func (w *MemWAL) Reopen() {
	w.mu.Lock()
	w.closed = false
	w.mu.Unlock()
}

// ---------------------------------------------------------------------
// FileWAL

// Framing: every record is [4-byte little-endian length][4-byte IEEE
// CRC32 of the payload][JSON payload]. A record whose length field,
// payload, or checksum is incomplete/wrong is a torn tail: everything
// before it is the log, it and everything after are discarded.
const walHeaderSize = 8

// walMaxRecord caps a single record's decoded size; a length field above
// this is treated as corruption, not an allocation request.
const walMaxRecord = 16 << 20

// FileWAL is the file-backed WAL for lazbench and real deployments.
// Appends write through to the OS immediately and an fsync worker makes
// them durable asynchronously; Sync() is the synchronous barrier (the
// swap engine uses it before every side effect).
type FileWAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool

	// The fsync worker drains kicks until Close closes the channel; wg
	// ties its lifetime to the FileWAL.
	kick chan struct{}
	wg   sync.WaitGroup
}

// OpenFileWAL opens (or creates) the log at path, scans it, and truncates
// any torn tail so the file ends on a record boundary.
func OpenFileWAL(path string) (*FileWAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controlplane: opening WAL %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("controlplane: reading WAL %s: %w", path, err)
	}
	valid := validWALPrefix(data)
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("controlplane: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &FileWAL{f: f, path: path, kick: make(chan struct{}, 1)}
	w.wg.Add(1)
	go w.syncLoop()
	return w, nil
}

// validWALPrefix returns the byte length of the longest prefix of data
// that is a sequence of whole, checksum-valid records.
func validWALPrefix(data []byte) int64 {
	off := 0
	for off+walHeaderSize <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n <= 0 || n > walMaxRecord || off+walHeaderSize+n > len(data) {
			break
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		off += walHeaderSize + n
	}
	return int64(off)
}

// syncLoop is the fsync worker: it coalesces kicks (many appends, one
// fsync) and exits when Close closes the kick channel.
func (w *FileWAL) syncLoop() {
	defer w.wg.Done()
	for range w.kick {
		w.mu.Lock()
		if !w.closed {
			w.f.Sync()
		}
		w.mu.Unlock()
	}
}

// Append implements WAL: the record hits the OS before Append returns;
// durability follows via the fsync worker (or an explicit Sync).
func (w *FileWAL) Append(rec WALRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("controlplane: encoding WAL record: %w", err)
	}
	frame := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderSize:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("controlplane: append to closed WAL")
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("controlplane: writing WAL record: %w", err)
	}
	select {
	case w.kick <- struct{}{}:
	default: // a sync is already pending; it will cover this record
	}
	return nil
}

// Replay implements WAL: it reads the file from the start with an
// independent handle, so replaying a live log is safe. A torn tail (from
// a crash after this WAL was opened) ends the replay silently, matching
// the open-time truncation semantics.
func (w *FileWAL) Replay(fn func(rec WALRecord) error) error {
	w.mu.Lock()
	path := w.path
	w.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("controlplane: replaying WAL %s: %w", path, err)
	}
	valid := validWALPrefix(data)
	off := int64(0)
	for off < valid {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		payload := data[off+walHeaderSize : off+walHeaderSize+n]
		var rec WALRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("controlplane: decoding WAL record at offset %d: %w", off, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += walHeaderSize + n
	}
	return nil
}

// Sync implements WAL: a synchronous durability barrier.
func (w *FileWAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.f.Sync()
}

// Close implements WAL: final fsync, stop the worker, close the file.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	close(w.kick)
	w.wg.Wait()
	return err
}
