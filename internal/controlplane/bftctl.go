package controlplane

// This file implements the replicated-controller design the paper
// outlines in §5.3: instead of trusting a single controller machine, the
// control-plane STATE is itself a BFT-replicated service (running on the
// same replication library as the data plane). Three of the section's
// four key issues are addressed here:
//
//   - LTUs cannot trust a single controller command, so they POLL the
//     replicated directory as ordinary BFT clients and act on a command
//     only when f+1 controller replicas vouch for it (PollingLTU);
//   - controller replicas must use the same randomness for Algorithm 1's
//     candidate pick, provided by the commit-reveal Beacon whose phases
//     are ordered through this directory;
//   - reconfiguration decisions are recorded once per monitoring round,
//     first-writer-wins, so every controller replica converges on the
//     same swap.
//
// (The fourth issue — trusted "replicated patching" of quarantined images
// — is delegated to per-organization curator components, as the paper
// suggests.)

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	mrand "math/rand"
	"sort"
	"sync"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/core"
	"lazarus/internal/ltu"
	"lazarus/internal/transport"
)

// DirCommand is one queued LTU command in the replicated directory.
type DirCommand struct {
	// Seq is the per-node command sequence number (assigned by the
	// directory, strictly increasing).
	Seq uint64
	// Action, OSID and Joining mirror ltu.Command.
	Action  ltu.Action
	OSID    string
	Joining bool
}

// DirDecision records one monitoring round's reconfiguration decision.
type DirDecision struct {
	Round       uint64
	RemovedOS   string
	AddedOS     string
	RemovedNode transport.NodeID
	AddedNode   transport.NodeID
}

type dirOpKind byte

const (
	dirOpBeaconCommit dirOpKind = iota + 1
	dirOpBeaconReveal
	dirOpEnqueue
	dirOpFetch
	dirOpDecide
	dirOpGetDecision
)

// dirOp is the directory's wire operation.
type dirOp struct {
	Kind dirOpKind

	// Beacon fields.
	Round      uint64
	Member     int
	Commitment [sha256.Size]byte
	Share      BeaconShare

	// Command-queue fields.
	Node    transport.NodeID
	After   uint64
	Command DirCommand

	// Decision fields.
	Decision DirDecision
}

func encodeDirOp(op dirOp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		return nil, fmt.Errorf("controlplane: encoding directory op: %w", err)
	}
	return buf.Bytes(), nil
}

// Directory is the replicated control-plane state machine. It implements
// bft.Application; run one instance per controller replica.
type Directory struct {
	mu sync.Mutex

	beacon   *Beacon
	queues   map[transport.NodeID][]DirCommand
	nextSeq  map[transport.NodeID]uint64
	decision map[uint64]DirDecision
}

// NewDirectory builds a directory for n controller replicas tolerating f.
func NewDirectory(n, f int) (*Directory, error) {
	beacon, err := NewBeacon(n, f)
	if err != nil {
		return nil, err
	}
	return &Directory{
		beacon:   beacon,
		queues:   make(map[transport.NodeID][]DirCommand),
		nextSeq:  make(map[transport.NodeID]uint64),
		decision: make(map[uint64]DirDecision),
	}, nil
}

var _ bft.Application = (*Directory)(nil)

// Execute implements bft.Application.
func (d *Directory) Execute(payload []byte) []byte {
	var op dirOp
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
		return []byte("ERR " + err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch op.Kind {
	case dirOpBeaconCommit:
		if err := d.beacon.Commit(op.Round, op.Member, op.Commitment); err != nil {
			return []byte("ERR " + err.Error())
		}
		return []byte(fmt.Sprintf("COMMITS %d", d.beacon.CommitCount(op.Round)))
	case dirOpBeaconReveal:
		out, err := d.beacon.Reveal(op.Share)
		if err != nil {
			return []byte("ERR " + err.Error())
		}
		if out == nil {
			return []byte("PENDING")
		}
		return append([]byte("SEED"), out...)
	case dirOpEnqueue:
		d.nextSeq[op.Node]++
		cmd := op.Command
		cmd.Seq = d.nextSeq[op.Node]
		d.queues[op.Node] = append(d.queues[op.Node], cmd)
		return []byte(fmt.Sprintf("QUEUED %d", cmd.Seq))
	case dirOpFetch:
		var pending []DirCommand
		for _, cmd := range d.queues[op.Node] {
			if cmd.Seq > op.After {
				pending = append(pending, cmd)
			}
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(pending); err != nil {
			return []byte("ERR " + err.Error())
		}
		return append([]byte("CMDS"), buf.Bytes()...)
	case dirOpDecide:
		if prior, ok := d.decision[op.Decision.Round]; ok {
			return encodeDecision(prior) // first writer wins
		}
		d.decision[op.Decision.Round] = op.Decision
		return encodeDecision(op.Decision)
	case dirOpGetDecision:
		if dec, ok := d.decision[op.Round]; ok {
			return encodeDecision(dec)
		}
		return []byte("NONE")
	default:
		return []byte(fmt.Sprintf("ERR unknown op %d", op.Kind))
	}
}

func encodeDecision(dec DirDecision) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dec); err != nil {
		return []byte("ERR " + err.Error())
	}
	return append([]byte("DEC"), buf.Bytes()...)
}

// DecodeDecision parses a dirOpDecide/dirOpGetDecision reply.
func DecodeDecision(result []byte) (DirDecision, bool, error) {
	if bytes.Equal(result, []byte("NONE")) {
		return DirDecision{}, false, nil
	}
	if !bytes.HasPrefix(result, []byte("DEC")) {
		return DirDecision{}, false, fmt.Errorf("controlplane: result %q carries no decision", result)
	}
	var dec DirDecision
	if err := gob.NewDecoder(bytes.NewReader(result[3:])).Decode(&dec); err != nil {
		return DirDecision{}, false, err
	}
	return dec, true, nil
}

// directorySnapshot serializes the directory deterministically.
type directorySnapshot struct {
	Queues    []nodeQueue
	Decisions []DirDecision
	// The beacon's transient state is not checkpointed: rounds restart
	// after a restore, which is safe (shares are re-derivable and unused
	// rounds simply re-run).
}

type nodeQueue struct {
	Node    transport.NodeID
	NextSeq uint64
	Cmds    []DirCommand
}

// Snapshot implements bft.Application.
func (d *Directory) Snapshot() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var snap directorySnapshot
	nodes := make([]transport.NodeID, 0, len(d.queues))
	for n := range d.queues {
		nodes = append(nodes, n)
	}
	for n := range d.nextSeq {
		if _, ok := d.queues[n]; !ok {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		snap.Queues = append(snap.Queues, nodeQueue{Node: n, NextSeq: d.nextSeq[n], Cmds: d.queues[n]})
	}
	rounds := make([]uint64, 0, len(d.decision))
	for r := range d.decision {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	for _, r := range rounds {
		snap.Decisions = append(snap.Decisions, d.decision[r])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("controlplane: directory snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements bft.Application.
func (d *Directory) Restore(snapshot []byte) error {
	var snap directorySnapshot
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&snap); err != nil {
		return fmt.Errorf("controlplane: directory restore: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.queues = make(map[transport.NodeID][]DirCommand, len(snap.Queues))
	d.nextSeq = make(map[transport.NodeID]uint64, len(snap.Queues))
	for _, q := range snap.Queues {
		d.queues[q.Node] = q.Cmds
		d.nextSeq[q.Node] = q.NextSeq
	}
	d.decision = make(map[uint64]DirDecision, len(snap.Decisions))
	for _, dec := range snap.Decisions {
		d.decision[dec.Round] = dec
	}
	return nil
}

// DirectoryClient wraps a BFT client with typed directory operations.
// Every call is ordered through the controller group and its result is
// vouched for by f+1 controller replicas.
type DirectoryClient struct {
	client *bft.Client
}

// NewDirectoryClient wraps a client connected to the controller group.
func NewDirectoryClient(client *bft.Client) *DirectoryClient {
	return &DirectoryClient{client: client}
}

func (c *DirectoryClient) invoke(ctx context.Context, op dirOp) ([]byte, error) {
	payload, err := encodeDirOp(op)
	if err != nil {
		return nil, err
	}
	res, err := c.client.Invoke(ctx, payload)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(res, []byte("ERR")) {
		return nil, fmt.Errorf("controlplane: directory: %s", res)
	}
	return res, nil
}

// BeaconCommit submits a commitment for (round, member).
func (c *DirectoryClient) BeaconCommit(ctx context.Context, round uint64, member int, commitment [sha256.Size]byte) error {
	_, err := c.invoke(ctx, dirOp{Kind: dirOpBeaconCommit, Round: round, Member: member, Commitment: commitment})
	return err
}

// BeaconReveal submits a reveal; it returns the round's seed once a
// quorum of reveals completed (nil before that).
func (c *DirectoryClient) BeaconReveal(ctx context.Context, share BeaconShare) ([]byte, error) {
	res, err := c.invoke(ctx, dirOp{Kind: dirOpBeaconReveal, Share: share})
	if err != nil {
		return nil, err
	}
	if bytes.Equal(res, []byte("PENDING")) {
		return nil, nil
	}
	if !bytes.HasPrefix(res, []byte("SEED")) {
		return nil, fmt.Errorf("controlplane: unexpected reveal reply %q", res)
	}
	return res[4:], nil
}

// Enqueue orders an LTU command for a node; returns its sequence number.
func (c *DirectoryClient) Enqueue(ctx context.Context, node transport.NodeID, cmd DirCommand) (uint64, error) {
	res, err := c.invoke(ctx, dirOp{Kind: dirOpEnqueue, Node: node, Command: cmd})
	if err != nil {
		return 0, err
	}
	var seq uint64
	if _, err := fmt.Sscanf(string(res), "QUEUED %d", &seq); err != nil {
		return 0, fmt.Errorf("controlplane: unexpected enqueue reply %q", res)
	}
	return seq, nil
}

// Fetch returns the node's commands with Seq > after.
func (c *DirectoryClient) Fetch(ctx context.Context, node transport.NodeID, after uint64) ([]DirCommand, error) {
	res, err := c.invoke(ctx, dirOp{Kind: dirOpFetch, Node: node, After: after})
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(res, []byte("CMDS")) {
		return nil, fmt.Errorf("controlplane: unexpected fetch reply %q", res)
	}
	var cmds []DirCommand
	if err := gob.NewDecoder(bytes.NewReader(res[4:])).Decode(&cmds); err != nil {
		return nil, err
	}
	return cmds, nil
}

// Decide records a round's decision; the first recorded decision for a
// round wins and is returned.
func (c *DirectoryClient) Decide(ctx context.Context, dec DirDecision) (DirDecision, error) {
	res, err := c.invoke(ctx, dirOp{Kind: dirOpDecide, Decision: dec})
	if err != nil {
		return DirDecision{}, err
	}
	got, ok, err := DecodeDecision(res)
	if err != nil || !ok {
		return DirDecision{}, fmt.Errorf("controlplane: decide reply %q: %v", res, err)
	}
	return got, nil
}

// Decision fetches a round's decision, if recorded.
func (c *DirectoryClient) Decision(ctx context.Context, round uint64) (DirDecision, bool, error) {
	res, err := c.invoke(ctx, dirOp{Kind: dirOpGetDecision, Round: round})
	if err != nil {
		return DirDecision{}, false, err
	}
	return DecodeDecision(res)
}

// PollingLTU drives a node's LTU from the replicated directory: it
// periodically fetches the node's command queue (each fetch is a BFT
// invocation whose result f+1 controller replicas vouch for) and applies
// fresh commands in order. This replaces the push-style MAC'd channel of
// the centralized design, exactly as §5.3 prescribes.
type PollingLTU struct {
	node   transport.NodeID
	dir    *DirectoryClient
	driver ltu.Driver

	mu      sync.Mutex
	applied uint64
	history []DirCommand
}

// NewPollingLTU builds a polling LTU for the node.
func NewPollingLTU(node transport.NodeID, dir *DirectoryClient, driver ltu.Driver) (*PollingLTU, error) {
	if dir == nil || driver == nil {
		return nil, fmt.Errorf("controlplane: polling LTU needs a directory client and a driver")
	}
	return &PollingLTU{node: node, dir: dir, driver: driver}, nil
}

// Poll fetches and applies all fresh commands; it returns how many were
// applied.
func (p *PollingLTU) Poll(ctx context.Context) (int, error) {
	p.mu.Lock()
	after := p.applied
	p.mu.Unlock()
	cmds, err := p.dir.Fetch(ctx, p.node, after)
	if err != nil {
		return 0, err
	}
	applied := 0
	for _, cmd := range cmds {
		if cmd.Seq != after+uint64(applied)+1 {
			return applied, fmt.Errorf("controlplane: command gap at node %d: got seq %d, want %d",
				p.node, cmd.Seq, after+uint64(applied)+1)
		}
		switch cmd.Action {
		case ltu.ActionPowerOn:
			err = p.driver.PowerOn(cmd.OSID, cmd.Joining)
		case ltu.ActionPowerOff:
			err = p.driver.PowerOff()
		default:
			err = fmt.Errorf("controlplane: unknown directory action %v", cmd.Action)
		}
		if err != nil {
			return applied, err
		}
		applied++
		p.mu.Lock()
		p.applied = cmd.Seq
		p.history = append(p.history, cmd)
		p.mu.Unlock()
	}
	return applied, nil
}

// Applied returns the highest applied command sequence number.
func (p *PollingLTU) Applied() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied
}

// History returns the applied commands, oldest first.
func (p *PollingLTU) History() []DirCommand {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]DirCommand(nil), p.history...)
}

// ReplicatedDecision computes the monitoring-round decision every correct
// controller replica arrives at independently: Algorithm 1 evaluated
// against the (shared) risk evaluator with the beacon round's seed driving
// the random candidate pick. Each controller replica calls this locally
// and submits the result through DirectoryClient.Decide; since all correct
// replicas compute the same decision, the first-writer-wins rule is
// conflict-free among them.
func ReplicatedDecision(
	round uint64,
	seed []byte,
	eval core.RiskEvaluator,
	config core.Config,
	pool []core.Replica,
	threshold float64,
	now time.Time,
) (core.Decision, error) {
	if len(seed) == 0 {
		return core.Decision{}, fmt.Errorf("controlplane: round %d has no beacon seed", round)
	}
	rng := mrand.New(mrand.NewSource(Seed64(seed)))
	monitor, err := core.NewMonitor(eval, config, pool, core.MonitorConfig{
		Threshold: threshold,
		Rand:      rng,
	})
	if err != nil {
		return core.Decision{}, err
	}
	decision, err := monitor.Monitor(now)
	if err != nil && !errors.Is(err, core.ErrNoCandidate) && !errors.Is(err, core.ErrPoolExhausted) {
		return core.Decision{}, err
	}
	return decision, nil
}
