package controlplane

import "lazarus/internal/metrics"

// cpInstruments bundles the controller's registry-backed instruments.
// Built from a possibly-nil registry: a nil *metrics.Registry hands out
// working unregistered instruments, so the instrumented paths never
// guard.
type cpInstruments struct {
	// Risk-pipeline timings (RefreshIntel / MonitorRound).
	intelRefreshUS *metrics.Histogram
	clusterBuildUS *metrics.Histogram
	monitorRoundUS *metrics.Histogram
	intelRecords   *metrics.Gauge
	crawlRecords   *metrics.Counter
	crawlErrors    *metrics.Counter

	// Swap-engine telemetry, mirroring SwapStats into the registry with
	// per-stage duration histograms on top.
	swapAttempts      *metrics.Counter
	swapRetries       *metrics.Counter
	swapTotalUS       *metrics.Histogram
	swapOutcome       [SwapAborted + 1]*metrics.Counter
	swapStageUS       [stageCount]*metrics.Histogram
	swapStageFailures [stageCount]*metrics.Counter

	// Durability telemetry (wal.go / recover.go): appends through the
	// intent/outcome protocol, replay cost on recovery, and how each
	// interrupted swap was resolved (indexed like swapOutcome).
	walAppends    *metrics.Counter
	walReplayUS   *metrics.Histogram
	resumeOutcome [SwapAborted + 1]*metrics.Counter
}

func newCPInstruments(reg *metrics.Registry) cpInstruments {
	ins := cpInstruments{
		intelRefreshUS: reg.Histogram("controlplane.intel_refresh_us"),
		clusterBuildUS: reg.Histogram("controlplane.cluster_build_us"),
		monitorRoundUS: reg.Histogram("controlplane.monitor_round_us"),
		intelRecords:   reg.Gauge("controlplane.intel_records"),
		crawlRecords:   reg.Counter("controlplane.crawl_records"),
		crawlErrors:    reg.Counter("controlplane.crawl_errors"),
		swapAttempts:   reg.Counter("controlplane.swap_attempts"),
		swapRetries:    reg.Counter("controlplane.swap_retries"),
		swapTotalUS:    reg.Histogram("controlplane.swap_total_us"),
		walAppends:     reg.Counter("controlplane.wal_appends"),
		walReplayUS:    reg.Histogram("controlplane.wal_replay_us"),
	}
	// Outcome 0 is never recorded but keeps the array total, so a stray
	// zero-valued record cannot panic the bookkeeping.
	ins.swapOutcome[0] = (*metrics.Registry)(nil).Counter("")
	ins.resumeOutcome[0] = (*metrics.Registry)(nil).Counter("")
	for o := SwapSucceeded; o <= SwapAborted; o++ {
		ins.swapOutcome[o] = reg.Counter("controlplane.swap_outcome." + o.String())
		ins.resumeOutcome[o] = reg.Counter("controlplane.resume_outcome." + o.String())
	}
	for s := SwapStage(0); s < stageCount; s++ {
		ins.swapStageUS[s] = reg.Histogram("controlplane.swap_stage_us." + s.String())
		ins.swapStageFailures[s] = reg.Counter("controlplane.swap_stage_failures." + s.String())
	}
	return ins
}
