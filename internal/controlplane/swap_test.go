package controlplane

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"sort"
	"testing"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/osint"
	"lazarus/internal/transport"
)

// TestCatchUpTimeoutRollsBack is the regression test for the staged swap
// engine's compensation path: the joiner boots but can never catch up
// (its links to every member are cut), so the catch-up stage times out.
// The engine must order a compensating REMOVE of the joiner, retire its
// node, restore the monitor's lifecycle sets, and leave the group at
// exactly n members — no powered-on orphan, no stray membership entry.
// On the pre-compensation engine this leaked both.
func TestCatchUpTimeoutRollsBack(t *testing.T) {
	start := time.Now()
	base := day(2018, 1, 16)
	clock := func() time.Time { return base.Add(time.Since(start)) }

	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	clientPub, clientPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	clientID := transport.ClientIDBase + transport.NodeID(1)
	ctrl, err := New(Config{
		N:            4,
		Seed:         7,
		Clock:        clock,
		InitialVulns: smallCorpus(t),
		Net:          net,
		App:          func() bft.Application { return kvs.New() },
		ClientKeys:   map[transport.NodeID]ed25519.PublicKey{clientID: clientPub},
		LTUSecret:    []byte("test-ltu-secret"),
		ReplicaTuning: func(cfg *bft.ReplicaConfig) {
			cfg.CheckpointInterval = 8
			cfg.ViewChangeTimeout = 200 * time.Millisecond
			cfg.BatchDelay = time.Millisecond
		},
		CatchUpTimeout:   time.Second,
		SwapStageTimeout: 3 * time.Second,
		SwapAttempts:     2,
		SwapBackoff:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctrl.Stop()
		net.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := ctrl.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}

	cl, err := ctrl.ServiceClient(clientID, clientPriv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	putOp, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: "pre", Value: []byte("swap")})
	if _, err := cl.Invoke(ctx, putOp); err != nil {
		t.Fatalf("preload: %v", err)
	}

	// Bootstrap used nodes 0..3; the swap engine will mint node 4 for the
	// joiner. Cut its future links to every member so it can never catch
	// up. (Cut records the pair even before the endpoint exists.)
	for id := transport.NodeID(0); id < 4; id++ {
		net.Cut(4, id)
	}

	before := ctrl.Status()
	bombOSes := make([]string, 3)
	copy(bombOSes, before.Config[:3])
	var products []string
	for _, id := range bombOSes {
		os, err := catalog.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		products = append(products, os.CPEProduct)
	}
	now := clock()
	bomb := &osint.Vulnerability{
		ID:          "CVE-2018-99002",
		Description: "Remote code execution in the shared virtio network driver allows full host compromise via crafted descriptors.",
		Products:    products,
		Published:   now.AddDate(0, 0, -1),
		CVSS:        9.8,
		ExploitAt:   now.AddDate(0, 0, -1),
	}
	if err := ctrl.RefreshIntel(ctx, bomb); err != nil {
		t.Fatal(err)
	}

	if _, err := ctrl.MonitorRound(ctx); err == nil {
		t.Fatal("MonitorRound succeeded although the joiner could not catch up")
	}

	st := ctrl.SwapStats()
	if st.Attempts != 1 || st.Rollbacks != 1 || st.RollbackFailures != 0 {
		t.Errorf("stats = %+v, want 1 attempt, 1 rollback, 0 failures", st)
	}
	if st.StageFailures[StageCatchUp] == 0 {
		t.Errorf("stage failures %v do not blame catch-up", st.StageFailures)
	}
	hist := ctrl.SwapHistory()
	if len(hist) != 1 || hist[0].Outcome != SwapRolledBack ||
		hist[0].FailedStage != StageCatchUp || hist[0].Err == "" {
		t.Errorf("history = %+v", hist)
	}

	// The joiner must not linger: not in the membership, not tracked, not
	// powered on. The removed OS is back in the configuration.
	after := ctrl.Status()
	if len(after.Config) != 4 || len(after.Members) != 4 {
		t.Fatalf("after rollback: config %v members %v", after.Config, after.Members)
	}
	if !sameStrings(after.Config, before.Config) {
		t.Errorf("config %v, want pre-swap %v", after.Config, before.Config)
	}
	for _, id := range after.Members {
		if id == 4 {
			t.Error("joiner node 4 still in membership")
		}
	}
	census := ctrl.Census()
	if len(census.Orphans) != 0 {
		t.Errorf("orphan nodes leaked: %v", census.Orphans)
	}
	if census.Tracked != 4 {
		t.Errorf("tracked nodes = %d, want 4", census.Tracked)
	}
	if len(after.Quarantine) != 0 {
		t.Errorf("quarantine = %v after rollback, want empty", after.Quarantine)
	}

	// The group still serves reads and writes.
	getOp, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpGet, Key: "pre"})
	res, err := cl.Invoke(ctx, getOp)
	if err != nil || string(res) != "VALswap" {
		t.Fatalf("post-rollback read = %q, %v", res, err)
	}

	// The next round mints a fresh joiner (node 5, fully connected) and
	// the swap goes through: the rollback left the control plane healthy.
	d, err := ctrl.MonitorRound(ctx)
	if err != nil {
		t.Fatalf("MonitorRound after rollback: %v", err)
	}
	if !d.Reconfigured {
		t.Fatal("no reconfiguration on retry round")
	}
	st = ctrl.SwapStats()
	if st.Successes != 1 || st.Rollbacks != 1 {
		t.Errorf("stats after retry = %+v", st)
	}
	final := ctrl.Status()
	if len(final.Config) != 4 || len(final.Members) != 4 {
		t.Errorf("final config %v members %v", final.Config, final.Members)
	}
	if len(final.Quarantine) != 1 || final.Quarantine[0] != d.Removed.ID {
		t.Errorf("quarantine = %v, want [%s]", final.Quarantine, d.Removed.ID)
	}
}

// TestParseReconfigResultMalformed is the regression test for the old
// log-string scrape: `fmt.Sscanf(s, "reconfig ok: epoch %d", &epoch)`
// ignored its error, so a malformed reply parsed as "applied at epoch 0".
// The structured decoder must refuse such replies outright — and a refusal
// is an error, never a verdict.
func TestParseReconfigResultMalformed(t *testing.T) {
	malformed := [][]byte{
		nil,
		[]byte("reconfig ok: epoch banana"), // old scrape read epoch 0 out of this
		[]byte("reconfig ok"),
		[]byte("reconfig error: bad public key"),
		[]byte("\x00BFT-RECONFIG-RESULT\x00{\"status\":"), // truncated payload
		[]byte("arbitrary app reply"),
	}
	for _, reply := range malformed {
		if v, ep, err := parseReconfigResult(reply); err == nil {
			t.Errorf("parseReconfigResult(%q) = (%v, %d, nil), want error", reply, v, ep)
		}
	}

	valid := []struct {
		reply   []byte
		verdict reconfigResult
		epoch   uint64
	}{
		{bft.ReconfigResult{Status: bft.ReconfigApplied, Epoch: 9}.Encode(), reconfigApplied, 9},
		{bft.ReconfigResult{Status: bft.ReconfigAlreadyMember}.Encode(), reconfigAlreadyDone, 0},
		{bft.ReconfigResult{Status: bft.ReconfigNotMember}.Encode(), reconfigAlreadyDone, 0},
		{bft.ReconfigResult{Status: bft.ReconfigTooSmall}.Encode(), reconfigTooSmall, 0},
		{bft.ReconfigResult{Status: bft.ReconfigInvalid, Detail: "bad public key"}.Encode(), reconfigRejected, 0},
	}
	for _, tc := range valid {
		v, ep, err := parseReconfigResult(tc.reply)
		if err != nil || v != tc.verdict || ep != tc.epoch {
			t.Errorf("parseReconfigResult(%q) = (%v, %d, %v), want (%v, %d, nil)",
				tc.reply, v, ep, err, tc.verdict, tc.epoch)
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestAttemptStageAbandonBlocksLateSettle is the regression test for the
// timed-out-attempt race: a stage goroutine that outlives its attempt
// timeout must not be able to publish a verdict afterwards — the
// controller has already moved on to a retry or to compensation, and a
// late write (e.g. orderAdd clearing addUncertain) would race with and
// corrupt the compensation decision.
func TestAttemptStageAbandonBlocksLateSettle(t *testing.T) {
	release := make(chan struct{})
	settled := make(chan bool, 1)
	err := attemptStage(context.Background(), 10*time.Millisecond, func(ctx context.Context, att *stageAttempt) error {
		<-release // ignore the context: outlive the timeout on purpose
		settled <- att.settle(func() {})
		return nil
	})
	if err == nil {
		t.Fatal("attemptStage returned nil, want timeout error")
	}
	close(release) // attemptStage has returned, so the attempt is abandoned
	if <-settled {
		t.Fatal("abandoned attempt settled its verdict after the timeout")
	}
}

// TestAttemptStageLiveSettle: an attempt that finishes within its budget
// publishes normally.
func TestAttemptStageLiveSettle(t *testing.T) {
	published := false
	err := attemptStage(context.Background(), time.Second, func(ctx context.Context, att *stageAttempt) error {
		if !att.settle(func() { published = true }) {
			t.Error("live attempt reported abandoned")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("attemptStage: %v", err)
	}
	if !published {
		t.Fatal("live attempt's publish did not run")
	}
}
