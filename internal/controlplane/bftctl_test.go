package controlplane

import (
	"bytes"
	"context"
	"testing"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/bft/bfttest"
	"lazarus/internal/core"
	"lazarus/internal/feeds"
	"lazarus/internal/ltu"
	"lazarus/internal/transport"
)

func TestBeaconCommitReveal(t *testing.T) {
	b, err := NewBeacon(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	secrets := [][]byte{[]byte("s0"), []byte("s1"), []byte("s2"), []byte("s3")}
	shares := make([]BeaconShare, 4)
	for i := range shares {
		shares[i] = DeriveShare(secrets[i], 1, i)
		if err := b.Commit(1, i, shares[i].Commitment()); err != nil {
			t.Fatal(err)
		}
	}
	if !b.ReadyToReveal(1) {
		t.Fatal("quorum of commitments not detected")
	}
	var out []byte
	for i := 0; i < 3; i++ { // 2f+1 reveals complete the round
		res, err := b.Reveal(shares[i])
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && res != nil {
			t.Fatalf("round completed after %d reveals", i+1)
		}
		out = res
	}
	if out == nil {
		t.Fatal("round did not complete at quorum")
	}
	if got, ok := b.Output(1); !ok || !bytes.Equal(got, out) {
		t.Error("Output disagrees with Reveal result")
	}
	// A late 4th reveal does not change the output.
	res, err := b.Reveal(shares[3])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, out) {
		t.Error("late reveal changed the beacon output")
	}
	if Seed64(out) == 0 {
		t.Error("seed folding produced zero (astronomically unlikely)")
	}
}

func TestBeaconRejectsCheating(t *testing.T) {
	b, err := NewBeacon(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	honest := DeriveShare([]byte("s"), 1, 0)
	if _, err := b.Reveal(honest); err == nil {
		t.Error("reveal without commitment accepted")
	}
	if err := b.Commit(1, 0, honest.Commitment()); err != nil {
		t.Fatal(err)
	}
	// A share that does not match the commitment is rejected.
	forged := honest
	forged.Share = append([]byte(nil), honest.Share...)
	forged.Share[0] ^= 0xFF
	if _, err := b.Reveal(forged); err == nil {
		t.Error("mismatched reveal accepted")
	}
	// Second commitment from the same member is ignored (first wins).
	other := DeriveShare([]byte("other"), 1, 0)
	if err := b.Commit(1, 0, other.Commitment()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Reveal(other); err == nil {
		t.Error("reveal against superseded commitment accepted")
	}
	if _, err := b.Reveal(honest); err != nil {
		t.Errorf("honest reveal rejected: %v", err)
	}
	if err := b.Commit(1, 99, [32]byte{}); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := NewBeacon(3, 1); err == nil {
		t.Error("n < 3f+1 accepted")
	}
}

func TestBeaconOutputUnbiasableByLateChoice(t *testing.T) {
	// The output folds the quorum-smallest member ids, so a Byzantine
	// member revealing last (member 3) cannot change the fold set once
	// members 0..2 revealed.
	b, _ := NewBeacon(4, 1)
	var shares []BeaconShare
	for i := 0; i < 4; i++ {
		s := DeriveShare([]byte{byte(i)}, 7, i)
		shares = append(shares, s)
		b.Commit(7, i, s.Commitment())
	}
	var out []byte
	for i := 0; i < 3; i++ {
		out, _ = b.Reveal(shares[i])
	}
	late, _ := b.Reveal(shares[3])
	if !bytes.Equal(out, late) {
		t.Error("late reveal altered the output")
	}
}

// launchDirectory runs a 4-replica controller group serving the
// Directory.
func launchDirectory(t *testing.T) (*bfttest.Cluster, *DirectoryClient) {
	t.Helper()
	cluster, err := bfttest.Launch(func(transport.NodeID) bft.Application {
		d, err := NewDirectory(4, 1)
		if err != nil {
			panic(err) // static sizes, cannot fail
		}
		return d
	}, bfttest.Options{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	client, err := cluster.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cluster, NewDirectoryClient(client)
}

func TestReplicatedBeaconRound(t *testing.T) {
	_, dir := launchDirectory(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Four controller replicas commit, then reveal, all through the BFT
	// log; the seed emerges once 2f+1 reveals are ordered.
	secrets := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	shares := make([]BeaconShare, 4)
	for i := range shares {
		shares[i] = DeriveShare(secrets[i], 1, i)
		if err := dir.BeaconCommit(ctx, 1, i, shares[i].Commitment()); err != nil {
			t.Fatal(err)
		}
	}
	var seed []byte
	for i := 0; i < 4; i++ {
		out, err := dir.BeaconReveal(ctx, shares[i])
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			seed = out
		}
	}
	if seed == nil {
		t.Fatal("no seed after all reveals")
	}
	if Seed64(seed) == 0 {
		t.Error("zero seed")
	}
}

func TestReplicatedDecisionFirstWriterWins(t *testing.T) {
	_, dir := launchDirectory(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first := DirDecision{Round: 3, RemovedOS: "UB16", AddedOS: "FB11", RemovedNode: 1, AddedNode: 9}
	got, err := dir.Decide(ctx, first)
	if err != nil {
		t.Fatal(err)
	}
	if got != first {
		t.Fatalf("first decision = %+v", got)
	}
	// A conflicting proposal for the same round yields the original.
	second := DirDecision{Round: 3, RemovedOS: "DE8", AddedOS: "SO11"}
	got, err = dir.Decide(ctx, second)
	if err != nil {
		t.Fatal(err)
	}
	if got != first {
		t.Fatalf("second writer overrode the round: %+v", got)
	}
	dec, ok, err := dir.Decision(ctx, 3)
	if err != nil || !ok || dec != first {
		t.Fatalf("Decision = %+v %v %v", dec, ok, err)
	}
	if _, ok, err := dir.Decision(ctx, 99); err != nil || ok {
		t.Fatalf("missing round reported present: %v %v", ok, err)
	}
}

// pollDriver records PollingLTU actions.
type pollDriver struct {
	mu  chan struct{}
	ons []string
	off int
}

func (d *pollDriver) PowerOn(osID string, joining bool) error {
	d.ons = append(d.ons, osID)
	return nil
}

func (d *pollDriver) PowerOff() error {
	d.off++
	return nil
}

func TestPollingLTUAppliesInOrder(t *testing.T) {
	_, dir := launchDirectory(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	node := transport.NodeID(42)
	driver := &pollDriver{}
	unit, err := NewPollingLTU(node, dir, driver)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing to do initially.
	n, err := unit.Poll(ctx)
	if err != nil || n != 0 {
		t.Fatalf("empty poll = %d, %v", n, err)
	}
	// Enqueue power-on UB16, power-off, power-on DE8.
	for _, cmd := range []DirCommand{
		{Action: ltu.ActionPowerOn, OSID: "UB16"},
		{Action: ltu.ActionPowerOff},
		{Action: ltu.ActionPowerOn, OSID: "DE8", Joining: true},
	} {
		if _, err := dir.Enqueue(ctx, node, cmd); err != nil {
			t.Fatal(err)
		}
	}
	n, err = unit.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("applied %d commands, want 3", n)
	}
	if len(driver.ons) != 2 || driver.ons[0] != "UB16" || driver.ons[1] != "DE8" || driver.off != 1 {
		t.Errorf("driver state: ons=%v off=%d", driver.ons, driver.off)
	}
	if unit.Applied() != 3 {
		t.Errorf("applied watermark = %d", unit.Applied())
	}
	// Re-polling applies nothing new (no replays).
	n, err = unit.Poll(ctx)
	if err != nil || n != 0 {
		t.Fatalf("re-poll = %d, %v", n, err)
	}
	if len(unit.History()) != 3 {
		t.Errorf("history = %v", unit.History())
	}
}

func TestDirectorySnapshotRoundTrip(t *testing.T) {
	d, err := NewDirectory(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	enq, _ := encodeDirOp(dirOp{Kind: dirOpEnqueue, Node: 7, Command: DirCommand{Action: ltu.ActionPowerOn, OSID: "UB16"}})
	d.Execute(enq)
	dec, _ := encodeDirOp(dirOp{Kind: dirOpDecide, Decision: DirDecision{Round: 1, RemovedOS: "DE8", AddedOS: "FB11"}})
	d.Execute(dec)

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDirectory(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Error("directory snapshot not stable across restore")
	}
	fetch, _ := encodeDirOp(dirOp{Kind: dirOpFetch, Node: 7, After: 0})
	if res := d2.Execute(fetch); !bytes.HasPrefix(res, []byte("CMDS")) {
		t.Errorf("restored fetch = %q", res)
	}
	// A new enqueue continues the sequence.
	if res := d2.Execute(enq); !bytes.Equal(res, []byte("QUEUED 2")) {
		t.Errorf("post-restore enqueue = %q", res)
	}
}

func TestDirectoryRejectsGarbage(t *testing.T) {
	d, err := NewDirectory(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res := d.Execute([]byte("garbage")); !bytes.HasPrefix(res, []byte("ERR")) {
		t.Errorf("garbage op = %q", res)
	}
	bad, _ := encodeDirOp(dirOp{Kind: 99})
	if res := d.Execute(bad); !bytes.HasPrefix(res, []byte("ERR")) {
		t.Errorf("unknown op = %q", res)
	}
}

func TestReplicatedDecisionDeterministic(t *testing.T) {
	// Every controller replica computing from the same seed, intel and
	// sets must arrive at the identical decision.
	corpus := smallCorpus(t)
	ctrl, err := New(Config{
		Net:          transport.NewMemory(transport.MemoryConfig{}),
		App:          func() bft.Application { return NewMustDirectory() },
		LTUSecret:    []byte("s"),
		InitialVulns: corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RefreshIntel(context.Background()); err != nil {
		t.Fatal(err)
	}
	eval := ctrl.eval

	universe := feedsReplicas()
	config := core.Config(universe[:4])
	pool := universe[4:]
	now := day(2018, 1, 15)
	seed := []byte("beacon-round-output")

	first, err := ReplicatedDecision(1, seed, eval, config, pool, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := ReplicatedDecision(1, seed, eval, config, pool, 1, now)
		if err != nil {
			t.Fatal(err)
		}
		if again.Reconfigured != first.Reconfigured ||
			again.Removed.ID != first.Removed.ID || again.Added.ID != first.Added.ID {
			t.Fatalf("replica %d computed a different decision: %+v vs %+v", i, again, first)
		}
	}
	// A different beacon output may choose differently (randomized pick),
	// but must still be internally deterministic.
	other, err := ReplicatedDecision(2, []byte("other-round"), eval, config, pool, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	other2, err := ReplicatedDecision(2, []byte("other-round"), eval, config, pool, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	if other.Removed.ID != other2.Removed.ID || other.Added.ID != other2.Added.ID {
		t.Fatal("same seed produced different decisions")
	}
	// Missing seed is rejected.
	if _, err := ReplicatedDecision(3, nil, eval, config, pool, 1, now); err == nil {
		t.Error("decision without beacon seed accepted")
	}
}

// NewMustDirectory builds a 4/1 directory or panics (static sizes).
func NewMustDirectory() *Directory {
	d, err := NewDirectory(4, 1)
	if err != nil {
		panic(err)
	}
	return d
}

// feedsReplicas avoids an import cycle in this test file.
func feedsReplicas() []core.Replica {
	return feeds.Replicas()
}
