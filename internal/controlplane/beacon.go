package controlplane

// This file implements the distributed-randomness piece of the paper's
// §5.3 BFT control-plane design: Algorithm 1 needs random numbers to pick
// among acceptable candidate configurations, and in a replicated
// controller every replica must derive the SAME random choice without any
// single party being able to bias it. The paper points at coin-tossing
// protocols (e.g. RandHound-style); this implementation uses the classic
// commit-reveal construction with the BFT log as the broadcast channel:
//
//  1. every controller replica commits H(share_i) for round r;
//  2. once 2f+1 commitments are ordered, replicas reveal share_i;
//  3. the beacon output is H(r || share_a || share_b || ...) over the
//     first 2f+1 revealed shares in replica order — at least f+1 of them
//     come from correct replicas, so a coalition of f cannot fix the
//     output after seeing honest commitments.

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// BeaconShare is one replica's contribution to a randomness round.
type BeaconShare struct {
	// Round numbers beacon rounds.
	Round uint64
	// Member identifies the contributing controller replica.
	Member int
	// Share is the secret contribution (revealed in phase 2).
	Share []byte
}

// Commitment binds a share without revealing it.
func (s BeaconShare) Commitment() [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "commit|%d|%d|", s.Round, s.Member)
	h.Write(s.Share)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// DeriveShare deterministically derives a replica's share for a round from
// its long-term secret (so crashed replicas re-derive rather than store).
func DeriveShare(memberSecret []byte, round uint64, member int) BeaconShare {
	mac := hmac.New(sha256.New, memberSecret)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], round)
	binary.BigEndian.PutUint64(buf[8:16], uint64(member))
	mac.Write(buf[:])
	return BeaconShare{Round: round, Member: member, Share: mac.Sum(nil)}
}

// Beacon runs commit-reveal rounds. It is a pure state machine: feed it
// ordered commitments and reveals (e.g. from the controller BFT log) and
// it emits the round output once enough valid reveals arrived.
type Beacon struct {
	n, f int

	commits map[uint64]map[int][sha256.Size]byte
	reveals map[uint64]map[int]BeaconShare
	outputs map[uint64][]byte
}

// NewBeacon builds a beacon for n controller replicas tolerating f
// Byzantine ones (n >= 3f+1).
func NewBeacon(n, f int) (*Beacon, error) {
	if n < 3*f+1 || f < 0 {
		return nil, fmt.Errorf("controlplane: beacon needs n >= 3f+1 (got n=%d f=%d)", n, f)
	}
	return &Beacon{
		n: n, f: f,
		commits: make(map[uint64]map[int][sha256.Size]byte),
		reveals: make(map[uint64]map[int]BeaconShare),
		outputs: make(map[uint64][]byte),
	}, nil
}

// Quorum returns the number of commitments/reveals a round needs.
func (b *Beacon) Quorum() int { return 2*b.f + 1 }

// Commit records a commitment for (round, member). Later commitments from
// the same member are ignored (the first ordered one wins).
func (b *Beacon) Commit(round uint64, member int, commitment [sha256.Size]byte) error {
	if member < 0 || member >= b.n {
		return fmt.Errorf("controlplane: beacon member %d out of range", member)
	}
	byMember, ok := b.commits[round]
	if !ok {
		byMember = make(map[int][sha256.Size]byte)
		b.commits[round] = byMember
	}
	if _, dup := byMember[member]; dup {
		return nil
	}
	byMember[member] = commitment
	return nil
}

// CommitCount returns how many commitments a round has.
func (b *Beacon) CommitCount(round uint64) int { return len(b.commits[round]) }

// ReadyToReveal reports whether the round gathered a quorum of
// commitments (phase 2 may start).
func (b *Beacon) ReadyToReveal(round uint64) bool {
	return len(b.commits[round]) >= b.Quorum()
}

// Reveal records a revealed share; it is rejected unless it matches the
// member's prior commitment. It returns the round output when the round
// completes with this reveal (nil otherwise).
func (b *Beacon) Reveal(share BeaconShare) ([]byte, error) {
	if share.Member < 0 || share.Member >= b.n {
		return nil, fmt.Errorf("controlplane: beacon member %d out of range", share.Member)
	}
	commitment, ok := b.commits[share.Round][share.Member]
	if !ok {
		return nil, fmt.Errorf("controlplane: reveal without commitment (round %d member %d)", share.Round, share.Member)
	}
	if share.Commitment() != commitment {
		return nil, fmt.Errorf("controlplane: reveal does not match commitment (round %d member %d)", share.Round, share.Member)
	}
	byMember, ok := b.reveals[share.Round]
	if !ok {
		byMember = make(map[int]BeaconShare)
		b.reveals[share.Round] = byMember
	}
	if prior, dup := byMember[share.Member]; dup {
		if !bytes.Equal(prior.Share, share.Share) {
			return nil, fmt.Errorf("controlplane: conflicting reveals (round %d member %d)", share.Round, share.Member)
		}
		return b.outputs[share.Round], nil
	}
	byMember[share.Member] = share
	if len(byMember) < b.Quorum() {
		return nil, nil
	}
	if out, done := b.outputs[share.Round]; done {
		return out, nil
	}
	out := b.fold(share.Round)
	b.outputs[share.Round] = out
	return out, nil
}

// Output returns a completed round's output, if any.
func (b *Beacon) Output(round uint64) ([]byte, bool) {
	out, ok := b.outputs[round]
	return out, ok
}

// fold hashes the first Quorum() reveals in member order. Determinism
// matters: every correct controller replica must fold the same set, so
// the set is the quorum-smallest member ids among the reveals — and since
// reveals are ordered through the BFT log, all replicas see the same
// reveal set when the quorum completes.
func (b *Beacon) fold(round uint64) []byte {
	byMember := b.reveals[round]
	members := make([]int, 0, len(byMember))
	for m := range byMember {
		members = append(members, m)
	}
	sort.Ints(members)
	members = members[:b.Quorum()]
	h := sha256.New()
	fmt.Fprintf(h, "beacon|%d|", round)
	for _, m := range members {
		fmt.Fprintf(h, "%d|", m)
		h.Write(byMember[m].Share)
	}
	return h.Sum(nil)
}

// Seed64 folds a beacon output into an int64 seed for math/rand.
func Seed64(output []byte) int64 {
	sum := sha256.Sum256(output)
	return int64(binary.BigEndian.Uint64(sum[:8]))
}
