package controlplane

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"testing"
	"time"

	"lazarus/internal/apps/kvs"
	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/osint"
	"lazarus/internal/transport"
)

// restartRig is a controller whose WAL and config are kept at hand so a
// test can crash it and Recover a successor over the same plant.
type restartRig struct {
	t          *testing.T
	cfg        Config
	net        *transport.Memory
	ctrl       *Controller
	clientID   transport.NodeID
	clientPriv ed25519.PrivateKey
	cl         *bft.Client // lazily-built probe client (replicas dedupe by per-client seq, so one client spans the whole test)
}

func newRestartRig(t *testing.T, vulns []*osint.Vulnerability, clock func() time.Time) *restartRig {
	t.Helper()
	net := transport.NewMemory(transport.MemoryConfig{Seed: 1})
	clientPub, clientPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	clientID := transport.ClientIDBase + transport.NodeID(1)
	cfg := Config{
		N:            4,
		Seed:         7,
		Clock:        clock,
		InitialVulns: vulns,
		Net:          net,
		App:          func() bft.Application { return kvs.New() },
		ClientKeys:   map[transport.NodeID]ed25519.PublicKey{clientID: clientPub},
		LTUSecret:    []byte("test-ltu-secret"),
		ReplicaTuning: func(rc *bft.ReplicaConfig) {
			rc.CheckpointInterval = 8
			rc.ViewChangeTimeout = 200 * time.Millisecond
			rc.BatchDelay = time.Millisecond
		},
		CatchUpTimeout: 20 * time.Second,
		WAL:            NewMemWAL(),
		Logf:           t.Logf,
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig := &restartRig{t: t, cfg: cfg, net: net, ctrl: ctrl, clientID: clientID, clientPriv: clientPriv}
	t.Cleanup(func() {
		rig.ctrl.Stop()
		net.Close()
	})
	return rig
}

// restart recovers a successor from the shared WAL and the dead
// controller's plant. extra lists intel published after construction
// (the successor rebuilds risk state from feeds, not the WAL). The dead
// predecessor is never Stop()ped — its nodes belong to the successor —
// only its control client is closed.
func (r *restartRig) restart(ctx context.Context, extra ...*osint.Vulnerability) *Controller {
	r.t.Helper()
	cfg := r.cfg
	cfg.InitialVulns = append(append([]*osint.Vulnerability(nil), r.cfg.InitialVulns...), extra...)
	next, err := Recover(ctx, cfg, r.ctrl.Plant())
	if err != nil {
		r.t.Fatalf("Recover: %v", err)
	}
	if r.ctrl.client != nil {
		r.ctrl.client.Close()
	}
	r.ctrl = next
	return next
}

// serviceWrite orders one write through the given membership view and
// fails the test if the group cannot serve it.
func (r *restartRig) serviceWrite(ctx context.Context, tag string, m *bft.Membership) {
	r.t.Helper()
	if r.cl == nil {
		cl, err := bft.NewClient(bft.ClientConfig{
			ID:             r.clientID,
			Key:            r.clientPriv,
			Replicas:       m.Replicas,
			ReplicaKeys:    m.Keys,
			F:              m.F(),
			Net:            r.net,
			RequestTimeout: 2 * time.Second,
			MaxAttempts:    10,
		})
		if err != nil {
			r.t.Fatal(err)
		}
		r.cl = cl
		r.t.Cleanup(func() { cl.Close() })
	} else {
		r.cl.UpdateMembership(m.Replicas, m.Keys)
	}
	op, _ := kvs.EncodeOp(kvs.Op{Kind: kvs.OpPut, Key: "probe-" + tag, Value: []byte("ok")})
	ictx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if _, err := r.cl.Invoke(ictx, op); err != nil {
		r.t.Fatalf("service write (%s): %v", tag, err)
	}
}

// fireOnce arms a crash plan that kills the controller right after the
// first WAL record matching pred.
func fireOnce(pred func(WALRecord) bool) CrashPlan {
	fired := false
	return func(rec WALRecord) bool {
		if fired {
			return false
		}
		if pred(rec) {
			fired = true
			return true
		}
		return false
	}
}

func intentOf(stage SwapStage) func(WALRecord) bool {
	return func(rec WALRecord) bool {
		return rec.Kind == WALStageIntent && rec.Stage == stage && !rec.Compensating
	}
}

func outcomeOf(stage SwapStage) func(WALRecord) bool {
	return func(rec WALRecord) bool {
		return rec.Kind == WALStageOutcome && rec.Stage == stage && !rec.Compensating && rec.OK
	}
}

// sharedBomb builds a fresh critical exploited CVE shared by the first
// three running OSes — the trigger that forces a replacement.
func sharedBomb(t *testing.T, c *Controller, id string, now time.Time) *osint.Vulnerability {
	t.Helper()
	st := c.Status()
	if len(st.Config) < 3 {
		t.Fatalf("config too small for a shared bomb: %v", st.Config)
	}
	var products []string
	for _, osID := range st.Config[:3] {
		os, err := catalog.ByID(osID)
		if err != nil {
			t.Fatal(err)
		}
		products = append(products, os.CPEProduct)
	}
	return &osint.Vulnerability{
		ID:          id,
		Description: "Remote code execution in the shared virtio network driver allows full host compromise via crafted descriptors.",
		Products:    products,
		Published:   now.AddDate(0, 0, -1),
		CVSS:        9.8,
		ExploitAt:   now.AddDate(0, 0, -1),
	}
}

// TestControllerCrashResumeMatrix kills the controller immediately after
// each durable step of a swap — the begin record, the post-decision
// census, and every stage's intent and outcome — then Recovers a
// successor from the WAL and asserts the interrupted swap converges:
// rolled back cleanly when the crash precedes the recorded decision,
// completed otherwise, with no leaked nodes, a balanced ledger, and the
// service still writable while the controller was down and after it
// returned.
func TestControllerCrashResumeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-resume matrix boots a 4-replica group per case")
	}
	cases := []struct {
		name string
		pred func(WALRecord) bool
		// rolledBack: the swap must close as a rollback and the next
		// monitor round must redo the replacement.
		rolledBack bool
	}{
		{"after-swap-begin", func(rec WALRecord) bool { return rec.Kind == WALSwapBegin }, true},
		{"after-swap-census", func() func(WALRecord) bool {
			sawBegin := false
			return func(rec WALRecord) bool {
				if rec.Kind == WALSwapBegin {
					sawBegin = true
				}
				return sawBegin && rec.Kind == WALCensus
			}
		}(), false},
		{"after-boot-intent", intentOf(StageBoot), false},
		{"after-boot-outcome", outcomeOf(StageBoot), false},
		{"after-add-intent", intentOf(StageAdd), false},
		{"after-add-outcome", outcomeOf(StageAdd), false},
		{"after-add-membership", func() func(WALRecord) bool {
			sawBegin := false
			return func(rec WALRecord) bool {
				if rec.Kind == WALSwapBegin {
					sawBegin = true
				}
				return sawBegin && rec.Kind == WALMembership
			}
		}(), false},
		{"after-catchup-intent", intentOf(StageCatchUp), false},
		{"after-catchup-outcome", outcomeOf(StageCatchUp), false},
		{"after-remove-intent", intentOf(StageRemove), false},
		{"after-remove-outcome", outcomeOf(StageRemove), false},
		{"after-poweroff-intent", intentOf(StagePowerOff), false},
		{"after-poweroff-outcome", outcomeOf(StagePowerOff), false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			now := day(2018, 1, 15)
			clock := func() time.Time { return now }
			rig := newRestartRig(t, smallCorpus(t), clock)
			ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
			defer cancel()
			if err := rig.ctrl.Bootstrap(ctx); err != nil {
				t.Fatal(err)
			}
			rig.serviceWrite(ctx, "preload", rig.ctrl.Membership())

			bomb := sharedBomb(t, rig.ctrl, "CVE-2018-99001", now)
			if err := rig.ctrl.RefreshIntel(ctx, bomb); err != nil {
				t.Fatal(err)
			}
			now = now.AddDate(0, 0, 1)

			rig.ctrl.ScheduleCrash(fireOnce(tc.pred))
			_, err := rig.ctrl.MonitorRound(ctx)
			if !rig.ctrl.isCrashed() {
				t.Fatalf("crash plan never fired (round err: %v) — the swap did not reach %s", err, tc.name)
			}

			// The execution plane must serve writes while the control
			// plane is dead, whatever membership the swap left committed.
			rig.serviceWrite(ctx, "down", rig.ctrl.Membership())

			next := rig.restart(ctx, bomb)
			if got := next.Generation(); got != 1 {
				t.Errorf("generation = %d, want 1", got)
			}
			hist := next.SwapHistory()
			if len(hist) == 0 {
				t.Fatal("recovered controller has no swap history")
			}
			last := hist[len(hist)-1]

			if tc.rolledBack {
				if last.Outcome != SwapRolledBack {
					t.Fatalf("interrupted swap closed as %v, want %v", last.Outcome, SwapRolledBack)
				}
				// The decision was never durably recorded, so the next
				// round must re-decide and complete the replacement.
				d, err := next.MonitorRound(ctx)
				if err != nil {
					t.Fatalf("redo round: %v", err)
				}
				if !d.Reconfigured {
					t.Fatal("redo round did not reconfigure")
				}
			} else if last.Outcome != SwapSucceeded {
				t.Fatalf("interrupted swap closed as %v (stage %q, err %q), want %v",
					last.Outcome, last.FailedStage, last.Err, SwapSucceeded)
			}

			for _, v := range checkInvariants(next, 4) {
				t.Errorf("invariant violation after resume: %s", v)
			}
			st := next.Status()
			if st.Epoch != 2 {
				t.Errorf("membership epoch = %d, want 2 (one add + one remove)", st.Epoch)
			}
			if len(st.Quarantine) != 1 {
				t.Errorf("quarantine = %v, want exactly the removed OS", st.Quarantine)
			}
			rig.serviceWrite(ctx, "recovered", next.Membership())
		})
	}
}

// TestRecoveredControllerReproducesHistory pins determinism across a
// crash: a controller that dies between swaps (its WAL ending in a
// census) and recovers must make the same decisions as an uncrashed run
// of the same seed — the census records the rng draw count and lifecycle
// set order, so the diversity loop replays exactly. The recovered
// controller must also report the pre-crash swap history verbatim from
// the WAL.
func TestRecoveredControllerReproducesHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two multi-swap controllers")
	}
	if raceEnabled {
		t.Skip("two full multi-swap runs exceed the race-mode package budget; determinism is asserted in the plain pass")
	}
	const rounds = 3
	fingerprints := func(hist []SwapRecord) []string {
		out := make([]string, 0, len(hist))
		for _, rec := range hist {
			out = append(out, fmt.Sprintf("%s->%s node %d->%d outcome=%v retries=%d",
				rec.Removed, rec.Added, rec.OldNode, rec.NewNode, rec.Outcome, rec.Retries))
		}
		return out
	}

	run := func(crashAfterRound int) []string {
		now := day(2018, 1, 15)
		clock := func() time.Time { return now }
		rig := newRestartRig(t, smallCorpus(t), clock)
		ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
		defer cancel()
		if err := rig.ctrl.Bootstrap(ctx); err != nil {
			t.Fatal(err)
		}
		var published []*osint.Vulnerability
		for round := 0; round < rounds; round++ {
			bomb := sharedBomb(t, rig.ctrl, fmt.Sprintf("CVE-2018-88%03d", round), now)
			published = append(published, bomb)
			if err := rig.ctrl.RefreshIntel(ctx, bomb); err != nil {
				t.Fatal(err)
			}
			now = now.AddDate(0, 0, 1)
			if _, err := rig.ctrl.MonitorRound(ctx); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if round == crashAfterRound {
				before := fingerprints(rig.ctrl.SwapHistory())
				rig.ctrl.Crash()
				next := rig.restart(ctx, published...)
				after := fingerprints(next.SwapHistory())
				if fmt.Sprint(after) != fmt.Sprint(before) {
					t.Fatalf("recovered history diverges from the WAL:\n  before: %v\n  after:  %v", before, after)
				}
			}
		}
		return fingerprints(rig.ctrl.SwapHistory())
	}

	straight := run(-1)
	crashed := run(0)
	if len(straight) == 0 {
		t.Fatal("no swaps recorded: shared bombs over 3 rounds should force replacements")
	}
	if fmt.Sprint(straight) != fmt.Sprint(crashed) {
		t.Fatalf("crashed-and-recovered run diverged from the uncrashed run:\n  straight: %v\n  crashed:  %v",
			straight, crashed)
	}
}

// TestSwapHistoryWrapBoundary drives the bounded history ring past its
// capacity and asserts the window semantics: oldest-first order, exactly
// the last swapHistoryCap records retained, and counters unaffected by
// the truncation.
func TestSwapHistoryWrapBoundary(t *testing.T) {
	c := &Controller{ins: newCPInstruments(nil)}
	const total = 300
	for i := 0; i < total; i++ {
		c.swapMu.Lock()
		c.recordSwapLocked(SwapRecord{
			Removed: fmt.Sprintf("os-%d", i),
			Added:   fmt.Sprintf("os-%d'", i),
			Outcome: SwapSucceeded,
		})
		c.swapMu.Unlock()
	}
	hist := c.SwapHistory()
	if len(hist) != swapHistoryCap {
		t.Fatalf("history holds %d records, want %d", len(hist), swapHistoryCap)
	}
	for i, rec := range hist {
		want := fmt.Sprintf("os-%d", total-swapHistoryCap+i)
		if rec.Removed != want {
			t.Fatalf("hist[%d].Removed = %s, want %s (oldest-first window of the last %d)",
				i, rec.Removed, want, swapHistoryCap)
		}
	}
	if st := c.SwapStats(); st.Successes != total {
		t.Errorf("successes = %d, want %d: ring truncation must not lose counters", st.Successes, total)
	}
}

// TestChaosControllerKillRestart is the robustness acceptance run: 20
// chaos rounds with controller kill/restart faults armed, each kill
// landing a few WAL appends into the round (usually mid-swap). Every
// kill must be matched by a recovery, every interrupted swap resolved,
// the census free of orphans, and the service probed successfully while
// the controller was down.
func TestChaosControllerKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take tens of seconds")
	}
	if raceEnabled {
		t.Skip("a full kill-restart chaos run exceeds the race-mode package budget; the resume matrix covers recovery under race")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	report, err := RunChaos(ctx, ChaosConfig{
		Rounds:             20,
		Seed:               11,
		ClientWorkers:      2,
		ControllerFaults:   true,
		ControllerKillProb: 0.6,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, v := range report.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	t.Logf("kills=%d recoveries=%d downProbes=%d/%d generation=%d walRecords=%d stats=%+v",
		report.ControllerKills, report.Recoveries, report.DownProbes-report.DownProbeErrs,
		report.DownProbes, report.Generation, report.WALRecords, report.Stats)
	if report.ControllerKills == 0 {
		t.Fatal("no controller kills fired across 20 armed rounds — the fault schedule is broken")
	}
	if report.Recoveries != report.ControllerKills {
		t.Errorf("recoveries = %d, want %d (one per kill)", report.Recoveries, report.ControllerKills)
	}
	if report.Generation != report.Recoveries {
		t.Errorf("final generation = %d, want %d", report.Generation, report.Recoveries)
	}
	if report.DownProbes == 0 {
		t.Error("no service probes were issued while the controller was down")
	}
	if report.WALRecords == 0 {
		t.Error("WAL is empty after a full chaos run")
	}
	st := report.Stats
	if st.Attempts != st.Successes+st.Rollbacks+st.RollbackFailures {
		t.Errorf("ledger unbalanced after recoveries: attempts %d != successes %d + rollbacks %d + aborts %d",
			st.Attempts, st.Successes, st.Rollbacks, st.RollbackFailures)
	}
}
