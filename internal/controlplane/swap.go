// Staged swap engine: the fault-tolerant replacement of one replica by
// another (paper §5, Fig. 9), rebuilt as an explicit state machine so a
// failure at any stage leaves the service in a known-good configuration
// instead of a half-reconfigured one. Stages run in order —
//
//	boot → ADD → catch-up → REMOVE → power-off
//
// — each with a per-attempt timeout and bounded retries under capped
// exponential backoff (the transport's re-dial idiom). On failure the
// engine compensates: before the ADD is ordered the joiner is simply
// discarded; after it, a compensating REMOVE of the joiner is ordered and
// its node powered off. Either way the Monitor's POOL/QUARANTINE sets are
// reverted so the next round can pick a different candidate. Reconfig
// command results are parsed to resolve the did-it-land ambiguity of a
// timed-out invoke: a retried ADD that hits "already a member" is a
// success, and a compensating REMOVE that would shrink the group below
// the minimum proves the original REMOVE was ordered, so the engine rolls
// forward instead of back.
package controlplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/core"
	"lazarus/internal/deploy"
	"lazarus/internal/metrics"
	"lazarus/internal/transport"
)

// SwapStage identifies one stage of the replacement state machine.
type SwapStage int

// Stages, in execution order.
const (
	// StageBoot powers the joiner's node on through its LTU.
	StageBoot SwapStage = iota
	// StageAdd orders the ADD reconfiguration through consensus.
	StageAdd
	// StageCatchUp waits for the joiner's state transfer.
	StageCatchUp
	// StageRemove orders the REMOVE of the quarantined replica.
	StageRemove
	// StagePowerOff powers the removed replica's node off.
	StagePowerOff

	stageCount = 5
)

// String names the stage.
func (s SwapStage) String() string {
	switch s {
	case StageBoot:
		return "boot"
	case StageAdd:
		return "add"
	case StageCatchUp:
		return "catch-up"
	case StageRemove:
		return "remove"
	case StagePowerOff:
		return "power-off"
	default:
		return fmt.Sprintf("SwapStage(%d)", int(s))
	}
}

// SwapOutcome classifies how a swap ended.
type SwapOutcome int

// Outcomes.
const (
	// SwapSucceeded: all five stages completed.
	SwapSucceeded SwapOutcome = iota + 1
	// SwapRolledBack: a stage failed and compensation restored the
	// pre-swap replica set; the joiner was discarded.
	SwapRolledBack
	// SwapRolledForward: a stage failed ambiguously but compensation
	// proved the reconfiguration had actually been ordered, so the swap
	// was completed instead of reverted.
	SwapRolledForward
	// SwapAborted: compensation itself failed; the system may be left
	// with the joiner as an extra group member and needs attention.
	SwapAborted
)

// String names the outcome.
func (o SwapOutcome) String() string {
	switch o {
	case SwapSucceeded:
		return "success"
	case SwapRolledBack:
		return "rolled-back"
	case SwapRolledForward:
		return "rolled-forward"
	case SwapAborted:
		return "aborted"
	default:
		return fmt.Sprintf("SwapOutcome(%d)", int(o))
	}
}

// SwapStats counts swap-engine activity since the controller started.
type SwapStats struct {
	// Attempts is how many swaps were started.
	Attempts uint64
	// Successes completed all stages (including rolled-forward swaps).
	Successes uint64
	// Retries counts stage re-attempts (any stage).
	Retries uint64
	// Rollbacks counts swaps whose failure was compensated cleanly.
	Rollbacks uint64
	// RolledForward counts failed swaps that compensation completed.
	RolledForward uint64
	// RollbackFailures counts swaps whose compensation failed (aborted).
	RollbackFailures uint64
	// StageFailures counts failed attempts per stage.
	StageFailures map[SwapStage]uint64
}

// Failed returns how many started swaps did not install the new replica.
func (s SwapStats) Failed() uint64 { return s.Rollbacks + s.RollbackFailures }

// swapCounters is the internal, mutex-guarded form of SwapStats.
type swapCounters struct {
	attempts, successes, retries     uint64
	rollbacks, rolledForward, aborts uint64
	stageFailures                    [stageCount]uint64
}

// SwapRecord is one structured entry of the swap history.
type SwapRecord struct {
	// Removed and Added are the OS ids being exchanged.
	Removed, Added string
	// OldNode and NewNode are the execution-plane slots involved.
	OldNode, NewNode transport.NodeID
	// Started and Finished are controller-clock timestamps.
	Started, Finished time.Time
	// Outcome classifies the result.
	Outcome SwapOutcome
	// FailedStage is the stage that gave up (when Outcome != success).
	FailedStage SwapStage
	// Retries is the total stage re-attempts spent on this swap.
	Retries int
	// Err is the terminal error (empty on success).
	Err string
}

// swapHistoryCap bounds the in-memory swap history ring.
const swapHistoryCap = 128

// SwapStats returns a snapshot of the swap-engine counters.
func (c *Controller) SwapStats() SwapStats {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	out := SwapStats{
		Attempts:         c.counters.attempts,
		Successes:        c.counters.successes,
		Retries:          c.counters.retries,
		Rollbacks:        c.counters.rollbacks,
		RolledForward:    c.counters.rolledForward,
		RollbackFailures: c.counters.aborts,
		StageFailures:    make(map[SwapStage]uint64, stageCount),
	}
	for s, n := range c.counters.stageFailures {
		if n > 0 {
			out.StageFailures[SwapStage(s)] = n
		}
	}
	return out
}

// SwapHistory returns the most recent swap records, oldest first (at most
// the last 128 swaps are retained).
func (c *Controller) SwapHistory() []SwapRecord {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	out := make([]SwapRecord, 0, c.histLen)
	start := c.histNext - c.histLen
	if start < 0 {
		start += swapHistoryCap
	}
	for i := 0; i < c.histLen; i++ {
		out = append(out, c.swapHist[(start+i)%swapHistoryCap])
	}
	return out
}

func (c *Controller) recordSwap(swapID uint64, rec SwapRecord) {
	// Close the swap in the WAL first: once the end record is durable a
	// successor will not try to resume this swap.
	if err := c.walAppend(WALRecord{Kind: WALSwapEnd, SwapID: swapID, Swap: &rec}); err != nil {
		if errors.Is(err, ErrControllerCrashed) {
			// Dead (possibly ON this very record, which is then durable):
			// the successor owns the ledger from here; updating this
			// process's ring and metrics would double-count against it.
			return
		}
		c.cfg.Logf("controlplane: swap-end WAL append: %v", err)
	}
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	c.recordSwapLocked(rec)
}

// histAppendLocked inserts one record into the bounded ring. Caller
// holds c.swapMu. Recovery uses it directly to rebuild the ring from
// replayed swap-end records without touching the counters (those are
// reconstructed separately, census snapshot + deltas).
func (c *Controller) histAppendLocked(rec SwapRecord) {
	if c.swapHist == nil {
		c.swapHist = make([]SwapRecord, swapHistoryCap)
	}
	c.swapHist[c.histNext] = rec
	c.histNext = (c.histNext + 1) % swapHistoryCap
	if c.histLen < swapHistoryCap {
		c.histLen++
	}
}

// recordSwapLocked updates the in-memory ring and counters. Caller holds
// c.swapMu.
func (c *Controller) recordSwapLocked(rec SwapRecord) {
	c.histAppendLocked(rec)
	switch rec.Outcome {
	case SwapSucceeded:
		c.counters.successes++
	case SwapRolledBack:
		c.counters.rollbacks++
	case SwapRolledForward:
		c.counters.successes++
		c.counters.rolledForward++
	case SwapAborted:
		c.counters.aborts++
	}
	if rec.Outcome >= SwapSucceeded && rec.Outcome <= SwapAborted {
		c.ins.swapOutcome[rec.Outcome].Inc()
	}
	c.ins.swapTotalUS.Observe(rec.Finished.Sub(rec.Started).Microseconds())
	c.trace.Emit(metrics.Event{
		Type:   metrics.EvSwapDone,
		DurUS:  rec.Finished.Sub(rec.Started).Microseconds(),
		Detail: fmt.Sprintf("%s->%s %s", rec.Removed, rec.Added, rec.Outcome),
	})
}

// SetFaultPolicy installs (or clears, with nil) a deploy-layer failure
// injection policy on the controller's builder — the chaos harness's
// handle on the execution plane.
func (c *Controller) SetFaultPolicy(p *deploy.FaultPolicy) { c.builder.SetFaultPolicy(p) }

// Census reports the execution-plane node population, for invariant
// checking: every running node should be a member of the current
// membership, and nothing should run outside it.
type Census struct {
	// Tracked is how many node slots the controller still manages.
	Tracked int
	// Running lists nodes with a live replica.
	Running []transport.NodeID
	// Orphans lists running nodes that are not in the membership — a
	// leak left behind by a failed, uncompensated swap.
	Orphans []transport.NodeID
}

// Census inspects every tracked node.
func (c *Controller) Census() Census {
	m := c.membership.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	census := Census{Tracked: len(c.nodes)}
	for id, slot := range c.nodes {
		if !slot.node.Running() {
			continue
		}
		census.Running = append(census.Running, id)
		if m == nil || !m.Contains(id) {
			census.Orphans = append(census.Orphans, id)
		}
	}
	return census
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// stageLog identifies a stage execution in the WAL: which swap, which
// stage, and whether the compensation path (whose REMOVE targets the
// joiner, not the quarantined replica) is running it.
type stageLog struct {
	swapID       uint64
	stage        SwapStage
	compensating bool
}

// runStage drives one stage: up to `attempts` tries, each bounded by
// `timeout`, with capped exponential backoff between tries (the
// transport's re-dial idiom). Failed attempts are tallied per stage.
// The stage intent is appended to the WAL before any attempt runs and
// the outcome after the stage settles, so a successor can always bound
// what this stage may have done.
func (c *Controller) runStage(ctx context.Context, rec *SwapRecord, sw stageLog, attempts int, timeout time.Duration, fn func(context.Context, *stageAttempt) error) error {
	stage := sw.stage
	if err := c.walAppend(WALRecord{Kind: WALStageIntent, SwapID: sw.swapID, Stage: stage, Compensating: sw.compensating}); err != nil {
		// A crash point firing on the intent record surfaces here: the
		// process dies between the log write and the side effect.
		return fmt.Errorf("%v: %w", stage, err)
	}
	stageStart := time.Now()
	backoff := c.cfg.SwapBackoff
	var last error
	for a := 0; a < attempts; a++ {
		if c.isCrashed() {
			return fmt.Errorf("%v: %w", stage, ErrControllerCrashed)
		}
		if a > 0 {
			c.swapMu.Lock()
			c.counters.retries++
			c.swapMu.Unlock()
			c.ins.swapRetries.Inc()
			rec.Retries++
			if err := sleepCtx(ctx, backoff); err != nil {
				return fmt.Errorf("%v: %w", stage, err)
			}
			backoff *= 2
			if backoff > c.cfg.SwapBackoffMax {
				backoff = c.cfg.SwapBackoffMax
			}
		}
		last = attemptStage(ctx, timeout, fn)
		if last == nil {
			c.finishStage(rec, stage, stageStart, "ok")
			c.walStageOutcome(sw, true, nil)
			return nil
		}
		c.swapMu.Lock()
		c.counters.stageFailures[stage]++
		c.swapMu.Unlock()
		c.ins.swapStageFailures[stage].Inc()
		c.cfg.Logf("controlplane: swap stage %v attempt %d/%d failed: %v", stage, a+1, attempts, last)
		if ctx.Err() != nil {
			break
		}
	}
	c.finishStage(rec, stage, stageStart, "fail")
	c.walStageOutcome(sw, false, last)
	return fmt.Errorf("%v: %w", stage, last)
}

// walStageOutcome closes a stage in the WAL. Best-effort: if the append
// itself is the crash point, the missing/last outcome is exactly the
// ambiguity recovery is built to resolve.
func (c *Controller) walStageOutcome(sw stageLog, ok bool, cause error) {
	rec := WALRecord{Kind: WALStageOutcome, SwapID: sw.swapID, Stage: sw.stage, Compensating: sw.compensating, OK: ok}
	if cause != nil {
		rec.Err = cause.Error()
	}
	if err := c.walAppend(rec); err != nil && !errors.Is(err, ErrControllerCrashed) {
		c.cfg.Logf("controlplane: stage-outcome WAL append: %v", err)
	}
}

// finishStage records one completed stage (all attempts and backoffs
// included) in the per-stage duration histogram and the event trace.
func (c *Controller) finishStage(rec *SwapRecord, stage SwapStage, start time.Time, verdict string) {
	durUS := time.Since(start).Microseconds()
	c.ins.swapStageUS[stage].Observe(durUS)
	c.trace.Emit(metrics.Event{
		Type:   metrics.EvSwapStage,
		DurUS:  durUS,
		Detail: fmt.Sprintf("%s->%s %v %s (retries %d)", rec.Removed, rec.Added, stage, verdict, rec.Retries),
	})
}

// stageAttempt coordinates one attemptStage try with the goroutine
// running it. When a try times out the controller abandons the goroutine
// and moves on (to a retry, or to compensation) — but the goroutine may
// still be holding a verdict it obtained just as the deadline fired, and
// publishing it late would race with (and corrupt) the compensation
// logic reading the same state. Every publication therefore goes through
// settle, which the controller fences off with abandon.
type stageAttempt struct {
	mu        sync.Mutex
	abandoned bool
}

// settle runs publish unless the attempt was abandoned, and reports
// whether it ran. Publications by a live attempt are ordered before
// abandon's critical section, which the controller enters before it
// reads any of the published state — so settled writes are visible and
// abandoned writes never happen.
func (a *stageAttempt) settle(publish func()) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.abandoned {
		return false
	}
	publish()
	return true
}

// abandon marks the attempt as timed out: later settle calls become
// no-ops.
func (a *stageAttempt) abandon() {
	a.mu.Lock()
	a.abandoned = true
	a.mu.Unlock()
}

// attemptStage runs fn once under a real-time timeout. fn must honour
// its context; a stage that cannot be cancelled (a stalled boot inside
// the LTU) is abandoned to finish on its own — the node
// Retire/idempotency rules make a late completion harmless, and any
// shared state fn wants to write on its way out must go through the
// stageAttempt, which an abandoned goroutine can no longer settle.
func attemptStage(ctx context.Context, timeout time.Duration, fn func(context.Context, *stageAttempt) error) error {
	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	att := &stageAttempt{}
	done := make(chan error, 1)
	go func() { done <- fn(sctx, att) }()
	select {
	case err := <-done:
		return err
	case <-sctx.Done():
		att.abandon()
		return fmt.Errorf("timed out after %v: %w", timeout, sctx.Err())
	}
}

// swapOp carries the state of one in-flight replacement.
type swapOp struct {
	c              *Controller
	swapID         uint64 // WAL identity of this swap
	removed, added core.Replica
	oldID, newID   transport.NodeID
	oldSlot, slot  *nodeSlot
	client         *bft.Client
	pre            *bft.Membership // membership before the swap

	// addApplied: the ADD was confirmed ordered and installed locally.
	// addUncertain: an ADD invoke failed without a definitive verdict —
	// it may or may not have been ordered.
	addApplied, addUncertain bool
}

// executeSwap performs the BFT-SMaRt-style replacement (boot the joiner,
// ADD it, wait for its state transfer, REMOVE the quarantined replica,
// power its node off) as the staged state machine described in the
// package comment. On a compensated failure the Monitor's sets are
// reverted and the error is returned; a rolled-forward recovery returns
// nil like any other success.
func (c *Controller) executeSwap(ctx context.Context, removed, added core.Replica) error {
	if c.isCrashed() {
		return ErrControllerCrashed
	}
	c.swapMu.Lock()
	c.counters.attempts++
	c.swapSeq++
	swapID := c.swapSeq
	c.swapMu.Unlock()
	c.ins.swapAttempts.Inc()

	c.mu.Lock()
	oldID, ok := c.osToNode[removed.ID]
	if !ok {
		c.mu.Unlock()
		err := fmt.Errorf("no node runs %s", removed.ID)
		c.walSwapBegin(swapID, removed, added, 0, 0)
		c.failBeforeStart(swapID, removed, added, err)
		return err
	}
	oldSlot := c.nodes[oldID]
	client := c.client
	newID := c.nextNode
	c.nextNode++
	// Open the swap in the log before provisioning the joiner's slot —
	// the first side effect — then snapshot the post-decision census
	// (lifecycle sets, rng position) a successor would resume from.
	if werr := c.walSwapBegin(swapID, removed, added, oldID, newID); werr != nil {
		c.mu.Unlock()
		return werr
	}
	slot, err := c.newSlotLocked(newID)
	var werr error
	if err == nil {
		werr = c.walCensusLocked()
	}
	c.mu.Unlock()
	if err != nil {
		c.failBeforeStart(swapID, removed, added, err)
		return err
	}
	if werr != nil {
		return werr
	}

	op := &swapOp{
		c:       c,
		swapID:  swapID,
		removed: removed,
		added:   added,
		oldID:   oldID,
		newID:   newID,
		oldSlot: oldSlot,
		slot:    slot,
		client:  client,
		pre:     c.membership.Load(),
	}
	rec := SwapRecord{
		Removed: removed.ID,
		Added:   added.ID,
		OldNode: oldID,
		NewNode: newID,
		Started: c.cfg.Clock(),
	}
	err = op.runFrom(ctx, &rec, StageBoot)
	if errors.Is(err, ErrControllerCrashed) {
		// The dying process records nothing more; its successor resolves
		// this swap from the WAL.
		return err
	}
	rec.Finished = c.cfg.Clock()
	c.recordSwap(swapID, rec)
	return err
}

// walSwapBegin opens a swap in the log. Best-effort on the degenerate
// paths (a crash here leaves a begin-without-stages record recovery
// closes as a rollback).
func (c *Controller) walSwapBegin(swapID uint64, removed, added core.Replica, oldID, newID transport.NodeID) error {
	return c.walAppend(WALRecord{
		Kind: WALSwapBegin, SwapID: swapID,
		RemovedOS: removed.ID, AddedOS: added.ID,
		OldNode: oldID, NewNode: newID,
	})
}

// failBeforeStart handles pre-stage failures (no slot was provisioned):
// the monitor is reverted and the non-swap is recorded as a clean
// rollback.
func (c *Controller) failBeforeStart(swapID uint64, removed, added core.Replica, cause error) {
	c.revertMonitor(removed, added)
	now := c.cfg.Clock()
	c.recordSwap(swapID, SwapRecord{
		Removed: removed.ID, Added: added.ID,
		Started: now, Finished: now,
		Outcome: SwapRolledBack, FailedStage: StageBoot,
		Err: cause.Error(),
	})
}

// revertMonitor returns the monitor's lifecycle sets to their pre-swap
// state.
func (c *Controller) revertMonitor(removed, added core.Replica) {
	c.mu.Lock()
	monitor := c.monitor
	c.mu.Unlock()
	if monitor == nil {
		return
	}
	if err := monitor.RevertSwap(removed, added); err != nil {
		c.cfg.Logf("controlplane: reverting monitor sets after failed swap: %v", err)
	}
}

// runFrom drives the stages from `start` onward and dispatches to
// compensation on failure. The normal path starts at StageBoot; a
// recovering controller starts at whatever stage the WAL evidence and
// cluster probes put the crashed swap in — every stage is idempotent
// under re-execution (a boot retry sees the node already running, a
// retried ADD answered "already a member" is a success, a retried
// REMOVE answered "not a member" is a success, power-off of an idle
// node is a no-op).
func (op *swapOp) runFrom(ctx context.Context, rec *SwapRecord, start SwapStage) error {
	c := op.c
	attempts, timeout := c.cfg.SwapAttempts, c.cfg.SwapStageTimeout
	log := func(stage SwapStage) stageLog { return stageLog{swapID: op.swapID, stage: stage} }

	if start <= StageBoot {
		if err := c.runStage(ctx, rec, log(StageBoot), attempts, timeout, op.boot); err != nil {
			return op.fail(ctx, rec, StageBoot, err)
		}
		if c.isCrashed() {
			return ErrControllerCrashed
		}
	}
	if start <= StageAdd {
		// Pessimistic until a definitive reply: an ADD attempt that times
		// out may have been ordered anyway, so compensation must assume
		// it was unless a live attempt settled the question.
		op.addUncertain = true
		if err := c.runStage(ctx, rec, log(StageAdd), attempts, timeout, op.orderAdd); err != nil {
			return op.fail(ctx, rec, StageAdd, err)
		}
		if err := op.commitAdd(); err != nil {
			return op.fail(ctx, rec, StageAdd, err)
		}
		if c.isCrashed() {
			return ErrControllerCrashed
		}
	}
	if start <= StageCatchUp {
		if !op.addApplied {
			// Resuming past the ADD: install the post-ADD membership view
			// the predecessor confirmed but may not have committed locally.
			if err := op.commitAdd(); err != nil {
				return op.fail(ctx, rec, StageCatchUp, err)
			}
		}
		// Catch-up is one attempt: its budget is the CatchUpTimeout itself
		// (measured on the injected clock); the stage timeout below is only
		// a real-time backstop against a frozen test clock.
		if err := c.runStage(ctx, rec, log(StageCatchUp), 1, c.cfg.CatchUpTimeout+timeout, op.waitCatchUp); err != nil {
			return op.fail(ctx, rec, StageCatchUp, err)
		}
		if c.isCrashed() {
			return ErrControllerCrashed
		}
	}
	if start <= StageRemove {
		if !op.addApplied {
			if err := op.commitAdd(); err != nil {
				return op.fail(ctx, rec, StageRemove, err)
			}
		}
		if err := c.runStage(ctx, rec, log(StageRemove), attempts, timeout, op.orderRemove); err != nil {
			return op.fail(ctx, rec, StageRemove, err)
		}
	}
	op.commitRemove()
	if c.isCrashed() {
		return ErrControllerCrashed
	}
	c.settleEpoch(ctx)
	if err := c.runStage(ctx, rec, log(StagePowerOff), attempts, timeout, op.powerOffOld); err != nil {
		if errors.Is(err, ErrControllerCrashed) {
			return err
		}
		// The membership change is already committed; a node that will
		// not power off is retired out-of-band below rather than undoing
		// a completed swap.
		c.cfg.Logf("controlplane: swap %s->%s: power-off of node %d failed (%v); retiring out-of-band",
			op.removed.ID, op.added.ID, op.oldID, err)
	}
	if c.isCrashed() {
		return ErrControllerCrashed
	}
	op.decommissionOld()
	rec.Outcome = SwapSucceeded
	c.cfg.Logf("controlplane: swapped %s (node %d) for %s (node %d)",
		op.removed.ID, op.oldID, op.added.ID, op.newID)
	return nil
}

// boot powers the joiner on through its LTU. A retry after a stalled
// attempt that eventually landed sees the node already running the right
// image and treats it as success.
func (op *swapOp) boot(context.Context, *stageAttempt) error {
	err := func() error {
		op.c.mu.Lock()
		defer op.c.mu.Unlock()
		return op.c.powerOnLocked(op.slot, op.added.ID, true)
	}()
	if err != nil && op.slot.node.Running() && op.slot.node.OS().ID == op.added.ID {
		return nil
	}
	return err
}

// reconfigResult interprets a reconfiguration command's reply.
type reconfigResult int

const (
	reconfigApplied reconfigResult = iota
	reconfigAlreadyDone
	reconfigTooSmall
	reconfigRejected
)

// parseReconfigResult decodes the structured bft.ReconfigResult reply.
// A reply that does not decode is an error, not a verdict: the caller
// must treat the operation's fate as unknown rather than mapping garbage
// to "rejected" (the old Sscanf scrape silently read epoch 0 out of any
// string starting with "reconfig ok").
func parseReconfigResult(res []byte) (reconfigResult, uint64, error) {
	rr, err := bft.DecodeReconfigResult(res)
	if err != nil {
		return reconfigRejected, 0, err
	}
	switch rr.Status {
	case bft.ReconfigApplied:
		return reconfigApplied, rr.Epoch, nil
	case bft.ReconfigAlreadyMember, bft.ReconfigNotMember:
		return reconfigAlreadyDone, 0, nil
	case bft.ReconfigTooSmall:
		return reconfigTooSmall, 0, nil
	default:
		return reconfigRejected, 0, nil
	}
}

// orderAdd submits the ADD through consensus. The op enters this stage
// marked addUncertain (see run): an attempt that dies without a
// definitive reply — invoke error, or a timed-out goroutine whose late
// verdict no longer settles — leaves the ADD possibly ordered, and only
// a definitive reply from a live attempt clears the ambiguity. In
// particular a retry answered "already a member" means an earlier
// attempt landed.
func (op *swapOp) orderAdd(ctx context.Context, att *stageAttempt) error {
	pub, err := op.c.builder.PublicKey(op.newID)
	if err != nil {
		return err
	}
	addOp, err := bft.EncodeReconfigOp(bft.ReconfigOp{Add: true, Replica: op.newID, PubKey: pub})
	if err != nil {
		return err
	}
	res, err := op.client.Invoke(ctx, addOp)
	if err != nil {
		return fmt.Errorf("ordering ADD of node %d: %w", op.newID, err)
	}
	verdict, _, perr := parseReconfigResult(res)
	if perr != nil {
		// A reply we cannot decode is not a verdict: the ADD may or may
		// not have been ordered, so addUncertain must stay set.
		return fmt.Errorf("ADD of node %d: %w", op.newID, perr)
	}
	att.settle(func() { op.addUncertain = false })
	switch verdict {
	case reconfigApplied, reconfigAlreadyDone:
		return nil
	default:
		return fmt.Errorf("ADD of node %d rejected: %s", op.newID, res)
	}
}

// commitAdd installs the post-ADD membership locally and records it. A
// recovering controller whose restored view already includes the joiner
// (the predecessor's membership record landed before the crash) treats
// the commit as already done.
func (op *swapOp) commitAdd() error {
	pub, err := op.c.builder.PublicKey(op.newID)
	if err != nil {
		return err
	}
	cur := op.c.membership.Load()
	next, err := cur.WithAdded(op.newID, pub)
	switch {
	case err == nil:
	case errors.Is(err, bft.ErrAlreadyMember):
		next = cur
	default:
		return err
	}
	op.c.membership.Store(next)
	op.client.UpdateMembership(next.Replicas, next.Keys)
	op.addApplied = true
	if werr := op.c.walMembership(next); werr != nil && !errors.Is(werr, ErrControllerCrashed) {
		op.c.cfg.Logf("controlplane: membership WAL append after ADD: %v", werr)
	}
	return nil
}

// waitCatchUp polls the joiner until it has state-transferred into the
// current epoch. The deadline runs on the injected clock (cfg.Clock), so
// tests control it without real sleeps.
func (op *swapOp) waitCatchUp(ctx context.Context, _ *stageAttempt) error {
	c := op.c
	deadline := c.cfg.Clock().Add(c.cfg.CatchUpTimeout)
	for {
		if joiner := op.slot.node.Replica(); joiner != nil {
			st := joiner.Stats()
			if st.CurrentEpoch >= c.currentMembership().Epoch && st.MembershipSize > 0 && st.StateTransfers > 0 {
				return nil
			}
		}
		if c.cfg.Clock().After(deadline) {
			return fmt.Errorf("joiner %s on node %d did not catch up in %v", op.added.ID, op.newID, c.cfg.CatchUpTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// orderRemove submits the REMOVE of the quarantined replica's node. A
// retry answered "not a member" means an earlier attempt landed.
func (op *swapOp) orderRemove(ctx context.Context, _ *stageAttempt) error {
	rmOp, err := bft.EncodeReconfigOp(bft.ReconfigOp{Add: false, Replica: op.oldID})
	if err != nil {
		return err
	}
	res, err := op.client.Invoke(ctx, rmOp)
	if err != nil {
		return fmt.Errorf("ordering REMOVE of node %d: %w", op.oldID, err)
	}
	verdict, _, perr := parseReconfigResult(res)
	if perr != nil {
		return fmt.Errorf("REMOVE of node %d: %w", op.oldID, perr)
	}
	switch verdict {
	case reconfigApplied, reconfigAlreadyDone:
		return nil
	default:
		return fmt.Errorf("REMOVE of node %d rejected: %s", op.oldID, res)
	}
}

// commitRemove installs the post-REMOVE membership and points the OS map
// at the new node.
func (op *swapOp) commitRemove() {
	c := op.c
	if next, err := c.membership.Load().WithRemoved(op.oldID); err == nil {
		c.membership.Store(next)
		op.client.UpdateMembership(next.Replicas, next.Keys)
		if werr := c.walMembership(next); werr != nil && !errors.Is(werr, ErrControllerCrashed) {
			c.cfg.Logf("controlplane: membership WAL append after REMOVE: %v", werr)
		}
	} else if errors.Is(err, bft.ErrNotMember) {
		// Recovery path: the restored membership already excludes the old
		// replica.
	} else {
		c.cfg.Logf("controlplane: commit REMOVE of node %d locally: %v", op.oldID, err)
	}
	c.mu.Lock()
	delete(c.osToNode, op.removed.ID)
	c.osToNode[op.added.ID] = op.newID
	c.mu.Unlock()
}

// settleEpoch waits — bounded, best-effort — until every live member
// replica reports the committed epoch before the caller powers off the
// removed node. The removed replica was part of the REMOVE's commit
// quorum; killing it while other members are still catching up (e.g.
// mid-state-transfer) can leave fewer than a quorum of replicas at the
// new epoch. The bft layer can now recover from that on its own, but
// waiting here keeps the window closed in the common case. Replicas that
// never settle (silent, partitioned) only cost the stage timeout.
func (c *Controller) settleEpoch(ctx context.Context) {
	m := c.currentMembership()
	deadline := c.cfg.Clock().Add(c.cfg.SwapStageTimeout)
	for !c.membersSettled(m) {
		if c.cfg.Clock().After(deadline) {
			c.cfg.Logf("controlplane: epoch %d did not settle on all members within %v; proceeding",
				m.Epoch, c.cfg.SwapStageTimeout)
			return
		}
		if sleepCtx(ctx, 10*time.Millisecond) != nil {
			return
		}
	}
}

func (c *Controller) membersSettled(m *bft.Membership) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range m.Replicas {
		slot, ok := c.nodes[id]
		if !ok {
			continue
		}
		rep := slot.node.Replica()
		if rep == nil {
			continue
		}
		if rep.Stats().CurrentEpoch < m.Epoch {
			return false
		}
	}
	return true
}

// powerOffOld orders the removed replica's node off through its LTU.
func (op *swapOp) powerOffOld(context.Context, *stageAttempt) error {
	op.c.mu.Lock()
	defer op.c.mu.Unlock()
	return op.c.powerOffLocked(op.oldSlot)
}

// decommissionOld retires and untracks the old node: whatever the LTU
// managed, the slot is wiped out-of-band and never hosts a replica again
// (its OS sits in quarantine; a re-admission mints a fresh node).
func (op *swapOp) decommissionOld() {
	op.oldSlot.node.Retire()
	op.c.mu.Lock()
	delete(op.c.nodes, op.oldID)
	op.c.mu.Unlock()
}

// discardJoiner retires and untracks the joiner's node.
func (op *swapOp) discardJoiner() {
	op.slot.node.Retire()
	op.c.mu.Lock()
	delete(op.c.nodes, op.newID)
	op.c.mu.Unlock()
}

// fail runs the compensation path for a stage failure and settles the
// record: rolled back (monitor reverted, error returned), rolled forward
// (swap completed after all, nil returned), or aborted (compensation
// failed, error returned).
func (op *swapOp) fail(ctx context.Context, rec *SwapRecord, stage SwapStage, cause error) error {
	c := op.c
	if errors.Is(cause, ErrControllerCrashed) || c.isCrashed() {
		// The process is dead: no compensation, no bookkeeping. The
		// successor resolves this swap from the WAL.
		return ErrControllerCrashed
	}
	rec.FailedStage = stage
	rec.Err = cause.Error()
	c.cfg.Logf("controlplane: swap %s->%s failed at %v (%v); compensating",
		op.removed.ID, op.added.ID, stage, cause)

	outcome, compErr := op.compensate(ctx, rec)
	if errors.Is(compErr, ErrControllerCrashed) {
		return compErr
	}
	rec.Outcome = outcome
	switch outcome {
	case SwapRolledBack:
		c.revertMonitor(op.removed, op.added)
		return fmt.Errorf("%v failed (rolled back): %w", stage, cause)
	case SwapRolledForward:
		c.cfg.Logf("controlplane: swap %s->%s rolled forward: the %v had been ordered despite %v",
			op.removed.ID, op.added.ID, stage, cause)
		return nil
	default: // SwapAborted
		// Compensation failed: the joiner may remain a group member. Keep
		// its node running and mapped so the census stays truthful; the
		// stats and history flag the swap for operator attention.
		c.mu.Lock()
		c.osToNode[op.added.ID] = op.newID
		c.mu.Unlock()
		return fmt.Errorf("%v failed (%v) and compensation failed: %w", stage, cause, compErr)
	}
}

// compensate undoes (or, when the evidence says the reconfiguration
// already committed, completes) a failed swap.
func (op *swapOp) compensate(ctx context.Context, rec *SwapRecord) (SwapOutcome, error) {
	if !op.addApplied && !op.addUncertain {
		// The joiner never entered the group: discard it and we are done.
		op.discardJoiner()
		return SwapRolledBack, nil
	}
	// The ADD was ordered (or might have been): order a compensating
	// REMOVE of the joiner, with the same bounded-retry discipline.
	rmOp, err := bft.EncodeReconfigOp(bft.ReconfigOp{Add: false, Replica: op.newID})
	if err != nil {
		return SwapAborted, err
	}
	var verdict reconfigResult
	var epoch uint64
	invoke := func(sctx context.Context, att *stageAttempt) error {
		res, err := op.client.Invoke(sctx, rmOp)
		if err != nil {
			return fmt.Errorf("ordering compensating REMOVE of node %d: %w", op.newID, err)
		}
		v, ep, perr := parseReconfigResult(res)
		if perr != nil {
			// No verdict to settle: the fate of the compensating REMOVE
			// is unknown, so let the retry discipline try again.
			return fmt.Errorf("compensating REMOVE of node %d: %w", op.newID, perr)
		}
		if !att.settle(func() { verdict, epoch = v, ep }) {
			// Abandoned after a reply arrived: the retry (or the caller)
			// owns the verdict now.
			return fmt.Errorf("compensating REMOVE of node %d: attempt abandoned", op.newID)
		}
		if v == reconfigRejected {
			return fmt.Errorf("compensating REMOVE of node %d rejected: %s", op.newID, res)
		}
		return nil
	}
	sw := stageLog{swapID: op.swapID, stage: StageRemove, compensating: true}
	if err := op.c.runStage(ctx, rec, sw, op.c.cfg.SwapAttempts, op.c.cfg.SwapStageTimeout, invoke); err != nil {
		return SwapAborted, err
	}
	if op.c.isCrashed() {
		return SwapAborted, ErrControllerCrashed
	}

	switch verdict {
	case reconfigTooSmall:
		// Removing the joiner would shrink the group below the minimum:
		// the group must already be at n with the old replica gone, which
		// proves the original REMOVE was ordered. Complete the swap.
		op.commitRemove()
		if op.c.isCrashed() {
			return SwapAborted, ErrControllerCrashed
		}
		op.c.settleEpoch(ctx)
		if err := func() error {
			op.c.mu.Lock()
			defer op.c.mu.Unlock()
			return op.c.powerOffLocked(op.oldSlot)
		}(); err != nil {
			op.c.cfg.Logf("controlplane: roll-forward power-off of node %d failed (%v); retiring out-of-band", op.oldID, err)
		}
		op.decommissionOld()
		return SwapRolledForward, nil

	case reconfigApplied:
		// The joiner is out of the group again. Restore the local
		// membership view to the pre-swap set.
		if op.addApplied {
			if next, err := op.c.membership.Load().WithRemoved(op.newID); err == nil {
				op.c.membership.Store(next)
				op.client.UpdateMembership(next.Replicas, next.Keys)
			}
		} else {
			// The ADD had landed even though its invoke failed: the group
			// went add → compensating-remove, so only the epoch moved.
			next := op.pre.Clone()
			next.Epoch = epoch
			op.c.membership.Store(next)
			op.client.UpdateMembership(next.Replicas, next.Keys)
		}
		op.discardJoiner()
		return SwapRolledBack, nil

	default: // reconfigAlreadyDone: the ADD never landed after all.
		if op.addApplied {
			// Local view had the joiner but the group never did.
			op.c.membership.Store(op.pre.Clone())
			op.client.UpdateMembership(op.pre.Replicas, op.pre.Keys)
		}
		op.discardJoiner()
		return SwapRolledBack, nil
	}
}
