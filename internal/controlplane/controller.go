// Package controlplane implements the Lazarus controller (paper §5.1):
// the logically-centralized trusted component that wires the Data manager
// (OSINT ingestion), the Risk manager (clustering + Equation 5 +
// Algorithm 1) and the Deploy manager (replica provisioning through
// per-node LTUs) into a closed loop that keeps a BFT service running on
// the lowest-risk diverse replica set available.
package controlplane

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/catalog"
	"lazarus/internal/cluster"
	"lazarus/internal/core"
	"lazarus/internal/deploy"
	"lazarus/internal/ltu"
	"lazarus/internal/metrics"
	"lazarus/internal/osint"
	"lazarus/internal/strategies"
	"lazarus/internal/transport"
	"lazarus/internal/vulndb"
)

// Config configures a Controller.
type Config struct {
	// Universe lists the OS images the deploy manager can provision
	// (default: the 17 deployable catalog versions).
	Universe []catalog.OS
	// N is the replica-set size (default 4).
	N int
	// Threshold is the Algorithm 1 risk threshold; 0 derives it
	// adaptively from the initial configuration's risk.
	Threshold float64
	// ScoreParams tune Equation 1 (zero value = paper defaults).
	ScoreParams core.ScoreParams
	// ClusterK and ClusterVocab tune the description clustering
	// (0 = corpus-scaled defaults).
	ClusterK, ClusterVocab int
	// Seed drives the randomized selection.
	Seed int64
	// Clock supplies the current time (nil = time.Now); injected so the
	// risk experiments and tests can replay history.
	Clock func() time.Time

	// Crawler optionally pulls live OSINT feeds on each refresh.
	Crawler *osint.Crawler
	// InitialVulns seeds the knowledge base without a crawler.
	InitialVulns []*osint.Vulnerability

	// Net is the execution-plane network.
	Net transport.Network
	// App builds the replicated service per replica.
	App deploy.AppFactory
	// ClientKeys registers the service's clients.
	ClientKeys map[transport.NodeID]ed25519.PublicKey
	// LTUSecret authenticates controller-to-LTU commands.
	LTUSecret []byte
	// BootScale scales simulated boot times (0 = instant).
	BootScale float64
	// ReplicaTuning adjusts replica protocol knobs.
	ReplicaTuning func(*bft.ReplicaConfig)
	// CatchUpTimeout bounds how long a joining replica may take to
	// state-transfer in (default 30s), measured on Clock.
	CatchUpTimeout time.Duration
	// SwapStageTimeout bounds each attempt of a swap stage other than
	// catch-up (default 15s, real time).
	SwapStageTimeout time.Duration
	// SwapAttempts is the per-stage attempt budget of the swap engine
	// (default 3: one try plus two retries).
	SwapAttempts int
	// SwapBackoff and SwapBackoffMax shape the capped exponential backoff
	// between stage retries (defaults 50ms and 1s, the transport's
	// re-dial idiom).
	SwapBackoff, SwapBackoffMax time.Duration
	// LTUInjector, when set, is installed as the fault injector of every
	// LTU the controller creates (chaos testing).
	LTUInjector func(node transport.NodeID, cmd ltu.Command) error
	// WAL is the write-ahead control-plane store (wal.go). The controller
	// records its census, membership, swap history, and every swap stage
	// transition in it, so a successor can Recover after a crash. Nil
	// defaults to an in-memory log (same record protocol, no file).
	WAL WAL
	// Metrics, when set, receives the controller's instruments (intel
	// refresh and clustering timings, monitor-round latency, per-stage
	// swap durations and outcomes) and is handed to every replica the
	// controller provisions, so one registry aggregates the whole
	// deployment.
	Metrics *metrics.Registry
	// Trace, when set, receives structured swap events and every
	// provisioned replica's protocol events.
	Trace *metrics.Tracer
	// Logf receives controller logging (nil = discard).
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if len(c.Universe) == 0 {
		c.Universe = catalog.Deployable()
	}
	if c.N == 0 {
		c.N = 4
	}
	if len(c.Universe) < c.N {
		return fmt.Errorf("controlplane: universe %d smaller than n %d", len(c.Universe), c.N)
	}
	if c.ScoreParams == (core.ScoreParams{}) {
		c.ScoreParams = core.DefaultScoreParams()
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Net == nil {
		return fmt.Errorf("controlplane: nil network")
	}
	if c.App == nil {
		return fmt.Errorf("controlplane: nil app factory")
	}
	if len(c.LTUSecret) == 0 {
		return fmt.Errorf("controlplane: empty LTU secret")
	}
	if c.CatchUpTimeout <= 0 {
		c.CatchUpTimeout = 30 * time.Second
	}
	if c.SwapStageTimeout <= 0 {
		c.SwapStageTimeout = 15 * time.Second
	}
	if c.SwapAttempts <= 0 {
		c.SwapAttempts = 3
	}
	if c.SwapBackoff <= 0 {
		c.SwapBackoff = 50 * time.Millisecond
	}
	if c.SwapBackoffMax <= 0 {
		c.SwapBackoffMax = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.WAL == nil {
		c.WAL = NewMemWAL()
	}
	return nil
}

// countingSource wraps the seeded source and counts source-level draws.
// Both Int63 and Uint64 advance math/rand's generator by exactly one
// step, so the census can record the draw count and a recovering
// controller can burn the same number of Int63 calls to land on the
// identical rng state — deterministic replay survives the crash.
type countingSource struct {
	src   mrand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: mrand.NewSource(seed).(mrand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// swapEvaluator delegates risk queries to the engine built from the most
// recent OSINT refresh; Algorithm 1 always evaluates against fresh data.
type swapEvaluator struct {
	mu  sync.RWMutex
	eng *core.RiskEngine
}

var _ core.RiskEvaluator = (*swapEvaluator)(nil)

func (s *swapEvaluator) get() *core.RiskEngine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng
}

func (s *swapEvaluator) set(e *core.RiskEngine) {
	s.mu.Lock()
	s.eng = e
	s.mu.Unlock()
}

func (s *swapEvaluator) Risk(cfg core.Config, now time.Time) float64 {
	return s.get().Risk(cfg, now)
}

func (s *swapEvaluator) AverageScore(r core.Replica, now time.Time) float64 {
	return s.get().AverageScore(r, now)
}

func (s *swapEvaluator) FullyPatched(r core.Replica, now time.Time) bool {
	return s.get().FullyPatched(r, now)
}

func (s *swapEvaluator) UnpatchedCount(r core.Replica, now time.Time) int {
	return s.get().UnpatchedCount(r, now)
}

// nodeSlot is one execution-plane machine with its LTU.
type nodeSlot struct {
	node *deploy.Node
	ltu  *ltu.LTU
}

// Controller is the Lazarus control plane.
type Controller struct {
	cfg   Config
	store *vulndb.Store
	eval  *swapEvaluator
	rng   *mrand.Rand
	src   *countingSource // rng's source; census records its draw count

	monitor *core.Monitor

	builder  *deploy.Builder
	ctrlPub  ed25519.PublicKey
	ctrlPriv ed25519.PrivateKey
	ins      cpInstruments
	trace    *metrics.Tracer

	// Durability (wal.go / recover.go): every state transition is
	// appended to wal before its side effect runs. generation counts how
	// many controller processes have owned this log (0 = the bootstrap
	// process). crashed flips when a scheduled crash point fires; from
	// then on the controller refuses all WAL writes and side effects.
	wal        WAL
	generation int
	crashed    atomic.Bool
	crashPlan  atomic.Pointer[CrashPlan]

	mu sync.Mutex
	// membership is read by freshly booting replicas while c.mu is held,
	// so it lives in an atomic pointer rather than under the mutex.
	membership atomic.Pointer[bft.Membership]
	nodes      map[transport.NodeID]*nodeSlot
	osToNode   map[string]transport.NodeID
	nextNode   transport.NodeID
	ltuSeq     uint64
	client     *bft.Client
	started    bool

	// Swap-engine telemetry (see swap.go): counters plus a bounded ring
	// of structured swap records.
	swapMu   sync.Mutex
	counters swapCounters
	swapHist []SwapRecord
	histNext int
	histLen  int
	swapSeq  uint64 // WAL swap-record IDs, monotonic per log
}

// CrashPlan decides, after a WAL record has been appended, whether the
// controller crashes at that point (chaos testing). The record is
// durable when the plan fires: the crash simulates dying between the
// append and the side effect (intent records) or between the side
// effect and the next intent (outcome records).
type CrashPlan func(WALRecord) bool

// ErrControllerCrashed is returned by every operation once a scheduled
// crash point has fired: the process is dead for simulation purposes
// and must not run side effects, record history, or compensate.
var ErrControllerCrashed = errors.New("controlplane: controller crashed")

// ScheduleCrash arms (or, with nil, disarms) a crash plan.
func (c *Controller) ScheduleCrash(plan CrashPlan) {
	if plan == nil {
		c.crashPlan.Store(nil)
		return
	}
	c.crashPlan.Store(&plan)
}

// isCrashed reports whether a crash point has fired.
func (c *Controller) isCrashed() bool { return c.crashed.Load() }

// walAppend writes one record through the intent/outcome protocol: the
// record is appended and synced BEFORE the caller runs the side effect
// it announces. A fired crash plan marks the controller dead after the
// triggering record is durable — exactly the "crashed between the log
// write and the action" window recovery must handle.
func (c *Controller) walAppend(rec WALRecord) error {
	if c.crashed.Load() {
		return ErrControllerCrashed
	}
	if err := c.wal.Append(rec); err != nil {
		return err
	}
	if err := c.wal.Sync(); err != nil {
		return err
	}
	c.ins.walAppends.Inc()
	if plan := c.crashPlan.Load(); plan != nil && (*plan)(rec) {
		// The record IS durable; the error tells the caller the process
		// died before running whatever the record announced.
		c.crashed.Store(true)
		c.cfg.Logf("controlplane: crash point fired after %s record", rec.Kind)
		return ErrControllerCrashed
	}
	return nil
}

// Crash kills the controller immediately (chaos testing): from this point
// every WAL write and side-effect boundary refuses to run. In-flight
// stage attempts are abandoned at their next boundary check; the WAL and
// the plant are what a successor recovers from.
func (c *Controller) Crash() {
	c.crashed.Store(true)
	c.cfg.Logf("controlplane: controller killed")
}

// Plant is the execution-plane substrate that outlives a controller
// process: the deploy builder (which owns per-node signing keys and the
// controller's reconfiguration authority) and the tracked node slots with
// their LTUs. In a real deployment these are the physical machines; here
// they are the handles a crashed in-process controller leaves behind for
// Recover to re-adopt.
type Plant struct {
	builder *deploy.Builder
	nodes   map[transport.NodeID]*nodeSlot
}

// Plant hands the surviving substrate to a successor (typically called on
// a crashed controller).
func (c *Controller) Plant() Plant {
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := make(map[transport.NodeID]*nodeSlot, len(c.nodes))
	for id, slot := range c.nodes {
		nodes[id] = slot
	}
	return Plant{builder: c.builder, nodes: nodes}
}

// Generation reports which controller process owns the WAL (0 = the
// bootstrap process, +1 per recovery).
func (c *Controller) Generation() int { return c.generation }

// New validates the configuration and builds a controller (nothing runs
// until Bootstrap).
func New(cfg Config) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("controlplane: controller key: %w", err)
	}
	// Every provisioned replica reports into the controller's registry
	// and tracer; the caller's tuning still runs last so it can override.
	tuning := cfg.ReplicaTuning
	instrumented := func(rc *bft.ReplicaConfig) {
		rc.Metrics = cfg.Metrics
		rc.Trace = cfg.Trace
		if tuning != nil {
			tuning(rc)
		}
	}
	builder, err := deploy.NewBuilder(deploy.BuilderConfig{
		Net:           cfg.Net,
		ClientKeys:    cfg.ClientKeys,
		ControllerKey: pub,
		App:           cfg.App,
		BootScale:     cfg.BootScale,
		ReplicaTuning: instrumented,
	})
	if err != nil {
		return nil, err
	}
	src := newCountingSource(cfg.Seed)
	return &Controller{
		cfg:      cfg,
		store:    vulndb.New(),
		eval:     &swapEvaluator{},
		rng:      mrand.New(src),
		src:      src,
		builder:  builder,
		ctrlPub:  pub,
		ctrlPriv: priv,
		ins:      newCPInstruments(cfg.Metrics),
		trace:    cfg.Trace,
		wal:      cfg.WAL,
		nodes:    make(map[transport.NodeID]*nodeSlot),
		osToNode: make(map[string]transport.NodeID),
	}, nil
}

// ControllerKey returns the public key whose signature authorizes
// reconfigurations.
func (c *Controller) ControllerKey() ed25519.PublicKey { return c.ctrlPub }

// replicaFor converts an OS into the risk engine's replica identity.
func replicaFor(os catalog.OS) core.Replica {
	return core.NewReplica(os.ID, os.CPEProduct)
}

// RefreshIntel ingests new OSINT data (crawler and/or preloaded records),
// re-clusters the descriptions, and swaps the risk engine Algorithm 1
// evaluates against (the Data manager + the analysis half of the Risk
// manager).
func (c *Controller) RefreshIntel(ctx context.Context, extra ...*osint.Vulnerability) error {
	refreshStart := time.Now()
	if err := c.store.UpsertAll(c.cfg.InitialVulns); err != nil {
		return err
	}
	c.cfg.InitialVulns = nil
	if err := c.store.UpsertAll(extra); err != nil {
		return err
	}
	if c.cfg.Crawler != nil {
		records, errs := c.cfg.Crawler.Crawl(ctx)
		c.ins.crawlRecords.Add(int64(len(records)))
		c.ins.crawlErrors.Add(int64(len(errs)))
		for _, err := range errs {
			c.cfg.Logf("controlplane: crawl: %v", err)
		}
		for _, v := range records {
			if err := c.store.Upsert(v); err != nil {
				return err
			}
		}
	}
	corpus := c.store.All()
	c.ins.intelRecords.Set(int64(len(corpus)))
	if len(corpus) == 0 {
		return fmt.Errorf("controlplane: no vulnerability data ingested")
	}
	k := c.cfg.ClusterK
	if k == 0 {
		k = len(corpus) / 8
		if k < 8 {
			k = 8
		}
		if k > 192 {
			k = 192
		}
	}
	if k > len(corpus) {
		k = len(corpus)
	}
	vocab := c.cfg.ClusterVocab
	if vocab == 0 {
		vocab = 600
	}
	clusterStart := time.Now()
	model, err := cluster.BuildModel(corpus, cluster.Config{K: k, MaxVocabulary: vocab, Seed: c.cfg.Seed})
	if err != nil {
		return err
	}
	c.ins.clusterBuildUS.Observe(time.Since(clusterStart).Microseconds())
	intel, err := core.NewIntel(corpus, model.Clusters)
	if err != nil {
		return err
	}
	// Same-cluster links must also be textually close (K-means forces
	// every record into some cluster, so membership alone over-links).
	intel.SetSimilarityGate(func(a, b string) bool {
		return model.Cosine(a, b) >= 0.60
	})
	engine, err := core.NewRiskEngine(intel, c.cfg.ScoreParams)
	if err != nil {
		return err
	}
	c.eval.set(engine)
	c.ins.intelRefreshUS.Observe(time.Since(refreshStart).Microseconds())
	c.cfg.Logf("controlplane: intel refreshed: %d records, %d clusters", len(corpus), model.Clusters.K)
	return nil
}

// Bootstrap selects the initial minimum-risk configuration, provisions
// its replicas through the LTUs, and starts monitoring state. RefreshIntel
// runs first if it has not.
func (c *Controller) Bootstrap(ctx context.Context) error {
	if c.eval.get() == nil {
		if err := c.RefreshIntel(ctx); err != nil {
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("controlplane: already bootstrapped")
	}
	now := c.cfg.Clock()

	universe := make([]core.Replica, len(c.cfg.Universe))
	for i, os := range c.cfg.Universe {
		universe[i] = replicaFor(os)
	}
	initial, risk, err := strategies.GreedyMinRiskConfig(universe, c.cfg.N, c.eval, now, c.rng)
	if err != nil {
		return err
	}
	threshold := c.cfg.Threshold
	if threshold <= 0 {
		// Baseline headroom plus one fresh HIGH exploited shared
		// weakness (see strategies.Env.Threshold).
		threshold = risk*1.05 + 8.75
	}
	pool := make([]core.Replica, 0, len(universe)-c.cfg.N)
	for _, r := range universe {
		if !initial.Contains(r.ID) {
			pool = append(pool, r)
		}
	}
	monitor, err := core.NewMonitor(c.eval, initial, pool, core.MonitorConfig{
		Threshold: threshold,
		Rand:      c.rng,
	})
	if err != nil {
		return err
	}
	c.monitor = monitor

	// Provision the execution plane: one node per configured OS. Keys
	// exist before power-on so the initial membership covers them.
	ids := make([]transport.NodeID, 0, c.cfg.N)
	keys := make(map[transport.NodeID]ed25519.PublicKey, c.cfg.N)
	var slots []*nodeSlot
	for range initial {
		id := c.nextNode
		c.nextNode++
		slot, err := c.newSlotLocked(id)
		if err != nil {
			return err
		}
		pub, err := c.builder.PublicKey(id)
		if err != nil {
			return err
		}
		ids = append(ids, id)
		keys[id] = pub
		slots = append(slots, slot)
	}
	membership, err := bft.NewMembership(ids, keys)
	if err != nil {
		return err
	}
	c.membership.Store(membership)

	for i, r := range initial {
		if err := c.powerOnLocked(slots[i], r.ID, false); err != nil {
			return err
		}
		c.osToNode[r.ID] = slots[i].node.ID()
	}
	client, err := bft.NewClient(bft.ClientConfig{
		ID:             transport.ClientIDBase + 9999,
		Key:            c.ctrlPriv,
		Replicas:       membership.Replicas,
		ReplicaKeys:    membership.Keys,
		F:              membership.F(),
		Net:            c.cfg.Net,
		RequestTimeout: 800 * time.Millisecond,
		MaxAttempts:    15,
	})
	if err != nil {
		return err
	}
	c.client = client
	c.started = true

	// Durably record what a successor needs to re-adopt this deployment:
	// identity first (the WAL's one immutable record), then the group,
	// then the full census.
	if err := c.walAppend(WALRecord{Kind: WALBootstrap, CtrlKey: c.ctrlPriv, N: c.cfg.N}); err != nil {
		return err
	}
	if err := c.walMembership(membership); err != nil {
		return err
	}
	if err := c.walCensusLocked(); err != nil {
		return err
	}
	c.cfg.Logf("controlplane: bootstrapped CONFIG %v at risk %.1f (threshold %.1f)",
		initial.IDs(), risk, threshold)
	return nil
}

// walMembership records the replica group after a committed change.
func (c *Controller) walMembership(m *bft.Membership) error {
	keys := make(map[transport.NodeID][]byte, len(m.Keys))
	for id, k := range m.Keys {
		keys[id] = append([]byte(nil), k...)
	}
	return c.walAppend(WALRecord{
		Kind:       WALMembership,
		Epoch:      m.Epoch,
		Members:    append([]transport.NodeID(nil), m.Replicas...),
		MemberKeys: keys,
	})
}

// walCensusLocked snapshots the control plane into the WAL. Caller holds
// c.mu.
func (c *Controller) walCensusLocked() error {
	rec := WALRecord{
		Kind:     WALCensus,
		NextNode: c.nextNode,
		LTUSeq:   c.ltuSeq,
		OSNodes:  make(map[string]transport.NodeID, len(c.osToNode)),
	}
	for osID, node := range c.osToNode {
		rec.OSNodes[osID] = node
	}
	if c.monitor != nil {
		rec.Config = c.monitor.Config().IDs()
		for _, r := range c.monitor.Pool() {
			rec.Pool = append(rec.Pool, r.ID)
		}
		for _, r := range c.monitor.Quarantine() {
			rec.Quarantine = append(rec.Quarantine, r.ID)
		}
		rec.Threshold = c.monitor.Threshold()
	}
	rec.RandDraws = c.src.draws
	stats := c.SwapStats()
	rec.Stats = &stats
	return c.walAppend(rec)
}

// walCensus takes c.mu and snapshots; failures are logged, not fatal —
// a missed census only costs recovery precision, and a fired crash
// point makes every append a deliberate no-op anyway.
func (c *Controller) walCensus() {
	c.mu.Lock()
	err := c.walCensusLocked()
	c.mu.Unlock()
	if err != nil && !errors.Is(err, ErrControllerCrashed) {
		c.cfg.Logf("controlplane: census WAL append: %v", err)
	}
}

func (c *Controller) newSlotLocked(id transport.NodeID) (*nodeSlot, error) {
	node, err := c.builder.NewNode(id, c.currentMembership)
	if err != nil {
		return nil, err
	}
	unit, err := ltu.New(c.cfg.LTUSecret, node)
	if err != nil {
		return nil, err
	}
	if inject := c.cfg.LTUInjector; inject != nil {
		unit.SetInjector(func(cmd ltu.Command) error { return inject(id, cmd) })
	}
	slot := &nodeSlot{node: node, ltu: unit}
	c.nodes[id] = slot
	return slot, nil
}

// currentMembership supplies freshly booted replicas with the controller's
// view of the group. Lock-free: PowerOn calls it while c.mu is held.
func (c *Controller) currentMembership() *bft.Membership {
	m := c.membership.Load()
	if m == nil {
		return nil
	}
	return m.Clone()
}

// powerOnLocked drives a node through its LTU.
func (c *Controller) powerOnLocked(slot *nodeSlot, osID string, joining bool) error {
	c.ltuSeq++
	sealed, err := ltu.Seal(c.cfg.LTUSecret, ltu.Command{
		Seq:     c.ltuSeq,
		Action:  ltu.ActionPowerOn,
		OSID:    osID,
		Joining: joining,
	})
	if err != nil {
		return err
	}
	return slot.ltu.Execute(sealed)
}

func (c *Controller) powerOffLocked(slot *nodeSlot) error {
	c.ltuSeq++
	sealed, err := ltu.Seal(c.cfg.LTUSecret, ltu.Command{Seq: c.ltuSeq, Action: ltu.ActionPowerOff})
	if err != nil {
		return err
	}
	return slot.ltu.Execute(sealed)
}

// Status reports the controller's current view.
type Status struct {
	Config     []string
	Pool       []string
	Quarantine []string
	Threshold  float64
	Epoch      uint64
	Members    []transport.NodeID
	Nodes      map[string]transport.NodeID
}

// Status returns the current control-plane view.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Nodes: make(map[string]transport.NodeID)}
	if c.monitor != nil {
		st.Config = c.monitor.Config().IDs()
		for _, r := range c.monitor.Pool() {
			st.Pool = append(st.Pool, r.ID)
		}
		for _, r := range c.monitor.Quarantine() {
			st.Quarantine = append(st.Quarantine, r.ID)
		}
		st.Threshold = c.monitor.Threshold()
	}
	if m := c.membership.Load(); m != nil {
		st.Epoch = m.Epoch
		st.Members = append([]transport.NodeID(nil), m.Replicas...)
	}
	for osID, node := range c.osToNode {
		st.Nodes[osID] = node
	}
	return st
}

// Client returns a service client bound to the current membership for the
// given identity.
func (c *Controller) ServiceClient(id transport.NodeID, key ed25519.PrivateKey) (*bft.Client, error) {
	m := c.membership.Load()
	if m == nil {
		return nil, errors.New("controlplane: not bootstrapped")
	}
	return bft.NewClient(bft.ClientConfig{
		ID:          id,
		Key:         key,
		Replicas:    m.Replicas,
		ReplicaKeys: m.Keys,
		F:           m.F(),
		Net:         c.cfg.Net,
	})
}

// Membership returns a clone of the controller's current view of the
// replica group (nil before Bootstrap). Load clients use it to follow
// reconfigurations, keys included, via Client.UpdateMembership.
func (c *Controller) Membership() *bft.Membership {
	return c.currentMembership()
}

// MonitorRound runs one Algorithm 1 round at the clock's current time and
// executes any resulting replica replacement on the execution plane
// through the staged swap engine (swap.go). The paper's corner cases are
// remediated automatically (raise threshold / release the
// least-vulnerable quarantined replica). When a swap fails and is rolled
// back, the returned Decision still describes the attempted replacement
// but the lifecycle sets have been reverted — the error reports the
// failed stage, and SwapStats/SwapHistory record the attempt.
func (c *Controller) MonitorRound(ctx context.Context) (core.Decision, error) {
	if c.isCrashed() {
		return core.Decision{}, ErrControllerCrashed
	}
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return core.Decision{}, errors.New("controlplane: not bootstrapped")
	}
	monitor := c.monitor
	c.mu.Unlock()

	now := c.cfg.Clock()
	roundStart := time.Now()
	decision, err := monitor.Monitor(now)
	switch {
	case errors.Is(err, core.ErrPoolExhausted):
		c.cfg.Logf("controlplane: pool exhausted; releasing least-vulnerable quarantined replica")
		if _, relErr := monitor.ReleaseLeastVulnerable(now); relErr == nil {
			decision, err = monitor.Monitor(now)
		}
	case errors.Is(err, core.ErrNoCandidate):
		// The paper's first administrator remediation, automated:
		// iteratively raise the threshold until some replacement is
		// acceptable again (bounded, so a hopeless landscape cannot spin).
		for attempt := 0; attempt < 8 && errors.Is(err, core.ErrNoCandidate); attempt++ {
			newThr := monitor.Threshold()*1.5 + 1
			c.cfg.Logf("controlplane: no candidate below threshold; raising to %.1f", newThr)
			if raiseErr := monitor.RaiseThreshold(newThr); raiseErr != nil {
				return decision, raiseErr
			}
			decision, err = monitor.Monitor(now)
		}
	}
	// Algorithm 1 evaluation time, remediation included; swap execution
	// is measured separately per stage.
	c.ins.monitorRoundUS.Observe(time.Since(roundStart).Microseconds())
	if err != nil && !errors.Is(err, core.ErrNoCandidate) && !errors.Is(err, core.ErrPoolExhausted) {
		return decision, err
	}
	if !decision.Reconfigured {
		c.walCensus()
		return decision, nil
	}
	if swapErr := c.executeSwap(ctx, decision.Removed, decision.Added); swapErr != nil {
		c.walCensus()
		return decision, fmt.Errorf("controlplane: executing swap %s -> %s: %w",
			decision.Removed.ID, decision.Added.ID, swapErr)
	}
	c.walCensus()
	return decision, nil
}

// Stop retires every node (bypassing any injected lifecycle faults) and
// closes the control client.
func (c *Controller) Stop() {
	c.mu.Lock()
	slots := make([]*nodeSlot, 0, len(c.nodes))
	for _, s := range c.nodes {
		slots = append(slots, s)
	}
	client := c.client
	c.mu.Unlock()
	if client != nil {
		client.Close()
	}
	for _, s := range slots {
		s.node.Retire()
	}
}

// RunLoop refreshes intelligence and runs one monitoring round every
// interval until the context ends (the paper's "e.g., at midnight every
// day"). Decisions are delivered to onDecision (nil to ignore); errors on
// individual rounds are logged and do not stop the loop.
func (c *Controller) RunLoop(ctx context.Context, interval time.Duration, onDecision func(core.Decision)) error {
	if interval <= 0 {
		return fmt.Errorf("controlplane: non-positive monitoring interval")
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := c.RefreshIntel(ctx); err != nil {
				c.cfg.Logf("controlplane: refresh: %v", err)
				continue
			}
			decision, err := c.MonitorRound(ctx)
			if err != nil {
				c.cfg.Logf("controlplane: monitoring round: %v", err)
				continue
			}
			if onDecision != nil {
				onDecision(decision)
			}
		}
	}
}
