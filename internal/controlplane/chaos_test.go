package controlplane

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestChaosRunDeterministic is the in-tree version of `lazbench chaos`: a
// seeded run of ≥20 monitor rounds under random boot failures, LTU
// faults, silent replicas and link loss, with two rounds forced to
// bomb-and-fail-boot so the rollback path provably executes. Throughout,
// the service must keep exactly n=3f+1 live correct replicas, the
// membership must mirror the OS→node map, and every failed swap must be
// compensated (rollback counter increments, no leaked nodes).
// TestChaosSwapHistoryReplays pins seeded reproducibility end to end:
// two chaos runs with the same seed must produce identical swap
// histories. Faults are disabled because their injection points are
// wall-clock sensitive (stalls and isolation race real timeouts); with
// a deterministic dataset, bomb schedule and risk manager, any history
// divergence means some decision drew from an unseeded source — the
// exact regression class of the global-rand TCP jitter (lazlint's
// globalrand rule guards the same invariant statically).
func TestChaosSwapHistoryReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take tens of seconds")
	}
	if raceEnabled {
		t.Skip("two full chaos runs exceed the race-mode package budget; determinism is asserted in the plain pass")
	}
	run := func() []string {
		ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
		defer cancel()
		report, err := RunChaos(ctx, ChaosConfig{
			Rounds:        8,
			Seed:          7,
			ClientWorkers: 0,
			BootFailProb:  -1,
			BootStallProb: -1,
			LTUFailProb:   -1,
			SilentProb:    -1,
			LinkLossProb:  -1,
			BombProb:      1,
			Logf:          t.Logf,
		})
		if err != nil {
			t.Fatalf("RunChaos: %v", err)
		}
		hist := make([]string, 0, len(report.History))
		for _, rec := range report.History {
			// Timestamps are wall-clock and excluded; everything the
			// controller decided must replay exactly.
			hist = append(hist, fmt.Sprintf("%s->%s node %d->%d outcome=%v stage=%q retries=%d err=%q",
				rec.Removed, rec.Added, rec.OldNode, rec.NewNode,
				rec.Outcome, rec.FailedStage, rec.Retries, rec.Err))
		}
		return hist
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("no swaps recorded: BombProb=1 over 8 rounds should force swaps")
	}
	if len(first) != len(second) {
		t.Fatalf("histories differ in length: %d vs %d\nfirst: %v\nsecond: %v",
			len(first), len(second), first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("swap %d diverged between identically-seeded runs:\n  first:  %s\n  second: %s",
				i, first[i], second[i])
		}
	}
}

// TestChaosByzantineRounds runs every round with f attacker replicas,
// cycling through all four attack kinds — equivocation, stale-vote
// replay, corrupted state transfer, censoring primary — under client
// load and the regular boot/LTU fault dice. Throughout, the harness
// asserts safety (no two replicas execute different batches at the same
// sequence number, no forged reply is ever accepted) and liveness (every
// in-attack probe completes; a censoring primary is demoted by view
// change). Any failure surfaces as a report Violation.
func TestChaosByzantineRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take tens of seconds")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	report, err := RunChaos(ctx, ChaosConfig{
		Rounds:        20,
		Seed:          11,
		ClientWorkers: 2,
		ByzFaults:     true,
		ByzProb:       1, // every round Byzantine: 20 rounds, 5 per attack kind
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, v := range report.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if report.ByzRounds != 20 {
		t.Errorf("byzantine rounds = %d, want 20", report.ByzRounds)
	}
	if report.ByzProbes != report.ByzRounds {
		t.Errorf("byz probes = %d, want one per byzantine round (%d)", report.ByzProbes, report.ByzRounds)
	}
	kinds := make(map[string]int)
	for _, entry := range report.ByzSchedule {
		var round int
		var kind string
		if _, err := fmt.Sscanf(entry, "r%d:%s", &round, &kind); err == nil {
			if at := len(kind); at > 0 {
				// Trim the "@[nodes]" suffix Sscanf's %s kept.
				for i := 0; i < len(kind); i++ {
					if kind[i] == '@' {
						kind = kind[:i]
						break
					}
				}
				kinds[kind]++
			}
		}
	}
	for _, want := range []string{"equivocate", "replay", "corrupt-state", "censor"} {
		if kinds[want] == 0 {
			t.Errorf("attack kind %q never ran (schedule: %v)", want, report.ByzSchedule)
		}
	}
	// The attackers must have actually attacked, not idled: every kind's
	// action counter moved.
	st := report.ByzStats
	t.Logf("byz stats: %+v, schedule: %v", st, report.ByzSchedule)
	if st.Equivocated == 0 {
		t.Error("no equivocating variants were emitted")
	}
	if st.Replayed == 0 {
		t.Error("no stale votes were replayed")
	}
	if st.Corrupted == 0 {
		t.Error("no state messages were corrupted")
	}
	if st.Censored == 0 {
		t.Error("no primary traffic was censored")
	}
	if report.ClientOps == 0 {
		t.Error("client load completed zero operations under attack")
	}
}

// TestChaosByzantineScheduleReplays pins the attacker schedule to its
// seed: two identically-configured runs must arm the same attackers with
// the same kinds in the same rounds. Swaps and wall-clock-sensitive
// faults are disabled so the membership stays static and the schedule is
// a pure function of the Byzantine rng stream.
func TestChaosByzantineScheduleReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take tens of seconds")
	}
	if raceEnabled {
		t.Skip("two full chaos runs exceed the race-mode package budget; determinism is asserted in the plain pass")
	}
	run := func() []string {
		ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
		defer cancel()
		report, err := RunChaos(ctx, ChaosConfig{
			Rounds:         8,
			Seed:           9,
			ClientWorkers:  0,
			BootFailProb:   -1,
			BootStallProb:  -1,
			LTUFailProb:    -1,
			SilentProb:     -1,
			LinkLossProb:   -1,
			BombProb:       -1,
			ByzFaults:      true,
			ByzProb:        0.6,
			ForceByzRounds: []int{0, 7},
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatalf("RunChaos: %v", err)
		}
		for _, v := range report.Violations {
			t.Errorf("invariant violation: %s", v)
		}
		return report.ByzSchedule
	}
	first, second := run(), run()
	if len(first) < 2 {
		t.Fatalf("schedule too short to mean anything: %v", first)
	}
	if len(first) != len(second) {
		t.Fatalf("schedules differ in length: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("byz round %d diverged between identically-seeded runs: %q vs %q", i, first[i], second[i])
		}
	}
}

// TestChaosWANScheduleReplays pins the netem partition schedule to its
// seed, with Byzantine rounds enabled so the two fault schedulers
// interleave: identically-configured runs must open the same partition
// shapes in the same rounds, arm the same attackers, and every heal
// must be followed by a commit (post-heal liveness is a Violation
// check inside RunChaos).
func TestChaosWANScheduleReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take tens of seconds")
	}
	if raceEnabled {
		t.Skip("two full chaos runs exceed the race-mode package budget; determinism is asserted in the plain pass")
	}
	run := func() ([]string, []string) {
		ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
		defer cancel()
		report, err := RunChaos(ctx, ChaosConfig{
			Rounds:         10,
			Seed:           1,
			ClientWorkers:  0,
			BootFailProb:   -1,
			BootStallProb:  -1,
			LTUFailProb:    -1,
			SilentProb:     -1,
			LinkLossProb:   -1,
			BombProb:       -1,
			ByzFaults:      true,
			ByzProb:        0.4,
			ForceByzRounds: []int{1},
			WANProfile:     "flaky",
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatalf("RunChaos: %v", err)
		}
		for _, v := range report.Violations {
			t.Errorf("invariant violation: %s", v)
		}
		if report.WANProbes != report.WANRounds {
			t.Errorf("%d partition episodes but %d post-heal probes", report.WANRounds, report.WANProbes)
		}
		if report.Netem.Frames == 0 || report.Netem.DropsLink == 0 {
			t.Errorf("flaky profile moved no conditioned traffic: %+v", report.Netem)
		}
		return report.WANSchedule, report.ByzSchedule
	}
	wan1, byz1 := run()
	wan2, byz2 := run()
	if len(wan1) < 2 {
		t.Fatalf("partition schedule too short to mean anything: %v", wan1)
	}
	if fmt.Sprint(wan1) != fmt.Sprint(wan2) {
		t.Errorf("partition schedules diverged between identically-seeded runs:\n%v\n%v", wan1, wan2)
	}
	if fmt.Sprint(byz1) != fmt.Sprint(byz2) {
		t.Errorf("byzantine schedules diverged between identically-seeded runs:\n%v\n%v", byz1, byz2)
	}
}

func TestChaosRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes tens of seconds")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	report, err := RunChaos(ctx, ChaosConfig{
		Rounds:              20,
		Seed:                42,
		ClientWorkers:       2,
		ForceBootFailRounds: []int{3, 11},
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}

	for _, v := range report.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if report.Rounds != 20 {
		t.Errorf("ran %d rounds, want 20", report.Rounds)
	}
	if report.FaultRounds == 0 {
		t.Error("no faults were injected — the chaos schedule is broken")
	}
	if report.Bombs == 0 {
		t.Error("no CVE bombs published — nothing could trigger swaps")
	}

	st := report.Stats
	t.Logf("swap stats: %+v", st)
	t.Logf("history: %d records, client ops %d (errs %d), net %+v",
		len(report.History), report.ClientOps, report.ClientErrs, report.Net)
	if st.Attempts == 0 {
		t.Error("no swaps were attempted across 20 bombed rounds")
	}
	// The two forced rounds bomb a shared critical CVE while every image
	// refuses to boot: each must produce at least one failed, rolled-back
	// swap. (More can fail from the random faults.)
	if st.Rollbacks < 2 {
		t.Errorf("rollbacks = %d, want >= 2 (two forced boot-failure rounds)", st.Rollbacks)
	}
	if st.RollbackFailures != 0 {
		t.Errorf("rollback failures = %d, want 0", st.RollbackFailures)
	}
	if st.Attempts != st.Successes+st.Rollbacks+st.RollbackFailures {
		t.Errorf("ledger unbalanced: attempts %d != successes %d + rollbacks %d + aborts %d",
			st.Attempts, st.Successes, st.Rollbacks, st.RollbackFailures)
	}
	// Every rollback shows up as a structured record with a failed stage.
	var recorded int
	for _, rec := range report.History {
		if rec.Outcome == SwapRolledBack {
			recorded++
			if rec.Err == "" {
				t.Errorf("rolled-back record %s->%s has no error", rec.Removed, rec.Added)
			}
		}
	}
	if uint64(recorded) != st.Rollbacks {
		t.Errorf("history shows %d rollbacks, counters show %d", recorded, st.Rollbacks)
	}

	// Closing state: exactly n replicas, membership == osToNode, no
	// orphans (checkInvariants already ran per round; re-assert the
	// essentials from the report for clarity).
	if len(report.Final.Config) != 4 || len(report.Final.Members) != 4 {
		t.Errorf("final config %v / members %v, want 4 each", report.Final.Config, report.Final.Members)
	}
	if len(report.Census.Orphans) != 0 {
		t.Errorf("leaked nodes: %v", report.Census.Orphans)
	}
	if report.ClientOps == 0 {
		t.Error("client load completed zero operations")
	}
}
