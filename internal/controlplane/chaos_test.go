package controlplane

import (
	"context"
	"testing"
	"time"
)

// TestChaosRunDeterministic is the in-tree version of `lazbench chaos`: a
// seeded run of ≥20 monitor rounds under random boot failures, LTU
// faults, silent replicas and link loss, with two rounds forced to
// bomb-and-fail-boot so the rollback path provably executes. Throughout,
// the service must keep exactly n=3f+1 live correct replicas, the
// membership must mirror the OS→node map, and every failed swap must be
// compensated (rollback counter increments, no leaked nodes).
func TestChaosRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes tens of seconds")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	report, err := RunChaos(ctx, ChaosConfig{
		Rounds:              20,
		Seed:                42,
		ClientWorkers:       2,
		ForceBootFailRounds: []int{3, 11},
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}

	for _, v := range report.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if report.Rounds != 20 {
		t.Errorf("ran %d rounds, want 20", report.Rounds)
	}
	if report.FaultRounds == 0 {
		t.Error("no faults were injected — the chaos schedule is broken")
	}
	if report.Bombs == 0 {
		t.Error("no CVE bombs published — nothing could trigger swaps")
	}

	st := report.Stats
	t.Logf("swap stats: %+v", st)
	t.Logf("history: %d records, client ops %d (errs %d), net %+v",
		len(report.History), report.ClientOps, report.ClientErrs, report.Net)
	if st.Attempts == 0 {
		t.Error("no swaps were attempted across 20 bombed rounds")
	}
	// The two forced rounds bomb a shared critical CVE while every image
	// refuses to boot: each must produce at least one failed, rolled-back
	// swap. (More can fail from the random faults.)
	if st.Rollbacks < 2 {
		t.Errorf("rollbacks = %d, want >= 2 (two forced boot-failure rounds)", st.Rollbacks)
	}
	if st.RollbackFailures != 0 {
		t.Errorf("rollback failures = %d, want 0", st.RollbackFailures)
	}
	if st.Attempts != st.Successes+st.Rollbacks+st.RollbackFailures {
		t.Errorf("ledger unbalanced: attempts %d != successes %d + rollbacks %d + aborts %d",
			st.Attempts, st.Successes, st.Rollbacks, st.RollbackFailures)
	}
	// Every rollback shows up as a structured record with a failed stage.
	var recorded int
	for _, rec := range report.History {
		if rec.Outcome == SwapRolledBack {
			recorded++
			if rec.Err == "" {
				t.Errorf("rolled-back record %s->%s has no error", rec.Removed, rec.Added)
			}
		}
	}
	if uint64(recorded) != st.Rollbacks {
		t.Errorf("history shows %d rollbacks, counters show %d", recorded, st.Rollbacks)
	}

	// Closing state: exactly n replicas, membership == osToNode, no
	// orphans (checkInvariants already ran per round; re-assert the
	// essentials from the report for clarity).
	if len(report.Final.Config) != 4 || len(report.Final.Members) != 4 {
		t.Errorf("final config %v / members %v, want 4 each", report.Final.Config, report.Final.Members)
	}
	if len(report.Census.Orphans) != 0 {
		t.Errorf("leaked nodes: %v", report.Census.Orphans)
	}
	if report.ClientOps == 0 {
		t.Error("client load completed zero operations")
	}
}
