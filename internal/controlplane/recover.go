// Controller recovery (ROADMAP "replicated, restartable control plane",
// second half): a new process replays its predecessor's WAL, re-adopts
// the surviving execution plane, and resolves whatever swap was in
// flight when the predecessor died. The WAL bounds what the cluster
// state CAN be (intent before side effect, outcome after); probing the
// actual cluster — is the joiner's node running, is it a member, does
// removing it shrink the group below n — resolves the one ambiguity a
// log cannot: intent recorded, outcome unknown. Resolution reuses the
// live swap machinery, whose stages are idempotent under re-execution.
//
// Resume decision table (see DESIGN.md §9):
//
//	evidence for the in-flight swap        resolution
//	------------------------------------   -----------------------------
//	begin, no census after it              close as rolled back (the
//	                                       monitor never recorded the
//	                                       decision; the next round will
//	                                       re-decide it)
//	begin + census, no stage records       re-run from boot
//	boot intent, no outcome                probe node: running the new
//	                                       OS → resume at ADD, else
//	                                       re-run boot
//	boot outcome ok                        resume at ADD
//	ADD intent, no outcome                 re-run ADD pessimistically
//	                                       ("already a member" = done)
//	ADD outcome ok                         commit locally, resume at
//	                                       catch-up
//	catch-up intent / outcome ok           re-run catch-up / resume at
//	                                       REMOVE
//	REMOVE intent, no outcome              re-run REMOVE ("not a member"
//	                                       = done)
//	REMOVE outcome ok                      commit locally, resume at
//	                                       power-off
//	power-off intent / outcome             re-issue power-off (idle node
//	                                       = no-op), finish
//	any failed outcome, or any             re-run compensation: the
//	compensating record                    joiner's REMOVE verdict says
//	                                       roll back or roll forward
package controlplane

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	mrand "math/rand"
	"time"

	"lazarus/internal/bft"
	"lazarus/internal/core"
	"lazarus/internal/transport"
	"lazarus/internal/vulndb"
)

// stageEvent is one replayed stage record of the in-flight swap.
type stageEvent struct {
	stage        SwapStage
	compensating bool
	outcome      bool // outcome record (else intent)
	ok           bool
	err          string
}

// inFlightSwap is a swap the WAL opened but never closed.
type inFlightSwap struct {
	swapID             uint64
	removedOS, addedOS string
	oldNode, newNode   transport.NodeID
	// censusAfterBegin: the post-decision census landed, so the restored
	// monitor reflects the swap decision and the joiner's slot exists.
	censusAfterBegin bool
	// pre is the group view when the swap began (the last membership
	// record before it) — what compensation restores on rollback.
	pre    *bft.Membership
	events []stageEvent
}

// walState is everything replayWALState distills from the log.
type walState struct {
	ctrlKey    ed25519.PrivateKey
	n          int
	generation int
	membership *bft.Membership
	census     *WALRecord
	// ends collects every closed swap, oldest first (the ring re-bounds
	// them); endsAfterCensus and beginsAfterCensus are the counter deltas
	// on top of the census Stats snapshot.
	ends              []SwapRecord
	statsBase         SwapStats
	beginsAfterCensus uint64
	endsAfterCensus   []SwapRecord
	maxSwapID         uint64
	maxNode           transport.NodeID
	inFlight          *inFlightSwap
}

// replayWALState folds the log into the recovery state.
func replayWALState(w WAL) (*walState, error) {
	st := &walState{}
	open := make(map[uint64]*inFlightSwap)
	var openOrder []uint64
	err := w.Replay(func(rec WALRecord) error {
		switch rec.Kind {
		case WALBootstrap:
			st.ctrlKey = ed25519.PrivateKey(append([]byte(nil), rec.CtrlKey...))
			st.n = rec.N
		case WALRecover:
			if rec.Generation > st.generation {
				st.generation = rec.Generation
			}
		case WALMembership:
			m := &bft.Membership{
				Epoch:    rec.Epoch,
				Replicas: append([]transport.NodeID(nil), rec.Members...),
				Keys:     make(map[transport.NodeID]ed25519.PublicKey, len(rec.MemberKeys)),
			}
			for id, k := range rec.MemberKeys {
				m.Keys[id] = ed25519.PublicKey(append([]byte(nil), k...))
			}
			st.membership = m
		case WALCensus:
			cp := rec
			st.census = &cp
			if rec.Stats != nil {
				st.statsBase = *rec.Stats
			}
			st.beginsAfterCensus = 0
			st.endsAfterCensus = nil
			for _, fl := range open {
				fl.censusAfterBegin = true
			}
		case WALSwapBegin:
			fl := &inFlightSwap{
				swapID:    rec.SwapID,
				removedOS: rec.RemovedOS, addedOS: rec.AddedOS,
				oldNode: rec.OldNode, newNode: rec.NewNode,
				pre: st.membership,
			}
			open[rec.SwapID] = fl
			openOrder = append(openOrder, rec.SwapID)
			st.beginsAfterCensus++
			if rec.SwapID > st.maxSwapID {
				st.maxSwapID = rec.SwapID
			}
			if rec.NewNode > st.maxNode {
				st.maxNode = rec.NewNode
			}
		case WALStageIntent, WALStageOutcome:
			if fl := open[rec.SwapID]; fl != nil {
				fl.events = append(fl.events, stageEvent{
					stage:        rec.Stage,
					compensating: rec.Compensating,
					outcome:      rec.Kind == WALStageOutcome,
					ok:           rec.OK,
					err:          rec.Err,
				})
			}
		case WALSwapEnd:
			if rec.Swap != nil {
				st.ends = append(st.ends, *rec.Swap)
				st.endsAfterCensus = append(st.endsAfterCensus, *rec.Swap)
			}
			delete(open, rec.SwapID)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// At most one swap is ever in flight (swaps are serial within the
	// monitor loop), but be defensive: resume the oldest still open.
	for _, id := range openOrder {
		if fl, ok := open[id]; ok {
			st.inFlight = fl
			break
		}
	}
	return st, nil
}

// restoredCounters rebuilds the swap counters: the census snapshot plus
// one attempt per later swap-begin and one outcome per later swap-end.
// (Stage-failure and retry tallies made after the last census are lost;
// the ledger totals chaos checks are exact.)
func restoredCounters(st *walState) swapCounters {
	c := swapCounters{
		attempts:      st.statsBase.Attempts + st.beginsAfterCensus,
		successes:     st.statsBase.Successes,
		retries:       st.statsBase.Retries,
		rollbacks:     st.statsBase.Rollbacks,
		rolledForward: st.statsBase.RolledForward,
		aborts:        st.statsBase.RollbackFailures,
	}
	for s, n := range st.statsBase.StageFailures {
		if s >= 0 && s < stageCount {
			c.stageFailures[s] = n
		}
	}
	for _, rec := range st.endsAfterCensus {
		switch rec.Outcome {
		case SwapSucceeded:
			c.successes++
		case SwapRolledBack:
			c.rollbacks++
		case SwapRolledForward:
			c.successes++
			c.rolledForward++
		case SwapAborted:
			c.aborts++
		}
	}
	return c
}

// Recover builds a successor controller from a predecessor's WAL and the
// surviving plant, resolves any in-flight swap, and returns it running
// (no Bootstrap). cfg supplies the environment (network, app factory,
// vulnerability corpus, seed — which must match the predecessor's for
// deterministic replay); identity, membership, lifecycle sets, and the
// swap ledger come from the log.
func Recover(ctx context.Context, cfg Config, plant Plant) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if plant.builder == nil {
		return nil, errors.New("controlplane: recover needs the surviving plant")
	}
	replayStart := time.Now()
	st, err := replayWALState(cfg.WAL)
	if err != nil {
		return nil, err
	}
	if len(st.ctrlKey) != ed25519.PrivateKeySize {
		return nil, errors.New("controlplane: WAL has no bootstrap record")
	}
	if st.membership == nil || st.census == nil {
		return nil, errors.New("controlplane: WAL ends before bootstrap completed")
	}
	if st.n > 0 {
		cfg.N = st.n
	}

	src := newCountingSource(cfg.Seed)
	c := &Controller{
		cfg:        cfg,
		store:      vulndb.New(),
		eval:       &swapEvaluator{},
		rng:        mrand.New(src),
		src:        src,
		builder:    plant.builder,
		ctrlPub:    st.ctrlKey.Public().(ed25519.PublicKey),
		ctrlPriv:   st.ctrlKey,
		ins:        newCPInstruments(cfg.Metrics),
		trace:      cfg.Trace,
		wal:        cfg.WAL,
		generation: st.generation + 1,
		nodes:      make(map[transport.NodeID]*nodeSlot, len(plant.nodes)),
		osToNode:   make(map[string]transport.NodeID),
	}
	c.ins.walReplayUS.Observe(time.Since(replayStart).Microseconds())

	// Re-adopt the plant and the census.
	cen := st.census
	for id, slot := range plant.nodes {
		c.nodes[id] = slot
	}
	for osID, node := range cen.OSNodes {
		c.osToNode[osID] = node
	}
	// Node IDs must never be reused (the transport and the builder key
	// registry are per-ID): resume above everything the log has seen.
	c.nextNode = cen.NextNode
	if st.maxNode >= c.nextNode {
		c.nextNode = st.maxNode + 1
	}
	for _, id := range st.membership.Replicas {
		if id >= c.nextNode {
			c.nextNode = id + 1
		}
	}
	for id := range c.nodes {
		if id >= c.nextNode {
			c.nextNode = id + 1
		}
	}

	// The risk pipeline is rebuilt from the corpus, not the WAL: OSINT
	// data is re-ingestable by definition (cfg.InitialVulns/Crawler must
	// cover what the predecessor had seen for identical decisions).
	if err := c.RefreshIntel(ctx); err != nil {
		return nil, fmt.Errorf("controlplane: recovering intel: %w", err)
	}

	// Monitor lifecycle sets, exactly as the census recorded them
	// (including order — the uniform random pick indexes into them).
	byID := make(map[string]core.Replica, len(cfg.Universe))
	for _, os := range cfg.Universe {
		byID[os.ID] = replicaFor(os)
	}
	toReplicas := func(ids []string) ([]core.Replica, error) {
		out := make([]core.Replica, 0, len(ids))
		for _, id := range ids {
			r, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("controlplane: census OS %s not in the universe", id)
			}
			out = append(out, r)
		}
		return out, nil
	}
	config, err := toReplicas(cen.Config)
	if err != nil {
		return nil, err
	}
	pool, err := toReplicas(cen.Pool)
	if err != nil {
		return nil, err
	}
	quarantine, err := toReplicas(cen.Quarantine)
	if err != nil {
		return nil, err
	}
	monitor, err := core.RestoreMonitor(c.eval, core.Config(config), pool, quarantine, core.MonitorConfig{
		Threshold: cen.Threshold,
		Rand:      c.rng,
	})
	if err != nil {
		return nil, fmt.Errorf("controlplane: restoring monitor: %w", err)
	}
	c.monitor = monitor

	// Replay the rng to the predecessor's recorded position: both Int63
	// and Uint64 advance math/rand's source by exactly one step, so
	// burning the draw count lands on the identical stream state and the
	// diversity loop stays deterministic across the crash.
	for i := uint64(0); i < cen.RandDraws; i++ {
		c.src.Int63()
	}

	// LTU command counter: at least the census value, and above anything
	// the predecessor issued after it (the LTUs reject non-increasing
	// sequence numbers as replays).
	c.ltuSeq = cen.LTUSeq
	for _, slot := range c.nodes {
		if s := slot.ltu.LastSeq(); s > c.ltuSeq {
			c.ltuSeq = s
		}
	}

	c.membership.Store(st.membership)
	// A fresh client identity per generation: replicas de-duplicate by
	// per-client sequence number, and the predecessor's counter died with
	// it. Reconfigurations authenticate by the controller key, not the
	// client id, so any id works.
	client, err := bft.NewClient(bft.ClientConfig{
		ID:             transport.ClientIDBase + 9900 + transport.NodeID(c.generation),
		Key:            c.ctrlPriv,
		Replicas:       st.membership.Replicas,
		ReplicaKeys:    st.membership.Keys,
		F:              st.membership.F(),
		Net:            cfg.Net,
		RequestTimeout: 800 * time.Millisecond,
		MaxAttempts:    15,
	})
	if err != nil {
		return nil, err
	}
	c.client = client
	c.started = true

	// Swap ledger: the ring replays from the end records, the counters
	// from the census snapshot plus deltas.
	c.swapMu.Lock()
	for _, rec := range st.ends {
		c.histAppendLocked(rec)
	}
	c.counters = restoredCounters(st)
	c.swapSeq = st.maxSwapID
	c.swapMu.Unlock()

	if err := c.walAppend(WALRecord{Kind: WALRecover, Generation: c.generation}); err != nil {
		return nil, err
	}
	c.cfg.Logf("controlplane: generation %d recovered: epoch %d, %d nodes, %d closed swaps, in-flight=%v",
		c.generation, st.membership.Epoch, len(c.nodes), len(st.ends), st.inFlight != nil)

	if fl := st.inFlight; fl != nil {
		if rerr := c.resumeSwap(ctx, fl); rerr != nil {
			// A rolled-back resume reports its failure like any swap; the
			// system is consistent either way, so recovery still succeeds.
			c.cfg.Logf("controlplane: resumed swap %d settled with: %v", fl.swapID, rerr)
		}
	}
	c.refreshEpoch()
	c.walCensus()
	return c, nil
}

// resumeSwap resolves the swap the predecessor left in flight.
func (c *Controller) resumeSwap(ctx context.Context, fl *inFlightSwap) error {
	rec := SwapRecord{
		Removed: fl.removedOS, Added: fl.addedOS,
		OldNode: fl.oldNode, NewNode: fl.newNode,
		Started: c.cfg.Clock(),
	}

	// No census after the begin record: the predecessor died before the
	// decision state was snapshotted, so the restored monitor (and rng)
	// are pre-decision and the next round will simply re-decide. Balance
	// the ledger and discard any half-provisioned joiner slot.
	if !fl.censusAfterBegin {
		if slot, ok := c.nodes[fl.newNode]; ok && fl.newNode != 0 && fl.newNode != fl.oldNode {
			slot.node.Retire()
			delete(c.nodes, fl.newNode)
		}
		rec.Finished = c.cfg.Clock()
		rec.Outcome = SwapRolledBack
		rec.FailedStage = StageBoot
		rec.Err = "controller crashed before the swap decision was recorded"
		c.recordSwap(fl.swapID, rec)
		c.ins.resumeOutcome[SwapRolledBack].Inc()
		c.cfg.Logf("controlplane: swap %d (%s->%s) closed as rolled back: crashed before it began",
			fl.swapID, fl.removedOS, fl.addedOS)
		return nil
	}

	removed, ok := c.monitorReplica(fl.removedOS)
	if !ok {
		return fmt.Errorf("controlplane: in-flight swap %d: OS %s not in the universe", fl.swapID, fl.removedOS)
	}
	added, aok := c.monitorReplica(fl.addedOS)
	if !aok {
		return fmt.Errorf("controlplane: in-flight swap %d: OS %s not in the universe", fl.swapID, fl.addedOS)
	}
	op := &swapOp{
		c:       c,
		swapID:  fl.swapID,
		removed: removed,
		added:   added,
		oldID:   fl.oldNode,
		newID:   fl.newNode,
		oldSlot: c.nodes[fl.oldNode],
		slot:    c.nodes[fl.newNode],
		client:  c.client,
		pre:     fl.pre,
	}
	if op.pre == nil {
		op.pre = c.membership.Load()
	}
	if op.slot == nil || op.oldSlot == nil {
		return fmt.Errorf("controlplane: in-flight swap %d: plant lost node %d or %d",
			fl.swapID, fl.newNode, fl.oldNode)
	}
	// The membership record lands after a committed ADD, so its presence
	// proves the commit; its absence with an ADD intent on file leaves
	// the ADD possibly ordered — the pessimism compensation is built for.
	op.addApplied = c.membership.Load().Contains(fl.newNode)
	sawAdd := false
	for _, ev := range fl.events {
		if !ev.compensating && ev.stage == StageAdd {
			sawAdd = true
		}
	}

	start, compensating, cause := resumePoint(fl, op)
	var err error
	if compensating {
		op.addUncertain = !op.addApplied && sawAdd
		err = op.fail(ctx, &rec, start, cause)
	} else {
		err = op.runFrom(ctx, &rec, start)
	}
	if errors.Is(err, ErrControllerCrashed) {
		return err
	}
	rec.Finished = c.cfg.Clock()
	c.recordSwap(fl.swapID, rec)
	if rec.Outcome >= SwapSucceeded && rec.Outcome <= SwapAborted {
		c.ins.resumeOutcome[rec.Outcome].Inc()
	}
	c.cfg.Logf("controlplane: resumed swap %d (%s->%s) from %v: %v",
		fl.swapID, fl.removedOS, fl.addedOS, start, rec.Outcome)
	return err
}

// resumePoint maps the in-flight swap's stage evidence to where the
// machinery re-enters: a forward stage, or the compensation path with the
// failed stage and cause. See the decision table in the package comment.
func resumePoint(fl *inFlightSwap, op *swapOp) (start SwapStage, compensating bool, cause error) {
	if len(fl.events) == 0 {
		return StageBoot, false, nil
	}
	last := fl.events[len(fl.events)-1]

	// Any compensating record, or a failed forward outcome, means the
	// predecessor had left the forward path: re-run compensation. (The
	// compensating REMOVE re-probes the group, so a compensation that had
	// already finished resolves to the same verdict again.)
	if last.compensating || (last.outcome && !last.ok) {
		failedAt := last.stage
		msg := last.err
		for _, ev := range fl.events {
			if !ev.compensating && ev.outcome && !ev.ok {
				failedAt, msg = ev.stage, ev.err
			}
		}
		if msg == "" {
			msg = "controller crashed mid-compensation"
		}
		return failedAt, true, fmt.Errorf("resumed after crash: %s", msg)
	}

	if !last.outcome {
		// Intent without outcome: the side effect may or may not have
		// run. Each stage's retry path absorbs the "it did" case; boot
		// additionally probes the node so a landed power-on skips ahead.
		if last.stage == StageBoot && op.slot.node.Running() && op.slot.node.OS().ID == op.added.ID {
			return StageAdd, false, nil
		}
		return last.stage, false, nil
	}

	// Successful outcome: the stage completed; resume right after it.
	switch last.stage {
	case StageBoot:
		return StageAdd, false, nil
	case StageAdd:
		return StageCatchUp, false, nil
	case StageCatchUp:
		return StageRemove, false, nil
	default:
		// Post-REMOVE (and post-power-off): runFrom's tail re-commits the
		// REMOVE locally (idempotent) and re-issues the power-off (no-op
		// on an idle node) before decommissioning.
		return StagePowerOff, false, nil
	}
}

// monitorReplica resolves an OS id to the risk engine's replica identity
// via the configured universe.
func (c *Controller) monitorReplica(osID string) (core.Replica, bool) {
	for _, os := range c.cfg.Universe {
		if os.ID == osID {
			return replicaFor(os), true
		}
	}
	return core.Replica{}, false
}

// refreshEpoch probes the live member replicas and lifts the local
// membership epoch to the highest one the group has committed. The
// composition is already exact (resume re-commits any un-logged
// reconfiguration); only the epoch counter can lag when the predecessor
// died between ordering a reconfiguration and logging the membership.
func (c *Controller) refreshEpoch() {
	m := c.membership.Load()
	if m == nil {
		return
	}
	var max uint64
	c.mu.Lock()
	for _, id := range m.Replicas {
		if slot, ok := c.nodes[id]; ok {
			if rep := slot.node.Replica(); rep != nil {
				if e := rep.Stats().CurrentEpoch; e > max {
					max = e
				}
			}
		}
	}
	c.mu.Unlock()
	if max > m.Epoch {
		next := m.Clone()
		next.Epoch = max
		c.membership.Store(next)
		c.cfg.Logf("controlplane: lifted membership epoch %d -> %d from live replicas", m.Epoch, max)
	}
}
