package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"lazarus/internal/osint"
)

// Config tunes the vulnerability-clustering pipeline.
type Config struct {
	// MaxVocabulary caps the TF-IDF vocabulary (default 200, per the
	// paper).
	MaxVocabulary int
	// K fixes the number of clusters; 0 selects it with the elbow
	// method.
	K int
	// MaxK bounds the elbow search (default sqrt-of-corpus heuristic,
	// at least 2).
	MaxK int
	// Seed drives k-means++ seeding; runs with equal seeds and inputs
	// are identical.
	Seed int64
}

// Clusters is the result of clustering a vulnerability corpus.
type Clusters struct {
	// K is the number of clusters formed.
	K int
	// ByCVE maps each CVE id to its cluster id in [0, K).
	ByCVE map[string]int
	// Members lists the CVE ids of each cluster, in input order.
	Members [][]string
	// WCSS is the within-cluster sum of squares of the chosen k.
	WCSS float64
}

// SameCluster reports whether two vulnerabilities were placed in the same
// cluster (and both were clustered at all).
func (c *Clusters) SameCluster(cveA, cveB string) bool {
	a, okA := c.ByCVE[cveA]
	b, okB := c.ByCVE[cveB]
	return okA && okB && a == b
}

// ClusterOf returns the cluster id for a CVE and whether it is known.
func (c *Clusters) ClusterOf(cve string) (int, bool) {
	id, ok := c.ByCVE[cve]
	return id, ok
}

// Model is a trained clustering: the vocabulary, the K-means centroids,
// and the cluster assignment of the training corpus. Unlike bare Clusters
// it can classify vulnerabilities published after training (Assign), which
// is how Lazarus handles CVEs disclosed between re-clustering rounds.
type Model struct {
	// Vocab is the TF-IDF vocabulary fitted on the training corpus.
	Vocab *Vocabulary
	// Centroids are the fitted cluster centres.
	Centroids [][]float64
	// Clusters is the assignment of the training corpus, extended by
	// every Extend call.
	Clusters *Clusters
	// vectors holds each known CVE's L2-normalized TF-IDF vector, for
	// similarity queries.
	vectors map[string][]float64
}

// Cosine returns the cosine similarity of two known CVEs' descriptions
// (0 when either is unknown). Vectors are unit length, so this is their
// dot product.
func (m *Model) Cosine(cveA, cveB string) float64 {
	a, okA := m.vectors[cveA]
	b, okB := m.vectors[cveB]
	if !okA || !okB {
		return 0
	}
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

// Assign returns the nearest-centroid cluster for a description.
func (m *Model) Assign(description string) int {
	return m.assignVec(m.Vocab.Vectorize(description))
}

// Extend classifies a new vulnerability and records it in the model's
// cluster index, so subsequent SameCluster and Cosine queries see it.
// Re-extending a known CVE is a no-op.
func (m *Model) Extend(v *osint.Vulnerability) int {
	if c, ok := m.Clusters.ByCVE[v.ID]; ok {
		return c
	}
	vec := m.Vocab.Vectorize(v.Description)
	c := m.assignVec(vec)
	m.Clusters.ByCVE[v.ID] = c
	m.Clusters.Members[c] = append(m.Clusters.Members[c], v.ID)
	m.vectors[v.ID] = vec
	return c
}

func (m *Model) assignVec(vec []float64) int {
	best, bestDist := 0, math.Inf(1)
	for c, centroid := range m.Centroids {
		if d := sqDist(vec, centroid); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// Build runs the full pipeline over a corpus: tokenize + vectorize the
// descriptions, choose k (elbow method unless fixed), run K-means, and
// index the assignment by CVE id.
func Build(corpus []*osint.Vulnerability, cfg Config) (*Clusters, error) {
	m, err := BuildModel(corpus, cfg)
	if err != nil {
		return nil, err
	}
	return m.Clusters, nil
}

// BuildModel is Build, additionally returning the fitted vocabulary and
// centroids for later classification of new CVEs.
func BuildModel(corpus []*osint.Vulnerability, cfg Config) (*Model, error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("cluster: empty corpus")
	}
	docs := make([]string, len(corpus))
	for i, v := range corpus {
		docs[i] = v.Description
	}
	vocab := BuildVocabulary(docs, cfg.MaxVocabulary)
	vectors := vocab.VectorizeAll(docs)
	rng := rand.New(rand.NewSource(cfg.Seed))

	k := cfg.K
	if k <= 0 {
		maxK := cfg.MaxK
		if maxK <= 0 {
			maxK = isqrt(len(corpus))
			if maxK < 2 {
				maxK = 2
			}
		}
		chosen, _, err := ElbowK(vectors, maxK, rng)
		if err != nil {
			return nil, err
		}
		k = chosen
	}
	if k > len(corpus) {
		k = len(corpus)
	}
	res, err := KMeans(vectors, k, rng)
	if err != nil {
		return nil, err
	}
	out := &Clusters{
		K:       res.K,
		ByCVE:   make(map[string]int, len(corpus)),
		Members: make([][]string, res.K),
		WCSS:    res.WCSS,
	}
	vecIndex := make(map[string][]float64, len(corpus))
	for i, v := range corpus {
		c := res.Assignment[i]
		out.ByCVE[v.ID] = c
		out.Members[c] = append(out.Members[c], v.ID)
		vecIndex[v.ID] = vectors[i]
	}
	return &Model{Vocab: vocab, Centroids: res.Centroids, Clusters: out, vectors: vecIndex}, nil
}

func isqrt(n int) int {
	k := 0
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}
